package repro

// Micro-benchmarks and allocation guards for the simulator's hot path:
// the emulator step loop, the radix-table memory, and the L1 fast path.
// The AllocsPerRun tests are regression guards — the step and L1-hit
// paths are allocation-free by construction, and any future allocation
// there costs throughput on every simulated instruction.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stream"
)

// stepProg is a tiny endless kernel exercising the emulator's ALU, load,
// store and branch paths without ever halting.
func stepProg() *isa.Program {
	return &isa.Program{
		Name: "bench-loop",
		Code: []isa.Instr{
			{Op: isa.OpAddI, Rd: 1, Ra: 1, Imm: 8},
			{Op: isa.OpAndI, Rd: 1, Ra: 1, Imm: 1<<16 - 1},
			{Op: isa.OpLoad, Rd: 2, Ra: 1, Imm: 0, Size: 8},
			{Op: isa.OpAdd, Rd: 3, Ra: 3, Rb: 2},
			{Op: isa.OpStore, Ra: 1, Rb: 3, Imm: 8, Size: 8},
			{Op: isa.OpJmp, Imm: 0},
		},
	}
}

func BenchmarkMemReadWrite(b *testing.B) {
	m := mem.New()
	const span = 1 << 20 // 1 MiB working set across many pages
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		addr := uint64(i*64) % span
		m.Write(addr, uint64(i), 8)
		sink += m.Read(addr, 8)
	}
	_ = sink
}

func BenchmarkEmuStep(b *testing.B) {
	cpu := emu.New(stepProg(), mem.New())
	var rec emu.DynInstr
	cpu.Step(&rec) // touch the image so the timed loop is steady-state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Step(&rec)
	}
}

func BenchmarkHierarchyAccessHit(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	// Warm translation and line state so the timed loop measures the
	// L1-hit fast path only.
	for i := 0; i < 16; i++ {
		h.Access(1, 0x1000, false, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(1, 0x1000, false, int64(i+16))
	}
}

func BenchmarkFastForward(b *testing.B) {
	cpu := emu.New(stepProg(), mem.New())
	cpu.FastForward(1 << 14) // fault in the working set
	b.ReportAllocs()
	b.ResetTimer()
	cpu.FastForward(uint64(b.N))
}

func BenchmarkFastForwardWarm(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	bp := inorder.New(inorder.DefaultConfig(), h).BP
	w := &hierBPWarmer{h: h, bp: bp}
	cpu := emu.New(stepProg(), mem.New())
	cpu.FastForwardWarm(1<<14, w)
	b.ReportAllocs()
	b.ResetTimer()
	cpu.FastForwardWarm(uint64(b.N), w)
}

// hierBPWarmer mirrors the warmer the sim layer wires up: hierarchy
// warm-access methods for the memory stream, predictor updates for
// branches.
type hierBPWarmer struct {
	h  *cache.Hierarchy
	bp interface{ Predict(pc int, taken bool) bool }
}

func (w *hierBPWarmer) WarmFetch(pc int)              { w.h.WarmFetchInstr(inorder.CodeBase + uint64(pc)*4) }
func (w *hierBPWarmer) WarmLoad(pc int, addr uint64)  { w.h.WarmAccess(pc, addr, false) }
func (w *hierBPWarmer) WarmStore(pc int, addr uint64) { w.h.WarmAccess(pc, addr, true) }
func (w *hierBPWarmer) WarmBranch(pc int, taken bool) { w.bp.Predict(pc, taken) }

// TestFastForwardDoesNotAllocate guards the functional fast-forward loop:
// steady state must be allocation-free, or paper-scale skip distances pay
// GC tax on billions of instructions.
func TestFastForwardDoesNotAllocate(t *testing.T) {
	cpu := emu.New(stepProg(), mem.New())
	cpu.FastForward(1 << 14) // fault every page the kernel addresses
	if allocs := testing.AllocsPerRun(1000, func() { cpu.FastForward(1) }); allocs != 0 {
		t.Fatalf("emu.FastForward allocates %.1f objects per instruction; the fast-forward loop must be allocation-free", allocs)
	}
}

// TestFastForwardWarmDoesNotAllocate guards the warming variant's steady
// state: warm lookups land in already-allocated cache/TLB/predictor
// tables, so no per-instruction allocation is acceptable there either.
func TestFastForwardWarmDoesNotAllocate(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	bp := inorder.New(inorder.DefaultConfig(), h).BP
	w := &hierBPWarmer{h: h, bp: bp}
	cpu := emu.New(stepProg(), mem.New())
	cpu.FastForwardWarm(1<<15, w)
	if allocs := testing.AllocsPerRun(1000, func() { cpu.FastForwardWarm(1, w) }); allocs != 0 {
		t.Fatalf("emu.FastForwardWarm allocates %.1f objects per instruction in steady state", allocs)
	}
}

// TestEmuStepDoesNotAllocate guards the emulator step loop: one executed
// instruction must not allocate.
func TestEmuStepDoesNotAllocate(t *testing.T) {
	cpu := emu.New(stepProg(), mem.New())
	var rec emu.DynInstr
	// Warm: touch every page the kernel will ever address so the timed
	// runs never take the first-touch page allocation.
	for i := 0; i < 1<<14; i++ {
		cpu.Step(&rec)
	}
	if allocs := testing.AllocsPerRun(1000, func() { cpu.Step(&rec) }); allocs != 0 {
		t.Fatalf("emu.Step allocates %.1f objects per instruction; the step loop must be allocation-free", allocs)
	}
}

// TestHierarchyL1HitDoesNotAllocate guards the demand-access L1-hit fast
// path, the single hottest call of the timing model.
func TestHierarchyL1HitDoesNotAllocate(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	at := int64(0)
	for i := 0; i < 64; i++ {
		h.Access(1, 0x1000, false, at)
		at++
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Access(1, 0x1000, false, at)
		at++
	}); allocs != 0 {
		t.Fatalf("L1-hit Access allocates %.1f objects per access; the hit path must be allocation-free", allocs)
	}
}

// TestCoreStepNoSinkDoesNotAllocate guards the full timed step — emulator
// step plus in-order issue through the cache hierarchy — with no trace
// sink attached. Detached observability must cost one nil check, not an
// allocation, per instruction.
func TestCoreStepNoSinkDoesNotAllocate(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	core := inorder.New(inorder.DefaultConfig(), h)
	cpu := emu.New(stepProg(), mem.New())
	if core.Tracer != nil {
		t.Fatal("core starts with a tracer attached")
	}
	// Warm: fault in the kernel's pages and settle the caches so the timed
	// runs measure steady state, not first-touch fills.
	core.Run(stream.NewLive(cpu), 1<<15)
	// The instruction record lives outside the closure, as it does across
	// the iterations of Core.Run's loop.
	var rec emu.DynInstr
	if allocs := testing.AllocsPerRun(1000, func() {
		cpu.Step(&rec)
		core.Issue(&rec)
	}); allocs != 0 {
		t.Fatalf("core step with no sink allocates %.1f objects per instruction; the detached-tracer path must be allocation-free", allocs)
	}
}

// benchRecording records a window of the bench kernel for the replay
// and batch-decode guards below.
func benchRecording(t *testing.T, n uint64) *stream.Recording {
	t.Helper()
	cpu := emu.New(stepProg(), mem.New())
	rec, err := stream.Record(cpu, n)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestReplayNextDoesNotAllocate guards the stream decoder: replaying one
// recorded instruction must not allocate, or every replayed cell pays GC
// tax the live emulator doesn't.
func TestReplayNextDoesNotAllocate(t *testing.T) {
	rec := benchRecording(t, 1<<15)
	src := stream.NewReplay(rec)
	var r emu.DynInstr
	for i := 0; i < 1<<10; i++ {
		src.Next(&r)
	}
	if allocs := testing.AllocsPerRun(1000, func() { src.Next(&r) }); allocs != 0 {
		t.Fatalf("ReplaySource.Next allocates %.1f objects per instruction; decode must be allocation-free", allocs)
	}
}

// TestReplaySourcePoolDoesNotAllocate guards the pooled decode scratch:
// after a Recycle, opening the next cell's source must reuse the pooled
// struct instead of allocating a fresh register-file-sized cursor.
func TestReplaySourcePoolDoesNotAllocate(t *testing.T) {
	rec := benchRecording(t, 1<<10)
	stream.NewReplay(rec).Recycle() // prime the pool
	if allocs := testing.AllocsPerRun(100, func() {
		stream.NewReplay(rec).Recycle()
	}); allocs != 0 {
		t.Fatalf("NewReplay after Recycle allocates %.1f objects per cell; the cursor must come from the pool", allocs)
	}
}

// TestBatchFillDoesNotAllocate guards the SoA batch decoder: once a
// chunk's columns are sized, refilling it from the stream must be
// allocation-free (cohorts recycle chunk buffers across a whole grid).
func TestBatchFillDoesNotAllocate(t *testing.T) {
	rec := benchRecording(t, 1<<15)
	src := stream.NewReplay(rec)
	const rows = 256
	b := new(stream.DecodedBatch)
	b.Fill(src, rows) // first fill sizes the columns
	if allocs := testing.AllocsPerRun(10, func() { b.Fill(src, rows) }); allocs != 0 {
		t.Fatalf("DecodedBatch.Fill allocates %.1f objects per chunk after sizing; refills must reuse the columns", allocs)
	}
}

// TestCohortStepDoesNotAllocate guards the lockstep batch-step path: one
// decoded row issued into a core must not allocate, exactly like the
// live per-instruction path it replaces.
func TestCohortStepDoesNotAllocate(t *testing.T) {
	rec := benchRecording(t, 1<<15)
	src := stream.NewReplay(rec)
	b := new(stream.DecodedBatch)
	n := b.Fill(src, 1<<14)
	h := cache.NewHierarchy(cache.DefaultConfig())
	core := inorder.New(inorder.DefaultConfig(), h)
	core.RunBatch(b, 0, n/2) // warm caches and predictor tables
	i := n / 2
	if allocs := testing.AllocsPerRun(1000, func() {
		core.RunBatch(b, i, i+1)
		i++
		if i == n {
			i = n / 2
		}
	}); allocs != 0 {
		t.Fatalf("cohort batch step allocates %.1f objects per instruction; lockstep stepping must be allocation-free", allocs)
	}
}

// TestArchViewDoesNotAllocate guards the replay-backed architectural
// state views SVR cells observe through: advancing past one decoded
// record (register write-back, flags, store apply on warm pages) and the
// retire-point reads the engine makes — ReadMem on the private clone,
// Reg, CmpFlags — must all be allocation-free, on both the ArchView
// (cohort members) and the memory-bearing ReplaySource (solo replay).
func TestArchViewDoesNotAllocate(t *testing.T) {
	rec := benchRecording(t, 1<<15)
	viewMem, srcMem := mem.New(), mem.New()
	// Fault in every page the bench kernel stores to (r1 wraps at 64 KiB)
	// so the timed runs never take a first-touch page allocation.
	for a := uint64(0); a < (1<<16)+128; a += mem.PageSize {
		viewMem.Write(a, 1, 8)
		srcMem.Write(a, 1, 8)
	}
	view := stream.NewArchView(rec, viewMem)
	src := stream.NewReplayWithMem(rec, srcMem)
	var r emu.DynInstr
	for i := 0; i < 1<<10; i++ {
		src.Next(&r)
		view.Advance(&r)
	}
	var sink uint64
	if allocs := testing.AllocsPerRun(1000, func() {
		src.Next(&r)
		view.Advance(&r)
		sink += view.ReadMem(r.Addr, 8) + src.ReadMem(r.Addr, 8)
		sink += uint64(view.Reg(1) + src.Reg(1))
		sink += uint64(view.CmpFlags() + src.CmpFlags())
	}); allocs != 0 {
		t.Fatalf("ArchState view step allocates %.1f objects per instruction; the view path must be allocation-free", allocs)
	}
	_ = sink
}

// TestMemReadWriteDoesNotAllocate guards the radix-table memory: accesses
// to already-touched pages must not allocate.
func TestMemReadWriteDoesNotAllocate(t *testing.T) {
	m := mem.New()
	const span = 1 << 20
	for a := uint64(0); a < span; a += mem.PageSize {
		m.Write(a, 1, 8) // fault every page in
	}
	i := uint64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		addr := (i * 64) % span
		m.Write(addr, i, 8)
		_ = m.Read(addr, 8)
		i++
	}); allocs != 0 {
		t.Fatalf("mem.Read/Write allocates %.1f objects per access on warm pages", allocs)
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCPIStack(t *testing.T) {
	var s CPIStack
	s.Instrs = 100
	s.Add(StallBase, 50)
	s.Add(StallMemDRAM, 150)
	if got := s.CPI(); got != 2.0 {
		t.Errorf("CPI = %v, want 2.0", got)
	}
	if got := s.Component(StallMemDRAM); got != 1.5 {
		t.Errorf("dram component = %v", got)
	}
	if !strings.Contains(s.String(), "mem-dram=1.50") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestCPIStackEmpty(t *testing.T) {
	var s CPIStack
	if s.CPI() != 0 || s.Component(StallBase) != 0 {
		t.Error("empty stack should report 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Errorf("hmean(1,1,1) = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2}); got != 2 {
		t.Errorf("hmean(2,2) = %v", got)
	}
	// hmean(1, 3) = 2/(1 + 1/3) = 1.5
	if got := HarmonicMean([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("hmean(1,3) = %v, want 1.5", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("hmean(nil) = %v", got)
	}
	// Ignores non-positive entries.
	if got := HarmonicMean([]float64{0, -1, 2}); got != 2 {
		t.Errorf("hmean with zeros = %v", got)
	}
}

func TestHarmonicLEArithmetic(t *testing.T) {
	// AM-HM inequality on positive inputs.
	if err := quick.Check(func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= ArithMean(xs)+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("zzz") != 0 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("workload", "CPI")
	tb.AddRowF("bfs", 12.5)
	tb.AddRow("pr", "3.2")
	out := tb.String()
	if !strings.Contains(out, "workload") || !strings.Contains(out, "12.500") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestStallReasonNames(t *testing.T) {
	for r := StallReason(0); r < NumStallReasons; r++ {
		if s := r.String(); s == "" || strings.HasPrefix(s, "stall(") {
			t.Errorf("reason %d unnamed", r)
		}
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("speedup", "x")
	c.Add("in-order", 1.0)
	c.Add("SVR16", 3.2)
	out := c.String()
	if !strings.Contains(out, "SVR16") || !strings.Contains(out, "3.200x") {
		t.Errorf("chart output:\n%s", out)
	}
	// The max bar must be full width, the 1.0 bar proportionally shorter.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart has %d lines", len(lines))
	}
	if strings.Count(lines[2], "█") != 40 {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	want := int(1.0/3.2*40 + 0.5)
	if got := strings.Count(lines[1], "█"); got != want {
		t.Errorf("proportional bar = %d blocks, want %d", got, want)
	}
}

func TestBarChartEmpty(t *testing.T) {
	if out := NewBarChart("x", "").String(); out != "" {
		t.Errorf("empty chart rendered %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("workload", "CPI")
	tb.AddRow("a,b", `say "hi"`)
	tb.AddRowF("pr", 1.5)
	csv := tb.CSV()
	if !strings.Contains(csv, "workload,CPI\n") {
		t.Errorf("csv header: %q", csv)
	}
	if !strings.Contains(csv, `"a,b","say ""hi"""`) {
		t.Errorf("csv quoting: %q", csv)
	}
	if !strings.Contains(csv, "pr,1.500") {
		t.Errorf("csv row: %q", csv)
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Errorf("mean = %v, want 3", mean)
	}
	// sample variance 2.5, se = sqrt(2.5/5), half = 1.96*se ≈ 1.3859
	if want := 1.96 * math.Sqrt(2.5/5); math.Abs(half-want) > 1e-12 {
		t.Errorf("half-width = %v, want %v", half, want)
	}
	if mean, half := MeanCI95([]float64{7}); mean != 7 || half != 0 {
		t.Errorf("single sample: mean=%v half=%v, want 7, 0", mean, half)
	}
	if mean, half := MeanCI95(nil); mean != 0 || half != 0 {
		t.Errorf("empty: mean=%v half=%v, want 0, 0", mean, half)
	}
	// Identical samples: zero spread.
	if _, half := MeanCI95([]float64{2, 2, 2}); half != 0 {
		t.Errorf("constant samples: half=%v, want 0", half)
	}
}

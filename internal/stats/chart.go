package stats

import (
	"fmt"
	"strings"
)

// BarChart renders labeled values as a horizontal ASCII bar chart, the
// terminal equivalent of the paper's bar figures. Bars scale to width
// characters at the maximum value.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar width in characters (default 40)

	labels []string
	values []float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return ""
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxV := c.values[0]
	maxLabel := 0
	for i, v := range c.values {
		if v > maxV {
			maxV = v
		}
		if len(c.labels[i]) > maxLabel {
			maxLabel = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.values {
		n := 0
		if maxV > 0 {
			n = int(v/maxV*float64(width) + 0.5)
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s %s %.3f%s\n", maxLabel, c.labels[i],
			strings.Repeat("█", n)+strings.Repeat("·", width-n), v, c.Unit)
	}
	return b.String()
}

// CSV renders the table as comma-separated values for external plotting.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Header {
			if i > 0 {
				b.WriteByte(',')
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

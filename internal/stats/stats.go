// Package stats provides the counters, CPI-stack accounting and aggregate
// math (harmonic means, normalization) used to regenerate the paper's
// tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// StallReason classifies where a cycle went, for CPI stacks (Fig 3).
type StallReason int

// Stall reasons attributed by the core timing models.
const (
	StallBase    StallReason = iota // issue slots doing useful work
	StallMemL2                      // waiting on data that hit in L2
	StallMemDRAM                    // waiting on data from DRAM
	StallBranch                     // branch misprediction bubbles
	StallOther                      // structural hazards, FU latency, etc.
	NumStallReasons
)

var stallNames = [NumStallReasons]string{"base", "mem-l2", "mem-dram", "branch", "other"}

// String returns the reason label used in figure output.
func (r StallReason) String() string {
	if r >= 0 && int(r) < len(stallNames) {
		return stallNames[r]
	}
	return fmt.Sprintf("stall(%d)", int(r))
}

// CPIStack decomposes execution cycles per instruction by stall reason.
type CPIStack struct {
	Cycles [NumStallReasons]float64
	Instrs uint64
}

// Add attributes n cycles to a reason.
func (s *CPIStack) Add(r StallReason, n float64) { s.Cycles[r] += n }

// CPI returns total cycles per instruction.
func (s CPIStack) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	total := 0.0
	for _, c := range s.Cycles {
		total += c
	}
	return total / float64(s.Instrs)
}

// Component returns the per-instruction cycles attributed to one reason.
func (s CPIStack) Component(r StallReason) float64 {
	if s.Instrs == 0 {
		return 0
	}
	return s.Cycles[r] / float64(s.Instrs)
}

// String renders the stack compactly.
func (s CPIStack) String() string {
	parts := make([]string, 0, NumStallReasons)
	for r := StallReason(0); r < NumStallReasons; r++ {
		parts = append(parts, fmt.Sprintf("%s=%.2f", r, s.Component(r)))
	}
	return fmt.Sprintf("CPI %.2f (%s)", s.CPI(), strings.Join(parts, " "))
}

// HarmonicMean returns the harmonic mean of xs; it is the correct
// aggregate for normalized IPC (the paper reports hmean speedups).
// Non-positive entries are ignored.
func HarmonicMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += 1 / x
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// ArithMean returns the arithmetic mean of xs.
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95 %
// confidence interval under a normal approximation (1.96·s/√n, sample
// standard deviation). The half-width is 0 for fewer than two samples —
// used for the per-region spread of multi-region sampled runs.
func MeanCI95(xs []float64) (mean, half float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = ArithMean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(len(xs)-1)
	return mean, 1.96 * math.Sqrt(variance/float64(len(xs)))
}

// Counters is a named-counter bag used by the memory system and cores.
type Counters struct {
	m map[string]int64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) { c.m[name] += delta }

// Get returns the value of the named counter (0 if never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns all counter names, sorted.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Table is a simple column-aligned text table for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowF appends a row whose first cell is a label and the rest are
// floats formatted with %.3g unless fmtStr overrides.
func (t *Table) AddRowF(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.3f", v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

package cache

// StridePrefetcher is the baseline L1-D stride prefetcher of Table III: a
// reference prediction table (Chen & Baer) indexed by load PC. On a
// confident striding load it prefetches a few iterations ahead. It covers
// the sequential offset/neighbor-array walks of the graph kernels but not
// the data-dependent indirect accesses — which is precisely the gap SVR
// and IMP compete to fill.
type StridePrefetcher struct {
	entries []strideEntry
	degree  int // lines prefetched ahead on a confident stride

	Issued int64
}

type strideEntry struct {
	pc       int
	valid    bool
	prevAddr uint64
	stride   int64
	conf     int8
}

// NewStridePrefetcher builds a table with the given entry count and
// prefetch degree.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	return &StridePrefetcher{entries: make([]strideEntry, entries), degree: degree}
}

// Observe is called for every demand load. It returns the addresses the
// prefetcher wants fetched (line-deduplicated, max degree).
func (s *StridePrefetcher) Observe(pc int, addr uint64, dst []uint64) []uint64 {
	e := &s.entries[pc%len(s.entries)]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, valid: true, prevAddr: addr}
		return dst
	}
	stride := int64(addr) - int64(e.prevAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.prevAddr = addr

	if e.conf < 2 {
		return dst
	}
	// Confident: fetch the next `degree` distinct lines along the stride.
	lastLine := addr >> LineBits
	next := addr
	for i := 0; i < 64 && len(dst) < s.degree; i++ {
		next += uint64(e.stride)
		if line := next >> LineBits; line != lastLine {
			lastLine = line
			dst = append(dst, next)
			s.Issued++
		}
	}
	return dst
}

package cache

// StridePrefetcher is the baseline L1-D stride prefetcher of Table III: a
// reference prediction table (Chen & Baer) indexed by load PC. On a
// confident striding load it prefetches a few iterations ahead. It covers
// the sequential offset/neighbor-array walks of the graph kernels but not
// the data-dependent indirect accesses — which is precisely the gap SVR
// and IMP compete to fill.
type StridePrefetcher struct {
	entries []strideEntry
	mask    int // len(entries)-1 when a power of two, else -1
	degree  int // lines prefetched ahead on a confident stride

	Issued int64
}

type strideEntry struct {
	pc       int
	valid    bool
	prevAddr uint64
	stride   int64
	conf     int8
}

// NewStridePrefetcher builds a table with the given entry count and
// prefetch degree.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	mask := -1
	if entries > 0 && entries&(entries-1) == 0 {
		mask = entries - 1
	}
	return &StridePrefetcher{entries: make([]strideEntry, entries), mask: mask, degree: degree}
}

// Observe is called for every demand load. It returns the addresses the
// prefetcher wants fetched (line-deduplicated, max degree).
func (s *StridePrefetcher) Observe(pc int, addr uint64, dst []uint64) []uint64 {
	// pc is a non-negative instruction index, so the mask is exactly the
	// modulo for power-of-two tables without the hardware divide.
	var idx int
	if s.mask >= 0 {
		idx = pc & s.mask
	} else {
		idx = pc % len(s.entries)
	}
	e := &s.entries[idx]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, valid: true, prevAddr: addr}
		return dst
	}
	stride := int64(addr) - int64(e.prevAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.prevAddr = addr

	if e.conf < 2 {
		return dst
	}
	// Confident: fetch the next `degree` distinct lines along the stride.
	lastLine := addr >> LineBits
	next := addr
	if st := e.stride; st > 0 && st < LineSize && addr < ^uint64(0)-64*LineSize {
		// Closed form of the step loop below for short positive strides
		// (the common forward array walks): jump straight to each line
		// crossing instead of stepping stride-by-stride. k counts the
		// steps the loop would have taken, so the 64-step cap and the
		// appended addresses are identical to the loop's.
		var k uint64
		for len(dst) < s.degree {
			need := (lastLine+1)<<LineBits - next
			dk := (need + uint64(st) - 1) / uint64(st)
			if k += dk; k > 64 {
				break
			}
			next += dk * uint64(st)
			lastLine = next >> LineBits
			dst = append(dst, next)
			s.Issued++
		}
		return dst
	}
	for i := 0; i < 64 && len(dst) < s.degree; i++ {
		next += uint64(e.stride)
		if line := next >> LineBits; line != lastLine {
			lastLine = line
			dst = append(dst, next)
			s.Issued++
		}
	}
	return dst
}

package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 1<<12, 4, 8) // 4 KiB, 4-way: 16 sets
	addr := uint64(0x1000)
	if hit, _ := c.Lookup(addr, false, true); hit {
		t.Fatal("cold cache should miss")
	}
	c.Fill(addr, false, -1)
	if hit, _ := c.Lookup(addr, false, true); !hit {
		t.Fatal("filled line should hit")
	}
	// Same line, different offset.
	if hit, _ := c.Lookup(addr+63, false, true); !hit {
		t.Fatal("same line should hit")
	}
	if hit, _ := c.Lookup(addr+64, false, true); hit {
		t.Fatal("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 4*64*4, 4, 8) // 4 sets, 4 ways
	// 5 lines mapping to the same set: stride = sets*LineSize = 256.
	base := uint64(0x10000)
	for i := uint64(0); i < 4; i++ {
		c.Fill(base+i*256, false, -1)
	}
	// Touch line 0 to make line 1 LRU.
	c.Lookup(base, false, true)
	v := c.Fill(base+4*256, false, -1)
	if !v.Valid || v.Addr != base+1*256 {
		t.Fatalf("victim = %+v, want line %#x", v, base+256)
	}
	if hit, _ := c.Lookup(base, false, true); !hit {
		t.Error("recently used line was evicted")
	}
	if hit, _ := c.Lookup(base+256, false, true); hit {
		t.Error("LRU line still present")
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := NewCache("t", 4*64, 1, 8) // direct-mapped, 4 sets
	c.Fill(0x1000, false, -1)
	c.Lookup(0x1000, true, true) // dirty it
	v := c.Fill(0x1000+4*64, false, -1)
	if !v.Valid || !v.Dirty {
		t.Fatalf("dirty victim not reported: %+v", v)
	}
	if v.Addr != 0x1000 {
		t.Fatalf("victim addr = %#x, want 0x1000", v.Addr)
	}
}

func TestVictimAddrReconstruction(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		c := NewCache("t", 1<<14, 4, 8)
		addr := uint64(raw) &^ (LineSize - 1)
		c.Fill(addr, false, -1)
		// Fill 4 more conflicting lines; one eviction must return addr.
		setStride := uint64(1 << 12) // sets(64)*64B... 16KiB/4way=64 sets → 4KiB stride
		seen := false
		for i := uint64(1); i <= 4; i++ {
			v := c.Fill(addr+i*setStride, false, -1)
			if v.Valid && v.Addr == addr {
				seen = true
			}
		}
		return seen
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMSHRMergeAndOccupancy(t *testing.T) {
	c := NewCache("t", 1<<12, 4, 4)
	start, idx := c.MSHRAcquire(0x4000, 100)
	if start != 100 {
		t.Fatalf("uncontended acquire start = %d", start)
	}
	c.MSHRComplete(idx, 200)
	if ready, ok := c.MSHRLookup(0x4000, 150); !ok || ready != 200 {
		t.Fatalf("merge lookup = %d, %v", ready, ok)
	}
	if ready, ok := c.MSHRLookup(0x4040, 150); ok {
		t.Fatalf("different line should not merge, got %d", ready)
	}
	if n := c.MSHROccupancy(150); n != 1 {
		t.Fatalf("occupancy = %d", n)
	}
	if _, ok := c.MSHRLookup(0x4000, 250); ok {
		t.Fatal("completed MSHR should not merge")
	}
}

func TestMSHRSaturationStalls(t *testing.T) {
	c := NewCache("t", 1<<12, 4, 2)
	_, i0 := c.MSHRAcquire(0x1000, 10)
	c.MSHRComplete(i0, 110)
	_, i1 := c.MSHRAcquire(0x2000, 10)
	c.MSHRComplete(i1, 120)
	// Third miss at cycle 10 must wait for the first MSHR to free at 110.
	start, i2 := c.MSHRAcquire(0x3000, 10)
	if start != 110 {
		t.Fatalf("saturated acquire start = %d, want 110", start)
	}
	c.MSHRComplete(i2, 210)
	if c.MSHRStallCycles != 100 {
		t.Errorf("stall cycles = %d, want 100", c.MSHRStallCycles)
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB("t", 16, 16)
	addr := uint64(0x123456)
	if tlb.Lookup(addr) {
		t.Fatal("cold TLB should miss")
	}
	tlb.Insert(addr)
	if !tlb.Lookup(addr) {
		t.Fatal("inserted page should hit")
	}
	if !tlb.Lookup(addr + 0xfff - (addr & 0xfff)) {
		t.Fatal("same page should hit")
	}
	if tlb.Lookup(addr + 1<<PageBits) {
		t.Fatal("next page should miss")
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB("t", 4, 4)
	for i := uint64(0); i < 4; i++ {
		tlb.Insert(i << PageBits)
	}
	tlb.Lookup(0) // page 0 now MRU
	tlb.Insert(4 << PageBits)
	if !tlb.Lookup(0) {
		t.Error("MRU page evicted")
	}
	if tlb.Lookup(1 << PageBits) {
		t.Error("LRU page survived")
	}
}

func TestWalkerPoolSerializes(t *testing.T) {
	w := NewWalkerPool(2, 50)
	d1 := w.Walk(0)
	d2 := w.Walk(0)
	d3 := w.Walk(0)
	if d1 != 50 || d2 != 50 {
		t.Fatalf("two walkers should run in parallel: %d %d", d1, d2)
	}
	if d3 != 100 {
		t.Fatalf("third walk = %d, want 100 (queued)", d3)
	}
	if w.Walks != 3 {
		t.Errorf("walks = %d", w.Walks)
	}
}

func TestStridePrefetcherDetects(t *testing.T) {
	s := NewStridePrefetcher(16, 4)
	var got []uint64
	// Stride of 8 bytes from PC 5: needs a few observations for confidence.
	for i := uint64(0); i < 20; i++ {
		got = s.Observe(5, 0x1000+i*8, got[:0])
	}
	if len(got) == 0 {
		t.Fatal("confident stride produced no prefetches")
	}
	// All prefetches must be ahead of the last access and line-distinct.
	last := uint64(0x1000 + 19*8)
	seen := map[uint64]bool{last >> LineBits: true}
	for _, a := range got {
		if a <= last {
			t.Errorf("prefetch %#x not ahead of %#x", a, last)
		}
		line := a >> LineBits
		if seen[line] {
			t.Errorf("duplicate line %#x", line)
		}
		seen[line] = true
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	s := NewStridePrefetcher(16, 4)
	addrs := []uint64{0x1000, 0x9210, 0x3333, 0x7777, 0x2468, 0xabc0}
	var got []uint64
	for _, a := range addrs {
		got = s.Observe(7, a, got[:0])
	}
	if len(got) != 0 {
		t.Errorf("random pattern produced %d prefetches", len(got))
	}
}

func TestTrackerAccuracy(t *testing.T) {
	tr := NewTracker()
	tr.Mark(0x1000, OriginSVR)
	tr.Mark(0x2000, OriginSVR)
	tr.Mark(0x3000, OriginIMP)
	tr.Touch(0x1010) // same line as 0x1000
	tr.Evict(0x2000)
	tr.Evict(0x3000)

	svr := tr.Stats[OriginSVR]
	if svr.Issued != 2 || svr.Used != 1 || svr.EvictedUnused != 1 {
		t.Fatalf("svr stats = %+v", svr)
	}
	if acc := svr.Accuracy(); acc != 0.5 {
		t.Errorf("svr accuracy = %v, want 0.5", acc)
	}
	if imp := tr.Stats[OriginIMP]; imp.EvictedUnused != 1 {
		t.Errorf("imp stats = %+v", imp)
	}
	if tr.Pending() != 0 {
		t.Errorf("pending = %d", tr.Pending())
	}
	// Double-touch should not double-count.
	tr.Touch(0x1000)
	if tr.Stats[OriginSVR].Used != 1 {
		t.Error("touch on untagged line counted")
	}
}

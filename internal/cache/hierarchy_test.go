package cache

import (
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.StrideDegree = 0 // disable stride pf for deterministic tests
	return cfg
}

func TestHierarchyColdMissThenHit(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x100000)
	r1 := h.Access(1, addr, false, 0)
	if r1.Level != LevelMem {
		t.Fatalf("cold access level = %v", r1.Level)
	}
	// First touch pays the TLB walk (4+30), L1+L2 probes (3+13) and DRAM
	// latency (90 cycles @ 2 GHz / 45 ns) plus transfer time.
	if r1.CompleteAt < 140 || r1.CompleteAt > 145 {
		t.Errorf("cold miss latency = %d, want ~140", r1.CompleteAt)
	}
	r2 := h.Access(1, addr, false, r1.CompleteAt)
	if r2.Level != LevelL1 {
		t.Fatalf("second access level = %v, want L1", r2.Level)
	}
	if d := r2.CompleteAt - r1.CompleteAt; d != h.Cfg.L1Latency {
		t.Errorf("L1 hit latency = %d", d)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := testConfig()
	cfg.L1Size = 4 << 10 // tiny L1 so we can evict from it easily
	h := NewHierarchy(cfg)
	addr := uint64(0x100000)
	r := h.Access(1, addr, false, 0)
	// Evict addr from L1 by filling its set (4 ways, set stride 1 KiB).
	for i := uint64(1); i <= 4; i++ {
		h.Access(1, addr+i*1024, false, r.CompleteAt)
	}
	rr := h.Access(1, addr, false, 10000)
	if rr.Level != LevelL2 {
		t.Fatalf("level = %v, want L2 (inclusive hierarchy)", rr.Level)
	}
	if lat := rr.CompleteAt - 10000; lat != h.Cfg.L1Latency+h.Cfg.L2Latency {
		t.Errorf("L2 hit latency = %d", lat)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x200000)
	r1 := h.Access(1, addr, false, 0)
	before := h.TotalDRAMLoads()
	// Access to the same line while the fill is outstanding merges.
	r2 := h.Access(1, addr+8, false, 5)
	if h.TotalDRAMLoads() != before {
		t.Error("secondary miss caused a second DRAM fetch")
	}
	if r2.CompleteAt != r1.CompleteAt {
		t.Errorf("merged completion %d != primary %d", r2.CompleteAt, r1.CompleteAt)
	}
}

func TestHierarchyMSHRLimitSerializesMisses(t *testing.T) {
	cfg := testConfig()
	cfg.L1MSHRs = 1
	h := NewHierarchy(cfg)
	r1 := h.Access(1, 0x100000, false, 0)
	r2 := h.Access(2, 0x200000, false, 0)
	if r2.CompleteAt <= r1.CompleteAt {
		t.Errorf("with 1 MSHR the second miss must wait: %d <= %d", r2.CompleteAt, r1.CompleteAt)
	}

	cfg.L1MSHRs = 16
	h2 := NewHierarchy(cfg)
	a1 := h2.Access(1, 0x100000, false, 0)
	a2 := h2.Access(2, 0x200000, false, 0)
	// With plenty of MSHRs the misses overlap; only DRAM transfer
	// occupancy (~3 cycles) separates them.
	if d := a2.CompleteAt - a1.CompleteAt; d > 10 {
		t.Errorf("16-MSHR misses should overlap, delta = %d", d)
	}
}

func TestHierarchyPrefetchThenDemandHits(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x300000)
	p := h.Prefetch(addr, 0, OriginSVR)
	if p.Level != LevelMem {
		t.Fatalf("prefetch level = %v", p.Level)
	}
	if h.DRAMLoads[OriginSVR] != 1 {
		t.Fatalf("svr dram loads = %d", h.DRAMLoads[OriginSVR])
	}
	r := h.Access(1, addr, false, p.CompleteAt+1)
	if r.Level != LevelL1 {
		t.Fatalf("demand after prefetch level = %v", r.Level)
	}
	if h.Tracker.Stats[OriginSVR].Used != 1 {
		t.Error("prefetch use not recorded")
	}
}

func TestHierarchyPrefetchDedup(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x400000)
	h.Prefetch(addr, 0, OriginSVR)
	h.Prefetch(addr+8, 1, OriginSVR) // same line, in flight: merge
	if h.DRAMLoads[OriginSVR] != 1 {
		t.Errorf("duplicate prefetch fetched twice: %d", h.DRAMLoads[OriginSVR])
	}
	h.Prefetch(addr, 500, OriginSVR) // already filled: L1 hit
	if h.DRAMLoads[OriginSVR] != 1 {
		t.Errorf("prefetch of resident line fetched: %d", h.DRAMLoads[OriginSVR])
	}
}

func TestHierarchyTLBMissCost(t *testing.T) {
	h := NewHierarchy(testConfig())
	// Two accesses to the same line; first pays walk, second doesn't.
	addr := uint64(0x500000)
	r1 := h.Access(1, addr, false, 0)
	h2 := NewHierarchy(testConfig())
	h2.DTLB.Insert(addr)
	h2.STLB.Insert(addr)
	r2 := h2.Access(1, addr, false, 0)
	if r1.CompleteAt <= r2.CompleteAt {
		t.Errorf("TLB miss should cost extra: %d <= %d", r1.CompleteAt, r2.CompleteAt)
	}
	if d := r1.CompleteAt - r2.CompleteAt; d != h.Cfg.STLBLatency+h.Cfg.WalkLatency {
		t.Errorf("walk cost = %d, want %d", d, h.Cfg.STLBLatency+h.Cfg.WalkLatency)
	}
	if h.Walkers.Walks != 1 {
		t.Errorf("walks = %d", h.Walkers.Walks)
	}
}

func TestHierarchyWritebacks(t *testing.T) {
	cfg := testConfig()
	cfg.L1Size = 1 << 10 // 1 KiB L1 (4 sets x 4 ways)
	cfg.L2Size = 4 << 10 // 4 KiB L2 (8 sets x 8 ways)
	h := NewHierarchy(cfg)
	// Write a lot of distinct lines to force dirty evictions to DRAM.
	at := int64(0)
	for i := uint64(0); i < 512; i++ {
		r := h.Access(1, 0x100000+i*64, true, at)
		at = r.CompleteAt
	}
	if h.Writebacks == 0 {
		t.Error("no writebacks after streaming dirty lines through a tiny hierarchy")
	}
}

func TestHierarchyStridePrefetcherCovers(t *testing.T) {
	cfg := DefaultConfig() // stride prefetcher on
	h := NewHierarchy(cfg)
	at := int64(0)
	hits := 0
	const n = 256
	for i := 0; i < n; i++ {
		r := h.Access(3, 0x800000+uint64(i)*8, false, at)
		if r.Level == LevelL1 {
			hits++
		}
		at = r.CompleteAt + 20
	}
	// A sequential walk with a stride prefetcher should mostly hit.
	if hits < n/2 {
		t.Errorf("stride-prefetched walk hit only %d/%d", hits, n)
	}
	if h.DRAMLoads[OriginStride] == 0 {
		t.Error("stride prefetcher issued no DRAM fetches")
	}
}

func TestFetchInstrColdJumpStalls(t *testing.T) {
	h := NewHierarchy(testConfig())
	// A discontinuous cold fetch (nothing in L1-I, jump target) pays the
	// ITLB walk plus the full fill from DRAM.
	bubble := h.FetchInstr(0x100000, 0)
	if bubble < h.Cfg.L1Latency+h.Cfg.L2Latency+h.Cfg.WalkLatency {
		t.Errorf("cold-jump fetch bubble = %d, want a DRAM-class stall", bubble)
	}
	if h.L1I.Misses != 1 {
		t.Errorf("L1I misses = %d, want 1", h.L1I.Misses)
	}
	// Refetching the same line hits and costs nothing.
	if b := h.FetchInstr(0x100000, 1000); b != 0 {
		t.Errorf("refetch of resident line bubble = %d, want 0", b)
	}
}

func TestFetchInstrSequentialFetchAheadHidesMiss(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.FetchInstr(0x100000, 0)    // cold: fills line and next line
	h.FetchInstr(0x100040, 1000) // next-line prefetch hit, advances lastILine
	missesBefore := h.L1I.Misses
	// Straight-line execution into an absent line: the fetch queue
	// requested it ahead of time, so the miss must not stall the front end.
	if b := h.FetchInstr(0x100080, 2000); b != 0 {
		t.Errorf("sequential miss bubble = %d, want 0 (hidden by fetch-ahead)", b)
	}
	if h.L1I.Misses != missesBefore+1 {
		t.Errorf("L1I misses = %d, want %d (fetch-ahead still misses)", h.L1I.Misses, missesBefore+1)
	}
	// The same line fetched after a jump (non-sequential) would have
	// stalled: verify on a fresh hierarchy with a primed TLB.
	h2 := NewHierarchy(testConfig())
	h2.FetchInstr(0x100000, 0)
	if b := h2.FetchInstr(0x100080, 2000); b == 0 {
		t.Error("discontinuous miss bubble = 0, want a stall")
	}
}

func TestFetchInstrDRAMFillsCountAsInstLoads(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.FetchInstr(0x100000, 0)
	if h.IFetchLoads != 1 {
		t.Errorf("IFetchLoads = %d, want 1", h.IFetchLoads)
	}
	for o, n := range h.DRAMLoads {
		if n != 0 {
			t.Errorf("data-side DRAMLoads[%v] = %d, want 0 for an I-side fetch", Origin(o), n)
		}
	}
	// The counter is registered as the Fig 13b "Core(inst)" category.
	if got := h.Reg.Snapshot().Counters["dram.loads.inst"]; got != 1 {
		t.Errorf("snapshot dram.loads.inst = %d, want 1", got)
	}
	// An I-fetch whose line already sits in the (unified) L2 — here
	// brought in by the data side — must not touch DRAM.
	h2 := NewHierarchy(testConfig())
	h2.Access(1, 0x200000, false, 0)
	h2.FetchInstr(0x200000, 5000)
	if h2.IFetchLoads != 0 {
		t.Errorf("L2-resident I-fetch went to DRAM: IFetchLoads = %d", h2.IFetchLoads)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Access(1, 0x100000, false, 0)
	h.Prefetch(0x200000, 0, OriginSVR)
	h.Reg.Reset()
	if h.TotalDRAMLoads() != 0 || h.L1D.Accesses != 0 || h.Writebacks != 0 {
		t.Error("stats not cleared")
	}
	// Contents preserved: the line should still hit.
	r := h.Access(1, 0x100000, false, 1000)
	if r.Level != LevelL1 {
		t.Error("cache contents lost on ResetStats")
	}
}

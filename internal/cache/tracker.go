package cache

import "repro/internal/metrics"

// PFStats aggregates prefetch effectiveness for one origin.
type PFStats struct {
	Issued        int64 // prefetches that fetched a line from DRAM
	Used          int64 // prefetched lines demand-touched before LLC eviction
	EvictedUnused int64 // prefetched lines evicted from the LLC untouched
}

// Accuracy returns Used / (Used + EvictedUnused) — the paper's prefetch
// accuracy definition (§VI-C): the fraction of prefetched cache lines
// accessed by the core before being evicted from the LLC.
func (s PFStats) Accuracy() float64 {
	den := s.Used + s.EvictedUnused
	if den == 0 {
		return 1
	}
	return float64(s.Used) / float64(den)
}

// Tracker implements the prefetch tags of §IV-A7: it records, per line
// brought in by a prefetch, whether the main program touched it before it
// left the last-level cache. The SVR accuracy monitor polls it.
type Tracker struct {
	tags  map[uint64]Origin // line address -> origin, only while unused
	Stats [NumOrigins]PFStats
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{tags: make(map[uint64]Origin)} }

// Mark tags a line fetched from DRAM by a prefetch of the given origin.
func (t *Tracker) Mark(addr uint64, origin Origin) {
	lineAddr := addr &^ (LineSize - 1)
	if _, dup := t.tags[lineAddr]; dup {
		return
	}
	t.tags[lineAddr] = origin
	t.Stats[origin].Issued++
}

// Touch records a demand access: if the line was a pending prefetch it
// counts as used and the tag is cleared.
func (t *Tracker) Touch(addr uint64) {
	lineAddr := addr &^ (LineSize - 1)
	if o, ok := t.tags[lineAddr]; ok {
		t.Stats[o].Used++
		delete(t.tags, lineAddr)
	}
}

// Evict records an LLC eviction: an untouched prefetched line counts
// against accuracy.
func (t *Tracker) Evict(addr uint64) {
	lineAddr := addr &^ (LineSize - 1)
	if o, ok := t.tags[lineAddr]; ok {
		t.Stats[o].EvictedUnused++
		delete(t.tags, lineAddr)
	}
}

// Pending returns the number of outstanding unused prefetched lines.
func (t *Tracker) Pending() int { return len(t.tags) }

// Register publishes per-origin prefetch-accuracy counters
// ("pf.<origin>.*") and a gauge of outstanding unused prefetched lines.
// Registry.Reset zeroes the counters but keeps the outstanding tags, the
// same windowing the old ResetStats provided.
func (t *Tracker) Register(r *metrics.Registry) {
	for o := Origin(0); o < NumOrigins; o++ {
		s := &t.Stats[o]
		name := o.String()
		r.Int64("pf."+name+".issued", name+" prefetches that fetched a line from DRAM", &s.Issued)
		r.Int64("pf."+name+".used", name+"-prefetched lines demand-touched before LLC eviction", &s.Used)
		r.Int64("pf."+name+".evicted_unused", name+"-prefetched lines evicted from the LLC untouched", &s.EvictedUnused)
	}
	r.GaugeFunc("pf.pending", "outstanding prefetched lines not yet demand-touched",
		func() int64 { return int64(len(t.tags)) })
}

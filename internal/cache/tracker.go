package cache

import "repro/internal/metrics"

// PFStats aggregates prefetch effectiveness for one origin.
type PFStats struct {
	Issued        int64 // prefetches that fetched a line from DRAM
	Used          int64 // prefetched lines demand-touched before LLC eviction
	EvictedUnused int64 // prefetched lines evicted from the LLC untouched
}

// Accuracy returns Used / (Used + EvictedUnused) — the paper's prefetch
// accuracy definition (§VI-C): the fraction of prefetched cache lines
// accessed by the core before being evicted from the LLC.
func (s PFStats) Accuracy() float64 {
	den := s.Used + s.EvictedUnused
	if den == 0 {
		return 1
	}
	return float64(s.Used) / float64(den)
}

// Tracker implements the prefetch tags of §IV-A7: it records, per line
// brought in by a prefetch, whether the main program touched it before it
// left the last-level cache. The SVR accuracy monitor polls it.
//
// The tag set lives in a flat open-addressed hash table (linear probing,
// backward-shift deletion) instead of a Go map: Touch runs once per
// demand access on prefetching machines, and the dense probe sequence
// beats the map's bucket indirection there.
type Tracker struct {
	keys    []uint64 // lineAddr+1 per slot, 0 = empty; power-of-two length
	origins []Origin // origin per occupied slot
	n       int      // occupied slots
	mask    uint64   // len(keys)-1
	shift   uint     // 64 - log2(len(keys)), for Fibonacci hashing

	// lastMiss is a line address known to carry no tag, plus one (zero =
	// invalid). Demand streams touch the same line many times in a row,
	// so this single-entry cache removes the table probe from most Touch
	// calls. Only Mark adds tags, and it invalidates a matching lastMiss.
	lastMiss uint64

	Stats [NumOrigins]PFStats
}

// trackerSizeHint pre-sizes the tag table for the steady-state population
// of outstanding prefetched lines (bounded by the LLC capacity a few
// thousand lines; runs rarely exceed a few hundred unused tags), so the
// table does not rehash-grow during the measurement window.
const trackerSizeHint = 1 << 10

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	t := &Tracker{}
	t.initTable(trackerSizeHint)
	return t
}

func (t *Tracker) initTable(capacity int) {
	t.keys = make([]uint64, capacity)
	t.origins = make([]Origin, capacity)
	t.n = 0
	t.mask = uint64(capacity - 1)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

// home returns the preferred slot for a key (Fibonacci hashing: the
// multiply spreads line addresses that differ only in low bits).
func (t *Tracker) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

// find returns the slot holding key, or the empty slot where it would be
// inserted. The table never fills (grow keeps load ≤ 3/4), so the probe
// always terminates.
func (t *Tracker) find(key uint64) (slot uint64, ok bool) {
	i := t.home(key)
	for {
		k := t.keys[i]
		if k == 0 {
			return i, false
		}
		if k == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

// del vacates a slot with backward-shift deletion: subsequent probe-chain
// entries slide back so every remaining key stays reachable from its home.
func (t *Tracker) del(i uint64) {
	j := i
	for {
		j = (j + 1) & t.mask
		k := t.keys[j]
		if k == 0 {
			break
		}
		// Move j's entry into the hole iff its home precedes the hole in
		// probe order (cyclic distance home→j spans the hole).
		if (j-t.home(k))&t.mask >= (j-i)&t.mask {
			t.keys[i] = k
			t.origins[i] = t.origins[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.n--
}

func (t *Tracker) grow() {
	oldKeys, oldOrigins := t.keys, t.origins
	t.initTable(2 * len(oldKeys))
	for i, k := range oldKeys {
		if k != 0 {
			j, _ := t.find(k)
			t.keys[j] = k
			t.origins[j] = oldOrigins[i]
			t.n++
		}
	}
}

// Clear drops all outstanding tags in place, keeping the table's storage
// so a reused tracker does not re-grow it, and zeroes the per-origin stats.
func (t *Tracker) Clear() {
	clear(t.keys)
	t.n = 0
	t.lastMiss = 0
	t.Stats = [NumOrigins]PFStats{}
}

// Mark tags a line fetched from DRAM by a prefetch of the given origin.
func (t *Tracker) Mark(addr uint64, origin Origin) {
	lineAddr := addr &^ (LineSize - 1)
	i, dup := t.find(lineAddr + 1)
	if dup {
		return
	}
	if t.lastMiss == lineAddr+1 {
		t.lastMiss = 0
	}
	t.keys[i] = lineAddr + 1
	t.origins[i] = origin
	t.n++
	if 4*t.n > 3*len(t.keys) {
		t.grow()
	}
	t.Stats[origin].Issued++
}

// Touch records a demand access: if the line was a pending prefetch it
// counts as used and the tag is cleared. The empty-table early-out keeps
// the per-access probe off the hot path of prefetch-free machines.
func (t *Tracker) Touch(addr uint64) {
	if t.n == 0 {
		return
	}
	lineAddr := addr &^ (LineSize - 1)
	if t.lastMiss == lineAddr+1 {
		return
	}
	if i, ok := t.find(lineAddr + 1); ok {
		t.Stats[t.origins[i]].Used++
		t.del(i)
	}
	// Tagged or not, the line carries no tag now.
	t.lastMiss = lineAddr + 1
}

// Evict records an LLC eviction: an untouched prefetched line counts
// against accuracy.
func (t *Tracker) Evict(addr uint64) {
	if t.n == 0 {
		return
	}
	lineAddr := addr &^ (LineSize - 1)
	if i, ok := t.find(lineAddr + 1); ok {
		t.Stats[t.origins[i]].EvictedUnused++
		t.del(i)
	}
}

// Pending returns the number of outstanding unused prefetched lines.
func (t *Tracker) Pending() int { return t.n }

// each calls f for every outstanding tag, in table order.
func (t *Tracker) each(f func(lineAddr uint64, o Origin)) {
	for i, k := range t.keys {
		if k != 0 {
			f(k-1, t.origins[i])
		}
	}
}

// setTag installs a tag without touching stats — warm-state restore only.
func (t *Tracker) setTag(lineAddr uint64, o Origin) {
	i, dup := t.find(lineAddr + 1)
	if dup {
		t.origins[i] = o
		return
	}
	t.keys[i] = lineAddr + 1
	t.origins[i] = o
	t.n++
	if 4*t.n > 3*len(t.keys) {
		t.grow()
	}
}

// resetTags drops all tags but keeps stats — warm-state restore only.
func (t *Tracker) resetTags() {
	clear(t.keys)
	t.n = 0
	t.lastMiss = 0
}

// Register publishes per-origin prefetch-accuracy counters
// ("pf.<origin>.*") and a gauge of outstanding unused prefetched lines.
// Registry.Reset zeroes the counters but keeps the outstanding tags, the
// same windowing the old ResetStats provided.
func (t *Tracker) Register(r *metrics.Registry) {
	for o := Origin(0); o < NumOrigins; o++ {
		s := &t.Stats[o]
		name := o.String()
		r.Int64("pf."+name+".issued", name+" prefetches that fetched a line from DRAM", &s.Issued)
		r.Int64("pf."+name+".used", name+"-prefetched lines demand-touched before LLC eviction", &s.Used)
		r.Int64("pf."+name+".evicted_unused", name+"-prefetched lines evicted from the LLC untouched", &s.EvictedUnused)
	}
	r.GaugeFunc("pf.pending", "outstanding prefetched lines not yet demand-touched",
		func() int64 { return int64(t.n) })
}

package cache

import "repro/internal/metrics"

// PFStats aggregates prefetch effectiveness for one origin.
type PFStats struct {
	Issued        int64 // prefetches that fetched a line from DRAM
	Used          int64 // prefetched lines demand-touched before LLC eviction
	EvictedUnused int64 // prefetched lines evicted from the LLC untouched
}

// Accuracy returns Used / (Used + EvictedUnused) — the paper's prefetch
// accuracy definition (§VI-C): the fraction of prefetched cache lines
// accessed by the core before being evicted from the LLC.
func (s PFStats) Accuracy() float64 {
	den := s.Used + s.EvictedUnused
	if den == 0 {
		return 1
	}
	return float64(s.Used) / float64(den)
}

// Tracker implements the prefetch tags of §IV-A7: it records, per line
// brought in by a prefetch, whether the main program touched it before it
// left the last-level cache. The SVR accuracy monitor polls it.
type Tracker struct {
	tags map[uint64]Origin // line address -> origin, only while unused

	// lastMiss is a line address known to carry no tag, plus one (zero =
	// invalid). Demand streams touch the same line many times in a row,
	// so this single-entry cache removes the map probe from most Touch
	// calls. Only Mark adds tags, and it invalidates a matching lastMiss.
	lastMiss uint64

	Stats [NumOrigins]PFStats
}

// trackerSizeHint pre-sizes the tag map for the steady-state population
// of outstanding prefetched lines (bounded by the LLC capacity a few
// thousand lines; runs rarely exceed a few hundred unused tags), so the
// map does not rehash-grow during the measurement window.
const trackerSizeHint = 1 << 10

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{tags: make(map[uint64]Origin, trackerSizeHint)} }

// Clear drops all outstanding tags in place, keeping the map's storage so
// a reused tracker does not re-grow it, and zeroes the per-origin stats.
func (t *Tracker) Clear() {
	clear(t.tags)
	t.lastMiss = 0
	t.Stats = [NumOrigins]PFStats{}
}

// Mark tags a line fetched from DRAM by a prefetch of the given origin.
func (t *Tracker) Mark(addr uint64, origin Origin) {
	lineAddr := addr &^ (LineSize - 1)
	if _, dup := t.tags[lineAddr]; dup {
		return
	}
	if t.lastMiss == lineAddr+1 {
		t.lastMiss = 0
	}
	t.tags[lineAddr] = origin
	t.Stats[origin].Issued++
}

// Touch records a demand access: if the line was a pending prefetch it
// counts as used and the tag is cleared. The empty-map early-out keeps
// the per-access map probe off the hot path of prefetch-free machines.
func (t *Tracker) Touch(addr uint64) {
	if len(t.tags) == 0 {
		return
	}
	lineAddr := addr &^ (LineSize - 1)
	if t.lastMiss == lineAddr+1 {
		return
	}
	if o, ok := t.tags[lineAddr]; ok {
		t.Stats[o].Used++
		delete(t.tags, lineAddr)
	}
	// Tagged or not, the line carries no tag now.
	t.lastMiss = lineAddr + 1
}

// Evict records an LLC eviction: an untouched prefetched line counts
// against accuracy.
func (t *Tracker) Evict(addr uint64) {
	if len(t.tags) == 0 {
		return
	}
	lineAddr := addr &^ (LineSize - 1)
	if o, ok := t.tags[lineAddr]; ok {
		t.Stats[o].EvictedUnused++
		delete(t.tags, lineAddr)
	}
}

// Pending returns the number of outstanding unused prefetched lines.
func (t *Tracker) Pending() int { return len(t.tags) }

// Register publishes per-origin prefetch-accuracy counters
// ("pf.<origin>.*") and a gauge of outstanding unused prefetched lines.
// Registry.Reset zeroes the counters but keeps the outstanding tags, the
// same windowing the old ResetStats provided.
func (t *Tracker) Register(r *metrics.Registry) {
	for o := Origin(0); o < NumOrigins; o++ {
		s := &t.Stats[o]
		name := o.String()
		r.Int64("pf."+name+".issued", name+" prefetches that fetched a line from DRAM", &s.Issued)
		r.Int64("pf."+name+".used", name+"-prefetched lines demand-touched before LLC eviction", &s.Used)
		r.Int64("pf."+name+".evicted_unused", name+"-prefetched lines evicted from the LLC untouched", &s.EvictedUnused)
	}
	r.GaugeFunc("pf.pending", "outstanding prefetched lines not yet demand-touched",
		func() int64 { return int64(len(t.tags)) })
}

// Package cache models the on-chip memory system: set-associative
// write-back caches with MSHRs and prefetch tags, TLBs with a page-walker
// pool, a reference-prediction-table stride prefetcher, and the Hierarchy
// that stitches them to the DRAM channel.
//
// Timing is occupancy-based: each access computes its completion cycle at
// issue from the current state of the MSHRs, page walkers and DRAM
// channel. This captures the first-order limits the paper studies —
// hit-under-miss MSHR saturation (Fig 17) and bandwidth saturation
// (Fig 18) — without a discrete-event queue.
package cache

import (
	"fmt"

	"repro/internal/metrics"
)

// Origin identifies who caused a memory request; used for the DRAM-origin
// breakdown of Fig 13b and for prefetch-accuracy accounting (Fig 13a).
type Origin int

// Request origins.
const (
	OriginDemand Origin = iota // main-thread demand access
	OriginStride               // baseline L1D stride prefetcher
	OriginIMP                  // indirect memory prefetcher
	OriginSVR                  // scalar vector runahead
	OriginPTW                  // page-table walk
	NumOrigins
)

var originNames = [NumOrigins]string{"demand", "stride", "imp", "svr", "ptw"}

// String returns the origin label used in counters.
func (o Origin) String() string {
	if o >= 0 && int(o) < len(originNames) {
		return originNames[o]
	}
	return fmt.Sprintf("origin(%d)", int(o))
}

// LineBits is log2 of the cache-line size (64 B, Table III).
const LineBits = 6

// LineSize is the cache-line size in bytes.
const LineSize = 1 << LineBits

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	lastUse  uint64 // LRU timestamp
	prefetch Origin // origin that prefetched the line, or -1
	touched  bool   // demand-accessed since fill
}

// Cache is one level of set-associative, write-back, write-allocate cache.
type Cache struct {
	Name     string
	sets     []line   // ways*numSets entries, set-major
	tagp     []uint64 // packed scan array parallel to sets: tag+1, 0 = invalid
	ways     int
	setMask  uint64
	setBits  uint
	lruClock uint64

	// Single-entry last-line cache: fastLine is the line index
	// (addr>>LineBits) of the most recently hit or filled line plus one
	// (zero = invalid) and fastWay points at its way. Lookup and Peek
	// consult it before scanning the set; Fill repoints it. The fast
	// path replays exactly the state updates of a scan hit, so cache
	// contents, LRU order and counters are bit-identical either way.
	fastLine uint64
	fastWay  *line

	// Direct-mapped line→way hints: lineHint[(addr>>LineBits)&lineHintMask]
	// holds the flat sets index of the way last seen holding that line,
	// plus one (zero = no hint). Hints are advisory: a hit must verify
	// both that the index lies inside addr's own set — the tag excludes
	// set bits, so a tag match alone could alias a same-tag line in
	// another set — and that tagp still carries the line's tag. Refresh
	// consults them after a fastLine miss, turning the prefetch path's
	// residency re-touch of a non-MRU line into one verified probe instead
	// of a set scan; Fill and scan hits teach them. Same discipline as the
	// TLB's slotIdx table. nil unless EnableLineHints was called — only
	// the L1-D has a Refresh-heavy caller (Hierarchy.Prefetch), and on
	// hint-blind caches the teaching stores would be pure cost.
	lineHint     []uint32
	lineHintMask uint64

	// MSHRs: outstanding fills, as (line address, ready cycle) pairs.
	// mshrMaxReady is the latest fill completion ever recorded: a probe
	// at a cycle at or past it cannot find an in-flight fill, which lets
	// the demand path skip the MSHR scan entirely.
	mshrs        []mshrEntry
	mshrCap      int
	mshrMaxReady int64

	// Stats.
	Accesses        int64
	Misses          int64
	MSHRStallCycles int64

	mshrStall *metrics.Histogram // per-acquire stall distribution, if registered
}

// Register publishes the cache's counters under the given metric prefix
// (e.g. "l1d" → "l1d.accesses"). The fields stay plain — hot paths and
// existing readers are untouched — while the registry gains reset and
// export authority over them.
func (c *Cache) Register(r *metrics.Registry, prefix string) {
	r.Int64(prefix+".accesses", c.Name+" lookups", &c.Accesses)
	r.Int64(prefix+".misses", c.Name+" lookup misses", &c.Misses)
	r.Int64(prefix+".mshr_stall_cycles", c.Name+" cycles stalled waiting for a free MSHR", &c.MSHRStallCycles)
}

type mshrEntry struct {
	lineAddr uint64
	readyAt  int64
}

// NewCache builds a cache of the given total size, associativity and MSHR
// count. Size must be a power-of-two multiple of ways*LineSize.
func NewCache(name string, sizeBytes, ways, mshrs int) *Cache {
	numLines := sizeBytes / LineSize
	numSets := numLines / ways
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	setBits := uint(0)
	for 1<<setBits < numSets {
		setBits++
	}
	c := &Cache{
		Name:    name,
		sets:    make([]line, numLines),
		tagp:    make([]uint64, numLines),
		ways:    ways,
		setMask: uint64(numSets - 1),
		setBits: setBits,
		mshrCap: mshrs,
	}
	for i := range c.sets {
		c.sets[i].prefetch = -1
	}
	return c
}

// EnableLineHints allocates the line→way hint table (4 slots per line,
// power of two, min 64). Call it on caches whose Refresh path is hot —
// the hierarchy enables it for the L1-D, which Prefetch re-touches on
// every resident-line SVR/stride request.
func (c *Cache) EnableLineHints() {
	hintSlots := 64
	for hintSlots < 4*len(c.sets) {
		hintSlots *= 2
	}
	c.lineHint = make([]uint32, hintSlots)
	c.lineHintMask = uint64(hintSlots - 1)
}

// setBase returns the flat index of addr's set's first way. The tag
// match scans run over tagp[base:base+ways] — a dense uint64 run (one
// cache line for 8 ways) instead of striding through the line structs;
// only a match dereferences the full line. Fill is the sole mutator of
// a way's identity, and it keeps tagp in sync.
func (c *Cache) setBase(addr uint64) uint64 {
	return ((addr >> LineBits) & c.setMask) * uint64(c.ways)
}

func (c *Cache) tag(addr uint64) uint64 { return addr >> (LineBits + c.setBits) }

// rebuildTagp rederives the packed scan array from the line structs;
// used after a warm-state restore overwrites sets wholesale.
func (c *Cache) rebuildTagp() {
	for i := range c.sets {
		if c.sets[i].valid {
			c.tagp[i] = c.sets[i].tag + 1
		} else {
			c.tagp[i] = 0
		}
	}
}

// Lookup probes the cache without filling. On hit it refreshes LRU state,
// marks the line touched, and reports any prefetch origin the line carried
// (clearing it, since a prefetch counts as useful on first demand touch
// when markTouched is set).
func (c *Cache) Lookup(addr uint64, write, markTouched bool) (hit bool, wasPrefetch Origin) {
	c.Accesses++
	if c.fastLine == addr>>LineBits+1 {
		l := c.fastWay
		c.lruClock++
		l.lastUse = c.lruClock
		if write {
			l.dirty = true
		}
		pf := l.prefetch
		if markTouched {
			l.touched = true
			l.prefetch = -1
		}
		return true, pf
	}
	tag := c.tag(addr)
	base := c.setBase(addr)
	for i, t := range c.tagp[base : base+uint64(c.ways)] {
		if t == tag+1 {
			l := &c.sets[base+uint64(i)]
			c.lruClock++
			l.lastUse = c.lruClock
			if write {
				l.dirty = true
			}
			c.fastLine, c.fastWay = addr>>LineBits+1, l
			if c.lineHint != nil {
				c.lineHint[(addr>>LineBits)&c.lineHintMask] = uint32(base+uint64(i)) + 1
			}
			pf := l.prefetch
			if markTouched {
				l.touched = true
				l.prefetch = -1
			}
			return true, pf
		}
	}
	c.Misses++
	return false, -1
}

// Refresh re-touches a present line exactly as a no-write, no-mark Lookup
// hit would — counting the access and bumping LRU — but records nothing at
// all on a miss. It fuses the prefetch path's Peek-then-Lookup pair into a
// single set scan; the state after Refresh is bit-identical to
// `if c.Peek(addr) { c.Lookup(addr, false, false) }`.
func (c *Cache) Refresh(addr uint64) bool {
	if c.fastLine == addr>>LineBits+1 {
		c.Accesses++
		c.lruClock++
		c.fastWay.lastUse = c.lruClock
		return true
	}
	tag := c.tag(addr)
	base := c.setBase(addr)
	// Verified line→way hint: one probe instead of the set scan when the
	// line was seen recently but is not the MRU line (SVR prefetch bursts
	// cycling over a few hot lines). The state updates are exactly the
	// scan hit's below.
	if c.lineHint != nil {
		if hi := uint64(c.lineHint[(addr>>LineBits)&c.lineHintMask]); hi != 0 {
			if idx := hi - 1; idx >= base && idx < base+uint64(c.ways) && c.tagp[idx] == tag+1 {
				l := &c.sets[idx]
				c.Accesses++
				c.lruClock++
				l.lastUse = c.lruClock
				c.fastLine, c.fastWay = addr>>LineBits+1, l
				return true
			}
		}
	}
	for i, t := range c.tagp[base : base+uint64(c.ways)] {
		if t == tag+1 {
			l := &c.sets[base+uint64(i)]
			c.Accesses++
			c.lruClock++
			l.lastUse = c.lruClock
			c.fastLine, c.fastWay = addr>>LineBits+1, l
			if c.lineHint != nil {
				c.lineHint[(addr>>LineBits)&c.lineHintMask] = uint32(base+uint64(i)) + 1
			}
			return true
		}
	}
	return false
}

// Peek reports whether the line is present, with no state change.
func (c *Cache) Peek(addr uint64) bool {
	if c.fastLine == addr>>LineBits+1 {
		return true
	}
	tag := c.tag(addr)
	base := c.setBase(addr)
	for _, t := range c.tagp[base : base+uint64(c.ways)] {
		if t == tag+1 {
			return true
		}
	}
	return false
}

// Victim describes a line evicted by Fill.
type Victim struct {
	Valid    bool
	Dirty    bool
	Addr     uint64 // line-aligned address of the evicted line
	Prefetch Origin // prefetch origin if never demand-touched, else -1
	Touched  bool
}

// Fill installs the line containing addr, evicting the LRU way if needed.
// prefetchOrigin < 0 marks a demand fill.
func (c *Cache) Fill(addr uint64, dirty bool, prefetchOrigin Origin) Victim {
	tag := c.tag(addr)
	base := c.setBase(addr)
	set := c.sets[base : base+uint64(c.ways)]
	tp := c.tagp[base : base+uint64(c.ways)]
	// Match and victim scans split (same selection rule as the fused
	// loop: last invalid way, else first minimum lastUse): the first two
	// passes run over the dense tagp row, and only a full set falls
	// through to the strided lastUse min-scan.
	vi := -1
	for i, t := range tp {
		if t == tag+1 {
			// Already present (raced fill); just update.
			l := &set[i]
			if dirty {
				l.dirty = true
			}
			c.fastLine, c.fastWay = addr>>LineBits+1, l
			if c.lineHint != nil {
				c.lineHint[(addr>>LineBits)&c.lineHintMask] = uint32(base+uint64(i)) + 1
			}
			return Victim{}
		}
		if t == 0 {
			vi = i
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[vi].lastUse {
				vi = i
			}
		}
	}
	v := &set[vi]
	victim := Victim{}
	if v.valid {
		victim = Victim{
			Valid:    true,
			Dirty:    v.dirty,
			Addr:     (v.tag<<c.setBits | ((addr >> LineBits) & c.setMask)) << LineBits,
			Prefetch: v.prefetch,
			Touched:  v.touched,
		}
	}
	c.lruClock++
	*v = line{tag: tag, valid: true, dirty: dirty, lastUse: c.lruClock, prefetch: prefetchOrigin, touched: false}
	tp[vi] = tag + 1
	// Repoint the last-line cache at the filled line. This also heals the
	// one way the mapping can go stale: a fill is the only operation that
	// changes which line a way holds. (Hints left behind for other lines
	// need no healing: every consult re-verifies against tagp.)
	c.fastLine, c.fastWay = addr>>LineBits+1, v
	if c.lineHint != nil {
		c.lineHint[(addr>>LineBits)&c.lineHintMask] = uint32(base+uint64(vi)) + 1
	}
	return victim
}

// pruneMSHRs drops entries whose fill completed at or before cycle at.
func (c *Cache) pruneMSHRs(at int64) {
	keep := c.mshrs[:0]
	for _, e := range c.mshrs {
		if e.readyAt > at {
			keep = append(keep, e)
		}
	}
	c.mshrs = keep
}

// MSHRLookup returns the ready time of an in-flight fill for the line, if any.
func (c *Cache) MSHRLookup(addr uint64, at int64) (int64, bool) {
	lineAddr := addr &^ (LineSize - 1)
	for _, e := range c.mshrs {
		if e.lineAddr == lineAddr && e.readyAt > at {
			return e.readyAt, true
		}
	}
	return 0, false
}

// MSHRAcquire reserves an MSHR for a new outstanding miss beginning at
// cycle at. If all MSHRs are busy the request waits for the earliest one
// to free; the returned start time reflects that stall. Call
// MSHRComplete to set the fill time once known.
func (c *Cache) MSHRAcquire(addr uint64, at int64) (start int64, idx int) {
	c.pruneMSHRs(at)
	start = at
	for len(c.mshrs) >= c.mshrCap {
		earliest := c.mshrs[0].readyAt
		for _, e := range c.mshrs[1:] {
			if e.readyAt < earliest {
				earliest = e.readyAt
			}
		}
		c.MSHRStallCycles += earliest - start
		start = earliest
		c.pruneMSHRs(start)
	}
	if start > at && c.mshrStall != nil {
		c.mshrStall.Observe(start - at)
	}
	c.mshrs = append(c.mshrs, mshrEntry{lineAddr: addr &^ (LineSize - 1), readyAt: int64(1) << 62})
	return start, len(c.mshrs) - 1
}

// MSHRComplete records the fill completion time for the entry returned by
// MSHRAcquire.
func (c *Cache) MSHRComplete(idx int, readyAt int64) {
	c.mshrs[idx].readyAt = readyAt
	if readyAt > c.mshrMaxReady {
		c.mshrMaxReady = readyAt
	}
}

// MSHRQuiesced reports that no fill can be in flight at cycle at: every
// completion ever recorded is at or before at. It lets hit-dominated
// phases skip the MSHR scan; when it returns false the caller must do the
// full MSHRLookup.
func (c *Cache) MSHRQuiesced(at int64) bool { return at >= c.mshrMaxReady }

// MSHROccupancy returns the number of outstanding misses at cycle at.
func (c *Cache) MSHROccupancy(at int64) int {
	n := 0
	for _, e := range c.mshrs {
		if e.readyAt > at {
			n++
		}
	}
	return n
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

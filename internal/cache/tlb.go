package cache

import "repro/internal/metrics"

// PageBits is log2 of the architectural page size (4 KiB).
const PageBits = 12

// TLB is a set-associative translation buffer with LRU replacement.
// Fully-associative TLBs (the 16-entry D-TLB of Table III) use one set.
//
// Entries are stored structure-of-arrays: vpns holds each slot's vpn
// plus one (zero = invalid slot) and lastUse its LRU timestamp, both
// flat and set-major. The hit scan then touches one dense uint64 run —
// a 16-way set is two cache lines — instead of striding through an
// array of structs.
type TLB struct {
	Name    string
	vpns    []uint64 // ways*numSets slots, vpn+1 per slot, 0 = invalid
	lastUse []uint64 // LRU timestamp per slot
	ways    int
	setMask uint64
	clock   uint64

	// Single-entry MRU cache: fastVPN is the last hit or inserted vpn
	// plus one (zero = invalid), fastIdx its flat slot index. The fast
	// path in Lookup replays exactly the state updates of a scan hit, so
	// LRU order and counters are bit-identical; Insert repoints it, which
	// also heals the only way the mapping can go stale (a slot only
	// changes vpn in Insert).
	fastVPN uint64
	fastIdx uint64

	// Miss-to-Insert victim stash: a Lookup miss has already scanned the
	// whole set, so it records the victim Insert's own scan would pick
	// (same selection rule). missVPN is the missed vpn plus one (zero =
	// invalid); Insert consumes the stash once. Valid because every set
	// mutation goes through Insert, which consumes or clobbers the stash,
	// so a stash always describes the set's current state.
	missVPN    uint64
	missVictim int

	// slotIdx is a direct-mapped vpn→slot hint table: slotIdx[vpn&mask]
	// holds flat slot index+1 of the slot that last held vpn. Purely an
	// accelerator for the hit scan — every hint is verified against vpns
	// before use (a stale or colliding hint just falls back to the scan),
	// and the hit it shortcuts replays exactly the scan hit's state
	// updates, so LRU order, counters, and victims are bit-identical.
	slotIdx     []uint32
	slotIdxMask uint64

	Accesses int64
	Misses   int64
}

// Register publishes the TLB's counters under the given metric prefix.
func (t *TLB) Register(r *metrics.Registry, prefix string) {
	r.Int64(prefix+".accesses", t.Name+" lookups", &t.Accesses)
	r.Int64(prefix+".misses", t.Name+" lookup misses", &t.Misses)
}

// NewTLB builds a TLB with the given number of entries and associativity.
// entries must be a multiple of ways and the set count a power of two.
func NewTLB(name string, entries, ways int) *TLB {
	numSets := entries / ways
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic("tlb: bad geometry")
	}
	// Hint table sized ~8x the slot count (min 64, power of two): sparse
	// enough that distinct resident pages rarely collide on a bucket.
	hintN := 64
	for hintN < numSets*ways*8 {
		hintN <<= 1
	}
	return &TLB{
		Name:        name,
		vpns:        make([]uint64, numSets*ways),
		lastUse:     make([]uint64, numSets*ways),
		ways:        ways,
		setMask:     uint64(numSets - 1),
		slotIdx:     make([]uint32, hintN),
		slotIdxMask: uint64(hintN - 1),
	}
}

// setBase returns the flat index of the first slot of vpn's set.
func (t *TLB) setBase(vpn uint64) uint64 { return (vpn & t.setMask) * uint64(t.ways) }

// Lookup probes the TLB for the page containing addr.
func (t *TLB) Lookup(addr uint64) bool {
	t.Accesses++
	vpn := addr >> PageBits
	if t.fastVPN == vpn+1 {
		t.clock++
		t.lastUse[t.fastIdx] = t.clock
		return true
	}
	// Hint probe: a verified hint is exactly a scan hit (a slot can only
	// ever hold vpns of its own set, so vpns[idx] matching proves set
	// membership too), minus the walk to find it.
	if hi := t.slotIdx[vpn&t.slotIdxMask]; hi != 0 && t.vpns[hi-1] == vpn+1 {
		idx := uint64(hi - 1)
		t.clock++
		t.lastUse[idx] = t.clock
		t.fastVPN, t.fastIdx = vpn+1, idx
		return true
	}
	base := t.setBase(vpn)
	keys := t.vpns[base : base+uint64(t.ways)]
	for i, k := range keys {
		if k == vpn+1 {
			idx := base + uint64(i)
			t.clock++
			t.lastUse[idx] = t.clock
			t.fastVPN, t.fastIdx = vpn+1, idx
			t.slotIdx[vpn&t.slotIdxMask] = uint32(idx + 1)
			return true
		}
	}
	t.Misses++
	// Miss: pick the victim the Insert that follows will need (same
	// selection rule as Insert's scan — on a miss no entry matches, so
	// the interleaved match checks are vacuous) while the set is hot.
	// Kept off the hit path: hits pay nothing for the stash. One fused
	// pass over keys+lastUse implementing "last invalid slot, else first
	// minimum lastUse": once vi points at an invalid slot the min branch
	// is dead, so a filling set degrades to the pure zero-scan and a full
	// set to the pure min-scan.
	use := t.lastUse[base : base+uint64(t.ways)]
	vi := 0
	for i, k := range keys {
		if k == 0 {
			vi = i
		} else if keys[vi] != 0 && use[i] < use[vi] {
			vi = i
		}
	}
	t.missVPN, t.missVictim = vpn+1, vi
	return false
}

// Insert installs a translation, evicting LRU.
func (t *TLB) Insert(addr uint64) {
	vpn := addr >> PageBits
	// Already the MRU entry: the scan below would find it and return
	// without touching any state, so skip the scan outright.
	if t.fastVPN == vpn+1 {
		return
	}
	base := t.setBase(vpn)
	keys := t.vpns[base : base+uint64(t.ways)]
	if t.missVPN == vpn+1 {
		// The preceding Lookup miss already picked this set's victim.
		t.missVPN = 0
		idx := base + uint64(t.missVictim)
		t.clock++
		t.vpns[idx] = vpn + 1
		t.lastUse[idx] = t.clock
		t.fastVPN, t.fastIdx = vpn+1, idx
		t.slotIdx[vpn&t.slotIdxMask] = uint32(idx + 1)
		return
	}
	t.missVPN = 0
	use := t.lastUse[base : base+uint64(t.ways)]
	vi := 0
	for i, k := range keys {
		if k == vpn+1 {
			idx := base + uint64(i)
			t.fastVPN, t.fastIdx = vpn+1, idx
			t.slotIdx[vpn&t.slotIdxMask] = uint32(idx + 1)
			return
		}
		if k == 0 {
			vi = i
		} else if keys[vi] != 0 && use[i] < use[vi] {
			vi = i
		}
	}
	idx := base + uint64(vi)
	t.clock++
	t.vpns[idx] = vpn + 1
	t.lastUse[idx] = t.clock
	t.fastVPN, t.fastIdx = vpn+1, idx
	t.slotIdx[vpn&t.slotIdxMask] = uint32(idx + 1)
}

// WalkerPool models the page-table walkers (4 in Table III) as a resource
// pool: a walk occupies one walker for its whole latency. Fig 17 sweeps
// the pool size.
type WalkerPool struct {
	freeAt []int64
	// WalkLatency is the cycles one walk takes once a walker is granted
	// (page tables assumed warm in L2).
	WalkLatency int64

	Walks       int64
	StallCycles int64

	walkLat *metrics.Histogram // request-to-done walk latency, if registered
}

// NewWalkerPool creates a pool of n walkers with the given walk latency.
func NewWalkerPool(n int, walkLatency int64) *WalkerPool {
	return &WalkerPool{freeAt: make([]int64, n), WalkLatency: walkLatency}
}

// Register publishes the pool's counters and the end-to-end walk latency
// histogram (walker-grant stall + walk itself).
func (w *WalkerPool) Register(r *metrics.Registry) {
	r.Int64("ptw.walks", "page-table walks started", &w.Walks)
	r.Int64("ptw.stall_cycles", "cycles walks waited for a free walker", &w.StallCycles)
	w.walkLat = r.NewHistogram("lat.ptw", "page-table walk latency from request to translation (cycles)")
}

// Walk starts a page walk no earlier than cycle at and returns the cycle
// the translation is available.
func (w *WalkerPool) Walk(at int64) int64 {
	w.Walks++
	best := 0
	for i, f := range w.freeAt {
		if f < w.freeAt[best] {
			best = i
		}
	}
	start := at
	if w.freeAt[best] > start {
		w.StallCycles += w.freeAt[best] - start
		start = w.freeAt[best]
	}
	done := start + w.WalkLatency
	w.freeAt[best] = done
	if w.walkLat != nil {
		w.walkLat.Observe(done - at)
	}
	return done
}

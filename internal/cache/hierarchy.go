package cache

import (
	"repro/internal/dram"
	"repro/internal/metrics"
)

// Level identifies where an access was satisfied.
type Level int

// Service levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	default:
		return "mem"
	}
}

// Result reports the outcome of a memory access.
type Result struct {
	CompleteAt int64 // cycle the data is available to the consumer
	Level      Level // where the data came from
}

// Config sizes the hierarchy. DefaultConfig matches Table III.
type Config struct {
	L1Size, L1Ways, L1MSHRs int
	L1Latency               int64
	L1ISize, L1IWays        int
	L2Size, L2Ways          int
	L2Latency               int64

	DTLBEntries           int
	STLBEntries, STLBWays int
	STLBLatency           int64
	NumPTWs               int
	WalkLatency           int64

	// StrideDegree is the baseline L1-D stride prefetcher's degree;
	// 0 disables it.
	StrideDegree int

	DRAM dram.Config
}

// DefaultConfig returns the Table III memory system: 64 KiB 4-way L1-D
// with 16 MSHRs and a stride prefetcher, 512 KiB 8-way L2, 16-entry
// fully-associative D-TLB, 2048-entry 8-way S-TLB, 4 page-table walkers,
// 45 ns / 50 GiB/s DRAM.
func DefaultConfig() Config {
	return Config{
		L1Size: 64 << 10, L1Ways: 4, L1MSHRs: 16, L1Latency: 3,
		L1ISize: 64 << 10, L1IWays: 4,
		L2Size: 512 << 10, L2Ways: 8, L2Latency: 13,
		DTLBEntries: 16,
		STLBEntries: 2048, STLBWays: 8, STLBLatency: 4,
		NumPTWs: 4, WalkLatency: 30,
		StrideDegree: 4,
		DRAM:         dram.DefaultConfig(),
	}
}

// Hierarchy is the full data-side memory system.
type Hierarchy struct {
	Cfg     Config
	L1D     *Cache
	L1I     *Cache
	L2      *Cache
	DTLB    *TLB
	ITLB    *TLB
	STLB    *TLB
	Walkers *WalkerPool
	DRAM    *dram.Channel
	Stride  *StridePrefetcher
	Tracker *Tracker

	// Reg is the machine-wide metrics registry. Every component of the
	// hierarchy registers its counters here at construction, and the core
	// (plus any companion engine) joins at its own construction, so one
	// Reg.Reset() is the whole warmup/measure boundary.
	Reg *metrics.Registry

	// DRAMLoads counts data-side line fetches from DRAM by origin
	// (Fig 13b).
	DRAMLoads [NumOrigins]int64
	// IFetchLoads counts instruction-side line fetches from DRAM
	// (Fig 13b's "Core(inst)" category).
	IFetchLoads int64
	// Writebacks counts dirty-line writebacks to DRAM.
	Writebacks int64

	demandLat [3]*metrics.Histogram // demand-load completion latency per service level

	lastILine uint64 // last fetched instruction line (fetch-ahead state)
	pfBuf     []uint64
}

// NewHierarchy builds the memory system from a configuration.
func NewHierarchy(cfg Config) *Hierarchy {
	return NewHierarchyShared(cfg, dram.New(cfg.DRAM))
}

// NewHierarchyShared builds a per-core memory system that shares an
// externally owned DRAM channel — the substrate for the multi-core
// experiment suggested by §VI-E (per-core caches, one memory interface).
func NewHierarchyShared(cfg Config, ch *dram.Channel) *Hierarchy {
	h := &Hierarchy{
		Cfg:     cfg,
		L1D:     NewCache("L1D", cfg.L1Size, cfg.L1Ways, cfg.L1MSHRs),
		L1I:     NewCache("L1I", cfg.L1ISize, cfg.L1IWays, 4),
		L2:      NewCache("L2", cfg.L2Size, cfg.L2Ways, 32),
		DTLB:    NewTLB("DTLB", cfg.DTLBEntries, cfg.DTLBEntries), // fully associative
		ITLB:    NewTLB("ITLB", cfg.DTLBEntries, cfg.DTLBEntries), // fully associative
		STLB:    NewTLB("STLB", cfg.STLBEntries, cfg.STLBWays),
		Walkers: NewWalkerPool(cfg.NumPTWs, cfg.WalkLatency),
		DRAM:    ch,
		Tracker: NewTracker(),
	}
	if cfg.StrideDegree > 0 {
		h.Stride = NewStridePrefetcher(64, cfg.StrideDegree)
	}
	// Only the L1-D has a Refresh-heavy caller (Prefetch); hint-table
	// teaching on the other caches would be stores nothing ever reads.
	h.L1D.EnableLineHints()

	r := metrics.New()
	h.Reg = r
	h.L1D.Register(r, "l1d")
	h.L1I.Register(r, "l1i")
	h.L2.Register(r, "l2")
	h.DTLB.Register(r, "dtlb")
	h.ITLB.Register(r, "itlb")
	h.STLB.Register(r, "stlb")
	h.Walkers.Register(r)
	ch.Register(r)
	h.Tracker.Register(r)
	for o := Origin(0); o < NumOrigins; o++ {
		r.Int64("dram.loads."+o.String(), "data-side DRAM line fetches caused by "+o.String(), &h.DRAMLoads[o])
	}
	r.Int64("dram.loads.inst", "instruction-side DRAM line fetches", &h.IFetchLoads)
	r.Int64("dram.writebacks", "dirty-line writebacks to DRAM", &h.Writebacks)
	if h.Stride != nil {
		r.Int64("stride.issued", "lines requested by the L1-D stride prefetcher", &h.Stride.Issued)
	}
	h.L1D.mshrStall = r.NewHistogram("lat.l1d.mshr_stall", "per-acquire L1-D MSHR stall (cycles, stalled acquires only)")
	for lvl, name := range [3]string{"l1", "l2", "mem"} {
		h.demandLat[lvl] = r.NewHistogram("lat.demand."+name,
			"demand-load completion latency for loads served from "+Level(lvl).String()+" (cycles)")
	}
	return h
}

// translate runs the TLB/PTW path and returns the cycle at which the
// physical address is known.
func (h *Hierarchy) translate(addr uint64, at int64) int64 {
	// Inlined D-TLB MRU hit — the exact state updates of TLB.Lookup's
	// fast path without the call.
	d := h.DTLB
	if vpn := addr >> PageBits; d.fastVPN == vpn+1 {
		d.Accesses++
		d.clock++
		d.lastUse[d.fastIdx] = d.clock
		return at // D-TLB hit is pipelined with the L1 access
	}
	if d.Lookup(addr) {
		return at // D-TLB hit is pipelined with the L1 access
	}
	if h.STLB.Lookup(addr) {
		h.DTLB.Insert(addr)
		return at + h.Cfg.STLBLatency
	}
	done := h.Walkers.Walk(at + h.Cfg.STLBLatency)
	h.STLB.Insert(addr)
	h.DTLB.Insert(addr)
	return done
}

// fetchLine brings the line for addr to L1 (and L2 if it came from DRAM),
// starting at cycle at. It assumes the line is not in L1 and no L1 MSHR is
// in flight for it. origin < NumOrigins tags prefetch fills. Returns the
// fill-complete time and the service level.
func (h *Hierarchy) fetchLine(addr uint64, write bool, at int64, origin Origin, demand bool) Result {
	start, mshr := h.L1D.MSHRAcquire(addr, at)
	probeAt := start + h.Cfg.L1Latency

	var fill int64
	var lvl Level
	if hit, _ := h.L2.Lookup(addr, false, demand); hit {
		fill = probeAt + h.Cfg.L2Latency
		lvl = LevelL2
	} else {
		fill = h.DRAM.Access(probeAt + h.Cfg.L2Latency)
		lvl = LevelMem
		h.DRAMLoads[origin]++
		pfOrigin := Origin(-1)
		if !demand {
			pfOrigin = origin
			h.Tracker.Mark(addr, origin)
		}
		if v := h.L2.Fill(addr, false, pfOrigin); v.Valid {
			h.Tracker.Evict(v.Addr)
			if v.Dirty {
				h.DRAM.Access(fill)
				h.Writebacks++
			}
		}
	}

	pfOrigin := Origin(-1)
	if !demand {
		pfOrigin = origin
	}
	if v := h.L1D.Fill(addr, write && demand, pfOrigin); v.Valid && v.Dirty {
		// Dirty L1 victim falls back to L2.
		if v2 := h.L2.Fill(v.Addr, true, -1); v2.Valid {
			h.Tracker.Evict(v2.Addr)
			if v2.Dirty {
				h.DRAM.Access(fill)
				h.Writebacks++
			}
		}
	}
	h.L1D.MSHRComplete(mshr, fill)
	return Result{CompleteAt: fill, Level: lvl}
}

// Access performs a demand load or store issued at cycle at by the
// instruction at pc. It drives the stride prefetcher, prefetch-tag
// accounting, TLB and MSHR occupancy.
func (h *Hierarchy) Access(pc int, addr uint64, write bool, at int64) Result {
	t := h.translate(addr, at)
	h.Tracker.Touch(addr)

	res := h.demandAccess(addr, write, t)
	if !write {
		if hl := h.demandLat[res.Level]; hl != nil {
			hl.Observe(res.CompleteAt - at)
		}
	}

	if h.Stride != nil && !write {
		// Keep the (possibly grown) buffer so steady-state prefetch
		// bursts reuse one backing array instead of allocating per load.
		h.pfBuf = h.Stride.Observe(pc, addr, h.pfBuf[:0])
		for _, pa := range h.pfBuf {
			h.Prefetch(pa, at, OriginStride)
		}
	}
	return res
}

func (h *Hierarchy) demandAccess(addr uint64, write bool, t int64) Result {
	// An in-flight fill shadows the (already-installed) line contents:
	// data is not usable before the fill completes. When every recorded
	// fill has already completed the scan is skipped outright — the
	// common case in hit-dominated phases.
	var ready int64
	var inflight bool
	if !h.L1D.MSHRQuiesced(t) {
		ready, inflight = h.L1D.MSHRLookup(addr, t)
	}
	if hit, _ := h.L1D.Lookup(addr, write, true); hit {
		if inflight {
			return Result{CompleteAt: max(ready, t+h.Cfg.L1Latency), Level: LevelMem}
		}
		return Result{CompleteAt: t + h.Cfg.L1Latency, Level: LevelL1}
	}
	if inflight {
		// Secondary miss: merge with the in-flight fill.
		return Result{CompleteAt: max(ready, t+h.Cfg.L1Latency), Level: LevelMem}
	}
	return h.fetchLine(addr, write, t, OriginDemand, true)
}

// Prefetch requests the line containing addr on behalf of origin, issued
// at cycle at. It returns when the line (and thus its data, for SVR lane
// values) is available. Lines already present or in flight cost only the
// L1 latency or the remaining fill time.
func (h *Hierarchy) Prefetch(addr uint64, at int64, origin Origin) Result {
	// Combined resident-line fast path: MRU D-TLB entry, quiesced MSHRs,
	// and MRU L1-D line — SVR's steady state, where vectorized lanes
	// hammer the same handful of lines. Replays exactly the state updates
	// of the call chain below (D-TLB fast hit in translate, the
	// MSHRQuiesced skip, and a Refresh fast hit), so counters, clocks and
	// LRU order are bit-identical; anything else falls through.
	if d := h.DTLB; d.fastVPN == addr>>PageBits+1 {
		if c := h.L1D; c.fastLine == addr>>LineBits+1 && at >= c.mshrMaxReady {
			d.Accesses++
			d.clock++
			d.lastUse[d.fastIdx] = d.clock
			c.Accesses++
			c.lruClock++
			c.fastWay.lastUse = c.lruClock
			return Result{CompleteAt: at + h.Cfg.L1Latency, Level: LevelL1}
		}
	}
	t := h.translate(addr, at)
	var ready int64
	var inflight bool
	if !h.L1D.MSHRQuiesced(t) {
		ready, inflight = h.L1D.MSHRLookup(addr, t)
	}
	if h.L1D.Refresh(addr) {
		// Present: LRU refreshed, prefetch tags untouched (only demand
		// touches count for accuracy).
		if inflight {
			return Result{CompleteAt: max(ready, t+h.Cfg.L1Latency), Level: LevelMem}
		}
		return Result{CompleteAt: t + h.Cfg.L1Latency, Level: LevelL1}
	}
	if inflight {
		return Result{CompleteAt: ready, Level: LevelMem}
	}
	return h.fetchLine(addr, false, t, origin, false)
}

// FetchInstr models the instruction-fetch path for the instruction at
// the given code address, issued at cycle at. Kernel loops live entirely
// in the L1-I, so the common case is free (hit latency is hidden by
// fetch-ahead); a miss stalls the front end for the fill.
func (h *Hierarchy) FetchInstr(addr uint64, at int64) (bubble int64) {
	// Combined I-side fast path: MRU ITLB entry and MRU L1I line, the
	// loop-execution steady state. Replays exactly the state updates of
	// the call chain below (ITLB fast hit, then an L1I Lookup fast hit
	// with markTouched), so counters, clocks and line state are
	// bit-identical; anything else falls through to the full path.
	if it := h.ITLB; it.fastVPN == addr>>PageBits+1 {
		if c := h.L1I; c.fastLine == addr>>LineBits+1 {
			it.Accesses++
			it.clock++
			it.lastUse[it.fastIdx] = it.clock
			c.Accesses++
			c.lruClock++
			l := c.fastWay
			l.lastUse = c.lruClock
			l.touched = true
			l.prefetch = -1
			h.lastILine = addr &^ (LineSize - 1)
			return 0
		}
	}
	if !h.ITLB.Lookup(addr) {
		if h.STLB.Lookup(addr) {
			bubble += h.Cfg.STLBLatency
		} else {
			done := h.Walkers.Walk(at + h.Cfg.STLBLatency)
			h.STLB.Insert(addr)
			bubble += done - at
		}
		h.ITLB.Insert(addr)
	}
	line := addr &^ (LineSize - 1)
	if hit, _ := h.L1I.Lookup(addr, false, true); hit {
		h.lastILine = line
		return bubble
	}
	// I-miss: fill from L2 (or DRAM). Sequential fetch-ahead hides the
	// latency of misses that continue straight-line execution — the
	// front end requested the next line while draining its fetch queue —
	// so only discontinuous misses (cold jumps) stall fetch.
	sequential := line == h.lastILine+LineSize
	fillStart := at + bubble + h.Cfg.L1Latency
	var fill int64
	if hit, _ := h.L2.Lookup(addr, false, true); hit {
		fill = fillStart + h.Cfg.L2Latency
	} else {
		fill = h.DRAM.Access(fillStart + h.Cfg.L2Latency)
		h.IFetchLoads++
	}
	h.L1I.Fill(addr, false, -1)
	h.L1I.Fill(line+LineSize, false, -1) // next-line prefetch
	h.lastILine = line
	if sequential {
		return bubble
	}
	return fill - at
}

// TotalDRAMLoads sums line fetches across origins, including the
// instruction side.
func (h *Hierarchy) TotalDRAMLoads() int64 {
	n := h.IFetchLoads
	for _, v := range h.DRAMLoads {
		n += v
	}
	return n
}

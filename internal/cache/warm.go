package cache

import "sort"

// This file is the functional-warming mirror of the timed demand paths:
// each Warm* method replays exactly the tag/LRU/victim state updates of
// its counterpart (Access, Prefetch, FetchInstr) while skipping
// everything occupancy-based — MSHRs, the page-walker pool and the DRAM
// channel are never consulted or mutated. Cache, TLB and prefetch-tag
// contents after a warmed fast-forward therefore match a detailed run
// over the same instruction stream bit for bit, with one rare exception
// the timed path cannot avoid: a line evicted while its fill is still
// MSHR-inflight is re-fetch-free in the timed model (the secondary miss
// merges with the fill) but re-filled here. Counters accumulated while
// warming (hits, misses, DRAM loads) are discarded by the
// Registry.Reset at the measurement boundary, as in any warmup.

// WarmAccess replays the state effects of a demand Access: translation
// inserts, prefetch-tag touch, L1-D lookup/fill chain and the stride
// prefetcher's reaction.
func (h *Hierarchy) WarmAccess(pc int, addr uint64, write bool) {
	h.warmTranslate(addr)
	h.Tracker.Touch(addr)
	if hit, _ := h.L1D.Lookup(addr, write, true); !hit {
		h.warmFetchLine(addr, write, OriginDemand, true)
	}
	if h.Stride != nil && !write {
		h.pfBuf = h.Stride.Observe(pc, addr, h.pfBuf[:0])
		for _, pa := range h.pfBuf {
			h.WarmPrefetch(pa, OriginStride)
		}
	}
}

// WarmPrefetch replays the state effects of a prefetch issued by origin.
func (h *Hierarchy) WarmPrefetch(addr uint64, origin Origin) {
	h.warmTranslate(addr)
	if h.L1D.Refresh(addr) {
		return
	}
	h.warmFetchLine(addr, false, origin, false)
}

// WarmFetchInstr replays the state effects of an instruction fetch:
// I-TLB inserts and the L1-I fill pair (missed line plus next-line
// prefetch).
func (h *Hierarchy) WarmFetchInstr(addr uint64) {
	if !h.ITLB.Lookup(addr) {
		if !h.STLB.Lookup(addr) {
			h.STLB.Insert(addr)
		}
		h.ITLB.Insert(addr)
	}
	line := addr &^ (LineSize - 1)
	if hit, _ := h.L1I.Lookup(addr, false, true); hit {
		h.lastILine = line
		return
	}
	if hit, _ := h.L2.Lookup(addr, false, true); !hit {
		h.IFetchLoads++
	}
	h.L1I.Fill(addr, false, -1)
	h.L1I.Fill(line+LineSize, false, -1) // next-line prefetch
	h.lastILine = line
}

// warmTranslate mirrors translate's TLB state updates without walker
// occupancy.
func (h *Hierarchy) warmTranslate(addr uint64) {
	if h.DTLB.Lookup(addr) {
		return
	}
	if h.STLB.Lookup(addr) {
		h.DTLB.Insert(addr)
		return
	}
	h.STLB.Insert(addr)
	h.DTLB.Insert(addr)
}

// warmFetchLine mirrors fetchLine's L2/L1-D fill and prefetch-tag
// updates without MSHR or DRAM-channel occupancy.
func (h *Hierarchy) warmFetchLine(addr uint64, write bool, origin Origin, demand bool) {
	if hit, _ := h.L2.Lookup(addr, false, demand); !hit {
		h.DRAMLoads[origin]++
		pfOrigin := Origin(-1)
		if !demand {
			pfOrigin = origin
			h.Tracker.Mark(addr, origin)
		}
		if v := h.L2.Fill(addr, false, pfOrigin); v.Valid {
			h.Tracker.Evict(v.Addr)
			if v.Dirty {
				h.Writebacks++
			}
		}
	}
	pfOrigin := Origin(-1)
	if !demand {
		pfOrigin = origin
	}
	if v := h.L1D.Fill(addr, write && demand, pfOrigin); v.Valid && v.Dirty {
		if v2 := h.L2.Fill(v.Addr, true, -1); v2.Valid {
			h.Tracker.Evict(v2.Addr)
			if v2.Dirty {
				h.Writebacks++
			}
		}
	}
}

// HierarchyState is a deep snapshot of the warm-relevant hierarchy
// state: cache line arrays and LRU clocks, TLB entries, stride-table
// entries and outstanding prefetch tags. Timing state (MSHRs, walkers,
// DRAM channel) and counters are deliberately excluded — a restored
// machine starts them fresh, exactly as a warmed-in-place machine does.
type HierarchyState struct {
	l1d, l1i, l2     cacheState
	dtlb, itlb, stlb tlbState
	stride           []strideEntry     // nil when no stride prefetcher
	tags             map[uint64]Origin // outstanding prefetch tags
	lastILine        uint64
}

type cacheState struct {
	sets     []line
	lruClock uint64
}

type tlbState struct {
	vpns    []uint64
	lastUse []uint64
	clock   uint64
}

// WarmState deep-copies the hierarchy's warm-relevant state. The
// snapshot is immutable and safe to restore into any hierarchy with the
// same cache/TLB/prefetcher geometry.
func (h *Hierarchy) WarmState() *HierarchyState {
	s := &HierarchyState{
		l1d:       captureCache(h.L1D),
		l1i:       captureCache(h.L1I),
		l2:        captureCache(h.L2),
		dtlb:      captureTLB(h.DTLB),
		itlb:      captureTLB(h.ITLB),
		stlb:      captureTLB(h.STLB),
		tags:      make(map[uint64]Origin, h.Tracker.Pending()),
		lastILine: h.lastILine,
	}
	h.Tracker.each(func(a uint64, o Origin) { s.tags[a] = o })
	if h.Stride != nil {
		s.stride = append([]strideEntry(nil), h.Stride.entries...)
	}
	return s
}

// SetWarmState restores a WarmState snapshot in place. Geometry must
// match the snapshot's; MRU shortcuts and miss stashes are dropped (they
// point into pre-restore contents and are semantically transparent).
func (h *Hierarchy) SetWarmState(s *HierarchyState) {
	restoreCache(h.L1D, s.l1d)
	restoreCache(h.L1I, s.l1i)
	restoreCache(h.L2, s.l2)
	restoreTLB(h.DTLB, s.dtlb)
	restoreTLB(h.ITLB, s.itlb)
	restoreTLB(h.STLB, s.stlb)
	if h.Stride != nil {
		if len(h.Stride.entries) != len(s.stride) {
			panic("cache: warm-state stride geometry mismatch")
		}
		copy(h.Stride.entries, s.stride)
	}
	t := h.Tracker
	t.resetTags()
	for a, o := range s.tags {
		t.setTag(a, o)
	}
	h.lastILine = s.lastILine
}

// Bytes estimates the snapshot's retained size for cache budgeting.
func (s *HierarchyState) Bytes() int64 {
	const lineBytes, tlbBytes, strideBytes, tagBytes = 48, 24, 48, 16
	n := int64(len(s.l1d.sets)+len(s.l1i.sets)+len(s.l2.sets)) * lineBytes
	for _, t := range [3]tlbState{s.dtlb, s.itlb, s.stlb} {
		n += int64(len(t.vpns)) * tlbBytes
	}
	n += int64(len(s.stride)) * strideBytes
	n += int64(len(s.tags)) * tagBytes
	return n
}

func captureCache(c *Cache) cacheState {
	return cacheState{sets: append([]line(nil), c.sets...), lruClock: c.lruClock}
}

func restoreCache(c *Cache, s cacheState) {
	if len(c.sets) != len(s.sets) {
		panic("cache: warm-state geometry mismatch for " + c.Name)
	}
	copy(c.sets, s.sets)
	c.rebuildTagp()
	c.lruClock = s.lruClock
	c.fastLine, c.fastWay = 0, nil
}

func captureTLB(t *TLB) tlbState {
	return tlbState{
		vpns:    append([]uint64(nil), t.vpns...),
		lastUse: append([]uint64(nil), t.lastUse...),
		clock:   t.clock,
	}
}

func restoreTLB(t *TLB, s tlbState) {
	if len(t.vpns) != len(s.vpns) {
		panic("tlb: warm-state geometry mismatch for " + t.Name)
	}
	copy(t.vpns, s.vpns)
	copy(t.lastUse, s.lastUse)
	t.clock = s.clock
	t.fastVPN, t.fastIdx = 0, 0
	t.missVPN = 0
}

// LineInfo describes one valid cache line for state-comparison tests.
type LineInfo struct {
	Addr  uint64 // line-aligned address
	Dirty bool
}

// Lines returns every valid line's address and dirty bit, sorted by
// address — a timing-free view for warming-fidelity tests.
func (c *Cache) Lines() []LineInfo {
	var out []LineInfo
	for i, l := range c.sets {
		if l.valid {
			set := uint64(i) / uint64(c.ways)
			out = append(out, LineInfo{
				Addr:  (l.tag<<c.setBits | set) << LineBits,
				Dirty: l.dirty,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// VPNs returns every valid entry's virtual page number, sorted — the
// TLB counterpart of Lines.
func (t *TLB) VPNs() []uint64 {
	var out []uint64
	for _, k := range t.vpns {
		if k != 0 {
			out = append(out, k-1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

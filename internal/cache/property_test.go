package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCacheInclusionInvariant: after any access sequence, a line reported
// hit by Peek must be found again by Peek (probing is side-effect-free on
// presence), and Lookup hits must agree with Peek.
func TestCacheLookupPeekAgree(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("p", 1<<12, 4, 8)
		addrs := make([]uint64, 64)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1 << 14))
		}
		for i := 0; i < 500; i++ {
			a := addrs[rng.Intn(len(addrs))]
			switch rng.Intn(3) {
			case 0:
				c.Fill(a, rng.Intn(2) == 0, -1)
			case 1:
				hit, _ := c.Lookup(a, false, true)
				if hit != c.Peek(a) {
					return false
				}
			case 2:
				if c.Peek(a) != c.Peek(a) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCacheCapacityInvariant: a set never holds more distinct lines than
// its associativity — filling W+1 conflicting lines always evicts.
func TestCacheCapacityInvariant(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ways = 4
		c := NewCache("p", ways*64*16, ways, 8) // 16 sets
		setStride := uint64(16 * 64)
		base := uint64(rng.Intn(16)) * 64 // a random set
		var lines []uint64
		for i := uint64(0); i < ways+3; i++ {
			a := base + i*setStride
			c.Fill(a, false, -1)
			lines = append(lines, a)
		}
		present := 0
		for _, a := range lines {
			if c.Peek(a) {
				present++
			}
		}
		return present == ways
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMSHRNeverExceedsCapacity under random acquire/complete interleaving.
func TestMSHRNeverExceedsCapacity(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 4
		c := NewCache("p", 1<<12, 4, cap)
		now := int64(0)
		for i := 0; i < 200; i++ {
			now += int64(rng.Intn(20))
			addr := uint64(rng.Intn(64)) << LineBits
			if _, ok := c.MSHRLookup(addr, now); ok {
				continue
			}
			start, idx := c.MSHRAcquire(addr, now)
			if start < now {
				return false // time cannot go backwards
			}
			c.MSHRComplete(idx, start+int64(rng.Intn(100))+1)
			if c.MSHROccupancy(start) > cap {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTrackerConservation: Issued == Used + EvictedUnused + Pending at
// all times, per origin.
func TestTrackerConservation(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker()
		for i := 0; i < 300; i++ {
			a := uint64(rng.Intn(128)) << LineBits
			switch rng.Intn(3) {
			case 0:
				tr.Mark(a, Origin(rng.Intn(int(NumOrigins))))
			case 1:
				tr.Touch(a)
			case 2:
				tr.Evict(a)
			}
			var issued, resolved int64
			for o := Origin(0); o < NumOrigins; o++ {
				issued += tr.Stats[o].Issued
				resolved += tr.Stats[o].Used + tr.Stats[o].EvictedUnused
			}
			if issued != resolved+int64(tr.Pending()) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

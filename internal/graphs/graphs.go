// Package graphs builds the graph inputs of the evaluation (§V) in CSR
// form: synthetic Kronecker (KR) and uniform-random (UR) graphs as in the
// paper, plus scaled-down synthetic stand-ins for the real-world inputs
// (LiveJournal, Twitter, Orkut) with matched degree-distribution shape —
// power-law graphs with per-input skew and density (see DESIGN.md,
// substitution 3).
package graphs

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// CSR is a graph in compressed sparse row format (Fig 2): Offsets[u] is
// the index of u's first neighbor in Neighbors.
type CSR struct {
	Name      string
	NumNodes  int
	Offsets   []uint32 // len NumNodes+1
	Neighbors []uint32
}

// NumEdges returns the (directed) edge count.
func (g *CSR) NumEdges() int { return len(g.Neighbors) }

// Degree returns the out-degree of u.
func (g *CSR) Degree(u int) int { return int(g.Offsets[u+1] - g.Offsets[u]) }

// Neigh returns the neighbor slice of u.
func (g *CSR) Neigh(u int) []uint32 { return g.Neighbors[g.Offsets[u]:g.Offsets[u+1]] }

// MaxDegree returns the largest out-degree.
func (g *CSR) MaxDegree() int {
	m := 0
	for u := 0; u < g.NumNodes; u++ {
		if d := g.Degree(u); d > m {
			m = d
		}
	}
	return m
}

// fromEdges builds a CSR from an edge list, sorting and deduplicating
// neighbors per vertex (self-loops are kept; GAP kernels tolerate them).
func fromEdges(name string, n int, src, dst []uint32) *CSR {
	deg := make([]uint32, n+1)
	for _, s := range src {
		deg[s+1]++
	}
	off := make([]uint32, n+1)
	for i := 1; i <= n; i++ {
		off[i] = off[i-1] + deg[i]
	}
	neigh := make([]uint32, len(src))
	cursor := make([]uint32, n)
	copy(cursor, off[:n])
	for i, s := range src {
		neigh[cursor[s]] = dst[i]
		cursor[s]++
	}
	// Sort each adjacency list for locality realism (GAP does the same).
	for u := 0; u < n; u++ {
		seg := neigh[off[u]:off[u+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	return &CSR{Name: name, NumNodes: n, Offsets: off, Neighbors: neigh}
}

// Uniform generates a uniform-random (Erdős–Rényi-style) graph with n
// vertices and about n*degree directed edges — the paper's UR input.
func Uniform(name string, n, degree int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := n * degree
	src := make([]uint32, m)
	dst := make([]uint32, m)
	for i := 0; i < m; i++ {
		src[i] = uint32(rng.Intn(n))
		dst[i] = uint32(rng.Intn(n))
	}
	return fromEdges(name, n, src, dst)
}

// Kronecker generates an R-MAT/Kronecker graph with 2^scale vertices and
// about edgeFactor*2^scale edges using the Graph500 parameters
// (A=0.57, B=0.19, C=0.19) — the paper's KR input. Degree distribution is
// heavily skewed, as in real social networks.
func Kronecker(name string, scale, edgeFactor int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	src := make([]uint32, m)
	dst := make([]uint32, m)
	for i := 0; i < m; i++ {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		src[i] = uint32(u)
		dst[i] = uint32(v)
	}
	return fromEdges(name, n, src, dst)
}

// PowerLaw generates a graph whose out-degrees follow a discrete
// power-law with the given exponent (smaller exponent = heavier tail),
// used as the synthetic stand-in for the paper's real-world inputs:
// LiveJournal-like (alpha~2.4), Twitter-like (alpha~2.0, heavier hubs),
// Orkut-like (alpha~2.7, denser average degree).
func PowerLaw(name string, n, avgDegree int, alpha float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	// Sample degrees from a Zipf-like distribution, then rescale to hit
	// the requested average.
	zipf := rand.NewZipf(rng, alpha, 1, uint64(n/4))
	deg := make([]int, n)
	total := 0
	for i := range deg {
		deg[i] = 1 + int(zipf.Uint64())
		total += deg[i]
	}
	want := n * avgDegree
	scale := float64(want) / float64(total)
	total = 0
	for i := range deg {
		d := int(float64(deg[i])*scale + 0.5)
		if d < 1 {
			d = 1
		}
		deg[i] = d
		total += d
	}
	src := make([]uint32, 0, total)
	dst := make([]uint32, 0, total)
	for u := 0; u < n; u++ {
		for k := 0; k < deg[u]; k++ {
			src = append(src, uint32(u))
			dst = append(dst, uint32(rng.Intn(n)))
		}
	}
	return fromEdges(name, n, src, dst)
}

// Input identifies one of the five graph inputs of §V.
type Input string

// The paper's graph inputs.
const (
	KR  Input = "KR"  // Kronecker (synthetic)
	UR  Input = "UR"  // uniform random (synthetic)
	LJN Input = "LJN" // LiveJournal-like (synthetic stand-in)
	TW  Input = "TW"  // Twitter-like (synthetic stand-in)
	ORK Input = "ORK" // Orkut-like (synthetic stand-in)
)

// Inputs lists the five graph inputs in paper order.
var Inputs = []Input{KR, LJN, ORK, TW, UR}

// buildCache memoizes generated graphs: the five GAP kernels reuse the
// same five inputs, and experiment sweeps rebuild workloads repeatedly.
// CSR graphs are treated as read-only after construction.
var buildCache = struct {
	sync.Mutex
	m map[string]*CSR
}{m: make(map[string]*CSR)}

// Build constructs the named input at the given scale (vertex count
// target; generators round to their natural sizes). Each input keeps its
// characteristic shape: KR and the real-world stand-ins are skewed, UR is
// flat, TW has the heaviest hubs, ORK the highest density. Results are
// memoized; callers must not mutate them.
func Build(in Input, n int, seed int64) *CSR {
	key := fmt.Sprintf("%s/%d/%d", in, n, seed)
	buildCache.Lock()
	defer buildCache.Unlock()
	if g, ok := buildCache.m[key]; ok {
		return g
	}
	g := build(in, n, seed)
	buildCache.m[key] = g
	return g
}

func build(in Input, n int, seed int64) *CSR {
	switch in {
	case KR:
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return Kronecker(string(in), scale, 16, seed)
	case UR:
		return Uniform(string(in), n, 16, seed)
	case LJN:
		return PowerLaw(string(in), n, 14, 2.4, seed)
	case TW:
		return PowerLaw(string(in), n, 18, 2.0, seed)
	case ORK:
		return PowerLaw(string(in), n, 28, 2.7, seed)
	default:
		panic("graphs: unknown input " + string(in))
	}
}

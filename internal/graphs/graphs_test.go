package graphs

import (
	"sort"
	"testing"
	"testing/quick"
)

func checkCSRWellFormed(t *testing.T, g *CSR) {
	t.Helper()
	if len(g.Offsets) != g.NumNodes+1 {
		t.Fatalf("offsets length %d for %d nodes", len(g.Offsets), g.NumNodes)
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.NumNodes]) != len(g.Neighbors) {
		t.Fatal("offset endpoints wrong")
	}
	for u := 0; u < g.NumNodes; u++ {
		if g.Offsets[u] > g.Offsets[u+1] {
			t.Fatalf("offsets not monotonic at %d", u)
		}
		prev := int64(-1)
		for _, v := range g.Neigh(u) {
			if int(v) >= g.NumNodes {
				t.Fatalf("neighbor %d out of range", v)
			}
			if int64(v) < prev {
				t.Fatalf("adjacency of %d not sorted", u)
			}
			prev = int64(v)
		}
	}
}

func TestUniformWellFormed(t *testing.T) {
	g := Uniform("ur", 1000, 8, 1)
	checkCSRWellFormed(t, g)
	if g.NumEdges() != 8000 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestKroneckerSkewed(t *testing.T) {
	g := Kronecker("kr", 12, 16, 2)
	checkCSRWellFormed(t, g)
	ur := Uniform("ur", g.NumNodes, 16, 2)
	if g.MaxDegree() < 4*ur.MaxDegree() {
		t.Errorf("Kronecker max degree %d not much larger than uniform %d",
			g.MaxDegree(), ur.MaxDegree())
	}
}

// topShare returns the fraction of edges owned by the top 1% of vertices.
func topShare(g *CSR) float64 {
	degs := make([]int, g.NumNodes)
	for u := range degs {
		degs[u] = g.Degree(u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	k := g.NumNodes / 100
	if k < 1 {
		k = 1
	}
	for _, d := range degs[:k] {
		top += d
	}
	return float64(top) / float64(g.NumEdges())
}

func TestPowerLawSkewOrdering(t *testing.T) {
	// Smaller alpha => heavier tail => the hub vertices own a larger
	// share of all edges (scale-invariant statistic).
	tw := PowerLaw("tw", 8192, 16, 2.0, 3)
	lj := PowerLaw("lj", 8192, 16, 2.4, 3)
	checkCSRWellFormed(t, tw)
	checkCSRWellFormed(t, lj)
	if topShare(tw) <= topShare(lj) {
		t.Errorf("TW-like top-1%% share %.3f should exceed LJN-like %.3f",
			topShare(tw), topShare(lj))
	}
}

func TestBuildAllInputs(t *testing.T) {
	for _, in := range Inputs {
		g := Build(in, 2048, 7)
		checkCSRWellFormed(t, g)
		if g.NumEdges() < 2048 {
			t.Errorf("%s: only %d edges", in, g.NumEdges())
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(KR, 1024, 5)
	b := Build(KR, 1024, 5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("same seed produced different neighbor arrays")
		}
	}
}

func TestDegreeSumInvariant(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		g := Uniform("u", 256, 4, seed)
		sum := 0
		for u := 0; u < g.NumNodes; u++ {
			sum += g.Degree(u)
		}
		return sum == g.NumEdges()
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestORKDensest(t *testing.T) {
	ork := Build(ORK, 2048, 9)
	ljn := Build(LJN, 2048, 9)
	if float64(ork.NumEdges())/2048 <= float64(ljn.NumEdges())/2048 {
		t.Errorf("ORK avg degree %.1f should exceed LJN %.1f",
			float64(ork.NumEdges())/2048, float64(ljn.NumEdges())/2048)
	}
}

// Package stream decouples the functional instruction stream from the
// timing models: the "execute once, time many" layer.
//
// Every timing cell of a (config × workload) grid consumes the same
// dynamic instruction stream — the functional execution is a pure
// function of the workload, not of the timing configuration. Following
// the RAVE/Vehave split (arxiv 2111.01949), this package abstracts the
// stream behind InstrSource so a workload can be emulated once
// (LiveSource feeding an Encoder) and replayed into N timing models
// (ReplaySource decoding the compact recording), instead of re-running
// the emulator in lockstep inside every cell.
//
// Timing models that read architectural state (the SVR engine
// scavenges register values and dereferences memory at the retire
// point) consume it through the ArchState interface: live machines
// expose the emulator, replayed machines expose the decoder's tracked
// register file plus a private memory clone kept in lockstep by decoded
// stores — so even those cells replay from recordings.
package stream

import (
	"repro/internal/emu"
	"repro/internal/isa"
)

// InstrSource produces the dynamic instruction stream a timing model
// consumes: one DynInstr per Next call, false once the stream ends
// (program halt, or end of a recording).
type InstrSource interface {
	Next(rec *emu.DynInstr) bool
}

// ArchState is the architectural state a timing model may read at the
// retire point of the instruction it was just handed: register values,
// data memory, and the compare flags. The live emulator (emu.CPU)
// implements it directly; replayed cells observe the same values
// through the decoder's tracked register file (ReplaySource, ArchView).
// By contract the state reflects execution up to and including the most
// recent DynInstr the consumer received — exactly what a lockstep
// emulator would show after Step.
type ArchState interface {
	// Reg returns the architectural value of register r.
	Reg(r isa.Reg) int64
	// ReadMem returns size bytes of data memory at addr, zero-extended.
	ReadMem(addr uint64, size uint8) uint64
	// CmpFlags returns the sign of the last compare: -1, 0, +1.
	CmpFlags() int
}

// LiveSource feeds a timing model straight from the functional emulator:
// every Next executes one instruction on the wrapped CPU. This is the
// classic lockstep arrangement — architectural state lags the timing
// model by at most one instruction, which is what the SVR engine's
// value scavenging relies on.
type LiveSource struct {
	CPU *emu.CPU
}

// NewLive wraps a CPU as an InstrSource.
func NewLive(cpu *emu.CPU) *LiveSource { return &LiveSource{CPU: cpu} }

// Next executes one instruction, filling rec.
func (s *LiveSource) Next(rec *emu.DynInstr) bool { return s.CPU.Step(rec) }

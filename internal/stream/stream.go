// Package stream decouples the functional instruction stream from the
// timing models: the "execute once, time many" layer.
//
// Every timing cell of a (config × workload) grid consumes the same
// dynamic instruction stream — the functional execution is a pure
// function of the workload, not of the timing configuration. Following
// the RAVE/Vehave split (arxiv 2111.01949), this package abstracts the
// stream behind InstrSource so a workload can be emulated once
// (LiveSource feeding an Encoder) and replayed into N timing models
// (ReplaySource decoding the compact recording), instead of re-running
// the emulator in lockstep inside every cell.
//
// The one exception is a timing model whose behaviour feeds back into
// the functional path: the SVR engine scavenges live architectural
// register values and issues speculative loads against the live memory
// image, so SVR cells keep a LiveSource (the scheduler detects this per
// core kind and falls back transparently).
package stream

import "repro/internal/emu"

// InstrSource produces the dynamic instruction stream a timing model
// consumes: one DynInstr per Next call, false once the stream ends
// (program halt, or end of a recording).
type InstrSource interface {
	Next(rec *emu.DynInstr) bool
}

// LiveSource feeds a timing model straight from the functional emulator:
// every Next executes one instruction on the wrapped CPU. This is the
// classic lockstep arrangement — architectural state lags the timing
// model by at most one instruction, which is what the SVR engine's
// value scavenging relies on.
type LiveSource struct {
	CPU *emu.CPU
}

// NewLive wraps a CPU as an InstrSource.
func NewLive(cpu *emu.CPU) *LiveSource { return &LiveSource{CPU: cpu} }

// Next executes one instruction, filling rec.
func (s *LiveSource) Next(rec *emu.DynInstr) bool { return s.CPU.Step(rec) }

package stream

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// The recording format is one variable-length record per dynamic
// instruction: a flags byte followed by zero or more zigzag varints, in
// decode order PC, SrcA, SrcB, Addr, LoadVal, NextPC. Every field has a
// derivation rule; a varint is emitted only when the recorded value
// deviates from it, so a typical record is 1-4 bytes:
//
//	PC      = previous record's NextPC (sequential-by-construction)
//	Instr   = Prog.Code[PC] (never encoded; the program is the dictionary)
//	Seq     = StartSeq + record index (consecutive by contract)
//	SrcA    = regs[Ra] from the codec's tracked register file
//	SrcB    = Imm for cmpi, else regs[Rb]
//	Addr    = uint64(SrcA+Imm) for loads/stores (delta vs. previous
//	          address when the base-register rule does not hold)
//	LoadVal = 0 (explicit zigzag value otherwise)
//	Taken   = flags bit
//	NextPC  = branch rule: taken branches and jumps go to Imm, everything
//	          else falls through to PC+1
//
// Both ends track a 32-entry register file: source operands update it as
// observed, and after each record the destination is written back with
// the same semantics as architectural execution (emu.EvalALU for pure
// ops, LoadVal for loads). Registers therefore deviate from the rules
// only on their first appearance mid-stream, and a steady-state record
// costs bytes exclusively for what the program text cannot predict: load
// results and branch outcomes. The rules mirror emu.CPU.Step exactly;
// encoder and decoder run them in the same order, so the format needs no
// framing beyond the flags bits.
const (
	fTaken byte = 1 << iota
	fPC
	fSrcA
	fSrcB
	fAddr
	fLoadVal
	fNextPC
)

// Recording is one encoded dynamic instruction stream: the compact
// buffer plus the program that decodes it and the stream's origin
// coordinates. It is immutable once built and safe to share across
// concurrently-replaying cells.
type Recording struct {
	Prog     *isa.Program
	Buf      []byte
	N        uint64 // number of records
	StartSeq uint64 // Seq of the first record
	StartPC  int    // PC of the first record
	Halted   bool   // the program halted within the recorded window

	// StartRegs/StartFlags are the architectural register file and
	// compare flags at the recording start point. Both codec ends seed
	// their tracked register file from StartRegs, which makes the
	// decoder's file architecturally exact at every record boundary (not
	// merely self-consistent) — the property replay-backed ArchState
	// views rely on — and spares the encoder the first-appearance deltas
	// for registers live across the start point.
	StartRegs  [isa.NumRegs]int64
	StartFlags int
}

// Bytes returns the encoded size of the stream.
func (r *Recording) Bytes() int { return len(r.Buf) }

// BytesPerInstr returns the mean encoded record size.
func (r *Recording) BytesPerInstr() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(len(r.Buf)) / float64(r.N)
}

// Encoder incrementally builds a Recording from a DynInstr stream. The
// stream must come from executing Prog: records are trusted to carry
// Instr == Prog.Code[PC] and consecutive Seq numbers (both are
// regenerated, not stored, on decode).
type Encoder struct {
	rec      Recording
	expPC    int
	prevAddr uint64
	regs     [isa.NumRegs]int64 // tracked register file (regs[0] stays 0)
	nextSeq  uint64
	started  bool
}

// NewEncoder returns an encoder for streams executed from prog.
func NewEncoder(prog *isa.Program) *Encoder {
	return &Encoder{rec: Recording{Prog: prog}}
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// ruleNextPC is Step's control-flow rule: where execution goes when the
// record's outcome bits are known.
func ruleNextPC(in isa.Instr, pc int, taken bool) int {
	switch in.Kind() {
	case isa.KindBranch:
		if taken {
			return int(in.Imm)
		}
	case isa.KindJump:
		return int(in.Imm)
	}
	return pc + 1
}

// Append encodes one record. It returns an error if the record breaks
// the stream contract (non-consecutive Seq, PC outside the program, or
// an Instr that does not match the program text).
func (e *Encoder) Append(rec *emu.DynInstr) error {
	if !e.started {
		e.started = true
		e.rec.StartSeq = rec.Seq
		e.rec.StartPC = rec.PC
		e.expPC = rec.PC
		e.nextSeq = rec.Seq
	}
	if rec.Seq != e.nextSeq {
		return fmt.Errorf("stream: non-consecutive Seq %d (want %d)", rec.Seq, e.nextSeq)
	}
	if rec.PC < 0 || rec.PC >= len(e.rec.Prog.Code) {
		return fmt.Errorf("stream: PC %d outside program (%d instrs)", rec.PC, len(e.rec.Prog.Code))
	}
	in := e.rec.Prog.Code[rec.PC]
	if rec.Instr != in {
		return fmt.Errorf("stream: record Instr %v does not match program text %v at pc %d", rec.Instr, in, rec.PC)
	}
	e.nextSeq++

	var flags byte
	var tail [6]uint64
	nt := 0
	push := func(f byte, v uint64) {
		flags |= f
		tail[nt] = v
		nt++
	}

	if rec.Taken {
		flags |= fTaken
	}
	if rec.PC != e.expPC {
		push(fPC, zigzag(int64(rec.PC-e.expPC)))
	}

	ruleA := e.regs[in.Ra]
	if rec.SrcA != ruleA {
		push(fSrcA, zigzag(rec.SrcA-ruleA))
	}
	if in.Ra != isa.R0 {
		e.regs[in.Ra] = rec.SrcA
	}

	ruleB := e.regs[in.Rb]
	if in.Op == isa.OpCmpI {
		ruleB = in.Imm
	}
	if rec.SrcB != ruleB {
		push(fSrcB, zigzag(rec.SrcB-ruleB))
	}
	if in.Rb != isa.R0 && in.Op != isa.OpCmpI {
		e.regs[in.Rb] = rec.SrcB
	}

	ruleAddr := uint64(0)
	if in.IsMem() {
		ruleAddr = uint64(rec.SrcA + in.Imm)
	}
	if rec.Addr != ruleAddr {
		push(fAddr, zigzag(int64(rec.Addr-e.prevAddr)))
	}
	if in.IsMem() {
		e.prevAddr = rec.Addr
	}

	if rec.LoadVal != 0 {
		push(fLoadVal, zigzag(rec.LoadVal))
	}
	if rec.NextPC != ruleNextPC(in, rec.PC, rec.Taken) {
		push(fNextPC, zigzag(int64(rec.NextPC-rec.PC)))
	}

	writeBack(&e.regs, in, rec.SrcA, rec.SrcB, rec.LoadVal)

	e.rec.Buf = append(e.rec.Buf, flags)
	for i := 0; i < nt; i++ {
		e.rec.Buf = appendUvarint(e.rec.Buf, tail[i])
	}
	e.expPC = rec.NextPC
	e.rec.N++
	return nil
}

// writeBack updates the tracked register file with the record's
// destination value, mirroring architectural execution: pure ops compute
// through EvalALU, loads write their loaded value. Ops without a
// register result (stores, compares, control flow) leave the file
// untouched, exactly like emu.CPU.Step.
func writeBack(regs *[isa.NumRegs]int64, in isa.Instr, srcA, srcB, loadVal int64) {
	if in.Rd == isa.R0 {
		return
	}
	if v, pure := emu.EvalALU(in.Op, srcA, srcB, in.Imm); pure {
		regs[in.Rd] = v
	} else if in.Op == isa.OpLoad {
		regs[in.Rd] = loadVal
	}
}

// Finish returns the completed recording. The encoder must not be used
// afterwards.
func (e *Encoder) Finish() *Recording {
	r := e.rec
	e.rec = Recording{}
	return &r
}

// Record executes up to n instructions on cpu, encoding the stream. The
// CPU's memory image is mutated exactly as a normal run would mutate it;
// callers that need the pre-run image must pass a clone. A stream
// shorter than n means the program halted (Recording.Halted).
func Record(cpu *emu.CPU, n uint64) (*Recording, error) {
	e := NewEncoder(cpu.Prog)
	// Seed the tracked register file (and record the seed) from the
	// CPU's architectural state at the start point, so decoders
	// reconstruct exact register values from the first record on.
	e.regs = cpu.R
	e.rec.StartRegs = cpu.R
	e.rec.StartFlags = cpu.Flags
	// Pre-size for the common ~2.5 bytes/instr so the append loop does not
	// repeatedly re-grow a multi-megabyte buffer.
	if n > 0 && n < 1<<32 {
		e.rec.Buf = make([]byte, 0, 3*n)
	}
	var rec emu.DynInstr
	var done uint64
	for done < n && cpu.Step(&rec) {
		if err := e.Append(&rec); err != nil {
			return nil, err
		}
		done++
	}
	r := e.Finish()
	r.Halted = done < n
	return r, nil
}

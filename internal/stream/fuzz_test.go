package stream

import (
	"encoding/binary"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// newTestMem returns a small deterministic memory image: a data region at
// dataBase whose words are a simple linear pattern, so loads observe
// non-zero values and indirect chains land somewhere meaningful.
const dataBase = 0x10000

func newTestMem() *mem.Memory {
	m := mem.New()
	for i := uint64(0); i < 512; i++ {
		m.WriteI64(dataBase+i*8, int64(i*7+3))
	}
	return m
}

// fuzzOps is the opcode palette the synthesizer draws from — every
// instruction class, weighted toward memory and control flow since those
// carry the interesting encoder rules.
var fuzzOps = []isa.Op{
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
	isa.OpXor, isa.OpShl, isa.OpShr,
	isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
	isa.OpShlI, isa.OpShrI, isa.OpLoadImm, isa.OpMin, isa.OpMax,
	isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpIToF, isa.OpFToI,
	isa.OpLoad, isa.OpLoad, isa.OpLoad, isa.OpStore, isa.OpStore,
	isa.OpCmp, isa.OpCmpI, isa.OpCmpI,
	isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLE, isa.OpBGT,
	isa.OpJmp, isa.OpNop, isa.OpHalt,
}

var fuzzSizes = [4]uint8{1, 2, 4, 8}

// synthesize turns fuzz bytes into an arbitrary-but-valid program: each 8
// input bytes become one instruction, branch targets are folded into the
// program range, and a trailing halt bounds the text. The dynamic stream
// it produces under execution is the actual fuzz input to the codec.
func synthesize(data []byte) *isa.Program {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	if n > 256 {
		n = 256
	}
	code := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		b := data[i*8 : i*8+8]
		in := isa.Instr{
			Op: fuzzOps[int(b[0])%len(fuzzOps)],
			Rd: isa.Reg(b[1] % isa.NumRegs),
			Ra: isa.Reg(b[2] % isa.NumRegs),
			Rb: isa.Reg(b[3] % isa.NumRegs),
		}
		raw := int64(int16(binary.LittleEndian.Uint16(b[4:6])))
		switch in.Kind() {
		case isa.KindBranch, isa.KindJump:
			in.Imm = int64(int(binary.LittleEndian.Uint16(b[4:6])) % (n + 1))
		case isa.KindLoad, isa.KindStore:
			in.Imm = raw
			in.Size = fuzzSizes[b[6]%4]
		default:
			in.Imm = raw
		}
		code = append(code, in)
	}
	code = append(code, isa.Instr{Op: isa.OpHalt})
	return &isa.Program{Name: "fuzz", Code: code}
}

// seedRegs gives the CPU address-shaped register values derived from the
// input, including one just under a page boundary so base+displacement
// accesses straddle pages.
func seedRegs(cpu *emu.CPU, data []byte) {
	seed := byte(0)
	if len(data) > 0 {
		seed = data[len(data)-1]
	}
	cpu.SetReg(1, dataBase+int64(seed))
	cpu.SetReg(2, dataBase+mem.PageSize-int64(seed%8)-1) // page-straddling base
	cpu.SetReg(3, int64(seed)*257)
	cpu.SetReg(4, -int64(seed))
	cpu.SetReg(5, dataBase+2*mem.PageSize)
}

// FuzzRoundTrip executes a synthesized program (bounded steps), encodes
// the dynamic stream, and requires the decode to reproduce every record
// bit-exactly — including page-straddling addresses and taken/not-taken
// branch runs, which the seed corpus covers explicitly.
func FuzzRoundTrip(f *testing.F) {
	// Seed: tight taken/not-taken branch loop.
	branchy := []byte{}
	for _, line := range [][8]byte{
		{16, 1, 0, 0, 100, 0, 0, 0}, // li r1, 100
		{16, 2, 0, 0, 0, 0, 0, 0},   // li r2, 0
		{9, 2, 2, 0, 1, 0, 0, 0},    // addi r2, r2, 1
		{31, 0, 2, 0, 2, 0, 0, 0},   // cmpi r2, 2 (alternating outcome vs r1 path)
		{35, 0, 0, 0, 2, 0, 0, 0},   // bne @2
		{33, 0, 1, 2, 0, 0, 0, 0},   // beq ...
	} {
		branchy = append(branchy, line[:]...)
	}
	f.Add(branchy)
	// Seed: page-straddling loads/stores through r2 (set just below a
	// page boundary by seedRegs).
	straddle := []byte{}
	for _, line := range [][8]byte{
		{25, 6, 2, 0, 0, 0, 3, 0}, // ld64 r6, [r2+0] — straddles the page
		{28, 0, 2, 6, 4, 0, 3, 0}, // st64 r6, [r2+4]
		{25, 7, 2, 0, 8, 0, 2, 0}, // ld32 r7, [r2+8]
		{9, 2, 2, 0, 16, 0, 0, 0}, // addi r2, r2, 16
		{39, 0, 0, 0, 0, 0, 0, 0}, // jmp @0
	} {
		straddle = append(straddle, line[:]...)
	}
	f.Add(straddle)

	f.Fuzz(func(t *testing.T, data []byte) {
		prog := synthesize(data)
		if prog == nil {
			t.Skip()
		}
		const maxSteps = 4096

		cpuA := emu.New(prog, newTestMem())
		seedRegs(cpuA, data)
		want := collect(cpuA, maxSteps)

		cpuB := emu.New(prog, newTestMem())
		seedRegs(cpuB, data)
		recd, err := Record(cpuB, maxSteps)
		if err != nil {
			t.Fatalf("Record: %v", err)
		}
		if recd.N != uint64(len(want)) {
			t.Fatalf("recorded %d records, want %d", recd.N, len(want))
		}

		rs := NewReplayWithMem(recd, newTestMem())
		var got emu.DynInstr
		for i, w := range want {
			if !rs.Next(&got) {
				t.Fatalf("stream ended at record %d of %d (err=%v)", i, len(want), rs.Err())
			}
			if got != w {
				t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, w)
			}
		}
		if rs.Next(&got) {
			t.Fatal("stream yielded a record past its end")
		}
		if rs.Err() != nil {
			t.Fatal(rs.Err())
		}
	})
}

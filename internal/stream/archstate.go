package stream

import (
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ArchView is the replay-backed ArchState of one decode-once cohort
// member: a private register file, compare flags and memory image. A
// solo replayed cell observes architectural state through its own
// ReplaySource, but cohort members share one decoder — so each member
// reconstructs its view row by row from the shared batch columns
// (Advance, called before the row issues), applying exactly the
// write-back, flag and store rules the decoder itself runs. The view is
// therefore bit-identical to a lockstep emulator's post-Step state at
// every observation point.
type ArchView struct {
	regs  [isa.NumRegs]int64
	flags int
	mem   *mem.Memory
}

// NewArchView returns a view positioned at r's start point, over m —
// a private clone of the memory image in the state the recording pass
// started from.
func NewArchView(r *Recording, m *mem.Memory) *ArchView {
	return &ArchView{regs: r.StartRegs, flags: r.StartFlags, mem: m}
}

// Advance applies rec's architectural effects to the view: destination
// write-back (pure ops and loads), compare flags, and stores into the
// private image. Identical to the decoder's own per-record updates, and
// to emu.CPU.Step's — rec.SrcB already carries the immediate for cmpi.
func (v *ArchView) Advance(rec *emu.DynInstr) {
	in := rec.Instr
	writeBack(&v.regs, in, rec.SrcA, rec.SrcB, rec.LoadVal)
	switch in.Op {
	case isa.OpCmp, isa.OpCmpI:
		v.flags = emu.CmpSign(rec.SrcA, rec.SrcB)
	case isa.OpStore:
		v.mem.Write(rec.Addr, uint64(rec.SrcB), in.Size)
	}
}

// Reg returns the architectural value of register r at the view's
// position.
func (v *ArchView) Reg(r isa.Reg) int64 { return v.regs[r] }

// ReadMem reads the view's private memory image, zero-extended.
func (v *ArchView) ReadMem(addr uint64, size uint8) uint64 { return v.mem.Read(addr, size) }

// CmpFlags returns the sign of the last compare at the view's position.
func (v *ArchView) CmpFlags() int { return v.flags }

package stream

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ReplaySource decodes a Recording back into the exact DynInstr sequence
// the recording pass produced, without touching the emulator. Decoding
// runs the encoder's derivation rules in reverse, so the hot path is a
// flags-byte dispatch plus the few varints the record actually carries.
//
// When a memory image is attached (NewReplayWithMem), stores are applied
// to it as they are decoded, keeping the image in lockstep with the
// stream position. Timing models that dereference memory ahead of the
// stream (the IMP prefetcher) see exactly the bytes a live run would
// have shown them; pure consumers (in-order, out-of-order cores) replay
// with no memory at all.
type ReplaySource struct {
	rec  *Recording
	code []isa.Instr
	mem  *mem.Memory

	pos      int
	done     uint64
	seq      uint64
	expPC    int
	prevAddr uint64
	regs     [isa.NumRegs]int64 // tracked register file, mirrors the encoder's
	flags    int                // sign of the last decoded compare, mirrors emu.CPU.Flags
	err      error
}

// NewReplay returns a source replaying r with no memory image (for
// timing models that never dereference data memory).
func NewReplay(r *Recording) *ReplaySource { return NewReplayWithMem(r, nil) }

// NewReplayWithMem returns a source replaying r that applies decoded
// stores to m. The image must be in the state the recording pass started
// from (e.g. a fresh clone of the workload image, or a checkpoint
// restored to the recording's start point). The source comes from the
// decode-scratch pool; callers that know the cell is finished hand it
// back with Recycle.
func NewReplayWithMem(r *Recording, m *mem.Memory) *ReplaySource {
	s := replayPool.Get().(*ReplaySource)
	*s = ReplaySource{
		rec:   r,
		code:  r.Prog.Code,
		mem:   m,
		seq:   r.StartSeq,
		expPC: r.StartPC,
		regs:  r.StartRegs,
		flags: r.StartFlags,
	}
	return s
}

// The decoder's tracked register file is seeded from the recording's
// architectural start state and advanced by the same write-back rules
// as execution, so a source with a memory image attached is a complete
// replay-backed ArchState: consumers (the SVR engine) observe exactly
// the values a lockstep emulator would show after the most recent Next.

// Reg returns the architectural value of register r at the stream
// position.
func (s *ReplaySource) Reg(r isa.Reg) int64 { return s.regs[r] }

// ReadMem reads data memory at the stream position. Requires an
// attached memory image (NewReplayWithMem).
func (s *ReplaySource) ReadMem(addr uint64, size uint8) uint64 { return s.mem.Read(addr, size) }

// CmpFlags returns the sign of the last compare at the stream position.
func (s *ReplaySource) CmpFlags() int { return s.flags }

// Err returns the first decode error, if any. A nil error with Next
// having returned false means the stream ended cleanly.
func (s *ReplaySource) Err() error { return s.err }

// Remaining returns how many records are left to decode.
func (s *ReplaySource) Remaining() uint64 { return s.rec.N - s.done }

func (s *ReplaySource) fail(format string, args ...any) bool {
	if s.err == nil {
		s.err = fmt.Errorf("stream: "+format, args...)
	}
	return false
}

// Next decodes one record into rec, returning false at end of stream or
// on a malformed buffer (check Err to distinguish).
func (s *ReplaySource) Next(rec *emu.DynInstr) bool {
	if s.done >= s.rec.N || s.err != nil {
		return false
	}
	buf := s.rec.Buf
	pos := s.pos
	if pos >= len(buf) {
		return s.fail("truncated buffer at record %d", s.done)
	}
	flags := buf[pos]
	pos++

	// Inline uvarint: the one-byte case covers almost every delta.
	varint := func() (uint64, bool) {
		if pos >= len(buf) {
			return 0, false
		}
		v := uint64(buf[pos])
		pos++
		if v < 0x80 {
			return v, true
		}
		v &= 0x7f
		for shift := uint(7); ; shift += 7 {
			if pos >= len(buf) || shift > 63 {
				return 0, false
			}
			b := buf[pos]
			pos++
			v |= uint64(b&0x7f) << shift
			if b < 0x80 {
				return v, true
			}
		}
	}

	pc := s.expPC
	if flags&fPC != 0 {
		u, ok := varint()
		if !ok {
			return s.fail("truncated PC delta at record %d", s.done)
		}
		pc += int(unzigzag(u))
	}
	if pc < 0 || pc >= len(s.code) {
		return s.fail("PC %d outside program at record %d", pc, s.done)
	}
	in := s.code[pc]

	srcA := s.regs[in.Ra]
	if flags&fSrcA != 0 {
		u, ok := varint()
		if !ok {
			return s.fail("truncated SrcA at record %d", s.done)
		}
		srcA += unzigzag(u)
	}
	if in.Ra != isa.R0 {
		s.regs[in.Ra] = srcA
	}

	srcB := s.regs[in.Rb]
	if in.Op == isa.OpCmpI {
		srcB = in.Imm
	}
	if flags&fSrcB != 0 {
		u, ok := varint()
		if !ok {
			return s.fail("truncated SrcB at record %d", s.done)
		}
		srcB += unzigzag(u)
	}
	if in.Rb != isa.R0 && in.Op != isa.OpCmpI {
		s.regs[in.Rb] = srcB
	}

	isMem := in.Op == isa.OpLoad || in.Op == isa.OpStore
	addr := uint64(0)
	if flags&fAddr != 0 {
		u, ok := varint()
		if !ok {
			return s.fail("truncated Addr at record %d", s.done)
		}
		addr = s.prevAddr + uint64(unzigzag(u))
	} else if isMem {
		addr = uint64(srcA + in.Imm)
	}
	if isMem {
		s.prevAddr = addr
	}

	loadVal := int64(0)
	if flags&fLoadVal != 0 {
		u, ok := varint()
		if !ok {
			return s.fail("truncated LoadVal at record %d", s.done)
		}
		loadVal = unzigzag(u)
	}

	taken := flags&fTaken != 0
	nextPC := 0
	if flags&fNextPC != 0 {
		u, ok := varint()
		if !ok {
			return s.fail("truncated NextPC at record %d", s.done)
		}
		nextPC = pc + int(unzigzag(u))
	} else {
		nextPC = ruleNextPC(in, pc, taken)
	}

	writeBack(&s.regs, in, srcA, srcB, loadVal)

	if in.Op == isa.OpCmp || in.Op == isa.OpCmpI {
		// srcB is already the immediate for cmpi (decode rule above), so
		// this mirrors Step's flag update for both compare forms.
		s.flags = emu.CmpSign(srcA, srcB)
	}
	if s.mem != nil && in.Op == isa.OpStore {
		s.mem.Write(addr, uint64(srcB), in.Size)
	}

	rec.Seq = s.seq
	rec.PC = pc
	rec.Instr = in
	rec.Addr = addr
	rec.LoadVal = loadVal
	rec.SrcA = srcA
	rec.SrcB = srcB
	rec.Taken = taken
	rec.NextPC = nextPC

	s.seq++
	s.expPC = nextPC
	s.pos = pos
	s.done++
	return true
}

// Skip discards up to n records, returning how many were discarded.
// Stores are still applied when a memory image is attached, so the image
// stays consistent with the stream position.
func (s *ReplaySource) Skip(n uint64) uint64 {
	var rec emu.DynInstr
	var done uint64
	for done < n && s.Next(&rec) {
		done++
	}
	return done
}

package stream

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// FuzzArchStateMatchesLive is the fidelity contract of the replay-backed
// architectural-state views: over a synthesized program window, a
// ReplaySource with a private memory clone and an ArchView advanced
// record-by-record must expose exactly the same architectural
// observations — every register, the compare flags, and memory probes —
// as a live CPU at every retire boundary. This is the property that
// makes SVR cells replay-eligible: the engine's only functional reads
// (loadValue, PredictCV) go through this interface.
func FuzzArchStateMatchesLive(f *testing.F) {
	// Seed: compare/branch mix so flags tracking is exercised, plus
	// stores so the private memory clones diverge from the pristine image.
	mix := []byte{}
	for _, line := range [][8]byte{
		{16, 1, 0, 0, 100, 0, 0, 0}, // li r1, 100
		{25, 6, 2, 0, 0, 0, 3, 0},   // ld64 r6, [r2+0]
		{28, 0, 2, 6, 4, 0, 3, 0},   // st64 r6, [r2+4]
		{31, 0, 6, 0, 2, 0, 0, 0},   // cmpi r6, 2
		{35, 0, 0, 0, 1, 0, 0, 0},   // bne @1
		{30, 0, 1, 6, 0, 0, 0, 0},   // cmp r1, r6
		{9, 2, 2, 0, 16, 0, 0, 0},   // addi r2, r2, 16
	} {
		mix = append(mix, line[:]...)
	}
	f.Add(mix)

	f.Fuzz(func(t *testing.T, data []byte) {
		prog := synthesize(data)
		if prog == nil {
			t.Skip()
		}
		const maxSteps = 4096

		// Record the window from one CPU...
		cpuRec := emu.New(prog, newTestMem())
		seedRegs(cpuRec, data)
		recd, err := Record(cpuRec, maxSteps)
		if err != nil {
			t.Fatalf("Record: %v", err)
		}

		// ...then walk a live CPU, a ReplaySource, and an ArchView in
		// lockstep, comparing architectural observations at every boundary.
		live := emu.New(prog, newTestMem())
		seedRegs(live, data)
		rs := NewReplayWithMem(recd, newTestMem())
		view := NewArchView(recd, newTestMem())

		probes := []uint64{dataBase, dataBase + 8, dataBase + 128}
		check := func(i uint64, rec *emu.DynInstr) {
			t.Helper()
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if lv, rv, vv := live.Reg(r), rs.Reg(r), view.Reg(r); lv != rv || lv != vv {
					t.Fatalf("record %d: r%d live=%d replay=%d view=%d", i, r, lv, rv, vv)
				}
			}
			if lf, rf, vf := live.CmpFlags(), rs.CmpFlags(), view.CmpFlags(); lf != rf || lf != vf {
				t.Fatalf("record %d: flags live=%d replay=%d view=%d", i, lf, rf, vf)
			}
			addrs := probes
			if rec != nil && (rec.Instr.Op == isa.OpLoad || rec.Instr.Op == isa.OpStore) {
				addrs = append(addrs, rec.Addr)
			}
			for _, a := range addrs {
				for _, sz := range fuzzSizes {
					if lm, rm, vm := live.ReadMem(a, sz), rs.ReadMem(a, sz), view.ReadMem(a, sz); lm != rm || lm != vm {
						t.Fatalf("record %d: mem[%#x]/%d live=%#x replay=%#x view=%#x", i, a, sz, lm, rm, vm)
					}
				}
			}
		}

		check(0, nil) // start-of-window state (StartRegs/StartFlags seeding)
		var lrec, rrec emu.DynInstr
		for i := uint64(0); i < recd.N; i++ {
			if !live.Step(&lrec) {
				t.Fatalf("live CPU halted at record %d of %d", i, recd.N)
			}
			if !rs.Next(&rrec) {
				t.Fatalf("replay ended at record %d of %d (err=%v)", i, recd.N, rs.Err())
			}
			if lrec != rrec {
				t.Fatalf("record %d mismatch:\nlive   %+v\nreplay %+v", i, lrec, rrec)
			}
			view.Advance(&rrec)
			check(i+1, &rrec)
		}
	})
}

package stream

import (
	"sync"

	"repro/internal/emu"
	"repro/internal/isa"
)

// The decode-once half of execute-once, time-many: a Recording is
// decoded into flat struct-of-arrays chunks (DecodedBatch) exactly once
// per cohort of sibling timing cells, and every member steps over the
// shared columns instead of running a private ReplaySource cursor. The
// columns are filled BY ReplaySource.Next itself, so a batch consumer
// sees bit-identical records by construction — there is no second
// decoder to drift.

// DecoderState snapshots a ReplaySource position: everything Next
// mutates. A batch carries the state at its end, so a consumer that got
// the batch from a cache can adopt the state and skip the decode
// entirely, and the next chunk can be produced from where this one
// stopped.
type DecoderState struct {
	Pos      int
	Done     uint64
	Seq      uint64
	ExpPC    int
	PrevAddr uint64
	Regs     [isa.NumRegs]int64
	Flags    int
}

// State snapshots the source's decode position.
func (s *ReplaySource) State() DecoderState {
	return DecoderState{
		Pos: s.pos, Done: s.done, Seq: s.seq,
		ExpPC: s.expPC, PrevAddr: s.prevAddr, Regs: s.regs, Flags: s.flags,
	}
}

// SetState repositions the source. st must be a state previously
// captured from a source over the same recording content (the stream is
// deterministic, so content-equal recordings interchange).
func (s *ReplaySource) SetState(st DecoderState) {
	s.pos, s.done, s.seq = st.Pos, st.Done, st.Seq
	s.expPC, s.prevAddr, s.regs = st.ExpPC, st.PrevAddr, st.Regs
	s.flags = st.Flags
}

// DecodedBatch is one chunk of a Recording decoded into SoA columns:
// the static instruction plus the dynamic operand/address/outcome
// values of each record, indexable without any decoder state. Batches
// are immutable once filled (they are shared across cohort members and
// may be retained by the artifact store).
type DecodedBatch struct {
	StartSeq uint64 // Seq of row 0
	N        int    // rows filled

	Instr   []isa.Instr
	PC      []int32
	NextPC  []int32
	Addr    []uint64
	SrcA    []int64
	SrcB    []int64
	LoadVal []int64
	Taken   []bool

	// End is the decoder state after the last row: where the next chunk
	// of the same recording starts.
	End DecoderState
}

// batchRowBytes is the per-row retained size of a batch's columns, for
// the artifact store's byte budget: the padded Instr struct (Op + three
// regs + Imm + Size) plus the seven dynamic columns.
const batchRowBytes = int64(24 + 4 + 4 + 8 + 8 + 8 + 8 + 1)

// Bytes returns the batch's retained size.
func (b *DecodedBatch) Bytes() int64 { return int64(cap(b.Instr))*batchRowBytes + 128 }

// grow makes the columns hold at least n rows, reusing prior storage.
func (b *DecodedBatch) grow(n int) {
	if cap(b.Instr) < n {
		b.Instr = make([]isa.Instr, n)
		b.PC = make([]int32, n)
		b.NextPC = make([]int32, n)
		b.Addr = make([]uint64, n)
		b.SrcA = make([]int64, n)
		b.SrcB = make([]int64, n)
		b.LoadVal = make([]int64, n)
		b.Taken = make([]bool, n)
	}
	b.Instr = b.Instr[:n]
	b.PC = b.PC[:n]
	b.NextPC = b.NextPC[:n]
	b.Addr = b.Addr[:n]
	b.SrcA = b.SrcA[:n]
	b.SrcB = b.SrcB[:n]
	b.LoadVal = b.LoadVal[:n]
	b.Taken = b.Taken[:n]
}

// Fill decodes up to max records from src into b, reusing b's column
// storage, and captures the decoder end state. Returns the rows decoded
// (0 at end of stream). The decode is ReplaySource.Next verbatim, so
// the columns hold exactly the records a solo replay would have seen.
func (b *DecodedBatch) Fill(src *ReplaySource, max int) int {
	b.grow(max)
	b.StartSeq = src.seq
	var rec emu.DynInstr
	n := 0
	for n < max && src.Next(&rec) {
		b.Instr[n] = rec.Instr
		b.PC[n] = int32(rec.PC)
		b.NextPC[n] = int32(rec.NextPC)
		b.Addr[n] = rec.Addr
		b.SrcA[n] = rec.SrcA
		b.SrcB[n] = rec.SrcB
		b.LoadVal[n] = rec.LoadVal
		b.Taken[n] = rec.Taken
		n++
	}
	b.grow(n)
	b.N = n
	b.End = src.State()
	return n
}

// Row copies row i into rec — the same field-complete assignment
// ReplaySource.Next performs, so consumers that reuse one DynInstr see
// no cross-record leakage.
func (b *DecodedBatch) Row(i int, rec *emu.DynInstr) {
	rec.Seq = b.StartSeq + uint64(i)
	rec.PC = int(b.PC[i])
	rec.Instr = b.Instr[i]
	rec.Addr = b.Addr[i]
	rec.LoadVal = b.LoadVal[i]
	rec.SrcA = b.SrcA[i]
	rec.SrcB = b.SrcB[i]
	rec.Taken = b.Taken[i]
	rec.NextPC = int(b.NextPC[i])
}

// Cursor adapts a window of a DecodedBatch to the InstrSource
// interface, for consumers that cannot take the batch-stepping fast
// path. Each cohort member owns a private cursor; the batch behind it
// is shared.
type Cursor struct {
	b      *DecodedBatch
	i, end int
}

// SetWindow points the cursor at rows [lo, hi) of b.
func (c *Cursor) SetWindow(b *DecodedBatch, lo, hi int) { c.b, c.i, c.end = b, lo, hi }

// Next yields the cursor's next row, false past the window end.
func (c *Cursor) Next(rec *emu.DynInstr) bool {
	if c.i >= c.end {
		return false
	}
	c.b.Row(c.i, rec)
	c.i++
	return true
}

// replayPool recycles ReplaySource decode state (the tracked register
// file is the bulk) so per-cell replay attachment stops allocating: the
// grid churns through one source per replayed cell.
var replayPool = sync.Pool{New: func() any { return new(ReplaySource) }}

// Recycle returns a source to the decode-scratch pool. The caller must
// be the last user: the machine that consumed the source is being
// discarded (sources are never shared between cells).
func (s *ReplaySource) Recycle() {
	*s = ReplaySource{}
	replayPool.Put(s)
}

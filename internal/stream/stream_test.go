package stream

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// collect runs n instructions live, returning the records.
func collect(cpu *emu.CPU, n int) []emu.DynInstr {
	out := make([]emu.DynInstr, 0, n)
	var rec emu.DynInstr
	for len(out) < n && cpu.Step(&rec) {
		out = append(out, rec)
	}
	return out
}

// TestRoundTripWorkloads encodes a real workload's stream and checks the
// decode reproduces every DynInstr field bit-exactly, for a pointer-chasing
// graph kernel and a store-heavy one.
func TestRoundTripWorkloads(t *testing.T) {
	const n = 50_000
	for _, name := range []string{"PR_KR", "Randacc"} {
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := workloads.TinyScale()

			live := spec.Build(sc)
			want := collect(emu.New(live.Prog, live.Mem), n)

			recInst := spec.Build(sc)
			recd, err := Record(emu.New(recInst.Prog, recInst.Mem), n)
			if err != nil {
				t.Fatalf("Record: %v", err)
			}
			if recd.N != uint64(len(want)) {
				t.Fatalf("recorded %d records, want %d", recd.N, len(want))
			}

			replayInst := spec.Build(sc)
			rs := NewReplayWithMem(recd, replayInst.Mem)
			var got emu.DynInstr
			for i, w := range want {
				if !rs.Next(&got) {
					t.Fatalf("stream ended at record %d of %d (err=%v)", i, len(want), rs.Err())
				}
				if got != w {
					t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, w)
				}
			}
			if rs.Next(&got) {
				t.Fatalf("stream yielded a record past its end")
			}
			if rs.Err() != nil {
				t.Fatalf("decode error: %v", rs.Err())
			}

			// Store application must leave the replay image bit-identical
			// to the live image at every stored address.
			for _, w := range want {
				if w.Instr.Op == isa.OpStore {
					lv := live.Mem.Read(w.Addr, w.Instr.Size)
					rv := replayInst.Mem.Read(w.Addr, w.Instr.Size)
					if lv != rv {
						t.Fatalf("store at %#x: replay image %d, live image %d", w.Addr, rv, lv)
					}
				}
			}

			bpi := recd.BytesPerInstr()
			t.Logf("%s: %d instrs, %d bytes (%.2f B/instr)", name, recd.N, recd.Bytes(), bpi)
			if bpi > 4 {
				t.Errorf("encoding too large: %.2f bytes/instr (want <= 4)", bpi)
			}
		})
	}
}

// TestRecordHalt checks a window that runs past program end: the stream
// carries exactly the executed instructions (halt included) and reports
// the truncation.
func TestRecordHalt(t *testing.T) {
	prog, err := isa.Parse("tiny", `
		li r1, 5
		addi r1, r1, 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	recd, err := Record(emu.New(prog, newTestMem()), 100)
	if err != nil {
		t.Fatal(err)
	}
	if recd.N != 3 || !recd.Halted {
		t.Fatalf("got N=%d Halted=%v, want N=3 Halted=true", recd.N, recd.Halted)
	}
	rs := NewReplay(recd)
	if n := rs.Skip(100); n != 3 {
		t.Fatalf("Skip consumed %d records, want 3", n)
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
}

// TestEncoderRejectsContractBreaks checks the stream contract is enforced:
// non-consecutive Seq and program-text mismatches are errors, not silent
// corruption.
func TestEncoderRejectsContractBreaks(t *testing.T) {
	prog, err := isa.Parse("tiny", `
		li r1, 5
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEncoder(prog)
	rec := emu.DynInstr{Seq: 0, PC: 0, Instr: prog.Code[0], NextPC: 1}
	if err := e.Append(&rec); err != nil {
		t.Fatalf("first append: %v", err)
	}
	bad := emu.DynInstr{Seq: 5, PC: 1, Instr: prog.Code[1], NextPC: 2}
	if err := e.Append(&bad); err == nil {
		t.Fatal("non-consecutive Seq accepted")
	}

	e = NewEncoder(prog)
	wrong := emu.DynInstr{Seq: 0, PC: 0, Instr: prog.Code[1], NextPC: 1}
	if err := e.Append(&wrong); err == nil {
		t.Fatal("Instr/program mismatch accepted")
	}

	e = NewEncoder(prog)
	outside := emu.DynInstr{Seq: 0, PC: 99, NextPC: 100}
	if err := e.Append(&outside); err == nil {
		t.Fatal("out-of-program PC accepted")
	}
}

// TestReplayRejectsCorruptBuffer checks truncated buffers surface as
// decode errors instead of panics or garbage records.
func TestReplayRejectsCorruptBuffer(t *testing.T) {
	prog, err := isa.Parse("tiny", `
		li r1, 70000
		ld64 r2, [r1+0]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	recd, err := Record(emu.New(prog, newTestMem()), 10)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(recd.Buf); cut++ {
		trunc := &Recording{
			Prog: recd.Prog, Buf: recd.Buf[:cut], N: recd.N,
			StartSeq: recd.StartSeq, StartPC: recd.StartPC,
		}
		rs := NewReplay(trunc)
		var rec emu.DynInstr
		for rs.Next(&rec) {
		}
		if rs.Remaining() > 0 && rs.Err() == nil {
			t.Fatalf("cut at %d: stream stopped early with no error", cut)
		}
	}
}

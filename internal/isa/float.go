package isa

import "math"

// F2B converts a float64 to its register bit pattern.
func F2B(f float64) int64 { return int64(math.Float64bits(f)) }

// B2F converts a register bit pattern back to a float64.
func B2F(b int64) float64 { return math.Float64frombits(uint64(b)) }

package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a program from textual assembly in the same syntax
// Program.Disasm emits. Supported forms:
//
//	label:                     ; binds a label
//	add r1, r2, r3             ; register-register ALU
//	addi r1, r2, 42            ; register-immediate ALU
//	li r1, 42                  ; load immediate
//	itof r1, r2                ; conversions
//	ld32 r5, [r2+8]            ; loads (8/16/32/64-bit)
//	st64 r3, [r4-8]            ; stores
//	cmp r1, r2 / cmpi r1, 42   ; compares
//	blt loop / blt @17         ; branches to a label or absolute index
//	jmp loop / nop / halt
//
// Comments start with '#', '//' or ';' and run to end of line.
func Parse(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading "NNN:" disassembly indices are ignored; "name:" binds.
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			head := strings.TrimSpace(line[:colon])
			if head == "" {
				return nil, fmt.Errorf("line %d: empty label", lineNo+1)
			}
			if _, numeric := atoiOK(head); !numeric {
				if _, dup := b.labels[head]; dup {
					return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, head)
				}
				b.Label(head)
			}
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := parseInstr(b, line); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
		}
	}
	p, err := b.BuildErr()
	if err != nil {
		return nil, err
	}
	return p, nil
}

func atoiOK(s string) (int, bool) {
	n, err := strconv.Atoi(s)
	return n, err == nil
}

func stripComment(s string) string {
	for _, marker := range []string{"#", "//", ";"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

var regRegOps = map[string]func(b *Builder, rd, ra, rb Reg){
	"add": (*Builder).Add, "sub": (*Builder).Sub, "mul": (*Builder).Mul,
	"div": (*Builder).Div, "and": (*Builder).And, "or": (*Builder).Or,
	"xor": (*Builder).Xor, "shl": (*Builder).Shl, "shr": (*Builder).Shr,
	"min": (*Builder).Min, "max": (*Builder).Max,
	"fadd": (*Builder).FAdd, "fsub": (*Builder).FSub,
	"fmul": (*Builder).FMul, "fdiv": (*Builder).FDiv,
}

var regImmOps = map[string]func(b *Builder, rd, ra Reg, imm int64){
	"addi": (*Builder).AddI, "muli": (*Builder).MulI, "andi": (*Builder).AndI,
	"ori": (*Builder).OrI, "xori": (*Builder).XorI,
	"shli": (*Builder).ShlI, "shri": (*Builder).ShrI,
}

var branchOps = map[string]func(b *Builder, label string){
	"beq": (*Builder).BEQ, "bne": (*Builder).BNE, "blt": (*Builder).BLT,
	"bge": (*Builder).BGE, "ble": (*Builder).BLE, "bgt": (*Builder).BGT,
	"jmp": (*Builder).Jmp,
}

func parseInstr(b *Builder, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(mnemonic)
	args := splitArgs(rest)

	if fn, ok := regRegOps[mnemonic]; ok {
		rs, err := regs(args, 3)
		if err != nil {
			return fmt.Errorf("%s: %v", mnemonic, err)
		}
		fn(b, rs[0], rs[1], rs[2])
		return nil
	}
	if fn, ok := regImmOps[mnemonic]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s: want rd, ra, imm", mnemonic)
		}
		rd, err1 := reg(args[0])
		ra, err2 := reg(args[1])
		imm, err3 := imm(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return fmt.Errorf("%s: %v", mnemonic, err)
		}
		fn(b, rd, ra, imm)
		return nil
	}
	if fn, ok := branchOps[mnemonic]; ok {
		if len(args) != 1 {
			return fmt.Errorf("%s: want one target", mnemonic)
		}
		target := args[0]
		if strings.HasPrefix(target, "@") {
			// Absolute instruction index from disassembly.
			pc, err := strconv.Atoi(target[1:])
			if err != nil {
				return fmt.Errorf("%s: bad target %q", mnemonic, target)
			}
			synth := fmt.Sprintf("@%d", pc)
			if _, bound := b.labels[synth]; !bound {
				b.bindAt(synth, pc)
			}
			fn(b, synth)
			return nil
		}
		fn(b, target)
		return nil
	}

	switch {
	case mnemonic == "nop":
		b.Nop()
	case mnemonic == "halt":
		b.Halt()
	case mnemonic == "li":
		if len(args) != 2 {
			return fmt.Errorf("li: want rd, imm")
		}
		rd, err1 := reg(args[0])
		v, err2 := imm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return fmt.Errorf("li: %v", err)
		}
		b.LoadImm(rd, v)
	case mnemonic == "itof" || mnemonic == "ftoi":
		rs, err := regs(args, 2)
		if err != nil {
			return fmt.Errorf("%s: %v", mnemonic, err)
		}
		if mnemonic == "itof" {
			b.IToF(rs[0], rs[1])
		} else {
			b.FToI(rs[0], rs[1])
		}
	case mnemonic == "cmp":
		rs, err := regs(args, 2)
		if err != nil {
			return fmt.Errorf("cmp: %v", err)
		}
		b.Cmp(rs[0], rs[1])
	case mnemonic == "cmpi":
		if len(args) != 2 {
			return fmt.Errorf("cmpi: want ra, imm")
		}
		ra, err1 := reg(args[0])
		v, err2 := imm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return fmt.Errorf("cmpi: %v", err)
		}
		b.CmpI(ra, v)
	case strings.HasPrefix(mnemonic, "ld"), strings.HasPrefix(mnemonic, "st"):
		return parseMem(b, mnemonic, args)
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

func parseMem(b *Builder, mnemonic string, args []string) error {
	bits, err := strconv.Atoi(mnemonic[2:])
	if err != nil || (bits != 8 && bits != 16 && bits != 32 && bits != 64) {
		return fmt.Errorf("bad memory width %q", mnemonic)
	}
	size := uint8(bits / 8)
	if len(args) != 2 {
		return fmt.Errorf("%s: want reg, [base+disp]", mnemonic)
	}
	r, err := reg(args[0])
	if err != nil {
		return fmt.Errorf("%s: %v", mnemonic, err)
	}
	base, disp, err := memOperand(args[1])
	if err != nil {
		return fmt.Errorf("%s: %v", mnemonic, err)
	}
	if mnemonic[0] == 'l' {
		b.Load(r, base, disp, size)
	} else {
		b.Store(r, base, disp, size)
	}
	return nil
}

// memOperand parses "[rN+disp]" / "[rN-disp]" / "[rN]".
func memOperand(s string) (Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	if len(inner) < 2 {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	sep := strings.IndexAny(inner[1:], "+-")
	if sep < 0 {
		r, err := reg(inner)
		return r, 0, err
	}
	sep++
	r, err := reg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	disp, err := strconv.ParseInt(inner[sep:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad displacement %q", inner[sep:])
	}
	return r, disp, nil
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// regs parses exactly n register operands.
func regs(args []string, n int) ([]Reg, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d register operands, got %d", n, len(args))
	}
	out := make([]Reg, n)
	for i, a := range args {
		r, err := reg(a)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func reg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func imm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// bindAt binds a label to an arbitrary instruction index (used for the
// "@N" absolute targets that Disasm emits). Forward indices are legal
// because resolution happens in Build.
func (b *Builder) bindAt(name string, pc int) {
	if _, dup := b.labels[name]; dup {
		return
	}
	b.labels[name] = pc
}

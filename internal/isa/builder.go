package isa

import "fmt"

// Builder assembles a Program with forward-referencing labels and a tiny
// register allocator. All workload kernels in internal/workloads are
// written against this API.
type Builder struct {
	name    string
	code    []Instr
	labels  map[string]int
	fixups  []fixup
	nextReg Reg
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int), nextReg: 1}
}

// AllocReg hands out a fresh architectural register. It panics when the
// register file is exhausted; kernels are expected to fit in 32 registers
// like real compiled code for a 32-register machine.
func (b *Builder) AllocReg() Reg {
	if b.nextReg >= NumRegs {
		panic("isa: out of architectural registers")
	}
	r := b.nextReg
	b.nextReg++
	return r
}

// AllocRegs hands out n fresh registers.
func (b *Builder) AllocRegs(n int) []Reg {
	rs := make([]Reg, n)
	for i := range rs {
		rs[i] = b.AllocReg()
	}
	return rs
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.code) }

// Label binds a name to the current PC. Referencing a label before binding
// it is allowed (forward branches).
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
}

func (b *Builder) emit(in Instr) { b.code = append(b.code, in) }

func (b *Builder) emitBranch(op Op, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.emit(Instr{Op: op})
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: OpNop}) }

// Integer register-register ALU ops.

func (b *Builder) Add(rd, ra, rb Reg) { b.emit(Instr{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Sub(rd, ra, rb Reg) { b.emit(Instr{Op: OpSub, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Mul(rd, ra, rb Reg) { b.emit(Instr{Op: OpMul, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Div(rd, ra, rb Reg) { b.emit(Instr{Op: OpDiv, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) And(rd, ra, rb Reg) { b.emit(Instr{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Or(rd, ra, rb Reg)  { b.emit(Instr{Op: OpOr, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Xor(rd, ra, rb Reg) { b.emit(Instr{Op: OpXor, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Shl(rd, ra, rb Reg) { b.emit(Instr{Op: OpShl, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Shr(rd, ra, rb Reg) { b.emit(Instr{Op: OpShr, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Min(rd, ra, rb Reg) { b.emit(Instr{Op: OpMin, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) Max(rd, ra, rb Reg) { b.emit(Instr{Op: OpMax, Rd: rd, Ra: ra, Rb: rb}) }

// Integer register-immediate ALU ops.

func (b *Builder) AddI(rd, ra Reg, imm int64) { b.emit(Instr{Op: OpAddI, Rd: rd, Ra: ra, Imm: imm}) }
func (b *Builder) MulI(rd, ra Reg, imm int64) { b.emit(Instr{Op: OpMulI, Rd: rd, Ra: ra, Imm: imm}) }
func (b *Builder) AndI(rd, ra Reg, imm int64) { b.emit(Instr{Op: OpAndI, Rd: rd, Ra: ra, Imm: imm}) }
func (b *Builder) OrI(rd, ra Reg, imm int64)  { b.emit(Instr{Op: OpOrI, Rd: rd, Ra: ra, Imm: imm}) }
func (b *Builder) XorI(rd, ra Reg, imm int64) { b.emit(Instr{Op: OpXorI, Rd: rd, Ra: ra, Imm: imm}) }
func (b *Builder) ShlI(rd, ra Reg, imm int64) { b.emit(Instr{Op: OpShlI, Rd: rd, Ra: ra, Imm: imm}) }
func (b *Builder) ShrI(rd, ra Reg, imm int64) { b.emit(Instr{Op: OpShrI, Rd: rd, Ra: ra, Imm: imm}) }

// Mov copies ra into rd (encoded as addi rd, ra, 0).
func (b *Builder) Mov(rd, ra Reg) { b.AddI(rd, ra, 0) }

// LoadImm sets rd to a constant.
func (b *Builder) LoadImm(rd Reg, imm int64) { b.emit(Instr{Op: OpLoadImm, Rd: rd, Imm: imm}) }

// LoadImmF sets rd to the bit pattern of a float64 constant.
func (b *Builder) LoadImmF(rd Reg, f float64) { b.LoadImm(rd, F2B(f)) }

// Floating point.

func (b *Builder) FAdd(rd, ra, rb Reg) { b.emit(Instr{Op: OpFAdd, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) FSub(rd, ra, rb Reg) { b.emit(Instr{Op: OpFSub, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) FMul(rd, ra, rb Reg) { b.emit(Instr{Op: OpFMul, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) FDiv(rd, ra, rb Reg) { b.emit(Instr{Op: OpFDiv, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) IToF(rd, ra Reg)     { b.emit(Instr{Op: OpIToF, Rd: rd, Ra: ra}) }
func (b *Builder) FToI(rd, ra Reg)     { b.emit(Instr{Op: OpFToI, Rd: rd, Ra: ra}) }

// Memory. Displacement-addressed; size in bytes.

func (b *Builder) Load(rd, base Reg, disp int64, size uint8) {
	checkSize(size)
	b.emit(Instr{Op: OpLoad, Rd: rd, Ra: base, Imm: disp, Size: size})
}

func (b *Builder) Store(data, base Reg, disp int64, size uint8) {
	checkSize(size)
	b.emit(Instr{Op: OpStore, Rb: data, Ra: base, Imm: disp, Size: size})
}

func checkSize(size uint8) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("isa: bad access size %d", size))
	}
}

// Compare and branch.

func (b *Builder) Cmp(ra, rb Reg)         { b.emit(Instr{Op: OpCmp, Ra: ra, Rb: rb}) }
func (b *Builder) CmpI(ra Reg, imm int64) { b.emit(Instr{Op: OpCmpI, Ra: ra, Imm: imm}) }

func (b *Builder) BEQ(label string) { b.emitBranch(OpBEQ, label) }
func (b *Builder) BNE(label string) { b.emitBranch(OpBNE, label) }
func (b *Builder) BLT(label string) { b.emitBranch(OpBLT, label) }
func (b *Builder) BGE(label string) { b.emitBranch(OpBGE, label) }
func (b *Builder) BLE(label string) { b.emitBranch(OpBLE, label) }
func (b *Builder) BGT(label string) { b.emitBranch(OpBGT, label) }
func (b *Builder) Jmp(label string) { b.emitBranch(OpJmp, label) }

// Halt terminates the program.
func (b *Builder) Halt() { b.emit(Instr{Op: OpHalt}) }

// Build resolves all label references and returns the finished Program.
// It panics on dangling labels — a programming error in a kernel.
// Parsers handling untrusted input should use BuildErr.
func (b *Builder) Build() *Program {
	p, err := b.BuildErr()
	if err != nil {
		panic("isa: " + err.Error())
	}
	return p
}

// BuildErr resolves all label references and returns the finished
// Program, or an error for dangling labels.
func (b *Builder) BuildErr() (*Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		b.code[f.pc].Imm = int64(pc)
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Name: b.name, Code: b.code, labels: labels}, nil
}

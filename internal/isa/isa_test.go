package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		in   Instr
		want Kind
	}{
		{Instr{Op: OpAdd}, KindALU},
		{Instr{Op: OpAddI}, KindALU},
		{Instr{Op: OpMul}, KindMul},
		{Instr{Op: OpDiv}, KindDiv},
		{Instr{Op: OpFAdd}, KindFPU},
		{Instr{Op: OpFDiv}, KindDiv},
		{Instr{Op: OpLoad}, KindLoad},
		{Instr{Op: OpStore}, KindStore},
		{Instr{Op: OpCmp}, KindCmp},
		{Instr{Op: OpBLT}, KindBranch},
		{Instr{Op: OpJmp}, KindJump},
		{Instr{Op: OpHalt}, KindHalt},
		{Instr{Op: OpNop}, KindNop},
		{Instr{Op: OpLoadImm}, KindALU},
		{Instr{Op: OpMin}, KindALU},
	}
	for _, c := range cases {
		if got := c.in.Kind(); got != c.want {
			t.Errorf("%v Kind = %v, want %v", c.in.Op, got, c.want)
		}
	}
}

func TestWritesReg(t *testing.T) {
	if r, ok := (Instr{Op: OpAdd, Rd: 5}).WritesReg(); !ok || r != 5 {
		t.Errorf("add should write r5, got %v %v", r, ok)
	}
	if _, ok := (Instr{Op: OpStore}).WritesReg(); ok {
		t.Error("store should not write a register")
	}
	if _, ok := (Instr{Op: OpCmp}).WritesReg(); ok {
		t.Error("cmp should not write a register")
	}
	if r, ok := (Instr{Op: OpLoad, Rd: 7}).WritesReg(); !ok || r != 7 {
		t.Error("load should write its destination")
	}
}

func TestSrcRegs(t *testing.T) {
	got := (Instr{Op: OpAdd, Ra: 1, Rb: 2}).SrcRegs(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("add sources = %v", got)
	}
	got = (Instr{Op: OpStore, Ra: 3, Rb: 4}).SrcRegs(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("store sources = %v", got)
	}
	got = (Instr{Op: OpLoad, Ra: 3, Rd: 4}).SrcRegs(nil)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("load sources = %v", got)
	}
	if got = (Instr{Op: OpLoadImm, Rd: 1}).SrcRegs(nil); len(got) != 0 {
		t.Errorf("li sources = %v", got)
	}
	if got = (Instr{Op: OpBLT}).SrcRegs(nil); len(got) != 0 {
		t.Errorf("branch sources = %v, branches read only flags", got)
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder("t")
	b.LoadImm(1, 0)
	b.Label("loop")
	b.AddI(1, 1, 1)
	b.CmpI(1, 10)
	b.BLT("loop") // backward
	b.BGE("done") // forward
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	p := b.Build()

	loop, ok := p.LabelPC("loop")
	if !ok || loop != 1 {
		t.Fatalf("loop label = %d, %v", loop, ok)
	}
	done, _ := p.LabelPC("done")
	if p.Code[3].Imm != int64(loop) {
		t.Errorf("backward branch target = %d, want %d", p.Code[3].Imm, loop)
	}
	if p.Code[4].Imm != int64(done) {
		t.Errorf("forward branch target = %d, want %d", p.Code[4].Imm, done)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with dangling label should panic")
		}
	}()
	b := NewBuilder("t")
	b.Jmp("nowhere")
	b.Build()
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label should panic")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
}

func TestBuilderRegAllocExhaustion(t *testing.T) {
	b := NewBuilder("t")
	for i := 0; i < NumRegs-1; i++ {
		b.AllocReg()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("33rd register should panic")
		}
	}()
	b.AllocReg()
}

func TestBadAccessSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 3 load should panic")
		}
	}()
	b := NewBuilder("t")
	b.Load(1, 2, 0, 3)
}

func TestDisasmContainsLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Label("start")
	b.LoadImm(1, 42)
	b.Halt()
	d := b.Build().Disasm()
	if !strings.Contains(d, "start:") || !strings.Contains(d, "li r1, 42") {
		t.Errorf("disasm missing pieces:\n%s", d)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	if err := quick.Check(func(f float64) bool {
		if f != f { // NaN: compare bit patterns instead
			return B2F(F2B(f)) != B2F(F2B(f))
		}
		return B2F(F2B(f)) == f
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrStringFormats(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpLoad, Rd: 1, Ra: 2, Imm: 8, Size: 8}, "ld64 r1, [r2+8]"},
		{Instr{Op: OpStore, Rb: 3, Ra: 4, Imm: -4, Size: 4}, "st32 r3, [r4-4]"},
		{Instr{Op: OpCmp, Ra: 1, Rb: 2}, "cmp r1, r2"},
		{Instr{Op: OpBLT, Imm: 7}, "blt @7"},
		{Instr{Op: OpAddI, Rd: 1, Ra: 1, Imm: 4}, "addi r1, r1, 4"},
		{Instr{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

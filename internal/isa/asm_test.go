package isa

import (
	"testing"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
# sum the numbers 0..9
        li r1, 0        ; accumulator
        li r2, 0        // index
loop:
        add r1, r1, r2
        addi r2, r2, 1
        cmpi r2, 10
        blt loop
        halt
`
	p, err := Parse("sum", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Fatalf("program length = %d", p.Len())
	}
	loop, ok := p.LabelPC("loop")
	if !ok || loop != 2 {
		t.Fatalf("loop label = %d, %v", loop, ok)
	}
	if p.Code[5].Op != OpBLT || p.Code[5].Imm != 2 {
		t.Errorf("branch = %+v", p.Code[5])
	}
}

func TestParseMemoryOperands(t *testing.T) {
	p, err := Parse("m", `
        ld32 r5, [r2+8]
        ld64 r6, [r3]
        st16 r7, [r4-12]
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Instr{
		{Op: OpLoad, Rd: 5, Ra: 2, Imm: 8, Size: 4},
		{Op: OpLoad, Rd: 6, Ra: 3, Imm: 0, Size: 8},
		{Op: OpStore, Rb: 7, Ra: 4, Imm: -12, Size: 2},
		{Op: OpHalt},
	}
	for i, w := range want {
		if p.Code[i] != w {
			t.Errorf("instr %d = %+v, want %+v", i, p.Code[i], w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",       // missing operand
		"li r99, 1",        // bad register
		"ld24 r1, [r2+0]",  // bad width
		"ld32 r1, r2",      // not a memory operand
		"addi r1, r2, zzz", // bad immediate
		"blt",              // missing target
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAbsoluteTargets(t *testing.T) {
	p, err := Parse("abs", `
        li r1, 1
        jmp @3
        li r1, 2
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Op != OpJmp || p.Code[1].Imm != 3 {
		t.Errorf("jmp = %+v", p.Code[1])
	}
}

// TestDisasmRoundTrip: parsing the disassembly of a program must
// reproduce the instruction stream exactly.
func TestDisasmRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	b.LoadImm(1, 12345)
	b.LoadImm(2, -7)
	b.Label("loop")
	b.Add(3, 1, 2)
	b.Mul(4, 3, 3)
	b.ShlI(5, 4, 2)
	b.Load(6, 5, 16, 4)
	b.FAdd(7, 6, 6)
	b.IToF(8, 7)
	b.FToI(9, 8)
	b.Store(9, 5, -4, 8)
	b.Min(10, 9, 1)
	b.Cmp(10, 1)
	b.BLT("loop")
	b.CmpI(10, 99)
	b.BGE("done")
	b.Jmp("loop")
	b.Label("done")
	b.Nop()
	b.Halt()
	orig := b.Build()

	parsed, err := Parse("rt", orig.Disasm())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, orig.Disasm())
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("length %d != %d", parsed.Len(), orig.Len())
	}
	for i := range orig.Code {
		if parsed.Code[i] != orig.Code[i] {
			t.Errorf("instr %d: %+v != %+v", i, parsed.Code[i], orig.Code[i])
		}
	}
}

package isa

import (
	"strings"
	"testing"
)

// FuzzParse: arbitrary input must never panic the assembler, and any
// program it accepts must survive a disasm -> parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("li r1, 42\nhalt\n")
	f.Add("loop:\n  add r1, r1, r2\n  blt loop\n")
	f.Add("ld32 r5, [r2+8]\nst64 r3, [r4-8]")
	f.Add("cmp r1, r2\nbge @0")
	f.Add("# comment\n;semi\n//slash")
	f.Add("bogus stuff ][")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		// Successful parses must round trip.
		again, err := Parse("fuzz2", p.Disasm())
		if err != nil {
			// A parseable program whose own disassembly does not parse
			// is a bug — unless the source bound labels that collide
			// with disasm's @N form (impossible: @ is not emitted for
			// user labels) or branch targets point outside the program,
			// which Disasm renders as plain @N and must still parse.
			t.Fatalf("disasm of parsed program failed to reparse: %v\n%s", err, p.Disasm())
		}
		if again.Len() != p.Len() {
			t.Fatalf("round trip changed length: %d -> %d", p.Len(), again.Len())
		}
	})
}

// FuzzInstrString: String must never panic for arbitrary encodings.
func FuzzInstrString(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(2), uint8(3), int64(7), uint8(4))
	f.Fuzz(func(t *testing.T, op, rd, ra, rb uint8, imm int64, size uint8) {
		in := Instr{Op: Op(op), Rd: Reg(rd), Ra: Reg(ra), Rb: Reg(rb), Imm: imm, Size: size}
		if s := in.String(); s == "" {
			t.Fatal("empty rendering")
		}
		in.Kind()
		in.WritesReg()
		in.SrcRegs(nil)
	})
}

func TestParseLabelColonOnly(t *testing.T) {
	// A line that is only ":" must error, not panic.
	if _, err := Parse("x", ":"); err == nil {
		t.Fatal("expected error for empty label")
	}
}

func TestParseBranchToUnboundLabelErrors(t *testing.T) {
	if _, err := Parse("x", "jmp nowhere"); err == nil {
		t.Fatal("dangling label should be a parse error")
	}
}

func TestParseDuplicateLabelErrors(t *testing.T) {
	if _, err := Parse("x", "p:p:0"); err == nil {
		t.Fatal("duplicate label on one line should be a parse error")
	}
	if _, err := Parse("x", "a:\nnop\na:\nhalt"); err == nil {
		t.Fatal("duplicate label should be a parse error")
	}
}

func TestParseNumericLabelIgnored(t *testing.T) {
	// Disassembly line numbers ("  4: addi ...") are not labels.
	p, err := Parse("x", "  4: addi r1, r1, 1\n  5: halt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestParseWhitespaceVariants(t *testing.T) {
	srcs := []string{
		"add r1,r2,r3",
		"add  r1 , r2 ,  r3",
		"\tadd r1, r2, r3\t",
	}
	for _, src := range srcs {
		p, err := Parse("x", src+"\nhalt")
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if p.Code[0].Op != OpAdd {
			t.Errorf("Parse(%q) = %+v", src, p.Code[0])
		}
	}
}

func TestParseCaseInsensitiveMnemonics(t *testing.T) {
	p, err := Parse("x", "ADD r1, r2, r3\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != OpAdd || p.Code[1].Op != OpHalt {
		t.Errorf("case-insensitive parse failed: %+v", p.Code)
	}
}

// TestParseRejectsGarbage covers a grab-bag of malformed lines.
func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"ld32 r1, [zz+0]",
		"ld32 r1, [r2+abc]",
		"st64 [r2+0], r1",
		"cmp r1",
		"li r1",
		"jmp @xx",
		strings.Repeat("x", 300),
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) accepted garbage", src)
		}
	}
}

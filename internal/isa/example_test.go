package isa_test

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ExampleBuilder assembles and runs the canonical counted loop.
func ExampleBuilder() {
	b := isa.NewBuilder("triangle")
	sum, i := b.AllocReg(), b.AllocReg()
	b.Label("loop")
	b.Add(sum, sum, i)
	b.AddI(i, i, 1)
	b.CmpI(i, 10)
	b.BLT("loop")
	b.Halt()

	cpu := emu.New(b.Build(), mem.New())
	cpu.Run(1000)
	fmt.Println(cpu.Reg(sum))
	// Output: 45
}

// ExampleParse assembles the same program from text.
func ExampleParse() {
	p, err := isa.Parse("triangle", `
        # sum 0..9 into r1
loop:
        add r1, r1, r2
        addi r2, r2, 1
        cmpi r2, 10
        blt loop
        halt
`)
	if err != nil {
		panic(err)
	}
	cpu := emu.New(p, mem.New())
	cpu.Run(1000)
	fmt.Println(cpu.Reg(1))
	// Output: 45
}

// Package isa defines the mini RISC instruction set used by the simulator.
//
// The machine has 32 general-purpose 64-bit integer registers (R0 is
// hardwired to zero), a flags register written only by compare
// instructions, and a flat 64-bit byte-addressable memory. Floating-point
// values are stored in the integer registers as IEEE-754 bit patterns and
// operated on by the F-prefixed opcodes, mirroring how the paper's
// workloads mix integer index arithmetic with floating-point vertex data.
//
// Programs are sequences of instructions addressed by instruction index
// ("PC"). Branch targets are instruction indices. Loads and stores use
// base+displacement addressing (addr = R[Ra] + Imm), which forces address
// arithmetic into explicit instructions — exactly the dependence chains the
// SVR taint tracker follows.
package isa

import "fmt"

// Reg identifies one of the 32 architectural registers.
type Reg uint8

// NumRegs is the architectural register count (matches the paper's
// 32-entry taint tracker).
const NumRegs = 32

// R0 is hardwired to zero; writes to it are discarded.
const R0 Reg = 0

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The set is deliberately small: enough to express the
// paper's graph, database and HPC kernels, yet regular enough that the
// timing models can classify every instruction by a handful of kinds.
const (
	OpNop Op = iota

	// Integer ALU, register-register.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Integer ALU, register-immediate.
	OpAddI
	OpMulI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI

	// Load upper/immediate material. Rd = Imm.
	OpLoadImm

	// Min/max (used by CC and SSSP kernels).
	OpMin
	OpMax

	// Floating point (operands are float64 bit patterns in registers).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Conversions.
	OpIToF // Rd = float64(Ra) bits
	OpFToI // Rd = int64(float64 bits in Ra)

	// Memory. addr = R[Ra] + Imm. Size gives the access width in bytes
	// (1, 2, 4 or 8); loads zero-extend except OpLoad with Size 8.
	OpLoad
	OpStore

	// Compare: sets the flags register from signed comparison of
	// R[Ra] and R[Rb]. The only writer of flags, which is what the
	// paper's Last Compare (LC) register tracks.
	OpCmp
	// CmpI compares R[Ra] against the immediate.
	OpCmpI

	// Conditional branches on flags. Imm is the target instruction index.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLE
	OpBGT

	// Unconditional jump to Imm.
	OpJmp

	// Halt stops the program.
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpOrI: "ori",
	OpXorI: "xori", OpShlI: "shli", OpShrI: "shri",
	OpLoadImm: "li",
	OpMin:     "min", OpMax: "max",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpIToF: "itof", OpFToI: "ftoi",
	OpLoad: "ld", OpStore: "st",
	OpCmp: "cmp", OpCmpI: "cmpi",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLE: "ble", OpBGT: "bgt",
	OpJmp:  "jmp",
	OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one static instruction.
type Instr struct {
	Op   Op
	Rd   Reg   // destination register (loads, ALU)
	Ra   Reg   // first source (also load/store base)
	Rb   Reg   // second source (also store data register)
	Imm  int64 // immediate / displacement / branch target
	Size uint8 // access width in bytes for loads and stores
}

// Kind groups opcodes by how the timing models treat them.
type Kind uint8

// Instruction kinds.
const (
	KindNop Kind = iota
	KindALU
	KindMul
	KindDiv
	KindFPU
	KindLoad
	KindStore
	KindCmp
	KindBranch
	KindJump
	KindHalt
)

// Kind reports the timing class of the instruction.
func (in Instr) Kind() Kind {
	switch in.Op {
	case OpNop:
		return KindNop
	case OpMul, OpMulI:
		return KindMul
	case OpDiv, OpFDiv:
		return KindDiv
	case OpFAdd, OpFSub, OpFMul, OpIToF, OpFToI:
		return KindFPU
	case OpLoad:
		return KindLoad
	case OpStore:
		return KindStore
	case OpCmp, OpCmpI:
		return KindCmp
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLE, OpBGT:
		return KindBranch
	case OpJmp:
		return KindJump
	case OpHalt:
		return KindHalt
	default:
		return KindALU
	}
}

// IsBranch reports whether the instruction is a conditional branch.
func (in Instr) IsBranch() bool { return in.Kind() == KindBranch }

// IsMem reports whether the instruction accesses memory.
func (in Instr) IsMem() bool { k := in.Kind(); return k == KindLoad || k == KindStore }

// WritesReg reports whether the instruction writes a destination register,
// and which one. Writes to R0 are architectural no-ops but still reported
// so taint tracking can clear mappings.
func (in Instr) WritesReg() (Reg, bool) {
	switch in.Kind() {
	case KindALU, KindMul, KindDiv, KindFPU, KindLoad:
		return in.Rd, true
	}
	return 0, false
}

// SrcRegs appends the source registers of the instruction to dst and
// returns it. R0 reads are included (they read constant zero).
func (in Instr) SrcRegs(dst []Reg) []Reg {
	switch in.Op {
	case OpNop, OpLoadImm, OpJmp, OpHalt,
		OpBEQ, OpBNE, OpBLT, OpBGE, OpBLE, OpBGT:
		return dst
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
		OpIToF, OpFToI, OpCmpI:
		return append(dst, in.Ra)
	case OpLoad:
		return append(dst, in.Ra)
	case OpStore:
		return append(dst, in.Ra, in.Rb)
	default:
		return append(dst, in.Ra, in.Rb)
	}
}

// String renders the instruction in an assembly-like syntax.
func (in Instr) String() string {
	switch in.Kind() {
	case KindNop, KindHalt:
		return in.Op.String()
	case KindLoad:
		return fmt.Sprintf("%s%d r%d, [r%d%+d]", in.Op, in.Size*8, in.Rd, in.Ra, in.Imm)
	case KindStore:
		return fmt.Sprintf("%s%d r%d, [r%d%+d]", in.Op, in.Size*8, in.Rb, in.Ra, in.Imm)
	case KindCmp:
		if in.Op == OpCmpI {
			return fmt.Sprintf("cmpi r%d, %d", in.Ra, in.Imm)
		}
		return fmt.Sprintf("cmp r%d, r%d", in.Ra, in.Rb)
	case KindBranch, KindJump:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	default:
		switch in.Op {
		case OpLoadImm:
			return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
		case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
		case OpIToF, OpFToI:
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Ra)
		default:
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
		}
	}
}

// Program is an immutable sequence of instructions plus its entry point.
type Program struct {
	Name   string
	Code   []Instr
	labels map[string]int
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// LabelPC returns the instruction index bound to a label.
func (p *Program) LabelPC(name string) (int, bool) {
	pc, ok := p.labels[name]
	return pc, ok
}

// Disasm renders the whole program, one instruction per line, with
// label annotations.
func (p *Program) Disasm() string {
	byPC := make(map[int][]string)
	for name, pc := range p.labels {
		byPC[pc] = append(byPC[pc], name)
	}
	out := ""
	for pc, in := range p.Code {
		for _, l := range byPC[pc] {
			out += l + ":\n"
		}
		out += fmt.Sprintf("  %4d: %s\n", pc, in)
	}
	return out
}

package workloads

import (
	"fmt"
	"math"

	"repro/internal/graphs"
	"repro/internal/isa"
	"repro/internal/mem"
)

func init() {
	register(Spec{Name: "Camel", Group: "hpcdb",
		Desc:  "two interleaved stride-indirect streams with FP work",
		Build: buildCamel})
	register(Spec{Name: "G500", Group: "hpcdb",
		Desc:  "Graph500 seq-CSR reference BFS on a Kronecker graph",
		Build: buildG500})
	register(Spec{Name: "HJ2", Group: "hpcdb",
		Desc:  "hash-join probe, 2-slot buckets (branchless scan)",
		Build: func(sc Scale) *Instance { return buildHashJoin(sc, 2) }})
	register(Spec{Name: "HJ8", Group: "hpcdb",
		Desc:  "hash-join probe, 8-slot buckets (early-exit scan)",
		Build: func(sc Scale) *Instance { return buildHashJoin(sc, 8) }})
	register(Spec{Name: "Kangr", Group: "hpcdb",
		Desc:  "NAS-IS derivative with two levels of indirection",
		Build: buildKangaroo})
	register(Spec{Name: "NAS-CG", Group: "hpcdb",
		Desc:  "conjugate-gradient sparse mat-vec gather",
		Build: buildNASCG})
	register(Spec{Name: "NAS-IS", Group: "hpcdb",
		Desc:  "integer-sort histogram (stride-indirect RMW)",
		Build: buildNASIS})
	register(Spec{Name: "Randacc", Group: "hpcdb",
		Desc:  "HPCC GUPS: masked random table updates",
		Build: buildRandacc})
}

// lcg is the deterministic generator used to fill kernel inputs.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 16
}

// ---- Camel ------------------------------------------------------------
//
// Camel (Ainsworth & Jones, TOCS'19) interleaves two stride-indirect
// "humps" with floating-point work on the fetched values, stressing
// prefetchers that track only one concurrent indirect stream.
func buildCamel(sc Scale) *Instance {
	m := mem.New()
	n := uint64(sc.Elems)
	idxA := m.NewArray(n, 4)
	idxB := m.NewArray(n, 4)
	data := m.NewArray(n*2, 8)
	rng := lcg(sc.Seed)
	for i := uint64(0); i < n; i++ {
		idxA.Set(i, rng.next()%(n*2))
		idxB.Set(i, rng.next()%(n*2))
	}
	for i := uint64(0); i < n*2; i++ {
		data.SetF(i, float64(i%1000)*0.5)
	}
	out := m.NewArray(1, 8)

	b := isa.NewBuilder("Camel")
	rA := b.AllocReg()
	rB := b.AllocReg()
	rD := b.AllocReg()
	rI := b.AllocReg()
	rN := b.AllocReg()
	rT := b.AllocReg()
	rV := b.AllocReg()
	rSum := b.AllocReg()
	rHalf := b.AllocReg()
	b.LoadImm(rA, int64(idxA.Base))
	b.LoadImm(rB, int64(idxB.Base))
	b.LoadImm(rD, int64(data.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n))
	b.LoadImm(rSum, isa.F2B(0))
	b.LoadImmF(rHalf, 0.5)
	b.Label("loop")
	// Hump 1.
	b.ShlI(rT, rI, 2)
	b.Add(rT, rT, rA)
	b.Load(rV, rT, 0, 4) // striding idxA[i]
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rD)
	b.Load(rV, rV, 0, 8) // indirect data[idxA[i]]
	b.FMul(rV, rV, rHalf)
	b.FAdd(rSum, rSum, rV)
	// Hump 2.
	b.ShlI(rT, rI, 2)
	b.Add(rT, rT, rB)
	b.Load(rV, rT, 0, 4) // striding idxB[i]
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rD)
	b.Load(rV, rV, 0, 8) // indirect data[idxB[i]]
	b.FAdd(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.LoadImm(rT, int64(out.Base))
	b.Store(rSum, rT, 0, 8)
	b.Halt()

	check := func(img *mem.Memory) error {
		want := 0.0
		for i := uint64(0); i < n; i++ {
			want += data.GetF(idxA.Get(i)) * 0.5
			want += data.GetF(idxB.Get(i))
		}
		if got := out.GetF(0); math.Abs(got-want) > 1e-6 {
			return fmt.Errorf("Camel: sum = %v, want %v", got, want)
		}
		return nil
	}
	return &Instance{Name: "Camel", Prog: b.Build(), Mem: m, Check: check}
}

// ---- Graph500 seq-CSR --------------------------------------------------
//
// The Graph500 sequential reference: BFS over a Kronecker graph in CSR.
func buildG500(sc Scale) *Instance {
	scale := 0
	for 1<<scale < sc.GraphNodes {
		scale++
	}
	g := graphs.Kronecker("g500", scale, 16, sc.Seed+1)
	inst := buildBFSNamed(g, "G500")
	return inst
}

// ---- Hash join (Blanas et al.) ------------------------------------------
//
// No-partitioning hash join probe phase: hash each probe key, scan the
// bucket's slot array. Bucket size 2 (HJ2) keeps the scan short and
// branch-uniform; bucket size 8 (HJ8) early-exits at data-dependent slots,
// which defeats SVR's masking-only control flow (§VI-D).
func buildHashJoin(sc Scale, bucketSize int) *Instance {
	m := mem.New()
	numBuckets := uint64(sc.Elems) / 8 // power of two
	if numBuckets == 0 || numBuckets&(numBuckets-1) != 0 {
		panic("hashjoin: Elems must be a power of two >= 8")
	}
	slots := numBuckets * uint64(bucketSize)
	keys := m.NewArray(slots, 8) // 0 = empty slot
	payload := m.NewArray(slots, 8)
	probes := m.NewArray(uint64(sc.Elems), 8)
	out := m.NewArray(1, 8)

	var hashMul = uint64(0x9E3779B97F4A7C15)
	rng := lcg(sc.Seed + 7)
	// Fill ~50% of slots with build-side tuples (packed from slot 0).
	for i := uint64(0); i < slots/2; i++ {
		k := rng.next()*2 + 2 // nonzero even keys
		h := (k * hashMul) >> 40 % numBuckets
		for s := uint64(0); s < uint64(bucketSize); s++ {
			idx := h*uint64(bucketSize) + s
			if keys.Get(idx) == 0 {
				keys.Set(idx, k)
				payload.Set(idx, k/2)
				break
			}
		}
	}
	// Probe keys: half hits, half misses (odd keys never built).
	for i := uint64(0); i < probes.N; i++ {
		if rng.next()&1 == 0 {
			probes.Set(i, rng.next()*2+2)
		} else {
			probes.Set(i, rng.next()*2+1)
		}
	}

	name := fmt.Sprintf("HJ%d", bucketSize)
	b := isa.NewBuilder(name)
	rProbes := b.AllocReg()
	rKeys := b.AllocReg()
	rPay := b.AllocReg()
	rI := b.AllocReg()
	rN := b.AllocReg()
	rKey := b.AllocReg()
	rH := b.AllocReg()
	rS := b.AllocReg()
	rSEnd := b.AllocReg()
	rSlotK := b.AllocReg()
	rT := b.AllocReg()
	rSum := b.AllocReg()
	rMul := b.AllocReg()
	b.LoadImm(rProbes, int64(probes.Base))
	b.LoadImm(rKeys, int64(keys.Base))
	b.LoadImm(rPay, int64(payload.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(probes.N))
	b.LoadImm(rMul, int64(hashMul))
	b.LoadImm(rSum, 0)
	b.Label("loop")
	b.ShlI(rT, rI, 3)
	b.Add(rT, rT, rProbes)
	b.Load(rKey, rT, 0, 8) // striding probe key
	b.Mul(rH, rKey, rMul)  // hash
	b.ShrI(rH, rH, 40)
	b.AndI(rH, rH, int64(numBuckets-1))
	b.MulI(rS, rH, int64(bucketSize))
	if bucketSize == 2 {
		// Fixed-size bucket: the compiler if-converts the probe into
		// branchless code — both slots checked, match selected
		// arithmetically. SVR vectorizes it without divergence.
		rEq := b.AllocReg()
		rNeg := b.AllocReg()
		for s := int64(0); s < 2; s++ {
			b.ShlI(rT, rS, 3)
			b.Add(rT, rT, rKeys)
			b.Load(rSlotK, rT, s*8, 8) // indirect: slot key
			b.Xor(rEq, rSlotK, rKey)
			b.Sub(rNeg, isa.R0, rEq)
			b.Or(rEq, rEq, rNeg)
			b.ShrI(rEq, rEq, 63)
			b.XorI(rEq, rEq, 1) // 1 iff slot key == probe key
			b.ShlI(rT, rS, 3)
			b.Add(rT, rT, rPay)
			b.Load(rT, rT, s*8, 8) // indirect: payload
			b.Mul(rT, rT, rEq)
			b.Add(rSum, rSum, rT)
		}
	} else {
		b.AddI(rSEnd, rS, int64(bucketSize))
		b.Label("scan")
		b.ShlI(rT, rS, 3)
		b.Add(rT, rT, rKeys)
		b.Load(rSlotK, rT, 0, 8) // indirect: bucket slot key
		b.Cmp(rSlotK, rKey)
		b.BNE("noMatch")
		b.ShlI(rT, rS, 3)
		b.Add(rT, rT, rPay)
		b.Load(rT, rT, 0, 8) // payload on match
		b.Add(rSum, rSum, rT)
		b.Jmp("next") // early exit on match
		b.Label("noMatch")
		b.CmpI(rSlotK, 0)
		b.BEQ("next") // early exit on empty slot
		b.AddI(rS, rS, 1)
		b.Cmp(rS, rSEnd)
		b.BLT("scan")
		b.Label("next")
	}
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.LoadImm(rT, int64(out.Base))
	b.Store(rSum, rT, 0, 8)
	b.Halt()

	check := func(img *mem.Memory) error {
		want := uint64(0)
		for i := uint64(0); i < probes.N; i++ {
			k := probes.Get(i)
			h := (k * hashMul) >> 40 % numBuckets
			for s := uint64(0); s < uint64(bucketSize); s++ {
				idx := h*uint64(bucketSize) + s
				sk := keys.Get(idx)
				if sk == k {
					want += payload.Get(idx)
					break
				}
				if sk == 0 {
					break
				}
			}
		}
		if got := out.Get(0); got != want {
			return fmt.Errorf("%s: sum = %d, want %d", name, got, want)
		}
		return nil
	}
	return &Instance{Name: name, Prog: b.Build(), Mem: m, Check: check}
}

// ---- Kangaroo -----------------------------------------------------------
//
// A NAS-IS derivative with an extra level of indirection:
// hist[k2[k1[i]]]++ — beyond IMP's single-level pattern but within SVR's
// transitive taint chain.
func buildKangaroo(sc Scale) *Instance {
	m := mem.New()
	n := uint64(sc.Elems)
	k1 := m.NewArray(n, 4)
	k2 := m.NewArray(n, 4)
	hist := m.NewArray(n, 8)
	rng := lcg(sc.Seed + 13)
	for i := uint64(0); i < n; i++ {
		k1.Set(i, rng.next()%n)
		k2.Set(i, rng.next()%n)
	}

	b := isa.NewBuilder("Kangr")
	rK1 := b.AllocReg()
	rK2 := b.AllocReg()
	rH := b.AllocReg()
	rI := b.AllocReg()
	rN := b.AllocReg()
	rT := b.AllocReg()
	rV := b.AllocReg()
	rC := b.AllocReg()
	b.LoadImm(rK1, int64(k1.Base))
	b.LoadImm(rK2, int64(k2.Base))
	b.LoadImm(rH, int64(hist.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n))
	b.Label("loop")
	b.ShlI(rT, rI, 2)
	b.Add(rT, rT, rK1)
	b.Load(rV, rT, 0, 4) // striding k1[i]
	b.ShlI(rV, rV, 2)
	b.Add(rV, rV, rK2)
	b.Load(rV, rV, 0, 4) // indirect level 1: k2[k1[i]]
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rH)
	b.Load(rC, rV, 0, 8) // indirect level 2: hist[...]
	b.AddI(rC, rC, 1)
	b.Store(rC, rV, 0, 8)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()

	check := func(img *mem.Memory) error {
		want := make(map[uint64]int64)
		for i := uint64(0); i < n; i++ {
			want[uint64(k2.Get(uint64(k1.Get(i))))]++
		}
		for idx, w := range want {
			if got := hist.GetI(idx); got != w {
				return fmt.Errorf("Kangr: hist[%d] = %d, want %d", idx, got, w)
			}
		}
		return nil
	}
	return &Instance{Name: "Kangr", Prog: b.Build(), Mem: m, Check: check}
}

// ---- NAS CG --------------------------------------------------------------
//
// The conjugate-gradient kernel's sparse mat-vec: per row, stream the
// values/column indices and gather x[col[k]].
func buildNASCG(sc Scale) *Instance {
	m := mem.New()
	rows := uint64(sc.Elems) / 4
	nnzPerRow := uint64(4)
	nnz := rows * nnzPerRow
	rowPtr := m.NewArray(rows+1, 4)
	colIdx := m.NewArray(nnz, 4)
	vals := m.NewArray(nnz, 8)
	x := m.NewArray(rows, 8)
	y := m.NewArray(rows, 8)
	rng := lcg(sc.Seed + 21)
	for r := uint64(0); r <= rows; r++ {
		rowPtr.Set(r, r*nnzPerRow)
	}
	for k := uint64(0); k < nnz; k++ {
		colIdx.Set(k, rng.next()%rows)
		vals.SetF(k, float64(k%97)*0.25)
	}
	for r := uint64(0); r < rows; r++ {
		x.SetF(r, float64(r%31)*1.5)
	}

	b := isa.NewBuilder("NAS-CG")
	rRP := b.AllocReg()
	rCI := b.AllocReg()
	rVal := b.AllocReg()
	rX := b.AllocReg()
	rY := b.AllocReg()
	rR := b.AllocReg()
	rN := b.AllocReg()
	rK := b.AllocReg()
	rEnd := b.AllocReg()
	rT := b.AllocReg()
	rC := b.AllocReg()
	rV := b.AllocReg()
	rXv := b.AllocReg()
	rSum := b.AllocReg()
	b.LoadImm(rRP, int64(rowPtr.Base))
	b.LoadImm(rCI, int64(colIdx.Base))
	b.LoadImm(rVal, int64(vals.Base))
	b.LoadImm(rX, int64(x.Base))
	b.LoadImm(rY, int64(y.Base))
	b.LoadImm(rR, 0)
	b.LoadImm(rN, int64(rows))
	b.Label("rows")
	b.LoadImm(rSum, isa.F2B(0))
	b.ShlI(rT, rR, 2)
	b.Add(rT, rT, rRP)
	b.Load(rK, rT, 0, 4)
	b.Load(rEnd, rT, 4, 4)
	b.Cmp(rK, rEnd)
	b.BGE("rdone")
	b.Label("inner")
	b.ShlI(rT, rK, 2)
	b.Add(rT, rT, rCI)
	b.Load(rC, rT, 0, 4) // striding col index
	b.ShlI(rT, rK, 3)
	b.Add(rT, rT, rVal)
	b.Load(rV, rT, 0, 8) // striding value
	b.ShlI(rC, rC, 3)
	b.Add(rC, rC, rX)
	b.Load(rXv, rC, 0, 8) // indirect gather x[col]
	b.FMul(rV, rV, rXv)
	b.FAdd(rSum, rSum, rV)
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("inner")
	b.Label("rdone")
	b.ShlI(rT, rR, 3)
	b.Add(rT, rT, rY)
	b.Store(rSum, rT, 0, 8)
	b.AddI(rR, rR, 1)
	b.Cmp(rR, rN)
	b.BLT("rows")
	b.Halt()

	check := func(img *mem.Memory) error {
		for r := uint64(0); r < rows; r++ {
			want := 0.0
			for k := r * nnzPerRow; k < (r+1)*nnzPerRow; k++ {
				want += vals.GetF(k) * x.GetF(uint64(colIdx.Get(k)))
			}
			if got := y.GetF(r); math.Abs(got-want) > 1e-9 {
				return fmt.Errorf("NAS-CG: y[%d] = %v, want %v", r, got, want)
			}
		}
		return nil
	}
	return &Instance{Name: "NAS-CG", Prog: b.Build(), Mem: m, Check: check}
}

// ---- NAS IS ---------------------------------------------------------------
//
// Integer-sort bucket counting: hist[key[i]]++ — the single-level
// stride-indirect pattern IMP handles perfectly.
func buildNASIS(sc Scale) *Instance {
	m := mem.New()
	n := uint64(sc.Elems)
	keys := m.NewArray(n, 4)
	hist := m.NewArray(n, 8)
	rng := lcg(sc.Seed + 31)
	for i := uint64(0); i < n; i++ {
		keys.Set(i, rng.next()%n)
	}

	b := isa.NewBuilder("NAS-IS")
	rKeys := b.AllocReg()
	rHist := b.AllocReg()
	rI := b.AllocReg()
	rN := b.AllocReg()
	rT := b.AllocReg()
	rV := b.AllocReg()
	rC := b.AllocReg()
	b.LoadImm(rKeys, int64(keys.Base))
	b.LoadImm(rHist, int64(hist.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n))
	b.Label("loop")
	b.ShlI(rT, rI, 2)
	b.Add(rT, rT, rKeys)
	b.Load(rV, rT, 0, 4) // striding key load
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rHist)
	b.Load(rC, rV, 0, 8) // indirect histogram read
	b.AddI(rC, rC, 1)
	b.Store(rC, rV, 0, 8) // indirect histogram write
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()

	check := func(img *mem.Memory) error {
		want := make(map[uint64]int64)
		for i := uint64(0); i < n; i++ {
			want[keys.Get(i)]++
		}
		for idx, w := range want {
			if got := hist.GetI(idx); got != w {
				return fmt.Errorf("NAS-IS: hist[%d] = %d, want %d", idx, got, w)
			}
		}
		return nil
	}
	return &Instance{Name: "NAS-IS", Prog: b.Build(), Mem: m, Check: check}
}

// ---- HPCC randacc (GUPS) ----------------------------------------------------
//
// Random-access updates T[r & mask] ^= r over a precomputed random-number
// stream (striding load). The masked, scaled address breaks IMP's linear
// base+coeff model, while SVR's transitive chain handles it.
func buildRandacc(sc Scale) *Instance {
	m := mem.New()
	n := uint64(sc.Elems)
	table := m.NewArray(n, 8)
	rans := m.NewArray(n, 8)
	rng := lcg(sc.Seed + 43)
	for i := uint64(0); i < n; i++ {
		rans.Set(i, rng.next()<<13|rng.next())
		table.Set(i, i)
	}

	b := isa.NewBuilder("Randacc")
	rTab := b.AllocReg()
	rRans := b.AllocReg()
	rI := b.AllocReg()
	rN := b.AllocReg()
	rT := b.AllocReg()
	rR := b.AllocReg()
	rAddr := b.AllocReg()
	rV := b.AllocReg()
	b.LoadImm(rTab, int64(table.Base))
	b.LoadImm(rRans, int64(rans.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n))
	b.Label("loop")
	b.ShlI(rT, rI, 3)
	b.Add(rT, rT, rRans)
	b.Load(rR, rT, 0, 8) // striding random value
	b.AndI(rAddr, rR, int64(n-1))
	b.ShlI(rAddr, rAddr, 3)
	b.Add(rAddr, rAddr, rTab)
	b.Load(rV, rAddr, 0, 8) // indirect table read
	b.Xor(rV, rV, rR)
	b.Store(rV, rAddr, 0, 8) // indirect table write
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()

	check := func(img *mem.Memory) error {
		want := make([]uint64, n)
		for i := uint64(0); i < n; i++ {
			want[i] = i
		}
		for i := uint64(0); i < n; i++ {
			r := rans.Get(i)
			want[r&(n-1)] ^= r
		}
		for i := uint64(0); i < n; i++ {
			if got := table.Get(i); got != want[i] {
				return fmt.Errorf("Randacc: T[%d] = %#x, want %#x", i, got, want[i])
			}
		}
		return nil
	}
	return &Instance{Name: "Randacc", Prog: b.Build(), Mem: m, Check: check}
}

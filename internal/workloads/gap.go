package workloads

import (
	"fmt"
	"math"

	"repro/internal/graphs"
	"repro/internal/isa"
	"repro/internal/mem"
)

// gapKernels are the five GAP benchmark kernels of §V.
var gapKernels = []string{"BC", "BFS", "CC", "PR", "SSSP"}

var gapDescs = map[string]string{
	"BC":   "betweenness centrality (Brandes forward/backward passes)",
	"BFS":  "top-down breadth-first search",
	"CC":   "connected components (min-label propagation)",
	"PR":   "PageRank pull iteration (Listing 1)",
	"SSSP": "worklist shortest paths (SPFA)",
}

func init() {
	for _, k := range gapKernels {
		for _, in := range graphs.Inputs {
			k, in := k, in
			register(Spec{
				Name:  fmt.Sprintf("%s_%s", k, in),
				Group: "gap",
				Desc:  gapDescs[k] + " on the " + string(in) + " input",
				Build: func(sc Scale) *Instance { return buildGAP(k, in, sc) },
			})
		}
	}
}

func buildGAP(kernel string, in graphs.Input, sc Scale) *Instance {
	g := graphs.Build(in, sc.GraphNodes, sc.Seed)
	switch kernel {
	case "PR":
		return buildPR(g, fmt.Sprintf("PR_%s", in))
	case "BFS":
		return buildBFS(g, fmt.Sprintf("BFS_%s", in))
	case "CC":
		return buildCC(g, fmt.Sprintf("CC_%s", in))
	case "SSSP":
		return buildSSSP(g, fmt.Sprintf("SSSP_%s", in), sc.Seed)
	case "BC":
		return buildBC(g, fmt.Sprintf("BC_%s", in))
	}
	panic("unknown GAP kernel " + kernel)
}

// graphImage is a CSR graph laid out in simulator memory.
type graphImage struct {
	m          *mem.Memory
	off, neigh mem.Array // uint32
}

func loadGraph(g *graphs.CSR) graphImage {
	m := mem.New()
	off := m.NewArray(uint64(g.NumNodes+1), 4)
	neigh := m.NewArray(uint64(len(g.Neighbors)), 4)
	for i, o := range g.Offsets {
		off.Set(uint64(i), uint64(o))
	}
	for i, v := range g.Neighbors {
		neigh.Set(uint64(i), uint64(v))
	}
	return graphImage{m: m, off: off, neigh: neigh}
}

// emitEdgeLoop generates the canonical CSR traversal skeleton:
//
//	for u in 0..n { k = off[u]; end = off[u+1]; for ; k < end; k++ {
//	    v = neigh[k]; body(v) } ; perVertex(u) }
//
// body receives registers (rU, rV, rK); the offsets walk is sequential
// (covered by the stride prefetcher), neigh[k] is the striding load SVR
// piggybacks on, and loads indexed by rV inside body are the indirect
// chain.
func emitEdgeLoop(b *isa.Builder, gi graphImage, n int,
	setup func(rU isa.Reg),
	body func(rU, rV, rK isa.Reg),
	perVertex func(rU isa.Reg)) {

	rOff := b.AllocReg()
	rNeigh := b.AllocReg()
	rU := b.AllocReg()
	rN := b.AllocReg()
	rK := b.AllocReg()
	rEnd := b.AllocReg()
	rV := b.AllocReg()
	rT := b.AllocReg()

	b.LoadImm(rOff, int64(gi.off.Base))
	b.LoadImm(rNeigh, int64(gi.neigh.Base))
	b.LoadImm(rU, 0)
	b.LoadImm(rN, int64(n))
	b.Label("vloop")
	if setup != nil {
		setup(rU)
	}
	b.ShlI(rT, rU, 2)
	b.Add(rT, rT, rOff)
	b.Load(rK, rT, 0, 4)   // off[u]
	b.Load(rEnd, rT, 4, 4) // off[u+1]
	// Rotated (do-while) loop, as compilers emit at -O2: the back edge
	// is a conditional taken branch fed by the bound compare, which is
	// what trains SVR's loop-bound detector.
	b.Cmp(rK, rEnd)
	b.BGE("edone")
	b.Label("eloop")
	b.ShlI(rT, rK, 2)
	b.Add(rT, rT, rNeigh)
	b.Load(rV, rT, 0, 4) // striding neighbor load
	body(rU, rV, rK)
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("eloop")
	b.Label("edone")
	if perVertex != nil {
		perVertex(rU)
	}
	b.AddI(rU, rU, 1)
	b.Cmp(rU, rN)
	b.BLT("vloop")
}

// ---- PageRank (pull; Listing 1) -------------------------------------

func buildPR(g *graphs.CSR, name string) *Instance {
	gi := loadGraph(g)
	n := g.NumNodes
	contrib := gi.m.NewArray(uint64(n), 8)
	out := gi.m.NewArray(uint64(n), 8)
	for u := 0; u < n; u++ {
		contrib.SetF(uint64(u), 1.0/float64(g.Degree(u)+1))
	}

	b := isa.NewBuilder(name)
	rContrib := b.AllocReg()
	rOut := b.AllocReg()
	rSum := b.AllocReg()
	rC := b.AllocReg()
	rA := b.AllocReg()
	b.LoadImm(rContrib, int64(contrib.Base))
	b.LoadImm(rOut, int64(out.Base))
	emitEdgeLoop(b, gi, n,
		func(rU isa.Reg) { b.LoadImm(rSum, isa.F2B(0)) },
		func(rU, rV, rK isa.Reg) {
			b.ShlI(rA, rV, 3)
			b.Add(rA, rA, rContrib)
			b.Load(rC, rA, 0, 8) // indirect: contrib[v]
			b.FAdd(rSum, rSum, rC)
		},
		func(rU isa.Reg) {
			b.ShlI(rA, rU, 3)
			b.Add(rA, rA, rOut)
			b.Store(rSum, rA, 0, 8)
		})
	b.Halt()

	check := func(m *mem.Memory) error {
		for u := 0; u < n; u++ {
			want := 0.0
			for _, v := range g.Neigh(u) {
				want += contrib.GetF(uint64(v))
			}
			if got := out.GetF(uint64(u)); got != want && math.Abs(got-want) > 1e-9 {
				return fmt.Errorf("PR: out[%d] = %v, want %v", u, got, want)
			}
		}
		return nil
	}
	return &Instance{Name: name, Prog: b.Build(), Mem: gi.m, Check: check}
}

// ---- BFS (top-down, queue-based) ------------------------------------

func buildBFS(g *graphs.CSR, name string) *Instance {
	return buildBFSNamed(g, name)
}

func buildBFSNamed(g *graphs.CSR, name string) *Instance {
	gi := loadGraph(g)
	n := g.NumNodes
	parent := gi.m.NewArray(uint64(n), 8) // int64 parents, -1 = unvisited
	qa := gi.m.NewArray(uint64(n), 4)
	qb := gi.m.NewArray(uint64(n), 4)
	for u := 0; u < n; u++ {
		parent.SetI(uint64(u), -1)
	}
	src := pickSource(g)
	parent.SetI(uint64(src), int64(src))
	qa.Set(0, uint64(src))

	b := isa.NewBuilder(name)
	rOff := b.AllocReg()
	rNeigh := b.AllocReg()
	rParent := b.AllocReg()
	rCur := b.AllocReg()
	rNext := b.AllocReg()
	rCurCnt := b.AllocReg()
	rNextCnt := b.AllocReg()
	rIdx := b.AllocReg()
	rU := b.AllocReg()
	rK := b.AllocReg()
	rEnd := b.AllocReg()
	rV := b.AllocReg()
	rP := b.AllocReg()
	rA := b.AllocReg()
	rTmp := b.AllocReg()

	b.LoadImm(rOff, int64(gi.off.Base))
	b.LoadImm(rNeigh, int64(gi.neigh.Base))
	b.LoadImm(rParent, int64(parent.Base))
	b.LoadImm(rCur, int64(qa.Base))
	b.LoadImm(rNext, int64(qb.Base))
	b.LoadImm(rCurCnt, 1)

	b.Label("level")
	b.CmpI(rCurCnt, 0)
	b.BLE("done")
	b.LoadImm(rIdx, 0)
	b.LoadImm(rNextCnt, 0)
	b.Label("qloop")
	b.ShlI(rA, rIdx, 2)
	b.Add(rA, rA, rCur)
	b.Load(rU, rA, 0, 4) // striding: u = cur[idx]
	b.ShlI(rA, rU, 2)
	b.Add(rA, rA, rOff)
	b.Load(rK, rA, 0, 4)   // indirect: off[u]
	b.Load(rEnd, rA, 4, 4) // indirect: off[u+1]
	b.Cmp(rK, rEnd)
	b.BGE("qnext")
	b.Label("eloop")
	b.ShlI(rA, rK, 2)
	b.Add(rA, rA, rNeigh)
	b.Load(rV, rA, 0, 4) // striding: v = neigh[k]
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rParent)
	b.Load(rP, rA, 0, 8) // indirect: parent[v]
	b.CmpI(rP, 0)
	b.BGE("visited")
	b.Store(rU, rA, 0, 8) // parent[v] = u
	b.ShlI(rTmp, rNextCnt, 2)
	b.Add(rTmp, rTmp, rNext)
	b.Store(rV, rTmp, 0, 4) // next[nextCnt] = v
	b.AddI(rNextCnt, rNextCnt, 1)
	b.Label("visited")
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("eloop")
	b.Label("qnext")
	b.AddI(rIdx, rIdx, 1)
	b.Cmp(rIdx, rCurCnt)
	b.BLT("qloop")
	b.Mov(rTmp, rCur)
	b.Mov(rCur, rNext)
	b.Mov(rNext, rTmp)
	b.Mov(rCurCnt, rNextCnt)
	b.Jmp("level")
	b.Label("done")
	b.Halt()

	check := func(m *mem.Memory) error {
		want := refBFS(g, src)
		for u := 0; u < n; u++ {
			if got := parent.GetI(uint64(u)); got != want[u] {
				return fmt.Errorf("BFS: parent[%d] = %d, want %d", u, got, want[u])
			}
		}
		return nil
	}
	return &Instance{Name: name, Prog: b.Build(), Mem: gi.m, Check: check}
}

// refBFS mirrors the kernel's traversal order exactly.
func refBFS(g *graphs.CSR, src int) []int64 {
	parent := make([]int64, g.NumNodes)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int64(src)
	cur := []uint32{uint32(src)}
	for len(cur) > 0 {
		var next []uint32
		for _, u := range cur {
			for _, v := range g.Neigh(int(u)) {
				if parent[v] < 0 {
					parent[v] = int64(u)
					next = append(next, v)
				}
			}
		}
		cur = next
	}
	return parent
}

// pickSource returns the first vertex with nonzero degree.
func pickSource(g *graphs.CSR) int {
	for u := 0; u < g.NumNodes; u++ {
		if g.Degree(u) > 0 {
			return u
		}
	}
	return 0
}

// ---- Connected Components (label propagation) -----------------------

func buildCC(g *graphs.CSR, name string) *Instance {
	gi := loadGraph(g)
	n := g.NumNodes
	comp := gi.m.NewArray(uint64(n), 4)
	for u := 0; u < n; u++ {
		comp.Set(uint64(u), uint64(u))
	}

	b := isa.NewBuilder(name)
	rComp := b.AllocReg()
	rChanged := b.AllocReg()
	rC := b.AllocReg()
	rCV := b.AllocReg()
	rA := b.AllocReg()
	rOld := b.AllocReg()
	b.LoadImm(rComp, int64(comp.Base))
	b.Label("sweep")
	b.LoadImm(rChanged, 0)
	emitEdgeLoop(b, gi, n,
		func(rU isa.Reg) {
			b.ShlI(rA, rU, 2)
			b.Add(rA, rA, rComp)
			b.Load(rC, rA, 0, 4) // comp[u] (sequential)
			b.Mov(rOld, rC)
		},
		func(rU, rV, rK isa.Reg) {
			b.ShlI(rA, rV, 2)
			b.Add(rA, rA, rComp)
			b.Load(rCV, rA, 0, 4) // indirect: comp[v]
			b.Min(rC, rC, rCV)
		},
		func(rU isa.Reg) {
			b.Cmp(rC, rOld)
			b.BGE("nostore")
			b.ShlI(rA, rU, 2)
			b.Add(rA, rA, rComp)
			b.Store(rC, rA, 0, 4)
			b.LoadImm(rChanged, 1)
			b.Label("nostore")
		})
	b.CmpI(rChanged, 0)
	b.BNE("sweep")
	b.Halt()

	check := func(m *mem.Memory) error {
		want := refCC(g)
		for u := 0; u < n; u++ {
			if got := uint32(comp.Get(uint64(u))); got != want[u] {
				return fmt.Errorf("CC: comp[%d] = %d, want %d", u, got, want[u])
			}
		}
		return nil
	}
	return &Instance{Name: name, Prog: b.Build(), Mem: gi.m, Check: check}
}

// refCC runs the same min-label propagation to convergence.
func refCC(g *graphs.CSR) []uint32 {
	comp := make([]uint32, g.NumNodes)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < g.NumNodes; u++ {
			c := comp[u]
			for _, v := range g.Neigh(u) {
				if comp[v] < c {
					c = comp[v]
				}
			}
			if c < comp[u] {
				comp[u] = c
				changed = true
			}
		}
	}
	return comp
}

// ---- SSSP (Bellman-Ford sweeps) --------------------------------------

const infDist = int64(1) << 40

// buildSSSP builds a worklist-driven shortest-path kernel (SPFA — the
// scalar skeleton of GAP's delta-stepping): vertices pop off a ring
// buffer, their edges relax neighbor distances, and improved neighbors
// not already queued are pushed. The critical misses (dist[u], neigh[k],
// dist[v], inq[v]) sit two to three indirection levels deep, which is why
// IMP cannot capture SSSP (§VI-A) while SVR's transitive taint chain can.
func buildSSSP(g *graphs.CSR, name string, seed int64) *Instance {
	gi := loadGraph(g)
	n := g.NumNodes
	m := g.NumEdges()
	w := gi.m.NewArray(uint64(m), 4)
	dist := gi.m.NewArray(uint64(n), 8)
	inq := gi.m.NewArray(uint64(n), 4)
	ringCap := uint64(1)
	for ringCap < uint64(n)+1 {
		ringCap <<= 1
	}
	queue := gi.m.NewArray(ringCap, 4)

	x := uint64(seed)*2654435761 + 12345
	for k := 0; k < m; k++ {
		x = x*6364136223846793005 + 1442695040888963407
		w.Set(uint64(k), 1+(x>>33)%16)
	}
	for u := 0; u < n; u++ {
		dist.SetI(uint64(u), infDist)
	}
	src := pickSource(g)
	dist.SetI(uint64(src), 0)
	inq.Set(uint64(src), 1)
	queue.Set(0, uint64(src))

	b := isa.NewBuilder(name)
	rOff := b.AllocReg()
	rNeigh := b.AllocReg()
	rW := b.AllocReg()
	rDist := b.AllocReg()
	rInq := b.AllocReg()
	rQ := b.AllocReg()
	rHead := b.AllocReg()
	rTail := b.AllocReg()
	rMask := b.AllocReg()
	rU := b.AllocReg()
	rDU := b.AllocReg()
	rK := b.AllocReg()
	rEnd := b.AllocReg()
	rV := b.AllocReg()
	rWV := b.AllocReg()
	rND := b.AllocReg()
	rDV := b.AllocReg()
	rA := b.AllocReg()
	rF := b.AllocReg()

	b.LoadImm(rOff, int64(gi.off.Base))
	b.LoadImm(rNeigh, int64(gi.neigh.Base))
	b.LoadImm(rW, int64(w.Base))
	b.LoadImm(rDist, int64(dist.Base))
	b.LoadImm(rInq, int64(inq.Base))
	b.LoadImm(rQ, int64(queue.Base))
	b.LoadImm(rHead, 0)
	b.LoadImm(rTail, 1)
	b.LoadImm(rMask, int64(ringCap-1))

	b.Label("pop")
	b.Cmp(rHead, rTail)
	b.BGE("done")
	b.And(rA, rHead, rMask)
	b.ShlI(rA, rA, 2)
	b.Add(rA, rA, rQ)
	b.Load(rU, rA, 0, 4) // striding: u = queue[head & mask]
	b.AddI(rHead, rHead, 1)
	b.ShlI(rA, rU, 2)
	b.Add(rA, rA, rInq)
	b.Store(isa.R0, rA, 0, 4) // inq[u] = 0
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rDist)
	b.Load(rDU, rA, 0, 8) // indirect: dist[u]
	b.ShlI(rA, rU, 2)
	b.Add(rA, rA, rOff)
	b.Load(rK, rA, 0, 4)   // indirect: off[u]
	b.Load(rEnd, rA, 4, 4) // indirect: off[u+1]
	b.Cmp(rK, rEnd)
	b.BGE("pop")
	b.Label("edge")
	b.ShlI(rA, rK, 2)
	b.Add(rA, rA, rNeigh)
	b.Load(rV, rA, 0, 4) // striding: v = neigh[k]
	b.ShlI(rA, rK, 2)
	b.Add(rA, rA, rW)
	b.Load(rWV, rA, 0, 4) // striding: w[k]
	b.Add(rND, rDU, rWV)
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rDist)
	b.Load(rDV, rA, 0, 8) // indirect: dist[v]
	b.Cmp(rND, rDV)
	b.BGE("norelax")
	b.Store(rND, rA, 0, 8) // dist[v] = nd
	b.ShlI(rA, rV, 2)
	b.Add(rA, rA, rInq)
	b.Load(rF, rA, 0, 4) // indirect: inq[v]
	b.CmpI(rF, 0)
	b.BNE("norelax")
	b.LoadImm(rF, 1)
	b.Store(rF, rA, 0, 4) // inq[v] = 1
	b.And(rA, rTail, rMask)
	b.ShlI(rA, rA, 2)
	b.Add(rA, rA, rQ)
	b.Store(rV, rA, 0, 4) // queue[tail & mask] = v
	b.AddI(rTail, rTail, 1)
	b.Label("norelax")
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("edge")
	b.Jmp("pop")
	b.Label("done")
	b.Halt()

	check := func(memImg *mem.Memory) error {
		want := refSSSP(g, src, w)
		for u := 0; u < n; u++ {
			if got := dist.GetI(uint64(u)); got != want[u] {
				return fmt.Errorf("SSSP: dist[%d] = %d, want %d", u, got, want[u])
			}
		}
		return nil
	}
	return &Instance{Name: name, Prog: b.Build(), Mem: gi.m, Check: check}
}

// refSSSP runs Bellman-Ford to convergence; SPFA computes the same fixed
// point (exact shortest distances), so the final dist arrays agree.
func refSSSP(g *graphs.CSR, src int, w mem.Array) []int64 {
	dist := make([]int64, g.NumNodes)
	for i := range dist {
		dist[i] = infDist
	}
	dist[src] = 0
	for changed := true; changed; {
		changed = false
		for u := 0; u < g.NumNodes; u++ {
			du := dist[u]
			if du >= infDist {
				continue
			}
			off := g.Offsets[u]
			for i, v := range g.Neigh(u) {
				nd := du + int64(w.Get(uint64(off)+uint64(i)))
				if nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
	}
	return dist
}

// ---- Betweenness Centrality (Brandes, single source) -----------------

func buildBC(g *graphs.CSR, name string) *Instance {
	gi := loadGraph(g)
	n := g.NumNodes
	level := gi.m.NewArray(uint64(n), 8) // int64 level, -1
	sigma := gi.m.NewArray(uint64(n), 8) // float64 path counts
	delta := gi.m.NewArray(uint64(n), 8) // float64 dependencies
	visit := gi.m.NewArray(uint64(n), 4) // visit order
	for u := 0; u < n; u++ {
		level.SetI(uint64(u), -1)
	}
	src := pickSource(g)
	level.SetI(uint64(src), 0)
	sigma.SetF(uint64(src), 1)
	visit.Set(0, uint64(src))

	b := isa.NewBuilder(name)
	rOff := b.AllocReg()
	rNeigh := b.AllocReg()
	rLevel := b.AllocReg()
	rSigma := b.AllocReg()
	rDelta := b.AllocReg()
	rVisit := b.AllocReg()
	rHead := b.AllocReg() // next unprocessed index in visit order
	rTail := b.AllocReg() // number of discovered vertices
	rU := b.AllocReg()
	rK := b.AllocReg()
	rEnd := b.AllocReg()
	rV := b.AllocReg()
	rA := b.AllocReg()
	rT := b.AllocReg()
	rLU := b.AllocReg()
	rLV := b.AllocReg()
	rSU := b.AllocReg()
	rSV := b.AllocReg()
	rDU := b.AllocReg()
	rDV := b.AllocReg()
	rOne := b.AllocReg()

	b.LoadImm(rOff, int64(gi.off.Base))
	b.LoadImm(rNeigh, int64(gi.neigh.Base))
	b.LoadImm(rLevel, int64(level.Base))
	b.LoadImm(rSigma, int64(sigma.Base))
	b.LoadImm(rDelta, int64(delta.Base))
	b.LoadImm(rVisit, int64(visit.Base))
	b.LoadImm(rHead, 0)
	b.LoadImm(rTail, 1)
	b.LoadImmF(rOne, 1)

	// Forward phase: BFS in visit order, accumulating sigma.
	b.Label("fwd")
	b.Cmp(rHead, rTail)
	b.BGE("back_init")
	b.ShlI(rA, rHead, 2)
	b.Add(rA, rA, rVisit)
	b.Load(rU, rA, 0, 4) // striding: u = visit[head]
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rLevel)
	b.Load(rLU, rA, 0, 8) // level[u]
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rSigma)
	b.Load(rSU, rA, 0, 8) // sigma[u]
	b.ShlI(rA, rU, 2)
	b.Add(rA, rA, rOff)
	b.Load(rK, rA, 0, 4)
	b.Load(rEnd, rA, 4, 4)
	b.Cmp(rK, rEnd)
	b.BGE("fnext")
	b.Label("feloop")
	b.ShlI(rA, rK, 2)
	b.Add(rA, rA, rNeigh)
	b.Load(rV, rA, 0, 4) // striding: v
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rLevel)
	b.Load(rLV, rA, 0, 8) // indirect: level[v]
	b.CmpI(rLV, 0)
	b.BGE("notnew")
	// Newly discovered: level[v] = level[u]+1; append to visit order.
	b.AddI(rLV, rLU, 1)
	b.Store(rLV, rA, 0, 8)
	b.ShlI(rT, rTail, 2)
	b.Add(rT, rT, rVisit)
	b.Store(rV, rT, 0, 4)
	b.AddI(rTail, rTail, 1)
	b.Label("notnew")
	// On-tree edge: sigma[v] += sigma[u] when level[v] == level[u]+1.
	b.AddI(rT, rLU, 1)
	b.Cmp(rLV, rT)
	b.BNE("fskip")
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rSigma)
	b.Load(rSV, rA, 0, 8) // indirect: sigma[v]
	b.FAdd(rSV, rSV, rSU)
	b.Store(rSV, rA, 0, 8)
	b.Label("fskip")
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("feloop")
	b.Label("fnext")
	b.AddI(rHead, rHead, 1)
	b.Jmp("fwd")

	// Backward phase: reverse visit order, accumulate dependencies.
	b.Label("back_init")
	b.Mov(rHead, rTail)
	b.Label("back")
	b.AddI(rHead, rHead, -1)
	b.CmpI(rHead, 0)
	b.BLT("done")
	b.ShlI(rA, rHead, 2)
	b.Add(rA, rA, rVisit)
	b.Load(rU, rA, 0, 4) // striding (reverse): u
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rLevel)
	b.Load(rLU, rA, 0, 8)
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rSigma)
	b.Load(rSU, rA, 0, 8)
	b.LoadImm(rDU, isa.F2B(0))
	b.ShlI(rA, rU, 2)
	b.Add(rA, rA, rOff)
	b.Load(rK, rA, 0, 4)
	b.Load(rEnd, rA, 4, 4)
	b.Cmp(rK, rEnd)
	b.BGE("bnext")
	b.Label("beloop")
	b.ShlI(rA, rK, 2)
	b.Add(rA, rA, rNeigh)
	b.Load(rV, rA, 0, 4)
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rLevel)
	b.Load(rLV, rA, 0, 8) // indirect: level[v]
	b.AddI(rT, rLU, 1)
	b.Cmp(rLV, rT)
	b.BNE("bskip")
	// delta[u] += sigma[u]/sigma[v] * (1 + delta[v])
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rSigma)
	b.Load(rSV, rA, 0, 8)
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rDelta)
	b.Load(rDV, rA, 0, 8)
	b.FAdd(rDV, rDV, rOne)
	b.FDiv(rT, rSU, rSV)
	b.FMul(rT, rT, rDV)
	b.FAdd(rDU, rDU, rT)
	b.Label("bskip")
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("beloop")
	b.Label("bnext")
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rDelta)
	b.Store(rDU, rA, 0, 8)
	b.Jmp("back")
	b.Label("done")
	b.Halt()

	check := func(memImg *mem.Memory) error {
		wantLevel, wantSigma, wantDelta := refBC(g, src)
		for u := 0; u < n; u++ {
			if got := level.GetI(uint64(u)); got != wantLevel[u] {
				return fmt.Errorf("BC: level[%d] = %d, want %d", u, got, wantLevel[u])
			}
			if got := sigma.GetF(uint64(u)); got != wantSigma[u] {
				return fmt.Errorf("BC: sigma[%d] = %v, want %v", u, got, wantSigma[u])
			}
			if got := delta.GetF(uint64(u)); math.Abs(got-wantDelta[u]) > 1e-9 {
				return fmt.Errorf("BC: delta[%d] = %v, want %v", u, got, wantDelta[u])
			}
		}
		return nil
	}
	return &Instance{Name: name, Prog: b.Build(), Mem: gi.m, Check: check}
}

// refBC mirrors the kernel's exact forward/backward order.
func refBC(g *graphs.CSR, src int) ([]int64, []float64, []float64) {
	n := g.NumNodes
	level := make([]int64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	sigma[src] = 1
	visit := []uint32{uint32(src)}
	for head := 0; head < len(visit); head++ {
		u := int(visit[head])
		for _, v := range g.Neigh(u) {
			if level[v] < 0 {
				level[v] = level[u] + 1
				visit = append(visit, v)
			}
			if level[v] == level[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for head := len(visit) - 1; head >= 0; head-- {
		u := int(visit[head])
		du := 0.0
		for _, v := range g.Neigh(u) {
			if level[v] == level[u]+1 {
				du += sigma[u] / sigma[v] * (1 + delta[v])
			}
		}
		delta[u] = du
	}
	return level, sigma, delta
}

// Package workloads implements every benchmark of the paper's evaluation
// (§V) as a mini-ISA kernel over a constructed memory image:
//
//   - the five GAP kernels (BC, BFS, CC, PR, SSSP) on five graph inputs
//     (KR, LJN, ORK, TW, UR);
//   - the HPC/database set: Camel, Graph500 seq-CSR, HashJoin-2/8,
//     Kangaroo, NAS-CG, NAS-IS, and HPCC randacc;
//   - SPEC CPU2017 proxy kernels for the no-vectorization-opportunity
//     study of Fig 14.
//
// Each kernel reproduces the memory-access structure that drives the
// paper's results — sequential offset walks, striding index loads, and
// data-dependent indirect accesses — and carries a functional self-check
// used by the test suite.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Scale controls working-set sizes. Working sets must exceed the 512 KiB
// L2 for the memory-bound regime of the paper to hold.
type Scale struct {
	GraphNodes int   // vertices per graph input
	Elems      int   // element count for array-based kernels
	Seed       int64 // generator seed
}

// TinyScale is for functional tests: fast, fits in cache.
func TinyScale() Scale { return Scale{GraphNodes: 1 << 9, Elems: 1 << 10, Seed: 42} }

// BenchScale exceeds the L2 many times over (512 Ki-vertex graphs with
// ~8M edges, 4 Mi-element arrays); used by the full evaluation harness (a
// scaled-down stand-in for the paper's GB-size inputs, see DESIGN.md
// substitution 4). A full `svrsim all` at this scale needs ~2 GiB of RAM.
func BenchScale() Scale { return Scale{GraphNodes: 1 << 19, Elems: 1 << 22, Seed: 42} }

// Instance is a ready-to-run workload: program + initialized memory.
type Instance struct {
	Name string
	Prog *isa.Program
	Mem  *mem.Memory
	// Check validates the architectural result after the program ran to
	// completion (tests run it at TinyScale). Nil when not applicable.
	Check func(m *mem.Memory) error
}

// Spec describes one buildable workload.
type Spec struct {
	Name  string
	Group string // "gap", "hpcdb", "spec"
	Desc  string // one-line description for svrsim list
	Build func(sc Scale) *Instance
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns the named workload spec.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return s, nil
}

// Names returns all registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Group returns the specs of one group ("gap", "hpcdb", "spec") in a
// stable order.
func Group(group string) []Spec {
	var out []Spec
	for _, n := range Names() {
		if registry[n].Group == group {
			out = append(out, registry[n])
		}
	}
	return out
}

// Evaluation returns the paper's memory-latency-bound set (Fig 11/12):
// all GAP kernel x input pairs followed by the HPC-DB workloads.
func Evaluation() []Spec {
	return append(Group("gap"), Group("hpcdb")...)
}

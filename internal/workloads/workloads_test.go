package workloads

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// TestFunctionalCorrectness runs every evaluation workload to completion
// at tiny scale on the functional emulator and validates the
// architectural result against its Go reference.
func TestFunctionalCorrectness(t *testing.T) {
	for _, spec := range Evaluation() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst := spec.Build(TinyScale())
			cpu := emu.New(inst.Prog, inst.Mem)
			n := cpu.Run(200_000_000)
			if !cpu.Halted() {
				t.Fatalf("did not halt after %d instructions", n)
			}
			if inst.Check == nil {
				t.Fatal("evaluation workload without a Check")
			}
			if err := inst.Check(inst.Mem); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSPECProxiesRun(t *testing.T) {
	for _, spec := range Group("spec") {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst := spec.Build(TinyScale())
			cpu := emu.New(inst.Prog, inst.Mem)
			if cpu.Run(100_000_000); !cpu.Halted() {
				t.Fatal("SPEC proxy did not halt")
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	// 5 GAP kernels x 5 inputs.
	gap := Group("gap")
	if len(gap) != 25 {
		t.Errorf("gap workloads = %d, want 25", len(gap))
	}
	for _, k := range []string{"BC", "BFS", "CC", "PR", "SSSP"} {
		for _, in := range []string{"KR", "LJN", "ORK", "TW", "UR"} {
			if _, err := Get(k + "_" + in); err != nil {
				t.Errorf("missing %s_%s", k, in)
			}
		}
	}
	// The 8 HPC-DB workloads of §V.
	hpcdb := Group("hpcdb")
	if len(hpcdb) != 8 {
		t.Errorf("hpcdb workloads = %d, want 8", len(hpcdb))
	}
	for _, n := range []string{"Camel", "G500", "HJ2", "HJ8", "Kangr", "NAS-CG", "NAS-IS", "Randacc"} {
		if _, err := Get(n); err != nil {
			t.Errorf("missing %s", n)
		}
	}
	// The 23 SPECrate 2017 benchmarks of Fig 14.
	if got := len(SPECNames()); got != 23 {
		t.Errorf("SPEC proxies = %d, want 23", got)
	}
	if len(Evaluation()) != 33 {
		t.Errorf("evaluation set = %d, want 33", len(Evaluation()))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("Get(nope) error = %v", err)
	}
}

func TestNamesSortedAndUnique(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	prev := ""
	for _, n := range names {
		if n <= prev && prev != "" {
			t.Errorf("names not sorted: %q after %q", n, prev)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		prev = n
	}
}

func TestScalesAreMemoryBoundCapable(t *testing.T) {
	// BenchScale data structures must exceed the 512 KiB L2.
	inst, err := Get("NAS-IS")
	if err != nil {
		t.Fatal(err)
	}
	i := inst.Build(BenchScale())
	if i.Mem.Brk() < 2<<20 {
		t.Errorf("bench-scale footprint = %d bytes, want > 2 MiB", i.Mem.Brk())
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a, _ := Get("PR_KR")
	i1 := a.Build(TinyScale())
	i2 := a.Build(TinyScale())
	if i1.Prog.Len() != i2.Prog.Len() {
		t.Error("same scale produced different programs")
	}
	if i1.Mem.Brk() != i2.Mem.Brk() {
		t.Error("same scale produced different memory layouts")
	}
}

// TestKernelDisasmRoundTrips: every kernel's disassembly reparses into an
// identical instruction stream (exercises the assembler against real
// programs).
func TestKernelDisasmRoundTrips(t *testing.T) {
	for _, spec := range Evaluation() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			orig := spec.Build(TinyScale()).Prog
			parsed, err := isa.Parse(spec.Name, orig.Disasm())
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if parsed.Len() != orig.Len() {
				t.Fatalf("length %d != %d", parsed.Len(), orig.Len())
			}
			for i := range orig.Code {
				if parsed.Code[i] != orig.Code[i] {
					t.Fatalf("instr %d: %+v != %+v", i, parsed.Code[i], orig.Code[i])
				}
			}
		})
	}
}

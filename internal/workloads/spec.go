package workloads

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// SPEC CPU2017 proxies (Fig 14). The paper evaluates SVR's overhead on
// workloads with no stride->indirect chains to vectorize; these proxies
// reproduce the four behaviour classes SPECrate 2017 spans — dense
// floating-point streaming, stencil sweeps, branchy integer code, and
// pointer-heavy traversal — none of which give SVR anything to do.
// Per DESIGN.md substitution 6, each SPEC benchmark maps to the proxy of
// its dominant behaviour.

type specClass int

const (
	classDenseFP specClass = iota
	classStencil
	classBranchy
	classPointer
)

// String names the behaviour class.
func (c specClass) String() string {
	switch c {
	case classDenseFP:
		return "dense-FP"
	case classStencil:
		return "stencil"
	case classBranchy:
		return "branchy-int"
	default:
		return "pointer-chase"
	}
}

// specBenchmarks maps each Fig 14 benchmark to its behaviour class.
var specBenchmarks = []struct {
	name  string
	class specClass
}{
	{"perlbench", classBranchy},
	{"gcc", classBranchy},
	{"bwaves", classDenseFP},
	{"mcf", classPointer},
	{"cactuBSSN", classStencil},
	{"namd", classDenseFP},
	{"parest", classStencil},
	{"povray", classDenseFP},
	{"lbm", classStencil},
	{"omnetpp", classPointer},
	{"wrf", classStencil},
	{"xalancbmk", classPointer},
	{"x264", classStencil},
	{"blender", classDenseFP},
	{"cam4", classStencil},
	{"deepsjeng", classBranchy},
	{"imagick", classStencil},
	{"leela", classBranchy},
	{"nab", classDenseFP},
	{"exchange2", classBranchy},
	{"fotonik3d", classStencil},
	{"roms", classDenseFP},
	{"xz", classBranchy},
}

func init() {
	for i, sb := range specBenchmarks {
		sb, i := sb, i
		register(Spec{
			Name:  sb.name,
			Group: "spec",
			Desc:  "SPEC CPU2017 proxy (" + sb.class.String() + " class)",
			Build: func(sc Scale) *Instance { return buildSpecProxy(sb.name, sb.class, sc, int64(i)) },
		})
	}
}

// SPECNames returns the Fig 14 benchmark list in paper order.
func SPECNames() []string {
	out := make([]string, len(specBenchmarks))
	for i, sb := range specBenchmarks {
		out[i] = sb.name
	}
	return out
}

func buildSpecProxy(name string, class specClass, sc Scale, salt int64) *Instance {
	switch class {
	case classDenseFP:
		return buildDenseFP(name, sc)
	case classStencil:
		return buildStencil(name, sc)
	case classBranchy:
		return buildBranchy(name, sc, salt)
	default:
		return buildPointerChase(name, sc, salt)
	}
}

// buildDenseFP streams two arrays through a fused multiply-add loop —
// compute-bound, perfectly strided.
func buildDenseFP(name string, sc Scale) *Instance {
	m := mem.New()
	n := uint64(sc.Elems)
	a := m.NewArray(n, 8)
	bArr := m.NewArray(n, 8)
	c := m.NewArray(n, 8)
	for i := uint64(0); i < n; i++ {
		a.SetF(i, float64(i%13)*0.5)
		bArr.SetF(i, float64(i%7)*1.25)
	}
	b := isa.NewBuilder(name)
	rA, rB, rC, rI, rN := b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg()
	rT, rX, rY := b.AllocReg(), b.AllocReg(), b.AllocReg()
	b.LoadImm(rA, int64(a.Base))
	b.LoadImm(rB, int64(bArr.Base))
	b.LoadImm(rC, int64(c.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n))
	b.Label("loop")
	b.ShlI(rT, rI, 3)
	b.Add(rX, rT, rA)
	b.Load(rX, rX, 0, 8)
	b.Add(rY, rT, rB)
	b.Load(rY, rY, 0, 8)
	b.FMul(rX, rX, rY)
	b.FAdd(rX, rX, rY)
	b.Add(rT, rT, rC)
	b.Store(rX, rT, 0, 8)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return &Instance{Name: name, Prog: b.Build(), Mem: m}
}

// buildStencil sweeps a 1-D three-point stencil — neighboring loads, all
// strided, moderate FP work.
func buildStencil(name string, sc Scale) *Instance {
	m := mem.New()
	n := uint64(sc.Elems)
	src := m.NewArray(n, 8)
	dst := m.NewArray(n, 8)
	for i := uint64(0); i < n; i++ {
		src.SetF(i, float64(i%17)*0.3)
	}
	b := isa.NewBuilder(name)
	rS, rD, rI, rN := b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg()
	rT, rL, rCt, rR := b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg()
	rThird := b.AllocReg()
	b.LoadImm(rS, int64(src.Base))
	b.LoadImm(rD, int64(dst.Base))
	b.LoadImm(rI, 1)
	b.LoadImm(rN, int64(n-1))
	b.LoadImmF(rThird, 1.0/3)
	b.Label("loop")
	b.ShlI(rT, rI, 3)
	b.Add(rT, rT, rS)
	b.Load(rL, rT, -8, 8)
	b.Load(rCt, rT, 0, 8)
	b.Load(rR, rT, 8, 8)
	b.FAdd(rL, rL, rCt)
	b.FAdd(rL, rL, rR)
	b.FMul(rL, rL, rThird)
	b.ShlI(rT, rI, 3)
	b.Add(rT, rT, rD)
	b.Store(rL, rT, 0, 8)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return &Instance{Name: name, Prog: b.Build(), Mem: m}
}

// buildBranchy runs data-dependent control flow over a small working set —
// the branch predictor, not the memory system, is the bottleneck.
func buildBranchy(name string, sc Scale, salt int64) *Instance {
	m := mem.New()
	n := uint64(sc.Elems) / 4
	data := m.NewArray(n, 8)
	rng := lcg(uint64(sc.Seed + salt*101))
	for i := uint64(0); i < n; i++ {
		data.Set(i, rng.next())
	}
	b := isa.NewBuilder(name)
	rD, rI, rN, rT, rV, rAcc := b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg()
	b.LoadImm(rD, int64(data.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n))
	b.Label("loop")
	b.ShlI(rT, rI, 3)
	b.Add(rT, rT, rD)
	b.Load(rV, rT, 0, 8)
	b.AndI(rT, rV, 3)
	b.CmpI(rT, 0)
	b.BEQ("c0")
	b.CmpI(rT, 1)
	b.BEQ("c1")
	b.CmpI(rT, 2)
	b.BEQ("c2")
	b.XorI(rAcc, rAcc, 0x55)
	b.Jmp("cont")
	b.Label("c0")
	b.AddI(rAcc, rAcc, 3)
	b.Jmp("cont")
	b.Label("c1")
	b.ShlI(rAcc, rAcc, 1)
	b.Jmp("cont")
	b.Label("c2")
	b.Add(rAcc, rAcc, rV)
	b.Label("cont")
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return &Instance{Name: name, Prog: b.Build(), Mem: m}
}

// buildPointerChase walks a shuffled linked ring — latency-bound with no
// striding loads at all (mcf/omnetpp/xalancbmk behaviour).
func buildPointerChase(name string, sc Scale, salt int64) *Instance {
	m := mem.New()
	n := uint64(sc.Elems) / 2
	nodes := m.NewArray(n, 8)
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	x := uint64(sc.Seed + salt*977 + 11)
	for i := int(n) - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := x % uint64(i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := uint64(0); i < n; i++ {
		nodes.SetI(perm[i], int64(nodes.Addr(perm[(i+1)%n])))
	}
	b := isa.NewBuilder(name)
	rP, rI, rN := b.AllocReg(), b.AllocReg(), b.AllocReg()
	b.LoadImm(rP, int64(nodes.Addr(perm[0])))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(n*4))
	b.Label("loop")
	b.Load(rP, rP, 0, 8)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return &Instance{Name: name, Prog: b.Build(), Mem: m}
}

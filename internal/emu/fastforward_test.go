package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// buildScatter builds a kernel exercising every class the fast-forward
// loop dispatches on: loads, stores, both branch directions, compares and
// an unconditional jump. dst[i] = running sum of src[0..i]; odd sums are
// negated so the conditional-inside-the-loop goes both ways.
func buildScatter(src, dst uint64, n int64) *isa.Program {
	b := isa.NewBuilder("scatter")
	rSrc, rDst, rI, rN, rA, rV, rSum, rOne := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
	b.LoadImm(rSrc, int64(src))
	b.LoadImm(rDst, int64(dst))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, n)
	b.LoadImm(rSum, 0)
	b.LoadImm(rOne, 1)
	b.Label("loop")
	b.ShlI(rA, rI, 3)
	b.Add(rA, rA, rSrc)
	b.Load(rV, rA, 0, 8)
	b.Add(rSum, rSum, rV)
	b.And(rV, rSum, rOne)
	b.Cmp(rV, isa.R0)
	b.BEQ("even")
	b.Sub(rV, isa.R0, rSum)
	b.Jmp("store")
	b.Label("even")
	b.Add(rV, rSum, isa.R0)
	b.Label("store")
	b.ShlI(rA, rI, 3)
	b.Add(rA, rA, rDst)
	b.Store(rV, rA, 0, 8)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return b.Build()
}

func scatterSetup(t *testing.T) (*isa.Program, *mem.Memory, uint64) {
	t.Helper()
	m := mem.New()
	src := m.NewArray(64, 8)
	dst := m.NewArray(64, 8)
	for i := uint64(0); i < 64; i++ {
		src.SetI(i, int64(3*i+1))
	}
	return buildScatter(src.Base, dst.Base, 64), m, dst.Base
}

// TestFastForwardMatchesStep checks that FastForward leaves the CPU in
// the exact architectural state the streaming Step loop would: registers,
// PC, flags, instruction count, halt status and memory contents.
func TestFastForwardMatchesStep(t *testing.T) {
	for _, n := range []uint64{0, 1, 7, 100, 1 << 20} {
		prog, m1, dst := scatterSetup(t)
		m2 := m1.Clone()

		ref := New(prog, m1)
		var rec DynInstr
		var stepped uint64
		for stepped < n && ref.Step(&rec) {
			stepped++
		}

		ff := New(prog, m2)
		ran := ff.FastForward(n)
		if ran != stepped {
			t.Fatalf("n=%d: FastForward ran %d, Step ran %d", n, ran, stepped)
		}
		if got, want := ff.SaveArch(), ref.SaveArch(); got != want {
			t.Fatalf("n=%d: arch state diverged:\n ff  %+v\n ref %+v", n, got, want)
		}
		for i := uint64(0); i < 64; i++ {
			if a, b := m2.ReadI64(dst+8*i), m1.ReadI64(dst+8*i); a != b {
				t.Fatalf("n=%d: dst[%d] = %d via fast-forward, %d via step", n, i, a, b)
			}
		}
	}
}

// warmEvent is one callback seen by recordingWarmer.
type warmEvent struct {
	kind  byte // 'f', 'l', 's', 'b'
	pc    int
	addr  uint64
	taken bool
}

type recordingWarmer struct{ evs []warmEvent }

func (r *recordingWarmer) WarmFetch(pc int) { r.evs = append(r.evs, warmEvent{kind: 'f', pc: pc}) }
func (r *recordingWarmer) WarmLoad(pc int, addr uint64) {
	r.evs = append(r.evs, warmEvent{kind: 'l', pc: pc, addr: addr})
}
func (r *recordingWarmer) WarmStore(pc int, addr uint64) {
	r.evs = append(r.evs, warmEvent{kind: 's', pc: pc, addr: addr})
}
func (r *recordingWarmer) WarmBranch(pc int, taken bool) {
	r.evs = append(r.evs, warmEvent{kind: 'b', pc: pc, taken: taken})
}

// TestFastForwardWarmStream checks that the warming fast-forward reports
// exactly the fetch/load/store/branch stream the DynInstr trace carries,
// in the order the detailed front end would drive it (fetch first, then
// the instruction's memory or branch event).
func TestFastForwardWarmStream(t *testing.T) {
	prog, m1, _ := scatterSetup(t)
	m2 := m1.Clone()

	ref := New(prog, m1)
	var want []warmEvent
	var rec DynInstr
	for ref.Step(&rec) {
		want = append(want, warmEvent{kind: 'f', pc: rec.PC})
		switch rec.Instr.Kind() {
		case isa.KindLoad:
			want = append(want, warmEvent{kind: 'l', pc: rec.PC, addr: rec.Addr})
		case isa.KindStore:
			want = append(want, warmEvent{kind: 's', pc: rec.PC, addr: rec.Addr})
		case isa.KindBranch:
			want = append(want, warmEvent{kind: 'b', pc: rec.PC, taken: rec.Taken})
		}
	}

	w := &recordingWarmer{}
	ff := New(prog, m2)
	ran := ff.FastForwardWarm(1<<20, w)
	if ran != ref.InstrCount() {
		t.Fatalf("warm ran %d, step ran %d", ran, ref.InstrCount())
	}
	if len(w.evs) != len(want) {
		t.Fatalf("warm stream has %d events, trace implies %d", len(w.evs), len(want))
	}
	for i := range want {
		if w.evs[i] != want[i] {
			t.Fatalf("event %d: warm %+v, trace %+v", i, w.evs[i], want[i])
		}
	}
}

// TestSaveLoadArchRoundTrip interrupts a run mid-flight, transplants the
// architectural state into a fresh CPU over a cloned memory, and checks
// both finish identically.
func TestSaveLoadArchRoundTrip(t *testing.T) {
	prog, m1, dst := scatterSetup(t)

	c1 := New(prog, m1)
	c1.FastForward(333)
	snap := c1.SaveArch()
	m2 := m1.Clone()

	c2 := New(prog, m2)
	c2.LoadArch(snap)
	if c2.SaveArch() != snap {
		t.Fatal("LoadArch did not reproduce the saved state")
	}

	n1 := c1.FastForward(1 << 20)
	n2 := c2.FastForward(1 << 20)
	if n1 != n2 {
		t.Fatalf("continuations ran %d vs %d instructions", n1, n2)
	}
	if c1.SaveArch() != c2.SaveArch() {
		t.Fatal("continuations diverged")
	}
	for i := uint64(0); i < 64; i++ {
		if a, b := m1.ReadI64(dst+8*i), m2.ReadI64(dst+8*i); a != b {
			t.Fatalf("dst[%d] = %d vs %d after restored continuation", i, a, b)
		}
	}
}

// TestFastForwardPureOpsMatchEvalALU pins the ALU cases inlined into the
// fast-forward dispatch switch to EvalALU, op by op: for every pure
// opcode and a grid of operand values, a one-instruction program must
// leave exactly EvalALU's result in the destination register.
func TestFastForwardPureOpsMatchEvalALU(t *testing.T) {
	operands := []int64{0, 1, -1, 5, 12, -12, 63, 64, 1 << 40, -(1 << 40)}
	for opv := 0; opv < 256; opv++ {
		op := isa.Op(opv)
		for _, a := range operands {
			for _, b := range operands {
				want, pure := EvalALU(op, a, b, b)
				if !pure {
					continue
				}
				prog := &isa.Program{Name: "pin", Code: []isa.Instr{
					{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: b},
					{Op: isa.OpHalt},
				}}
				c := New(prog, mem.New())
				c.SetReg(2, a)
				c.SetReg(3, b)
				if ran := c.FastForward(1); ran != 1 {
					t.Fatalf("op %v: ran %d", op, ran)
				}
				if got := c.Reg(1); got != want {
					t.Errorf("op %v a=%d b=imm=%d: fast-forward %d, EvalALU %d", op, a, b, got, want)
				}
			}
		}
	}
}

// TestFastForwardHaltedNoop checks a halted CPU stays put.
func TestFastForwardHaltedNoop(t *testing.T) {
	prog, m, _ := scatterSetup(t)
	c := New(prog, m)
	c.FastForward(1 << 20)
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	before := c.SaveArch()
	if ran := c.FastForward(100); ran != 0 {
		t.Fatalf("halted CPU ran %d instructions", ran)
	}
	if c.SaveArch() != before {
		t.Fatal("halted fast-forward mutated state")
	}
}

package emu

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// pureOps are the opcodes EvalALU must handle.
var pureOps = []isa.Op{
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv,
	isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
	isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
	isa.OpShlI, isa.OpShrI, isa.OpLoadImm, isa.OpMin, isa.OpMax,
	isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpIToF, isa.OpFToI,
}

// TestEvalALUMatchesStep: the SVR engine computes speculative lane values
// with EvalALU; it must agree bit-for-bit with architectural execution of
// the same operation for random operands.
func TestEvalALUMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		op := pureOps[rng.Intn(len(pureOps))]
		a, b := rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63()
		imm := rng.Int63n(1<<20) - 1<<19
		if op == isa.OpFToI || op == isa.OpFDiv || op == isa.OpFAdd ||
			op == isa.OpFSub || op == isa.OpFMul {
			// Use valid float bit patterns to avoid NaN compare noise.
			a, b = isa.F2B(float64(a%100000)), isa.F2B(float64(b%100000)+1)
		}

		want, pure := EvalALU(op, a, b, imm)
		if !pure {
			t.Fatalf("op %v not pure", op)
		}

		bld := isa.NewBuilder("p")
		bld.LoadImm(1, a)
		bld.LoadImm(2, b)
		// Emit the op directly via the instruction form.
		switch op {
		case isa.OpLoadImm:
			bld.LoadImm(3, imm)
		default:
			// Build the instruction manually through builder helpers is
			// verbose; execute through a handcrafted program instead.
		}
		cpu := New(&isa.Program{Name: "p", Code: []isa.Instr{
			{Op: isa.OpLoadImm, Rd: 1, Imm: a},
			{Op: isa.OpLoadImm, Rd: 2, Imm: b},
			{Op: op, Rd: 3, Ra: 1, Rb: 2, Imm: imm},
			{Op: isa.OpHalt},
		}}, mem.New())
		cpu.Run(10)
		if got := cpu.Reg(3); got != want {
			t.Fatalf("op %v(%d,%d,%d): EvalALU=%d, Step=%d", op, a, b, imm, want, got)
		}
	}
}

func TestEvalALUImpureOps(t *testing.T) {
	for _, op := range []isa.Op{isa.OpLoad, isa.OpStore, isa.OpCmp, isa.OpCmpI,
		isa.OpBEQ, isa.OpJmp, isa.OpHalt, isa.OpNop} {
		if _, pure := EvalALU(op, 1, 2, 3); pure {
			t.Errorf("op %v wrongly reported pure", op)
		}
	}
}

func TestCmpSignAndBranchTaken(t *testing.T) {
	cases := []struct {
		a, b int64
		sign int
	}{{1, 2, -1}, {2, 1, 1}, {5, 5, 0}, {-9, -9, 0}, {-1, 1, -1}}
	for _, c := range cases {
		if got := CmpSign(c.a, c.b); got != c.sign {
			t.Errorf("CmpSign(%d,%d) = %d", c.a, c.b, got)
		}
	}
	if !BranchTaken(isa.OpBLT, -1) || BranchTaken(isa.OpBLT, 0) {
		t.Error("BLT semantics wrong")
	}
	if !BranchTaken(isa.OpBGE, 0) || !BranchTaken(isa.OpBGE, 1) {
		t.Error("BGE semantics wrong")
	}
	if !BranchTaken(isa.OpBNE, 1) || BranchTaken(isa.OpBEQ, 1) {
		t.Error("BNE/BEQ semantics wrong")
	}
}

package emu

import (
	"fmt"

	"repro/internal/isa"
)

// This file is the functional fast-forward engine: execution without
// DynInstr streaming and without a timing model, used to reach a region
// of interest at a small fraction of detailed-simulation cost. The plain
// loop (FastForward) touches only architectural state; the warming loop
// (FastForwardWarm) additionally reports the fetch/load/store/branch
// stream to a Warmer so cache, TLB and branch-predictor state can be
// warmed at ~zero timing cost. Both loops must stay allocation-free in
// steady state (guarded by TestFastForwardDoesNotAllocate) and must
// match Step's architectural semantics exactly (guarded by
// TestFastForwardMatchesStep).

// ArchState is the portable architectural state of a CPU: everything
// Step mutates except the memory image. A checkpoint pairs it with a
// copy-on-write clone of the memory taken at the same instruction.
type ArchState struct {
	R      [isa.NumRegs]int64
	PC     int
	Flags  int
	Seq    uint64
	Halted bool
}

// SaveArch captures the CPU's architectural state.
func (c *CPU) SaveArch() ArchState {
	return ArchState{R: c.R, PC: c.PC, Flags: c.Flags, Seq: c.seq, Halted: c.halted}
}

// LoadArch restores architectural state saved by SaveArch. Prog and Mem
// are untouched: the caller pairs the state with the memory image that
// was captured alongside it.
func (c *CPU) LoadArch(s ArchState) {
	c.R, c.PC, c.Flags, c.seq, c.halted = s.R, s.PC, s.Flags, s.Seq, s.Halted
}

// Warmer receives the architectural event stream of a fast-forward so
// timing-free microarchitectural state (cache tags, TLB entries, branch
// predictor tables) can be warmed without running a timing model. The
// calls arrive in the order the detailed cores would have driven them:
// WarmFetch for every instruction, then the instruction's own event.
type Warmer interface {
	WarmFetch(pc int)
	WarmLoad(pc int, addr uint64)
	WarmStore(pc int, addr uint64)
	WarmBranch(pc int, taken bool)
}

// FastForward executes up to n instructions with no trace streaming and
// no timing, returning the number executed (short only if the program
// halted). Architectural state afterwards is bit-identical to n Step
// calls.
//
// The loop keeps PC and flags in locals (written back once) and inlines
// the hottest ALU semantics from EvalALU directly into the dispatch
// switch; TestFastForwardPureOpsMatchEvalALU pins the inlined cases to
// EvalALU op by op. This is the paper-scale skip engine: its rate, not
// the detailed models', bounds how cheaply regions can be reached.
func (c *CPU) FastForward(n uint64) uint64 {
	if c.halted {
		return 0
	}
	code := c.Prog.Code
	mem := c.Mem
	pc := c.PC
	flags := c.Flags
	var done uint64
	for done < n && pc < len(code) {
		in := code[pc]
		a, bv := c.R[in.Ra], c.R[in.Rb]
		nextPC := pc + 1
		var v int64
		switch in.Op {
		case isa.OpAdd:
			v = a + bv
			goto write
		case isa.OpAddI:
			v = a + in.Imm
			goto write
		case isa.OpLoad:
			// The load always executes (first touch may install a
			// page), matching Step even for an R0 destination.
			v = loadSigned(mem, uint64(a+in.Imm), in.Size)
			goto write
		case isa.OpStore:
			mem.Write(uint64(a+in.Imm), uint64(bv), in.Size)
		case isa.OpCmp:
			flags = cmpSign(a, bv)
		case isa.OpCmpI:
			flags = cmpSign(a, in.Imm)
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLE, isa.OpBGT:
			if branchTaken(in.Op, flags) {
				nextPC = int(in.Imm)
			}
		case isa.OpAndI:
			v = a & in.Imm
			goto write
		case isa.OpShlI:
			v = a << (uint64(in.Imm) & 63)
			goto write
		case isa.OpShrI:
			v = int64(uint64(a) >> (uint64(in.Imm) & 63))
			goto write
		case isa.OpMul:
			v = a * bv
			goto write
		case isa.OpMulI:
			v = a * in.Imm
			goto write
		case isa.OpLoadImm:
			v = in.Imm
			goto write
		case isa.OpJmp:
			nextPC = int(in.Imm)
		case isa.OpHalt:
			c.halted = true
			pc = nextPC
			done++
			goto out
		default:
			if ev, pure := EvalALU(in.Op, a, bv, in.Imm); pure {
				v = ev
				goto write
			}
			if in.Op != isa.OpNop {
				panic(fmt.Sprintf("emu: unknown opcode %v at pc %d", in.Op, pc))
			}
		}
		pc = nextPC
		done++
		continue
	write:
		if in.Rd != isa.R0 {
			c.R[in.Rd] = v
		}
		pc = nextPC
		done++
	}
out:
	c.PC = pc
	c.Flags = flags
	c.seq += done
	return done
}

// FastForwardWarm is FastForward with functional warming: w observes the
// fetch/load/store/branch stream. Architectural effects are identical to
// FastForward; only w's state changes in addition.
func (c *CPU) FastForwardWarm(n uint64, w Warmer) uint64 {
	code := c.Prog.Code
	var done uint64
	for done < n {
		if c.halted || c.PC >= len(code) {
			break
		}
		pc := c.PC
		in := code[pc]
		a, bv := c.R[in.Ra], c.R[in.Rb]
		nextPC := pc + 1
		w.WarmFetch(pc)

		if v, pure := EvalALU(in.Op, a, bv, in.Imm); pure {
			if in.Rd != isa.R0 {
				c.R[in.Rd] = v
			}
		} else {
			switch in.Op {
			case isa.OpLoad:
				addr := uint64(a + in.Imm)
				v := loadSigned(c.Mem, addr, in.Size)
				if in.Rd != isa.R0 {
					c.R[in.Rd] = v
				}
				w.WarmLoad(pc, addr)
			case isa.OpStore:
				addr := uint64(a + in.Imm)
				c.Mem.Write(addr, uint64(bv), in.Size)
				w.WarmStore(pc, addr)
			case isa.OpCmp:
				c.Flags = cmpSign(a, bv)
			case isa.OpCmpI:
				c.Flags = cmpSign(a, in.Imm)
			case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLE, isa.OpBGT:
				taken := branchTaken(in.Op, c.Flags)
				if taken {
					nextPC = int(in.Imm)
				}
				w.WarmBranch(pc, taken)
			case isa.OpJmp:
				nextPC = int(in.Imm)
			case isa.OpHalt:
				c.halted = true
			case isa.OpNop:
			default:
				panic(fmt.Sprintf("emu: unknown opcode %v at pc %d", in.Op, c.PC))
			}
		}
		c.PC = nextPC
		c.seq++
		done++
	}
	return done
}

package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// buildSum builds a kernel that sums the n 8-byte elements of an array via
// a counted loop, leaving the result in r3.
func buildSum(base uint64, n int64) *isa.Program {
	b := isa.NewBuilder("sum")
	rBase, rI, rSum, rN, rAddr, rV := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6)
	b.LoadImm(rBase, int64(base))
	b.LoadImm(rI, 0)
	b.LoadImm(rSum, 0)
	b.LoadImm(rN, n)
	b.Label("loop")
	b.ShlI(rAddr, rI, 3)
	b.Add(rAddr, rAddr, rBase)
	b.Load(rV, rAddr, 0, 8)
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return b.Build()
}

func TestSumLoop(t *testing.T) {
	m := mem.New()
	a := m.NewArray(10, 8)
	want := int64(0)
	for i := uint64(0); i < 10; i++ {
		a.SetI(i, int64(i*i))
		want += int64(i * i)
	}
	c := New(buildSum(a.Base, 10), m)
	c.Run(1 << 20)
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	if got := c.Reg(3); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestDynInstrRecords(t *testing.T) {
	m := mem.New()
	a := m.NewArray(4, 8)
	a.SetI(2, 99)
	c := New(buildSum(a.Base, 4), m)

	var rec DynInstr
	loads, branches, takens := 0, 0, 0
	var seq uint64
	for c.Step(&rec) {
		if rec.Seq != seq {
			t.Fatalf("seq %d, want %d", rec.Seq, seq)
		}
		seq++
		switch rec.Instr.Kind() {
		case isa.KindLoad:
			wantAddr := a.Addr(uint64(loads))
			if rec.Addr != wantAddr {
				t.Errorf("load %d addr = %#x, want %#x", loads, rec.Addr, wantAddr)
			}
			if loads == 2 && rec.LoadVal != 99 {
				t.Errorf("load 2 value = %d, want 99", rec.LoadVal)
			}
			loads++
		case isa.KindBranch:
			branches++
			if rec.Taken {
				takens++
			}
		}
	}
	if loads != 4 {
		t.Errorf("loads = %d, want 4", loads)
	}
	if branches != 4 || takens != 3 {
		t.Errorf("branches = %d (%d taken), want 4 (3 taken)", branches, takens)
	}
}

func TestR0Hardwired(t *testing.T) {
	b := isa.NewBuilder("r0")
	b.LoadImm(isa.R0, 123)
	b.AddI(1, isa.R0, 5)
	b.Halt()
	c := New(b.Build(), mem.New())
	c.Run(10)
	if c.Reg(isa.R0) != 0 {
		t.Error("r0 was written")
	}
	if c.Reg(1) != 5 {
		t.Errorf("r1 = %d, want 5", c.Reg(1))
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		name  string
		emitF func(b *isa.Builder)
		want  int64
	}{
		{"add", func(b *isa.Builder) { b.Add(3, 1, 2) }, 17},
		{"sub", func(b *isa.Builder) { b.Sub(3, 1, 2) }, 7},
		{"mul", func(b *isa.Builder) { b.Mul(3, 1, 2) }, 60},
		{"div", func(b *isa.Builder) { b.Div(3, 1, 2) }, 2},
		{"and", func(b *isa.Builder) { b.And(3, 1, 2) }, 12 & 5},
		{"or", func(b *isa.Builder) { b.Or(3, 1, 2) }, 12 | 5},
		{"xor", func(b *isa.Builder) { b.Xor(3, 1, 2) }, 12 ^ 5},
		{"shl", func(b *isa.Builder) { b.Shl(3, 1, 2) }, 12 << 5},
		{"shr", func(b *isa.Builder) { b.Shr(3, 1, 2) }, 12 >> 5},
		{"min", func(b *isa.Builder) { b.Min(3, 1, 2) }, 5},
		{"max", func(b *isa.Builder) { b.Max(3, 1, 2) }, 12},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := isa.NewBuilder(c.name)
			b.LoadImm(1, 12)
			b.LoadImm(2, 5)
			c.emitF(b)
			b.Halt()
			cpu := New(b.Build(), mem.New())
			cpu.Run(10)
			if got := cpu.Reg(3); got != c.want {
				t.Errorf("%s = %d, want %d", c.name, got, c.want)
			}
		})
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	b := isa.NewBuilder("div0")
	b.LoadImm(1, 10)
	b.Div(3, 1, isa.R0)
	b.Halt()
	c := New(b.Build(), mem.New())
	c.Run(10)
	if c.Reg(3) != 0 {
		t.Errorf("div by zero = %d, want 0", c.Reg(3))
	}
}

func TestFloatOps(t *testing.T) {
	b := isa.NewBuilder("fp")
	b.LoadImmF(1, 6.0)
	b.LoadImmF(2, 1.5)
	b.FAdd(3, 1, 2)
	b.FSub(4, 1, 2)
	b.FMul(5, 1, 2)
	b.FDiv(6, 1, 2)
	b.LoadImm(7, 3)
	b.IToF(8, 7)
	b.FToI(9, 8)
	b.Halt()
	c := New(b.Build(), mem.New())
	c.Run(20)
	checks := []struct {
		r    isa.Reg
		want float64
	}{{3, 7.5}, {4, 4.5}, {5, 9.0}, {6, 4.0}, {8, 3.0}}
	for _, ch := range checks {
		if got := isa.B2F(c.Reg(ch.r)); got != ch.want {
			t.Errorf("r%d = %v, want %v", ch.r, got, ch.want)
		}
	}
	if c.Reg(9) != 3 {
		t.Errorf("ftoi = %d, want 3", c.Reg(9))
	}
}

func TestBranchConditions(t *testing.T) {
	// For each (a, b, op), check whether the branch is taken.
	cases := []struct {
		op    string
		a, b  int64
		taken bool
	}{
		{"beq", 5, 5, true}, {"beq", 5, 6, false},
		{"bne", 5, 6, true}, {"bne", 5, 5, false},
		{"blt", 4, 5, true}, {"blt", 5, 5, false}, {"blt", -1, 0, true},
		{"bge", 5, 5, true}, {"bge", 4, 5, false},
		{"ble", 5, 5, true}, {"ble", 6, 5, false},
		{"bgt", 6, 5, true}, {"bgt", 5, 5, false},
	}
	for _, c := range cases {
		b := isa.NewBuilder("br")
		b.LoadImm(1, c.a)
		b.LoadImm(2, c.b)
		b.Cmp(1, 2)
		switch c.op {
		case "beq":
			b.BEQ("hit")
		case "bne":
			b.BNE("hit")
		case "blt":
			b.BLT("hit")
		case "bge":
			b.BGE("hit")
		case "ble":
			b.BLE("hit")
		case "bgt":
			b.BGT("hit")
		}
		b.LoadImm(3, 0)
		b.Halt()
		b.Label("hit")
		b.LoadImm(3, 1)
		b.Halt()
		cpu := New(b.Build(), mem.New())
		cpu.Run(10)
		if got := cpu.Reg(3) == 1; got != c.taken {
			t.Errorf("%s(%d,%d) taken = %v, want %v", c.op, c.a, c.b, got, c.taken)
		}
	}
}

func TestNarrowLoadZeroExtends(t *testing.T) {
	m := mem.New()
	addr := m.Alloc(8, 8)
	m.Write(addr, 0xffffffff, 4)
	b := isa.NewBuilder("narrow")
	b.LoadImm(1, int64(addr))
	b.Load(2, 1, 0, 4)
	b.Halt()
	c := New(b.Build(), m)
	c.Run(10)
	if got := c.Reg(2); got != 0xffffffff {
		t.Errorf("32-bit load = %#x, want 0xffffffff (zero-extended)", got)
	}
}

func TestStore(t *testing.T) {
	m := mem.New()
	addr := m.Alloc(8, 8)
	b := isa.NewBuilder("store")
	b.LoadImm(1, int64(addr))
	b.LoadImm(2, 7777)
	b.Store(2, 1, 0, 8)
	b.Halt()
	New(b.Build(), m).Run(10)
	if got := m.ReadI64(addr); got != 7777 {
		t.Errorf("stored value = %d", got)
	}
}

func TestRunOffEndHalts(t *testing.T) {
	b := isa.NewBuilder("fall")
	b.Nop()
	c := New(b.Build(), mem.New())
	n := c.Run(100)
	if n != 1 || !c.Halted() {
		t.Errorf("ran %d instructions, halted=%v", n, c.Halted())
	}
}

func TestInstrCountMatchesRun(t *testing.T) {
	m := mem.New()
	a := m.NewArray(8, 8)
	c := New(buildSum(a.Base, 8), m)
	n := c.Run(1 << 20)
	if c.InstrCount() != n {
		t.Errorf("InstrCount=%d, Run returned %d", c.InstrCount(), n)
	}
	// 4 setup + 8 iterations × 7 + 1 halt
	if want := uint64(4 + 8*7 + 1); n != want {
		t.Errorf("executed %d instructions, want %d", n, want)
	}
}

// Package emu implements the functional (architectural) emulator. It
// executes a Program against a memory image and streams DynInstr records —
// the dynamic instruction trace with resolved operand values, effective
// addresses and branch outcomes — to the timing models.
//
// Timing is trace-driven: a core model pulls one record at a time, so the
// architectural state lags the timing model by at most its window size.
// The SVR engine exploits this lockstep to scavenge current register
// values (the paper's LBD+CV mechanism, §IV-B2).
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// DynInstr is one dynamic (executed) instruction record.
type DynInstr struct {
	Seq   uint64    // dynamic instruction number, from 0
	PC    int       // static instruction index
	Instr isa.Instr // the static instruction

	Addr    uint64 // effective address for loads/stores
	LoadVal int64  // value loaded (loads only)

	SrcA, SrcB int64 // resolved source operand values
	Taken      bool  // branch outcome (branches only)
	NextPC     int   // PC of the next dynamic instruction
}

// CPU is the architectural state of the mini machine.
type CPU struct {
	Prog  *isa.Program
	Mem   *mem.Memory
	R     [isa.NumRegs]int64
	PC    int
	Flags int // sign of last compare: -1, 0, +1

	halted bool
	seq    uint64
}

// New returns a CPU at the program entry point with zeroed registers.
func New(p *isa.Program, m *mem.Memory) *CPU {
	return &CPU{Prog: p, Mem: m}
}

// Halted reports whether the program has executed a halt (or run off the
// end of its code).
func (c *CPU) Halted() bool { return c.halted || c.PC >= len(c.Prog.Code) }

// Reg returns the current architectural value of register r. Used by the
// SVR engine for loop-bound scavenging.
func (c *CPU) Reg(r isa.Reg) int64 { return c.R[r] }

// ReadMem returns size bytes of data memory at addr, zero-extended.
// With Reg and CmpFlags it makes the live CPU an architectural-state
// view (stream.ArchState) for consumers like the SVR engine.
func (c *CPU) ReadMem(addr uint64, size uint8) uint64 { return c.Mem.Read(addr, size) }

// CmpFlags returns the sign of the last compare: -1, 0, +1.
func (c *CPU) CmpFlags() int { return c.Flags }

// SetReg initializes register r (for passing kernel arguments).
func (c *CPU) SetReg(r isa.Reg, v int64) {
	if r != isa.R0 {
		c.R[r] = v
	}
}

// InstrCount returns the number of instructions executed so far.
func (c *CPU) InstrCount() uint64 { return c.seq }

// Step executes one instruction, filling rec, and reports whether an
// instruction was executed (false once halted).
func (c *CPU) Step(rec *DynInstr) bool {
	if c.Halted() {
		return false
	}
	in := c.Prog.Code[c.PC]
	// Field-wise reset instead of `*rec = DynInstr{...}`: only Addr,
	// LoadVal and Taken survive from the previous record (the rest is
	// unconditionally assigned below), so clearing just those three avoids
	// re-zeroing the whole record on every instruction.
	rec.Seq = c.seq
	rec.PC = c.PC
	rec.Instr = in
	rec.Addr = 0
	rec.LoadVal = 0
	rec.Taken = false
	c.seq++
	nextPC := c.PC + 1

	a, bv := c.R[in.Ra], c.R[in.Rb]
	rec.SrcA, rec.SrcB = a, bv
	var rd int64
	writes := true

	if v, pure := EvalALU(in.Op, a, bv, in.Imm); pure {
		rd = v
	} else {
		writes = false // provisional; the switch below overrides for loads
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpLoadImm, isa.OpMin, isa.OpMax,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpIToF, isa.OpFToI:
		// Handled by EvalALU above.
	case isa.OpLoad:
		addr := uint64(a + in.Imm)
		rec.Addr = addr
		rd = loadSigned(c.Mem, addr, in.Size)
		rec.LoadVal = rd
		writes = true
	case isa.OpStore:
		addr := uint64(a + in.Imm)
		rec.Addr = addr
		c.Mem.Write(addr, uint64(bv), in.Size)
		writes = false
	case isa.OpCmp:
		c.Flags = cmpSign(a, bv)
		writes = false
	case isa.OpCmpI:
		c.Flags = cmpSign(a, in.Imm)
		rec.SrcB = in.Imm
		writes = false
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLE, isa.OpBGT:
		writes = false
		if branchTaken(in.Op, c.Flags) {
			rec.Taken = true
			nextPC = int(in.Imm)
		}
	case isa.OpJmp:
		writes = false
		rec.Taken = true
		nextPC = int(in.Imm)
	case isa.OpHalt:
		writes = false
		c.halted = true
	default:
		panic(fmt.Sprintf("emu: unknown opcode %v at pc %d", in.Op, c.PC))
	}

	if writes && in.Rd != isa.R0 {
		c.R[in.Rd] = rd
	}
	c.PC = nextPC
	rec.NextPC = nextPC
	return true
}

func loadSigned(m *mem.Memory, addr uint64, size uint8) int64 {
	v := m.Read(addr, size)
	if size == 8 {
		return int64(v)
	}
	return int64(v) // narrower loads zero-extend
}

func cmpSign(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func branchTaken(op isa.Op, flags int) bool {
	switch op {
	case isa.OpBEQ:
		return flags == 0
	case isa.OpBNE:
		return flags != 0
	case isa.OpBLT:
		return flags < 0
	case isa.OpBGE:
		return flags >= 0
	case isa.OpBLE:
		return flags <= 0
	case isa.OpBGT:
		return flags > 0
	}
	return false
}

// EvalALU computes the result of a pure register-to-register operation
// (ALU, FP, immediate, conversion). It reports pure=false for opcodes with
// side effects (memory, flags, control flow), which the caller must handle
// itself. The SVR engine uses it to compute speculative lane values with
// exactly the semantics of architectural execution.
func EvalALU(op isa.Op, a, b, imm int64) (v int64, pure bool) {
	switch op {
	case isa.OpAdd:
		return a + b, true
	case isa.OpSub:
		return a - b, true
	case isa.OpMul:
		return a * b, true
	case isa.OpDiv:
		if b == 0 {
			return 0, true
		}
		return a / b, true
	case isa.OpAnd:
		return a & b, true
	case isa.OpOr:
		return a | b, true
	case isa.OpXor:
		return a ^ b, true
	case isa.OpShl:
		return a << (uint64(b) & 63), true
	case isa.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case isa.OpAddI:
		return a + imm, true
	case isa.OpMulI:
		return a * imm, true
	case isa.OpAndI:
		return a & imm, true
	case isa.OpOrI:
		return a | imm, true
	case isa.OpXorI:
		return a ^ imm, true
	case isa.OpShlI:
		return a << (uint64(imm) & 63), true
	case isa.OpShrI:
		return int64(uint64(a) >> (uint64(imm) & 63)), true
	case isa.OpLoadImm:
		return imm, true
	case isa.OpMin:
		return min(a, b), true
	case isa.OpMax:
		return max(a, b), true
	case isa.OpFAdd:
		return isa.F2B(isa.B2F(a) + isa.B2F(b)), true
	case isa.OpFSub:
		return isa.F2B(isa.B2F(a) - isa.B2F(b)), true
	case isa.OpFMul:
		return isa.F2B(isa.B2F(a) * isa.B2F(b)), true
	case isa.OpFDiv:
		return isa.F2B(isa.B2F(a) / isa.B2F(b)), true
	case isa.OpIToF:
		return isa.F2B(float64(a)), true
	case isa.OpFToI:
		return int64(isa.B2F(a)), true
	}
	return 0, false
}

// BranchTaken exposes the branch condition evaluation for the SVR engine,
// which must evaluate per-lane branch outcomes on speculative flag values.
func BranchTaken(op isa.Op, flags int) bool { return branchTaken(op, flags) }

// CmpSign exposes the comparator for the SVR engine's per-lane compares.
func CmpSign(a, b int64) int { return cmpSign(a, b) }

// Run executes up to maxInstr instructions discarding the trace; useful to
// fast-forward past initialization or to run a kernel functionally in
// tests. It returns the number of instructions executed.
func (c *CPU) Run(maxInstr uint64) uint64 {
	var rec DynInstr
	var n uint64
	for n < maxInstr && c.Step(&rec) {
		n++
	}
	return n
}

package artifact

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func key(c Class, id string) Key { return Key{Class: c, ID: id} }

func TestGetPutHitMiss(t *testing.T) {
	s := New(1 << 20)
	if _, ok := s.Get(key(Image, "a")); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put(key(Image, "a"), "va", 10)
	v, ok := s.Get(key(Image, "a"))
	if !ok || v.(string) != "va" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := s.Stats()[Image]
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Errorf("stats %+v", st)
	}
}

// TestEvictionAccounting: inserts past the byte budget evict in LRU
// order, and every byte/entry/eviction counter stays consistent.
func TestEvictionAccounting(t *testing.T) {
	s := New(100)
	for i := 0; i < 5; i++ {
		s.Put(key(Image, fmt.Sprintf("k%d", i)), i, 30)
	}
	// 5×30 = 150 bytes over a 100-byte budget: the two least recently
	// used entries (k0, k1) must be gone.
	if _, ok := s.Get(key(Image, "k0")); ok {
		t.Error("k0 survived eviction")
	}
	if _, ok := s.Get(key(Image, "k1")); ok {
		t.Error("k1 survived eviction")
	}
	if _, ok := s.Get(key(Image, "k4")); !ok {
		t.Error("k4 (most recent) evicted")
	}
	st := s.Stats()[Image]
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 3 || st.Bytes != 90 {
		t.Errorf("resident %d entries / %d bytes, want 3 / 90", st.Entries, st.Bytes)
	}
	if s.Bytes() != 90 {
		t.Errorf("store bytes = %d, want 90", s.Bytes())
	}
}

// TestEvictionLRUTouch: a Get refreshes recency, changing the victim.
func TestEvictionLRUTouch(t *testing.T) {
	s := New(60)
	s.Put(key(Image, "a"), 1, 20)
	s.Put(key(Image, "b"), 2, 20)
	s.Put(key(Image, "c"), 3, 20)
	s.Get(key(Image, "a")) // a becomes most recent; b is now LRU
	s.Put(key(Image, "d"), 4, 20)
	if _, ok := s.Get(key(Image, "b")); ok {
		t.Error("b (LRU) survived")
	}
	if _, ok := s.Get(key(Image, "a")); !ok {
		t.Error("a (touched) evicted")
	}
}

// TestNeverEvictsLast: one artifact bigger than the whole budget still
// caches; only everything else goes.
func TestNeverEvictsLast(t *testing.T) {
	s := New(10)
	s.Put(key(Checkpoint, "big"), "x", 1000)
	if _, ok := s.Get(key(Checkpoint, "big")); !ok {
		t.Fatal("oversized sole entry evicted")
	}
	s.Put(key(Checkpoint, "big2"), "y", 2000)
	if _, ok := s.Get(key(Checkpoint, "big")); ok {
		t.Error("old entry should yield to the newer oversized one")
	}
	if _, ok := s.Get(key(Checkpoint, "big2")); !ok {
		t.Error("newest entry must survive")
	}
}

func TestReplaceSameKey(t *testing.T) {
	s := New(1 << 20)
	s.Put(key(Stream, "s"), "v1", 100)
	s.Put(key(Stream, "s"), "v2", 200)
	v, ok := s.Get(key(Stream, "s"))
	if !ok || v.(string) != "v2" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := s.Stats()[Stream]
	if st.Entries != 1 || st.Bytes != 200 {
		t.Errorf("resident %d entries / %d bytes, want 1 / 200", st.Entries, st.Bytes)
	}
}

// TestGetOrProduceSingleflight: N concurrent callers of one key run
// produce exactly once; one caller reports production, the rest report
// hit or joined-flight.
func TestGetOrProduceSingleflight(t *testing.T) {
	s := New(1 << 20)
	var produced int
	var mu sync.Mutex
	gate := make(chan struct{})
	const callers = 8
	outcomes := make([]Outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, o := s.GetOrProduce(key(Result, "cell"), func() (any, int64) {
				<-gate // hold every sibling in the flight map
				mu.Lock()
				produced++
				mu.Unlock()
				return "res", 8
			})
			if v.(string) != "res" {
				t.Errorf("caller %d got %v", i, v)
			}
			outcomes[i] = o
		}()
	}
	close(gate)
	wg.Wait()
	if produced != 1 {
		t.Fatalf("produce ran %d times, want 1", produced)
	}
	var owners int
	for _, o := range outcomes {
		if !o.FromStore() {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d callers produced, want exactly 1 (outcomes %+v)", owners, outcomes)
	}
	st := s.Stats()[Result]
	if st.Produced != 1 || st.Hits+st.Waited != callers-1 {
		t.Errorf("stats %+v", st)
	}
}

// TestDisabledClass: a disabled class has no residency and no
// flight-sharing — every caller produces privately — and other classes
// are unaffected.
func TestDisabledClass(t *testing.T) {
	s := New(1 << 20)
	s.Put(key(Result, "r"), 1, 8)
	prev := s.SetClassEnabled(Result, false)
	if !prev {
		t.Fatal("class should start enabled")
	}
	if _, ok := s.Get(key(Result, "r")); ok {
		t.Error("disabled class served a resident entry")
	}
	var produced int
	for i := 0; i < 2; i++ {
		v, o := s.GetOrProduce(key(Result, "r"), func() (any, int64) { produced++; return 7, 8 })
		if o.FromStore() || v.(int) != 7 {
			t.Errorf("disabled class outcome %+v v=%v", o, v)
		}
	}
	if produced != 2 {
		t.Errorf("disabled class deduped production: %d", produced)
	}
	s.Put(key(Image, "img"), 1, 8)
	if _, ok := s.Get(key(Image, "img")); !ok {
		t.Error("sibling class affected by disable")
	}
	s.SetClassEnabled(Result, true)
	if _, ok := s.Get(key(Result, "r")); ok {
		t.Error("re-enabled class must start cold")
	}
}

func TestSetLimitEvicts(t *testing.T) {
	s := New(1 << 20)
	for i := 0; i < 4; i++ {
		s.Put(key(Image, fmt.Sprintf("k%d", i)), i, 25)
	}
	s.SetLimit(50)
	st := s.Stats()[Image]
	if st.Entries != 2 || st.Bytes != 50 || st.Evictions != 2 {
		t.Errorf("after SetLimit: %+v", st)
	}
	if s.Limit() != 50 {
		t.Errorf("Limit() = %d", s.Limit())
	}
}

func TestPurgeAndResetStats(t *testing.T) {
	s := New(1 << 20)
	s.Put(key(Stream, "a"), 1, 10)
	s.Put(key(Image, "b"), 2, 10)
	s.Purge(Stream)
	if _, ok := s.Get(key(Stream, "a")); ok {
		t.Error("purged entry survived")
	}
	if _, ok := s.Get(key(Image, "b")); !ok {
		t.Error("sibling class purged")
	}
	s.ResetStats(Stream)
	st := s.Stats()[Stream]
	if st.Hits != 0 || st.Misses != 0 || st.Produced != 0 {
		t.Errorf("ResetStats left counters: %+v", st)
	}
}

func TestTotalAndRegister(t *testing.T) {
	s := New(1 << 20)
	s.Put(key(Image, "a"), 1, 10)
	s.Put(key(Stream, "b"), 2, 20)
	s.Get(key(Image, "a"))
	tot := s.Stats().Total()
	if tot.Entries != 2 || tot.Bytes != 30 || tot.Hits != 1 {
		t.Errorf("Total = %+v", tot)
	}

	reg := metrics.New()
	s.Register(reg, "artifact")
	snap := reg.Snapshot()
	if snap.Gauges["artifact.image.bytes"] != 10 {
		t.Errorf("registered gauge = %d, want 10", snap.Gauges["artifact.image.bytes"])
	}
	if snap.Gauges["artifact.stream.entries"] != 1 {
		t.Errorf("stream entries gauge = %d", snap.Gauges["artifact.stream.entries"])
	}
}

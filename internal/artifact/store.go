// Package artifact is the unified content-addressed store behind the
// experiment scheduler: workload images, post-fast-forward checkpoints,
// recorded instruction streams and memoized cell results all live in one
// keyed, byte-budgeted LRU with per-class hit/miss/evict accounting and
// singleflight production. Before this package each of those caches was
// a private map inside internal/sim; unifying them gives concurrent
// tenants of the grid service one shared pool of warm state, one memory
// budget, and one observable set of counters.
package artifact

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Class partitions the key space by artifact kind. Classes share the
// byte budget and the LRU order but are accounted (and can be disabled)
// independently.
type Class string

// The artifact classes the simulator stores.
const (
	Image      Class = "image"      // built workload memory images
	Checkpoint Class = "checkpoint" // post-fast-forward machine checkpoints
	Stream     Class = "stream"     // recorded instruction streams
	Decoded    Class = "decoded"    // decoded SoA batches of stream chunks
	Result     Class = "result"     // memoized cell results
)

// Classes lists every class in stable display order.
func Classes() []Class { return []Class{Image, Checkpoint, Stream, Decoded, Result} }

// Key addresses one artifact: its class plus a content hash (or any
// canonical encoding of everything the artifact's bytes depend on).
type Key struct {
	Class Class
	ID    string
}

// Outcome reports how a GetOrProduce call was satisfied. Exactly one of
// three situations holds: the value was resident (Hit), the caller
// joined another caller's in-flight production (Waited), or the caller
// produced the value itself (neither).
type Outcome struct {
	Hit    bool
	Waited bool
}

// FromStore reports whether the caller got the artifact without
// producing it: a resident hit or a joined in-flight production.
func (o Outcome) FromStore() bool { return o.Hit || o.Waited }

// ClassStats is a point-in-time accounting snapshot of one class.
type ClassStats struct {
	Hits        int64 // lookups served resident
	Misses      int64 // lookups that found nothing resident
	Waited      int64 // of Misses, satisfied by joining an in-flight production
	WaitedNanos int64 // cumulative wall time spent in those joins (singleflight convoying)
	Produced    int64 // values computed and inserted
	Evictions   int64 // entries dropped by the byte budget
	Entries     int   // resident entries now
	Bytes       int64 // resident bytes now
}

// Stats maps each class to its counters.
type Stats map[Class]ClassStats

// Total folds every class into one summary row.
func (s Stats) Total() ClassStats {
	var t ClassStats
	for _, cs := range s {
		t.Hits += cs.Hits
		t.Misses += cs.Misses
		t.Waited += cs.Waited
		t.WaitedNanos += cs.WaitedNanos
		t.Produced += cs.Produced
		t.Evictions += cs.Evictions
		t.Entries += cs.Entries
		t.Bytes += cs.Bytes
	}
	return t
}

type entry struct {
	v     any
	bytes int64
}

type call struct {
	done chan struct{}
	v    any
}

type classCounters struct {
	hits, misses, waited, produced, evictions int64
	waitNanos                                 int64 // cumulative join-wait wall time
	entries                                   int
	bytes                                     int64
	disabled                                  bool
}

// Store is the content-addressed artifact cache. All methods are safe
// for concurrent use; produce functions run outside the store lock, so
// a production may itself fetch other artifacts (a cell result fetches
// its checkpoint, which fetches its image).
type Store struct {
	mu        sync.Mutex
	limit     int64
	bytes     int64
	entries   map[Key]*entry
	order     []Key // LRU order, least recently used first
	flight    map[Key]*call
	classes   map[Class]*classCounters
	evictHook func(EvictEvent)
}

// EvictEvent describes one entry dropped by the byte budget.
type EvictEvent struct {
	Key   Key
	Bytes int64
}

// SetEvictHook installs fn to observe evictions (nil disables). The hook
// runs with the store lock held, so it must return quickly and must not
// call back into the store.
func (s *Store) SetEvictHook(fn func(EvictEvent)) {
	s.mu.Lock()
	s.evictHook = fn
	s.mu.Unlock()
}

// addWait banks join-wait wall time against a class.
func (s *Store) addWait(c Class, d time.Duration) {
	s.mu.Lock()
	s.class(c).waitNanos += d.Nanoseconds()
	s.mu.Unlock()
}

// New returns an empty store evicting past limit bytes. The most
// recently used entry is never evicted, so one artifact larger than the
// whole budget still caches (and everything else goes).
func New(limit int64) *Store {
	return &Store{
		limit:   limit,
		entries: map[Key]*entry{},
		flight:  map[Key]*call{},
		classes: map[Class]*classCounters{},
	}
}

// class returns the counters of c, creating them on first use. Caller
// holds s.mu.
func (s *Store) class(c Class) *classCounters {
	cc, ok := s.classes[c]
	if !ok {
		cc = &classCounters{}
		s.classes[c] = cc
	}
	return cc
}

// touch moves k to the most-recently-used end of the LRU order. Caller
// holds s.mu.
func (s *Store) touch(k Key) {
	for i, o := range s.order {
		if o == k {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = k
			return
		}
	}
}

// Get returns the resident artifact for k, counting a hit or miss. A
// disabled class always misses.
func (s *Store) Get(k Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := s.class(k.Class)
	if cc.disabled {
		cc.misses++
		return nil, false
	}
	e, ok := s.entries[k]
	if !ok {
		cc.misses++
		return nil, false
	}
	cc.hits++
	s.touch(k)
	return e.v, true
}

// Put inserts v under k (replacing any previous value) and evicts LRU
// entries past the byte budget. Disabled classes drop the insert.
func (s *Store) Put(k Key, v any, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := s.class(k.Class)
	cc.produced++
	if cc.disabled {
		return
	}
	s.insert(k, v, bytes)
}

// insert stores the entry and enforces the budget. Caller holds s.mu.
func (s *Store) insert(k Key, v any, bytes int64) {
	if old, ok := s.entries[k]; ok {
		s.bytes -= old.bytes
		cc := s.class(k.Class)
		cc.bytes -= old.bytes
		cc.entries--
		s.touch(k)
	} else {
		s.order = append(s.order, k)
	}
	s.entries[k] = &entry{v: v, bytes: bytes}
	s.bytes += bytes
	cc := s.class(k.Class)
	cc.bytes += bytes
	cc.entries++
	s.evictPastLimitLocked()
}

// evictPastLimitLocked drops LRU entries until the budget is met,
// notifying the evict hook. Caller holds s.mu.
func (s *Store) evictPastLimitLocked() {
	for s.bytes > s.limit && len(s.order) > 1 {
		victim := s.order[0]
		s.order = s.order[1:]
		e := s.entries[victim]
		delete(s.entries, victim)
		s.bytes -= e.bytes
		vc := s.class(victim.Class)
		vc.bytes -= e.bytes
		vc.entries--
		vc.evictions++
		if s.evictHook != nil {
			s.evictHook(EvictEvent{Key: victim, Bytes: e.bytes})
		}
	}
}

// GetOrProduce returns the artifact for k, producing it at most once
// across concurrent callers: a resident value is a hit, an in-flight
// production is joined (Waited), and otherwise this caller runs produce
// and the result is stored. When k's class is disabled there is no
// residency and no flight-sharing — every caller produces privately,
// which is exactly what a deliberately cold run wants.
func (s *Store) GetOrProduce(k Key, produce func() (v any, bytes int64)) (any, Outcome) {
	s.mu.Lock()
	cc := s.class(k.Class)
	if cc.disabled {
		cc.misses++
		s.mu.Unlock()
		v, _ := produce()
		s.mu.Lock()
		s.class(k.Class).produced++
		s.mu.Unlock()
		return v, Outcome{}
	}
	if e, ok := s.entries[k]; ok {
		cc.hits++
		s.touch(k)
		v := e.v
		s.mu.Unlock()
		return v, Outcome{Hit: true}
	}
	cc.misses++
	if c, ok := s.flight[k]; ok {
		cc.waited++
		s.mu.Unlock()
		t0 := time.Now()
		<-c.done
		s.addWait(k.Class, time.Since(t0))
		return c.v, Outcome{Waited: true}
	}
	c := &call{done: make(chan struct{})}
	s.flight[k] = c
	s.mu.Unlock()

	v, bytes := produce()

	s.mu.Lock()
	cc = s.class(k.Class)
	cc.produced++
	if !cc.disabled { // the class may have been disabled mid-production
		s.insert(k, v, bytes)
	}
	delete(s.flight, k)
	s.mu.Unlock()
	c.v = v
	close(c.done)
	return v, Outcome{}
}

// Ticket is the handle of a split-phase lookup (Begin): either this
// caller owns the production slot and must Commit (or Abandon) it, or
// another caller is producing and Wait blocks for their value.
//
// Begin/Commit exist for the cohort driver: a cohort resolves K result
// keys up front, runs the claimed members together in lockstep, commits
// their results, and only then waits on the keys other workers had in
// flight. A plain GetOrProduce would force the cohort to nest K produce
// closures — or worse, deadlock when two members of one cohort share a
// content key (sweeps relabel identical configurations all the time).
type Ticket struct {
	s        *Store
	k        Key
	c        *call
	owner    bool
	disabled bool // class disabled: private production, no residency
	settled  bool
}

// Owner reports whether this caller holds the production slot.
func (t *Ticket) Owner() bool { return t.owner }

// Wait blocks until the owning caller commits, then returns the value.
// Only valid on non-owner tickets.
func (t *Ticket) Wait() any {
	t0 := time.Now()
	<-t.c.done
	t.s.addWait(t.k.Class, time.Since(t0))
	return t.c.v
}

// Commit publishes the produced value: it is inserted (unless the class
// is disabled), production is counted, and waiters wake. Only valid on
// owner tickets, once.
func (t *Ticket) Commit(v any, bytes int64) {
	if !t.owner || t.settled {
		panic("artifact: Commit on a non-owner or settled ticket")
	}
	t.settled = true
	s := t.s
	s.mu.Lock()
	cc := s.class(t.k.Class)
	cc.produced++
	if t.disabled {
		s.mu.Unlock()
		return
	}
	if !cc.disabled { // the class may have been disabled mid-production
		s.insert(t.k, v, bytes)
	}
	delete(s.flight, t.k)
	s.mu.Unlock()
	t.c.v = v
	close(t.c.done)
}

// Abandon releases an owner ticket without a value (the production
// failed): the flight is dropped and waiters wake with a nil value.
func (t *Ticket) Abandon() {
	if !t.owner || t.settled {
		return
	}
	t.settled = true
	if t.disabled {
		return
	}
	s := t.s
	s.mu.Lock()
	delete(s.flight, t.k)
	s.mu.Unlock()
	close(t.c.done)
}

// Begin is the split-phase form of GetOrProduce. It returns exactly one
// of three shapes, with the same counter semantics as GetOrProduce:
//
//   - resident value: (v, Outcome{Hit: true}, nil) — nothing to do;
//   - join: (nil, Outcome{Waited: true}, t) with !t.Owner() — call
//     t.Wait() for the value once convenient;
//   - claim: (nil, Outcome{}, t) with t.Owner() — produce the value,
//     then t.Commit it.
//
// When k's class is disabled every caller gets a private claim ticket
// (no residency, no flight-sharing), exactly like GetOrProduce.
func (s *Store) Begin(k Key) (any, Outcome, *Ticket) {
	s.mu.Lock()
	cc := s.class(k.Class)
	if cc.disabled {
		cc.misses++
		s.mu.Unlock()
		return nil, Outcome{}, &Ticket{s: s, k: k, owner: true, disabled: true}
	}
	if e, ok := s.entries[k]; ok {
		cc.hits++
		s.touch(k)
		v := e.v
		s.mu.Unlock()
		return v, Outcome{Hit: true}, nil
	}
	cc.misses++
	if c, ok := s.flight[k]; ok {
		cc.waited++
		s.mu.Unlock()
		return nil, Outcome{Waited: true}, &Ticket{s: s, k: k, c: c}
	}
	c := &call{done: make(chan struct{})}
	s.flight[k] = c
	s.mu.Unlock()
	return nil, Outcome{}, &Ticket{s: s, k: k, c: c, owner: true}
}

// SetClassEnabled toggles residency and flight-sharing for one class and
// returns the previous setting. Disabling purges the class's resident
// entries (a re-enabled class starts cold); counters are preserved.
func (s *Store) SetClassEnabled(c Class, on bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := s.class(c)
	prev := !cc.disabled
	cc.disabled = !on
	if !on {
		s.purgeLocked(c)
	}
	return prev
}

// Purge drops every resident entry of one class (counters kept).
func (s *Store) Purge(c Class) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked(c)
}

func (s *Store) purgeLocked(c Class) {
	keep := s.order[:0]
	for _, k := range s.order {
		if k.Class != c {
			keep = append(keep, k)
			continue
		}
		e := s.entries[k]
		delete(s.entries, k)
		s.bytes -= e.bytes
	}
	s.order = keep
	cc := s.class(c)
	cc.bytes = 0
	cc.entries = 0
}

// ResetStats zeroes one class's counters (resident entries stay).
func (s *Store) ResetStats(c Class) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cc := s.class(c)
	*cc = classCounters{disabled: cc.disabled, entries: cc.entries, bytes: cc.bytes}
}

// SetLimit changes the byte budget and applies it immediately.
func (s *Store) SetLimit(limit int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = limit
	s.evictPastLimitLocked()
}

// Limit returns the current byte budget.
func (s *Store) Limit() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// Bytes returns the resident bytes across all classes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots every class's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(Stats, len(s.classes))
	for c, cc := range s.classes {
		out[c] = ClassStats{
			Hits: cc.hits, Misses: cc.misses, Waited: cc.waited,
			WaitedNanos: cc.waitNanos,
			Produced:    cc.produced, Evictions: cc.evictions,
			Entries: cc.entries, Bytes: cc.bytes,
		}
	}
	return out
}

// Register publishes the store's counters into a metrics registry as
// computed gauges, named <prefix>.<class>.<counter>. The gauges read
// live state, so one registration keeps reporting forever.
func (s *Store) Register(reg *metrics.Registry, prefix string) {
	classes := Classes()
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		c := c
		stat := func(f func(ClassStats) int64) func() int64 {
			return func() int64 { return f(s.Stats()[c]) }
		}
		reg.GaugeFunc(prefix+"."+string(c)+".hits", "artifact store hits", stat(func(cs ClassStats) int64 { return cs.Hits }))
		reg.GaugeFunc(prefix+"."+string(c)+".misses", "artifact store misses", stat(func(cs ClassStats) int64 { return cs.Misses }))
		reg.GaugeFunc(prefix+"."+string(c)+".waited", "misses satisfied by joining an in-flight production", stat(func(cs ClassStats) int64 { return cs.Waited }))
		reg.GaugeFunc(prefix+"."+string(c)+".waited_ns", "cumulative wall time spent joining in-flight productions", stat(func(cs ClassStats) int64 { return cs.WaitedNanos }))
		reg.GaugeFunc(prefix+"."+string(c)+".produced", "artifacts produced", stat(func(cs ClassStats) int64 { return cs.Produced }))
		reg.GaugeFunc(prefix+"."+string(c)+".evictions", "entries evicted by the byte budget", stat(func(cs ClassStats) int64 { return cs.Evictions }))
		reg.GaugeFunc(prefix+"."+string(c)+".bytes", "resident bytes", stat(func(cs ClassStats) int64 { return cs.Bytes }))
		reg.GaugeFunc(prefix+"."+string(c)+".entries", "resident entries", stat(func(cs ClassStats) int64 { return int64(cs.Entries) }))
	}
}

package grid

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHTTPLifecycle drives the full API against a stub executor: submit
// by config name, stream NDJSON results, poll status, list, and observe
// the artifact/scheduler status payloads.
func TestHTTPLifecycle(t *testing.T) {
	s := New(Options{Workers: 2, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		return stubResult(req), sim.CellOutcome{Replayed: true}
	}})
	defer s.Shutdown()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/api/jobs", SubmitRequest{
		Name: "demo", Configs: []string{"inorder", "svr16"}, Workloads: []string{"Randacc"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	st := decode[JobStatus](t, resp)
	if st.ID == "" || st.Cells != 2 {
		t.Fatalf("submit response %+v", st)
	}

	// Stream results: NDJSON, one line per cell, closes at job end.
	resp2, err := http.Get(srv.URL + "/api/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results content-type %q", ct)
	}
	var cells []CellResult
	sc := bufio.NewScanner(resp2.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var c CellResult
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		cells = append(cells, c)
	}
	resp2.Body.Close()
	if len(cells) != 2 {
		t.Fatalf("streamed %d cells, want 2", len(cells))
	}
	labels := map[string]bool{}
	for i, c := range cells {
		if c.Seq != i || c.Workload != "Randacc" || !c.Replayed {
			t.Errorf("cell %d: %+v", i, c)
		}
		labels[c.Label] = true
	}
	if !labels["in-order"] || !labels["SVR16"] {
		t.Errorf("streamed labels %v", labels)
	}

	// Poll: the job is done with both cells accounted.
	st = decode[JobStatus](t, mustGet(t, srv.URL+"/api/jobs/"+st.ID))
	if st.State != StateDone || st.Done != 2 || st.ReplayedCells != 2 {
		t.Errorf("poll %+v", st)
	}

	// List and service status.
	jobs := decode[[]JobStatus](t, mustGet(t, srv.URL+"/api/jobs"))
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Errorf("list %+v", jobs)
	}
	payload := decode[StatusPayload](t, mustGet(t, srv.URL+"/api/status"))
	if len(payload.Jobs) != 1 || payload.Jobs[0].State != StateDone {
		t.Errorf("status payload jobs %+v", payload.Jobs)
	}
	if payload.Artifacts == nil {
		t.Error("status payload has no artifact stats")
	}

	// Cancel after completion is a conflict; unknown jobs are 404.
	if resp := postJSON(t, srv.URL+"/api/jobs/"+st.ID+"/cancel", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel done job: status %d", resp.StatusCode)
	}
	if resp := mustGet(t, srv.URL+"/api/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	// Bad submissions are 400s.
	if resp := postJSON(t, srv.URL+"/api/jobs", SubmitRequest{Configs: []string{"warpdrive"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad config name: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/api/jobs", SubmitRequest{Configs: []string{"svr16"}, Preset: "huge"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad preset: status %d", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPSSE: the SSE framing wraps each cell in an event and finishes
// with a done event carrying the job status.
func TestHTTPSSE(t *testing.T) {
	s := New(Options{Workers: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		return stubResult(req), sim.CellOutcome{}
	}})
	defer s.Shutdown()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st := decode[JobStatus](t, postJSON(t, srv.URL+"/api/jobs", SubmitRequest{
		Configs: []string{"imp"}, Workloads: []string{"Randacc"},
	}))
	resp := mustGet(t, srv.URL+"/api/jobs/"+st.ID+"/results?format=sse")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content-type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "event: cell\ndata: ") {
		t.Errorf("SSE body missing cell event:\n%s", body)
	}
	if !strings.Contains(body, "event: done\ndata: ") {
		t.Errorf("SSE body missing done event:\n%s", body)
	}
}

// TestHTTPBackpressure: a submission that overflows the queue is a 429
// with Retry-After and enqueues nothing.
func TestHTTPBackpressure(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Options{Workers: 1, QueueCap: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		started <- struct{}{}
		<-release
		return stubResult(req), sim.CellOutcome{}
	}})
	defer func() { close(release); s.Shutdown() }()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp := postJSON(t, srv.URL+"/api/jobs", SubmitRequest{
		Configs: []string{"inorder"}, Workloads: []string{"Randacc"},
	}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pin submit status %d", resp.StatusCode)
	}
	<-started // worker busy; capacity 1 remains
	resp := postJSON(t, srv.URL+"/api/jobs", SubmitRequest{
		Configs: []string{"inorder", "imp"}, Workloads: []string{"Randacc"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
	if d := s.QueueDepth(); d != 0 {
		t.Errorf("rejected submission left %d queued cells", d)
	}
}

// TestHTTPCancelResume exercises cancel/resume over the API while cells
// are in flight.
func TestHTTPCancelResume(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := New(Options{Workers: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		started <- struct{}{}
		<-release
		return stubResult(req), sim.CellOutcome{}
	}})
	defer s.Shutdown()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st := decode[JobStatus](t, postJSON(t, srv.URL+"/api/jobs", SubmitRequest{
		Configs: []string{"inorder", "imp", "ooo"}, Workloads: []string{"Randacc"},
	}))
	<-started
	cst := decode[JobStatus](t, postJSON(t, srv.URL+"/api/jobs/"+st.ID+"/cancel", nil))
	if cst.State != StateCanceled {
		t.Fatalf("cancel response %+v", cst)
	}
	release <- struct{}{} // drain the running cell

	j, _ := s.Job(st.ID)
	j.Wait()
	rst := decode[JobStatus](t, postJSON(t, srv.URL+"/api/jobs/"+st.ID+"/resume", nil))
	if rst.State != StateRunning && rst.State != StateDone {
		t.Fatalf("resume response %+v", rst)
	}
	for i := 0; i < 2; i++ {
		<-started
		release <- struct{}{}
	}
	deadline := time.After(5 * time.Second)
	for {
		if fst := decode[JobStatus](t, mustGet(t, srv.URL+"/api/jobs/"+st.ID)); fst.State == StateDone {
			if fst.Done != 3 {
				t.Fatalf("resumed job finished %d cells, want 3", fst.Done)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("resumed job never finished")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

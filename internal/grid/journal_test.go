package grid

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestJournalEventWireFormat: the hand-rolled renderer must agree byte
// for byte with encoding/json on the same struct tags, including the
// omitempty handling, so ValidateJournal's strict decode round-trips.
func TestJournalEventWireFormat(t *testing.T) {
	events := []JournalEvent{
		{TS: 0, Ev: EvJobSubmit, Job: "job-1", N: 16, Note: "smoke"},
		{TS: 12, Ev: EvCellQueue, Job: "job-1", Cell: "SVR16/BFS_KR"},
		{TS: 345, Ev: EvCellStart, Job: "job-1", Cell: "SVR16/BFS_KR", Seq: 3, Worker: 2, DurNS: 1500},
		{TS: 400, Ev: EvCellPhase, Cell: "SVR16/BFS_KR", Phase: "timing", DurNS: 99},
		{TS: 401, Ev: EvArtifactHit, Cell: `a"b/c`, Class: "result", Key: "k1", DurNS: 7},
		{TS: 500, Ev: EvArtifactEvict, Class: "stream", Key: "k2", N: 1 << 20},
		{TS: 600, Ev: EvCohortStart, Job: "job-1", Worker: 1, N: 4},
	}
	for _, ev := range events {
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSON(nil, ev)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSON(%+v)\n got %s\nwant %s", ev, got, want)
		}
		var back JournalEvent
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", got, err)
		}
		if !reflect.DeepEqual(back, ev) {
			t.Errorf("round trip changed event:\n got %+v\nwant %+v", back, ev)
		}
	}
}

// TestJournalCapture: the ring keeps the last N events in order, the
// unbounded mode keeps everything, and timestamps never go backwards.
func TestJournalCapture(t *testing.T) {
	j := NewJournal(JournalConfig{Capture: 4})
	for i := 0; i < 10; i++ {
		j.record(JournalEvent{Ev: EvJobCancel, Job: "job-" + string(rune('0'+i))})
	}
	got := j.Events()
	if len(got) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := "job-" + string(rune('6'+i)); ev.Job != want {
			t.Errorf("ring[%d] = %s, want %s", i, ev.Job, want)
		}
		if i > 0 && ev.TS < got[i-1].TS {
			t.Errorf("timestamps regress: %d after %d", ev.TS, got[i-1].TS)
		}
	}

	all := NewJournal(JournalConfig{Capture: -1})
	for i := 0; i < 10; i++ {
		all.record(JournalEvent{Ev: EvJobCancel, Job: "j"})
	}
	if n := len(all.Events()); n != 10 {
		t.Errorf("unbounded capture kept %d events, want 10", n)
	}

	off := NewJournal(JournalConfig{})
	off.record(JournalEvent{Ev: EvJobCancel, Job: "j"})
	if off.Captures() || len(off.Events()) != 0 {
		t.Error("capture-off journal retained events")
	}
}

// TestJournalSchedulerLifecycle: a job through a stub scheduler produces
// the documented event sequence, streamed as schema-valid JSONL.
func TestJournalSchedulerLifecycle(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(JournalConfig{Writer: &buf, Capture: -1})
	SetJournal(j)
	defer SetJournal(nil)

	s := New(Options{Workers: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		return stubResult(req), sim.CellOutcome{}
	}})
	defer s.Shutdown()
	job, err := s.Submit(JobRequest{Name: "lifecycle", Configs: labeled("A"),
		Workloads: []string{"Randacc", "HJ2"}})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	// Wait returns from inside finishCell; the worker's cell.finish
	// emission happens after it. Drain the pool before reading events.
	s.Shutdown()
	SetJournal(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, ev := range j.Events() {
		counts[ev.Ev]++
	}
	want := map[string]int{EvJobSubmit: 1, EvCellQueue: 2, EvCellStart: 2, EvCellFinish: 2, EvJobDone: 1}
	for ev, n := range want {
		if counts[ev] != n {
			t.Errorf("%s count = %d, want %d (all: %v)", ev, counts[ev], n, counts)
		}
	}

	sum, err := ValidateJournal(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("streamed journal fails its own schema: %v", err)
	}
	if sum.Lines != len(j.Events()) {
		t.Errorf("streamed %d lines, captured %d events", sum.Lines, len(j.Events()))
	}
	if sum.Events[EvJobDone] != 1 {
		t.Errorf("validator counted %d job.done, want 1", sum.Events[EvJobDone])
	}
}

// TestValidateJournalRejects: each malformed line is reported with its
// line number.
func TestValidateJournalRejects(t *testing.T) {
	cases := map[string]string{
		"unknown event":  `{"ts":1,"ev":"cell.explode"}`,
		"unknown field":  `{"ts":1,"ev":"job.done","job":"j","bogus":3}`,
		"missing job":    `{"ts":1,"ev":"job.done"}`,
		"missing worker": `{"ts":1,"ev":"cell.start","job":"j","cell":"a/b"}`,
		"bad phase":      `{"ts":1,"ev":"cell.phase","cell":"a/b","phase":"warp"}`,
		"bad class":      `{"ts":1,"ev":"artifact.hit","class":"tape"}`,
		"narrow cohort":  `{"ts":1,"ev":"cohort.start","job":"j","worker":1,"n":1}`,
		"ts regression":  "{\"ts\":5,\"ev\":\"job.cancel\",\"job\":\"j\"}\n{\"ts\":4,\"ev\":\"job.cancel\",\"job\":\"j\"}",
	}
	for name, stream := range cases {
		if _, err := ValidateJournal(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: validator accepted %q", name, stream)
		}
	}
	if _, err := ValidateJournal(strings.NewReader("")); err != nil {
		t.Errorf("empty stream rejected: %v", err)
	}
}

// TestJournalEmitOffDoesNotAllocate: with no journal installed the
// scheduler-side emission guard must stay allocation-free — the
// observability-off hot path costs one atomic load.
func TestJournalEmitOffDoesNotAllocate(t *testing.T) {
	SetJournal(nil)
	ev := JournalEvent{Ev: EvCellFinish, Job: "j", Cell: "a/b", Worker: 1}
	if n := testing.AllocsPerRun(1000, func() {
		if journalActive() {
			journalEmit(ev)
		}
	}); n != 0 {
		t.Errorf("journal-off emission allocates %.1f times per call", n)
	}
}

// TestJobEvents: the per-job filter keeps the job's lifecycle events and
// its cells' anonymous phase/artifact events, and drops everything else.
func TestJobEvents(t *testing.T) {
	events := []JournalEvent{
		{Ev: EvJobSubmit, Job: "job-1"},
		{Ev: EvJobSubmit, Job: "job-2"},
		{Ev: EvCellStart, Job: "job-1", Cell: "A/w", Worker: 1},
		{Ev: EvCellStart, Job: "job-2", Cell: "B/w", Worker: 2},
		{Ev: EvCellPhase, Cell: "A/w", Phase: "timing", DurNS: 5},
		{Ev: EvCellPhase, Cell: "B/w", Phase: "timing", DurNS: 5},
		{Ev: EvArtifactEvict, Class: "stream", Key: "k", N: 9},
		{Ev: EvCellFinish, Job: "job-1", Cell: "A/w", Worker: 1},
	}
	got := JobEvents(events, "job-1")
	if len(got) != 4 {
		t.Fatalf("JobEvents kept %d events, want 4: %+v", len(got), got)
	}
	for _, ev := range got {
		if ev.Job == "job-2" || ev.Cell == "B/w" || ev.Ev == EvArtifactEvict {
			t.Errorf("foreign event leaked into job-1 view: %+v", ev)
		}
	}
}

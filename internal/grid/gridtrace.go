package grid

import (
	"io"
	"strconv"

	"repro/internal/trace"
)

// Grid trace export: render a journal event stream as a Chrome/Perfetto
// timeline of the scheduler itself — workers as tracks, cells as slices
// with their phase decomposition nested inside, flow arrows from the
// cell that produced an artifact to every cell the store served it to,
// jobs and cohorts as async spans. Journal nanoseconds become trace
// microseconds (the format's native unit).

// tidScheduler is the track for job lifecycle and store-global events;
// workers use their 1-based ids as tids.
const tidScheduler = 0

// phaseSeg is one buffered cell.phase segment, laid out when the cell's
// extent is known.
type phaseSeg struct {
	name string
	dur  int64 // µs
}

// openCell tracks a started, not yet finished cell.
type openCell struct {
	name   string
	job    string
	worker int
	start  int64 // µs
	phases []phaseSeg
}

type cellKey struct {
	job string
	seq int
}

// WriteTrace renders events (chronological, as returned by
// Journal.Events) as a Chrome trace. cell.phase and artifact.* events
// carry only a cell name, not a job/worker identity; they attach to the
// most recently started open cell of that name — exact whenever equally
// named cells of different jobs do not overlap, a best-effort guess when
// they do.
func WriteTrace(w io.Writer, events []JournalEvent) error {
	b := trace.NewChromeBuilder("svrsim grid")
	b.Thread(tidScheduler, "scheduler")
	workers := map[int]bool{}
	for _, ev := range events {
		if ev.Worker > 0 && !workers[ev.Worker] {
			workers[ev.Worker] = true
			b.Thread(ev.Worker, "worker "+strconv.Itoa(ev.Worker))
		}
	}

	var (
		nextID     uint64
		jobSpan    = map[string]uint64{}
		open       = map[cellKey]*openCell{}
		byName     = map[string][]*openCell{}
		flows      = map[string]uint64{} // produced artifact → flow id
		cohortSpan = map[int]uint64{}    // worker → open cohort span id
	)
	newID := func() uint64 { nextID++; return nextID }
	us := func(ns int64) int64 { return ns / 1000 }
	// locate resolves a cell-named event to its open cell (nil if none).
	locate := func(name string) *openCell {
		if s := byName[name]; len(s) > 0 {
			return s[len(s)-1]
		}
		return nil
	}

	for _, ev := range events {
		ts := us(ev.TS)
		switch ev.Ev {
		case EvJobSubmit:
			id := newID()
			jobSpan[ev.Job] = id
			b.AsyncBegin(tidScheduler, "job "+ev.Job, "job", ts, id,
				map[string]any{"name": ev.Note, "cells": ev.N})
		case EvJobDone:
			if id, ok := jobSpan[ev.Job]; ok {
				b.AsyncEnd(tidScheduler, "job "+ev.Job, "job", ts, id, nil)
				delete(jobSpan, ev.Job)
			}
		case EvJobCancel, EvJobResume:
			b.Instant(tidScheduler, ev.Ev+" "+ev.Job, "job", ts, nil)

		case EvCellStart:
			oc := &openCell{name: ev.Cell, job: ev.Job, worker: ev.Worker, start: ts}
			open[cellKey{ev.Job, ev.Seq}] = oc
			byName[ev.Cell] = append(byName[ev.Cell], oc)
		case EvCellPhase:
			if oc := locate(ev.Cell); oc != nil {
				oc.phases = append(oc.phases, phaseSeg{name: ev.Phase, dur: us(ev.DurNS)})
			}
		case EvCellFinish:
			k := cellKey{ev.Job, ev.Seq}
			oc := open[k]
			if oc == nil {
				// cell.start fell off the capture ring: reconstruct the
				// extent from the reported wall time.
				oc = &openCell{name: ev.Cell, job: ev.Job, worker: ev.Worker,
					start: ts - us(ev.DurNS)}
			}
			b.Slice(oc.worker, oc.name, "cell", oc.start, ts-oc.start,
				map[string]any{"job": ev.Job, "outcome": ev.Note})
			// Phase widths are exact attributions; positions are a
			// cumulative layout from the cell's start, clamped to its
			// extent so the nesting stays valid.
			cursor := oc.start
			for _, seg := range oc.phases {
				if cursor >= ts {
					break
				}
				d := seg.dur
				if cursor+d > ts {
					d = ts - cursor
				}
				b.Slice(oc.worker, seg.name, "phase", cursor, d, nil)
				cursor += d
				if d < 1 {
					cursor++ // Slice clamps to 1 µs; keep siblings disjoint
				}
			}
			delete(open, k)
			if s := byName[ev.Cell]; len(s) > 0 {
				for i := len(s) - 1; i >= 0; i-- {
					if s[i] == oc {
						byName[ev.Cell] = append(s[:i], s[i+1:]...)
						break
					}
				}
			}

		case EvCohortStart:
			id := newID()
			cohortSpan[ev.Worker] = id
			b.AsyncBegin(ev.Worker, "cohort×"+strconv.FormatInt(ev.N, 10), "cohort",
				ts, id, map[string]any{"width": ev.N})
		case EvCohortFinish:
			if id, ok := cohortSpan[ev.Worker]; ok {
				b.AsyncEnd(ev.Worker, "cohort×"+strconv.FormatInt(ev.N, 10), "cohort",
					ts, id, nil)
				delete(cohortSpan, ev.Worker)
			}

		case EvArtifactHit, EvArtifactJoin, EvArtifactProd:
			tid := tidScheduler
			if oc := locate(ev.Cell); oc != nil {
				tid = oc.worker
			}
			b.Instant(tid, ev.Ev+" "+ev.Class, "artifact", ts,
				map[string]any{"key": ev.Key, "dur_us": us(ev.DurNS)})
			fk := ev.Class + ":" + ev.Key
			if ev.Ev == EvArtifactProd {
				id := newID()
				flows[fk] = id
				b.FlowStart(tid, "artifact "+ev.Class, "artifact", ts, id)
			} else if id, ok := flows[fk]; ok {
				// One production fans out to every later consumer.
				b.FlowEnd(tid, "artifact "+ev.Class, "artifact", ts, id)
			}
		case EvArtifactEvict:
			b.Instant(tidScheduler, "evict "+ev.Class, "artifact", ts,
				map[string]any{"key": ev.Key, "bytes": ev.N})
		}
	}
	return b.Write(w)
}

// JobEvents filters a journal stream down to one job: its own lifecycle
// events plus the job-anonymous cell.phase/artifact.* events belonging to
// its cells (matched by cell name). Store-global events (evictions) are
// excluded.
func JobEvents(events []JournalEvent, jobID string) []JournalEvent {
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Job == jobID && ev.Cell != "" {
			names[ev.Cell] = true
		}
	}
	var out []JournalEvent
	for _, ev := range events {
		switch {
		case ev.Job == jobID:
			out = append(out, ev)
		case ev.Job == "" && ev.Cell != "" && names[ev.Cell]:
			out = append(out, ev)
		}
	}
	return out
}

// Package grid is the multi-tenant service layer over the simulation
// scheduler core: jobs (config × workload grids) enter a bounded
// priority queue, expand into cells, and execute on a shared worker pool
// through sim.ExecuteCell — so concurrent jobs deduplicate against each
// other via the unified artifact store (overlapping tenants share cell
// results, checkpoints and recorded streams). The same scheduler backs
// the in-process CLI subcommands (as the installed sim matrix runner)
// and `svrsim serve`'s HTTP API.
package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// Options configures a Scheduler.
type Options struct {
	// Workers is the size of the cell worker pool (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the number of queued cells across all jobs
	// (default 4096); Submit returns *ErrQueueFull past it.
	QueueCap int
	// Execute runs one cell (default sim.ExecuteCell; tests inject a
	// stub to exercise scheduling without simulating).
	Execute func(sim.CellRequest, *sim.Tracker) (sim.Result, sim.CellOutcome)
	// ExecuteGroup runs one schedulable group — a timing cohort of
	// sibling cells stepped in lockstep, or a single cell. Default
	// sim.ExecuteCohort; when only Execute is injected, groups fall
	// back to a per-cell loop over it.
	ExecuteGroup func([]sim.CellRequest, *sim.Tracker) ([]sim.Result, []sim.CellOutcome)
}

// Scheduler owns the queue, the worker pool and the job table.
type Scheduler struct {
	opts  Options
	group bool // plan cohort groups (false when only a per-cell Execute stub is injected)
	q     *queue

	obs *schedMetrics // queue-wait and per-phase latency histograms

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int
	closed bool

	wg sync.WaitGroup // worker pool
}

// New starts a scheduler with opts defaults filled in.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 4096
	}
	// A per-cell Execute stub (tests) keeps per-cell scheduling: cells
	// queue and cancel one at a time, exactly as before cohorts. The
	// real executor — or an injected ExecuteGroup — schedules whole
	// cohorts as units.
	group := opts.ExecuteGroup != nil || opts.Execute == nil
	if opts.ExecuteGroup == nil {
		if opts.Execute != nil {
			ex := opts.Execute
			opts.ExecuteGroup = func(reqs []sim.CellRequest, tr *sim.Tracker) ([]sim.Result, []sim.CellOutcome) {
				results := make([]sim.Result, len(reqs))
				outs := make([]sim.CellOutcome, len(reqs))
				for i, r := range reqs {
					results[i], outs[i] = ex(r, tr)
				}
				return results, outs
			}
		} else {
			opts.ExecuteGroup = sim.ExecuteCohort
		}
	}
	if opts.Execute == nil {
		opts.Execute = sim.ExecuteCell
	}
	s := &Scheduler{
		opts:  opts,
		group: group,
		q:     newQueue(opts.QueueCap),
		jobs:  map[string]*Job{},
		obs:   newSchedMetrics(),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i + 1) // 1-based worker ids; 0 is the scheduler track
	}
	return s
}

func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for {
		it, ok := s.q.pop()
		if !ok {
			return
		}
		job := it.job
		wait := time.Since(it.at)
		var (
			started []int
			reqs    []sim.CellRequest
			tr      *sim.Tracker
		)
		for _, cell := range it.cells {
			req, t, ok := job.startCell(cell)
			if !ok {
				continue // canceled after queueing; the cell stays pending
			}
			started = append(started, cell)
			reqs = append(reqs, req)
			tr = t
			s.obs.observeQueueWait(wait)
			if journalActive() {
				journalEmit(JournalEvent{Ev: EvCellStart, Job: job.ID,
					Cell: cellName(req.Cfg.Label, req.Spec.Name), Seq: cell,
					Worker: id, DurNS: wait.Nanoseconds()})
			}
		}
		if len(started) == 0 {
			continue
		}
		cohort := len(started) > 1
		if cohort && journalActive() {
			journalEmit(JournalEvent{Ev: EvCohortStart, Job: job.ID,
				Worker: id, N: int64(len(started))})
		}
		t0 := time.Now()
		// A partially-canceled cohort shrinks to its surviving members;
		// they are still siblings, so lockstep execution stays valid.
		results, outs := s.opts.ExecuteGroup(reqs, tr)
		if cohort && journalActive() {
			journalEmit(JournalEvent{Ev: EvCohortFinish, Job: job.ID,
				Worker: id, N: int64(len(started)), DurNS: time.Since(t0).Nanoseconds()})
		}
		for k, cell := range started {
			s.obs.observeCell(outs[k].Phases)
			sim.EmitProgress(job.finishCell(cell, results[k], outs[k]))
			if journalActive() {
				journalEmit(JournalEvent{Ev: EvCellFinish, Job: job.ID,
					Cell: cellName(reqs[k].Cfg.Label, reqs[k].Spec.Name), Seq: cell,
					Worker: id, DurNS: outs[k].Wall.Nanoseconds(),
					Note: outcomeNote(outs[k])})
			}
		}
	}
}

// outcomeNote summarizes how a cell was satisfied for the journal.
func outcomeNote(out sim.CellOutcome) string {
	switch {
	case out.Cached:
		return "cached"
	case out.Shared:
		return "shared"
	case out.Replayed:
		return "replayed"
	}
	return "simulated"
}

// plan turns cell indexes (nil means all) into queue groups: timing
// cohorts for the real executor, one cell per group for per-cell stubs.
func (s *Scheduler) plan(cells []sim.CellRequest, idx []int) [][]int {
	if s.group {
		return sim.PlanCohorts(cells, idx)
	}
	if idx == nil {
		idx = make([]int, len(cells))
		for i := range idx {
			idx[i] = i
		}
	}
	groups := make([][]int, len(idx))
	for k, i := range idx {
		groups[k] = []int{i}
	}
	return groups
}

// JobRequest is a submission: a grid of full machine configurations
// against named workloads. Configuration labels must be unique within
// one job (they key the result rows).
type JobRequest struct {
	Name      string
	Priority  int // higher runs first
	Configs   []sim.Config
	Workloads []string
	Params    sim.Params
}

// ResolveWorkloads maps workload names to specs (any registered
// workload: evaluation set, SPEC proxies, microbenchmarks).
func ResolveWorkloads(names []string) ([]workloads.Spec, error) {
	specs := make([]workloads.Spec, 0, len(names))
	for _, n := range names {
		sp, err := workloads.Get(n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// ParseConfig resolves a named machine configuration: "inorder"
// ("in-order"), "imp", "ooo" ("out-of-order"), or "svrN" for SVR with
// vector length N (e.g. "svr16").
func ParseConfig(name string) (sim.Config, error) {
	switch strings.ToLower(name) {
	case "inorder", "in-order":
		return sim.MachineConfig(sim.InO), nil
	case "imp":
		return sim.MachineConfig(sim.IMP), nil
	case "ooo", "out-of-order":
		return sim.MachineConfig(sim.OoO), nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(name), "svr"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n > 0 {
			return sim.SVRConfig(n), nil
		}
	}
	return sim.Config{}, fmt.Errorf("grid: unknown config %q (want inorder, imp, ooo, or svrN)", name)
}

// Submit validates a request, expands it into cells and enqueues them.
// It returns *ErrQueueFull (nothing enqueued) when the queue cannot take
// the whole job.
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("grid: job has no configs")
	}
	specs, err := ResolveWorkloads(req.Workloads)
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("grid: job has no workloads")
	}
	seen := map[string]bool{}
	for _, c := range req.Configs {
		if seen[c.Label] {
			return nil, fmt.Errorf("grid: duplicate config label %q", c.Label)
		}
		seen[c.Label] = true
	}
	return s.submit(req.Name, req.Priority, req.Configs, specs, req.Params)
}

func (s *Scheduler) submit(name string, pri int, cfgs []sim.Config, specs []workloads.Spec, p sim.Params) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("grid: scheduler is shut down")
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	job := newJob(id, name, pri, cfgs, specs, p)
	job.tracker = sim.NewTracker(len(job.cells))
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()

	job.mu.Lock()
	for i := range job.cells {
		job.queued[i] = struct{}{}
	}
	job.mu.Unlock()
	// Adjacent replay-eligible siblings queue as one lockstep cohort.
	if err := s.q.push(job, s.plan(job.cells, nil)); err != nil {
		job.mu.Lock()
		job.queued = map[int]struct{}{}
		job.closeTrackerLocked()
		job.mu.Unlock()
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, err
	}
	if journalActive() {
		journalEmit(JournalEvent{Ev: EvJobSubmit, Job: id,
			N: int64(len(job.cells)), Note: name})
		for i, c := range job.cells {
			journalEmit(JournalEvent{Ev: EvCellQueue, Job: id,
				Cell: cellName(c.Cfg.Label, c.Spec.Name), Seq: i})
		}
	}
	return job, nil
}

// RunMatrix is the blocking in-process client: submit and wait. It has
// the sim.MatrixRunner signature, so the CLI installs it to route every
// experiment matrix through this scheduler. If the queue cannot take the
// grid, it falls back to the local pool rather than failing the CLI.
func (s *Scheduler) RunMatrix(cfgs []sim.Config, specs []workloads.Spec, p sim.Params) *sim.ResultSet {
	job, err := s.submit("", 0, cfgs, specs, p)
	if err != nil {
		return sim.RunMatrixLocal(cfgs, specs, p)
	}
	return job.Wait()
}

// Job looks up a job by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel stops a job: queued cells are dropped (they stay pending for a
// later Resume), running cells finish — their results are deterministic
// and may be shared with other jobs in flight, so abandoning them would
// waste work the store can reuse.
func (s *Scheduler) Cancel(id string) error {
	job, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("grid: no job %q", id)
	}
	job.mu.Lock()
	if job.state == StateDone || job.state == StateCanceled {
		st := job.state
		job.mu.Unlock()
		return fmt.Errorf("grid: job %s is already %s", id, st)
	}
	job.state = StateCanceled
	job.mu.Unlock()

	s.q.remove(job)
	job.mu.Lock()
	job.queued = map[int]struct{}{}
	if len(job.running) == 0 {
		job.closeTrackerLocked()
	}
	job.cond.Broadcast()
	job.mu.Unlock()
	journalEmit(JournalEvent{Ev: EvJobCancel, Job: id})
	return nil
}

// Resume re-enqueues a canceled job's unfinished cells (under its
// original priority). Finished cells are kept; typically they — and
// anything overlapping jobs produced meanwhile — come straight back out
// of the artifact store.
func (s *Scheduler) Resume(id string) error {
	job, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("grid: no job %q", id)
	}
	job.mu.Lock()
	if job.state != StateCanceled {
		st := job.state
		job.mu.Unlock()
		return fmt.Errorf("grid: job %s is %s, not canceled", id, st)
	}
	todo := job.unqueuedLocked()
	sort.Ints(todo)
	if len(todo) == 0 && len(job.running) == 0 && len(job.pending) == 0 {
		job.state = StateDone
		job.finished = job.submitted
		job.mu.Unlock()
		return nil
	}
	job.state = StateRunning
	if job.trackerClosed {
		// A fresh tracker sized to the remainder; if cells of the
		// canceled run are still draining, the original tracker is
		// still open and keeps serving both.
		job.tracker = sim.NewTracker(len(todo))
		job.trackerClosed = false
	}
	for _, i := range todo {
		job.queued[i] = struct{}{}
	}
	job.mu.Unlock()

	if err := s.q.push(job, s.plan(job.cells, todo)); err != nil {
		job.mu.Lock()
		job.state = StateCanceled
		job.queued = map[int]struct{}{}
		if len(job.running) == 0 {
			job.closeTrackerLocked()
		}
		job.mu.Unlock()
		return err
	}
	if journalActive() {
		journalEmit(JournalEvent{Ev: EvJobResume, Job: id, N: int64(len(todo))})
		for _, i := range todo {
			c := job.cells[i]
			journalEmit(JournalEvent{Ev: EvCellQueue, Job: id,
				Cell: cellName(c.Cfg.Label, c.Spec.Name), Seq: i})
		}
	}
	return nil
}

// QueueDepth returns the number of cells waiting in the queue.
func (s *Scheduler) QueueDepth() int { return s.q.depth() }

// Shutdown drains the scheduler: no new submissions, queued cells are
// abandoned where they are (SaveState persists them), running cells
// finish. It blocks until the worker pool exits, then wakes every
// streaming/waiting client.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.q.close()
	s.wg.Wait()
	for _, j := range s.Jobs() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// persistedJob is the on-disk form of an unfinished job: enough to
// resubmit it (results live only in the in-memory store, so a restarted
// job re-executes; warm artifacts make that cheap when anything
// overlapping ran since).
type persistedJob struct {
	Name      string `json:",omitempty"`
	Priority  int    `json:",omitempty"`
	Configs   []sim.Config
	Workloads []string
	Params    sim.Params
}

type persistedState struct {
	Jobs []persistedJob
}

// SaveState writes every unfinished job to path (overwriting), so a
// restarted server can resubmit them. Call after Shutdown.
func (s *Scheduler) SaveState(path string) error {
	var st persistedState
	for _, j := range s.Jobs() {
		j.mu.Lock()
		unfinished := len(j.pending) > 0 && j.state != StateCanceled
		if unfinished {
			pj := persistedJob{Name: j.Name, Priority: j.Priority, Configs: j.cfgs, Params: j.params}
			for _, sp := range j.specs {
				pj.Workloads = append(pj.Workloads, sp.Name)
			}
			st.Jobs = append(st.Jobs, pj)
		}
		j.mu.Unlock()
	}
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadState resubmits the jobs persisted at path. A missing file is not
// an error (nothing to restore). Returns the number of restored jobs.
func (s *Scheduler) LoadState(path string) (int, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var st persistedState
	if err := json.Unmarshal(blob, &st); err != nil {
		return 0, fmt.Errorf("grid: corrupt state file %s: %w", path, err)
	}
	n := 0
	for _, pj := range st.Jobs {
		if _, err := s.Submit(JobRequest(pj)); err != nil {
			return n, fmt.Errorf("grid: restoring job %q: %w", pj.Name, err)
		}
		n++
	}
	return n, nil
}

package grid

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The lifecycle journal is the scheduler's structured event stream: every
// decision the grid service makes — jobs entering and leaving, cells
// moving through their phases, the artifact store serving or evicting —
// becomes one JSONL line with a monotonic timestamp. The stream is the
// ground truth the Perfetto grid trace (gridtrace.go) and the phase
// attribution surfaces render from; with no journal installed, every
// emission site is a single atomic nil check.

// Journal event vocabulary. Field usage per family:
//
//	job.submit    {job, n: cells, note: job name}
//	job.cancel    {job}
//	job.resume    {job, n: re-enqueued cells}
//	job.done      {job, dur_ns: submit→finish wall}
//	cell.queue    {job, cell, seq}
//	cell.start    {job, cell, seq, worker, dur_ns: queue wait}
//	cell.finish   {job, cell, seq, worker, dur_ns: wall, note: outcome}
//	cell.phase    {cell, phase, dur_ns}
//	cohort.start  {job, worker, n: width}
//	cohort.finish {job, worker, n: width, dur_ns}
//	artifact.hit / artifact.join / artifact.produce
//	              {cell, class, key, dur_ns}
//	artifact.evict{class, key, n: bytes}
//
// cell.phase and artifact.* events come from inside cell execution, which
// does not know its job or worker; they carry only the cell name
// ("label/workload") and the trace renderer re-associates them with the
// most recently started matching cell.
const (
	EvJobSubmit     = "job.submit"
	EvJobCancel     = "job.cancel"
	EvJobResume     = "job.resume"
	EvJobDone       = "job.done"
	EvCellQueue     = "cell.queue"
	EvCellStart     = "cell.start"
	EvCellFinish    = "cell.finish"
	EvCellPhase     = "cell.phase"
	EvCohortStart   = "cohort.start"
	EvCohortFinish  = "cohort.finish"
	EvArtifactHit   = "artifact.hit"
	EvArtifactJoin  = "artifact.join"
	EvArtifactProd  = "artifact.produce"
	EvArtifactEvict = "artifact.evict"
)

// JournalEvent is one journal line. TS is nanoseconds since the journal
// opened, monotonic and nondecreasing across the whole stream. Zero-value
// fields are omitted on the wire and read back as zero — no information
// is lost because the zero is the value.
type JournalEvent struct {
	TS     int64  `json:"ts"`
	Ev     string `json:"ev"`
	Job    string `json:"job,omitempty"`
	Cell   string `json:"cell,omitempty"` // "label/workload"
	Seq    int    `json:"seq,omitempty"`  // cell index within the job grid
	Worker int    `json:"worker,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Class  string `json:"class,omitempty"`
	Key    string `json:"key,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`
	N      int64  `json:"n,omitempty"`
	Note   string `json:"note,omitempty"`
}

// appendJSON renders ev exactly as encoding/json would (same field order,
// same omitempty semantics) without an allocation per event.
func appendJSON(b []byte, ev JournalEvent) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, ev.TS, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev.Ev)
	appendStr := func(name, v string) {
		if v != "" {
			b = append(b, ',', '"')
			b = append(b, name...)
			b = append(b, '"', ':')
			b = strconv.AppendQuote(b, v)
		}
	}
	appendInt := func(name string, v int64) {
		if v != 0 {
			b = append(b, ',', '"')
			b = append(b, name...)
			b = append(b, '"', ':')
			b = strconv.AppendInt(b, v, 10)
		}
	}
	appendStr("job", ev.Job)
	appendStr("cell", ev.Cell)
	appendInt("seq", int64(ev.Seq))
	appendInt("worker", int64(ev.Worker))
	appendStr("phase", ev.Phase)
	appendStr("class", ev.Class)
	appendStr("key", ev.Key)
	appendInt("dur_ns", ev.DurNS)
	appendInt("n", ev.N)
	appendStr("note", ev.Note)
	return append(b, '}')
}

// JournalConfig configures a Journal: where the JSONL stream goes and how
// much of it to retain in memory for rendering traces.
type JournalConfig struct {
	// Writer receives the JSONL stream (nil: no streaming).
	Writer io.Writer
	// Capture retains events in memory for Events(): 0 keeps nothing,
	// n > 0 keeps a ring of the last n events, n < 0 keeps everything.
	Capture int
}

// Journal is an append-only, monotonically timestamped event stream.
// record is safe for concurrent use; the write path shares one buffer
// under the journal lock, so a streamed event costs one buffer render
// plus a buffered write.
type Journal struct {
	mu    sync.Mutex
	start time.Time
	last  int64 // last timestamp issued; enforces nondecreasing order
	sink  *trace.JSONL
	buf   []byte

	capn int            // >0: ring capacity; <0: unbounded
	ring []JournalEvent // capn > 0
	n    int            // total events offered to the ring
	all  []JournalEvent // capn < 0
}

// NewJournal opens a journal. Close it to flush the stream.
func NewJournal(cfg JournalConfig) *Journal {
	j := &Journal{start: time.Now(), capn: cfg.Capture}
	if cfg.Writer != nil {
		j.sink = trace.NewJSONL(cfg.Writer)
		j.buf = make([]byte, 0, 256)
	}
	if cfg.Capture > 0 {
		j.ring = make([]JournalEvent, cfg.Capture)
	}
	return j
}

// record stamps ev and appends it to the stream and the capture buffer.
func (j *Journal) record(ev JournalEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ts := time.Since(j.start).Nanoseconds()
	if ts < j.last {
		ts = j.last
	}
	j.last = ts
	ev.TS = ts
	if j.sink != nil {
		j.buf = appendJSON(j.buf[:0], ev)
		j.sink.EmitRaw(j.buf)
	}
	switch {
	case j.capn < 0:
		j.all = append(j.all, ev)
	case j.capn > 0:
		j.ring[j.n%j.capn] = ev
		j.n++
	}
}

// Captures reports whether the journal retains events for Events().
func (j *Journal) Captures() bool { return j.capn != 0 }

// Events returns the captured events in chronological order (the full
// stream, or the tail that fit the capture ring).
func (j *Journal) Events() []JournalEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.capn < 0 {
		out := make([]JournalEvent, len(j.all))
		copy(out, j.all)
		return out
	}
	if j.capn == 0 {
		return nil
	}
	n := j.n
	if n > j.capn {
		n = j.capn
	}
	out := make([]JournalEvent, 0, n)
	for i := j.n - n; i < j.n; i++ {
		out = append(out, j.ring[i%j.capn])
	}
	return out
}

// Close flushes the stream and reports its first write error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sink == nil {
		return nil
	}
	return j.sink.Close()
}

// activeJournal is the process-wide installed journal. Emission sites pay
// one atomic load when none is installed.
var activeJournal atomic.Pointer[Journal]

// SetJournal installs j as the process-wide journal and taps the sim
// layer's phase/artifact hooks and the artifact store's evict hook into
// it (nil uninstalls everything). Not safe to race with running cells;
// install before submitting work.
func SetJournal(j *Journal) {
	activeJournal.Store(j)
	if j == nil {
		sim.SetCellPhaseHook(nil)
		sim.SetArtifactHook(nil)
		sim.Artifacts().SetEvictHook(nil)
		return
	}
	sim.SetCellPhaseHook(func(ev sim.CellPhaseEvent) {
		j.record(JournalEvent{Ev: EvCellPhase,
			Cell:  cellName(ev.Label, ev.Workload),
			Phase: ev.Phase.String(), DurNS: ev.Dur.Nanoseconds()})
	})
	sim.SetArtifactHook(func(ev sim.ArtifactEvent) {
		kind := EvArtifactProd
		switch {
		case ev.Hit:
			kind = EvArtifactHit
		case ev.Waited:
			kind = EvArtifactJoin
		}
		j.record(JournalEvent{Ev: kind,
			Cell:  cellName(ev.Label, ev.Workload),
			Class: string(ev.Key.Class), Key: ev.Key.ID,
			DurNS: ev.Dur.Nanoseconds()})
	})
	// The evict hook runs with the store lock held; record only takes the
	// journal lock and never calls back into the store.
	sim.Artifacts().SetEvictHook(func(ev artifact.EvictEvent) {
		j.record(JournalEvent{Ev: EvArtifactEvict,
			Class: string(ev.Key.Class), Key: ev.Key.ID, N: ev.Bytes})
	})
}

// ActiveJournal returns the installed journal (nil if none).
func ActiveJournal() *Journal { return activeJournal.Load() }

// journalEmit records ev if a journal is installed — the one nil check
// every scheduler-side emission site goes through.
func journalEmit(ev JournalEvent) {
	if j := activeJournal.Load(); j != nil {
		j.record(ev)
	}
}

// journalActive guards emission sites that would allocate building the
// event (cell-name concatenation), keeping the journal-off path free.
func journalActive() bool { return activeJournal.Load() != nil }

// cellName renders the journal identity of a cell.
func cellName(label, workload string) string {
	if label == "" && workload == "" {
		return ""
	}
	return label + "/" + workload
}

// JournalSummary is what ValidateJournal learned from a stream.
type JournalSummary struct {
	Lines  int
	Events map[string]int // event name → count
}

// knownClasses gates the class field of artifact events.
var knownClasses = func() map[string]bool {
	m := map[string]bool{}
	for _, c := range artifact.Classes() {
		m[string(c)] = true
	}
	return m
}()

// ValidateJournal reads a JSONL journal stream and checks every line
// against the event schema: known event names, no unknown fields, the
// per-family required fields, parseable phases, known artifact classes,
// and nondecreasing timestamps. CI runs this over the serve-smoke
// journal so the schema documented in EXPERIMENTS.md stays honest.
func ValidateJournal(r io.Reader) (JournalSummary, error) {
	sum := JournalSummary{Events: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var lastTS int64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		sum.Lines++
		var ev JournalEvent
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return sum, fmt.Errorf("grid: journal line %d: %w", sum.Lines, err)
		}
		if ev.TS < lastTS {
			return sum, fmt.Errorf("grid: journal line %d: timestamp %d goes backwards (previous %d)", sum.Lines, ev.TS, lastTS)
		}
		lastTS = ev.TS
		if err := ev.validate(); err != nil {
			return sum, fmt.Errorf("grid: journal line %d: %w", sum.Lines, err)
		}
		sum.Events[ev.Ev]++
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	return sum, nil
}

// validate checks the per-family required fields of one event.
func (ev JournalEvent) validate() error {
	switch ev.Ev {
	case EvJobSubmit, EvJobCancel, EvJobResume, EvJobDone:
		if ev.Job == "" {
			return fmt.Errorf("%s: missing job", ev.Ev)
		}
	case EvCellQueue:
		if ev.Job == "" || ev.Cell == "" {
			return fmt.Errorf("%s: missing job or cell", ev.Ev)
		}
	case EvCellStart, EvCellFinish:
		if ev.Job == "" || ev.Cell == "" {
			return fmt.Errorf("%s: missing job or cell", ev.Ev)
		}
		if ev.Worker <= 0 {
			return fmt.Errorf("%s: missing worker", ev.Ev)
		}
	case EvCellPhase:
		if ev.Cell == "" {
			return fmt.Errorf("%s: missing cell", ev.Ev)
		}
		if _, err := sim.ParsePhase(ev.Phase); err != nil {
			return err
		}
	case EvCohortStart, EvCohortFinish:
		if ev.Job == "" || ev.Worker <= 0 {
			return fmt.Errorf("%s: missing job or worker", ev.Ev)
		}
		if ev.N < 2 {
			return fmt.Errorf("%s: cohort width %d < 2", ev.Ev, ev.N)
		}
	case EvArtifactHit, EvArtifactJoin, EvArtifactProd:
		if !knownClasses[ev.Class] {
			return fmt.Errorf("%s: unknown artifact class %q", ev.Ev, ev.Class)
		}
	case EvArtifactEvict:
		if !knownClasses[ev.Class] {
			return fmt.Errorf("%s: unknown artifact class %q", ev.Ev, ev.Class)
		}
		if ev.N <= 0 {
			return fmt.Errorf("%s: missing byte count", ev.Ev)
		}
	default:
		return fmt.Errorf("unknown event %q", ev.Ev)
	}
	return nil
}

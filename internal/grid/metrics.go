package grid

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// schedMetrics publishes the scheduler's own latency distributions —
// queue wait and per-phase cell time — through the shared metrics
// registry machinery, mutex-wrapped because the registry itself is
// single-owner and the worker pool is not.
type schedMetrics struct {
	mu        sync.Mutex
	reg       *metrics.Registry
	queueWait *metrics.Histogram
	phase     [sim.NumPhases]*metrics.Histogram
}

func newSchedMetrics() *schedMetrics {
	m := &schedMetrics{reg: metrics.New()}
	m.queueWait = m.reg.NewHistogram("grid.queue_wait_us",
		"Microseconds a cell waited in the scheduler queue before a worker picked it up")
	for _, p := range sim.AllPhases() {
		m.phase[p] = m.reg.NewHistogram("grid.phase."+p.String()+"_us",
			"Microseconds finished cells spent in the "+p.String()+" phase")
	}
	return m
}

// observeQueueWait records one cell's time from enqueue to worker pickup.
func (m *schedMetrics) observeQueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWait.Observe(d.Microseconds())
	m.mu.Unlock()
}

// observeCell records a finished cell's per-phase durations. Phases the
// cell never entered are not observed, so each histogram's count is
// "cells that spent time there".
func (m *schedMetrics) observeCell(ph sim.PhaseTimes) {
	m.mu.Lock()
	for p, d := range ph {
		if d > 0 {
			m.phase[p].Observe(d.Microseconds())
		}
	}
	m.mu.Unlock()
}

func (m *schedMetrics) snapshot() metrics.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}

// MetricsSnapshot captures the scheduler's queue-wait and per-phase
// latency histograms (exported to Prometheus by `svrsim serve`).
func (s *Scheduler) MetricsSnapshot() metrics.Snapshot {
	return s.obs.snapshot()
}

package grid

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/artifact"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The HTTP/JSON surface of the scheduler: submit grids, stream per-cell
// results as they finish (NDJSON or SSE), poll and list jobs, cancel and
// resume. Served results go through exactly the same ExecuteCell path as
// in-process runs, so a streamed cell is bit-identical to what `svrsim
// run` would print for the same grid.

// SubmitRequest is the POST /api/jobs body. Configs are named
// ("inorder", "imp", "ooo", "svrN"); Grid optionally appends full
// machine-configuration records for custom sweeps. Params defaults to
// the preset's window ("quick", "default" or "paper"; default "quick"),
// and Workloads defaults to the paper's evaluation set.
type SubmitRequest struct {
	Name      string       `json:",omitempty"`
	Priority  int          `json:",omitempty"`
	Configs   []string     `json:",omitempty"`
	Grid      []sim.Config `json:",omitempty"`
	Workloads []string     `json:",omitempty"`
	Preset    string       `json:",omitempty"`
	Params    *sim.Params  `json:",omitempty"`
}

// resolve expands the wire request into a scheduler request.
func (r SubmitRequest) resolve() (JobRequest, error) {
	req := JobRequest{Name: r.Name, Priority: r.Priority, Workloads: r.Workloads}
	for _, name := range r.Configs {
		cfg, err := ParseConfig(name)
		if err != nil {
			return JobRequest{}, err
		}
		req.Configs = append(req.Configs, cfg)
	}
	req.Configs = append(req.Configs, r.Grid...)
	if len(req.Workloads) == 0 {
		for _, sp := range workloads.Evaluation() {
			req.Workloads = append(req.Workloads, sp.Name)
		}
	}
	switch r.Preset {
	case "", "quick":
		req.Params = sim.QuickParams()
	case "default":
		req.Params = sim.DefaultParams()
	case "paper":
		req.Params = sim.PaperParams()
	default:
		return JobRequest{}, fmt.Errorf("grid: unknown preset %q (want quick, default, or paper)", r.Preset)
	}
	if r.Params != nil {
		req.Params = *r.Params
	}
	return req, nil
}

// StatusPayload is the GET /api/status body: the aggregate scheduler
// view, the queue, every job, and the artifact store counters.
type StatusPayload struct {
	Scheduler  sim.GridStatus
	QueueDepth int
	Jobs       []JobStatus
	Artifacts  artifact.Stats
}

// Status assembles the service-wide status snapshot.
func (s *Scheduler) Status() StatusPayload {
	p := StatusPayload{
		Scheduler:  sim.CurrentStatus(),
		QueueDepth: s.QueueDepth(),
		Artifacts:  sim.Artifacts().Stats(),
	}
	for _, j := range s.Jobs() {
		p.Jobs = append(p.Jobs, j.Status())
	}
	return p
}

// Handler returns the scheduler's HTTP API.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("GET /api/artifacts", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, sim.Artifacts().Stats())
	})
	mux.HandleFunc("GET /api/jobs", func(w http.ResponseWriter, _ *http.Request) {
		out := []JobStatus{}
		for _, j := range s.Jobs() {
			out = append(out, j.Status())
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("GET /api/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /api/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		j, _ := s.Job(r.PathValue("id"))
		writeJSON(w, http.StatusOK, j.Status())
	})
	mux.HandleFunc("POST /api/jobs/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Resume(r.PathValue("id")); err != nil {
			var full *ErrQueueFull
			if errors.As(err, &full) {
				httpError(w, http.StatusTooManyRequests, err)
			} else {
				httpError(w, http.StatusConflict, err)
			}
			return
		}
		j, _ := s.Job(r.PathValue("id"))
		writeJSON(w, http.StatusOK, j.Status())
	})
	return mux
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sr SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	req, err := sr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var full *ErrQueueFull
		switch {
		case errors.As(err, &full):
			// Backpressure: the client sheds load or retries later.
			w.Header().Set("Retry-After", "5")
			httpError(w, http.StatusTooManyRequests, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleTrace renders the installed journal's capture of one job as a
// Chrome/Perfetto trace (open it at ui.perfetto.dev). 404s when the job
// is unknown; 409s when no capturing journal is installed (serve always
// installs one).
func (s *Scheduler) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	jn := ActiveJournal()
	if jn == nil || !jn.Captures() {
		httpError(w, http.StatusConflict, fmt.Errorf("no capturing journal installed"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	WriteTrace(w, JobEvents(jn.Events(), id))
}

// handleResults streams the job's cells in completion order and returns
// once the job reaches a terminal state. Default framing is NDJSON (one
// CellResult per line); SSE ("?format=sse" or "Accept: text/event-stream")
// wraps each cell in a "cell" event and finishes with a "done" event
// carrying the job status.
func (s *Scheduler) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flush()
	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		cell, ok := j.Result(r.Context(), i)
		if !ok {
			break
		}
		if sse {
			fmt.Fprint(w, "event: cell\ndata: ")
		}
		if err := enc.Encode(cell); err != nil {
			return
		}
		if sse {
			fmt.Fprint(w, "\n")
		}
		flush()
	}
	if sse && r.Context().Err() == nil {
		fmt.Fprint(w, "event: done\ndata: ")
		enc.Encode(j.Status())
		fmt.Fprint(w, "\n")
		flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct{ Error string }{err.Error()})
}

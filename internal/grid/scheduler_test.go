package grid

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// labeled returns a single-config grid whose label identifies the job in
// the stub executor.
func labeled(label string) []sim.Config {
	cfg := sim.MachineConfig(sim.InO)
	cfg.Label = label
	return []sim.Config{cfg}
}

// stubResult fabricates a plausible Result without simulating.
func stubResult(req sim.CellRequest) sim.Result {
	return sim.Result{Workload: req.Spec.Name, Label: req.Cfg.Label, Instrs: req.P.Measure}
}

// TestPriorityOrdering: with one worker pinned by a running cell, later
// submissions drain strictly by priority (high first), not FIFO.
func TestPriorityOrdering(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Options{Workers: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		started <- req.Cfg.Label
		<-release
		return stubResult(req), sim.CellOutcome{}
	}})
	defer s.Shutdown()

	submit := func(label string, pri int) *Job {
		j, err := s.Submit(JobRequest{Name: label, Priority: pri, Configs: labeled(label), Workloads: []string{"Randacc"}})
		if err != nil {
			t.Fatalf("submit %s: %v", label, err)
		}
		return j
	}
	ja := submit("A", 0)
	if got := <-started; got != "A" {
		t.Fatalf("first started cell %q, want A", got)
	}
	// The worker is busy inside A; these queue up.
	jb := submit("B", 1)
	jc := submit("C", 5)
	close(release)
	if got := <-started; got != "C" {
		t.Errorf("second started cell %q, want C (priority 5 beats 1)", got)
	}
	if got := <-started; got != "B" {
		t.Errorf("third started cell %q, want B", got)
	}
	for _, j := range []*Job{ja, jb, jc} {
		j.Wait()
		if st := j.Status(); st.State != StateDone || st.Done != 1 {
			t.Errorf("job %s: %+v", j.Name, st)
		}
	}
}

// TestQueueBackpressure: a job that would overflow the bounded queue is
// rejected atomically with the typed error.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	s := New(Options{Workers: 1, QueueCap: 3, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		<-release
		return stubResult(req), sim.CellOutcome{}
	}})
	defer func() { close(release); s.Shutdown() }()

	// Pin the worker so queued cells stay queued.
	pin, err := s.Submit(JobRequest{Configs: labeled("pin"), Workloads: []string{"Randacc"}})
	if err != nil {
		t.Fatal(err)
	}
	for { // wait until the pin cell is popped (queue empty)
		if s.QueueDepth() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var cfgs []sim.Config
	for _, l := range []string{"a", "b", "c", "d"} {
		cfgs = append(cfgs, labeled(l)[0])
	}
	_, err = s.Submit(JobRequest{Configs: cfgs, Workloads: []string{"Randacc"}})
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("submit past capacity: err = %v, want *ErrQueueFull", err)
	}
	if full.Requested != 4 || full.Capacity != 3 {
		t.Errorf("typed error %+v, want Requested 4 / Capacity 3", full)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Errorf("rejected job left %d cells enqueued", d)
	}
	if got := len(s.Jobs()); got != 1 {
		t.Errorf("rejected job left a job record (%d jobs)", got)
	}
	_ = pin
}

// TestCancelResume: canceling mid-cell lets the running cell finish and
// drops the queued remainder; resume re-enqueues exactly that remainder
// and completes the job.
func TestCancelResume(t *testing.T) {
	release := make(chan struct{})
	s := New(Options{Workers: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		<-release
		return stubResult(req), sim.CellOutcome{}
	}})
	defer s.Shutdown()

	var cfgs []sim.Config
	for _, l := range []string{"c0", "c1", "c2"} {
		cfgs = append(cfgs, labeled(l)[0])
	}
	j, err := s.Submit(JobRequest{Name: "cr", Configs: cfgs, Workloads: []string{"Randacc"}})
	if err != nil {
		t.Fatal(err)
	}
	for j.Status().Running == 0 { // first cell picked up
		time.Sleep(time.Millisecond)
	}
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	release <- struct{}{} // let the in-flight cell finish
	j.Wait()              // terminal: canceled with the running cell drained
	st := j.Status()
	if st.State != StateCanceled || st.Done != 1 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
	if err := s.Cancel(j.ID); err == nil {
		t.Error("second cancel should fail")
	}

	if err := s.Resume(j.ID); err != nil {
		t.Fatal(err)
	}
	release <- struct{}{}
	release <- struct{}{}
	rs := j.Wait()
	st = j.Status()
	if st.State != StateDone || st.Done != 3 {
		t.Fatalf("after resume: %+v", st)
	}
	if len(rs.Cells) != 3 {
		t.Fatalf("result set has %d cells, want 3", len(rs.Cells))
	}
	if err := s.Resume(j.ID); err == nil {
		t.Error("resume of a done job should fail")
	}
}

// TestCrossJobDedup: two identical jobs submitted concurrently produce
// every distinct cell exactly once between them — the second caller is
// served from the unified store (resident or joined in flight) — and the
// results are bit-identical to a cold, uncached run. Run under -race.
func TestCrossJobDedup(t *testing.T) {
	p := sim.Params{Scale: workloads.TinyScale(), Warmup: 1_000, Measure: 10_000}
	cfgs := []sim.Config{sim.MachineConfig(sim.InO), sim.MachineConfig(sim.IMP)}
	wls := []string{"Randacc", "PR_KR"}

	// Cold reference: every cell simulated fresh, no memoization.
	specs, err := ResolveWorkloads(wls)
	if err != nil {
		t.Fatal(err)
	}
	prev := sim.SetRunCacheEnabled(false)
	ref := sim.RunMatrixLocal(cfgs, specs, p)
	sim.SetRunCacheEnabled(prev)
	defer sim.SetRunCacheEnabled(prev)
	sim.ResetRunCache()

	s := New(Options{Workers: 4})
	defer s.Shutdown()
	req := JobRequest{Configs: cfgs, Workloads: wls, Params: p}
	var jobs [2]*Job
	var wg sync.WaitGroup
	for i := range jobs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := s.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
			j.Wait()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	cells := len(cfgs) * len(wls)
	fromStore := 0
	for _, j := range jobs {
		st := j.Status()
		if st.State != StateDone || st.Done != cells {
			t.Fatalf("job %s: %+v", j.ID, st)
		}
		fromStore += st.CachedCells + st.SharedCells
	}
	// 2×cells requests over cells distinct keys: exactly cells of them
	// must have been served from the store instead of simulated.
	if fromStore != cells {
		t.Errorf("store served %d cells across both jobs, want %d", fromStore, cells)
	}

	for _, j := range jobs {
		rs := j.ResultSet()
		for _, cfg := range cfgs {
			for _, wl := range wls {
				got, ok1 := rs.Get(cfg.Label, wl)
				want, ok2 := ref.Get(cfg.Label, wl)
				if !ok1 || !ok2 {
					t.Fatalf("missing cell %s/%s (served %v, reference %v)", cfg.Label, wl, ok1, ok2)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cell %s/%s differs from the cold reference", cfg.Label, wl)
				}
			}
		}
	}
}

// TestSaveLoadState: unfinished jobs survive a shutdown via the state
// file and resubmit on a fresh scheduler.
func TestSaveLoadState(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := New(Options{Workers: 1, Execute: func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		started <- struct{}{}
		<-release
		return stubResult(req), sim.CellOutcome{}
	}})
	// Two cells on one worker: the first drains during shutdown, the
	// second is still queued — so the job is unfinished and persists.
	if _, err := s.Submit(JobRequest{Name: "keep", Priority: 2,
		Configs: []sim.Config{sim.SVRConfig(16), sim.SVRConfig(32)}, Workloads: []string{"Randacc"},
		Params: sim.QuickParams()}); err != nil {
		t.Fatal(err)
	}
	<-started // the first cell is in flight
	go func() {
		// Let Shutdown close the queue before the in-flight cell can
		// finish, so the worker exits instead of taking the second cell.
		time.Sleep(100 * time.Millisecond)
		release <- struct{}{}
	}()
	s.Shutdown()

	path := t.TempDir() + "/state.json"
	if err := s.SaveState(path); err != nil {
		t.Fatal(err)
	}

	done := func(req sim.CellRequest, _ *sim.Tracker) (sim.Result, sim.CellOutcome) {
		return stubResult(req), sim.CellOutcome{}
	}
	s2 := New(Options{Workers: 1, Execute: done})
	defer s2.Shutdown()
	n, err := s2.LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d jobs, want 1", n)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].Name != "keep" || jobs[0].Priority != 2 {
		t.Fatalf("restored job %+v", jobs[0])
	}
	jobs[0].Wait()
	if st := jobs[0].Status(); st.State != StateDone {
		t.Errorf("restored job did not finish: %+v", st)
	}

	// Missing file: nothing to restore, no error.
	if n, err := s2.LoadState(path + ".missing"); err != nil || n != 0 {
		t.Errorf("missing state file: n=%d err=%v", n, err)
	}
}

package grid

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// ErrQueueFull is the typed backpressure error Submit returns when a
// job's cells would overflow the bounded queue. Callers shed load or
// retry; nothing is partially enqueued.
type ErrQueueFull struct {
	Queued    int // cells already waiting
	Capacity  int // queue bound
	Requested int // cells the rejected job wanted to add
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("grid: queue full: %d cells queued of %d capacity, %d more requested",
		e.Queued, e.Capacity, e.Requested)
}

// item is one schedulable unit: a job plus the indexes of the cells it
// covers — a single cell, or a whole timing cohort the worker steps in
// lockstep — ordered by job priority (higher first) then global
// submission order.
type item struct {
	job   *Job
	cells []int
	pri   int
	seq   uint64
	at    time.Time // enqueue time, for queue-wait attribution
}

type cellHeap []*item

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h cellHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *cellHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// queue is the bounded priority queue feeding the worker pool.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   cellHeap
	cells  int // queued cells across all groups (the capacity unit)
	cap    int
	seq    uint64
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues the given cell groups of job atomically: either every
// group is accepted or none is (ErrQueueFull). The capacity bound
// counts cells, not groups, so cohort grouping never inflates how much
// work the queue admits.
func (q *queue) push(job *Job, groups [][]int) error {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("grid: scheduler is shut down")
	}
	if q.cells+n > q.cap {
		return &ErrQueueFull{Queued: q.cells, Capacity: q.cap, Requested: n}
	}
	now := time.Now()
	for _, g := range groups {
		q.seq++
		heap.Push(&q.heap, &item{job: job, cells: g, pri: job.Priority, seq: q.seq, at: now})
	}
	q.cells += n
	q.cond.Broadcast()
	return nil
}

// pop blocks until a cell is available and returns it; ok is false once
// the queue is closed (queued cells are abandoned to the shutdown path,
// which persists them).
func (q *queue) pop() (*item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	it := heap.Pop(&q.heap).(*item)
	q.cells -= len(it.cells)
	return it, true
}

// remove drops every queued cell of job (cancellation) and returns the
// dropped cell indexes. Cells already popped by a worker are unaffected.
func (q *queue) remove(job *Job) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var dropped []int
	keep := q.heap[:0]
	for _, it := range q.heap {
		if it.job == job {
			dropped = append(dropped, it.cells...)
		} else {
			keep = append(keep, it)
		}
	}
	for i := len(keep); i < len(q.heap); i++ {
		q.heap[i] = nil
	}
	q.heap = keep
	q.cells -= len(dropped)
	heap.Init(&q.heap)
	return dropped
}

// depth returns the number of queued cells.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cells
}

// close wakes every worker; pop returns false from then on.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

package grid

import (
	"container/heap"
	"fmt"
	"sync"
)

// ErrQueueFull is the typed backpressure error Submit returns when a
// job's cells would overflow the bounded queue. Callers shed load or
// retry; nothing is partially enqueued.
type ErrQueueFull struct {
	Queued    int // cells already waiting
	Capacity  int // queue bound
	Requested int // cells the rejected job wanted to add
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("grid: queue full: %d cells queued of %d capacity, %d more requested",
		e.Queued, e.Capacity, e.Requested)
}

// item is one queued cell: a job plus an index into its cell list,
// ordered by job priority (higher first) then global submission order.
type item struct {
	job  *Job
	cell int
	pri  int
	seq  uint64
}

type cellHeap []*item

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h cellHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *cellHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// queue is the bounded priority queue feeding the worker pool.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   cellHeap
	cap    int
	seq    uint64
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues the given cells of job atomically: either every cell is
// accepted or none is (ErrQueueFull).
func (q *queue) push(job *Job, cells []int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("grid: scheduler is shut down")
	}
	if len(q.heap)+len(cells) > q.cap {
		return &ErrQueueFull{Queued: len(q.heap), Capacity: q.cap, Requested: len(cells)}
	}
	for _, c := range cells {
		q.seq++
		heap.Push(&q.heap, &item{job: job, cell: c, pri: job.Priority, seq: q.seq})
	}
	q.cond.Broadcast()
	return nil
}

// pop blocks until a cell is available and returns it; ok is false once
// the queue is closed (queued cells are abandoned to the shutdown path,
// which persists them).
func (q *queue) pop() (*item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	return heap.Pop(&q.heap).(*item), true
}

// remove drops every queued cell of job (cancellation) and returns the
// dropped cell indexes. Cells already popped by a worker are unaffected.
func (q *queue) remove(job *Job) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var dropped []int
	keep := q.heap[:0]
	for _, it := range q.heap {
		if it.job == job {
			dropped = append(dropped, it.cell)
		} else {
			keep = append(keep, it)
		}
	}
	for i := len(keep); i < len(q.heap); i++ {
		q.heap[i] = nil
	}
	q.heap = keep
	heap.Init(&q.heap)
	return dropped
}

// depth returns the number of queued cells.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// close wakes every worker; pop returns false from then on.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

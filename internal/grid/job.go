package grid

import (
	"context"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// State is a job's lifecycle position.
type State string

// Job states. A canceled job keeps its finished cells and can be
// resumed, which re-enqueues the unfinished remainder.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateCanceled State = "canceled"
)

// CellResult is one finished cell as streamed to clients, in completion
// order: the scheduling metadata plus the full simulation Result.
type CellResult struct {
	Seq             int    // completion index within the job, from 0
	Label           string // configuration label
	Workload        string
	Cached          bool // result was resident in the artifact store
	Shared          bool // joined another job's in-flight execution
	Replayed        bool // consumed a recorded stream
	CkptFromStore   bool `json:",omitempty"` // warm checkpoint came from the store
	StreamFromStore bool `json:",omitempty"` // recording came from the store
	WallNS          int64
	Result          sim.Result
}

// JobStatus is the poll/list view of a job.
type JobStatus struct {
	ID       string
	Name     string `json:",omitempty"`
	Priority int
	State    State
	Cells    int // total cells of the grid
	Done     int
	Queued   int // waiting in the scheduler queue
	Running  int // executing right now
	// FromStore counters: how much of this job the unified artifact
	// store served instead of this job simulating it.
	CachedCells     int // results resident in the store
	SharedCells     int // results joined from another job's in-flight cell
	ReplayedCells   int // cells fed by a recorded stream
	CkptsFromStore  int // cells whose warm checkpoint came from the store
	StreamFromStore int // cells whose recording came from the store
	SubmittedAt     time.Time
	WallNS          int64 `json:",omitempty"` // total wall time, once done
	// PhaseWall decomposes the finished cells' summed wall time by phase
	// (JSON: {"build": ns, ...}) — where this job's grid time went.
	PhaseWall sim.PhaseTimes
}

// Job is one submitted grid: (configs × workloads) cells flowing through
// the shared scheduler.
type Job struct {
	ID       string
	Name     string
	Priority int

	cfgs   []sim.Config
	specs  []workloads.Spec
	params sim.Params
	cells  []sim.CellRequest

	mu            sync.Mutex
	cond          *sync.Cond
	tracker       *sim.Tracker
	trackerClosed bool
	state         State
	queued        map[int]struct{} // cell index → waiting in the queue
	running       map[int]struct{} // cell index → executing
	pending       map[int]struct{} // cell index → not finished (queued ∪ running ∪ dropped)
	results       []CellResult     // finished cells in completion order
	phaseWall     sim.PhaseTimes   // finished cells' wall time by phase
	rs            *sim.ResultSet
	submitted     time.Time
	finished      time.Time
}

func newJob(id, name string, pri int, cfgs []sim.Config, specs []workloads.Spec, p sim.Params) *Job {
	j := &Job{
		ID: id, Name: name, Priority: pri,
		cfgs: cfgs, specs: specs, params: p,
		cells:     sim.MatrixCells(cfgs, specs, p),
		state:     StateQueued,
		queued:    map[int]struct{}{},
		running:   map[int]struct{}{},
		pending:   map[int]struct{}{},
		rs:        sim.NewResultSet(cfgs),
		submitted: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	for i := range j.cells {
		j.pending[i] = struct{}{}
	}
	return j
}

// unqueued returns the pending cells that are neither queued nor
// running — what cancel dropped and resume must re-enqueue. Caller
// holds j.mu.
func (j *Job) unqueuedLocked() []int {
	var out []int
	for i := range j.pending {
		if _, q := j.queued[i]; q {
			continue
		}
		if _, r := j.running[i]; r {
			continue
		}
		out = append(out, i)
	}
	return out
}

// startCell transitions a popped cell to running and hands the worker
// the tracker the cell should report to. ok is false when the job was
// canceled after the cell was queued; the cell stays pending.
func (j *Job) startCell(i int) (sim.CellRequest, *sim.Tracker, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.queued, i)
	if j.state == StateCanceled {
		return sim.CellRequest{}, nil, false
	}
	if j.state == StateQueued {
		j.state = StateRunning
	}
	j.running[i] = struct{}{}
	return j.cells[i], j.tracker, true
}

// closeTrackerLocked unregisters the job's tracker from the status
// surfaces. Caller holds j.mu.
func (j *Job) closeTrackerLocked() {
	if !j.trackerClosed {
		j.tracker.Close()
		j.trackerClosed = true
	}
}

// finishCell banks one executed cell and returns the job-progress event
// for the CLI hook. When this completion ends the job (done, or canceled
// with the last running cell finished) the tracker is closed.
func (j *Job) finishCell(i int, res sim.Result, out sim.CellOutcome) (ev sim.CellEvent) {
	var terminal bool
	c := j.cells[i]
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.running, i)
	delete(j.pending, i)
	j.results = append(j.results, CellResult{
		Seq: len(j.results), Label: c.Cfg.Label, Workload: c.Spec.Name,
		Cached: out.Cached, Shared: out.Shared, Replayed: out.Replayed,
		CkptFromStore: out.CkptFromStore, StreamFromStore: out.StreamFromStore,
		WallNS: out.Wall.Nanoseconds(), Result: res,
	})
	j.rs.AddCell(res, sim.CellStat{
		Label: c.Cfg.Label, Workload: c.Spec.Name, Cached: out.Cached,
		Shared: out.Shared, Replayed: out.Replayed, Wall: out.Wall,
	})
	j.phaseWall.AddAll(out.Phases)
	j.tracker.CellDone(out, res.Instrs)
	if len(j.pending) == 0 && j.state != StateCanceled {
		j.state = StateDone
		j.finished = time.Now()
		j.rs.Stats.Wall = j.finished.Sub(j.submitted)
		j.rs.Finish()
		terminal = true
		journalEmit(JournalEvent{Ev: EvJobDone, Job: j.ID,
			DurNS: j.rs.Stats.Wall.Nanoseconds()})
	}
	if j.state == StateCanceled && len(j.running) == 0 {
		terminal = true
	}
	if terminal {
		j.closeTrackerLocked()
	}
	j.cond.Broadcast()
	return sim.CellEvent{
		Label: c.Cfg.Label, Workload: c.Spec.Name,
		Cached: out.Cached, Shared: out.Shared, Replayed: out.Replayed,
		Wall: out.Wall, Instrs: res.Instrs, Phases: out.Phases,
		Done: len(j.results), Cells: len(j.cells),
	}
}

// terminalLocked reports whether the job will make no more progress:
// done, or canceled with no cell still executing. Caller holds j.mu.
func (j *Job) terminalLocked() bool {
	if j.state == StateDone {
		return true
	}
	return j.state == StateCanceled && len(j.running) == 0
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Name: j.Name, Priority: j.Priority, State: j.state,
		Cells: len(j.cells), Done: len(j.results),
		Queued: len(j.queued), Running: len(j.running),
		SubmittedAt: j.submitted, PhaseWall: j.phaseWall,
	}
	for _, r := range j.results {
		if r.Cached {
			st.CachedCells++
		}
		if r.Shared {
			st.SharedCells++
		}
		if r.Replayed {
			st.ReplayedCells++
		}
		if r.CkptFromStore {
			st.CkptsFromStore++
		}
		if r.StreamFromStore {
			st.StreamFromStore++
		}
	}
	if j.state == StateDone {
		st.WallNS = j.finished.Sub(j.submitted).Nanoseconds()
	}
	return st
}

// Result returns the i-th finished cell (completion order), blocking
// until it exists, the job reaches a terminal state without producing
// it, or ctx is canceled. ok is false in the latter two cases.
func (j *Job) Result(ctx context.Context, i int) (CellResult, bool) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.results) <= i && !j.terminalLocked() && ctx.Err() == nil {
		j.cond.Wait()
	}
	if len(j.results) > i {
		return j.results[i], true
	}
	return CellResult{}, false
}

// Wait blocks until the job is done (or canceled and drained) and
// returns its ResultSet. The set is only complete when the job finished.
func (j *Job) Wait() *sim.ResultSet {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.terminalLocked() {
		j.cond.Wait()
	}
	return j.rs
}

// ResultSet returns the job's (possibly still filling) result set.
// Callers must not mutate it before the job is done.
func (j *Job) ResultSet() *sim.ResultSet {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rs
}

package grid

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a deterministic journal: one job of three cells on two
// workers, one cohort, a produced-then-consumed artifact, and an
// eviction — every renderer path in one stream.
func goldenEvents() []JournalEvent {
	return []JournalEvent{
		{TS: 0, Ev: EvJobSubmit, Job: "job-1", N: 3, Note: "golden"},
		{TS: 1_000, Ev: EvCellQueue, Job: "job-1", Cell: "SVR16/BFS_KR"},
		{TS: 1_100, Ev: EvCellQueue, Job: "job-1", Cell: "SVR32/BFS_KR", Seq: 1},
		{TS: 1_200, Ev: EvCellQueue, Job: "job-1", Cell: "OoO/HJ2", Seq: 2},
		{TS: 5_000, Ev: EvCellStart, Job: "job-1", Cell: "SVR16/BFS_KR", Worker: 1, DurNS: 4_000},
		{TS: 6_000, Ev: EvCellStart, Job: "job-1", Cell: "OoO/HJ2", Seq: 2, Worker: 2, DurNS: 4_800},
		{TS: 40_000, Ev: EvArtifactProd, Cell: "SVR16/BFS_KR", Class: "stream", Key: "s1", DurNS: 30_000},
		{TS: 90_000, Ev: EvCellPhase, Cell: "SVR16/BFS_KR", Phase: "record", DurNS: 30_000},
		{TS: 95_000, Ev: EvCellPhase, Cell: "SVR16/BFS_KR", Phase: "timing", DurNS: 50_000},
		{TS: 100_000, Ev: EvCellFinish, Job: "job-1", Cell: "SVR16/BFS_KR", Worker: 1, DurNS: 95_000, Note: "simulated"},
		{TS: 105_000, Ev: EvCellStart, Job: "job-1", Cell: "SVR32/BFS_KR", Seq: 1, Worker: 1, DurNS: 103_900},
		{TS: 110_000, Ev: EvCohortStart, Job: "job-1", Worker: 1, N: 2},
		{TS: 120_000, Ev: EvArtifactHit, Cell: "SVR32/BFS_KR", Class: "stream", Key: "s1", DurNS: 100},
		{TS: 150_000, Ev: EvCellPhase, Cell: "SVR32/BFS_KR", Phase: "decode", DurNS: 10_000},
		{TS: 160_000, Ev: EvCellPhase, Cell: "SVR32/BFS_KR", Phase: "timing", DurNS: 35_000},
		{TS: 170_000, Ev: EvCohortFinish, Job: "job-1", Worker: 1, N: 2, DurNS: 60_000},
		{TS: 175_000, Ev: EvCellFinish, Job: "job-1", Cell: "SVR32/BFS_KR", Seq: 1, Worker: 1, DurNS: 70_000, Note: "replayed"},
		{TS: 176_000, Ev: EvArtifactEvict, Class: "stream", Key: "s1", N: 4096},
		{TS: 180_000, Ev: EvCellFinish, Job: "job-1", Cell: "OoO/HJ2", Seq: 2, Worker: 2, DurNS: 174_000, Note: "simulated"},
		{TS: 181_000, Ev: EvJobDone, Job: "job-1", DurNS: 181_000},
	}
}

// TestGridTraceGolden pins the whole trace rendering — track metadata,
// cell and phase slices, async job/cohort spans, artifact flow arrows —
// against a committed golden file. Regenerate with `go test -run
// GridTraceGolden ./internal/grid -update` after intentional changes.
func TestGridTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	// Golden is stored indented for reviewable diffs.
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, buf.Bytes(), "", "  "); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	pretty.WriteByte('\n')

	golden := filepath.Join("testdata", "gridtrace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Errorf("trace drifted from golden file %s (re-run with -update if intended)\ngot:\n%s", golden, pretty.Bytes())
	}
}

// TestGridTraceShape spot-checks semantic properties the golden bytes
// can't explain: phase slices stay inside their cell slice, and the
// artifact flow starts at the producer before ending at the consumer.
func TestGridTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	type span struct{ start, end int64 }
	cells := map[string]span{}
	var flowStart, flowEnd []int64
	for _, e := range trace.TraceEvents {
		switch {
		case e.Cat == "cell" && e.Ph == "X":
			cells[e.Name] = span{e.Ts, e.Ts + e.Dur}
		case e.Cat == "artifact" && e.Ph == "s":
			flowStart = append(flowStart, e.Ts)
		case e.Cat == "artifact" && e.Ph == "f":
			flowEnd = append(flowEnd, e.Ts)
		}
	}
	if len(cells) != 3 {
		t.Fatalf("rendered %d cell slices, want 3", len(cells))
	}
	for _, e := range trace.TraceEvents {
		if e.Cat != "phase" || e.Ph != "X" {
			continue
		}
		inside := false
		for _, c := range cells {
			if e.Ts >= c.start && e.Ts+e.Dur <= c.end {
				inside = true
				break
			}
		}
		if !inside {
			t.Errorf("phase slice %s [%d,%d] lies outside every cell slice", e.Name, e.Ts, e.Ts+e.Dur)
		}
	}
	if len(flowStart) != 1 || len(flowEnd) != 1 {
		t.Fatalf("flow arrows: %d starts, %d ends, want 1 each", len(flowStart), len(flowEnd))
	}
	if flowStart[0] >= flowEnd[0] {
		t.Errorf("flow ends (%d) before it starts (%d)", flowEnd[0], flowStart[0])
	}
}

package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workloads"
)

func mustSpec(t *testing.T, name string) workloads.Spec {
	t.Helper()
	spec, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestCachedCellBitIdentical: a cell served from the memo must equal both
// the run that populated it and an uncached fresh re-run, bit for bit.
func TestCachedCellBitIdentical(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	spec := mustSpec(t, "NAS-IS")
	p := QuickParams()
	cfg := SVRConfig(16)

	first := runMatrix([]Config{cfg}, []workloads.Spec{spec}, p)
	if first.Stats.Cached != 0 || first.Stats.Cells != 1 {
		t.Fatalf("first run: %+v", first.Stats)
	}
	second := runMatrix([]Config{cfg}, []workloads.Spec{spec}, p)
	if second.Stats.Cached != 1 {
		t.Fatalf("second run not cached: %+v", second.Stats)
	}
	a, _ := first.Get("SVR16", "NAS-IS")
	b, _ := second.Get("SVR16", "NAS-IS")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("cached cell differs from original:\n%+v\nvs\n%+v", a, b)
	}
	// Run() bypasses the cache entirely; the memoized record must match a
	// genuine re-simulation exactly.
	fresh := Run(spec, cfg, p)
	if !reflect.DeepEqual(a, fresh) {
		t.Errorf("cached cell differs from fresh uncached run:\n%+v\nvs\n%+v", a, fresh)
	}
}

// TestCacheKeyIgnoresLabel: sweeps relabel the default configuration all
// the time; the display label must not split the cache.
func TestCacheKeyIgnoresLabel(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	spec := mustSpec(t, "Randacc")
	p := QuickParams()

	runMatrix([]Config{SVRConfig(16)}, []workloads.Spec{spec}, p)
	relabeled := SVRConfig(16)
	relabeled.Label = "SVR16-m16-p4"
	rs := runMatrix([]Config{relabeled}, []workloads.Spec{spec}, p)
	if rs.Stats.Cached != 1 {
		t.Errorf("relabeled config missed the cache: %+v", rs.Stats)
	}
	res, ok := rs.Get("SVR16-m16-p4", "Randacc")
	if !ok || res.Label != "SVR16-m16-p4" {
		t.Errorf("cached result not relabeled: %+v ok=%v", res.Label, ok)
	}
}

// TestCacheKeySplitsOnConfigAndParams: distinct machines or windows must
// never share a cell.
func TestCacheKeySplitsOnConfigAndParams(t *testing.T) {
	p := QuickParams()
	base := hashCell(SVRConfig(16), "NAS-IS", p)
	if hashCell(SVRConfig(32), "NAS-IS", p) == base {
		t.Error("vector length not in the key")
	}
	if hashCell(SVRConfig(16), "Randacc", p) == base {
		t.Error("workload not in the key")
	}
	p2 := p
	p2.Measure++
	if hashCell(SVRConfig(16), "NAS-IS", p2) == base {
		t.Error("window not in the key")
	}
	relabeled := SVRConfig(16)
	relabeled.Label = "anything"
	if hashCell(relabeled, "NAS-IS", p) != base {
		t.Error("label must not be in the key")
	}
}

func TestRunCacheDisabled(t *testing.T) {
	ResetRunCache()
	prev := SetRunCacheEnabled(false)
	defer func() {
		SetRunCacheEnabled(prev)
		ResetRunCache()
	}()
	spec := mustSpec(t, "Randacc")
	p := QuickParams()
	runMatrix([]Config{MachineConfig(InO)}, []workloads.Spec{spec}, p)
	rs := runMatrix([]Config{MachineConfig(InO)}, []workloads.Spec{spec}, p)
	if rs.Stats.Cached != 0 {
		t.Errorf("disabled cache served a cell: %+v", rs.Stats)
	}
}

func TestProgressHook(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	var events []CellEvent
	SetProgressHook(func(ev CellEvent) { events = append(events, ev) })
	defer SetProgressHook(nil)

	specs := []workloads.Spec{mustSpec(t, "NAS-IS"), mustSpec(t, "Randacc")}
	cfgs := []Config{MachineConfig(InO), MachineConfig(OoO)}
	runMatrix(cfgs, specs, QuickParams())

	if len(events) != len(cfgs)*len(specs) {
		t.Fatalf("got %d events, want %d", len(events), len(cfgs)*len(specs))
	}
	last := events[len(events)-1]
	if last.Done != 4 || last.Cells != 4 {
		t.Errorf("final event %+v, want Done=Cells=4", last)
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d has Done=%d (must be sequential)", i, ev.Done)
		}
	}
}

func TestResultSetAccessors(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	spec := mustSpec(t, "HJ2")
	rs := runMatrix([]Config{MachineConfig(InO), SVRConfig(16)},
		[]workloads.Spec{spec}, QuickParams())

	if got := rs.Labels(); !reflect.DeepEqual(got, []string{"SVR16", "in-order"}) {
		t.Errorf("Labels() = %v", got)
	}
	if _, ok := rs.Get("SVR16", "HJ2"); !ok {
		t.Error("Get missed an existing cell")
	}
	if _, ok := rs.Get("SVR16", "nope"); ok {
		t.Error("Get found a nonexistent cell")
	}
	if row := rs.Row("in-order"); len(row) != 1 || row["HJ2"].Instrs == 0 {
		t.Errorf("Row(in-order) = %+v", row)
	}
	blob, err := rs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stats SchedStats
		Cells []struct{ Label, Workload string }
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("invalid ResultSet JSON: %v", err)
	}
	if decoded.Stats.Cells != 2 || len(decoded.Cells) != 2 {
		t.Errorf("JSON cells: %+v", decoded)
	}
}

func TestNewMachineUnknownKind(t *testing.T) {
	spec := mustSpec(t, "HJ2")
	inst := spec.Build(workloads.TinyScale())
	if _, err := NewMachine(Config{Core: CoreKind(99)}, inst); err == nil {
		t.Fatal("expected error for unregistered core kind")
	}
}

// TestMachinesMatchRun: Simulate over the Machine layer must reproduce
// Run exactly for every kind.
func TestMachinesMatchRun(t *testing.T) {
	spec := mustSpec(t, "Randacc")
	p := QuickParams()
	for _, cfg := range []Config{
		MachineConfig(InO), MachineConfig(IMP), MachineConfig(OoO), SVRConfig(16),
	} {
		m, err := NewMachine(cfg, spec.Build(p.Scale))
		if err != nil {
			t.Fatal(err)
		}
		got := Simulate(m, p)
		want := Run(spec, cfg, p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Machine result diverges from Run", cfg.Label)
		}
	}
}

func TestGetExperimentUnknownListsIDs(t *testing.T) {
	_, err := GetExperiment("definitely-not-registered")
	if err == nil {
		t.Fatal("expected error")
	}
	if msg := err.Error(); !strings.Contains(msg, "fig1") || !strings.Contains(msg, "have") {
		t.Errorf("error should list known ids: %v", msg)
	}
}

func TestReportJSON(t *testing.T) {
	r := runTable2(ExpParams{})
	blob, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string
		Values map[string]float64
		Sched  SchedStats
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if decoded.ID != "table2" || decoded.Values["kib.16"] == 0 {
		t.Errorf("JSON content: %+v", decoded)
	}
}

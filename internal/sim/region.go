package sim

import (
	"repro/internal/energy"
	"repro/internal/stats"
)

// Multi-region sampled simulation: N detailed warmup+measure windows
// stitched together by functional fast-forward, the standard sampling
// answer to paper-scale instruction budgets. The aggregate Result sums
// event counts across regions and recomputes the rate fields; the
// per-region spread travels in Result.Regions.

// RegionSummary reports the per-region spread of a multi-region run.
type RegionSummary struct {
	Requested   int    // regions Params asked for
	Simulated   int    // regions actually run (the program may end early)
	FastForward uint64 // instructions functionally skipped before each region
	IPC         []float64
	IPCMean     float64
	IPCCI95     float64 // 95 % CI half-width of the per-region IPC mean
	CPIMean     float64
	CPICI95     float64
}

// simulateRegions runs the region schedule. atFirstRegion marks a
// machine already positioned at its first region start (restored from a
// shared checkpoint), whose first fast-forward must not run again.
func simulateRegions(m Machine, p Params, atFirstRegion bool) Result {
	regions := p.Regions
	if regions < 1 {
		regions = 1
	}
	var per []Result
	for r := 0; r < regions; r++ {
		ffOK := true
		if p.FastForward > 0 && !(r == 0 && atFirstRegion) {
			ffOK = m.FastForward(p.FastForward, p.Warm)
		}
		res := simulateWindow(m, p)
		if res.Instrs == 0 && len(per) > 0 {
			break // program ended inside the previous window
		}
		per = append(per, res)
		if !ffOK || res.Instrs < p.Measure {
			break
		}
	}
	return mergeRegions(per, p)
}

// mergeRegions folds per-region Results into one aggregate.
func mergeRegions(per []Result, p Params) Result {
	agg := per[0]
	for _, r := range per[1:] {
		agg.Instrs += r.Instrs
		agg.Cycles += r.Cycles
		agg.Stack.Instrs += r.Stack.Instrs
		for i := range agg.Stack.Cycles {
			agg.Stack.Cycles[i] += r.Stack.Cycles[i]
		}
		for i := range agg.DRAMLoads {
			agg.DRAMLoads[i] += r.DRAMLoads[i]
		}
		agg.IFetchLoads += r.IFetchLoads
		agg.Writebacks += r.Writebacks
		for i := range agg.PFStats {
			agg.PFStats[i].Issued += r.PFStats[i].Issued
			agg.PFStats[i].Used += r.PFStats[i].Used
			agg.PFStats[i].EvictedUnused += r.PFStats[i].EvictedUnused
		}
		agg.SVRStats = agg.SVRStats.Add(r.SVRStats)
		agg.ExtraSlots += r.ExtraSlots
		agg.Metrics = agg.Metrics.Merge(r.Metrics)
		agg.Energy = energy.Merge(agg.Energy, r.Energy, agg.Instrs)
	}
	agg.IPC, agg.CPI = 0, 0
	if agg.Cycles > 0 {
		agg.IPC = float64(agg.Instrs) / float64(agg.Cycles)
	}
	if agg.Instrs > 0 {
		agg.CPI = float64(agg.Cycles) / float64(agg.Instrs)
	}
	if len(per) > 1 {
		// A stitched timeline would hide the fast-forward gaps; regions
		// report their spread instead.
		agg.Series = nil
	}
	if p.Regions > 1 {
		sum := &RegionSummary{Requested: p.Regions, Simulated: len(per), FastForward: p.FastForward}
		cpis := make([]float64, len(per))
		for i, r := range per {
			sum.IPC = append(sum.IPC, r.IPC)
			cpis[i] = r.CPI
		}
		sum.IPCMean, sum.IPCCI95 = stats.MeanCI95(sum.IPC)
		sum.CPIMean, sum.CPICI95 = stats.MeanCI95(cpis)
		agg.Regions = sum
	}
	return agg
}

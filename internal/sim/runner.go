package sim

import (
	"encoding/json"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/workloads"
)

// This file is the matrix side of the experiment scheduler: a (config ×
// workload) grid is flattened into independent cells and resolved
// through the cell-execution core (cell.go). The default runner drives a
// GOMAXPROCS-bounded local pool; the CLI and the grid service install a
// shared scheduler through SetMatrixRunner so every subcommand and every
// served job feed one queue and one artifact store. Each simulation is
// deterministic (fixed seeds, no wall-clock inputs), so a cached cell is
// bit-identical to a fresh run and `svrsim all` stops re-simulating the
// standard-configs × evaluation-set grid that Figs 1, 11, 12 and 13
// share.

// CellEvent is delivered to the progress hook after each cell of a
// scheduler run finishes, whether simulated or served from the store.
type CellEvent struct {
	Label    string        // configuration label
	Workload string        // workload name
	Cached   bool          // served resident from the artifact store
	Shared   bool          // joined another caller's in-flight execution
	Replayed bool          // consumed a recorded stream instead of a live emulator
	Wall     time.Duration // wall time spent on the cell
	Phases   PhaseTimes    // per-phase decomposition of Wall
	Instrs   uint64        // instructions the cell simulated (its Result's window)
	Done     int           // cells finished in the current matrix
	Cells    int           // total cells of the current matrix
}

var progress struct {
	sync.Mutex
	hook func(CellEvent)
}

// SetProgressHook installs fn to observe scheduler progress (nil
// disables). The hook is invoked sequentially, never concurrently.
func SetProgressHook(fn func(CellEvent)) {
	progress.Lock()
	progress.hook = fn
	progress.Unlock()
}

// EmitProgress delivers ev to the installed progress hook. External
// matrix runners (the grid scheduler) call it so CLI progress reporting
// works identically whichever runner executes the grid.
func EmitProgress(ev CellEvent) { emitProgress(ev) }

func emitProgress(ev CellEvent) {
	progress.Lock()
	defer progress.Unlock()
	if progress.hook != nil {
		progress.hook(ev)
	}
}

// Tracker is the live accounting of one in-flight grid: cell states,
// shared-pass production time, instruction throughput. The local matrix
// runner opens one per matrix; the grid service opens one per job. Every
// open tracker feeds the aggregate CurrentStatus view, so status
// surfaces see concurrent jobs as one grid. All methods are nil-safe —
// a nil *Tracker simply drops the accounting (tests, one-off cells).
type Tracker struct {
	mu          sync.Mutex
	start       time.Time
	cells       int
	done        int
	cached      int
	shared      int // of done, joined from another caller's in-flight cell
	replayed    int // of done, cells fed by a recorded stream
	building    int // workers constructing a workload image / machine
	ckpt        int // workers producing a shared fast-forward checkpoint
	recording   int // workers producing a shared stream recording
	running     int // workers inside Simulate
	instrs      uint64
	cohorts     int           // lockstep cohort runs completed
	cohortCells int           // cells those cohorts produced (occupancy numerator)
	ckptWall    time.Duration // completed checkpoint-production wall time
	recWall     time.Duration // completed recording-production wall time
	phaseWall   PhaseTimes    // finished cells' per-phase wall time

	// Sliding instruction-rate window for ETA projection: cumulative
	// instruction samples taken at each cell completion. Cohorts finish
	// cells in batches of up to MaxCohortWidth, so projecting from the
	// completion count sawtooths; a rate window over the recent samples
	// does not (the batch contributes both its instructions and the time
	// it took to produce them).
	samples  [rateSamples]rateSample
	nsamples int // samples written; index i lives at samples[i%rateSamples]
}

// rateSamples bounds the rate window's memory; rateWindowSpan is how far
// back the projection looks.
const (
	rateSamples    = 64
	rateWindowSpan = 20 * time.Second
)

type rateSample struct {
	at     time.Time
	instrs uint64 // cumulative instructions finished at the sample time
}

// rateWindow is the windowed instruction-rate estimate ETA projects
// from: instrs retired over span, with the window ending at last.
type rateWindow struct {
	instrs uint64
	span   time.Duration
	last   time.Time
}

// rateWindowLocked computes the sliding window ending at the newest
// sample: the base is the most recent sample at least rateWindowSpan
// old (or the oldest retained one). Caller holds t.mu.
func (t *Tracker) rateWindowLocked(now time.Time) rateWindow {
	newest := t.samples[(t.nsamples-1)%rateSamples]
	oldest := 0
	if t.nsamples > rateSamples {
		oldest = t.nsamples - rateSamples
	}
	base := newest
	for i := t.nsamples - 1; i >= oldest; i-- {
		base = t.samples[i%rateSamples]
		if now.Sub(base.at) >= rateWindowSpan {
			break
		}
	}
	return rateWindow{
		instrs: newest.instrs - base.instrs,
		span:   newest.at.Sub(base.at),
		last:   newest.at,
	}
}

// trackers is the registry of open trackers that CurrentStatus folds
// into the aggregate grid view.
var trackers = struct {
	sync.Mutex
	m map[*Tracker]struct{}
}{m: map[*Tracker]struct{}{}}

// NewTracker opens a tracker for a grid of the given cell count and
// registers it with the status surfaces. Close it when the grid ends.
func NewTracker(cells int) *Tracker {
	t := &Tracker{start: time.Now(), cells: cells}
	t.samples[0] = rateSample{at: t.start}
	t.nsamples = 1
	trackers.Lock()
	trackers.m[t] = struct{}{}
	trackers.Unlock()
	return t
}

// Close unregisters the tracker from the status surfaces.
func (t *Tracker) Close() {
	if t == nil {
		return
	}
	trackers.Lock()
	delete(trackers.m, t)
	trackers.Unlock()
}

// phase moves a worker between the building and running states.
func (t *Tracker) phase(building, running int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.building += building
	t.running += running
	t.mu.Unlock()
}

// ckptBegin moves the producing worker from "building" (set by the cell
// core) to the distinct "checkpointing" phase; ckptEnd moves it back and
// banks the production time for ETA correction.
func (t *Tracker) ckptBegin() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.building--
	t.ckpt++
	t.mu.Unlock()
}

func (t *Tracker) ckptEnd(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ckpt--
	t.building++
	t.ckptWall += d
	t.mu.Unlock()
}

// recBegin/recEnd are the recording-pass analogue of ckptBegin/ckptEnd.
func (t *Tracker) recBegin() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.building--
	t.recording++
	t.mu.Unlock()
}

func (t *Tracker) recEnd(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recording--
	t.building++
	t.recWall += d
	t.mu.Unlock()
}

// CellDone banks one finished cell into the tracker.
func (t *Tracker) CellDone(out CellOutcome, instrs uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done++
	if out.Cached {
		t.cached++
	}
	if out.Shared {
		t.shared++
	}
	if out.Replayed {
		t.replayed++
	}
	t.instrs += instrs
	t.phaseWall.AddAll(out.Phases)
	t.samples[t.nsamples%rateSamples] = rateSample{at: time.Now(), instrs: t.instrs}
	t.nsamples++
	t.mu.Unlock()
}

// CohortDone banks one finished lockstep cohort of k produced cells.
func (t *Tracker) CohortDone(k int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cohorts++
	t.cohortCells += k
	t.mu.Unlock()
}

// GridStatus is a point-in-time snapshot of the scheduler: one open grid
// or the aggregate over every concurrently open grid.
type GridStatus struct {
	Active        bool          // at least one grid is in flight
	Cells         int           // total cells of the open grids
	Queued        int           // not yet picked up by a worker
	Building      int           // constructing workload image / machine
	Checkpointing int           // producing a shared fast-forward checkpoint
	Recording     int           // producing a shared stream recording
	Running       int           // simulating
	Done          int           // finished (simulated or served from the store)
	Cached        int           // of Done, served resident from the artifact store
	Shared        int           // of Done, joined from another job's in-flight cell
	Replayed      int           // of Done, fed by a recorded stream
	Cohorts       int           // lockstep cohort runs completed
	CohortCells   int           // cells those cohorts produced (occupancy = CohortCells/Cohorts)
	Instrs        uint64        // instructions simulated by finished cells
	StreamBytes   int64         // encoded stream bytes produced so far (process-wide)
	DecodedHits   int64         // decoded-batch store hits (process-wide)
	DecodedMade   int64         // decoded batches produced (process-wide)
	Elapsed       time.Duration // since the earliest open grid started
	CkptWall      time.Duration // wall time spent producing checkpoints so far
	RecWall       time.Duration // wall time spent producing recordings so far
	PhaseWall     PhaseTimes    // finished cells' wall time decomposed by phase
	Rate          float64       // instructions per wall-second so far
	ETA           time.Duration // projected time to finish, 0 if unknown
}

// Status snapshots one tracker.
func (t *Tracker) Status() GridStatus {
	if t == nil {
		return GridStatus{}
	}
	now := time.Now()
	t.mu.Lock()
	s := GridStatus{
		Active: true, Cells: t.cells,
		Building: t.building, Checkpointing: t.ckpt,
		Recording: t.recording, Running: t.running,
		Done: t.done, Cached: t.cached, Shared: t.shared,
		Replayed: t.replayed, Instrs: t.instrs,
		Cohorts: t.cohorts, CohortCells: t.cohortCells,
		CkptWall: t.ckptWall, RecWall: t.recWall,
		PhaseWall: t.phaseWall,
		Elapsed:   now.Sub(t.start),
	}
	win := t.rateWindowLocked(now)
	t.mu.Unlock()
	finishStatus(&s, win, now)
	return s
}

// CurrentStatus aggregates every open tracker into one scheduler
// snapshot for status displays. With a single grid in flight (the CLI's
// single-shot subcommands) it is that grid's status; under the grid
// service it folds all concurrently running jobs together.
func CurrentStatus() GridStatus {
	now := time.Now()
	trackers.Lock()
	var s GridStatus
	var win rateWindow
	var earliest time.Time
	for t := range trackers.m {
		t.mu.Lock()
		s.Active = true
		s.Cells += t.cells
		s.Done += t.done
		s.Cached += t.cached
		s.Shared += t.shared
		s.Replayed += t.replayed
		s.Cohorts += t.cohorts
		s.CohortCells += t.cohortCells
		s.Building += t.building
		s.Checkpointing += t.ckpt
		s.Recording += t.recording
		s.Running += t.running
		s.Instrs += t.instrs
		s.CkptWall += t.ckptWall
		s.RecWall += t.recWall
		s.PhaseWall.AddAll(t.phaseWall)
		tw := t.rateWindowLocked(now)
		win.instrs += tw.instrs
		if tw.span > win.span {
			win.span = tw.span
		}
		if tw.last.After(win.last) {
			win.last = tw.last
		}
		if earliest.IsZero() || t.start.Before(earliest) {
			earliest = t.start
		}
		t.mu.Unlock()
	}
	trackers.Unlock()
	if s.Active {
		s.Elapsed = now.Sub(earliest)
	}
	finishStatus(&s, win, now)
	return s
}

// finishStatus derives the queue depth, rate and ETA shared by the
// per-tracker and aggregate snapshots.
func finishStatus(s *GridStatus, win rateWindow, now time.Time) {
	s.StreamBytes = RecordingStats().Bytes
	dec := artifacts.Stats()[artifact.Decoded]
	s.DecodedHits, s.DecodedMade = dec.Hits, dec.Produced
	s.Queued = s.Cells - s.Done - s.Building - s.Checkpointing - s.Recording - s.Running
	if s.Queued < 0 {
		s.Queued = 0
	}
	if !s.Active {
		s.Elapsed = 0
		return
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.Rate = float64(s.Instrs) / sec
	}
	if s.Done > 0 && s.Done < s.Cells {
		s.ETA = projectETA(s, win, now)
	}
}

// projectETA projects time-to-finish from the sliding instruction-rate
// window: remaining work (the mean instructions per finished cell times
// the unfinished count) over the windowed rate, minus the time already
// elapsed since the window's last completion. Projecting from the rate
// window instead of the completion count keeps the estimate steady when
// cohorts land up to MaxCohortWidth cells at once — the batch moves the
// numerator and denominator together. The floor is one second: an
// in-flight grid never reports a zero (= unknown) ETA.
func projectETA(s *GridStatus, win rateWindow, now time.Time) time.Duration {
	if win.span <= 0 || win.instrs == 0 {
		// No measured window yet (first cells still in flight): fall
		// back to the completion-count projection, with the one-time
		// shared production costs excluded.
		perCell := s.Elapsed - s.CkptWall - s.RecWall
		if perCell < 0 {
			perCell = 0
		}
		return time.Duration(float64(perCell) / float64(s.Done) * float64(s.Cells-s.Done))
	}
	rate := float64(win.instrs) / win.span.Seconds()
	perCell := float64(s.Instrs) / float64(s.Done)
	left := time.Duration(perCell * float64(s.Cells-s.Done) / rate * float64(time.Second))
	left -= now.Sub(win.last)
	if left < time.Second {
		left = time.Second
	}
	return left
}

// CellStat is the scheduling record of one grid cell.
type CellStat struct {
	Label    string
	Workload string
	Cached   bool
	Shared   bool // joined another job's in-flight execution of the same cell
	Replayed bool // fed by a recorded stream instead of a live emulator
	Wall     time.Duration
}

// SchedStats aggregates scheduler counters: how many cells an experiment
// ran, how many the store served (resident or joined in flight), how
// many consumed a recorded stream, and the wall time spent.
type SchedStats struct {
	Cells    int
	Cached   int
	Shared   int `json:",omitempty"`
	Replayed int
	Wall     time.Duration
}

func (s *SchedStats) add(o SchedStats) {
	s.Cells += o.Cells
	s.Cached += o.Cached
	s.Shared += o.Shared
	s.Replayed += o.Replayed
	s.Wall += o.Wall
}

// ResultSet is the typed output of one scheduler invocation: the (config
// × workload) grid of Results plus per-cell scheduling metadata.
type ResultSet struct {
	rows  map[string]map[string]Result
	Cells []CellStat
	Stats SchedStats
}

// NewResultSet returns an empty set shaped for the given configuration
// labels; AddCell fills it and Finish seals it. The matrix runners (the
// local pool and the grid service) share this assembly so their output
// is structurally identical.
func NewResultSet(cfgs []Config) *ResultSet {
	rs := &ResultSet{rows: make(map[string]map[string]Result, len(cfgs))}
	for _, cfg := range cfgs {
		rs.rows[cfg.Label] = map[string]Result{}
	}
	return rs
}

// AddCell records one finished cell. Callers serialize AddCell calls.
func (rs *ResultSet) AddCell(res Result, st CellStat) {
	row, ok := rs.rows[st.Label]
	if !ok {
		row = map[string]Result{}
		rs.rows[st.Label] = row
	}
	row[st.Workload] = res
	rs.Cells = append(rs.Cells, st)
	rs.Stats.Cells++
	if st.Cached {
		rs.Stats.Cached++
	}
	if st.Shared {
		rs.Stats.Shared++
	}
	if st.Replayed {
		rs.Stats.Replayed++
	}
}

// Finish seals the set: cells are sorted into the deterministic
// (workload, label) order the renderers expect.
func (rs *ResultSet) Finish() {
	sort.Slice(rs.Cells, func(i, j int) bool {
		if rs.Cells[i].Workload != rs.Cells[j].Workload {
			return rs.Cells[i].Workload < rs.Cells[j].Workload
		}
		return rs.Cells[i].Label < rs.Cells[j].Label
	})
}

// Row returns the per-workload results of one configuration label.
func (rs *ResultSet) Row(label string) map[string]Result { return rs.rows[label] }

// Get returns one cell's result.
func (rs *ResultSet) Get(label, workload string) (Result, bool) {
	res, ok := rs.rows[label][workload]
	return res, ok
}

// Labels returns the configuration labels of the set, sorted.
func (rs *ResultSet) Labels() []string {
	out := make([]string, 0, len(rs.rows))
	for l := range rs.rows {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// JSON renders the set machine-readably: every cell's full Result record
// with its scheduling metadata.
func (rs *ResultSet) JSON() ([]byte, error) {
	type cellJSON struct {
		Label    string
		Workload string
		Cached   bool
		Shared   bool `json:",omitempty"`
		Replayed bool
		WallNS   int64
		Result   Result
	}
	out := struct {
		Stats SchedStats
		Cells []cellJSON
	}{Stats: rs.Stats}
	for _, c := range rs.Cells {
		res := rs.rows[c.Label][c.Workload]
		out.Cells = append(out.Cells, cellJSON{
			Label: c.Label, Workload: c.Workload,
			Cached: c.Cached, Shared: c.Shared, Replayed: c.Replayed,
			WallNS: c.Wall.Nanoseconds(), Result: res,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// MatrixRunner executes one (configs × workloads) grid and returns its
// ResultSet. Labels must be unique within one call (they key the result
// rows).
type MatrixRunner func(cfgs []Config, specs []workloads.Spec, p Params) *ResultSet

var matrixCtl = struct {
	sync.Mutex
	runner MatrixRunner
}{}

// SetMatrixRunner installs the grid executor every experiment matrix
// routes through, returning the previous one (nil means the built-in
// local pool). The CLI installs the shared grid scheduler here so
// single-shot subcommands and the serve service are thin clients of the
// same scheduler core.
func SetMatrixRunner(r MatrixRunner) MatrixRunner {
	matrixCtl.Lock()
	defer matrixCtl.Unlock()
	prev := matrixCtl.runner
	matrixCtl.runner = r
	return prev
}

// runMatrix routes a grid to the installed matrix runner (the local pool
// by default).
func runMatrix(cfgs []Config, specs []workloads.Spec, p Params) *ResultSet {
	matrixCtl.Lock()
	r := matrixCtl.runner
	matrixCtl.Unlock()
	if r != nil {
		return r(cfgs, specs, p)
	}
	return RunMatrixLocal(cfgs, specs, p)
}

// MatrixCells flattens a grid into its cell requests in workload-major
// order: with a bounded pool, only a handful of workload images are in
// flight at once, so peak memory stays level even for huge grids. Both
// matrix runners schedule in this order.
func MatrixCells(cfgs []Config, specs []workloads.Spec, p Params) []CellRequest {
	cells := make([]CellRequest, 0, len(cfgs)*len(specs))
	for _, spec := range specs {
		for _, cfg := range cfgs {
			cells = append(cells, CellRequest{Cfg: cfg, Spec: spec, P: p})
		}
	}
	return cells
}

// RunMatrixLocal simulates every (config, workload) cell of the grid on
// a GOMAXPROCS-bounded worker pool, front-ended by the artifact store.
// Results are bit-identical to a serial, uncached sweep.
func RunMatrixLocal(cfgs []Config, specs []workloads.Spec, p Params) *ResultSet {
	start := time.Now()
	cells := MatrixCells(cfgs, specs, p)
	tr := NewTracker(len(cells))
	defer tr.Close()
	rs := NewResultSet(cfgs)

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		done int
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, group := range PlanCohorts(cells, nil) {
		group := group
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			reqs := make([]CellRequest, len(group))
			for k, ci := range group {
				reqs[k] = cells[ci]
			}
			results, outs := ExecuteCohort(reqs, tr)
			for k, c := range reqs {
				res, out := results[k], outs[k]
				mu.Lock()
				rs.AddCell(res, CellStat{
					Label: c.Cfg.Label, Workload: c.Spec.Name, Cached: out.Cached,
					Shared: out.Shared, Replayed: out.Replayed, Wall: out.Wall,
				})
				done++
				ev := CellEvent{Label: c.Cfg.Label, Workload: c.Spec.Name, Cached: out.Cached,
					Shared: out.Shared, Replayed: out.Replayed,
					Wall: out.Wall, Phases: out.Phases, Instrs: res.Instrs, Done: done, Cells: len(cells)}
				mu.Unlock()
				tr.CellDone(out, res.Instrs)
				emitProgress(ev)
			}
		}()
	}
	wg.Wait()
	rs.Stats.Wall = time.Since(start)
	rs.Finish()
	return rs
}

package sim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/workloads"
)

// This file is the experiment scheduler: every figure's (config ×
// workload) grid is flattened into independent cells, run on a
// GOMAXPROCS-bounded worker pool, and memoized in a process-wide cache.
// Each simulation is deterministic (fixed seeds, no wall-clock inputs),
// so a cached cell is bit-identical to a fresh run and `svrsim all` stops
// re-simulating the standard-configs × evaluation-set grid that Figs 1,
// 11, 12 and 13 share.

// cellKey identifies one simulation by content: the machine configuration
// (minus its display label), the workload name, and the window.
type cellKey [sha256.Size]byte

// hashCell derives the cache key. Config and Params are plain-data
// structs, so their canonical JSON encoding is a stable content hash; the
// label is display-only and must not split otherwise-identical cells
// (sweeps relabel the default configuration all the time).
func hashCell(cfg Config, workload string, p Params) cellKey {
	cfg.Label = ""
	blob, err := json.Marshal(struct {
		Cfg      Config
		Workload string
		P        Params
	}{cfg, workload, p})
	if err != nil {
		panic(fmt.Sprintf("sim: cannot hash cell: %v", err))
	}
	return sha256.Sum256(blob)
}

// runCache memoizes completed cells for the lifetime of the process.
var runCache = struct {
	sync.Mutex
	m            map[cellKey]Result
	hits, misses int64
	disabled     bool
}{m: map[cellKey]Result{}}

func cacheGet(k cellKey) (Result, bool) {
	runCache.Lock()
	defer runCache.Unlock()
	if runCache.disabled {
		runCache.misses++
		return Result{}, false
	}
	res, ok := runCache.m[k]
	if ok {
		runCache.hits++
	} else {
		runCache.misses++
	}
	return res, ok
}

func cachePut(k cellKey, res Result) {
	runCache.Lock()
	defer runCache.Unlock()
	if !runCache.disabled {
		runCache.m[k] = res
	}
}

// RunCacheStats returns the process-wide cell cache counters.
func RunCacheStats() (hits, misses int64) {
	runCache.Lock()
	defer runCache.Unlock()
	return runCache.hits, runCache.misses
}

// SetRunCacheEnabled toggles the memoized run cache (a cold run
// re-simulates every cell) and returns the previous setting. Disabling
// also drops the cached cells.
func SetRunCacheEnabled(on bool) bool {
	runCache.Lock()
	defer runCache.Unlock()
	prev := !runCache.disabled
	runCache.disabled = !on
	if !on {
		runCache.m = map[cellKey]Result{}
	}
	return prev
}

// ResetRunCache drops every memoized cell and zeroes the counters.
func ResetRunCache() {
	runCache.Lock()
	defer runCache.Unlock()
	runCache.m = map[cellKey]Result{}
	runCache.hits, runCache.misses = 0, 0
}

// CellEvent is delivered to the progress hook after each cell of a
// scheduler run finishes, whether simulated or served from cache.
type CellEvent struct {
	Label    string        // configuration label
	Workload string        // workload name
	Cached   bool          // served from the run cache
	Replayed bool          // consumed a recorded stream instead of a live emulator
	Wall     time.Duration // wall time spent on the cell
	Instrs   uint64        // instructions the cell simulated (its Result's window)
	Done     int           // cells finished in the current matrix
	Cells    int           // total cells of the current matrix
}

var progress struct {
	sync.Mutex
	hook func(CellEvent)
}

// SetProgressHook installs fn to observe scheduler progress (nil
// disables). The hook is invoked sequentially, never concurrently.
func SetProgressHook(fn func(CellEvent)) {
	progress.Lock()
	progress.hook = fn
	progress.Unlock()
}

func emitProgress(ev CellEvent) {
	progress.Lock()
	defer progress.Unlock()
	if progress.hook != nil {
		progress.hook(ev)
	}
}

// gridState is the live view of the scheduler, fed by runMatrix's workers
// and read by status surfaces (the CLI progress line, the -status HTTP
// endpoint). It describes the current matrix only; a sweep resets it per
// grid.
var gridState struct {
	sync.Mutex
	active    bool
	start     time.Time
	cells     int
	done      int
	cached    int
	replayed  int // of done, cells fed by a recorded stream
	building  int // workers constructing a workload image / machine
	ckpt      int // workers producing a shared fast-forward checkpoint
	recording int // workers producing a shared stream recording
	running   int // workers inside Simulate
	instrs    uint64
	ckptWall  time.Duration // completed checkpoint-production wall time
	recWall   time.Duration // completed recording-production wall time
}

// GridStatus is a point-in-time snapshot of the scheduler.
type GridStatus struct {
	Active        bool          // a matrix is in flight
	Cells         int           // total cells of the current matrix
	Queued        int           // not yet picked up by a worker
	Building      int           // constructing workload image / machine
	Checkpointing int           // producing a shared fast-forward checkpoint
	Recording     int           // producing a shared stream recording
	Running       int           // simulating
	Done          int           // finished (simulated or cached)
	Cached        int           // of Done, served from the run cache
	Replayed      int           // of Done, fed by a recorded stream
	Instrs        uint64        // instructions simulated by finished cells
	StreamBytes   int64         // encoded stream bytes produced so far (process-wide)
	Elapsed       time.Duration // since the matrix started
	CkptWall      time.Duration // wall time spent producing checkpoints so far
	RecWall       time.Duration // wall time spent producing recordings so far
	Rate          float64       // instructions per wall-second so far
	ETA           time.Duration // projected time to finish, 0 if unknown
}

// CurrentStatus snapshots the scheduler state for status displays.
func CurrentStatus() GridStatus {
	gridState.Lock()
	defer gridState.Unlock()
	s := GridStatus{
		Active: gridState.active, Cells: gridState.cells,
		Building: gridState.building, Checkpointing: gridState.ckpt,
		Recording: gridState.recording, Running: gridState.running,
		Done: gridState.done, Cached: gridState.cached,
		Replayed: gridState.replayed, Instrs: gridState.instrs,
		CkptWall: gridState.ckptWall, RecWall: gridState.recWall,
	}
	s.StreamBytes = RecordingStats().Bytes
	s.Queued = s.Cells - s.Done - s.Building - s.Checkpointing - s.Recording - s.Running
	if s.Queued < 0 {
		s.Queued = 0
	}
	if gridState.active {
		s.Elapsed = time.Since(gridState.start)
		if sec := s.Elapsed.Seconds(); sec > 0 {
			s.Rate = float64(s.Instrs) / sec
		}
		if s.Done > 0 && s.Done < s.Cells {
			// Checkpoint and recording production are one-time shared
			// costs, not per-cell ones: project from per-cell time with
			// them excluded, so ETA doesn't jump when a shared pass
			// finishes.
			perCell := s.Elapsed - s.CkptWall - s.RecWall
			if perCell < 0 {
				perCell = 0
			}
			s.ETA = time.Duration(float64(perCell) / float64(s.Done) * float64(s.Cells-s.Done))
		}
	}
	return s
}

func gridBegin(cells int) {
	gridState.Lock()
	gridState.active = true
	gridState.start = time.Now()
	gridState.cells = cells
	gridState.done, gridState.cached, gridState.replayed = 0, 0, 0
	gridState.building, gridState.ckpt, gridState.recording, gridState.running = 0, 0, 0, 0
	gridState.instrs = 0
	gridState.ckptWall, gridState.recWall = 0, 0
	gridState.Unlock()
}

func gridPhase(building, running int) {
	gridState.Lock()
	gridState.building += building
	gridState.running += running
	gridState.Unlock()
}

// gridCkptBegin moves the producing worker from "building" (set by the
// worker loop) to the distinct "checkpointing" phase; gridCkptEnd moves
// it back and banks the production time for ETA correction.
func gridCkptBegin() {
	gridState.Lock()
	gridState.building--
	gridState.ckpt++
	gridState.Unlock()
}

func gridCkptEnd(d time.Duration) {
	gridState.Lock()
	gridState.ckpt--
	gridState.building++
	gridState.ckptWall += d
	gridState.Unlock()
}

// gridRecBegin/gridRecEnd are the recording-pass analogue of
// gridCkptBegin/gridCkptEnd: the producing worker leaves "building" for
// the distinct "recording" phase, and its production time is banked so
// the ETA projection treats it as a shared one-time cost.
func gridRecBegin() {
	gridState.Lock()
	gridState.building--
	gridState.recording++
	gridState.Unlock()
}

func gridRecEnd(d time.Duration) {
	gridState.Lock()
	gridState.recording--
	gridState.building++
	gridState.recWall += d
	gridState.Unlock()
}

func gridCellDone(cached, replayed bool, instrs uint64) {
	gridState.Lock()
	gridState.done++
	if cached {
		gridState.cached++
	}
	if replayed {
		gridState.replayed++
	}
	gridState.instrs += instrs
	gridState.Unlock()
}

func gridFinish() {
	gridState.Lock()
	gridState.active = false
	gridState.Unlock()
}

// CellStat is the scheduling record of one grid cell.
type CellStat struct {
	Label    string
	Workload string
	Cached   bool
	Replayed bool // fed by a recorded stream instead of a live emulator
	Wall     time.Duration
}

// SchedStats aggregates scheduler counters: how many cells an experiment
// ran, how many the memo served, how many consumed a recorded stream,
// and the wall time spent.
type SchedStats struct {
	Cells    int
	Cached   int
	Replayed int
	Wall     time.Duration
}

func (s *SchedStats) add(o SchedStats) {
	s.Cells += o.Cells
	s.Cached += o.Cached
	s.Replayed += o.Replayed
	s.Wall += o.Wall
}

// ResultSet is the typed output of one scheduler invocation: the (config
// × workload) grid of Results plus per-cell scheduling metadata.
type ResultSet struct {
	rows  map[string]map[string]Result
	Cells []CellStat
	Stats SchedStats
}

// Row returns the per-workload results of one configuration label.
func (rs *ResultSet) Row(label string) map[string]Result { return rs.rows[label] }

// Get returns one cell's result.
func (rs *ResultSet) Get(label, workload string) (Result, bool) {
	res, ok := rs.rows[label][workload]
	return res, ok
}

// Labels returns the configuration labels of the set, sorted.
func (rs *ResultSet) Labels() []string {
	out := make([]string, 0, len(rs.rows))
	for l := range rs.rows {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// JSON renders the set machine-readably: every cell's full Result record
// with its scheduling metadata.
func (rs *ResultSet) JSON() ([]byte, error) {
	type cellJSON struct {
		Label    string
		Workload string
		Cached   bool
		Replayed bool
		WallNS   int64
		Result   Result
	}
	out := struct {
		Stats SchedStats
		Cells []cellJSON
	}{Stats: rs.Stats}
	for _, c := range rs.Cells {
		res := rs.rows[c.Label][c.Workload]
		out.Cells = append(out.Cells, cellJSON{
			Label: c.Label, Workload: c.Workload,
			Cached: c.Cached, Replayed: c.Replayed,
			WallNS: c.Wall.Nanoseconds(), Result: res,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// masterEntry shares one workload build across the cells that need it.
// The build is lazy — a workload whose every cell hits the cache is never
// built — and the matrix-local reference is released once its last cell
// finishes (the process-wide build cache may retain the image longer).
type masterEntry struct {
	once      sync.Once
	inst      *workloads.Instance
	remaining int
}

func (e *masterEntry) instance(spec workloads.Spec, sc workloads.Scale) *workloads.Instance {
	e.once.Do(func() { e.inst = cachedBuild(spec, sc) })
	return e.inst
}

// buildKey identifies one deterministic cacheable image. Raw workload
// builds are pure functions of (generator, scale), so name+scale is a
// content key (ff, warm and stream stay zero). Post-fast-forward
// checkpoints additionally depend on the fast-forward length and — when
// warming — on the warm-relevant machine geometry (warmKey). Stream
// recordings depend on the fast-forward length and the recorded window
// size, never on warm geometry: the functional stream is the same
// whatever the caches look like.
type buildKey struct {
	name   string
	scale  workloads.Scale
	ff     uint64 // 0: raw image; >0: checkpoint/recording after ff instructions
	warm   string // warm-geometry hash when the fast-forward warmed, else ""
	stream uint64 // recorded window length for stream recordings, else 0
}

// buildCache memoizes workload images — and, since the checkpoint layer,
// post-fast-forward checkpoints — across scheduler invocations. A sweep
// like `svrsim all` runs ~15 experiments over largely the same workload
// set; without the cache every matrix re-runs the same Kronecker
// generation and sorting, and every cell re-runs its workload's
// fast-forward. Copy-on-write Clone makes retention safe: cells clone
// the image and never write the master, so a cached entry stays
// pristine. The cache is byte-budgeted (LRU) so paper-scale images
// cannot pile up without bound.
var buildCache = struct {
	sync.Mutex
	m     map[buildKey]any // *workloads.Instance or *Checkpoint
	order []buildKey       // LRU order, least recently used first
	bytes int64
	limit int64
}{m: map[buildKey]any{}, limit: 512 << 20}

func instanceBytes(inst *workloads.Instance) int64 {
	return int64(inst.Mem.Pages()) * mem.PageSize
}

// entryBytes sizes one build-cache entry for the byte budget.
func entryBytes(v any) int64 {
	switch e := v.(type) {
	case *workloads.Instance:
		return instanceBytes(e)
	case *Checkpoint:
		return e.Bytes()
	case *stream.Recording:
		return int64(e.Bytes())
	}
	return 0
}

// touchBuild moves k to the most-recently-used end of the LRU order.
func touchBuild(k buildKey) {
	for i, o := range buildCache.order {
		if o == k {
			copy(buildCache.order[i:], buildCache.order[i+1:])
			buildCache.order[len(buildCache.order)-1] = k
			return
		}
	}
}

// cachedBuild returns the memoized image for (spec, sc), building it on a
// miss. Matrices run sequentially, so a key is never built twice
// concurrently; within one matrix each workload is guarded by its
// masterEntry's sync.Once.
func cachedBuild(spec workloads.Spec, sc workloads.Scale) *workloads.Instance {
	k := buildKey{name: spec.Name, scale: sc}
	buildCache.Lock()
	if inst, ok := buildCache.m[k]; ok {
		touchBuild(k)
		buildCache.Unlock()
		return inst.(*workloads.Instance)
	}
	buildCache.Unlock()

	inst := spec.Build(sc)

	buildCache.Lock()
	defer buildCache.Unlock()
	if prev, ok := buildCache.m[k]; ok { // lost a (cross-matrix) race
		touchBuild(k)
		return prev.(*workloads.Instance)
	}
	storeBuild(k, inst)
	return inst
}

// storeBuild inserts an entry and evicts LRU entries past the byte
// budget. Caller holds buildCache's lock.
func storeBuild(k buildKey, v any) {
	buildCache.m[k] = v
	buildCache.order = append(buildCache.order, k)
	buildCache.bytes += entryBytes(v)
	for buildCache.bytes > buildCache.limit && len(buildCache.order) > 1 {
		victim := buildCache.order[0]
		buildCache.order = buildCache.order[1:]
		buildCache.bytes -= entryBytes(buildCache.m[victim])
		delete(buildCache.m, victim)
	}
}

// cloneInstance copies the memory image so a run (which mutates memory
// through stores) cannot contaminate the shared master build.
func cloneInstance(master *workloads.Instance) *workloads.Instance {
	return &workloads.Instance{
		Name: master.Name, Prog: master.Prog,
		Mem: master.Mem.Clone(), Check: master.Check,
	}
}

// warmKey hashes the configuration state functional warming actually
// depends on: cache/TLB/prefetcher geometry and branch-predictor table
// size. Latencies, MSHR count, walker count and the DRAM model never
// touch warmed tags, so sweeps over them (MSHR/bandwidth sensitivity)
// share one warmed checkpoint per workload.
func warmKey(cfg Config) string {
	hier := cfg.Hier
	hier.L1Latency, hier.L2Latency, hier.STLBLatency, hier.WalkLatency = 0, 0, 0, 0
	hier.L1MSHRs, hier.NumPTWs = 0, 0
	hier.DRAM = dram.Config{}
	bits := cfg.InO.BPredTableBits
	if cfg.Core == OoO {
		bits = cfg.OoO.BPredTableBits
	}
	blob, err := json.Marshal(struct {
		Hier      cache.Config
		BPredBits uint
	}{hier, bits})
	if err != nil {
		panic(fmt.Sprintf("sim: cannot hash warm geometry: %v", err))
	}
	sum := sha256.Sum256(blob)
	return fmt.Sprintf("%x", sum[:8])
}

// ckptFlight collapses concurrent producers of one checkpoint key: the
// fast-forward is the expensive shared step, so exactly one worker runs
// it while the rest wait for its result.
var ckptFlight = struct {
	sync.Mutex
	m map[buildKey]*ckptCall
}{m: map[buildKey]*ckptCall{}}

type ckptCall struct {
	done chan struct{}
	ck   *Checkpoint
}

// cachedCheckpoint returns the shared post-fast-forward checkpoint for
// (workload, params, warm geometry), producing it once on a miss: build
// (or fetch) the raw image, fast-forward a throwaway machine, capture.
func cachedCheckpoint(spec workloads.Spec, cfg Config, p Params) *Checkpoint {
	k := buildKey{name: spec.Name, scale: p.Scale, ff: p.FastForward}
	if p.Warm {
		k.warm = warmKey(cfg)
	}
	buildCache.Lock()
	if v, ok := buildCache.m[k]; ok {
		touchBuild(k)
		buildCache.Unlock()
		return v.(*Checkpoint)
	}
	buildCache.Unlock()

	ckptFlight.Lock()
	if call, ok := ckptFlight.m[k]; ok {
		ckptFlight.Unlock()
		<-call.done
		return call.ck
	}
	call := &ckptCall{done: make(chan struct{})}
	ckptFlight.m[k] = call
	ckptFlight.Unlock()

	gridCkptBegin()
	t0 := time.Now()
	m, err := NewMachine(cfg, cloneInstance(cachedBuild(spec, p.Scale)))
	if err != nil {
		panic(err)
	}
	m.FastForward(p.FastForward, p.Warm)
	ck := m.Checkpoint()
	gridCkptEnd(time.Since(t0))

	buildCache.Lock()
	storeBuild(k, ck)
	buildCache.Unlock()

	call.ck = ck
	close(call.done)
	ckptFlight.Lock()
	delete(ckptFlight.m, k)
	ckptFlight.Unlock()
	return ck
}

// runMatrix simulates every (config, workload) cell of the grid on a
// GOMAXPROCS-bounded worker pool, front-ended by the run cache. Labels
// must be unique within one call (they key the result rows). Results are
// bit-identical to a serial, uncached sweep.
func runMatrix(cfgs []Config, specs []workloads.Spec, p Params) *ResultSet {
	start := time.Now()
	gridBegin(len(cfgs) * len(specs))
	defer gridFinish()
	rs := &ResultSet{rows: make(map[string]map[string]Result, len(cfgs))}
	for _, cfg := range cfgs {
		rs.rows[cfg.Label] = make(map[string]Result, len(specs))
	}

	masters := make([]*masterEntry, len(specs))
	for i := range masters {
		masters[i] = &masterEntry{remaining: len(cfgs)}
	}

	// Workload-major cell order: with a bounded pool, only a handful of
	// masters are in flight at once, so peak memory stays at the level of
	// the old per-workload-goroutine scheme even for huge grids.
	type cell struct{ wi, ci int }
	cells := make([]cell, 0, len(cfgs)*len(specs))
	for wi := range specs {
		for ci := range cfgs {
			cells = append(cells, cell{wi, ci})
		}
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		done int
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, c := range cells {
		c := c
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cfg, spec := cfgs[c.ci], specs[c.wi]
			cellStart := time.Now()
			key := hashCell(cfg, spec.Name, p)
			res, cached := cacheGet(key)
			replayed := false
			if !cached {
				gridPhase(+1, 0)
				switch {
				case replayEligible(cfg, p):
					// Execute-once, time-many path: the workload window is
					// recorded once (cachedRecording, composing with the
					// shared checkpoint when fast-forwarding) and this cell
					// replays the buffer through its timing models.
					replayed = true
					recd := cachedRecording(spec, cfg, p)
					var master *workloads.Instance
					if p.FastForward == 0 {
						master = masters[c.wi].instance(spec, p.Scale)
					}
					m, err := newReplayMachine(cfg, spec, p, recd, master)
					if err != nil {
						panic(err)
					}
					gridPhase(-1, +1)
					if p.FastForward > 0 {
						res = SimulateFrom(m, p)
					} else {
						res = Simulate(m, p)
					}
				case p.FastForward > 0:
					// Shared-checkpoint path: the workload's fast-forward
					// runs once (cachedCheckpoint) and every cell resumes
					// from a clone of its frozen image.
					ck := cachedCheckpoint(spec, cfg, p)
					m, err := NewMachineFrom(cfg, ck)
					if err != nil {
						panic(err)
					}
					gridPhase(-1, +1)
					res = SimulateFrom(m, p)
				default:
					inst := cloneInstance(masters[c.wi].instance(spec, p.Scale))
					m, err := NewMachine(cfg, inst)
					if err != nil {
						panic(err)
					}
					gridPhase(-1, +1)
					res = Simulate(m, p)
				}
				gridPhase(0, -1)
				cachePut(key, res)
			}
			// The cached record may carry another sweep's display label.
			res.Label = cfg.Label
			wall := time.Since(cellStart)

			mu.Lock()
			masters[c.wi].remaining--
			if masters[c.wi].remaining == 0 {
				masters[c.wi].inst = nil // release the image early
			}
			rs.rows[cfg.Label][spec.Name] = res
			rs.Cells = append(rs.Cells, CellStat{
				Label: cfg.Label, Workload: spec.Name, Cached: cached,
				Replayed: replayed, Wall: wall,
			})
			rs.Stats.Cells++
			if cached {
				rs.Stats.Cached++
			}
			if replayed {
				rs.Stats.Replayed++
			}
			done++
			ev := CellEvent{Label: cfg.Label, Workload: spec.Name, Cached: cached,
				Replayed: replayed,
				Wall:     wall, Instrs: res.Instrs, Done: done, Cells: len(cells)}
			mu.Unlock()
			gridCellDone(cached, replayed, res.Instrs)
			emitProgress(ev)
		}()
	}
	wg.Wait()
	rs.Stats.Wall = time.Since(start)
	sort.Slice(rs.Cells, func(i, j int) bool {
		if rs.Cells[i].Workload != rs.Cells[j].Workload {
			return rs.Cells[i].Workload < rs.Cells[j].Workload
		}
		return rs.Cells[i].Label < rs.Cells[j].Label
	})
	return rs
}

// Package sim ties the substrates together: it runs a workload on a
// configured machine (in-order, in-order+IMP, out-of-order, or
// in-order+SVR) and collects the measurements the paper's figures are
// built from. The experiments subfiles (fig*.go) regenerate each table
// and figure of the evaluation.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/cpu/ooo"
	"repro/internal/energy"
	"repro/internal/imp"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/svr"
	"repro/internal/workloads"
)

// CoreKind selects the machine organization (Table III columns + IMP).
type CoreKind int

// Machine kinds.
const (
	InO CoreKind = iota // baseline 3-wide in-order (Cortex-A510-like)
	IMP                 // in-order + indirect memory prefetcher
	OoO                 // 3-wide out-of-order, 32-entry ROB
	SVR                 // in-order + scalar vector runahead
)

// String names the kind as in the figures.
func (k CoreKind) String() string {
	switch k {
	case InO:
		return "in-order"
	case IMP:
		return "IMP"
	case OoO:
		return "out-of-order"
	default:
		return "SVR"
	}
}

// Config describes one machine to simulate.
type Config struct {
	Core CoreKind
	Hier cache.Config
	InO  inorder.Config
	OoO  ooo.Config
	IMP  imp.Config
	SVR  svr.Options

	Label string // display label ("SVR16" etc.)
}

// MachineConfig builds the default Table III machine of the given kind.
func MachineConfig(kind CoreKind) Config {
	cfg := Config{
		Core:  kind,
		Hier:  cache.DefaultConfig(),
		InO:   inorder.DefaultConfig(),
		OoO:   ooo.DefaultConfig(),
		IMP:   imp.DefaultConfig(),
		SVR:   svr.DefaultOptions(),
		Label: kind.String(),
	}
	// The paper re-enables a banned SVR every one million instructions;
	// our measurement windows are ~300x shorter than its 200M-instruction
	// regions, so the recheck interval scales accordingly (DESIGN.md,
	// substitution 4).
	cfg.SVR.AccuracyRecheck = 100_000
	return cfg
}

// SVRConfig builds an SVR machine with vector length n.
func SVRConfig(n int) Config {
	cfg := MachineConfig(SVR)
	cfg.SVR.VectorLen = n
	cfg.Label = fmt.Sprintf("SVR%d", n)
	return cfg
}

// Params controls a simulation window.
type Params struct {
	Scale   workloads.Scale
	Warmup  uint64 // instructions before statistics reset
	Measure uint64 // measured instructions

	// FastForward, when non-zero, functionally executes this many
	// instructions (no DynInstr streaming, no timing models) before each
	// detailed region. The experiment scheduler captures the machine
	// state after the first fast-forward as a shared checkpoint, so the
	// fast-forward of a workload runs once and is cloned into every
	// compatible config cell.
	FastForward uint64
	// Warm enables functional warming during fast-forward: cache, TLB,
	// prefetch-tag and branch-predictor state is updated alongside the
	// architectural execution at ~zero timing cost, letting the detailed
	// warmup shrink or disappear.
	Warm bool
	// Regions, when above one, runs that many detailed warmup+measure
	// windows stitched together by fast-forward gaps and aggregates
	// them; Result.Regions carries the per-region spread.
	Regions int

	// SampleEvery, when non-zero, turns on interval sampling: the
	// measurement window is chunked into SampleEvery-instruction
	// intervals and each contributes one row to Result.Series. Sampling
	// does not perturb the simulated timing.
	SampleEvery uint64
}

// DefaultParams returns the standard evaluation window (a scaled-down
// stand-in for the paper's 200 M-instruction regions; see DESIGN.md).
func DefaultParams() Params {
	return Params{Scale: workloads.BenchScale(), Warmup: 300_000, Measure: 600_000}
}

// QuickParams is a faster window for tests: smaller graphs, but still
// several times the L2 so the memory-bound regime holds.
func QuickParams() Params {
	return Params{Scale: workloads.Scale{GraphNodes: 1 << 16, Elems: 1 << 18, Seed: 42},
		Warmup: 60_000, Measure: 200_000}
}

// PaperParams is the paper-scale sampled window: up to ten detailed
// regions spread across the workload by functionally-warmed
// fast-forward, so a cell's samples span the longest default-scale
// workloads (~96 M dynamic instructions — the closest our budget gets to
// the paper's 200 M-instruction regions) while detailed simulation
// covers only the measured windows. Shorter workloads simply run fewer
// regions: the schedule stops at program end and the aggregate reports
// how many regions actually ran.
func PaperParams() Params {
	return Params{
		Scale:       workloads.BenchScale(),
		FastForward: 8_000_000,
		Warm:        true,
		Regions:     10,
		Warmup:      100_000,
		Measure:     500_000,
	}
}

// Result is the measurement record of one run.
type Result struct {
	Workload string
	Label    string

	Instrs uint64
	Cycles int64
	IPC    float64
	CPI    float64
	Stack  stats.CPIStack

	Energy energy.Report

	DRAMLoads   [cache.NumOrigins]int64
	IFetchLoads int64
	Writebacks  int64
	PFStats     [cache.NumOrigins]cache.PFStats

	SVRStats   svr.Stats
	ExtraSlots int64

	// Metrics is the machine's full registry snapshot for the measurement
	// window — every counter and latency histogram, keyed by metric name.
	Metrics metrics.Snapshot

	// Series is the interval-sampled timeline of the measurement window;
	// nil unless Params.SampleEvery was set (and dropped when a run
	// aggregates more than one region).
	Series *TimeSeries `json:",omitempty"`

	// Regions summarizes the per-region spread of a multi-region sampled
	// run; nil for single-window runs.
	Regions *RegionSummary `json:",omitempty"`
}

// Run simulates one workload on one machine. It builds a fresh instance
// and always executes — the memoized run cache only fronts the experiment
// scheduler (runMatrix), so callers that depend on real execution (e.g.
// architectural self-checks on the mutated memory image) stay exact.
// It panics if cfg names a core kind with no registered Machine.
func Run(spec workloads.Spec, cfg Config, p Params) Result {
	m, err := NewMachine(cfg, spec.Build(p.Scale))
	if err != nil {
		panic(err)
	}
	return Simulate(m, p)
}

func (r *Result) fillCommon(instrs uint64, cycles int64, stack stats.CPIStack, h *cache.Hierarchy) {
	r.Instrs = instrs
	r.Cycles = cycles
	if cycles > 0 {
		r.IPC = float64(instrs) / float64(cycles)
	}
	if instrs > 0 {
		r.CPI = float64(cycles) / float64(instrs)
	}
	r.Stack = stack
	r.DRAMLoads = h.DRAMLoads
	r.IFetchLoads = h.IFetchLoads
	r.Writebacks = h.Writebacks
	r.PFStats = h.Tracker.Stats
}

// RunByName looks a workload up and simulates it.
func RunByName(name string, cfg Config, p Params) (Result, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return Result{}, err
	}
	return Run(spec, cfg, p), nil
}

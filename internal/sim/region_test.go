package sim

import (
	"math"
	"testing"
)

// TestMultiRegionAggregation: a Regions>1 run must sum event counts
// across regions, recompute the rate fields, attach the per-region
// spread, and drop the (now gap-ridden) time series.
func TestMultiRegionAggregation(t *testing.T) {
	p := QuickParams()
	p.FastForward = 100_000
	p.Warm = true
	p.Regions = 3
	p.SampleEvery = 2_000 // would produce a Series in a single-region run

	res, err := RunByName("BFS_KR", MachineConfig(InO), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions == nil {
		t.Fatal("multi-region run has no RegionSummary")
	}
	rs := res.Regions
	if rs.Requested != 3 || rs.Simulated != 3 {
		t.Fatalf("regions = %d/%d, want 3/3", rs.Simulated, rs.Requested)
	}
	if rs.FastForward != p.FastForward {
		t.Errorf("summary FastForward = %d, want %d", rs.FastForward, p.FastForward)
	}
	if want := 3 * p.Measure; res.Instrs != want {
		t.Errorf("aggregate Instrs = %d, want %d", res.Instrs, want)
	}
	if len(rs.IPC) != 3 {
		t.Fatalf("per-region IPC has %d entries", len(rs.IPC))
	}
	mean := (rs.IPC[0] + rs.IPC[1] + rs.IPC[2]) / 3
	if math.Abs(rs.IPCMean-mean) > 1e-12 {
		t.Errorf("IPCMean = %v, want %v", rs.IPCMean, mean)
	}
	if rs.IPCCI95 < 0 {
		t.Errorf("negative CI half-width %v", rs.IPCCI95)
	}
	// Rates must be recomputed from the summed totals.
	if want := float64(res.Instrs) / float64(res.Cycles); math.Abs(res.IPC-want) > 1e-12 {
		t.Errorf("aggregate IPC = %v, want %v", res.IPC, want)
	}
	if res.Series != nil {
		t.Error("multi-region run kept a stitched time series")
	}
	if res.Metrics.IsZero() {
		t.Error("aggregate lost the metrics snapshot")
	}
	if res.Energy.TotalJ <= 0 {
		t.Error("aggregate lost the energy report")
	}

	// A single-region run with the same sampling does keep its Series.
	p1 := p
	p1.Regions = 1
	res1, err := RunByName("BFS_KR", MachineConfig(InO), p1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Series == nil {
		t.Error("single-region sampled run lost its time series")
	}
	if res1.Regions != nil {
		t.Error("single-region run grew a RegionSummary")
	}
}

// TestRegionsStopAtProgramEnd: asking for more regions than the program
// can feed must stop cleanly and report how many actually ran.
func TestRegionsStopAtProgramEnd(t *testing.T) {
	p := QuickParams()
	p.FastForward = 40_000_000 // beyond any quick-scale program
	p.Warm = true
	p.Regions = 4

	res, err := RunByName("BFS_KR", MachineConfig(InO), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions == nil {
		t.Fatal("no RegionSummary")
	}
	if res.Regions.Simulated >= res.Regions.Requested {
		t.Errorf("simulated %d of %d regions; expected early stop",
			res.Regions.Simulated, res.Regions.Requested)
	}
}

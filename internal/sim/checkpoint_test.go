package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/workloads"
)

// TestCheckpointRoundTripBitIdentical: interrupting a run at the
// fast-forward boundary — capture a checkpoint, restore it into a fresh
// machine — must reproduce the uninterrupted run's Result bit for bit,
// including the full metrics snapshot. This is the property the shared
// checkpoint cache rests on.
func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	for _, regions := range []int{1, 3} {
		p := QuickParams()
		p.FastForward = 200_000
		p.Warm = true
		p.Regions = regions
		cfg := SVRConfig(16)
		spec := mustSpec(t, "BFS_KR")
		master := spec.Build(p.Scale)

		m1, err := NewMachine(cfg, cloneInstance(master))
		if err != nil {
			t.Fatal(err)
		}
		want := Simulate(m1, p)

		prod, err := NewMachine(cfg, cloneInstance(master))
		if err != nil {
			t.Fatal(err)
		}
		if !prod.FastForward(p.FastForward, p.Warm) {
			t.Fatal("fast-forward hit program end")
		}
		ck := prod.Checkpoint()
		m2, err := NewMachineFrom(cfg, ck)
		if err != nil {
			t.Fatal(err)
		}
		got := SimulateFrom(m2, p)

		if !reflect.DeepEqual(want, got) {
			t.Errorf("regions=%d: restored run differs from uninterrupted run:\nwant %+v\ngot  %+v",
				regions, want, got)
		}
	}
}

// TestCheckpointSiblingsIndependent: one checkpoint fans out to many
// cells. Sibling machines restored from the same checkpoint share frozen
// COW pages; mutating memory in one must not leak into another, so all
// siblings — run concurrently, under -race — must match a serial
// reference exactly.
func TestCheckpointSiblingsIndependent(t *testing.T) {
	p := QuickParams()
	p.FastForward = 150_000
	p.Warm = true
	cfg := MachineConfig(InO)
	spec := mustSpec(t, "Randacc")
	master := spec.Build(p.Scale)

	prod, err := NewMachine(cfg, cloneInstance(master))
	if err != nil {
		t.Fatal(err)
	}
	if !prod.FastForward(p.FastForward, p.Warm) {
		t.Fatal("fast-forward hit program end")
	}
	ck := prod.Checkpoint()

	refM, err := NewMachineFrom(cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	ref := SimulateFrom(refM, p)

	const siblings = 3
	var wg sync.WaitGroup
	results := make([]Result, siblings)
	errs := make([]error, siblings)
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := NewMachineFrom(cfg, ck)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = SimulateFrom(m, p)
		}(i)
	}
	wg.Wait()
	for i := 0; i < siblings; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(ref, results[i]) {
			t.Errorf("sibling %d diverged from serial reference", i)
		}
	}
}

// TestSchedulerCheckpointDeterminism: the grid scheduler's shared-
// checkpoint path (one fast-forward per workload, cloned into every
// cell) must produce the same Results as direct uncached runs that
// fast-forward in place.
func TestSchedulerCheckpointDeterminism(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	p := QuickParams()
	p.FastForward = p.Warmup + 100_000
	p.Warm = true
	p.Warmup = 0

	specs := []workloads.Spec{mustSpec(t, "BFS_KR"), mustSpec(t, "Randacc")}
	cfgs := []Config{MachineConfig(InO), SVRConfig(16)}
	rs := runMatrix(cfgs, specs, p)

	for _, cfg := range cfgs {
		for _, spec := range specs {
			got, ok := rs.Get(cfg.Label, spec.Name)
			if !ok {
				t.Fatalf("missing cell %s/%s", cfg.Label, spec.Name)
			}
			fresh := Run(spec, cfg, p)
			if !reflect.DeepEqual(got, fresh) {
				t.Errorf("%s/%s: scheduler cell differs from direct run", cfg.Label, spec.Name)
			}
		}
	}
}

// collectWarmView flattens the hierarchy tag state a warmed fast-forward
// claims to reproduce: cache lines (address + dirty), TLB VPNs and the
// branch-predictor tables.
type warmView struct {
	l1d, l1i, l2     []cache.LineInfo
	dtlb, itlb, stlb []uint64
}

func hierView(h *cache.Hierarchy) warmView {
	return warmView{
		l1d:  h.L1D.Lines(),
		l1i:  h.L1I.Lines(),
		l2:   h.L2.Lines(),
		dtlb: h.DTLB.VPNs(),
		itlb: h.ITLB.VPNs(),
		stlb: h.STLB.VPNs(),
	}
}

// TestFunctionalWarmingFidelity: after N instructions, a functionally
// warmed hierarchy must hold the same cache lines (tags and dirty bits),
// TLB entries and branch-predictor tables as the detailed timing model —
// warming replays the same access stream through the same tag-mutating
// code paths. Timing counters are out of scope (they reset at the
// measure boundary anyway).
func TestFunctionalWarmingFidelity(t *testing.T) {
	const n = 60_000
	for _, wl := range []string{"BFS_KR", "Randacc"} {
		spec := mustSpec(t, wl)
		master := spec.Build(QuickParams().Scale)
		cfg := MachineConfig(InO)

		det, err := NewMachine(cfg, cloneInstance(master))
		if err != nil {
			t.Fatal(err)
		}
		det.Step(n)

		warm, err := NewMachine(cfg, cloneInstance(master))
		if err != nil {
			t.Fatal(err)
		}
		warm.FastForward(n, true)

		dm, wm := det.(*inOrderMachine), warm.(*inOrderMachine)
		dv, wv := hierView(dm.h), hierView(wm.h)
		if !reflect.DeepEqual(dv.l1d, wv.l1d) {
			t.Errorf("%s: L1D contents diverge: detailed %d lines, warmed %d", wl, len(dv.l1d), len(wv.l1d))
		}
		if !reflect.DeepEqual(dv.l1i, wv.l1i) {
			t.Errorf("%s: L1I contents diverge: detailed %d lines, warmed %d", wl, len(dv.l1i), len(wv.l1i))
		}
		if !reflect.DeepEqual(dv.l2, wv.l2) {
			t.Errorf("%s: L2 contents diverge: detailed %d lines, warmed %d", wl, len(dv.l2), len(wv.l2))
		}
		if !reflect.DeepEqual(dv.dtlb, wv.dtlb) {
			t.Errorf("%s: DTLB diverges: detailed %d entries, warmed %d", wl, len(dv.dtlb), len(wv.dtlb))
		}
		if !reflect.DeepEqual(dv.itlb, wv.itlb) {
			t.Errorf("%s: ITLB diverges: detailed %d entries, warmed %d", wl, len(dv.itlb), len(wv.itlb))
		}
		if !reflect.DeepEqual(dv.stlb, wv.stlb) {
			t.Errorf("%s: STLB diverges: detailed %d entries, warmed %d", wl, len(dv.stlb), len(wv.stlb))
		}
		if !dm.core.BP.StateEqual(wm.core.BP) {
			t.Errorf("%s: branch-predictor tables diverge", wl)
		}
	}
}

package sim

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

func replayTestParams() Params {
	return Params{Scale: workloads.TinyScale(), Warmup: 20_000, Measure: 60_000}
}

// TestReplayMatchesLive is the fidelity contract of execute-once,
// time-many: for every core kind — including SVR, whose engine reads
// architectural state through the replay-backed ArchState view — a cell
// fed by a ReplaySource must produce a bit-identical Result to the same
// cell running its emulator live.
func TestReplayMatchesLive(t *testing.T) {
	spec, err := workloads.Get("PR_KR")
	if err != nil {
		t.Fatal(err)
	}
	p := replayTestParams()
	for _, kind := range []CoreKind{InO, IMP, OoO, SVR} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := MachineConfig(kind)
			live := Run(spec, cfg, p)

			if !replayEligible(cfg, p) {
				t.Fatal("kind not replay-eligible")
			}
			recd, _ := cachedRecording(spec, cfg, p, nil, nil)
			if recd.N != p.Warmup+p.Measure {
				t.Fatalf("recording has %d records, want %d", recd.N, p.Warmup+p.Measure)
			}
			m, _, err := newReplayMachine(cfg, spec, p, recd, cachedBuild(spec, p.Scale, nil), nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep := Simulate(m, p)
			if !reflect.DeepEqual(live, rep) {
				t.Errorf("replay Result differs from live:\nlive %+v\nreplay %+v", live, rep)
			}
		})
	}
}

// TestReplayMatchesLiveCheckpointed covers the composed path the bench
// uses: record from the post-fast-forward point of a functionally-warmed
// shared checkpoint, replay into cells restored from the same
// checkpoint, and require bit-identical Results against the live
// checkpointed path.
func TestReplayMatchesLiveCheckpointed(t *testing.T) {
	spec, err := workloads.Get("Randacc")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Scale:       workloads.TinyScale(),
		FastForward: 20_000,
		Warm:        true,
		Measure:     60_000,
	}
	for _, kind := range []CoreKind{InO, IMP, OoO, SVR} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := MachineConfig(kind)

			ck, _ := cachedCheckpoint(spec, cfg, p, nil, nil)
			liveM, err := NewMachineFrom(cfg, ck)
			if err != nil {
				t.Fatal(err)
			}
			live := SimulateFrom(liveM, p)

			recd, _ := cachedRecording(spec, cfg, p, nil, nil)
			repM, _, err := newReplayMachine(cfg, spec, p, recd, nil, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep := SimulateFrom(repM, p)
			if !reflect.DeepEqual(live, rep) {
				t.Errorf("replay Result differs from live:\nlive %+v\nreplay %+v", live, rep)
			}
		})
	}
}

// TestMatrixReplayMatchesLive runs a small grid cold with replay off and
// again with replay on, asserting every cell Result is bit-identical and
// the scheduler accounted the replay/live split correctly (every
// registered kind, SVR included, is served from the recording).
func TestMatrixReplayMatchesLive(t *testing.T) {
	prevCache := SetRunCacheEnabled(false)
	defer SetRunCacheEnabled(prevCache)
	prevMode := SetReplayMode(ReplayOff)
	defer SetReplayMode(prevMode)

	var specs []workloads.Spec
	for _, name := range []string{"PR_KR", "Randacc"} {
		spec, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	cfgs := []Config{
		MachineConfig(InO), MachineConfig(IMP), MachineConfig(OoO), SVRConfig(16),
	}
	p := replayTestParams()

	liveRS := runMatrix(cfgs, specs, p)
	SetReplayMode(ReplayOn)
	repRS := runMatrix(cfgs, specs, p)

	if want := len(cfgs) * len(specs); repRS.Stats.Replayed != want {
		t.Errorf("replayed %d cells, want %d", repRS.Stats.Replayed, want)
	}
	if liveRS.Stats.Replayed != 0 {
		t.Errorf("replay-off run replayed %d cells", liveRS.Stats.Replayed)
	}
	for _, c := range repRS.Cells {
		if !c.Replayed {
			t.Errorf("cell %s/%s: Replayed=false, want true", c.Label, c.Workload)
		}
	}
	for _, cfg := range cfgs {
		for _, spec := range specs {
			live, _ := liveRS.Get(cfg.Label, spec.Name)
			rep, _ := repRS.Get(cfg.Label, spec.Name)
			if !reflect.DeepEqual(live, rep) {
				t.Errorf("cell %s/%s differs between replay-off and replay-on runs",
					cfg.Label, spec.Name)
			}
		}
	}
}

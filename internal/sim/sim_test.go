package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/workloads"
)

// quickSet is a cross-section of behaviour classes used for fast shape
// checks: stride-indirect (PR, IS), frontier-driven (BFS, SSSP), hash
// probing (HJ2/HJ8), multi-level indirection (Kangr), random access.
var quickSet = []string{"PR_KR", "BFS_UR", "SSSP_TW", "HJ2", "HJ8", "NAS-IS", "Randacc", "Kangr", "CC_LJN"}

func quick() ExpParams {
	return ExpParams{Params: QuickParams(), Workloads: quickSet}
}

func TestRunProducesSaneResult(t *testing.T) {
	res, err := RunByName("PR_KR", MachineConfig(InO), QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs == 0 || res.Cycles <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.CPI < 0.33 || res.CPI > 50 {
		t.Errorf("implausible CPI %v", res.CPI)
	}
	if res.Energy.NJPerInstr <= 0 {
		t.Error("no energy estimate")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := RunByName("nonexistent", MachineConfig(InO), QuickParams()); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestFig1Shapes(t *testing.T) {
	r := runFig1(quick())
	svr16 := r.Values["speedup.SVR16"]
	svr64 := r.Values["speedup.SVR64"]
	oooV := r.Values["speedup.out-of-order"]
	impV := r.Values["speedup.IMP"]

	// Paper Fig 1 orderings: SVR16 beats the OoO core and IMP; wider SVR
	// beats narrower; everything beats the in-order baseline.
	if svr16 < 2.0 {
		t.Errorf("SVR16 speedup = %.2f, want >= 2 (paper 3.2)", svr16)
	}
	if svr16 <= oooV {
		t.Errorf("SVR16 (%.2f) must beat OoO (%.2f)", svr16, oooV)
	}
	if svr16 <= impV {
		t.Errorf("SVR16 (%.2f) must beat IMP (%.2f)", svr16, impV)
	}
	if svr64 <= svr16*0.98 {
		t.Errorf("SVR64 (%.2f) should not trail SVR16 (%.2f)", svr64, svr16)
	}
	// Energy: SVR around half the baseline and the most efficient.
	for _, label := range []string{"SVR16", "SVR64"} {
		if e := r.Values["energy."+label]; e > 0.6 {
			t.Errorf("%s energy = %.2f of baseline, want < 0.6 (paper ~0.47)", label, e)
		}
	}
	if r.Values["energy.SVR16"] >= r.Values["energy.out-of-order"] {
		t.Error("SVR16 must be more energy-efficient than OoO")
	}
}

func TestFig3DRAMDominatesInOrder(t *testing.T) {
	r := runFig3(quick())
	inoDram := r.Values["dram.in-order"]
	oooDram := r.Values["dram.out-of-order"]
	if inoDram < 1.2*oooDram {
		t.Errorf("in-order DRAM CPI (%.2f) should far exceed OoO (%.2f), paper ~2.5x",
			inoDram, oooDram)
	}
	if frac := inoDram / r.Values["total.in-order"]; frac < 0.4 {
		t.Errorf("DRAM share of in-order CPI = %.2f, want the dominant component", frac)
	}
}

func TestFig11Orderings(t *testing.T) {
	r := runFig11(quick())
	// IMP must fail (stay at baseline) on the patterns it cannot see.
	for _, wl := range []string{"HJ2", "HJ8", "Randacc", "SSSP_TW"} {
		ino := r.Values["cpi.in-order."+wl]
		impV := r.Values["cpi.IMP."+wl]
		if impV < 0.93*ino {
			t.Errorf("%s: IMP CPI %.2f should be ~= baseline %.2f (pattern not learnable)",
				wl, impV, ino)
		}
	}
	// IMP beats SVR on the long simple stride-indirect loop (NAS-IS, PR_KR).
	for _, wl := range []string{"NAS-IS", "PR_KR"} {
		if r.Values["cpi.IMP."+wl] >= r.Values["cpi.SVR16."+wl] {
			t.Errorf("%s: IMP (%.2f) should beat SVR16 (%.2f) per the paper",
				wl, r.Values["cpi.IMP."+wl], r.Values["cpi.SVR16."+wl])
		}
	}
	// SVR must substantially beat the baseline on the multi-level and
	// masked patterns IMP cannot touch.
	for _, wl := range []string{"Kangr", "Randacc", "SSSP_TW", "HJ2"} {
		ino := r.Values["cpi.in-order."+wl]
		svr := r.Values["cpi.SVR16."+wl]
		if svr > 0.75*ino {
			t.Errorf("%s: SVR16 CPI %.2f vs baseline %.2f — insufficient speedup", wl, svr, ino)
		}
	}
}

func TestFig12SVREnergyLowest(t *testing.T) {
	r := runFig12(quick())
	svr := r.Values["energy.SVR16.avg"]
	for _, label := range []string{"in-order", "IMP", "out-of-order"} {
		if other := r.Values["energy."+label+".avg"]; svr >= other {
			t.Errorf("SVR16 energy (%.2f nJ/i) must undercut %s (%.2f nJ/i)", svr, label, other)
		}
	}
}

func TestFig13aAccuracy(t *testing.T) {
	r := runFig13a(quick())
	svr16 := r.Values["accuracy.SVR16"]
	if svr16 < 0.85 {
		t.Errorf("SVR16 accuracy = %.2f, want >= 0.85 (paper ~95%%)", svr16)
	}
	// Unthrottled SVR should not be more accurate than throttled.
	if ml := r.Values["accuracy.SVR64-Maxlength"]; ml > r.Values["accuracy.SVR64"]+0.02 {
		t.Errorf("SVR64-Maxlength (%.2f) should not beat throttled SVR64 (%.2f)",
			ml, r.Values["accuracy.SVR64"])
	}
}

func TestFig13bCoverage(t *testing.T) {
	r := runFig13b(quick())
	// SVR must shift DRAM fetches from demand to prefetch.
	if d := r.Values["coverage.SVR16.demand"]; d > 0.6 {
		t.Errorf("SVR16 leaves %.2f of baseline demand misses — low coverage", d)
	}
	if tech := r.Values["coverage.SVR16.technique"]; tech < 0.3 {
		t.Errorf("SVR16 prefetch share = %.2f of baseline loads, want substantial", tech)
	}
	// Baseline trivially covers itself (demand + its stride prefetcher).
	if tot := r.Values["coverage.in-order.total"]; tot < 0.9 || tot > 1.1 {
		t.Errorf("baseline total share = %.2f, want ~1", tot)
	}
}

func TestFig14SPECOverheadSmall(t *testing.T) {
	p := ExpParams{Params: QuickParams(),
		Workloads: []string{"bwaves", "mcf", "deepsjeng", "lbm", "xz", "omnetpp"}}
	r := runFig14(p)
	if h := r.Values["hmean"]; h < 0.93 || h > 1.05 {
		t.Errorf("SPEC hmean normalized IPC = %.3f, want ~0.99 (paper -1%%)", h)
	}
}

func TestFig15TournamentWins(t *testing.T) {
	p := ExpParams{Params: QuickParams()}
	r := runFig15(p)
	for _, n := range []string{"svr16", "svr64"} {
		tour := r.Values[n+".Tournament"]
		wait := r.Values[n+".LBD+Wait"]
		if tour <= wait {
			t.Errorf("%s: tournament (%.2f) must beat LBD+Wait (%.2f)", n, tour, wait)
		}
		// Tournament should be within a whisker of the best mechanism.
		best := 0.0
		for _, m := range []string{"LBD+Wait", "Maxlength", "LBD+Maxlength", "LBD+CV", "EWMA"} {
			if v := r.Values[n+"."+m]; v > best {
				best = v
			}
		}
		if tour < 0.9*best {
			t.Errorf("%s: tournament (%.2f) far from best mechanism (%.2f)", n, tour, best)
		}
	}
}

func TestFig16Flat(t *testing.T) {
	p := ExpParams{Params: QuickParams()}
	r := runFig16(p)
	for _, n := range []string{"svr16", "svr64"} {
		lo, hi := r.Values[n+".x1"], r.Values[n+".x8"]
		if ratio := hi / lo; ratio < 0.95 || ratio > 1.35 {
			t.Errorf("%s: x8/x1 speedup ratio = %.2f, want ~1 (memory bound)", n, ratio)
		}
	}
}

func TestFig17MSHRScaling(t *testing.T) {
	p := ExpParams{Params: QuickParams(), Workloads: []string{"NAS-IS", "Randacc", "PR_KR"}}
	r := runFig17MSHROnly(p) // reduced grid for tests
	// Speedup must grow with MSHRs and be positive even at 1 MSHR.
	if r.Values["svr16.mshr1"] <= 0.9 {
		t.Errorf("SVR16 with 1 MSHR = %.2f, should not slow down", r.Values["svr16.mshr1"])
	}
	if r.Values["svr16.mshr16"] <= r.Values["svr16.mshr1"] {
		t.Errorf("SVR16 should scale with MSHRs: 16 -> %.2f vs 1 -> %.2f",
			r.Values["svr16.mshr16"], r.Values["svr16.mshr1"])
	}
	// SVR64 benefits more from many MSHRs than SVR16 does.
	gain16 := r.Values["svr16.mshr32"] / r.Values["svr16.mshr8"]
	gain64 := r.Values["svr64.mshr32"] / r.Values["svr64.mshr8"]
	if gain64 < gain16*0.95 {
		t.Errorf("SVR64 MSHR gain (%.2f) should exceed SVR16's (%.2f)", gain64, gain16)
	}
}

func TestFig18BandwidthScaling(t *testing.T) {
	p := ExpParams{Params: QuickParams(), Workloads: []string{"NAS-IS", "Randacc", "Kangr"}}
	r := runFig18(p)
	// More bandwidth must not hurt, and the curve should flatten
	// (saturation) between 50 and 100 GiB/s.
	for _, n := range []string{"svr16", "svr64"} {
		if r.Values[n+".bw100"] < r.Values[n+".bw12.5"]*0.95 {
			t.Errorf("%s: speedup fell with more bandwidth", n)
		}
		lowGain := r.Values[n+".bw25"] / r.Values[n+".bw12.5"]
		highGain := r.Values[n+".bw100"] / r.Values[n+".bw50"]
		if highGain > lowGain+0.25 {
			t.Errorf("%s: no saturation: low gain %.2f, high gain %.2f", n, lowGain, highGain)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	p := ExpParams{Params: QuickParams()}
	r := runAblations(p)
	// Register-copy checkpointing costs a little (paper 3.21 -> 3.16).
	if r.Values["svr16.regcopy"] > r.Values["svr16"] {
		t.Errorf("regcopy (%.2f) should not beat default (%.2f)",
			r.Values["svr16.regcopy"], r.Values["svr16"])
	}
	if r.Values["svr16.regcopy"] < 0.8*r.Values["svr16"] {
		t.Errorf("regcopy cost too large: %.2f vs %.2f", r.Values["svr16.regcopy"], r.Values["svr16"])
	}
	// DVR's no-recycle policy with 2 SRF regs collapses coverage.
	for _, n := range []string{"svr16", "svr64"} {
		lru := r.Values[n+".srf2.lru"]
		dvr := r.Values[n+".srf2.dvr"]
		if dvr >= lru {
			t.Errorf("%s: DVR recycling (%.2f) should trail LRU (%.2f) with 2 SRF regs",
				n, dvr, lru)
		}
	}
	// Without waiting mode the transient work explodes and hurts; SVR64
	// suffers more (paper: 0.56x, a slowdown).
	if r.Values["svr64.nowait"] >= r.Values["svr64"] {
		t.Errorf("SVR64 without waiting mode (%.2f) should collapse vs %.2f",
			r.Values["svr64.nowait"], r.Values["svr64"])
	}
	if r.Values["svr16.nowait"] >= r.Values["svr16"] {
		t.Errorf("SVR16 without waiting mode (%.2f) should trail %.2f",
			r.Values["svr16.nowait"], r.Values["svr16"])
	}
	// A couple of SRF registers already reach near-peak (paper: 2; our
	// hand-written kernels keep slightly more speculative values live,
	// so the knee sits between 2 and 4).
	if r.Values["svr16.srf4"] < 0.9*r.Values["svr16.srf8"] {
		t.Errorf("4 SRF regs (%.2f) should be near peak (%.2f)",
			r.Values["svr16.srf4"], r.Values["svr16.srf8"])
	}
	if r.Values["svr16.srf2"] < 0.7*r.Values["svr16.srf8"] {
		t.Errorf("2 SRF regs (%.2f) should be near peak (%.2f)",
			r.Values["svr16.srf2"], r.Values["svr16.srf8"])
	}
}

func TestTable2Values(t *testing.T) {
	r := runTable2(ExpParams{})
	if k := r.Values["kib.16"]; k < 2.0 || k > 2.4 {
		t.Errorf("SVR-16 overhead = %.2f KiB, want ~2.17", k)
	}
	if k := r.Values["kib.128"]; k < 8 || k > 11 {
		t.Errorf("SVR-128 overhead = %.2f KiB, want ~9", k)
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"fig1", "fig3", "fig11", "fig12", "table2", "table3",
		"fig13a", "fig13b", "fig14", "fig15", "fig16", "fig17", "fig18", "ablations"}
	for _, id := range want {
		if _, err := GetExperiment(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := GetExperiment("nope"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestReportRendering(t *testing.T) {
	r := runTable2(ExpParams{})
	out := r.String()
	if out == "" || len(r.Tables) == 0 {
		t.Error("empty report")
	}
}

func TestRunMatrixIsolation(t *testing.T) {
	// Two configs over the same workload must not contaminate each other
	// through shared memory (runs mutate memory).
	spec, _ := workloads.Get("NAS-IS")
	p := QuickParams()
	m := runMatrix([]Config{MachineConfig(InO), MachineConfig(InO)}, []workloads.Spec{spec}, p)
	_ = m
	a := Run(spec, MachineConfig(InO), p)
	bres := Run(spec, MachineConfig(InO), p)
	if a.Cycles != bres.Cycles || a.Instrs != bres.Instrs {
		t.Errorf("repeat runs differ: %d/%d vs %d/%d cycles/instrs",
			a.Cycles, a.Instrs, bres.Cycles, bres.Instrs)
	}
}

func TestSVRDRAMLoadOriginsTracked(t *testing.T) {
	res, _ := RunByName("NAS-IS", SVRConfig(16), QuickParams())
	if res.DRAMLoads[cache.OriginSVR] == 0 {
		t.Error("no SVR-originated DRAM loads recorded")
	}
	if res.SVRStats.Rounds == 0 {
		t.Error("no PRM rounds recorded")
	}
}

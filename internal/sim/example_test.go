package sim_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/svr"
)

// ExampleRunByName simulates one workload on an SVR machine and reads the
// headline measurements.
func ExampleRunByName() {
	cfg := sim.SVRConfig(16)
	res, err := sim.RunByName("NAS-IS", cfg, sim.QuickParams())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Workload, res.Label, res.SVRStats.Rounds > 0, res.CPI < 5)
	// Output: NAS-IS SVR16 true true
}

// ExampleOverheadKiB reproduces Table II's headline number.
func ExampleOverheadKiB() {
	fmt.Printf("%.2f KiB\n", svr.OverheadKiB(svr.DefaultOptions()))
	// Output: 2.17 KiB
}

package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/imp"
	"repro/internal/workloads"
)

// guardSkipFields lists exported numeric-bearing fields that are
// configuration or wiring rather than measurement counters. Everything
// else numeric and exported reachable from a machine's component graph
// (core, hierarchy, caches, TLBs, walker pool, DRAM channel, prefetch
// tracker, branch predictor) must return to zero after Registry.Reset.
// Adding a counter-like exported field without registering it makes
// TestRegistryResetCoversExportedCounters fail.
var guardSkipFields = map[string]bool{
	"Cfg":           true, // component configuration structs
	"Opt":           true, // SVR options
	"WalkLatency":   true, // fixed page-walk cost, not a counter
	"LatencyCycles": true, // fixed DRAM access latency, not a counter
	"Mem":           true, // workload memory image (IMP's value source)
	"Reg":           true, // the registry itself
}

// guardField is one settable numeric field found by the walk, with a
// human-readable path for failure messages.
type guardField struct {
	path string
	v    reflect.Value
}

type guardVisit struct {
	t reflect.Type
	p uintptr
}

// collectNumeric walks the exported fields reachable from v — following
// pointers, recursing into structs and arrays — and appends every
// settable numeric field. Interfaces, maps, slices, and unexported
// fields are not followed.
func collectNumeric(v reflect.Value, path string, seen map[guardVisit]bool, out *[]guardField) {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return
		}
		key := guardVisit{v.Type(), v.Pointer()}
		if seen[key] {
			return
		}
		seen[key] = true
		collectNumeric(v.Elem(), path, seen, out)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" || guardSkipFields[f.Name] {
				continue
			}
			collectNumeric(v.Field(i), path+"."+f.Name, seen, out)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			collectNumeric(v.Index(i), fmt.Sprintf("%s[%d]", path, i), seen, out)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		if v.CanSet() {
			*out = append(*out, guardField{path, v})
		}
	}
}

func pokeSentinel(f guardField) {
	switch f.v.Kind() {
	case reflect.Float32, reflect.Float64:
		f.v.SetFloat(777.5)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f.v.SetUint(77)
	default:
		f.v.SetInt(77)
	}
}

func isZeroNumeric(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		return v.Float() == 0
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return v.Uint() == 0
	default:
		return v.Int() == 0
	}
}

// TestRegistryResetCoversExportedCounters is the guard rail for the
// metrics registry: every exported numeric field reachable from a
// machine (hierarchy, caches, TLBs, walker pool, DRAM channel, tracker,
// branch predictor, core stats, SVR stats, IMP stats) is poked with a
// sentinel, then one Registry.Reset must restore all of them to zero.
// A new counter field that is not registered (or covered by an OnReset
// hook) shows up here as a named path.
func TestRegistryResetCoversExportedCounters(t *testing.T) {
	spec, err := workloads.Get("Randacc")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []CoreKind{InO, IMP, OoO, SVR} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := NewMachine(MachineConfig(kind), spec.Build(QuickParams().Scale))
			if err != nil {
				t.Fatal(err)
			}
			seen := map[guardVisit]bool{}
			var fields []guardField
			switch mm := m.(type) {
			case *inOrderMachine:
				collectNumeric(reflect.ValueOf(mm.core), "Core", seen, &fields)
				if mm.eng != nil {
					collectNumeric(reflect.ValueOf(&mm.eng.Stats), "Engine.Stats", seen, &fields)
				}
				if p, ok := mm.core.Companion.(*imp.Prefetcher); ok {
					collectNumeric(reflect.ValueOf(p), "IMP", seen, &fields)
				}
			case *oooMachine:
				collectNumeric(reflect.ValueOf(mm.core), "Core", seen, &fields)
			default:
				t.Fatalf("unknown machine type %T", m)
			}
			// The walk must actually find the counter surface; a collapse
			// here means the reflection traversal broke, not that the
			// registry got better.
			if len(fields) < 20 {
				t.Fatalf("walk found only %d numeric fields; traversal is broken", len(fields))
			}
			for _, f := range fields {
				pokeSentinel(f)
			}
			m.ResetStats()
			for _, f := range fields {
				if !isZeroNumeric(f.v) {
					t.Errorf("%s = %v after Registry.Reset; counter not registered (or missing an OnReset hook)", f.path, f.v)
				}
			}
		})
	}
}

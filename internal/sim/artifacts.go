package sim

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// The process-wide artifact store unifies what used to be four private
// caches: the workload build cache (PR 3), the shared post-fast-forward
// checkpoints (PR 5), the recorded instruction streams (PR 6), and the
// memoized cell-result cache (PR 1). One content-addressed, byte-budgeted
// LRU means concurrent grid jobs share warm state across tenants and the
// service layer gets hit/miss/evict observability for free.
var artifacts = artifact.New(512 << 20)

// Artifacts exposes the process-wide store to the service layer and the
// status surfaces.
func Artifacts() *artifact.Store { return artifacts }

// imageKey addresses a raw workload build. Builds are pure functions of
// (generator, scale), so name+scale is a content key.
func imageKey(name string, sc workloads.Scale) artifact.Key {
	return artifact.Key{Class: artifact.Image,
		ID: fmt.Sprintf("%s|g%d|e%d|s%d", name, sc.GraphNodes, sc.Elems, sc.Seed)}
}

// checkpointKey addresses a post-fast-forward checkpoint: the image key
// plus the fast-forward length and — when warming — the warm-relevant
// machine geometry (warmKey).
func checkpointKey(name string, sc workloads.Scale, ff uint64, warm string) artifact.Key {
	return artifact.Key{Class: artifact.Checkpoint,
		ID: fmt.Sprintf("%s|g%d|e%d|s%d|ff%d|w%s", name, sc.GraphNodes, sc.Elems, sc.Seed, ff, warm)}
}

// streamKey addresses a stream recording: the image key plus the
// fast-forward length and the recorded window size. Never the warm
// geometry — the functional stream is the same whatever the caches look
// like.
func streamKey(name string, sc workloads.Scale, ff, window uint64) artifact.Key {
	return artifact.Key{Class: artifact.Stream,
		ID: fmt.Sprintf("%s|g%d|e%d|s%d|ff%d|n%d", name, sc.GraphNodes, sc.Elems, sc.Seed, ff, window)}
}

// decodedKey addresses one decoded SoA chunk of a stream recording: the
// stream key plus the chunk index and the chunk width (so retuning the
// width can never alias stale chunk geometry).
func decodedKey(name string, sc workloads.Scale, ff, window uint64, chunk, width int) artifact.Key {
	return artifact.Key{Class: artifact.Decoded,
		ID: fmt.Sprintf("%s|g%d|e%d|s%d|ff%d|n%d|c%d|w%d", name, sc.GraphNodes, sc.Elems, sc.Seed, ff, window, chunk, width)}
}

// resultKey addresses a memoized cell result by the cell's content hash.
func resultKey(cfg Config, workload string, p Params) artifact.Key {
	sum := hashCell(cfg, workload, p)
	return artifact.Key{Class: artifact.Result, ID: fmt.Sprintf("%x", sum[:])}
}

func instanceBytes(inst *workloads.Instance) int64 {
	return int64(inst.Mem.Pages()) * mem.PageSize
}

// resultBytes estimates a Result's retained size for the byte budget:
// the metric snapshot dominates, plus any sampled time series.
func resultBytes(res Result) int64 {
	n := int64(2048)
	n += int64(len(res.Metrics.Counters)+len(res.Metrics.Gauges)) * 64
	n += int64(len(res.Metrics.Histograms)) * 512
	if res.Series != nil {
		n += int64(len(res.Series.Rows)) * int64(len(res.Series.Columns)) * 8
	}
	return n
}

// RunCacheStats returns the cell-result cache counters (hits and misses
// of the artifact store's result class).
func RunCacheStats() (hits, misses int64) {
	st := artifacts.Stats()[artifact.Result]
	return st.Hits, st.Misses
}

// SetRunCacheEnabled toggles cell-result memoization (a cold run
// re-simulates every cell, with no cross-job sharing) and returns the
// previous setting. Disabling also drops the cached cells.
func SetRunCacheEnabled(on bool) bool {
	return artifacts.SetClassEnabled(artifact.Result, on)
}

// ResetRunCache drops every memoized cell and zeroes the counters.
func ResetRunCache() {
	artifacts.Purge(artifact.Result)
	artifacts.ResetStats(artifact.Result)
}

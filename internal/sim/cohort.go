package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/stream"
	"repro/internal/workloads"
)

// Timing cohorts: the decode-once half of execute-once, time-many.
// Replay-eligible sibling cells (same workload window, any registered
// core kind) are grouped into cohorts that consume shared decoded SoA
// batches instead of private ReplaySource cursors, stepped in lockstep
// one chunk at a time so the batch plus the members' hot state stay
// cache-resident. Members that read state own private companions
// advanced row-by-row ahead of issue — IMP a memory clone, SVR a full
// stream.ArchView — so the shared batch stays immutable. Results are
// bit-identical to solo replay (and so to live execution): the batch
// columns are filled by ReplaySource.Next itself and each member's
// per-instruction issue order is unchanged — only the K-fold re-decode
// of the same recording disappears.

// CohortMode selects whether the scheduler groups eligible sibling
// cells into decode-once timing cohorts.
type CohortMode int

// Cohort modes (the CLI's -cohort=on|off|auto).
const (
	// CohortAuto groups replay-eligible siblings into cohorts;
	// everything else runs solo. Results are bit-identical either way,
	// so this is the default.
	CohortAuto CohortMode = iota
	// CohortOn behaves like CohortAuto (eligibility still applies) but
	// states the intent explicitly for audited runs.
	CohortOn
	// CohortOff disables grouping entirely: every cell runs solo.
	CohortOff
)

// String returns the CLI spelling of the mode.
func (m CohortMode) String() string {
	switch m {
	case CohortOn:
		return "on"
	case CohortOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseCohortMode parses the CLI spelling of a cohort mode.
func ParseCohortMode(s string) (CohortMode, error) {
	switch s {
	case "auto", "":
		return CohortAuto, nil
	case "on":
		return CohortOn, nil
	case "off":
		return CohortOff, nil
	}
	return CohortAuto, fmt.Errorf("unknown cohort mode %q (want on, off, or auto)", s)
}

var cohortCtl = struct {
	sync.Mutex
	mode CohortMode
}{}

// SetCohortMode switches the scheduler's cohort policy and returns the
// previous mode.
func SetCohortMode(m CohortMode) CohortMode {
	cohortCtl.Lock()
	defer cohortCtl.Unlock()
	prev := cohortCtl.mode
	cohortCtl.mode = m
	return prev
}

// CurrentCohortMode reports the active cohort policy.
func CurrentCohortMode() CohortMode {
	cohortCtl.Lock()
	defer cohortCtl.Unlock()
	return cohortCtl.mode
}

// cohortTotals is the process-lifetime cohort accounting (the tracker
// fields reset per grid; bench and status deltas need cumulative
// counters, like RecordingStats for streams).
var cohortTotals struct {
	sync.Mutex
	runs   int
	cells  int
	widths map[int]int
}

// CohortStats reports cumulative lockstep-cohort counts: cohorts run
// and the cells they produced, process-wide.
func CohortStats() (runs, cells int) {
	cohortTotals.Lock()
	defer cohortTotals.Unlock()
	return cohortTotals.runs, cohortTotals.cells
}

// CohortWidthHist returns a copy of the process-wide cohort width
// histogram: widths (cells stepped per lockstep cohort) to how many
// cohorts ran at that width. The mean hides bimodality — a grid of
// width-8 SVR cohorts plus width-2 leftovers averages to an unremarkable
// 5 — so the bench publishes the full distribution.
func CohortWidthHist() map[int]int {
	cohortTotals.Lock()
	defer cohortTotals.Unlock()
	h := make(map[int]int, len(cohortTotals.widths))
	for w, n := range cohortTotals.widths {
		h[w] = n
	}
	return h
}

// MaxCohortWidth caps how many cells one cohort steps in lockstep: past
// this, the members' aggregate hot state (caches, TLBs, predictors)
// stops fitting beside the shared batch and the locality win inverts.
const MaxCohortWidth = 16

// cohortChunkRows is how many decoded records one SoA chunk holds
// (~130 KiB of columns): small enough to stay cache-resident under the
// members' hot state, large enough to amortize the per-chunk store
// lookup. A variable so the boundary-straddling fuzz test can shrink it.
var cohortChunkRows = 2048

// decodedStoreCtl gates whether cohort chunks are published to the
// artifact store's decoded class for cross-cohort reuse. Off by
// default: a quick grid decodes ~65 B/instr of SoA columns — an order
// of magnitude over the ~1.9 B/instr encoded recordings — so resident
// chunks evict the recordings and checkpoints they were derived from
// and the grid re-records more than it saves (measured: +42 recording
// passes, +2.4s on the quick bench). Each cohort then decodes into a
// private reused buffer: still exactly one decode per cohort.
var decodedStoreCtl = struct {
	sync.Mutex
	on bool
}{}

// SetDecodedStoreEnabled toggles store-backed decoded-chunk sharing
// across cohorts and returns the previous setting.
func SetDecodedStoreEnabled(on bool) bool {
	decodedStoreCtl.Lock()
	defer decodedStoreCtl.Unlock()
	prev := decodedStoreCtl.on
	decodedStoreCtl.on = on
	return prev
}

func decodedStoreEnabled() bool {
	decodedStoreCtl.Lock()
	defer decodedStoreCtl.Unlock()
	return decodedStoreCtl.on
}

// cohortEligible reports whether a cell can join a decode-once cohort:
// replay-eligible and an unsampled single window (the chunked lockstep
// walk implements exactly the warmup → reset → measure sequence).
// Every replay-eligible kind qualifies — stream-pure members step the
// shared batch directly, and members that read memory or architectural
// state (IMP, SVR) reconstruct a private stream.ArchView row by row
// over the same shared decode.
func cohortEligible(cfg Config, p Params) bool {
	if CurrentCohortMode() == CohortOff {
		return false
	}
	if !replayEligible(cfg, p) {
		return false
	}
	return p.SampleEvery == 0
}

// PlanCohorts groups the given cell indices (nil means all of cells)
// into schedulable units: runs of cohort-eligible siblings — same
// workload, identical window — become one group of up to
// MaxCohortWidth, everything else stays a group of one. Grouping only
// joins adjacent cells of the workload-major cell order, so scheduling
// order and peak-memory behavior match the ungrouped plan.
func PlanCohorts(cells []CellRequest, idx []int) [][]int {
	if idx == nil {
		idx = make([]int, len(cells))
		for i := range idx {
			idx[i] = i
		}
	}
	groups := make([][]int, 0, len(idx))
	var cur []int
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	for _, i := range idx {
		c := cells[i]
		if !cohortEligible(c.Cfg, c.P) {
			flush()
			groups = append(groups, []int{i})
			continue
		}
		if len(cur) > 0 {
			prev := cells[cur[0]]
			if prev.Spec.Name != c.Spec.Name || prev.P != c.P || len(cur) >= MaxCohortWidth {
				flush()
			}
		}
		cur = append(cur, i)
	}
	flush()
	return groups
}

// ExecuteCohort resolves a group of sibling cells as one unit. Each
// member resolves through the artifact store with the same hit / joined
// / produced classification ExecuteCell reports; the members this
// caller must produce run together in lockstep over shared decoded
// batches. A single-member group degenerates to ExecuteCell.
func ExecuteCohort(reqs []CellRequest, tr *Tracker) ([]Result, []CellOutcome) {
	n := len(reqs)
	results := make([]Result, n)
	outs := make([]CellOutcome, n)
	if n == 1 {
		results[0], outs[0] = ExecuteCell(reqs[0], tr)
		return results, outs
	}
	start := time.Now()

	// Split-phase store resolution: residents are done, claims are ours
	// to produce, joins are other workers' in-flight cells we pick up
	// after our own lockstep run (waiting first could deadlock when two
	// members share one content key — relabeled identical configs).
	type member struct {
		idx int
		t   *artifact.Ticket
	}
	var claims, joins []member
	for i, req := range reqs {
		k := resultKey(req.Cfg, req.Spec.Name, req.P)
		v, oc, t := artifacts.Begin(k)
		switch {
		case t == nil:
			results[i] = v.(Result)
			outs[i].Cached = oc.Hit
			outs[i].Wall = time.Since(start)
			emitArtifact(req.Cfg.Label, req.Spec.Name, k, oc, outs[i].Wall)
		case !t.Owner():
			outs[i].Shared = true
			joins = append(joins, member{i, t})
		default:
			claims = append(claims, member{i, t})
		}
	}

	if len(claims) > 0 {
		idxs := make([]int, len(claims))
		for k, m := range claims {
			idxs[k] = m.idx
		}
		runStart := time.Now()
		runCohort(reqs, idxs, results, outs, tr)
		share := time.Since(runStart) / time.Duration(len(claims))
		for _, m := range claims {
			m.t.Commit(results[m.idx], resultBytes(results[m.idx]))
			outs[m.idx].Wall = share
			req := reqs[m.idx]
			emitArtifact(req.Cfg.Label, req.Spec.Name,
				resultKey(req.Cfg, req.Spec.Name, req.P), artifact.Outcome{}, share)
		}
	}
	for _, m := range joins {
		results[m.idx] = m.t.Wait().(Result)
		d := time.Since(start)
		outs[m.idx].Wall = d
		// The member's wall was spent blocked on another worker's run
		// (our own lockstep run first, then the wait itself).
		req := reqs[m.idx]
		jpc := &phaseCtx{label: req.Cfg.Label, workload: req.Spec.Name, ph: &outs[m.idx].Phases}
		jpc.add(PhaseStoreWait, d)
		jpc.artifact(resultKey(req.Cfg, req.Spec.Name, req.P), artifact.Outcome{Waited: true}, d)
	}
	// Stored records may carry another member's or sweep's display label.
	for i, req := range reqs {
		results[i].Label = req.Cfg.Label
	}
	return results, outs
}

// runCohort simulates the claimed members in lockstep. All claims share
// one workload window (PlanCohorts grouped them), so they consume the
// same recording and the same decoded chunks, and hit their warmup →
// reset boundary at the same row.
func runCohort(reqs []CellRequest, claims []int, results []Result, outs []CellOutcome, tr *Tracker) {
	first := reqs[claims[0]]
	spec, p := first.Spec, first.P
	t0 := time.Now()
	// One cohort-level phase decomposition, split evenly across the
	// claimed members when the run ends. Hook events carry the first
	// member's label (the cohort runs on one worker under one banner).
	var cph PhaseTimes
	pc := &phaseCtx{label: first.Cfg.Label, workload: spec.Name, ph: &cph}
	tr.phase(+1, 0)

	rec, so := cachedRecording(spec, first.Cfg, p, tr, pc)
	machines := make([]Machine, len(claims))
	steppers := make([]interface {
		StepBatch(b *stream.DecodedBatch, lo, hi int)
	}, len(claims))
	for k, ci := range claims {
		req := reqs[ci]
		outs[ci].Replayed = true
		outs[ci].StreamFromStore = so.FromStore() || k > 0
		m, err := newCohortMachine(req.Cfg, spec, p, rec, &outs[ci], tr, pc)
		if err != nil {
			panic(err)
		}
		bs, ok := m.(interface {
			StepBatch(b *stream.DecodedBatch, lo, hi int)
		})
		if !ok {
			panic(fmt.Sprintf("sim: cohort-eligible machine kind %d lacks StepBatch", req.Cfg.Core))
		}
		machines[k], steppers[k] = m, bs
	}
	tr.phase(-1, +1)

	// The lockstep walk implements simulateWindow exactly: each member
	// issues warmup rows, resets its stats, issues measure rows, and
	// collects — the chunking (and the split at the warmup boundary)
	// changes where Step calls end, which is timing-invisible.
	src := stream.NewReplay(rec)
	defer src.Recycle()
	useStore := decodedStoreEnabled()
	var local stream.DecodedBatch // reused across chunks when the store is bypassed
	warmup, total := p.Warmup, p.Warmup+p.Measure
	var consumed uint64
	resetDone := false
	maybeReset := func() {
		if !resetDone && consumed >= warmup {
			for _, m := range machines {
				m.ResetStats()
			}
			resetDone = true
		}
	}
	maybeReset() // folded-checkpoint windows have warmup 0
	// Decode and timing interleave chunk by chunk; accumulate each side
	// across the loop and attribute once, so the journal sees one decode
	// and one timing segment per cohort instead of one per chunk.
	var decodeWall, timingWall time.Duration
	for chunk := 0; consumed < total; chunk++ {
		var b *stream.DecodedBatch
		td := time.Now()
		if useStore {
			b = cohortChunk(spec, p, src, chunk, pc)
		} else {
			local.Fill(src, cohortChunkRows)
			b = &local
		}
		decodeWall += time.Since(td)
		if b.N == 0 {
			break // recording ended early (program halt)
		}
		tt := time.Now()
		for lo := 0; lo < b.N; {
			hi := b.N
			if !resetDone && consumed+uint64(hi-lo) > warmup {
				hi = lo + int(warmup-consumed)
			}
			for _, s := range steppers {
				s.StepBatch(b, lo, hi)
			}
			consumed += uint64(hi - lo)
			maybeReset()
			lo = hi
		}
		timingWall += time.Since(tt)
	}
	pc.add(PhaseDecode, decodeWall)
	pc.add(PhaseTiming, timingWall)
	if !resetDone {
		// The stream ended inside warmup; solo replay still resets and
		// collects an empty window.
		for _, m := range machines {
			m.ResetStats()
		}
	}

	for k, ci := range claims {
		res := machines[k].Collect()
		if p.FastForward > 0 {
			// Solo cells route through SimulateFrom → mergeRegions even
			// for a single region; replicate for bit-identity.
			res = mergeRegions([]Result{res}, p)
		}
		results[ci] = res
	}
	tr.phase(0, -1)
	// Bank the unclaimed remainder as build, then apportion the cohort's
	// shared cost evenly to each produced cell.
	if rest := time.Since(t0) - cph.Total(); rest > 0 {
		pc.add(PhaseBuild, rest)
	}
	share := cph.Split(len(claims))
	for _, ci := range claims {
		outs[ci].Phases.AddAll(share)
	}
	tr.CohortDone(len(claims))
	cohortTotals.Lock()
	cohortTotals.runs++
	cohortTotals.cells += len(claims)
	if cohortTotals.widths == nil {
		cohortTotals.widths = make(map[int]int)
	}
	cohortTotals.widths[len(claims)]++
	cohortTotals.Unlock()
}

// newCohortMachine builds one cohort member positioned at the recording
// start: newReplayMachine minus the source attachment (the member is
// stepped over shared batches, never through a source). Stream-pure
// members share the frozen master/checkpoint memory; members that read
// memory or architectural state (IMP, SVR) get a private clone wrapped
// in a stream.ArchView that StepBatch advances row by row.
func newCohortMachine(cfg Config, spec workloads.Spec, p Params, rec *stream.Recording, out *CellOutcome, tr *Tracker, pc *phaseCtx) (Machine, error) {
	needs := StreamNeedsOf(cfg.Core)
	wantView := needs == StreamMemory || needs == StreamArch
	var inst *workloads.Instance
	var ck *Checkpoint
	if p.FastForward > 0 {
		var co artifact.Outcome
		ck, co = cachedCheckpoint(spec, cfg, p, tr, pc)
		out.CkptFromStore = co.FromStore()
		inst = &workloads.Instance{
			Name: ck.Workload, Prog: ck.prog, Mem: ck.mem, Check: ck.check,
		}
		if wantView {
			inst.Mem = ck.mem.Clone()
		}
	} else {
		inst = cachedBuild(spec, p.Scale, pc)
		if wantView {
			inst = cloneInstance(inst)
		}
	}
	m, err := NewMachine(cfg, inst)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		m.Restore(ck)
	}
	if wantView {
		av, ok := m.(interface{ AttachArchView(*stream.ArchView) })
		if !ok {
			return nil, fmt.Errorf("sim: machine kind %d needs an arch view but cannot attach one", cfg.Core)
		}
		av.AttachArchView(stream.NewArchView(rec, inst.Mem))
	}
	return m, nil
}

// cohortChunk fetches (or decodes) chunk number chunk of the recording
// behind src. Chunks live in the artifact store's decoded class, so
// concurrent cohorts over the same window — and later grids — decode
// each chunk exactly once while it stays resident. On a store hit the
// batch's embedded decoder end state repositions src past the chunk, so
// a hit skips the decode entirely.
func cohortChunk(spec workloads.Spec, p Params, src *stream.ReplaySource, chunk int, pc *phaseCtx) *stream.DecodedBatch {
	k := decodedKey(spec.Name, p.Scale, p.FastForward, p.Warmup+p.Measure, chunk, cohortChunkRows)
	t0 := time.Now()
	v, oc := artifacts.GetOrProduce(k, func() (any, int64) {
		b := new(stream.DecodedBatch)
		b.Fill(src, cohortChunkRows)
		return b, b.Bytes()
	})
	pc.artifact(k, oc, time.Since(t0))
	b := v.(*stream.DecodedBatch)
	if oc.FromStore() {
		src.SetState(b.End)
	}
	return b
}

package sim

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestTimingModelsPreserveArchitecture runs every evaluation workload to
// completion at tiny scale under each timing model and validates the
// architectural result with the workload's functional self-check. SVR's
// transient execution in particular must never leak into architectural
// state (stores must not be performed, register values must be exact).
func TestTimingModelsPreserveArchitecture(t *testing.T) {
	p := Params{Scale: workloads.TinyScale(), Warmup: 0, Measure: 1 << 26}
	cfgs := []Config{
		MachineConfig(InO),
		MachineConfig(IMP),
		MachineConfig(OoO),
		SVRConfig(16),
		SVRConfig(64),
	}
	for _, spec := range workloads.Evaluation() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, cfg := range cfgs {
				inst := spec.Build(p.Scale)
				m, err := NewMachine(cfg, inst)
				if err != nil {
					t.Fatal(err)
				}
				res := Simulate(m, p)
				if res.Instrs == 0 {
					t.Fatalf("%s: nothing executed", cfg.Label)
				}
				if inst.Check == nil {
					t.Skip("no self-check")
				}
				if err := inst.Check(inst.Mem); err != nil {
					t.Fatalf("%s corrupted architectural state: %v", cfg.Label, err)
				}
			}
		})
	}
}

// TestTimingDeterminism: same workload, same config, same scale => the
// exact same cycle count. The simulator must be reproducible.
func TestTimingDeterminism(t *testing.T) {
	p := QuickParams()
	for _, name := range []string{"PR_KR", "HJ8", "Randacc"} {
		a, err := RunByName(name, SVRConfig(16), p)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := RunByName(name, SVRConfig(16), p)
		if a.Cycles != b.Cycles || a.Instrs != b.Instrs ||
			a.DRAMLoads != b.DRAMLoads {
			t.Errorf("%s: nondeterministic simulation: %+v vs %+v", name, a.Cycles, b.Cycles)
		}
	}
}

// TestSchedulerCellDeterminism runs the same scheduler cell twice with
// the run cache disabled and requires the two Results — every counter,
// every CPI-stack component, and the full metrics snapshot — to be deeply
// equal. This is the strong form of TestTimingDeterminism: it would catch
// nondeterminism that happens to leave the headline cycle count intact
// (map iteration order leaking into a counter, a fast path updating
// different state than the slow path it shadows, pool reuse carrying
// stale state between cells).
func TestSchedulerCellDeterminism(t *testing.T) {
	defer SetRunCacheEnabled(SetRunCacheEnabled(false))
	spec, err := workloads.Get("Randacc")
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		rs := runMatrix([]Config{SVRConfig(16)}, []workloads.Spec{spec}, QuickParams())
		res, ok := rs.Get("SVR16", "Randacc")
		if !ok {
			t.Fatal("cell missing from result set")
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("scheduler cell is not reproducible:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if a.Metrics.IsZero() {
		t.Error("cell result carries no metrics snapshot; determinism check is vacuous")
	}
}

// TestInstructionCountInvariance: the dynamic instruction stream is a
// function of the program alone — every timing model must see the same
// committed instruction count over a full run.
func TestInstructionCountInvariance(t *testing.T) {
	p := Params{Scale: workloads.TinyScale(), Warmup: 0, Measure: 1 << 26}
	spec, _ := workloads.Get("PR_KR")
	var counts []uint64
	for _, cfg := range []Config{MachineConfig(InO), MachineConfig(OoO), SVRConfig(16)} {
		res := Run(spec, cfg, p)
		counts = append(counts, res.Instrs)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("instruction counts diverge across timing models: %v", counts)
	}
}

package sim

import (
	"strings"
	"testing"
)

// sampledParams is the quick window with interval sampling on.
func sampledParams() Params {
	p := QuickParams()
	p.Measure = 100_000
	p.SampleEvery = 20_000
	return p
}

// TestSimulateSampledMatchesUnsampled is the tentpole invariant: interval
// sampling must not perturb the simulated timing. The chunked-stepping
// run must agree with a plain run bit-for-bit on the aggregate result.
func TestSimulateSampledMatchesUnsampled(t *testing.T) {
	plain := sampledParams()
	plain.SampleEvery = 0
	got, err := RunByName("BFS_KR", SVRConfig(16), sampledParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunByName("BFS_KR", SVRConfig(16), plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Series == nil {
		t.Fatal("sampled run has no Series")
	}
	if want.Series != nil {
		t.Fatal("unsampled run has a Series")
	}
	if got.Instrs != want.Instrs || got.Cycles != want.Cycles {
		t.Errorf("sampling perturbed timing: sampled %d instrs / %d cycles, plain %d / %d",
			got.Instrs, got.Cycles, want.Instrs, want.Cycles)
	}
	for _, name := range []string{"l1d.misses", "l2.misses", "dram.lines", "svr.rounds"} {
		if g, w := got.Metrics.Counters[name], want.Metrics.Counters[name]; g != w {
			t.Errorf("sampling perturbed %s: %d vs %d", name, g, w)
		}
	}
}

func TestSimulateSampledSeriesShape(t *testing.T) {
	res, err := RunByName("BFS_KR", SVRConfig(16), sampledParams())
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Series
	if ts.Interval != 20_000 {
		t.Errorf("interval = %d", ts.Interval)
	}
	if want := 5; len(ts.Rows) != want { // 100k measured / 20k interval
		t.Errorf("rows = %d, want %d", len(ts.Rows), want)
	}
	if len(ts.Columns) < 15 {
		t.Errorf("only %d columns: %v", len(ts.Columns), ts.Columns)
	}
	col := map[string]int{}
	for i, c := range ts.Columns {
		col[c] = i
	}
	for _, c := range []string{"instrs", "cycles", "ipc", "l1d_mpki", "dram_busy",
		"svr_rounds", "svr_coverage", "cpi_mem_dram", "demand_p50", "demand_p99"} {
		if _, ok := col[c]; !ok {
			t.Fatalf("column %q missing: %v", c, ts.Columns)
		}
	}
	var prevInstr, prevCyc float64
	for i, row := range ts.Rows {
		if len(row) != len(ts.Columns) {
			t.Fatalf("row %d has %d values for %d columns", i, len(row), len(ts.Columns))
		}
		if row[col["instrs"]] <= prevInstr || row[col["cycles"]] <= prevCyc {
			t.Errorf("row %d positions not increasing: instrs %v cycles %v",
				i, row[col["instrs"]], row[col["cycles"]])
		}
		prevInstr, prevCyc = row[col["instrs"]], row[col["cycles"]]
		if ipc := row[col["ipc"]]; ipc <= 0 || ipc > 8 {
			t.Errorf("row %d ipc = %v", i, ipc)
		}
		if cov := row[col["svr_coverage"]]; cov < 0 || cov > 1 {
			t.Errorf("row %d coverage = %v outside [0,1]", i, cov)
		}
	}
	// A memory-bound graph workload must show DRAM pressure somewhere.
	var anyDRAM bool
	for _, row := range ts.Rows {
		if row[col["dram_busy"]] > 0 {
			anyDRAM = true
		}
	}
	if !anyDRAM {
		t.Error("dram_busy is zero in every interval of BFS_KR")
	}
	if ts.Rows[len(ts.Rows)-1][col["instrs"]] != float64(res.Instrs) {
		t.Errorf("last row instrs %v != result instrs %d",
			ts.Rows[len(ts.Rows)-1][col["instrs"]], res.Instrs)
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	ts := &TimeSeries{Interval: 10, Columns: []string{"a", "b"},
		Rows: [][]float64{{1, 2.5}, {3, 4}}}
	var b strings.Builder
	if err := ts.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "a,b\n1,2.5\n3,4\n"; got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
	b.Reset()
	if err := ts.WriteCSVHeader(&b, "label", "wl"); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteCSVRows(&b, "svr16", "BFS"); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "label,wl,a,b\nsvr16,BFS,1,2.5\nsvr16,BFS,3,4\n"; got != want {
		t.Errorf("prefixed csv = %q, want %q", got, want)
	}
}

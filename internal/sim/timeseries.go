package sim

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// TimeSeries is the interval-sampled view of one run: every Interval
// instructions of the measurement window contributes one row of derived
// rates (IPC, MPKIs, DRAM occupancy, SVR activity, CPI-stack split,
// demand-latency quantiles). Columns names the row layout once so the
// CSV/JSON forms stay self-describing.
type TimeSeries struct {
	Interval uint64
	Columns  []string
	Rows     [][]float64
}

// seriesColumns is the fixed row layout. The first two columns are
// cumulative positions (instructions and cycles into the measurement
// window); everything after is a per-interval rate or level.
func seriesColumns() []string {
	cols := []string{
		"instrs", "cycles", "ipc",
		"l1d_mpki", "l2_mpki", "branch_mpki",
		"dram_lines_pki", "dram_busy",
		"svr_rounds", "svr_svis", "svr_coverage", "svr_banned",
	}
	for r := stats.StallReason(0); r < stats.NumStallReasons; r++ {
		cols = append(cols, "cpi_"+strings.ReplaceAll(r.String(), "-", "_"))
	}
	return append(cols, "demand_p50", "demand_p99")
}

// seriesRow derives one row from an interval's counter deltas. d carries
// the registry delta for the interval, dStack the CPI-stack delta,
// dInstr/dCyc the interval width, and cumInstr/cumCyc the position.
func seriesRow(d metrics.Snapshot, dStack stats.CPIStack,
	dInstr uint64, dCyc int64, cumInstr uint64, cumCyc int64) []float64 {
	pki := func(name string) float64 {
		if dInstr == 0 {
			return 0
		}
		return float64(d.Counters[name]) * 1000 / float64(dInstr)
	}
	row := make([]float64, 0, len(seriesColumns()))
	row = append(row, float64(cumInstr), float64(cumCyc))
	if dCyc > 0 {
		row = append(row, float64(dInstr)/float64(dCyc))
	} else {
		row = append(row, 0)
	}
	row = append(row,
		pki("l1d.misses"), pki("l2.misses"), pki("bpred.mispredicts"),
		pki("dram.lines"))
	if dCyc > 0 {
		row = append(row, float64(d.Counters["dram.busy_cycles"])/float64(dCyc))
	} else {
		row = append(row, 0)
	}
	row = append(row, float64(d.Counters["svr.rounds"]), float64(d.Counters["svr.svis"]))
	// Coverage: of the demand-side DRAM pressure this interval, the share
	// absorbed by SVR prefetches that were actually used.
	used := d.Counters["pf.svr.used"]
	demand := d.Counters["dram.loads.demand"]
	if used+demand > 0 {
		row = append(row, float64(used)/float64(used+demand))
	} else {
		row = append(row, 0)
	}
	row = append(row, float64(d.Gauges["svr.banned"]))
	for r := stats.StallReason(0); r < stats.NumStallReasons; r++ {
		if dInstr > 0 {
			row = append(row, dStack.Cycles[r]/float64(dInstr))
		} else {
			row = append(row, 0)
		}
	}
	lat := d.Histograms["lat.demand.mem"]
	return append(row, lat.QuantileEst(0.50), lat.QuantileEst(0.99))
}

// stackDelta subtracts two cumulative CPI stacks.
func stackDelta(cur, prev stats.CPIStack) stats.CPIStack {
	d := stats.CPIStack{Instrs: cur.Instrs - prev.Instrs}
	for r := range cur.Cycles {
		d.Cycles[r] = cur.Cycles[r] - prev.Cycles[r]
	}
	return d
}

// simulateSampled is Simulate with interval sampling: the measurement
// window is stepped in SampleEvery-instruction chunks and the registry
// delta of each chunk becomes one TimeSeries row. Chunked stepping is
// timing-identical to one full Step — the cores advance per instruction —
// so the aggregate Result matches an unsampled run exactly.
func simulateSampled(m Machine, p Params) Result {
	m.Step(p.Warmup)
	m.ResetStats()
	base := m.Now()
	sampler := metrics.NewSampler(m.Registry())
	ts := &TimeSeries{Interval: p.SampleEvery, Columns: seriesColumns()}
	prevStack := m.Stack()
	var prevInstr uint64
	var prevCyc int64
	alive := true
	for alive && prevInstr < p.Measure {
		n := p.SampleEvery
		if rem := p.Measure - prevInstr; rem < n {
			n = rem
		}
		alive = m.Step(n)
		instr, cyc := m.Instrs(), m.Now()-base
		if instr == prevInstr {
			break // program ended inside the chunk with nothing issued
		}
		sample := sampler.Tick(instr, cyc)
		stack := m.Stack()
		ts.Rows = append(ts.Rows, seriesRow(sample.Delta, stackDelta(stack, prevStack),
			instr-prevInstr, cyc-prevCyc, instr, cyc))
		prevStack, prevInstr, prevCyc = stack, instr, cyc
	}
	res := m.Collect()
	res.Series = ts
	return res
}

// WriteCSVHeader writes the column-name line, with optional fixed columns
// (label/workload for multi-cell exports) prepended.
func (t *TimeSeries) WriteCSVHeader(w io.Writer, prefixCols ...string) error {
	cols := append(append([]string{}, prefixCols...), t.Columns...)
	_, err := fmt.Fprintln(w, strings.Join(cols, ","))
	return err
}

// WriteCSVRows writes one CSV line per sample, each prefixed by the given
// fixed values (matching a WriteCSVHeader prefix).
func (t *TimeSeries) WriteCSVRows(w io.Writer, prefix ...string) error {
	var b strings.Builder
	for _, row := range t.Rows {
		b.Reset()
		for _, p := range prefix {
			b.WriteString(p)
			b.WriteByte(',')
		}
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the whole series: header plus rows.
func (t *TimeSeries) WriteCSV(w io.Writer) error {
	if err := t.WriteCSVHeader(w); err != nil {
		return err
	}
	return t.WriteCSVRows(w)
}

package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/emu"
	"repro/internal/stream"
	"repro/internal/workloads"
)

// This file is the scheduler side of execute-once, time-many: one
// functional recording pass per workload window (cachedRecording, under
// the same build-cache/singleflight machinery as the shared
// checkpoints), fanned out to every replay-eligible sibling cell
// (newReplayMachine). Core kinds declare their stream requirement at
// registration (StreamNeeds); SVR cells consume the recording through a
// replay-backed architectural-state view (stream.ArchState).

// ReplayMode selects how the scheduler feeds instruction streams to
// grid cells.
type ReplayMode int

// Replay modes (the CLI's -replay=on|off|auto).
const (
	// ReplayAuto records once per workload and replays into every
	// eligible cell; ineligible cells (multi-region windows) run live.
	// Results are bit-identical either way, so this is the default.
	ReplayAuto ReplayMode = iota
	// ReplayOn behaves like ReplayAuto (eligibility still applies) but
	// states the intent explicitly; surfaces report the replay/live
	// split so a forced run can be audited.
	ReplayOn
	// ReplayOff disables recording and replay entirely: every cell runs
	// the emulator in lockstep, as before this layer existed.
	ReplayOff
)

// String returns the CLI spelling of the mode.
func (m ReplayMode) String() string {
	switch m {
	case ReplayOn:
		return "on"
	case ReplayOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseReplayMode parses the CLI spelling of a replay mode.
func ParseReplayMode(s string) (ReplayMode, error) {
	switch s {
	case "auto", "":
		return ReplayAuto, nil
	case "on":
		return ReplayOn, nil
	case "off":
		return ReplayOff, nil
	}
	return ReplayAuto, fmt.Errorf("unknown replay mode %q (want on, off, or auto)", s)
}

var replayCtl = struct {
	sync.Mutex
	mode ReplayMode
}{}

// SetReplayMode switches the scheduler's stream policy and returns the
// previous mode.
func SetReplayMode(m ReplayMode) ReplayMode {
	replayCtl.Lock()
	defer replayCtl.Unlock()
	prev := replayCtl.mode
	replayCtl.mode = m
	return prev
}

// CurrentReplayMode reports the active stream policy.
func CurrentReplayMode() ReplayMode {
	replayCtl.Lock()
	defer replayCtl.Unlock()
	return replayCtl.mode
}

// replayEligible reports whether a cell of this configuration and window
// can consume a recorded stream instead of running the emulator live.
// Multi-region windows are excluded: their streams would have to span
// every fast-forward gap, which defeats the compact single-window
// recording (and PaperParams regions are exactly the huge case).
func replayEligible(cfg Config, p Params) bool {
	if CurrentReplayMode() == ReplayOff {
		return false
	}
	if StreamNeedsOf(cfg.Core) == StreamLive {
		return false
	}
	return p.Regions <= 1
}

// streamStats aggregates recording-pass production counters for the
// bench and status surfaces.
var streamStats = struct {
	sync.Mutex
	recordings int
	bytes      int64
	instrs     uint64
}{}

// StreamCacheStats describes the recording passes produced so far.
type StreamCacheStats struct {
	Recordings int    // recording passes actually executed (cache misses)
	Bytes      int64  // total encoded stream bytes produced
	Instrs     uint64 // total instructions recorded
}

// BytesPerInstr returns the mean encoded record size across recordings.
func (s StreamCacheStats) BytesPerInstr() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Instrs)
}

// RecordingStats returns the process-wide recording production counters.
func RecordingStats() StreamCacheStats {
	streamStats.Lock()
	defer streamStats.Unlock()
	return StreamCacheStats{
		Recordings: streamStats.recordings,
		Bytes:      streamStats.bytes,
		Instrs:     streamStats.instrs,
	}
}

// cachedRecording returns the shared recording of one workload window —
// warmup+measure instructions starting at the post-fast-forward point —
// producing it at most once across concurrent callers via the artifact
// store. The pass is purely functional: a bare emulator steps into the
// encoder, composing with the checkpoint class (the fast-forward itself
// is cachedCheckpoint's, never repeated here). The outcome reports
// whether this caller got the buffer from the store (hit or joined
// flight) rather than recording it.
func cachedRecording(spec workloads.Spec, cfg Config, p Params, tr *Tracker, pc *phaseCtx) (*stream.Recording, artifact.Outcome) {
	n := p.Warmup + p.Measure
	k := streamKey(spec.Name, p.Scale, p.FastForward, n)
	callStart := time.Now()
	v, oc := artifacts.GetOrProduce(k, func() (any, int64) {
		// Resolve the start-point image before entering the recording
		// phase: cachedCheckpoint manages the building/checkpointing
		// counters itself, so it must run while this worker still counts
		// as "building".
		var cpu *emu.CPU
		if p.FastForward > 0 {
			ck, _ := cachedCheckpoint(spec, cfg, p, tr, pc)
			cpu = emu.New(ck.prog, ck.mem.Clone())
			cpu.LoadArch(ck.arch)
		} else {
			inst := cloneInstance(cachedBuild(spec, p.Scale, pc))
			cpu = emu.New(inst.Prog, inst.Mem)
		}

		tr.recBegin()
		t0 := time.Now()
		rec, err := stream.Record(cpu, n)
		if err != nil {
			panic(err) // the emulator broke the stream contract: a bug, not an input error
		}
		d := time.Since(t0)
		tr.recEnd(d)
		pc.add(PhaseRecord, d)

		streamStats.Lock()
		streamStats.recordings++
		streamStats.bytes += int64(rec.Bytes())
		streamStats.instrs += rec.N
		streamStats.Unlock()
		return rec, int64(rec.Bytes())
	})
	if oc.Waited {
		pc.add(PhaseStoreWait, time.Since(callStart))
	}
	pc.artifact(k, oc, time.Since(callStart))
	return v.(*stream.Recording), oc
}

// newReplayMachine builds a machine of cfg fed by the shared recording
// instead of a live emulator. Stream-pure kinds (InO, OoO) share the
// frozen master/checkpoint memory without cloning — nothing in the cell
// reads or writes data memory. StreamMemory (IMP) and StreamArch (SVR)
// kinds get a private clone that the replay source keeps in lockstep by
// applying decoded stores, so ahead-of-stream dereferences — and the
// SVR engine's retire-point reads through the source's ArchState view —
// see exactly the bytes a live run would have shown. out (nil-safe) is
// annotated with whether the checkpoint came from the store. The
// attached source is also returned so the caller can Recycle its decode
// scratch once the cell finishes.
func newReplayMachine(cfg Config, spec workloads.Spec, p Params,
	rec *stream.Recording, master *workloads.Instance,
	out *CellOutcome, tr *Tracker, pc *phaseCtx) (Machine, *stream.ReplaySource, error) {
	needs := StreamNeedsOf(cfg.Core)
	wantMem := needs == StreamMemory || needs == StreamArch
	var inst *workloads.Instance
	var ck *Checkpoint
	if p.FastForward > 0 {
		var co artifact.Outcome
		ck, co = cachedCheckpoint(spec, cfg, p, tr, pc)
		if out != nil {
			out.CkptFromStore = co.FromStore()
		}
		inst = &workloads.Instance{
			Name: ck.Workload, Prog: ck.prog, Mem: ck.mem, Check: ck.check,
		}
		if wantMem {
			inst.Mem = ck.mem.Clone()
		}
	} else {
		inst = master
		if wantMem {
			inst = cloneInstance(master)
		}
	}
	m, err := NewMachine(cfg, inst)
	if err != nil {
		return nil, nil, err
	}
	if ck != nil {
		m.Restore(ck)
	}
	var src *stream.ReplaySource
	if wantMem {
		src = stream.NewReplayWithMem(rec, inst.Mem)
	} else {
		src = stream.NewReplay(rec)
	}
	m.SetSource(src)
	return m, src, nil
}

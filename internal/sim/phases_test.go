package sim

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
)

// TestPhaseTimesJSONRoundTrip: the wire form carries every phase under
// its stable name (nanoseconds), unknown keys are ignored, and missing
// keys read as zero.
func TestPhaseTimesJSONRoundTrip(t *testing.T) {
	var pt PhaseTimes
	pt.Add(PhaseBuild, 3*time.Millisecond)
	pt.Add(PhaseTiming, 2*time.Second)
	pt.Add(PhaseStoreWait, time.Microsecond)

	blob, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	var asMap map[string]int64
	if err := json.Unmarshal(blob, &asMap); err != nil {
		t.Fatal(err)
	}
	if len(asMap) != int(NumPhases) {
		t.Errorf("wire form has %d keys, want %d (stable schema): %s", len(asMap), NumPhases, blob)
	}
	for _, p := range AllPhases() {
		if got, want := asMap[p.String()], int64(pt[p]); got != want {
			t.Errorf("%s = %d ns on the wire, want %d", p, got, want)
		}
	}

	var back PhaseTimes
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != pt {
		t.Errorf("round trip changed value: %v vs %v", back, pt)
	}

	var sparse PhaseTimes
	if err := json.Unmarshal([]byte(`{"timing":5,"warp":9}`), &sparse); err != nil {
		t.Fatal(err)
	}
	if sparse[PhaseTiming] != 5 || sparse.Total() != 5 {
		t.Errorf("sparse decode: %v, want timing=5 only", sparse)
	}
}

// TestParsePhase: every phase's String parses back to itself; junk and
// out-of-range values are handled.
func TestParsePhase(t *testing.T) {
	for _, p := range AllPhases() {
		got, err := ParsePhase(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePhase(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePhase("warp"); err == nil {
		t.Error("ParsePhase accepted unknown phase")
	}
	if s := Phase(200).String(); s != "unknown" {
		t.Errorf("out-of-range Phase.String() = %q", s)
	}
}

// TestPhaseTimesArithmetic: Split apportions a cohort's shared cost
// evenly, AddAll folds, and out-of-range Add is a no-op.
func TestPhaseTimesArithmetic(t *testing.T) {
	var pt PhaseTimes
	pt.Add(PhaseRecord, 8*time.Second)
	pt.Add(PhaseDecode, 4*time.Second)
	pt.Add(NumPhases, time.Hour) // out of range: dropped
	if pt.Total() != 12*time.Second {
		t.Errorf("Total = %v, want 12s", pt.Total())
	}
	quarter := pt.Split(4)
	if quarter[PhaseRecord] != 2*time.Second || quarter[PhaseDecode] != time.Second {
		t.Errorf("Split(4) = %v", quarter)
	}
	if pt.Split(1) != pt || pt.Split(0) != pt {
		t.Error("Split(k<=1) must be the identity")
	}
	var sum PhaseTimes
	sum.AddAll(pt)
	sum.AddAll(quarter)
	if sum[PhaseRecord] != 10*time.Second {
		t.Errorf("AddAll: record = %v, want 10s", sum[PhaseRecord])
	}
	if s := pt.Seconds(); s["record"] != 8 || len(s) != int(NumPhases) {
		t.Errorf("Seconds() = %v", s)
	}
}

// TestPhaseHooksDeliver: installed hooks see phaseCtx emissions with the
// cell's identity, and the same add() call banks into the accumulator.
func TestPhaseHooksDeliver(t *testing.T) {
	var mu sync.Mutex
	var phases []CellPhaseEvent
	var arts []ArtifactEvent
	SetCellPhaseHook(func(ev CellPhaseEvent) {
		mu.Lock()
		phases = append(phases, ev)
		mu.Unlock()
	})
	SetArtifactHook(func(ev ArtifactEvent) {
		mu.Lock()
		arts = append(arts, ev)
		mu.Unlock()
	})
	defer SetCellPhaseHook(nil)
	defer SetArtifactHook(nil)

	var pt PhaseTimes
	pc := &phaseCtx{label: "SVR16", workload: "HJ2", ph: &pt}
	pc.add(PhaseTiming, 5*time.Millisecond)
	pc.add(PhaseTiming, 0) // non-positive segments are dropped
	pc.artifact(artifact.Key{Class: artifact.Result, ID: "k"},
		artifact.Outcome{Hit: true}, time.Millisecond)

	if len(phases) != 1 || phases[0].Label != "SVR16" || phases[0].Workload != "HJ2" ||
		phases[0].Phase != PhaseTiming || phases[0].Dur != 5*time.Millisecond {
		t.Errorf("phase hook saw %+v", phases)
	}
	if pt[PhaseTiming] != 5*time.Millisecond {
		t.Errorf("accumulator got %v, want 5ms", pt[PhaseTiming])
	}
	if len(arts) != 1 || !arts[0].Hit || arts[0].Label != "SVR16" {
		t.Errorf("artifact hook saw %+v", arts)
	}
}

// TestPhaseEmitOffDoesNotAllocate: with no hooks installed the emission
// sites must cost one atomic load — no allocation, no lock — so cell
// execution is unchanged when nobody observes.
func TestPhaseEmitOffDoesNotAllocate(t *testing.T) {
	SetCellPhaseHook(nil)
	SetArtifactHook(nil)
	k := artifact.Key{Class: artifact.Result, ID: "k"}
	if n := testing.AllocsPerRun(1000, func() {
		emitPhase("SVR16", "HJ2", PhaseTiming, time.Millisecond)
		emitArtifact("SVR16", "HJ2", k, artifact.Outcome{}, time.Millisecond)
	}); n != 0 {
		t.Errorf("hook-off emission allocates %.1f times per call", n)
	}
}

// TestCellPhasesCoverWall: a fresh (uncached) quick cell must attribute
// nearly all of its wall time to phases — the build remainder rule means
// the decomposition sums to the measured wall, minus only the few
// time.Now seams between segments.
func TestCellPhasesCoverWall(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	req := CellRequest{Cfg: SVRConfig(16), Spec: mustSpec(t, "Randacc"), P: QuickParams()}
	_, out := ExecuteCell(req, nil)
	if out.Cached || out.Shared {
		t.Fatalf("expected a fresh simulation, got %+v", out)
	}
	if out.Wall <= 0 {
		t.Fatalf("no wall time measured: %+v", out)
	}
	total := out.Phases.Total()
	if total < out.Wall*8/10 || total > out.Wall*21/20 {
		t.Errorf("phases attribute %v of %v wall (%.1f%%), want within [80%%, 105%%]\n%v",
			total, out.Wall, 100*float64(total)/float64(out.Wall), out.Phases)
	}
	if out.Phases[PhaseTiming] <= 0 {
		t.Errorf("fresh cell reports no timing phase: %v", out.Phases)
	}
}

// TestCurrentStatusAggregatesTrackers: concurrent jobs' trackers fold
// into one grid view — cells, completions and phase wall all sum.
// Deltas against the pre-test snapshot keep the test independent of
// other open trackers.
func TestCurrentStatusAggregatesTrackers(t *testing.T) {
	base := CurrentStatus()

	t1 := NewTracker(4)
	defer t1.Close()
	t2 := NewTracker(6)
	defer t2.Close()

	var o1, o2 CellOutcome
	o1.Phases.Add(PhaseTiming, 3*time.Second)
	o1.Phases.Add(PhaseBuild, time.Second)
	o2.Phases.Add(PhaseTiming, 5*time.Second)
	o2.Cached = true
	t1.CellDone(o1, 1000)
	t2.CellDone(o2, 500)
	t2.CohortDone(3)

	s := CurrentStatus()
	if !s.Active {
		t.Fatal("open trackers but CurrentStatus reports inactive")
	}
	if got := s.Cells - base.Cells; got != 10 {
		t.Errorf("Cells delta = %d, want 10", got)
	}
	if got := s.Done - base.Done; got != 2 {
		t.Errorf("Done delta = %d, want 2", got)
	}
	if got := s.Cached - base.Cached; got != 1 {
		t.Errorf("Cached delta = %d, want 1", got)
	}
	if got := s.Instrs - base.Instrs; got != 1500 {
		t.Errorf("Instrs delta = %d, want 1500", got)
	}
	if got := s.CohortCells - base.CohortCells; got != 3 {
		t.Errorf("CohortCells delta = %d, want 3", got)
	}
	if got := s.PhaseWall[PhaseTiming] - base.PhaseWall[PhaseTiming]; got != 8*time.Second {
		t.Errorf("PhaseWall[timing] delta = %v, want 8s", got)
	}
	if got := s.PhaseWall[PhaseBuild] - base.PhaseWall[PhaseBuild]; got != time.Second {
		t.Errorf("PhaseWall[build] delta = %v, want 1s", got)
	}
}

// TestProjectETASteady: the windowed projection shrinks as wall time
// passes with no new completions (no sawtooth), and the pre-window
// fallback still projects from completion counts.
func TestProjectETASteady(t *testing.T) {
	now := time.Now()
	s := GridStatus{Active: true, Cells: 100, Done: 32, Instrs: 32e6, Elapsed: 20 * time.Second}
	win := rateWindow{instrs: 16e6, span: 8 * time.Second, last: now.Add(-2 * time.Second)}

	// rate = 2M instr/s, 68 cells × 1M instr left = 34s, minus the 2s
	// since the last completion: 32s.
	eta := projectETA(&s, win, now)
	if eta < 31*time.Second || eta > 33*time.Second {
		t.Errorf("ETA = %v, want ≈32s", eta)
	}
	// Three more wall seconds, no new completions: a count-based
	// projection would not move; the windowed one must keep shrinking.
	eta2 := projectETA(&s, win, now.Add(3*time.Second))
	if eta2 >= eta {
		t.Errorf("ETA did not shrink with wall time: %v then %v", eta, eta2)
	}
	if diff := eta - eta2 - 3*time.Second; diff < -100*time.Millisecond || diff > 100*time.Millisecond {
		t.Errorf("ETA shrank by %v over 3s of wall", eta-eta2)
	}
	// The floor: never report zero (= unknown) for an in-flight grid.
	if eta3 := projectETA(&s, win, now.Add(time.Hour)); eta3 != time.Second {
		t.Errorf("ETA floor = %v, want 1s", eta3)
	}
	// No measured window yet: fall back to completion counts, with the
	// shared production wall excluded. (20s-4s)/32 done × 68 left = 34s.
	s.CkptWall, s.RecWall = 3*time.Second, time.Second
	fallback := projectETA(&s, rateWindow{}, now)
	if fallback != 34*time.Second {
		t.Errorf("fallback ETA = %v, want 34s", fallback)
	}
}

package sim

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// The multicore experiment implements the extension §VI-E hints at: "SVR
// across multiple cores simultaneously would give significant benefit"
// because a single SVR core does not saturate memory bandwidth. K SVR
// cores with private cache hierarchies share one DRAM channel; cores are
// stepped in simulated-time order so their requests contend realistically
// on the channel's bandwidth ledger.

func init() {
	registerExperiment(Experiment{
		ID:    "multicore",
		Title: "Extension (§VI-E): multiple SVR cores sharing one DRAM channel",
		Run:   runMulticore,
	})
}

// mcCore is one core's simulation context: any Machine stepped in quanta.
type mcCore struct {
	m    Machine
	done bool
}

// runCluster simulates k cores, each running its own workload instance,
// until every core has executed measure instructions. It returns the
// per-core IPCs. Machines come from the same factory registry as the
// single-core experiments; only the DRAM channel is shared.
func runCluster(specs []workloads.Spec, k int, p Params, useSVR bool) []float64 {
	cfg := SVRConfig(16)
	if !useSVR {
		cfg.Core = InO
	}
	channel := dram.New(cfg.Hier.DRAM)
	cores := make([]*mcCore, k)
	for i := 0; i < k; i++ {
		spec := specs[i%len(specs)]
		inst := cloneInstance(spec.Build(p.Scale))
		m, err := NewMachineShared(cfg, inst, channel)
		if err != nil {
			panic(err)
		}
		cores[i] = &mcCore{m: m}
	}

	// Warmup each core independently.
	for _, mc := range cores {
		mc.m.Step(p.Warmup)
		mc.m.ResetStats()
	}

	// Measured phase: always step the core that is furthest behind in
	// simulated time, in small quanta, so channel contention interleaves
	// realistically.
	const quantum = 256
	for {
		var next *mcCore
		for _, mc := range cores {
			if mc.done || mc.m.Instrs() >= p.Measure {
				mc.done = true
				continue
			}
			if next == nil || mc.m.Now() < next.m.Now() {
				next = mc
			}
		}
		if next == nil {
			break
		}
		if !next.m.Step(quantum) {
			next.done = true
		}
	}

	ipcs := make([]float64, k)
	for i, mc := range cores {
		ipcs[i] = mc.m.Collect().IPC
	}
	return ipcs
}

func runMulticore(p ExpParams) *Report {
	r := newReport("multicore", "SVR cores sharing one DRAM channel")
	specs := sweepWorkloads(p)

	// Per-workload solo runs (uncontended channel) form the baseline for
	// each cluster's exact workload mix.
	soloSVR := make([]float64, len(specs))
	for i := range specs {
		soloSVR[i] = runCluster(specs[i:i+1], 1, p.Params, true)[0]
	}
	soloBase := runCluster(specs[:1], 1, p.Params, false)[0]
	r.Values["solo.ipc"] = soloSVR[0]

	t := stats.NewTable("cores", "aggregate IPC", "per-core IPC (hmean)",
		"per-core vs solo", "aggregate vs 1x in-order")
	for _, k := range []int{1, 2, 4, 8} {
		ipcs := runCluster(specs, k, p.Params, true)
		agg := 0.0
		for _, v := range ipcs {
			agg += v
		}
		per := stats.HarmonicMean(ipcs)
		mix := make([]float64, k)
		for i := 0; i < k; i++ {
			mix[i] = soloSVR[i%len(specs)]
		}
		rel := per / stats.HarmonicMean(mix)
		t.AddRowF(fmt.Sprintf("%d", k), agg, per, rel, agg/soloBase)
		r.Values[fmt.Sprintf("agg.%d", k)] = agg
		r.Values[fmt.Sprintf("percore.%d", k)] = rel
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"a single SVR core leaves most of the 50 GiB/s channel idle (§VI-E);",
		"aggregate IPC should scale until the shared channel saturates")
	return r
}

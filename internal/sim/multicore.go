package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/dram"
	"repro/internal/emu"
	"repro/internal/stats"
	"repro/internal/svr"
	"repro/internal/workloads"
)

// The multicore experiment implements the extension §VI-E hints at: "SVR
// across multiple cores simultaneously would give significant benefit"
// because a single SVR core does not saturate memory bandwidth. K SVR
// cores with private cache hierarchies share one DRAM channel; cores are
// stepped in simulated-time order so their requests contend realistically
// on the channel's bandwidth ledger.

func init() {
	registerExperiment(Experiment{
		ID:    "multicore",
		Title: "Extension (§VI-E): multiple SVR cores sharing one DRAM channel",
		Run:   runMulticore,
	})
}

// mcCore is one core's simulation context.
type mcCore struct {
	cpu  *emu.CPU
	core *inorder.Core
	eng  *svr.Engine
	done bool
}

// runCluster simulates k cores, each running its own workload instance,
// until every core has executed measure instructions. It returns the
// per-core IPCs.
func runCluster(specs []workloads.Spec, k int, p Params, useSVR bool) []float64 {
	cfg := SVRConfig(16)
	channel := dram.New(cfg.Hier.DRAM)
	cores := make([]*mcCore, k)
	for i := 0; i < k; i++ {
		spec := specs[i%len(specs)]
		inst := spec.Build(p.Scale)
		inst = &workloads.Instance{Name: inst.Name, Prog: inst.Prog, Mem: inst.Mem.Clone()}
		h := cache.NewHierarchyShared(cfg.Hier, channel)
		core := inorder.New(cfg.InO, h)
		cpu := emu.New(inst.Prog, inst.Mem)
		mc := &mcCore{cpu: cpu, core: core}
		if useSVR {
			mc.eng = svr.New(cfg.SVR, h, cpu)
			core.Companion = mc.eng
		}
		cores[i] = mc
	}

	step := func(mc *mcCore, n uint64) bool {
		var rec emu.DynInstr
		for j := uint64(0); j < n; j++ {
			if !mc.cpu.Step(&rec) {
				return false
			}
			mc.core.Issue(&rec)
		}
		return true
	}

	// Warmup each core independently.
	for _, mc := range cores {
		step(mc, p.Warmup)
		mc.core.ResetStats()
		mc.core.H.ResetStats()
		if mc.eng != nil {
			mc.eng.ResetStats()
		}
	}

	// Measured phase: always step the core that is furthest behind in
	// simulated time, in small quanta, so channel contention interleaves
	// realistically.
	const quantum = 256
	for {
		var next *mcCore
		for _, mc := range cores {
			if mc.done || mc.core.Instrs >= p.Measure {
				mc.done = true
				continue
			}
			if next == nil || mc.core.Now() < next.core.Now() {
				next = mc
			}
		}
		if next == nil {
			break
		}
		if !step(next, quantum) {
			next.done = true
		}
	}

	ipcs := make([]float64, k)
	for i, mc := range cores {
		ipcs[i] = mc.core.IPC()
	}
	return ipcs
}

func runMulticore(p ExpParams) *Report {
	r := newReport("multicore", "SVR cores sharing one DRAM channel")
	specs := sweepWorkloads(p)

	// Per-workload solo runs (uncontended channel) form the baseline for
	// each cluster's exact workload mix.
	soloSVR := make([]float64, len(specs))
	for i := range specs {
		soloSVR[i] = runCluster(specs[i:i+1], 1, p.Params, true)[0]
	}
	soloBase := runCluster(specs[:1], 1, p.Params, false)[0]
	r.Values["solo.ipc"] = soloSVR[0]

	t := stats.NewTable("cores", "aggregate IPC", "per-core IPC (hmean)",
		"per-core vs solo", "aggregate vs 1x in-order")
	for _, k := range []int{1, 2, 4, 8} {
		ipcs := runCluster(specs, k, p.Params, true)
		agg := 0.0
		for _, v := range ipcs {
			agg += v
		}
		per := stats.HarmonicMean(ipcs)
		mix := make([]float64, k)
		for i := 0; i < k; i++ {
			mix[i] = soloSVR[i%len(specs)]
		}
		rel := per / stats.HarmonicMean(mix)
		t.AddRowF(fmt.Sprintf("%d", k), agg, per, rel, agg/soloBase)
		r.Values[fmt.Sprintf("agg.%d", k)] = agg
		r.Values[fmt.Sprintf("percore.%d", k)] = rel
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"a single SVR core leaves most of the 50 GiB/s channel idle (§VI-E);",
		"aggregate IPC should scale until the shared channel saturates")
	return r
}

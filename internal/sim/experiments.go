package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Report is the output of one experiment: printable tables plus named
// scalar values the tests assert against, and the scheduler counters of
// every grid the experiment ran. When cell-metric collection is on
// (SetCellMetrics), every scheduler cell's registry snapshot rides along.
type Report struct {
	ID          string
	Title       string
	Tables      []*stats.Table
	Charts      []*stats.BarChart
	Notes       []string
	Values      map[string]float64
	Sched       SchedStats
	CellMetrics []CellMetrics
	CellSeries  []CellSeries
}

// CellMetrics pairs one scheduler cell with its metric snapshot.
type CellMetrics struct {
	Label    string
	Workload string
	Metrics  metrics.Snapshot
}

// CellSeries pairs one scheduler cell with its interval time series.
type CellSeries struct {
	Label    string
	Workload string
	Series   *TimeSeries
}

// cellMetricsOn gates per-cell snapshot collection into reports; the CLI
// flips it for the -metrics flag. Collection is cheap (the snapshots
// already exist on every Result), but the JSON it adds is bulky, so it
// stays opt-in.
var cellMetricsOn bool

// SetCellMetrics toggles per-cell metric collection into reports and
// returns the previous setting.
func SetCellMetrics(on bool) bool {
	prev := cellMetricsOn
	cellMetricsOn = on
	return prev
}

// cellSeriesOn gates per-cell time-series collection into reports; the
// CLI flips it for the -timeseries flag (alongside Params.SampleEvery,
// which makes the cells record a series in the first place).
var cellSeriesOn bool

// SetCellSeries toggles per-cell time-series collection into reports and
// returns the previous setting.
func SetCellSeries(on bool) bool {
	prev := cellSeriesOn
	cellSeriesOn = on
	return prev
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: map[string]float64{}}
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, c := range r.Charts {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders every table of the report as CSV blocks for plotting.
func (r *Report) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "# %s: %s\n", r.ID, r.Title)
		b.WriteString(t.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the report machine-readably: identity, notes, every named
// value, the raw tables, and the scheduler counters. Wall time is the
// only non-deterministic field.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID          string
		Title       string
		Notes       []string `json:",omitempty"`
		Values      map[string]float64
		Tables      []*stats.Table `json:",omitempty"`
		Sched       SchedStats
		CellMetrics []CellMetrics `json:",omitempty"`
		CellSeries  []CellSeries  `json:",omitempty"`
	}{r.ID, r.Title, r.Notes, r.Values, r.Tables, r.Sched, r.CellMetrics, r.CellSeries}, "", "  ")
}

// matrix runs the cell scheduler over the grid and folds its counters
// (and, when enabled, each cell's metric snapshot) into the report.
func (r *Report) matrix(cfgs []Config, specs []workloads.Spec, p Params) *ResultSet {
	rs := runMatrix(cfgs, specs, p)
	r.Sched.add(rs.Stats)
	if cellMetricsOn {
		for _, c := range rs.Cells {
			res, _ := rs.Get(c.Label, c.Workload)
			r.CellMetrics = append(r.CellMetrics, CellMetrics{
				Label: c.Label, Workload: c.Workload, Metrics: res.Metrics,
			})
		}
	}
	if cellSeriesOn {
		for _, c := range rs.Cells {
			if res, _ := rs.Get(c.Label, c.Workload); res.Series != nil {
				r.CellSeries = append(r.CellSeries, CellSeries{
					Label: c.Label, Workload: c.Workload, Series: res.Series,
				})
			}
		}
	}
	return rs
}

// ExpParams extends the simulation window with an optional workload
// filter (nil = the experiment's default set).
type ExpParams struct {
	Params
	Workloads []string
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(p ExpParams) *Report
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment { return experiments }

// GetExperiment finds an experiment by ID.
func GetExperiment(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("sim: unknown experiment %q (have %s)", id, expIDs())
}

func expIDs() string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.ID
	}
	return strings.Join(ids, ", ")
}

// evalSet resolves the workload list for an experiment.
func evalSet(p ExpParams) []workloads.Spec {
	if len(p.Workloads) == 0 {
		return workloads.Evaluation()
	}
	var out []workloads.Spec
	for _, n := range p.Workloads {
		spec, err := workloads.Get(n)
		if err != nil {
			panic(err)
		}
		out = append(out, spec)
	}
	return out
}

// sweepSet is the representative subset used by the sensitivity sweeps
// (Figs 15-18), covering each behaviour class: simple stride-indirect,
// nested graph traversal, hash probing, histogramming, and random access.
var sweepSet = []string{"BFS_KR", "PR_UR", "CC_TW", "SSSP_LJN", "HJ2", "NAS-IS", "Randacc"}

func sweepWorkloads(p ExpParams) []workloads.Spec {
	if len(p.Workloads) > 0 {
		return evalSet(p)
	}
	var out []workloads.Spec
	for _, n := range sweepSet {
		s, err := workloads.Get(n)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// normIPCs returns per-workload IPC of cfg normalized to the baseline.
func normIPCs(base, other map[string]Result) []float64 {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]float64, 0, len(names))
	for _, n := range names {
		b, o := base[n], other[n]
		if b.IPC > 0 {
			out = append(out, o.IPC/b.IPC)
		}
	}
	return out
}

// hmeanSpeedup aggregates normalized IPC with the harmonic mean, as the
// paper does.
func hmeanSpeedup(base, other map[string]Result) float64 {
	return stats.HarmonicMean(normIPCs(base, other))
}

// meanNormEnergy returns mean energy-per-instruction normalized to base.
func meanNormEnergy(base, other map[string]Result) float64 {
	var xs []float64
	for n, b := range base {
		if o, ok := other[n]; ok && b.Energy.NJPerInstr > 0 {
			xs = append(xs, o.Energy.NJPerInstr/b.Energy.NJPerInstr)
		}
	}
	return stats.ArithMean(xs)
}

// workloadGroup buckets a workload name for the grouped figures
// (Fig 3, 13, 15): GAP kernels by kernel, everything else "HPC-DB".
func workloadGroup(name string) string {
	for _, k := range []string{"BC", "BFS", "CC", "PR", "SSSP"} {
		if strings.HasPrefix(name, k+"_") {
			return k
		}
	}
	return "HPC-DB"
}

var groupOrder = []string{"BC", "BFS", "CC", "PR", "SSSP", "HPC-DB"}

// groupMeans averages per-workload values into the named groups.
func groupMeans(vals map[string]float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for name, v := range vals {
		g := workloadGroup(name)
		sums[g] += v
		counts[g]++
	}
	out := map[string]float64{}
	for g, s := range sums {
		out[g] = s / counts[g]
	}
	return out
}

// standardConfigs returns the Fig 1/11/12 machine list: in-order, IMP,
// OoO, and SVR at widths 8..128.
func standardConfigs() []Config {
	cfgs := []Config{MachineConfig(InO), MachineConfig(IMP), MachineConfig(OoO)}
	for _, n := range []int{8, 16, 32, 64, 128} {
		cfgs = append(cfgs, SVRConfig(n))
	}
	return cfgs
}

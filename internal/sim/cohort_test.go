package sim

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// cohortTestConfigs returns distinct sibling configs spanning every
// stream class — stream-pure (InO, OoO), memory-view (IMP), and
// arch-view (SVR) — so a cohort has real claims to produce and every
// per-member view kind is exercised in one lockstep walk. The first two
// stay stream-pure for the chunk fuzzer. Identical configs would
// collapse to one content key.
func cohortTestConfigs() []Config {
	a := MachineConfig(InO)
	b := MachineConfig(OoO)
	c := MachineConfig(InO)
	c.Label = "InO-slowL2"
	c.Hier.L2Latency += 4
	d := MachineConfig(OoO)
	d.Label = "OoO-slowL2"
	d.Hier.L2Latency += 4
	e := MachineConfig(IMP)
	f := SVRConfig(16)
	g := SVRConfig(64)
	return []Config{a, b, c, d, e, f, g}
}

// soloReplay runs one cell through the solo replay path (exactly what
// simulateCell does when replay-eligible), bypassing the result cache.
func soloReplay(t *testing.T, spec workloads.Spec, cfg Config, p Params) Result {
	t.Helper()
	recd, _ := cachedRecording(spec, cfg, p, nil, nil)
	var master *workloads.Instance
	if p.FastForward == 0 {
		master = cachedBuild(spec, p.Scale, nil)
	}
	m, _, err := newReplayMachine(cfg, spec, p, recd, master, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.FastForward > 0 {
		return SimulateFrom(m, p)
	}
	return Simulate(m, p)
}

// runCohortCells executes the full config set as one cohort (result
// memoization off, so every member is a claim and the lockstep walk
// really runs) and returns the per-config results.
func runCohortCells(t *testing.T, spec workloads.Spec, cfgs []Config, p Params) []Result {
	t.Helper()
	prevCache := SetRunCacheEnabled(false)
	defer SetRunCacheEnabled(prevCache)
	reqs := make([]CellRequest, len(cfgs))
	for i, cfg := range cfgs {
		if !cohortEligible(cfg, p) {
			t.Fatalf("config %s is not cohort-eligible", cfg.Label)
		}
		reqs[i] = CellRequest{Cfg: cfg, Spec: spec, P: p}
	}
	results, outs := ExecuteCohort(reqs, nil)
	for i, out := range outs {
		if !out.Replayed {
			t.Errorf("cohort member %s not marked Replayed", cfgs[i].Label)
		}
		if out.Cached || out.Shared {
			t.Errorf("cohort member %s marked Cached/Shared on a cold run", cfgs[i].Label)
		}
	}
	return results
}

// TestCohortMatchesSolo is the fidelity contract of decode-once timing
// cohorts: for every registered core kind — stream-pure, memory-view,
// and SVR's arch-view — plain and checkpointed, a cell stepped in
// lockstep over shared decoded batches must produce a bit-identical
// Result to the same cell replayed solo — and to the cell running its
// emulator live.
func TestCohortMatchesSolo(t *testing.T) {
	spec, err := workloads.Get("PR_KR")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := cohortTestConfigs()

	t.Run("plain", func(t *testing.T) {
		// Route this variant through the artifact store's decoded class so
		// both chunk paths (store-shared and cohort-local) stay covered.
		prevStore := SetDecodedStoreEnabled(true)
		defer SetDecodedStoreEnabled(prevStore)
		p := replayTestParams()
		results := runCohortCells(t, spec, cfgs, p)
		for i, cfg := range cfgs {
			solo := soloReplay(t, spec, cfg, p)
			solo.Label = cfg.Label
			if !reflect.DeepEqual(results[i], solo) {
				t.Errorf("%s: cohort Result differs from solo replay:\ncohort %+v\nsolo   %+v",
					cfg.Label, results[i], solo)
			}
			live := Run(spec, cfg, p)
			live.Label = cfg.Label
			if !reflect.DeepEqual(results[i], live) {
				t.Errorf("%s: cohort Result differs from live:\ncohort %+v\nlive   %+v",
					cfg.Label, results[i], live)
			}
		}
	})

	t.Run("checkpointed", func(t *testing.T) {
		p := Params{
			Scale:       workloads.TinyScale(),
			FastForward: 20_000,
			Warm:        true,
			Measure:     60_000,
		}
		results := runCohortCells(t, spec, cfgs, p)
		for i, cfg := range cfgs {
			solo := soloReplay(t, spec, cfg, p)
			solo.Label = cfg.Label
			if !reflect.DeepEqual(results[i], solo) {
				t.Errorf("%s: cohort Result differs from solo replay:\ncohort %+v\nsolo   %+v",
					cfg.Label, results[i], solo)
			}
			ck, _ := cachedCheckpoint(spec, cfg, p, nil, nil)
			liveM, err := NewMachineFrom(cfg, ck)
			if err != nil {
				t.Fatal(err)
			}
			live := SimulateFrom(liveM, p)
			live.Label = cfg.Label
			if !reflect.DeepEqual(results[i], live) {
				t.Errorf("%s: cohort Result differs from live checkpointed:\ncohort %+v\nlive   %+v",
					cfg.Label, results[i], live)
			}
		}
	})
}

// TestWideCohortMatchesSolo pins the widened cohorts this layer exists
// for: a single cohort of four SVR geometry variants (each with its own
// replay-backed ArchState view over the one shared decode) must plan as
// one width-4 group and produce bit-identical Results to solo replay.
// Run under -race it also proves the per-member views never share
// mutable state.
func TestWideCohortMatchesSolo(t *testing.T) {
	spec, err := workloads.Get("PR_KR")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{SVRConfig(8), SVRConfig(16), SVRConfig(32), SVRConfig(64)}
	p := replayTestParams()

	reqs := make([]CellRequest, len(cfgs))
	for i, cfg := range cfgs {
		reqs[i] = CellRequest{Cfg: cfg, Spec: spec, P: p}
	}
	groups := PlanCohorts(reqs, nil)
	if len(groups) != 1 || len(groups[0]) != len(cfgs) {
		t.Fatalf("PlanCohorts = %v, want one width-%d group", groups, len(cfgs))
	}

	results := runCohortCells(t, spec, cfgs, p)
	for i, cfg := range cfgs {
		solo := soloReplay(t, spec, cfg, p)
		solo.Label = cfg.Label
		if !reflect.DeepEqual(results[i], solo) {
			t.Errorf("%s: wide cohort Result differs from solo replay:\ncohort %+v\nsolo   %+v",
				cfg.Label, results[i], solo)
		}
	}
}

// TestPlanCohorts pins the grouping rules: adjacent eligible siblings
// merge up to MaxCohortWidth, ineligible cells stay solo and split
// runs, and differing windows never share a cohort.
func TestPlanCohorts(t *testing.T) {
	spec, err := workloads.Get("PR_KR")
	if err != nil {
		t.Fatal(err)
	}
	p := replayTestParams()
	ino, ooo, svr := MachineConfig(InO), MachineConfig(OoO), SVRConfig(16)
	p2 := p
	p2.Measure += 1
	pSamp := p
	pSamp.SampleEvery = 100

	cells := []CellRequest{
		{Cfg: ino, Spec: spec, P: p},     // 0 ┐
		{Cfg: ooo, Spec: spec, P: p},     // 1 │ cohort (SVR joins via ArchState)
		{Cfg: svr, Spec: spec, P: p},     // 2 ┘
		{Cfg: svr, Spec: spec, P: pSamp}, // 3 solo (sampled window)
		{Cfg: ino, Spec: spec, P: p},     // 4 ┐ cohort
		{Cfg: ooo, Spec: spec, P: p},     // 5 ┘
		{Cfg: ino, Spec: spec, P: p2},    // 6 solo (different window)
	}
	got := PlanCohorts(cells, nil)
	want := [][]int{{0, 1, 2}, {3}, {4, 5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCohorts = %v, want %v", got, want)
	}

	// Width cap: a long run of eligible siblings splits at MaxCohortWidth.
	var wide []CellRequest
	for i := 0; i < MaxCohortWidth+3; i++ {
		wide = append(wide, CellRequest{Cfg: ino, Spec: spec, P: p})
	}
	groups := PlanCohorts(wide, nil)
	if len(groups) != 2 || len(groups[0]) != MaxCohortWidth || len(groups[1]) != 3 {
		t.Errorf("width cap grouping = %v groups (sizes %d)", len(groups), len(groups[0]))
	}

	// An explicit index subset groups only within the subset, in order.
	got = PlanCohorts(cells, []int{1, 4, 6})
	want = [][]int{{1, 4}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCohorts(subset) = %v, want %v", got, want)
	}

	// Cohort-off mode degrades every group to a singleton.
	prev := SetCohortMode(CohortOff)
	defer SetCohortMode(prev)
	got = PlanCohorts(cells, nil)
	if len(got) != len(cells) {
		t.Errorf("CohortOff produced %d groups, want %d singletons", len(got), len(cells))
	}
}

// FuzzCohortChunks drives the lockstep walk across arbitrary chunk
// sizes and warmup boundaries — chunks straddling the warmup → measure
// reset, tiny chunks, chunks bigger than the window — and requires
// bit-identical Results against solo replay every time.
func FuzzCohortChunks(f *testing.F) {
	spec, err := workloads.Get("Randacc")
	if err != nil {
		f.Fatal(err)
	}
	cfgs := cohortTestConfigs()[:2]
	f.Add(uint16(1000), uint16(3000), uint16(512))
	f.Add(uint16(0), uint16(5000), uint16(1))     // no warmup, single-row chunks
	f.Add(uint16(4096), uint16(4096), uint16(3))  // boundary not a chunk multiple
	f.Add(uint16(7), uint16(60000), uint16(4096)) // window inside one chunk
	f.Fuzz(func(t *testing.T, warmup, measure, chunk uint16) {
		if measure == 0 {
			measure = 1
		}
		p := Params{
			Scale:   workloads.TinyScale(),
			Warmup:  uint64(warmup),
			Measure: uint64(measure),
		}
		prevChunk := cohortChunkRows
		cohortChunkRows = int(chunk%4096) + 1
		defer func() { cohortChunkRows = prevChunk }()

		results := runCohortCells(t, spec, cfgs, p)
		for i, cfg := range cfgs {
			solo := soloReplay(t, spec, cfg, p)
			solo.Label = cfg.Label
			if !reflect.DeepEqual(results[i], solo) {
				t.Errorf("%s (warmup=%d measure=%d chunk=%d): cohort differs from solo replay",
					cfg.Label, warmup, measure, cohortChunkRows)
			}
		}
	})
}

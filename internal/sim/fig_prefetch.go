package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/svr"
	"repro/internal/workloads"
)

func init() {
	registerExperiment(Experiment{
		ID:    "fig13a",
		Title: "Prefetch accuracy: IMP vs SVR16/64 with and without loop-bound prediction",
		Run:   runFig13a,
	})
	registerExperiment(Experiment{
		ID:    "fig13b",
		Title: "Coverage: DRAM loads by origin, normalized to the in-order baseline",
		Run:   runFig13b,
	})
	registerExperiment(Experiment{
		ID:    "fig14",
		Title: "SPECrate 2017 proxies: SVR overhead on non-vectorizable code",
		Run:   runFig14,
	})
}

// svrMaxlengthConfig disables loop-bound prediction (SVR-Maxlength).
func svrMaxlengthConfig(n int) Config {
	cfg := SVRConfig(n)
	cfg.SVR.LoopBound = svr.Maxlength
	cfg.Label = fmt.Sprintf("SVR%d-Maxlength", n)
	return cfg
}

func prefetchOrigin(label string) cache.Origin {
	if label == "IMP" {
		return cache.OriginIMP
	}
	return cache.OriginSVR
}

func runFig13a(p ExpParams) *Report {
	r := newReport("fig13a", "prefetch accuracy")
	specs := evalSet(p)
	cfgs := []Config{
		MachineConfig(IMP),
		svrMaxlengthConfig(16), SVRConfig(16),
		svrMaxlengthConfig(64), SVRConfig(64),
	}
	m := r.matrix(cfgs, specs, p.Params)

	header := []string{"group"}
	for _, c := range cfgs {
		header = append(header, c.Label)
	}
	t := stats.NewTable(header...)

	perCfgGroup := map[string]map[string]float64{}
	for _, c := range cfgs {
		vals := map[string]float64{}
		for name, res := range m.Row(c.Label) {
			st := res.PFStats[prefetchOrigin(c.Label)]
			if st.Used+st.EvictedUnused > 0 {
				vals[name] = st.Accuracy()
			}
		}
		perCfgGroup[c.Label] = groupMeans(vals)
	}
	for _, g := range append(groupOrder, "Avg.") {
		cells := make([]float64, 0, len(cfgs))
		for _, c := range cfgs {
			gm := perCfgGroup[c.Label]
			v := 0.0
			if g == "Avg." {
				sum, n := 0.0, 0
				for _, x := range gm {
					sum += x
					n++
				}
				if n > 0 {
					v = sum / float64(n)
				}
				r.Values["accuracy."+c.Label] = v
			} else {
				v = gm[g]
			}
			cells = append(cells, v)
		}
		t.AddRowF(g, cells...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"paper: SVR very accurate (>=88% even unthrottled); IMP consistently inaccurate except PR/CC")
	return r
}

func runFig13b(p ExpParams) *Report {
	r := newReport("fig13b", "coverage (DRAM load origins vs baseline)")
	specs := evalSet(p)
	cfgs := []Config{MachineConfig(InO), MachineConfig(IMP), SVRConfig(16), SVRConfig(64)}
	m := r.matrix(cfgs, specs, p.Params)
	base := m.Row("in-order")

	t := stats.NewTable("config", "core(data)", "core(inst)", "stride-pf", "technique", "total (x baseline)")
	for _, c := range cfgs {
		var demand, ifetch, stride, tech, baseTotal float64
		for name, res := range m.Row(c.Label) {
			b := base[name]
			bt := float64(b.DRAMLoads[cache.OriginDemand] + b.DRAMLoads[cache.OriginStride] + b.IFetchLoads)
			if bt == 0 {
				continue
			}
			baseTotal += 1
			demand += float64(res.DRAMLoads[cache.OriginDemand]) / bt
			ifetch += float64(res.IFetchLoads) / bt
			stride += float64(res.DRAMLoads[cache.OriginStride]) / bt
			tech += float64(res.DRAMLoads[cache.OriginIMP]+res.DRAMLoads[cache.OriginSVR]) / bt
		}
		if baseTotal == 0 {
			continue
		}
		demand /= baseTotal
		ifetch /= baseTotal
		stride /= baseTotal
		tech /= baseTotal
		t.AddRowF(c.Label, demand, ifetch, stride, tech, demand+ifetch+stride+tech)
		r.Values["coverage."+c.Label+".technique"] = tech
		r.Values["coverage."+c.Label+".demand"] = demand
		r.Values["coverage."+c.Label+".total"] = demand + ifetch + stride + tech
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"technique>0 with demand<1 means the prefetcher moved misses off the critical path;",
		"total>1 is over-coverage from inaccurate prefetches (IMP up to +20% in the paper)")
	return r
}

func runFig14(p ExpParams) *Report {
	r := newReport("fig14", "SPEC overhead")
	var specs []workloads.Spec
	if len(p.Workloads) > 0 {
		specs = evalSet(p)
	} else {
		specs = workloads.Group("spec")
	}
	m := r.matrix([]Config{MachineConfig(InO), SVRConfig(16)}, specs, p.Params)
	base, s := m.Row("in-order"), m.Row("SVR16")

	t := stats.NewTable("benchmark", "norm IPC (SVR16 / in-order)")
	var ratios []float64
	for _, spec := range specs {
		ratio := 0.0
		if b := base[spec.Name]; b.IPC > 0 {
			ratio = s[spec.Name].IPC / b.IPC
		}
		ratios = append(ratios, ratio)
		t.AddRowF(spec.Name, ratio)
		r.Values["normipc."+spec.Name] = ratio
	}
	h := stats.HarmonicMean(ratios)
	t.AddRowF("H-mean", h)
	r.Values["hmean"] = h
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper: ~1% average degradation; worst case (wrf) ~3%")
	return r
}

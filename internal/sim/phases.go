package sim

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
)

// Phase-time attribution: every cell execution decomposes its wall time
// into a small fixed taxonomy of phases, so the scheduler, the bench
// harness and the HTTP status surface can answer "where does grid time
// go" automatically instead of by hand-profiling. Attribution is
// measured at phase-segment granularity (a handful of time.Now calls
// per cell, never per instruction) and the remainder of a cell's wall
// time that no finer phase claimed is banked as build time, so the
// per-cell sum tracks the measured wall closely.
//
// The same file carries the observability hooks the grid journal taps:
// one completed phase segment and one artifact-store resolution each
// become a hook event, published behind a single atomic nil check so a
// run without a journal pays nothing (no allocation, no lock).

// Phase names one slice of a cell's wall-time decomposition.
type Phase uint8

// The phases of a cell's life, in display order.
const (
	// PhaseBuild: constructing workload images, machines, and any wall
	// time no finer phase claimed (the attribution remainder).
	PhaseBuild Phase = iota
	// PhaseFastForward: producing a shared post-fast-forward checkpoint
	// (the functional warmup run, captured once per workload window).
	PhaseFastForward
	// PhaseRecord: producing a shared instruction-stream recording.
	PhaseRecord
	// PhaseDecode: decoding recorded streams into SoA batches on the
	// cohort path (solo replay decodes inside the timing loop and
	// reports it as PhaseTiming).
	PhaseDecode
	// PhaseTiming: stepping timing models over the measurement window.
	PhaseTiming
	// PhaseStoreWait: blocked joining another caller's in-flight
	// production of an artifact this cell needed.
	PhaseStoreWait
	// NumPhases bounds the enum; PhaseTimes is indexed by Phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"build", "fast-forward", "record", "decode", "timing", "store-wait",
}

// String returns the wire spelling of the phase (journal, JSON, tables).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// ParsePhase maps a wire spelling back to its Phase.
func ParsePhase(s string) (Phase, error) {
	for p, n := range phaseNames {
		if n == s {
			return Phase(p), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown phase %q", s)
}

// AllPhases lists every phase in display order.
func AllPhases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PhaseTimes is a per-phase wall-time decomposition, indexed by Phase.
// The zero value is empty and ready to use.
type PhaseTimes [NumPhases]time.Duration

// Add banks d into phase p.
func (t *PhaseTimes) Add(p Phase, d time.Duration) {
	if p < NumPhases {
		t[p] += d
	}
}

// AddAll folds o into t.
func (t *PhaseTimes) AddAll(o PhaseTimes) {
	for p := range t {
		t[p] += o[p]
	}
}

// Total returns the sum over all phases.
func (t PhaseTimes) Total() time.Duration {
	var sum time.Duration
	for _, d := range t {
		sum += d
	}
	return sum
}

// Split returns t divided evenly by k — a cohort's shared production
// cost apportioned to each member.
func (t PhaseTimes) Split(k int) PhaseTimes {
	if k <= 1 {
		return t
	}
	var out PhaseTimes
	for p, d := range t {
		out[p] = d / time.Duration(k)
	}
	return out
}

// Seconds renders the decomposition as a name → seconds map (the bench
// report form).
func (t PhaseTimes) Seconds() map[string]float64 {
	out := make(map[string]float64, NumPhases)
	for p, d := range t {
		out[phaseNames[p]] = d.Seconds()
	}
	return out
}

// MarshalJSON renders the decomposition as {"build": ns, ...} with every
// phase present (stable schema) and durations in nanoseconds.
func (t PhaseTimes) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16*NumPhases)
	b = append(b, '{')
	for p, d := range t {
		if p > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, phaseNames[p])
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(d), 10)
	}
	return append(b, '}'), nil
}

// UnmarshalJSON parses the MarshalJSON form; unknown phases are ignored
// and missing phases read as zero.
func (t *PhaseTimes) UnmarshalJSON(data []byte) error {
	m := map[string]int64{}
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for p, n := range phaseNames {
		t[p] = time.Duration(m[n])
	}
	return nil
}

// CellPhaseEvent reports one completed phase segment of one cell to the
// observability hook: the cell spent Dur in Phase, ending now.
type CellPhaseEvent struct {
	Label    string // configuration label of the cell doing the work
	Workload string
	Phase    Phase
	Dur      time.Duration
}

// ArtifactEvent reports one artifact-store resolution made on behalf of
// a cell: a resident hit, a join of another caller's in-flight
// production (Waited), or a production by this cell (neither). Dur is
// the caller's wall time on the resolution.
type ArtifactEvent struct {
	Label    string // configuration label of the consuming cell ("" for shared passes)
	Workload string
	Key      artifact.Key
	Hit      bool
	Waited   bool
	Dur      time.Duration
}

// The hooks are atomic.Pointer-published function values: emission sites
// pay one atomic load and branch when no observer is installed, which
// keeps the journal-off path allocation-free (guarded by a test).
var (
	cellPhaseHook atomic.Pointer[func(CellPhaseEvent)]
	artifactHook  atomic.Pointer[func(ArtifactEvent)]
)

// SetCellPhaseHook installs fn to observe completed phase segments (nil
// disables). The grid journal is the intended consumer; fn must be safe
// for concurrent calls.
func SetCellPhaseHook(fn func(CellPhaseEvent)) {
	if fn == nil {
		cellPhaseHook.Store(nil)
		return
	}
	cellPhaseHook.Store(&fn)
}

// SetArtifactHook installs fn to observe artifact-store resolutions made
// by cell execution (nil disables). fn must be safe for concurrent calls.
func SetArtifactHook(fn func(ArtifactEvent)) {
	if fn == nil {
		artifactHook.Store(nil)
		return
	}
	artifactHook.Store(&fn)
}

// emitPhase publishes one completed phase segment to the hook.
func emitPhase(label, workload string, p Phase, d time.Duration) {
	if fn := cellPhaseHook.Load(); fn != nil {
		(*fn)(CellPhaseEvent{Label: label, Workload: workload, Phase: p, Dur: d})
	}
}

// emitArtifact publishes one artifact resolution to the hook.
func emitArtifact(label, workload string, k artifact.Key, oc artifact.Outcome, d time.Duration) {
	if fn := artifactHook.Load(); fn != nil {
		(*fn)(ArtifactEvent{Label: label, Workload: workload, Key: k,
			Hit: oc.Hit, Waited: oc.Waited, Dur: d})
	}
}

// phaseCtx threads phase attribution through the cell core: the cell's
// identity (for hook events) plus the accumulator the durations land in
// (usually the CellOutcome's Phases). All methods are nil-safe, so
// callers that don't attribute (tests, one-off helpers) pass nil.
type phaseCtx struct {
	label    string
	workload string
	ph       *PhaseTimes
}

// add banks one completed phase segment and publishes it to the hook.
func (pc *phaseCtx) add(p Phase, d time.Duration) {
	if pc == nil || d <= 0 {
		return
	}
	pc.ph.Add(p, d)
	emitPhase(pc.label, pc.workload, p, d)
}

// total returns the time attributed so far.
func (pc *phaseCtx) total() time.Duration {
	if pc == nil {
		return 0
	}
	return pc.ph.Total()
}

// artifact publishes one store resolution under this cell's identity.
func (pc *phaseCtx) artifact(k artifact.Key, oc artifact.Outcome, d time.Duration) {
	if pc == nil {
		emitArtifact("", "", k, oc, d)
		return
	}
	emitArtifact(pc.label, pc.workload, k, oc, d)
}

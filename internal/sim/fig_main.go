package sim

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/svr"
)

func init() {
	registerExperiment(Experiment{
		ID:    "fig1",
		Title: "Average speedup (hmean IPC) and normalized energy vs in-order baseline",
		Run:   runFig1,
	})
	registerExperiment(Experiment{
		ID:    "fig3",
		Title: "CPI stacks: in-order vs out-of-order (mem-dram share)",
		Run:   runFig3,
	})
	registerExperiment(Experiment{
		ID:    "fig11",
		Title: "Cycles-per-instruction per workload (lower is better)",
		Run:   runFig11,
	})
	registerExperiment(Experiment{
		ID:    "fig12",
		Title: "Whole-system energy per committed instruction (nJ, lower is better)",
		Run:   runFig12,
	})
	registerExperiment(Experiment{
		ID:    "table1",
		Title: "Differences between VR, DVR and SVR",
		Run:   runTable1,
	})
	registerExperiment(Experiment{
		ID:    "table2",
		Title: "SVR hardware overhead",
		Run:   runTable2,
	})
	registerExperiment(Experiment{
		ID:    "table3",
		Title: "Machine configurations",
		Run:   runTable3,
	})
}

func runFig1(p ExpParams) *Report {
	r := newReport("fig1", "normalized performance and energy")
	specs := evalSet(p)
	m := r.matrix(standardConfigs(), specs, p.Params)
	base := m.Row("in-order")

	t := stats.NewTable("config", "norm-IPC (hmean)", "norm-energy (mean)")
	perf := stats.NewBarChart("normalized performance (hmean IPC)", "x")
	enC := stats.NewBarChart("normalized energy (lower is better)", "x")
	for _, cfg := range standardConfigs() {
		sp := hmeanSpeedup(base, m.Row(cfg.Label))
		en := meanNormEnergy(base, m.Row(cfg.Label))
		t.AddRowF(cfg.Label, sp, en)
		perf.Add(cfg.Label, sp)
		enC.Add(cfg.Label, en)
		r.Values["speedup."+cfg.Label] = sp
		r.Values["energy."+cfg.Label] = en
	}
	r.Tables = append(r.Tables, t)
	r.Charts = append(r.Charts, perf, enC)
	r.Notes = append(r.Notes,
		"paper: SVR16 3.2x / OoO ~2.4x / IMP ~2.3x over in-order; SVR most energy-efficient")
	return r
}

func runFig3(p ExpParams) *Report {
	r := newReport("fig3", "CPI stacks in-order vs OoO")
	specs := evalSet(p)
	m := r.matrix([]Config{MachineConfig(InO), MachineConfig(OoO)}, specs, p.Params)

	for _, label := range []string{"in-order", "out-of-order"} {
		dram := map[string]float64{}
		other := map[string]float64{}
		for name, res := range m.Row(label) {
			dram[name] = res.Stack.Component(stats.StallMemDRAM)
			other[name] = res.CPI - dram[name]
		}
		gd, go_ := groupMeans(dram), groupMeans(other)
		t := stats.NewTable("group ("+label+")", "mem-dram CPI", "other CPI", "total CPI")
		var avgD, avgO float64
		for _, g := range groupOrder {
			if _, ok := gd[g]; !ok {
				continue
			}
			t.AddRowF(g, gd[g], go_[g], gd[g]+go_[g])
			avgD += gd[g]
			avgO += go_[g]
		}
		n := float64(len(gd))
		t.AddRowF("Avg.", avgD/n, avgO/n, (avgD+avgO)/n)
		r.Values["dram."+label] = avgD / n
		r.Values["total."+label] = (avgD + avgO) / n
		r.Tables = append(r.Tables, t)
	}
	r.Notes = append(r.Notes,
		"paper: in-order stalls ~8.9 CPI on DRAM vs ~3.6 for OoO (~2.5x)")
	return r
}

func runFig11(p ExpParams) *Report {
	r := newReport("fig11", "CPI per workload")
	specs := evalSet(p)
	cfgs := standardConfigs()
	m := r.matrix(cfgs, specs, p.Params)

	header := []string{"workload"}
	for _, c := range cfgs {
		header = append(header, c.Label)
	}
	t := stats.NewTable(header...)
	for _, spec := range specs {
		cells := make([]float64, 0, len(cfgs))
		for _, c := range cfgs {
			cpi := m.Row(c.Label)[spec.Name].CPI
			cells = append(cells, cpi)
			r.Values[fmt.Sprintf("cpi.%s.%s", c.Label, spec.Name)] = cpi
		}
		t.AddRowF(spec.Name, cells...)
	}
	// Average row.
	avg := make([]float64, len(cfgs))
	for i, c := range cfgs {
		sum := 0.0
		for _, spec := range specs {
			sum += m.Row(c.Label)[spec.Name].CPI
		}
		avg[i] = sum / float64(len(specs))
		r.Values["cpi."+c.Label+".avg"] = avg[i]
	}
	t.AddRowF("Avg.", avg...)
	r.Tables = append(r.Tables, t)
	return r
}

func runFig12(p ExpParams) *Report {
	r := newReport("fig12", "energy per instruction")
	specs := evalSet(p)
	cfgs := standardConfigs()
	m := r.matrix(cfgs, specs, p.Params)

	header := []string{"workload"}
	for _, c := range cfgs {
		header = append(header, c.Label)
	}
	t := stats.NewTable(header...)
	for _, spec := range specs {
		cells := make([]float64, 0, len(cfgs))
		for _, c := range cfgs {
			nj := m.Row(c.Label)[spec.Name].Energy.NJPerInstr
			cells = append(cells, nj)
			r.Values[fmt.Sprintf("energy.%s.%s", c.Label, spec.Name)] = nj
		}
		t.AddRowF(spec.Name, cells...)
	}
	avg := make([]float64, len(cfgs))
	for i, c := range cfgs {
		sum := 0.0
		for _, spec := range specs {
			sum += m.Row(c.Label)[spec.Name].Energy.NJPerInstr
		}
		avg[i] = sum / float64(len(specs))
		r.Values["energy."+c.Label+".avg"] = avg[i]
	}
	t.AddRowF("Avg.", avg...)
	r.Tables = append(r.Tables, t)
	return r
}

func runTable1(p ExpParams) *Report {
	r := newReport("table1", "guiding principles of VR, DVR and SVR")
	t := stats.NewTable("property", "VR", "DVR", "SVR (this repo)")
	rows := [][4]string{
		{"Based on existing vector ISAs", "Y", "Y", "N"},
		{"Relies on existing vector registers", "Y", "Y", "N"},
		{"Optimizes vector-register usage", "N", "N", "Y (LRU-recycled SRF)"},
		{"Stalls the main thread", "Y", "N", "N"},
		{"Runahead synchronous with main thread", "N", "N", "Y (piggyback)"},
		{"Mitigates incorrect prefetches", "N", "Y", "Y (monitor + loop bounds)"},
		{"Needs a discovery pass", "N", "Y", "N (EWMA/LBD/CV tournament)"},
	}
	for _, row := range rows {
		t.AddRow(row[0], row[1], row[2], row[3])
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"qualitative (paper Table I); the SVR column names the implementing mechanism here")
	return r
}

func runTable2(p ExpParams) *Report {
	r := newReport("table2", "hardware overhead")
	t := stats.NewTable("config", "bits", "KiB")
	for _, n := range []int{8, 16, 32, 64, 128} {
		opt := svr.DefaultOptions()
		opt.VectorLen = n
		bits := svr.OverheadBits(opt)
		kib := svr.OverheadKiB(opt)
		t.AddRow(fmt.Sprintf("SVR-%d", n), fmt.Sprintf("%d", bits), fmt.Sprintf("%.2f", kib))
		r.Values[fmt.Sprintf("kib.%d", n)] = kib
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper: 2.17 KiB at N=16, ~9 KiB at N=128", "",
		svr.OverheadTable(svr.DefaultOptions()))
	return r
}

func runTable3(p ExpParams) *Report {
	r := newReport("table3", "machine configurations")
	cfg := MachineConfig(InO)
	t := stats.NewTable("parameter", "in-order / SVR", "out-of-order")
	ooo := MachineConfig(OoO)
	t.AddRow("width", fmt.Sprintf("%d", cfg.InO.Width), fmt.Sprintf("%d", ooo.OoO.Width))
	t.AddRow("scoreboard / ROB", fmt.Sprintf("%d", cfg.InO.Scoreboard), fmt.Sprintf("%d", ooo.OoO.ROB))
	t.AddRow("LSQ", "-", fmt.Sprintf("%d", ooo.OoO.LSQ))
	t.AddRow("mispredict penalty", fmt.Sprintf("%d", cfg.InO.MispredictPenalty), fmt.Sprintf("%d", ooo.OoO.MispredictPenalty))
	t.AddRow("L1-D", fmt.Sprintf("%d KiB, %d-way, %d MSHRs", cfg.Hier.L1Size>>10, cfg.Hier.L1Ways, cfg.Hier.L1MSHRs), "same")
	t.AddRow("L2", fmt.Sprintf("%d KiB, %d-way", cfg.Hier.L2Size>>10, cfg.Hier.L2Ways), "same")
	t.AddRow("D-TLB / S-TLB", fmt.Sprintf("%d / %d entries", cfg.Hier.DTLBEntries, cfg.Hier.STLBEntries), "same")
	t.AddRow("page-table walkers", fmt.Sprintf("%d", cfg.Hier.NumPTWs), "same")
	t.AddRow("DRAM", fmt.Sprintf("%.0f GiB/s, %.0f ns", cfg.Hier.DRAM.BandwidthGBps, cfg.Hier.DRAM.LatencyNS), "same")
	r.Tables = append(r.Tables, t)
	return r
}

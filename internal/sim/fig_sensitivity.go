package sim

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/svr"
)

func init() {
	registerExperiment(Experiment{
		ID:    "fig15",
		Title: "Loop-bound prediction mechanisms (normalized IPC vs in-order)",
		Run:   runFig15,
	})
	registerExperiment(Experiment{
		ID:    "fig16",
		Title: "Scalars per vector unit (transient issue width)",
		Run:   runFig16,
	})
	registerExperiment(Experiment{
		ID:    "fig17",
		Title: "MSHR and page-table-walker sensitivity",
		Run:   runFig17,
	})
	registerExperiment(Experiment{
		ID:    "fig18",
		Title: "Memory-bandwidth sensitivity",
		Run:   runFig18,
	})
	registerExperiment(Experiment{
		ID:    "ablations",
		Title: "§VI-D ablations: register copy, SRF recycling, waiting mode, SRF size",
		Run:   runAblations,
	})
}

// The sweeps below assemble every point of a figure into one flat config
// list and submit a single matrix, so the scheduler runs the whole sweep
// cell-parallel instead of one configuration at a time. Points that
// coincide with the default machines (e.g. the 16-MSHR column, the
// 50 GiB/s row) hash to the same cells as Fig 1's grid and come straight
// from the run cache.

var fig15Modes = []svr.LoopBoundMode{
	svr.LBDWait, svr.Maxlength, svr.LBDMaxlength, svr.LBDCV, svr.EWMAOnly, svr.Tournament,
}

func runFig15(p ExpParams) *Report {
	r := newReport("fig15", "loop-bound prediction mechanisms")
	specs := sweepWorkloads(p)

	cfgs := []Config{MachineConfig(InO)}
	for _, n := range []int{16, 64} {
		for _, mode := range fig15Modes {
			cfg := SVRConfig(n)
			cfg.SVR.LoopBound = mode
			cfg.Label = fmt.Sprintf("SVR%d-%s", n, mode)
			cfgs = append(cfgs, cfg)
		}
	}
	m := r.matrix(cfgs, specs, p.Params)
	base := m.Row("in-order")

	for _, n := range []int{16, 64} {
		t := stats.NewTable(fmt.Sprintf("mechanism (SVR-%d)", n), "norm IPC (hmean)")
		for _, mode := range fig15Modes {
			label := fmt.Sprintf("SVR%d-%s", n, mode)
			sp := hmeanSpeedup(base, m.Row(label))
			t.AddRowF(mode.String(), sp)
			r.Values[fmt.Sprintf("svr%d.%s", n, mode)] = sp
		}
		r.Tables = append(r.Tables, t)
	}
	r.Notes = append(r.Notes,
		"paper: LBD+Wait worst (waits behind long-latency loads); Tournament best of both")
	return r
}

func runFig16(p ExpParams) *Report {
	r := newReport("fig16", "scalars per vector unit")
	specs := sweepWorkloads(p)
	cfgs := []Config{MachineConfig(InO)}
	for _, n := range []int{16, 64} {
		for _, sps := range []int{1, 2, 4, 8} {
			cfg := SVRConfig(n)
			cfg.SVR.ScalarsPerSlot = sps
			cfg.Label = fmt.Sprintf("SVR%d-x%d", n, sps)
			cfgs = append(cfgs, cfg)
		}
	}
	m := r.matrix(cfgs, specs, p.Params)
	base := m.Row("in-order")
	t := stats.NewTable("scalars/unit", "SVR16 norm IPC", "SVR64 norm IPC")
	for _, sps := range []int{1, 2, 4, 8} {
		s16 := hmeanSpeedup(base, m.Row(fmt.Sprintf("SVR16-x%d", sps)))
		s64 := hmeanSpeedup(base, m.Row(fmt.Sprintf("SVR64-x%d", sps)))
		t.AddRowF(fmt.Sprintf("%d", sps), s16, s64)
		r.Values[fmt.Sprintf("svr16.x%d", sps)] = s16
		r.Values[fmt.Sprintf("svr64.x%d", sps)] = s64
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper: performance is flat — PRM is memory-bound, not issue-bound")
	return r
}

func runFig17(p ExpParams) *Report {
	r := newReport("fig17", "MSHR / PTW sensitivity")
	specs := sweepWorkloads(p)
	mshrs := []int{1, 2, 4, 8, 16, 24, 32}
	ptws := []int{2, 4, 6}

	var cfgs []Config
	for _, msh := range mshrs {
		baseCfg := MachineConfig(InO)
		baseCfg.Hier.L1MSHRs = msh
		baseCfg.Label = fmt.Sprintf("in-order-m%d", msh)
		cfgs = append(cfgs, baseCfg)
		for _, n := range []int{16, 64} {
			for _, ptw := range ptws {
				cfg := SVRConfig(n)
				cfg.Hier.L1MSHRs = msh
				cfg.Hier.NumPTWs = ptw
				cfg.Label = fmt.Sprintf("SVR%d-m%d-p%d", n, msh, ptw)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	m := r.matrix(cfgs, specs, p.Params)

	t := stats.NewTable("MSHRs", "SVR16/ptw2", "SVR16/ptw4", "SVR16/ptw6",
		"SVR64/ptw2", "SVR64/ptw4", "SVR64/ptw6")
	for _, msh := range mshrs {
		base := m.Row(fmt.Sprintf("in-order-m%d", msh))
		cells := make([]float64, 0, 6)
		for _, n := range []int{16, 64} {
			for _, ptw := range ptws {
				sp := hmeanSpeedup(base, m.Row(fmt.Sprintf("SVR%d-m%d-p%d", n, msh, ptw)))
				cells = append(cells, sp)
				r.Values[fmt.Sprintf("svr%d.mshr%d.ptw%d", n, msh, ptw)] = sp
			}
		}
		t.AddRowF(fmt.Sprintf("%d", msh), cells...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"paper: SVR16 saturates around 8 MSHRs, SVR64 around 16; PTWs matter only at high MSHRs")
	return r
}

// runFig17MSHROnly is the reduced grid used by tests: the MSHR axis at
// the default 4 page-table walkers.
func runFig17MSHROnly(p ExpParams) *Report {
	r := newReport("fig17-mshr", "MSHR sensitivity (PTW=4)")
	specs := sweepWorkloads(p)
	mshrs := []int{1, 8, 16, 32}

	var cfgs []Config
	for _, msh := range mshrs {
		baseCfg := MachineConfig(InO)
		baseCfg.Hier.L1MSHRs = msh
		baseCfg.Label = fmt.Sprintf("in-order-m%d", msh)
		cfgs = append(cfgs, baseCfg)
		for _, n := range []int{16, 64} {
			cfg := SVRConfig(n)
			cfg.Hier.L1MSHRs = msh
			cfg.Label = fmt.Sprintf("SVR%d-m%d", n, msh)
			cfgs = append(cfgs, cfg)
		}
	}
	m := r.matrix(cfgs, specs, p.Params)

	t := stats.NewTable("MSHRs", "SVR16", "SVR64")
	for _, msh := range mshrs {
		base := m.Row(fmt.Sprintf("in-order-m%d", msh))
		cells := make([]float64, 0, 2)
		for _, n := range []int{16, 64} {
			sp := hmeanSpeedup(base, m.Row(fmt.Sprintf("SVR%d-m%d", n, msh)))
			cells = append(cells, sp)
			r.Values[fmt.Sprintf("svr%d.mshr%d", n, msh)] = sp
		}
		t.AddRowF(fmt.Sprintf("%d", msh), cells...)
	}
	r.Tables = append(r.Tables, t)
	return r
}

func runFig18(p ExpParams) *Report {
	r := newReport("fig18", "memory bandwidth sensitivity")
	specs := sweepWorkloads(p)
	bws := []float64{12.5, 25, 50, 100}

	var cfgs []Config
	for _, bw := range bws {
		baseCfg := MachineConfig(InO)
		baseCfg.Hier.DRAM.BandwidthGBps = bw
		baseCfg.Label = fmt.Sprintf("in-order-bw%g", bw)
		cfgs = append(cfgs, baseCfg)
		for _, n := range []int{16, 64} {
			cfg := SVRConfig(n)
			cfg.Hier.DRAM.BandwidthGBps = bw
			cfg.Label = fmt.Sprintf("SVR%d-bw%g", n, bw)
			cfgs = append(cfgs, cfg)
		}
	}
	m := r.matrix(cfgs, specs, p.Params)

	t := stats.NewTable("GiB/s", "SVR16 norm IPC", "SVR64 norm IPC")
	for _, bw := range bws {
		base := m.Row(fmt.Sprintf("in-order-bw%g", bw))
		cells := make([]float64, 0, 2)
		for _, n := range []int{16, 64} {
			sp := hmeanSpeedup(base, m.Row(fmt.Sprintf("SVR%d-bw%g", n, bw)))
			cells = append(cells, sp)
			r.Values[fmt.Sprintf("svr%d.bw%g", n, bw)] = sp
		}
		t.AddRowF(fmt.Sprintf("%.1f", bw), cells...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"paper: SVR64 gains more from bandwidth; both saturate (SVR does not exhaust the channel)")
	return r
}

func runAblations(p ExpParams) *Report {
	r := newReport("ablations", "§VI-D design-choice ablations")
	specs := sweepWorkloads(p)

	// Register every variant first, then run them as one matrix.
	type variant struct {
		key, label string
		cfg        Config
	}
	var variants []variant
	add := func(key, label string, cfg Config) {
		variants = append(variants, variant{key, label, cfg})
	}

	add("svr16", "SVR16 (default)", SVRConfig(16))
	add("svr64", "SVR64 (default)", SVRConfig(64))

	// Lockstep coupling cost: DVR-style full register-file checkpoint.
	cp := SVRConfig(16)
	cp.SVR.RegCopyCycles = 16
	cp.Label = "SVR16+regcopy"
	add("svr16.regcopy", "SVR16 + register-copy cost", cp)

	// Register recycling with a tiny SRF: SVR's LRU vs DVR's policy.
	for _, n := range []int{16, 64} {
		lru := SVRConfig(n)
		lru.SVR.SRFRegs = 2
		lru.Label = fmt.Sprintf("SVR%d-srf2", n)
		add(fmt.Sprintf("svr%d.srf2.lru", n), fmt.Sprintf("SVR%d, 2 SRF regs, LRU recycle", n), lru)

		dvr := SVRConfig(n)
		dvr.SVR.SRFRegs = 2
		dvr.SVR.Recycle = svr.RecycleNone
		dvr.Label = fmt.Sprintf("SVR%d-srf2-dvr", n)
		add(fmt.Sprintf("svr%d.srf2.dvr", n), fmt.Sprintf("SVR%d, 2 SRF regs, DVR policy", n), dvr)
	}

	// Waiting mode off (redundant transient work).
	for _, n := range []int{16, 64} {
		nw := SVRConfig(n)
		nw.SVR.WaitingMode = false
		nw.Label = fmt.Sprintf("SVR%d-nowait", n)
		add(fmt.Sprintf("svr%d.nowait", n), fmt.Sprintf("SVR%d without waiting mode", n), nw)
	}

	// SRF size sweep (paper: two speculative registers reach peak).
	for _, k := range []int{1, 2, 4, 8} {
		cfg := SVRConfig(16)
		cfg.SVR.SRFRegs = k
		cfg.Label = fmt.Sprintf("SVR16-k%d", k)
		add(fmt.Sprintf("svr16.srf%d", k), fmt.Sprintf("SVR16, %d SRF regs", k), cfg)
	}

	cfgs := []Config{MachineConfig(InO)}
	for _, v := range variants {
		cfgs = append(cfgs, v.cfg)
	}
	m := r.matrix(cfgs, specs, p.Params)
	base := m.Row("in-order")

	t := stats.NewTable("variant", "norm IPC (hmean)")
	for _, v := range variants {
		sp := hmeanSpeedup(base, m.Row(v.cfg.Label))
		t.AddRowF(v.label, sp)
		r.Values[v.key] = sp
	}

	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"paper: regcopy 3.21->3.16x; DVR recycling w/ 2 regs 3.2->1.9x (SVR16), 4.2->2.2x (SVR64);",
		"no waiting mode 1.14x (SVR16) / 0.56x (SVR64); 2 SRF regs reach peak with LRU")
	return r
}

package sim

import "testing"

func TestMulticoreScaling(t *testing.T) {
	p := ExpParams{Params: QuickParams(), Workloads: []string{"NAS-IS", "Randacc", "PR_KR", "Kangr"}}
	r := runMulticore(p)
	// Aggregate IPC must grow substantially with core count: a single
	// SVR core leaves most of the channel idle (§VI-E).
	if r.Values["agg.4"] < 2.5*r.Values["agg.1"] {
		t.Errorf("4-core aggregate %.2f should be well above 2.5x solo %.2f",
			r.Values["agg.4"], r.Values["agg.1"])
	}
	if r.Values["agg.8"] < r.Values["agg.4"] {
		t.Errorf("8-core aggregate %.2f regressed below 4-core %.2f",
			r.Values["agg.8"], r.Values["agg.4"])
	}
	// Per-core slowdown under sharing stays mild at this bandwidth.
	if r.Values["percore.4"] < 0.75 {
		t.Errorf("per-core IPC at 4 cores dropped to %.2f of solo", r.Values["percore.4"])
	}
}

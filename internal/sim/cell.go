package sim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/workloads"
)

// This file is the cell-execution core of the scheduler: one grid cell
// (config × workload × window) resolved through the unified artifact
// store. Every caller — the in-process matrix pool, the grid service's
// workers, a test — goes through ExecuteCell, so single-shot and served
// modes cannot drift: there is exactly one code path from a cell request
// to a Result, and exactly one set of caches behind it.

// cellKey identifies one simulation by content: the machine configuration
// (minus its display label), the workload name, and the window.
type cellKey [sha256.Size]byte

// hashCell derives the cache key. Config and Params are plain-data
// structs, so their canonical JSON encoding is a stable content hash; the
// label is display-only and must not split otherwise-identical cells
// (sweeps relabel the default configuration all the time).
func hashCell(cfg Config, workload string, p Params) cellKey {
	cfg.Label = ""
	blob, err := json.Marshal(struct {
		Cfg      Config
		Workload string
		P        Params
	}{cfg, workload, p})
	if err != nil {
		panic(fmt.Sprintf("sim: cannot hash cell: %v", err))
	}
	return sha256.Sum256(blob)
}

// CellRequest names one schedulable cell.
type CellRequest struct {
	Cfg  Config
	Spec workloads.Spec
	P    Params
}

// CellOutcome describes how a cell request was satisfied.
type CellOutcome struct {
	// Cached: the result was resident in the artifact store.
	Cached bool
	// Shared: the result was joined from another caller's in-flight
	// execution of the identical cell (cross-job dedup).
	Shared bool
	// Replayed: this cell simulated by consuming a recorded instruction
	// stream instead of a live emulator.
	Replayed bool
	// CkptFromStore / StreamFromStore: the cell consumed a checkpoint /
	// recording it did not produce itself — warm state shared with an
	// earlier or concurrent job.
	CkptFromStore   bool
	StreamFromStore bool
	// Wall is the caller's wall time on the cell, however it was served.
	Wall time.Duration
	// Phases decomposes Wall by phase: build, fast-forward, record,
	// decode, timing, store-wait. Shared productions (checkpoints,
	// recordings) are attributed to the cell that produced them; cohort
	// members carry an even split of their cohort's shared cost.
	Phases PhaseTimes
}

// FromStore reports whether the cell's result came out of the unified
// store rather than a simulation run by this caller.
func (o CellOutcome) FromStore() bool { return o.Cached || o.Shared }

// ExecuteCell resolves one cell through the artifact store: a resident
// result is a hit, an identical in-flight cell is joined, and otherwise
// this caller simulates (composing the shared image / checkpoint /
// recording artifacts) and the result is memoized. tr (nil-safe) feeds
// the live status surfaces. Results are bit-identical however the cell
// is served.
func ExecuteCell(req CellRequest, tr *Tracker) (Result, CellOutcome) {
	start := time.Now()
	var out CellOutcome
	pc := &phaseCtx{label: req.Cfg.Label, workload: req.Spec.Name, ph: &out.Phases}
	k := resultKey(req.Cfg, req.Spec.Name, req.P)
	v, oc := artifacts.GetOrProduce(k, func() (any, int64) {
		res := simulateCell(req, tr, &out, pc)
		return res, resultBytes(res)
	})
	res := v.(Result)
	out.Cached = oc.Hit
	out.Shared = oc.Waited
	// The stored record may carry another sweep's display label.
	res.Label = req.Cfg.Label
	out.Wall = time.Since(start)
	if oc.Waited {
		// The whole wall was spent blocked on another caller's run.
		pc.add(PhaseStoreWait, out.Wall)
	}
	pc.artifact(k, oc, out.Wall)
	return res, out
}

// simulateCell runs the cell for real, choosing the cheapest eligible
// composition: replay a recorded stream, resume a shared checkpoint, or
// run live from a cloned image. Phase attribution: the timing window is
// measured around Simulate/SimulateFrom, shared productions attribute
// inside the cached helpers, and whatever wall time remains is banked
// as build — so the per-cell sum tracks the cell's measured wall.
func simulateCell(req CellRequest, tr *Tracker, out *CellOutcome, pc *phaseCtx) Result {
	cfg, spec, p := req.Cfg, req.Spec, req.P
	var res Result
	t0 := time.Now()
	base := pc.total()
	tr.phase(+1, 0)
	switch {
	case replayEligible(cfg, p):
		// Execute-once, time-many path: the workload window is recorded
		// once (cachedRecording, composing with the shared checkpoint
		// when fast-forwarding) and this cell replays the buffer through
		// its timing models.
		out.Replayed = true
		recd, so := cachedRecording(spec, cfg, p, tr, pc)
		out.StreamFromStore = so.FromStore()
		var master *workloads.Instance
		if p.FastForward == 0 {
			master = cachedBuild(spec, p.Scale, pc)
		}
		m, src, err := newReplayMachine(cfg, spec, p, recd, master, out, tr, pc)
		if err != nil {
			panic(err)
		}
		tr.phase(-1, +1)
		tt := time.Now()
		if p.FastForward > 0 {
			res = SimulateFrom(m, p)
		} else {
			res = Simulate(m, p)
		}
		pc.add(PhaseTiming, time.Since(tt))
		src.Recycle() // the machine is done; pool the decode scratch
	case p.FastForward > 0:
		// Shared-checkpoint path: the workload's fast-forward runs once
		// (cachedCheckpoint) and every cell resumes from a clone of its
		// frozen image.
		ck, co := cachedCheckpoint(spec, cfg, p, tr, pc)
		out.CkptFromStore = co.FromStore()
		m, err := NewMachineFrom(cfg, ck)
		if err != nil {
			panic(err)
		}
		tr.phase(-1, +1)
		tt := time.Now()
		res = SimulateFrom(m, p)
		pc.add(PhaseTiming, time.Since(tt))
	default:
		inst := cloneInstance(cachedBuild(spec, p.Scale, pc))
		m, err := NewMachine(cfg, inst)
		if err != nil {
			panic(err)
		}
		tr.phase(-1, +1)
		tt := time.Now()
		res = Simulate(m, p)
		pc.add(PhaseTiming, time.Since(tt))
	}
	tr.phase(0, -1)
	if rest := time.Since(t0) - (pc.total() - base); rest > 0 {
		pc.add(PhaseBuild, rest)
	}
	return res
}

// cachedBuild returns the memoized image for (spec, sc), building it at
// most once across concurrent callers. Copy-on-write Clone makes
// retention safe: cells clone the image and never write the master, so a
// stored entry stays pristine.
func cachedBuild(spec workloads.Spec, sc workloads.Scale, pc *phaseCtx) *workloads.Instance {
	k := imageKey(spec.Name, sc)
	t0 := time.Now()
	v, oc := artifacts.GetOrProduce(k, func() (any, int64) {
		inst := spec.Build(sc)
		return inst, instanceBytes(inst)
	})
	pc.artifact(k, oc, time.Since(t0))
	return v.(*workloads.Instance)
}

// cloneInstance copies the memory image so a run (which mutates memory
// through stores) cannot contaminate the shared master build.
func cloneInstance(master *workloads.Instance) *workloads.Instance {
	return &workloads.Instance{
		Name: master.Name, Prog: master.Prog,
		Mem: master.Mem.Clone(), Check: master.Check,
	}
}

// warmKey hashes the configuration state functional warming actually
// depends on: cache/TLB/prefetcher geometry and branch-predictor table
// size. Latencies, MSHR count, walker count and the DRAM model never
// touch warmed tags, so sweeps over them (MSHR/bandwidth sensitivity)
// share one warmed checkpoint per workload.
func warmKey(cfg Config) string {
	hier := cfg.Hier
	hier.L1Latency, hier.L2Latency, hier.STLBLatency, hier.WalkLatency = 0, 0, 0, 0
	hier.L1MSHRs, hier.NumPTWs = 0, 0
	hier.DRAM = dram.Config{}
	bits := cfg.InO.BPredTableBits
	if cfg.Core == OoO {
		bits = cfg.OoO.BPredTableBits
	}
	blob, err := json.Marshal(struct {
		Hier      cache.Config
		BPredBits uint
	}{hier, bits})
	if err != nil {
		panic(fmt.Sprintf("sim: cannot hash warm geometry: %v", err))
	}
	sum := sha256.Sum256(blob)
	return fmt.Sprintf("%x", sum[:8])
}

// cachedCheckpoint returns the shared post-fast-forward checkpoint for
// (workload, params, warm geometry), producing it at most once across
// concurrent callers: build (or fetch) the raw image, fast-forward a
// throwaway machine, capture. The outcome reports whether this caller
// got it from the store (hit or joined flight) rather than producing it.
func cachedCheckpoint(spec workloads.Spec, cfg Config, p Params, tr *Tracker, pc *phaseCtx) (*Checkpoint, artifact.Outcome) {
	warm := ""
	if p.Warm {
		warm = warmKey(cfg)
	}
	k := checkpointKey(spec.Name, p.Scale, p.FastForward, warm)
	callStart := time.Now()
	v, oc := artifacts.GetOrProduce(k, func() (any, int64) {
		tr.ckptBegin()
		t0 := time.Now()
		m, err := NewMachine(cfg, cloneInstance(cachedBuild(spec, p.Scale, pc)))
		if err != nil {
			panic(err)
		}
		m.FastForward(p.FastForward, p.Warm)
		ck := m.Checkpoint()
		d := time.Since(t0)
		tr.ckptEnd(d)
		pc.add(PhaseFastForward, d)
		return ck, ck.Bytes()
	})
	if oc.Waited {
		pc.add(PhaseStoreWait, time.Since(callStart))
	}
	pc.artifact(k, oc, time.Since(callStart))
	return v.(*Checkpoint), oc
}

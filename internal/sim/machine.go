package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/cpu/ooo"
	"repro/internal/dram"
	"repro/internal/emu"
	"repro/internal/energy"
	"repro/internal/imp"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/svr"
	"repro/internal/workloads"
)

// Machine is one runnable machine organization: a timing model bound to a
// workload instance, stepped through warmup and measurement windows. The
// standard lifecycle is construct (NewMachine) → warmup (Step) →
// ResetStats → measure (Step) → Collect; Simulate drives it. The
// multi-core driver instead interleaves Step calls on several machines
// sharing one DRAM channel.
type Machine interface {
	// Step executes up to n instructions, returning false if the program
	// ended before all n issued.
	Step(n uint64) bool
	// Instrs returns instructions committed since the last ResetStats.
	Instrs() uint64
	// Now returns the current simulated cycle (issue-cursor time), used
	// to keep co-simulated machines loosely synchronized.
	Now() int64
	// ResetStats zeroes measurement state after warmup; microarchitectural
	// state (predictors, cache contents) is preserved. It is a single
	// Registry.Reset: every component registered its counters at
	// construction.
	ResetStats()
	// Collect assembles the Result of the window since the last ResetStats.
	Collect() Result
	// Registry exposes the machine-wide metrics registry.
	Registry() *metrics.Registry
	// Stack returns the core's cumulative CPI stack (since the last
	// ResetStats); the interval sampler diffs successive reads.
	Stack() stats.CPIStack
	// FastForward functionally executes up to n instructions on the
	// architectural emulator — no timing models run, no cycles pass.
	// With warm set, cache/TLB/prefetch-tag/branch-predictor state is
	// functionally warmed alongside. Reports false if the program ended
	// before all n executed.
	FastForward(n uint64, warm bool) bool
	// Checkpoint captures the machine's resumable state (architectural
	// registers plus a COW memory clone, and warmed microarchitectural
	// snapshots after a warmed fast-forward) for NewMachineFrom. Only
	// meaningful before any timed stepping: timing state (MSHRs,
	// walkers, DRAM, core pipeline) is not captured.
	Checkpoint() *Checkpoint
	// Restore adopts ck's architectural and warmed state. The machine
	// must be freshly built over a clone of the checkpointed memory;
	// NewMachineFrom does both.
	Restore(ck *Checkpoint)
	// SetSource replaces the machine's instruction feed with src — the
	// execute-once, time-many hook: the scheduler attaches a
	// stream.ReplaySource decoded from a shared recording instead of the
	// default live emulator. Only valid before any stepping. Machines
	// whose companion reads architectural state (SVR) require a source
	// that is also a stream.ArchState with a memory image attached, and
	// repoint the companion at it; they panic on a bare source.
	SetSource(src stream.InstrSource)
}

// StreamNeeds classifies what a core kind requires of its instruction
// stream, which decides how (and whether) the scheduler can replay a
// shared recording into its cells.
type StreamNeeds int

// Stream requirement classes.
const (
	// StreamPure consumers read DynInstr records and nothing else
	// (in-order and out-of-order cores): replay needs no memory image.
	StreamPure StreamNeeds = iota
	// StreamMemory consumers dereference data memory ahead of the stream
	// (the IMP prefetcher chasing indirections): replay needs a private
	// memory image kept in lockstep by applying decoded stores.
	StreamMemory
	// StreamArch consumers read architectural registers, flags and
	// memory at the retire point (SVR's value scavenging): replay needs
	// the full stream.ArchState view — the decoder's tracked register
	// file plus a private lockstep memory image.
	StreamArch
	// StreamLive consumers feed timing back into the functional path:
	// the cell must run live and the scheduler falls back to a
	// LiveSource transparently. No registered kind needs this anymore;
	// it remains the safe fallback for unregistered kinds.
	StreamLive
)

// MachineFactory builds a machine of one kind over a pre-built hierarchy.
type MachineFactory func(cfg Config, inst *workloads.Instance, h *cache.Hierarchy) Machine

type machineEntry struct {
	factory MachineFactory
	needs   StreamNeeds
}

// machineFactories maps core kinds to constructors plus their stream
// requirements. New organizations register here instead of growing a
// switch in the runner.
var machineFactories = map[CoreKind]machineEntry{}

// RegisterMachine installs the factory for a core kind and declares what
// the kind requires of its instruction stream.
func RegisterMachine(kind CoreKind, f MachineFactory, needs StreamNeeds) {
	machineFactories[kind] = machineEntry{factory: f, needs: needs}
}

// StreamNeedsOf reports the stream requirement of a core kind.
// Unregistered kinds report StreamLive — the safe fallback.
func StreamNeedsOf(kind CoreKind) StreamNeeds {
	if e, ok := machineFactories[kind]; ok {
		return e.needs
	}
	return StreamLive
}

func init() {
	RegisterMachine(InO, newInOrderMachine, StreamPure)
	RegisterMachine(IMP, newInOrderMachine, StreamMemory)
	RegisterMachine(SVR, newInOrderMachine, StreamArch)
	RegisterMachine(OoO, newOoOMachine, StreamPure)
}

// NewMachine builds the configured machine with a private memory
// hierarchy over the given instance. The instance's memory is mutated by
// the run; callers reusing an instance must Clone it first.
func NewMachine(cfg Config, inst *workloads.Instance) (Machine, error) {
	f, err := factoryFor(cfg)
	if err != nil {
		return nil, err
	}
	return f(cfg, inst, cache.NewHierarchy(cfg.Hier)), nil
}

// NewMachineShared builds the configured machine with a private cache
// hierarchy on a shared DRAM channel (the §VI-E multi-core setup).
func NewMachineShared(cfg Config, inst *workloads.Instance, ch *dram.Channel) (Machine, error) {
	f, err := factoryFor(cfg)
	if err != nil {
		return nil, err
	}
	return f(cfg, inst, cache.NewHierarchyShared(cfg.Hier, ch)), nil
}

func factoryFor(cfg Config) (MachineFactory, error) {
	e, ok := machineFactories[cfg.Core]
	if !ok {
		return nil, fmt.Errorf("sim: no machine registered for core kind %d", cfg.Core)
	}
	return e.factory, nil
}

// Simulate drives a machine through the standard warmup → reset →
// measure → collect sequence shared by every experiment. With
// Params.SampleEvery set it also records the interval time series; with
// Params.FastForward or multi-region Params it runs the region schedule
// (fast-forward → detailed window, repeated) and aggregates.
func Simulate(m Machine, p Params) Result {
	if p.FastForward == 0 && p.Regions <= 1 {
		return simulateWindow(m, p)
	}
	return simulateRegions(m, p, false)
}

// SimulateFrom is Simulate for a machine already positioned at its first
// region start (restored from a post-fast-forward checkpoint): the first
// fast-forward is skipped, everything else is identical.
func SimulateFrom(m Machine, p Params) Result {
	if p.FastForward == 0 && p.Regions <= 1 {
		return simulateWindow(m, p)
	}
	return simulateRegions(m, p, true)
}

// simulateWindow runs one detailed warmup+measure window.
func simulateWindow(m Machine, p Params) Result {
	if p.SampleEvery > 0 {
		return simulateSampled(m, p)
	}
	m.Step(p.Warmup)
	m.ResetStats()
	m.Step(p.Measure)
	return m.Collect()
}

// inOrderMachine is the in-order family: the bare baseline core, and the
// same core with the IMP prefetcher or the SVR engine as its companion.
type inOrderMachine struct {
	cfg    Config
	inst   *workloads.Instance
	h      *cache.Hierarchy
	cpu    *emu.CPU
	src    stream.InstrSource // the core's instruction feed: live CPU by default, replay when attached
	core   *inorder.Core
	eng    *svr.Engine      // non-nil only for SVR
	view   *stream.ArchView // cohort-member arch view advanced during StepBatch, else nil
	warmed bool             // a warmed fast-forward ran; Checkpoint snapshots hierarchy state
}

func newInOrderMachine(cfg Config, inst *workloads.Instance, h *cache.Hierarchy) Machine {
	m := &inOrderMachine{
		cfg:  cfg,
		inst: inst,
		h:    h,
		cpu:  emu.New(inst.Prog, inst.Mem),
		core: inorder.New(cfg.InO, h),
	}
	m.src = stream.NewLive(m.cpu)
	switch cfg.Core {
	case IMP:
		m.core.Companion = imp.New(cfg.IMP, h, inst.Mem)
	case SVR:
		m.eng = svr.New(cfg.SVR, h, m.cpu)
		m.core.Companion = m.eng
	}
	return m
}

func (m *inOrderMachine) Step(n uint64) bool { return m.core.Run(m.src, n) == n }

// StepBatch issues rows [lo, hi) of a shared decoded batch — the cohort
// driver's lockstep entry point. Members with an attached arch view
// (SVR, IMP) advance it past each row before the row issues, mirroring
// the live Step-then-Issue ordering.
func (m *inOrderMachine) StepBatch(b *stream.DecodedBatch, lo, hi int) {
	if m.view != nil {
		m.core.RunBatchView(b, lo, hi, m.view)
		return
	}
	m.core.RunBatch(b, lo, hi)
}

// AttachArchView installs the member's private architectural view for
// cohort batch stepping and repoints the companion engine at it. The
// view's memory image must be the same one any companion reads (the
// member's private instance clone).
func (m *inOrderMachine) AttachArchView(v *stream.ArchView) {
	m.view = v
	if m.eng != nil {
		m.eng.Arch = v
	}
}

func (m *inOrderMachine) SetSource(src stream.InstrSource) {
	if m.eng != nil {
		// The engine scavenges architectural state, so the feed must
		// also serve as the engine's view (a ReplaySource with a memory
		// image attached).
		as, ok := src.(stream.ArchState)
		if !ok {
			panic("sim: SVR machines need an ArchState-bearing source")
		}
		m.eng.Arch = as
	}
	m.src = src
}
func (m *inOrderMachine) Instrs() uint64 { return m.core.Instrs }
func (m *inOrderMachine) Now() int64     { return m.core.Now() }

func (m *inOrderMachine) Registry() *metrics.Registry { return m.h.Reg }
func (m *inOrderMachine) ResetStats()                 { m.h.Reg.Reset() }
func (m *inOrderMachine) Stack() stats.CPIStack       { return m.core.Stack }

func (m *inOrderMachine) Collect() Result {
	res := Result{Workload: m.inst.Name, Label: m.cfg.Label, Metrics: m.h.Reg.Snapshot()}
	res.fillCommon(m.core.Instrs, m.core.Cycles(), m.core.NormalizedStack(), m.h)
	res.ExtraSlots = m.core.ExtraSlots
	var scalars int64
	if m.eng != nil {
		res.SVRStats = m.eng.Stats
		scalars = m.eng.Stats.Scalars
	}
	res.Energy = energy.Estimate(energy.DefaultParams(), energy.Activity{
		Core: energy.InOrder, Cycles: m.core.Cycles(), Instrs: m.core.Instrs,
		SVRScalars: scalars,
		L1Accesses: m.h.L1D.Accesses, L2Accesses: m.h.L2.Accesses, DRAMLines: m.h.DRAM.Lines,
	})
	return res
}

// oooMachine is the out-of-order comparison core.
type oooMachine struct {
	cfg    Config
	inst   *workloads.Instance
	h      *cache.Hierarchy
	cpu    *emu.CPU
	src    stream.InstrSource // live CPU by default, replay when attached
	core   *ooo.Core
	warmed bool // a warmed fast-forward ran; Checkpoint snapshots hierarchy state
}

func newOoOMachine(cfg Config, inst *workloads.Instance, h *cache.Hierarchy) Machine {
	m := &oooMachine{
		cfg:  cfg,
		inst: inst,
		h:    h,
		cpu:  emu.New(inst.Prog, inst.Mem),
		core: ooo.New(cfg.OoO, h),
	}
	m.src = stream.NewLive(m.cpu)
	return m
}

func (m *oooMachine) Step(n uint64) bool { return m.core.Run(m.src, n) == n }

// StepBatch issues rows [lo, hi) of a shared decoded batch (see the
// in-order machine's StepBatch).
func (m *oooMachine) StepBatch(b *stream.DecodedBatch, lo, hi int) { m.core.RunBatch(b, lo, hi) }

func (m *oooMachine) SetSource(src stream.InstrSource) { m.src = src }
func (m *oooMachine) Instrs() uint64                   { return m.core.Instrs }
func (m *oooMachine) Now() int64                       { return m.core.Now() }

func (m *oooMachine) Registry() *metrics.Registry { return m.h.Reg }
func (m *oooMachine) ResetStats()                 { m.h.Reg.Reset() }
func (m *oooMachine) Stack() stats.CPIStack       { return m.core.Stack }

func (m *oooMachine) Collect() Result {
	res := Result{Workload: m.inst.Name, Label: m.cfg.Label, Metrics: m.h.Reg.Snapshot()}
	res.fillCommon(m.core.Instrs, m.core.Cycles(), m.core.NormalizedStack(), m.h)
	res.Energy = energy.Estimate(energy.DefaultParams(), energy.Activity{
		Core: energy.OutOfOrder, Cycles: m.core.Cycles(), Instrs: m.core.Instrs,
		L1Accesses: m.h.L1D.Accesses, L2Accesses: m.h.L2.Accesses, DRAMLines: m.h.DRAM.Lines,
	})
	return res
}

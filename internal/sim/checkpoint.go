package sim

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/workloads"
)

// Checkpoint is a resumable machine image taken after a fast-forward:
// the architectural register state plus a copy-on-write clone of the
// memory, and — when the fast-forward functionally warmed — deep
// snapshots of the cache-hierarchy and branch-predictor state. One
// checkpoint fans out to many cells: every restore clones the frozen
// memory again, so sibling machines mutate memory independently.
// Timing state (MSHRs, walkers, DRAM channel, core pipeline) is never
// part of a checkpoint; a restored machine starts it fresh, exactly as
// a machine that ran the fast-forward in place would.
type Checkpoint struct {
	Workload string

	prog  *isa.Program
	check func(*mem.Memory) error
	mem   *mem.Memory // frozen COW image at the capture point
	arch  emu.ArchState
	hier  *cache.HierarchyState // nil unless warmed
	bp    *bpred.Predictor      // nil unless warmed
}

// Instrs returns the architectural instruction count at capture.
func (ck *Checkpoint) Instrs() uint64 { return ck.arch.Seq }

// Bytes estimates the checkpoint's retained size for cache budgeting.
func (ck *Checkpoint) Bytes() int64 {
	n := int64(ck.mem.Pages()) * mem.PageSize
	if ck.hier != nil {
		n += ck.hier.Bytes()
	}
	return n
}

// NewMachineFrom builds a machine of the given configuration resumed
// from a checkpoint: the instance is reconstructed over a fresh COW
// clone of the checkpointed memory, then the architectural (and any
// warmed) state is restored. The configuration's warm-relevant geometry
// must match the one the checkpoint was produced with (the scheduler
// keys checkpoints by it).
func NewMachineFrom(cfg Config, ck *Checkpoint) (Machine, error) {
	inst := &workloads.Instance{
		Name:  ck.Workload,
		Prog:  ck.prog,
		Mem:   ck.mem.Clone(),
		Check: ck.check,
	}
	m, err := NewMachine(cfg, inst)
	if err != nil {
		return nil, err
	}
	m.Restore(ck)
	return m, nil
}

// hierWarmer adapts a hierarchy plus branch predictor to emu.Warmer,
// replaying the fetch/load/store/branch stream the detailed cores would
// have driven through them. Both cores fetch from the same synthetic
// code addresses (inorder.CodeBase + 4·pc).
type hierWarmer struct {
	h  *cache.Hierarchy
	bp *bpred.Predictor
}

func (w *hierWarmer) WarmFetch(pc int)              { w.h.WarmFetchInstr(inorder.CodeBase + uint64(pc)*4) }
func (w *hierWarmer) WarmLoad(pc int, addr uint64)  { w.h.WarmAccess(pc, addr, false) }
func (w *hierWarmer) WarmStore(pc int, addr uint64) { w.h.WarmAccess(pc, addr, true) }
func (w *hierWarmer) WarmBranch(pc int, taken bool) { w.bp.Predict(pc, taken) }

func (m *inOrderMachine) FastForward(n uint64, warm bool) bool {
	if rs, ok := m.src.(*stream.ReplaySource); ok {
		// A replay-fed machine fast-forwards by discarding records: the
		// emulator is not in the loop (warming is likewise unavailable —
		// the scheduler only attaches replays past the fast-forward point).
		return rs.Skip(n) == n
	}
	if !warm {
		return m.cpu.FastForward(n) == n
	}
	m.warmed = true
	return m.cpu.FastForwardWarm(n, &hierWarmer{h: m.h, bp: m.core.BP}) == n
}

func (m *inOrderMachine) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Workload: m.inst.Name,
		prog:     m.inst.Prog,
		check:    m.inst.Check,
		mem:      m.cpu.Mem.Clone(),
		arch:     m.cpu.SaveArch(),
	}
	if m.warmed {
		ck.hier = m.h.WarmState()
		ck.bp = m.core.BP.Clone()
	}
	return ck
}

func (m *inOrderMachine) Restore(ck *Checkpoint) {
	m.cpu.LoadArch(ck.arch)
	if ck.hier != nil {
		m.h.SetWarmState(ck.hier)
		m.core.BP.CopyFrom(ck.bp)
		m.warmed = true
	}
}

func (m *oooMachine) FastForward(n uint64, warm bool) bool {
	if rs, ok := m.src.(*stream.ReplaySource); ok {
		return rs.Skip(n) == n
	}
	if !warm {
		return m.cpu.FastForward(n) == n
	}
	m.warmed = true
	return m.cpu.FastForwardWarm(n, &hierWarmer{h: m.h, bp: m.core.BP}) == n
}

func (m *oooMachine) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Workload: m.inst.Name,
		prog:     m.inst.Prog,
		check:    m.inst.Check,
		mem:      m.cpu.Mem.Clone(),
		arch:     m.cpu.SaveArch(),
	}
	if m.warmed {
		ck.hier = m.h.WarmState()
		ck.bp = m.core.BP.Clone()
	}
	return ck
}

func (m *oooMachine) Restore(ck *Checkpoint) {
	m.cpu.LoadArch(ck.arch)
	if ck.hier != nil {
		m.h.SetWarmState(ck.hier)
		m.core.BP.CopyFrom(ck.bp)
		m.warmed = true
	}
}

package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry's metrics, keyed by
// metric name. It is the unit that travels: scheduler cells carry one per
// run, the CLI serializes it as JSON, and the export writers render it
// for humans or Prometheus scrapers. The zero value means "no metrics
// recorded" (IsZero reports true).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`

	// help and order carry presentation metadata from the registry; they
	// intentionally do not survive JSON round trips (the writers fall
	// back to sorted name order).
	help  map[string]string
	order []Desc
}

// IsZero reports whether the snapshot carries no metrics at all.
func (s Snapshot) IsZero() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Delta returns the change from prev to s: counters and histograms
// subtract, gauges (levels, not events) keep their current value.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		help:       s.help,
		order:      s.order,
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	return out
}

// Merge returns the element-wise sum of two snapshots taken over
// disjoint measurement windows (multi-region runs): counters and
// histograms add; gauges are levels, not events, so the later window's
// (o's) value wins. Presentation metadata follows s, falling back to o
// when s carries none.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	if s.IsZero() {
		return o
	}
	if o.IsZero() {
		return s
	}
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		help:       s.help,
		order:      s.order,
	}
	if len(out.order) == 0 {
		out.help, out.order = o.help, o.order
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range o.Counters {
		out.Counters[name] += v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range o.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h
	}
	for name, h := range o.Histograms {
		out.Histograms[name] = out.Histograms[name].Add(h)
	}
	return out
}

// descs returns presentation order: registration order when known,
// otherwise all names sorted, with kinds inferred from the value maps.
func (s Snapshot) descs() []Desc {
	if len(s.order) > 0 {
		return s.order
	}
	var out []Desc
	for name := range s.Counters {
		out = append(out, Desc{Name: name, Kind: KindCounter})
	}
	for name := range s.Gauges {
		out = append(out, Desc{Name: name, Kind: KindGauge})
	}
	for name := range s.Histograms {
		out = append(out, Desc{Name: name, Kind: KindHistogram})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTable renders the snapshot as an aligned human-readable table:
// one line per scalar metric, and count/mean/p50/p99 for histograms.
func (s Snapshot) WriteTable(w io.Writer) {
	name := func(d Desc) string { return d.Name }
	width := 0
	for _, d := range s.descs() {
		if n := len(name(d)); n > width {
			width = n
		}
	}
	for _, d := range s.descs() {
		switch d.Kind {
		case KindHistogram:
			h := s.Histograms[d.Name]
			fmt.Fprintf(w, "%-*s  count=%d mean=%.1f p50~%.0f p99~%.0f\n",
				width, d.Name, h.Count, h.Mean(), h.QuantileEst(0.50), h.QuantileEst(0.99))
		case KindGauge:
			fmt.Fprintf(w, "%-*s  %d\n", width, d.Name, s.Gauges[d.Name])
		default:
			fmt.Fprintf(w, "%-*s  %d\n", width, d.Name, s.Counters[d.Name])
		}
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, with metric names sanitized to [a-z0-9_] and histograms emitted
// as cumulative _bucket/_sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) {
	for _, d := range s.descs() {
		pname := "svrsim_" + promName(d.Name)
		if help := s.help[d.Name]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", pname, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", pname, d.Kind)
		switch d.Kind {
		case KindHistogram:
			h := s.Histograms[d.Name]
			var cum int64
			for _, b := range h.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pname, b.Le, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pname, h.Count)
			fmt.Fprintf(w, "%s_sum %d\n", pname, h.Sum)
			fmt.Fprintf(w, "%s_count %d\n", pname, h.Count)
		case KindGauge:
			fmt.Fprintf(w, "%s %d\n", pname, s.Gauges[d.Name])
		default:
			fmt.Fprintf(w, "%s %d\n", pname, s.Counters[d.Name])
		}
	}
}

// promName maps a dotted metric name to a Prometheus-legal one.
func promName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

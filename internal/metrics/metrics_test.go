package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 100, -5} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	if h.Sum() != 125 { // -5 clamps to 0
		t.Fatalf("sum = %d, want 125", h.Sum())
	}
	s := h.Snapshot()
	// Expected buckets: le=0 {0,-5}→2, le=1 {1}→1, le=3 {2,3}→2,
	// le=7 {4,7}→2, le=15 {8}→1, le=127 {100}→1.
	want := []Bucket{{0, 2}, {1, 1}, {3, 2}, {7, 2}, {15, 1}, {127, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(1.0); got != 127 {
		t.Errorf("p100 = %d, want 127", got)
	}
}

func TestRegistryAdoptAndReset(t *testing.T) {
	r := New()
	var plain int64 = 7
	var uplain uint64 = 9
	r.Int64("plain", "adopted int64", &plain)
	r.Uint64("uplain", "adopted uint64", &uplain)
	c := r.NewCounter("typed", "typed counter")
	c.Add(3)
	g := r.NewGauge("level", "a level")
	g.Set(5)
	r.GaugeFunc("computed", "computed level", func() int64 { return 11 })
	h := r.NewHistogram("lat", "a latency")
	h.Observe(4)

	hookRan := false
	r.OnReset(func() {
		if plain != 0 {
			t.Errorf("hook saw plain=%d, want 0 (hooks run after zeroing)", plain)
		}
		hookRan = true
	})

	s := r.Snapshot()
	if s.Counters["plain"] != 7 || s.Counters["uplain"] != 9 || s.Counters["typed"] != 3 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["level"] != 5 || s.Gauges["computed"] != 11 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("histograms = %v", s.Histograms)
	}

	r.Reset()
	if !hookRan {
		t.Fatal("OnReset hook did not run")
	}
	if plain != 0 || uplain != 0 || c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left counters: plain=%d uplain=%d typed=%d hist=%d",
			plain, uplain, c.Value(), h.Count())
	}
	if g.Value() != 5 {
		t.Fatalf("reset zeroed gauge: %d", g.Value())
	}
	// The earlier snapshot must be unaffected by the reset.
	if s.Counters["plain"] != 7 {
		t.Fatalf("snapshot mutated by reset: %v", s.Counters)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := New()
	var a, b int64
	r.Int64("x", "", &a)
	r.Int64("x", "", &b)
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	var n int64
	r.Int64("n", "", &n)
	h := r.NewHistogram("h", "")
	g := r.NewGauge("g", "")

	n = 10
	h.Observe(2)
	g.Set(4)
	before := r.Snapshot()

	n = 25
	h.Observe(2)
	h.Observe(100)
	g.Set(6)
	d := r.Snapshot().Delta(before)

	if d.Counters["n"] != 15 {
		t.Errorf("delta counter = %d, want 15", d.Counters["n"])
	}
	if d.Gauges["g"] != 6 {
		t.Errorf("delta gauge = %d, want 6 (current level)", d.Gauges["g"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 || dh.Sum != 102 {
		t.Errorf("delta hist = %+v, want count=2 sum=102", dh)
	}
	for _, b := range dh.Buckets {
		if b.Le == 3 && b.Count != 1 {
			t.Errorf("delta bucket le=3 count = %d, want 1", b.Count)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	var n int64 = 42
	r.Int64("l1d.misses", "L1D misses", &n)
	h := r.NewHistogram("lat.demand.mem", "demand latency")
	h.Observe(200)
	h.Observe(300)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["l1d.misses"] != 42 {
		t.Errorf("round-trip counter = %d, want 42", back.Counters["l1d.misses"])
	}
	hb := back.Histograms["lat.demand.mem"]
	if hb.Count != 2 || hb.Sum != 500 {
		t.Errorf("round-trip hist = %+v", hb)
	}
	// Writers must still work on a deserialized snapshot (no order/help).
	var tbl, prom strings.Builder
	back.WriteTable(&tbl)
	back.WritePrometheus(&prom)
	if !strings.Contains(tbl.String(), "l1d.misses") {
		t.Errorf("table output missing metric:\n%s", tbl.String())
	}
	if !strings.Contains(prom.String(), "svrsim_lat_demand_mem_bucket{le=\"255\"} 1") {
		t.Errorf("prometheus output missing cumulative bucket:\n%s", prom.String())
	}
	if !strings.Contains(prom.String(), "svrsim_lat_demand_mem_bucket{le=\"511\"} 2") {
		t.Errorf("prometheus output missing cumulative bucket:\n%s", prom.String())
	}
}

func TestWritePrometheusWellFormed(t *testing.T) {
	r := New()
	var n int64 = 3
	r.Int64("dram.loads.demand", "DRAM line loads from demand misses", &n)
	var out strings.Builder
	r.Snapshot().WritePrometheus(&out)
	want := "# HELP svrsim_dram_loads_demand DRAM line loads from demand misses\n" +
		"# TYPE svrsim_dram_loads_demand counter\n" +
		"svrsim_dram_loads_demand 3\n"
	if out.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", out.String(), want)
	}
}

func TestHistogramSnapshotAdd(t *testing.T) {
	a := HistogramSnapshot{Count: 3, Sum: 30, Buckets: []Bucket{{Le: 7, Count: 2}, {Le: 63, Count: 1}}}
	b := HistogramSnapshot{Count: 2, Sum: 40, Buckets: []Bucket{{Le: 7, Count: 1}, {Le: 15, Count: 1}}}
	got := a.Add(b)
	want := HistogramSnapshot{Count: 5, Sum: 70, Buckets: []Bucket{{Le: 7, Count: 3}, {Le: 15, Count: 1}, {Le: 63, Count: 1}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	// Adding an empty histogram is the identity.
	if got := a.Add(HistogramSnapshot{}); !reflect.DeepEqual(got, a) {
		t.Errorf("Add(zero) = %+v, want %+v", got, a)
	}
	if got := (HistogramSnapshot{}).Add(b); !reflect.DeepEqual(got, b) {
		t.Errorf("zero.Add = %+v, want %+v", got, b)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{
		Counters:   map[string]int64{"x": 1, "shared": 2},
		Gauges:     map[string]int64{"g": 10},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 1, Sum: 5, Buckets: []Bucket{{Le: 7, Count: 1}}}},
	}
	b := Snapshot{
		Counters:   map[string]int64{"y": 4, "shared": 3},
		Gauges:     map[string]int64{"g": 20},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 2, Sum: 6, Buckets: []Bucket{{Le: 7, Count: 2}}}},
	}
	m := a.Merge(b)
	if m.Counters["x"] != 1 || m.Counters["y"] != 4 || m.Counters["shared"] != 5 {
		t.Errorf("counters = %+v", m.Counters)
	}
	// Gauges are instantaneous: the later window wins.
	if m.Gauges["g"] != 20 {
		t.Errorf("gauge = %d, want 20", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 11 || len(h.Buckets) != 1 || h.Buckets[0].Count != 3 {
		t.Errorf("histogram = %+v", h)
	}
	// Merging with a zero snapshot returns the other side unchanged.
	if got := (Snapshot{}).Merge(a); !reflect.DeepEqual(got, a) {
		t.Errorf("zero.Merge = %+v", got)
	}
	if got := a.Merge(Snapshot{}); !reflect.DeepEqual(got, a) {
		t.Errorf("Merge(zero) = %+v", got)
	}
}

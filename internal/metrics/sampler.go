package metrics

// Sampler turns a registry into a time series: callers Tick it at interval
// boundaries (every K committed instructions in the simulator) and each
// tick captures the delta of every counter and histogram since the
// previous tick, plus the caller-supplied cumulative instruction and cycle
// positions. The paper's over-time figures (IPC, MPKI, SVR coverage) are
// all derived from these deltas.
//
// A Sampler never touches the hot path: it snapshots only at interval
// boundaries, and a machine with no sampler attached pays nothing.
type Sampler struct {
	reg     *Registry
	prev    Snapshot
	Samples []Sample
}

// Sample is one interval of a sampled run: the cumulative position at the
// end of the interval plus the per-interval metric deltas (gauges carry
// their instantaneous value, as in Snapshot.Delta).
type Sample struct {
	Instrs uint64 // cumulative committed instructions at interval end
	Cycles int64  // cumulative cycles at interval end
	Delta  Snapshot
}

// NewSampler builds a sampler over the registry, baselined at the
// registry's current state.
func NewSampler(reg *Registry) *Sampler {
	s := &Sampler{reg: reg}
	s.Rebase()
	return s
}

// Rebase re-baselines the sampler at the registry's current state and
// drops accumulated samples — call at the start of the measurement window
// (after Registry.Reset).
func (s *Sampler) Rebase() {
	s.prev = s.reg.Snapshot()
	s.Samples = nil
}

// Tick closes the current interval at the given cumulative position and
// records its deltas. It returns the recorded sample.
func (s *Sampler) Tick(instrs uint64, cycles int64) *Sample {
	cur := s.reg.Snapshot()
	s.Samples = append(s.Samples, Sample{Instrs: instrs, Cycles: cycles, Delta: cur.Delta(s.prev)})
	s.prev = cur
	return &s.Samples[len(s.Samples)-1]
}

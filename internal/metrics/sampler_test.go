package metrics

import (
	"math"
	"testing"
)

func TestSamplerTickDeltas(t *testing.T) {
	r := New()
	var n int64
	r.Int64("n", "", &n)
	h := r.NewHistogram("h", "")
	g := r.NewGauge("g", "")

	n = 5
	h.Observe(10)
	g.Set(1)
	s := NewSampler(r)
	s.Rebase() // baseline includes the pre-window activity

	n = 12
	h.Observe(20)
	g.Set(2)
	s.Tick(100, 50)

	n = 30
	s.Tick(200, 120)

	if len(s.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(s.Samples))
	}
	s0, s1 := s.Samples[0], s.Samples[1]
	if s0.Instrs != 100 || s0.Cycles != 50 || s1.Instrs != 200 || s1.Cycles != 120 {
		t.Errorf("positions = %+v %+v", s0, s1)
	}
	if s0.Delta.Counters["n"] != 7 || s1.Delta.Counters["n"] != 18 {
		t.Errorf("counter deltas = %d, %d; want 7, 18",
			s0.Delta.Counters["n"], s1.Delta.Counters["n"])
	}
	if s0.Delta.Histograms["h"].Count != 1 || s0.Delta.Histograms["h"].Sum != 20 {
		t.Errorf("histogram delta = %+v", s0.Delta.Histograms["h"])
	}
	if s1.Delta.Histograms["h"].Count != 0 {
		t.Errorf("idle interval histogram delta = %+v", s1.Delta.Histograms["h"])
	}
	if s0.Delta.Gauges["g"] != 2 {
		t.Errorf("gauge in sample = %d, want current level 2", s0.Delta.Gauges["g"])
	}
}

func TestSamplerRebaseDropsHistory(t *testing.T) {
	r := New()
	var n int64
	r.Int64("n", "", &n)
	s := NewSampler(r)
	n = 9
	s.Tick(10, 10)
	s.Rebase()
	if len(s.Samples) != 0 {
		t.Fatalf("rebase kept %d samples", len(s.Samples))
	}
	n = 11
	s.Tick(20, 20)
	if d := s.Samples[0].Delta.Counters["n"]; d != 2 {
		t.Errorf("post-rebase delta = %d, want 2", d)
	}
}

func TestHistogramQuantileInterpolated(t *testing.T) {
	var h Histogram
	// 100 observations spread evenly over bucket le=127 (values 64..127):
	// interpolation should land p50 near the middle of the bucket.
	for i := 0; i < 100; i++ {
		h.Observe(64 + int64(i)*63/99)
	}
	p50 := h.Quantile(0.50)
	if p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %.1f, outside the only occupied bucket [64,127]", p50)
	}
	if math.Abs(p50-95.5) > 16 {
		t.Errorf("p50 = %.1f, want near the bucket midpoint 95.5", p50)
	}
	// The snapshot estimate must agree with the live histogram.
	if est := h.Snapshot().QuantileEst(0.50); math.Abs(est-p50) > 1e-9 {
		t.Errorf("QuantileEst = %.3f, Quantile = %.3f", est, p50)
	}
	// p100 stays within the bucket.
	if p100 := h.Quantile(1.0); p100 > 127 {
		t.Errorf("p100 = %.1f > 127", p100)
	}
}

func TestHistogramQuantileOrderingAndEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %f", h.Quantile(0.5))
	}
	h.Observe(0)
	if h.Quantile(0.5) != 0 {
		t.Errorf("all-zero histogram p50 = %f", h.Quantile(0.5))
	}
	for _, v := range []int64{3, 70, 70, 70, 500, 9000} {
		h.Observe(v)
	}
	// Quantiles must be monotone in q and bounded by the extreme buckets.
	prev := -1.0
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile(%.2f) = %.1f < quantile at lower q %.1f", q, v, prev)
		}
		prev = v
	}
	if p50 := h.Quantile(0.5); p50 < 64 || p50 > 127 {
		t.Errorf("p50 = %.1f, want inside [64,127] (the three 70s)", p50)
	}
	if p100 := h.Quantile(1.0); p100 < 8192 || p100 > 16383 {
		t.Errorf("p100 = %.1f, want inside the 9000 bucket [8192,16383]", p100)
	}
}

// Package metrics provides the typed event-counting primitives — Counter,
// Gauge, and power-of-two-bucketed Histogram — and the Registry that every
// timing component publishes its statistics through.
//
// The registry solves a silent-correctness trap: the warmup/measure split
// of sim.Simulate requires every event counter in the machine to be zeroed
// at the window boundary, and with per-component ResetStats methods a new
// counter was one forgotten edit away from polluting measurements. Here a
// component registers each counter once, at construction, and a single
// Registry.Reset() covers all of them; a reflection guard test
// (internal/sim) fails if a counter-like field ever escapes the registry.
//
// All primitives are plain value types updated by direct field access —
// the hot paths (cache lookups, DRAM bookings, SVI lane issue) pay one
// integer add or, for histograms, a bit-length and three adds, with no
// allocation, locking, or map traffic.
package metrics

import "math/bits"

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// MarshalJSON renders the counter as a bare number.
func (c Counter) MarshalJSON() ([]byte, error) { return appendInt(nil, c.v), nil }

// Gauge is an instantaneous level (occupancy, pending entries). Unlike a
// Counter it is not zeroed by Registry.Reset: a gauge describes state, not
// events in the measurement window.
type Gauge struct{ v int64 }

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the level by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// MarshalJSON renders the gauge as a bare number.
func (g Gauge) MarshalJSON() ([]byte, error) { return appendInt(nil, g.v), nil }

// histBuckets is the bucket count: bits.Len64 of a non-negative int64 is
// at most 63, so bucket indices span [0, 63].
const histBuckets = 64

// Histogram accumulates a latency (or any non-negative value)
// distribution in power-of-two buckets: bucket k counts observations v
// with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k - 1], and bucket 0
// counts exact zeros. A fixed 64-bucket array covers the full int64 range
// with no allocation on Observe — the property that lets histograms sit
// on the demand-load and DRAM hot paths.
type Histogram struct {
	count   int64
	sum     int64
	buckets [histBuckets]int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns a bucket-interpolated estimate of the q-th quantile
// (0 < q <= 1): the rank is located in its power-of-two bucket and the
// value interpolated linearly across the bucket's [2^(k-1), 2^k - 1]
// span. Resolution is therefore the bucket width, but unlike the raw
// upper bound the estimate moves smoothly as mass shifts within a bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := quantileRank(q, h.count)
	var cum int64
	for k, n := range h.buckets {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			return interpolateBucket(k, target-cum, n)
		}
		cum += n
	}
	return float64(bucketBound(histBuckets - 1))
}

// quantileRank converts a quantile into a 1-based rank, clamped to the
// observation count.
func quantileRank(q float64, count int64) int64 {
	target := int64(q * float64(count))
	if target < 1 {
		target = 1
	}
	if target > count {
		target = count
	}
	return target
}

// interpolateBucket places rank r of n observations linearly within
// bucket k's value span.
func interpolateBucket(k int, r, n int64) float64 {
	lo, hi := bucketLow(k), bucketBound(k)
	if lo >= hi || n <= 0 {
		return float64(hi)
	}
	frac := float64(r) / float64(n)
	return float64(lo) + frac*float64(hi-lo)
}

// bucketLow returns the inclusive lower bound of bucket k.
func bucketLow(k int) int64 {
	if k <= 0 {
		return 0
	}
	return int64(1) << (k - 1)
}

// Snapshot captures the distribution as a portable value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	for k, n := range h.buckets {
		if n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketBound(k), Count: n})
		}
	}
	return s
}

// bucketBound returns the inclusive upper bound of bucket k.
func bucketBound(k int) int64 {
	if k == 0 {
		return 0
	}
	if k >= 63 {
		return int64(^uint64(0) >> 1) // max int64
	}
	return int64(1)<<k - 1
}

// Bucket is one non-empty histogram bucket: Count observations with value
// <= Le (and greater than the previous bucket's bound).
type Bucket struct {
	Le    int64
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a Histogram: per-bucket
// (non-cumulative) counts for the non-empty buckets, in ascending Le.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []Bucket `json:",omitempty"`
}

// Mean returns the average observed value.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) — an upper estimate with power-of-two resolution.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// QuantileEst returns the same bucket-interpolated quantile estimate as
// Histogram.Quantile, computed from the portable snapshot form.
func (s HistogramSnapshot) QuantileEst(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := quantileRank(q, s.Count)
	var cum int64
	for _, b := range s.Buckets {
		if cum+b.Count >= target {
			lo := snapshotBucketLow(b.Le)
			if lo >= b.Le || b.Count <= 0 {
				return float64(b.Le)
			}
			frac := float64(target-cum) / float64(b.Count)
			return float64(lo) + frac*float64(b.Le-lo)
		}
		cum += b.Count
	}
	return float64(s.Buckets[len(s.Buckets)-1].Le)
}

// snapshotBucketLow recovers a bucket's inclusive lower bound from its
// upper bound: buckets span [2^(k-1), 2^k - 1] with bucket 0 holding
// exact zeros.
func snapshotBucketLow(le int64) int64 {
	if le <= 0 {
		return 0
	}
	if le == int64(^uint64(0)>>1) { // top bucket, bound clamped to max int64
		return int64(1) << 62
	}
	return (le + 1) >> 1
}

// Sub returns the bucket-wise difference s - prev, the distribution of
// observations made after prev was taken.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	old := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		old[b.Le] = b.Count
	}
	for _, b := range s.Buckets {
		if d := b.Count - old[b.Le]; d != 0 {
			out.Buckets = append(out.Buckets, Bucket{Le: b.Le, Count: d})
		}
	}
	return out
}

// Add returns the bucket-wise sum s + o, the combined distribution of
// two disjoint observation windows (the inverse of Sub).
func (s HistogramSnapshot) Add(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Le: s.Buckets[i].Le, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	return out
}

// appendInt is strconv.AppendInt without the import weight.
func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

package metrics

import "fmt"

// Kind classifies a registered metric for export formatting.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Desc describes one registered metric.
type Desc struct {
	Name string
	Help string
	Kind Kind
}

// entry binds a Desc to the live value it reads and resets. Exactly one
// of the value fields is set, matching the Kind.
type entry struct {
	desc Desc
	i64  *int64       // counter adopted from a plain struct field
	u64  *uint64      // counter adopted from a plain struct field
	ctr  *Counter     // typed counter
	g    *Gauge       // typed gauge
	gfn  func() int64 // computed gauge
	hist *Histogram
}

// Registry is the single reset/collect point for every metric a machine
// owns. Components register at construction time — either by adopting an
// existing plain counter field (Int64/Uint64) or by allocating a typed
// primitive (NewCounter/NewGauge/NewHistogram) — and sim.Simulate's
// warmup boundary becomes one Reset() call instead of a hand-maintained
// chain of per-component ResetStats methods.
//
// A Registry is not safe for concurrent use; each machine owns one, and
// the cell-parallel scheduler never shares a machine across goroutines.
type Registry struct {
	entries []entry
	names   map[string]struct{}
	hooks   []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

func (r *Registry) add(e entry) {
	if _, dup := r.names[e.desc.Name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", e.desc.Name))
	}
	r.names[e.desc.Name] = struct{}{}
	r.entries = append(r.entries, e)
}

// Int64 adopts an existing int64 counter field: the component keeps
// updating the field directly (zero hot-path cost, existing reads keep
// working) while the registry gains reset and export authority over it.
func (r *Registry) Int64(name, help string, p *int64) {
	r.add(entry{desc: Desc{name, help, KindCounter}, i64: p})
}

// Uint64 adopts an existing uint64 counter field.
func (r *Registry) Uint64(name, help string, p *uint64) {
	r.add(entry{desc: Desc{name, help, KindCounter}, u64: p})
}

// NewCounter registers and returns a typed counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(entry{desc: Desc{name, help, KindCounter}, ctr: c})
	return c
}

// NewGauge registers and returns a typed gauge (not zeroed by Reset).
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(entry{desc: Desc{name, help, KindGauge}, g: g})
	return g
}

// GaugeFunc registers a gauge computed on demand from live state.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	r.add(entry{desc: Desc{name, help, KindGauge}, gfn: f})
}

// NewHistogram registers and returns a histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(entry{desc: Desc{name, help, KindHistogram}, hist: h})
	return h
}

// OnReset registers a hook run by Reset after all metrics are zeroed —
// for window state that is re-baselined rather than zeroed (a core's
// start cycle, the SVR monitor's usefulness baselines). Hooks run in
// registration order and may read the just-zeroed metrics.
func (r *Registry) OnReset(f func()) { r.hooks = append(r.hooks, f) }

// Describe returns the descriptors of all registered metrics in
// registration order.
func (r *Registry) Describe() []Desc {
	out := make([]Desc, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.desc
	}
	return out
}

// Reset zeroes every counter and histogram (gauges describe state and are
// left alone), then runs the OnReset hooks. This is the warmup/measure
// boundary: after Reset, the registry reflects only events in the new
// window.
func (r *Registry) Reset() {
	for _, e := range r.entries {
		switch {
		case e.i64 != nil:
			*e.i64 = 0
		case e.u64 != nil:
			*e.u64 = 0
		case e.ctr != nil:
			e.ctr.v = 0
		case e.hist != nil:
			*e.hist = Histogram{}
		}
	}
	for _, f := range r.hooks {
		f()
	}
}

// Snapshot captures every metric's current value as a portable,
// registry-independent value (safe to retain after the machine is gone,
// safe to serialize).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		help:       make(map[string]string, len(r.entries)),
		order:      make([]Desc, len(r.entries)),
	}
	for i, e := range r.entries {
		s.order[i] = e.desc
		s.help[e.desc.Name] = e.desc.Help
		switch {
		case e.i64 != nil:
			s.Counters[e.desc.Name] = *e.i64
		case e.u64 != nil:
			s.Counters[e.desc.Name] = int64(*e.u64)
		case e.ctr != nil:
			s.Counters[e.desc.Name] = e.ctr.v
		case e.g != nil:
			s.Gauges[e.desc.Name] = e.g.v
		case e.gfn != nil:
			s.Gauges[e.desc.Name] = e.gfn()
		case e.hist != nil:
			s.Histograms[e.desc.Name] = e.hist.Snapshot()
		}
	}
	return s
}

package svr

import (
	"testing"

	"repro/internal/isa"
)

func TestStrideDetectorLearns(t *testing.T) {
	sd := NewStrideDetector(32)
	var e *SDEntry
	var out ObserveOutcome
	for i := uint64(0); i < 5; i++ {
		e, out = sd.Observe(10, 0x1000+i*8)
	}
	if !e.Striding(2) {
		t.Fatalf("stride not learned: %+v", e)
	}
	if e.Stride != 8 {
		t.Errorf("stride = %d", e.Stride)
	}
	if out != ObserveContinuing {
		t.Errorf("outcome = %v", out)
	}
	// Observations: new, stride-set, then 3 continuing ones.
	if e.Iteration != 3 {
		t.Errorf("iteration = %d", e.Iteration)
	}
	// Discontinuity resets confidence-building and reports it.
	_, out = sd.Observe(10, 0x9000)
	if out != ObserveDiscontinuity {
		t.Errorf("discontinuity outcome = %v", out)
	}
}

func TestStrideDetectorNegativeStride(t *testing.T) {
	sd := NewStrideDetector(32)
	var e *SDEntry
	for i := int64(20); i >= 0; i-- {
		e, _ = sd.Observe(5, uint64(0x8000+i*4))
	}
	if !e.Striding(2) || e.Stride != -4 {
		t.Fatalf("negative stride not learned: %+v", e)
	}
	e.SetWaitRange(0x8000+10*4, 0x8000) // from > to: must normalize
	if !e.InWaitRange(0x8000 + 5*4) {
		t.Error("normalized wait range broken")
	}
}

func TestStrideDetectorAliasReplacement(t *testing.T) {
	sd := NewStrideDetector(4)
	sd.Observe(1, 0x100)
	sd.Observe(5, 0x200) // aliases entry 1 in a 4-entry table
	if sd.Lookup(1) != nil {
		t.Error("aliased entry not replaced")
	}
	if sd.Lookup(5) == nil {
		t.Error("new entry missing")
	}
}

func TestWaitRange(t *testing.T) {
	e := &SDEntry{}
	e.SetWaitRange(100, 200)
	if !e.InWaitRange(100) || !e.InWaitRange(200) || !e.InWaitRange(150) {
		t.Error("inside addresses not detected")
	}
	if e.InWaitRange(99) || e.InWaitRange(201) {
		t.Error("outside addresses wrongly in range")
	}
	e.Waiting = false
	if e.InWaitRange(150) {
		t.Error("cleared waiting still active")
	}
}

func TestEWMAFormula(t *testing.T) {
	e := &SDEntry{EWMA: 8, Iteration: 16}
	e.UpdateEWMA()
	if want := 7.0*8/8 + 16.0/8; e.EWMA != want {
		t.Errorf("EWMA = %v, want %v", e.EWMA, want)
	}
	if e.Iteration != 0 {
		t.Error("iteration not reset")
	}
}

func TestClearSeenExcept(t *testing.T) {
	sd := NewStrideDetector(8)
	for pc := 0; pc < 4; pc++ {
		e, _ := sd.Observe(pc, 0x1000)
		e.Seen = true
	}
	sd.ClearSeenExcept(2)
	for pc := 0; pc < 4; pc++ {
		e := sd.Lookup(pc)
		if (pc == 2) != e.Seen {
			t.Errorf("pc %d Seen = %v", pc, e.Seen)
		}
	}
}

func TestRegFileMapAndReuse(t *testing.T) {
	rf := NewRegFile(2, 4, RecycleLRU)
	s1, ok := rf.MapDest(5, 0)
	if !ok || s1 == nil {
		t.Fatal("first mapping failed")
	}
	s2, ok := rf.MapDest(5, 1)
	if !ok || s2 != s1 {
		t.Error("remapping same register must reuse the SRF entry")
	}
	if rf.Allocs != 1 {
		t.Errorf("allocs = %d", rf.Allocs)
	}
}

func TestRegFileLRURecycle(t *testing.T) {
	rf := NewRegFile(2, 4, RecycleLRU)
	rf.MapDest(1, 0)
	rf.MapDest(2, 1)
	// Read r1 at offset 5 so r2 (offset 1) becomes LRU.
	if _, ok := rf.SourceVector(1, 5); !ok {
		t.Fatal("r1 should be readable")
	}
	if _, ok := rf.MapDest(3, 6); !ok {
		t.Fatal("recycle should succeed")
	}
	if rf.Recycles != 1 {
		t.Errorf("recycles = %d", rf.Recycles)
	}
	// r2 lost its mapping but stays tainted: consumers blocked.
	if !rf.TaintedUnmapped(2) {
		t.Error("victim should be tainted-unmapped")
	}
	if _, ok := rf.SourceVector(2, 7); ok {
		t.Error("unmapped register should not be a vector source")
	}
	if _, ok := rf.SourceVector(1, 8); !ok {
		t.Error("survivor lost its mapping")
	}
}

func TestRegFileRecycleNoneFails(t *testing.T) {
	rf := NewRegFile(1, 4, RecycleNone)
	rf.MapDest(1, 0)
	if _, ok := rf.MapDest(2, 1); ok {
		t.Fatal("DVR policy must fail when SRF exhausted")
	}
	if rf.AllocFails != 1 {
		t.Errorf("alloc fails = %d", rf.AllocFails)
	}
	if !rf.TaintedUnmapped(2) {
		t.Error("failed destination should be tainted-unmapped")
	}
}

func TestRegFileInvalidate(t *testing.T) {
	rf := NewRegFile(2, 4, RecycleLRU)
	rf.MapDest(1, 0)
	rf.Invalidate(1)
	if rf.TT[1].Tainted || rf.TT[1].Mapped {
		t.Error("invalidate did not clear taint")
	}
	// SRF entry freed: two more mappings must succeed without recycling.
	rf.MapDest(2, 1)
	rf.MapDest(3, 2)
	if rf.Recycles != 0 {
		t.Errorf("recycles = %d, want 0", rf.Recycles)
	}
}

func TestRegFileReset(t *testing.T) {
	rf := NewRegFile(2, 4, RecycleLRU)
	rf.MapDest(1, 0)
	rf.MapDest(2, 1)
	rf.Reset()
	if rf.MappedCount() != 0 {
		t.Error("reset left mappings")
	}
	for i := range rf.SRF {
		if rf.SRF[i].InUse {
			t.Error("reset left SRF in use")
		}
	}
}

func TestLBDTrainAndPredict(t *testing.T) {
	lb := NewLoopBound(8)
	e := lb.Entry(100)
	// Simulate for (i = 0; i < 40; i++) with compare cmp(i, 40):
	// operand A is the induction variable, B the bound.
	for i := int64(1); i <= 4; i++ {
		e.Train(LastCompare{Valid: true, PC: 7, ValA: i, ValB: 40, RegA: 3, RegB: 4})
	}
	if !e.Learned {
		t.Fatal("loop structure not learned")
	}
	if e.Increment != 1 || e.BoundIsA {
		t.Errorf("increment = %d, boundIsA = %v", e.Increment, e.BoundIsA)
	}
	// Stored prediction from last compare (i=4): 36 remaining.
	rem, ok := e.PredictStored()
	if !ok || rem != 36 {
		t.Errorf("stored prediction = %v, %v", rem, ok)
	}
	// CV scavenging with current register values i=10: 30 remaining.
	rem, ok = e.PredictCV(func(r isa.Reg) int64 {
		if r == 3 {
			return 10
		}
		return 40
	})
	if !ok || rem != 30 {
		t.Errorf("CV prediction = %v, %v", rem, ok)
	}
}

func TestLBDCompareImmediate(t *testing.T) {
	lb := NewLoopBound(8)
	e := lb.Entry(50)
	for i := int64(1); i <= 3; i++ {
		e.Train(LastCompare{Valid: true, PC: 9, ValA: i, ValB: 100, RegA: 2, BImm: true})
	}
	rem, ok := e.PredictCV(func(r isa.Reg) int64 { return 90 })
	if !ok || rem != 10 {
		t.Errorf("imm-bound CV prediction = %v, %v", rem, ok)
	}
}

func TestLBDReplacementOnCompPCChange(t *testing.T) {
	lb := NewLoopBound(8)
	e := lb.Entry(100)
	for i := int64(1); i <= 3; i++ {
		e.Train(LastCompare{Valid: true, PC: 7, ValA: i, ValB: 40, RegA: 3, RegB: 4})
	}
	conf := e.Conf
	// A different compare decays confidence, then replaces.
	for j := 0; j <= conf; j++ {
		e.Train(LastCompare{Valid: true, PC: 9, ValA: 5, ValB: 6, RegA: 1, RegB: 2})
	}
	if e.CompPC != 9 {
		t.Errorf("compare not replaced: compPC = %d", e.CompPC)
	}
	if e.Learned {
		t.Error("replacement must clear learned structure")
	}
}

func TestLBDBothOperandsChangedIgnored(t *testing.T) {
	lb := NewLoopBound(8)
	e := lb.Entry(100)
	e.Train(LastCompare{Valid: true, PC: 7, ValA: 1, ValB: 40, RegA: 3, RegB: 4})
	e.Train(LastCompare{Valid: true, PC: 7, ValA: 9, ValB: 77, RegA: 3, RegB: 4})
	if e.Learned {
		t.Error("both-changed training must not learn an increment")
	}
}

func TestTournamentScoring(t *testing.T) {
	lb := NewLoopBound(8)
	e := lb.Entry(100)
	start := e.Tournament
	// LBD predicted 10, EWMA predicted 3; observed 10 -> LBD wins.
	e.NotePredictions(3, 10, 0, true)
	e.ScoreTournament(10)
	if e.Tournament != start+1 {
		t.Errorf("tournament after LBD win = %d, want %d", e.Tournament, start+1)
	}
	// EWMA closer -> decrement.
	e.NotePredictions(9, 2, 0, true)
	e.ScoreTournament(10)
	if e.Tournament != start {
		t.Errorf("tournament after EWMA win = %d, want %d", e.Tournament, start)
	}
	// No predictions noted: no change.
	e.ScoreTournament(5)
	if e.Tournament != start {
		t.Error("scoring without predictions changed state")
	}
}

func TestOverheadTableII(t *testing.T) {
	// Paper Table II: SVR-16 with K=8 is 2.17 KiB.
	kib := OverheadKiB(DefaultOptions())
	if kib < 2.0 || kib > 2.4 {
		t.Errorf("SVR-16 overhead = %.2f KiB, want ~2.17", kib)
	}
	// SVR-128 grows to ~9 KiB (SRF dominates).
	big := DefaultOptions()
	big.VectorLen = 128
	kib = OverheadKiB(big)
	if kib < 8.0 || kib > 11.0 {
		t.Errorf("SVR-128 overhead = %.2f KiB, want ~9", kib)
	}
	if OverheadTable(DefaultOptions()) == "" {
		t.Error("empty overhead table")
	}
}

func TestOverheadMonotonicInN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{8, 16, 32, 64, 128} {
		o := DefaultOptions()
		o.VectorLen = n
		k := OverheadKiB(o)
		if k <= prev {
			t.Errorf("overhead not increasing at N=%d: %v <= %v", n, k, prev)
		}
		prev = k
	}
}

func TestOptionsNormalize(t *testing.T) {
	var zero Options
	n := zero.Normalize()
	if n.VectorLen < 1 || n.SRFRegs < 1 || n.Width < 1 || n.ScalarsPerSlot < 1 ||
		n.SDEntries < 1 || n.LBDSize < 1 || n.PRMTimeout < 1 || n.StrideConfMin < 1 {
		t.Errorf("Normalize left zero fields: %+v", n)
	}
	// Valid options pass through unchanged.
	d := DefaultOptions()
	if d.Normalize() != d {
		t.Error("Normalize changed valid defaults")
	}
}

package svr

import (
	"fmt"
	"math"
	"strings"
)

// OverheadItem is one row of the Table II hardware budget.
type OverheadItem struct {
	Name string
	Bits int
}

// Overhead computes the hardware state budget of Table II for a
// configuration: stride detector, taint tracker, HSLR, SRF, LC, LBD,
// scoreboard return counters and L1 prefetch tags.
func Overhead(opt Options) []OverheadItem {
	n, k := opt.VectorLen, opt.SRFRegs

	sdEntry := 48 /*PC*/ + 48 /*prev addr*/ + 8 /*stride*/ + 2 /*conf*/ +
		48 /*last prefetch*/ + 1 /*seen*/ + 16 /*LIL*/ + 2 /*LIL conf*/
	ttEntry := 1 /*tainted*/ + ceilLog2(k) /*SRF id*/ + 1 /*mapped*/ + 8 /*offset*/
	hslr := 48 + n                                                       /*mask*/
	srf := k * n * 64
	lc := 48 + 64 + 5 + 64 + 5
	lbdEntry := 48 /*PC*/ + lc /*LC snapshot*/ + 9 /*EWMA*/ + 16 /*increment*/ +
		9 /*iteration*/ + 2 /*tournament*/
	sbEntry := ceilLog2(n + 1)

	return []OverheadItem{
		{fmt.Sprintf("Stride detector (%d entries)", opt.SDEntries), opt.SDEntries * sdEntry},
		{"Taint tracker (32 arch regs)", 32 * ttEntry},
		{fmt.Sprintf("HSLR (N=%d mask)", n), hslr},
		{fmt.Sprintf("SRF (K=%d x N=%d x 64b)", k, n), srf},
		{"Last compare (LC)", lc},
		{fmt.Sprintf("LBD (%d entries)", opt.LBDSize), opt.LBDSize * lbdEntry},
		{"Scoreboard return counters (32)", 32 * sbEntry},
		{"L1 prefetch tags", 1024},
	}
}

// OverheadBits sums the budget.
func OverheadBits(opt Options) int {
	total := 0
	for _, it := range Overhead(opt) {
		total += it.Bits
	}
	return total
}

// OverheadKiB converts the budget to KiB as reported in Table II.
func OverheadKiB(opt Options) float64 {
	return float64(OverheadBits(opt)) / 8 / 1024
}

// OverheadTable renders the Table II breakdown.
func OverheadTable(opt Options) string {
	var b strings.Builder
	total := 0
	for _, it := range Overhead(opt) {
		fmt.Fprintf(&b, "%-36s %6d bits\n", it.Name, it.Bits)
		total += it.Bits
	}
	fmt.Fprintf(&b, "%-36s %6d bits = %.2f KiB\n", "Total", total, float64(total)/8/1024)
	return b.String()
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

package svr

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/trace"
)

// monitor implements the usefulness check of §IV-A7: prefetch tags in the
// cache track first-use and eviction-before-use of SVR-fetched lines;
// after a 100-event warmup, accuracy below 50% bans all loads from
// triggering SVR. The ban lifts at the next million-instruction boundary
// to give SVR another chance.
type monitor struct {
	banned      bool
	baseUsed    int64
	baseEvicted int64
	nextRecheck uint64
	lastTickSeq uint64
}

// tick polls the prefetch tracker. Called per instruction but the stats
// read is cheap (two int64 loads). at is the issue cycle, stamped onto
// ban events so they land on the timeline.
func (m *monitor) tick(seq uint64, at int64, e *Engine) {
	st := e.H.Tracker.Stats[cache.OriginSVR]
	if m.banned {
		if seq >= m.nextRecheck {
			m.banned = false
			m.baseUsed, m.baseEvicted = st.Used, st.EvictedUnused
		}
		return
	}
	used := st.Used - m.baseUsed
	evicted := st.EvictedUnused - m.baseEvicted
	if used+evicted < e.Opt.AccuracyWarmup {
		return
	}
	acc := float64(used) / float64(used+evicted)
	if acc < e.Opt.AccuracyMin {
		m.banned = true
		e.Stats.Bans++
		if e.Tracer != nil {
			e.Tracer.Emit(trace.Event{Kind: trace.KindBan, Seq: seq, Cycle: at,
				Text: fmt.Sprintf("accuracy %.2f < %.2f: SVR banned", acc, e.Opt.AccuracyMin)})
		}
		interval := e.Opt.AccuracyRecheck
		if interval == 0 {
			interval = 1_000_000
		}
		m.nextRecheck = (seq/interval + 1) * interval
		if e.inPRM {
			e.terminate(at)
		}
	}
	// Slide the window so accuracy is evaluated over recent behaviour.
	m.baseUsed, m.baseEvicted = st.Used, st.EvictedUnused
	m.lastTickSeq = seq
}

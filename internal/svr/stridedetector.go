package svr

// SDEntry is one stride-detector entry (Fig 6): a reference-prediction-
// table row extended with waiting-mode bounds, the Seen bit for nested-
// loop detection, last-indirect-load tracking, and the per-PC iteration
// counter feeding the EWMA loop-bound predictor.
type SDEntry struct {
	PC       int
	Valid    bool
	PrevAddr uint64
	Stride   int64
	Conf     int // 2-bit saturating confidence

	// Waiting mode (§IV-A5): no new PRM round while the observed address
	// stays inside [WaitLo, WaitHi].
	Waiting        bool
	WaitLo, WaitHi uint64

	// Seen marks that this striding load was observed since the last
	// visit to the HSLR load (§IV-A6).
	Seen bool

	// LIL: round offset (in dynamic instructions from the head striding
	// load) of the final dependent load in the chain, with a 2-bit
	// confidence counter. SVI generation stops past this offset.
	LIL     uint16
	LILConf int

	// Iteration counts consecutive same-stride observations; EWMA tracks
	// their moving average (§IV-B2).
	Iteration int
	EWMA      float64
}

// StrideDetector is the PC-indexed reference prediction table.
type StrideDetector struct {
	entries []SDEntry
}

// NewStrideDetector builds a direct-mapped table with n entries.
func NewStrideDetector(n int) *StrideDetector {
	return &StrideDetector{entries: make([]SDEntry, n)}
}

// Lookup returns the entry for pc if it is currently tracked.
func (s *StrideDetector) Lookup(pc int) *SDEntry {
	e := &s.entries[pc%len(s.entries)]
	if e.Valid && e.PC == pc {
		return e
	}
	return nil
}

// ObserveOutcome classifies an address observation.
type ObserveOutcome int

// Observation outcomes.
const (
	// ObserveNew: the entry was (re)allocated; no stride known yet.
	ObserveNew ObserveOutcome = iota
	// ObserveContinuing: address matched PrevAddr+Stride.
	ObserveContinuing
	// ObserveDiscontinuity: address broke the learned stride.
	ObserveDiscontinuity
	// ObserveTraining: stride still building confidence.
	ObserveTraining
)

// Observe updates the table for a dynamic load at pc touching addr and
// returns the entry plus what happened. A discontinuity resets the
// Iteration counter; the caller (engine) updates the EWMA and tournament
// state first via the returned outcome.
func (s *StrideDetector) Observe(pc int, addr uint64) (*SDEntry, ObserveOutcome) {
	e := &s.entries[pc%len(s.entries)]
	if !e.Valid || e.PC != pc {
		*e = SDEntry{PC: pc, Valid: true, PrevAddr: addr}
		return e, ObserveNew
	}
	stride := int64(addr) - int64(e.PrevAddr)
	out := ObserveTraining
	switch {
	case stride == e.Stride && stride != 0:
		if e.Conf < 3 {
			e.Conf++
		}
		e.Iteration++
		out = ObserveContinuing
	case stride == 0:
		// Same address repeated: not a stride pattern; leave state.
		out = ObserveTraining
	default:
		if e.Conf > 0 {
			out = ObserveDiscontinuity
		}
		e.Stride = stride
		e.Conf = 0
	}
	e.PrevAddr = addr
	return e, out
}

// Striding reports whether the entry has a confident non-zero stride.
func (e *SDEntry) Striding(confMin int) bool {
	return e != nil && e.Conf >= confMin && e.Stride != 0
}

// InWaitRange reports whether addr falls inside the waiting-mode range.
func (e *SDEntry) InWaitRange(addr uint64) bool {
	return e.Waiting && addr >= e.WaitLo && addr <= e.WaitHi
}

// SetWaitRange enters waiting mode covering the prefetched span
// [from, to] (normalized for negative strides).
func (e *SDEntry) SetWaitRange(from, to uint64) {
	if from > to {
		from, to = to, from
	}
	e.Waiting, e.WaitLo, e.WaitHi = true, from, to
}

// UpdateEWMA folds the current Iteration count into the moving average
// using the paper's formula (7/8 old + 1/8 new) and resets the counter.
func (e *SDEntry) UpdateEWMA() {
	e.EWMA = 7*e.EWMA/8 + float64(e.Iteration)/8
	e.Iteration = 0
}

// ClearSeenExcept clears every Seen bit except the entry at keepPC
// (keepPC < 0 clears all).
func (s *StrideDetector) ClearSeenExcept(keepPC int) {
	for i := range s.entries {
		if s.entries[i].Valid && s.entries[i].PC != keepPC {
			s.entries[i].Seen = false
		}
	}
}

package svr

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// TestTimeoutTerminatesLongRounds: a chain whose loop body exceeds 256
// instructions between head-load instances must end rounds by timeout.
func TestTimeoutTerminatesLongRounds(t *testing.T) {
	m := mem.New()
	idx := m.NewArray(1<<14, 4)
	data := m.NewArray(1<<16, 8)
	for i := uint64(0); i < idx.N; i++ {
		idx.Set(i, (i*2654435761)%data.N)
	}
	b := isa.NewBuilder("long")
	rIdx, rData, rI, rA, rV, rSum := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4) // striding head
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	// 300 filler instructions: the next head instance is past the
	// 256-instruction PRM timeout.
	for k := 0; k < 300; k++ {
		b.AddI(rSum, rSum, 1)
	}
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<12)
	b.BLT("loop")
	b.Halt()

	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<20)
	if eng.Stats.Timeouts == 0 {
		t.Errorf("no timeouts on a 300-instruction loop body: %+v", eng.Stats)
	}
}

// TestUntaintedCompareClearsSpeculativeFlags: a compare on untainted
// registers inside PRM must drop vectorized flags so later branches do
// not mask lanes on stale state.
func TestUntaintedCompareClearsSpeculativeFlags(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	cpu := emu.New(isa.NewBuilder("x").Build(), mem.New())
	eng := New(DefaultOptions(), h, cpu)
	var seq uint64
	for i := uint64(0); i < 4; i++ {
		driveLoad(eng, &seq, 10, 0x10000+i*4)
	}
	if !eng.InPRM() {
		t.Fatal("PRM not entered")
	}
	// Tainted compare: the head load's destination is r6.
	rec := &emu.DynInstr{Seq: seq, PC: 11, Instr: isa.Instr{Op: isa.OpCmpI, Ra: 6, Imm: 5}}
	seq++
	eng.OnIssue(rec, 10, cache.LevelL1)
	if !eng.flagsVec {
		t.Fatal("tainted compare did not vectorize flags")
	}
	// Untainted compare overwrites the flags.
	rec = &emu.DynInstr{Seq: seq, PC: 12, Instr: isa.Instr{Op: isa.OpCmpI, Ra: 2, Imm: 5}}
	eng.OnIssue(rec, 11, cache.LevelL1)
	if eng.flagsVec {
		t.Error("untainted compare left speculative flags live")
	}
}

// TestBanAbortsActiveRound: when the accuracy monitor bans SVR mid-round,
// the round must terminate immediately.
func TestBanAbortsActiveRound(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultConfig())
	cpu := emu.New(isa.NewBuilder("x").Build(), mem.New())
	opt := DefaultOptions()
	opt.AccuracyWarmup = 4
	eng := New(opt, h, cpu)
	var seq uint64
	for i := uint64(0); i < 4; i++ {
		driveLoad(eng, &seq, 10, 0x10000+i*4)
	}
	if !eng.InPRM() {
		t.Fatal("PRM not entered")
	}
	// Poison the tracker: plenty of unused evictions.
	for i := 0; i < 10; i++ {
		h.Tracker.Mark(uint64(0x900000+i*64), cache.OriginSVR)
		h.Tracker.Evict(uint64(0x900000 + i*64))
	}
	driveLoad(eng, &seq, 10, 0x20000) // next tick evaluates the monitor
	if !eng.Banned() {
		t.Fatal("monitor did not ban")
	}
	if eng.InPRM() {
		t.Error("ban left the round running")
	}
}

// TestEngineTracerEmitsRoundEvents: PRM entry/exit and SVI events reach
// an attached tracer.
func TestEngineTracerEmitsRoundEvents(t *testing.T) {
	m, idx, data := setupSI()
	p := buildStrideIndirect(idx, data, 1<<10)
	hcfg := cache.DefaultConfig()
	h := cache.NewHierarchy(hcfg)
	cpu := emu.New(p, m)
	opt := DefaultOptions()
	eng := New(opt, h, cpu)
	ring := trace.NewRing(256)
	eng.Tracer = ring

	// Drive through the emulator only (engine needs OnIssue calls).
	var rec emu.DynInstr
	at := int64(0)
	for i := 0; i < 20000 && cpu.Step(&rec); i++ {
		eng.OnIssue(&rec, at, cache.LevelL1)
		at++
	}
	var enters, exits, svis int
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case trace.KindPRMEnter:
			enters++
		case trace.KindPRMExit:
			exits++
		case trace.KindSVI:
			svis++
		}
	}
	if enters == 0 || exits == 0 || svis == 0 {
		t.Errorf("trace events: enter=%d exit=%d svi=%d", enters, exits, svis)
	}
}

// TestStoreSVIPrefetchesForOwnership: transient stores prefetch their
// target line but never write memory.
func TestStoreSVIPrefetchesForOwnership(t *testing.T) {
	m := mem.New()
	idx := m.NewArray(1<<14, 4)
	out := m.NewArray(1<<17, 8)
	for i := uint64(0); i < idx.N; i++ {
		idx.Set(i, (i*2654435761)%out.N)
	}
	// Scatter kernel: out[idx[i]] = i (store-only indirect chain).
	b := isa.NewBuilder("scatter")
	rIdx, rOut, rI, rA, rV := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rOut, int64(out.Base))
	b.LoadImm(rI, 0)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4) // striding
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rOut)
	b.Store(rI, rV, 0, 8) // indirect store
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<12)
	b.BLT("loop")
	b.Halt()

	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<20)
	if eng.H.DRAMLoads[cache.OriginSVR] == 0 {
		t.Error("store chain issued no RFO prefetches")
	}
	// Functional state must be exactly the scatter's result: only values
	// the real stores wrote, never transient lane data.
	for i := uint64(0); i < out.N; i++ {
		v := out.GetI(i)
		if v != 0 && (v < 0 || v >= 1<<12) {
			t.Fatalf("out[%d] = %d: transient store leaked?", i, v)
		}
	}
}

// TestSRFOverheadScalesWithK: Table II SRF term grows linearly in K.
func TestSRFOverheadScalesWithK(t *testing.T) {
	a := DefaultOptions()
	a.SRFRegs = 4
	b := DefaultOptions()
	b.SRFRegs = 8
	diff := OverheadBits(b) - OverheadBits(a)
	if want := 4 * 16 * 64; diff < want {
		t.Errorf("K 4->8 grew %d bits, want >= %d (SRF lanes)", diff, want)
	}
}

// TestReturnCounterGating: the faithful all-lanes gating (§IV-A4's
// scoreboard return counter) can never be faster than idealized per-lane
// forwarding.
func TestReturnCounterGating(t *testing.T) {
	run := func(perLane bool) int64 {
		m, idx, data := setupSI()
		opt := DefaultOptions()
		opt.PerLaneForwarding = perLane
		core, _ := runWith(t, buildStrideIndirect(idx, data, 1<<12), m, &opt, 1<<21)
		return core.Cycles()
	}
	strict, ideal := run(false), run(true)
	if ideal > strict {
		t.Errorf("per-lane forwarding (%d cyc) slower than all-lane gating (%d cyc)",
			ideal, strict)
	}
}

package svr

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Stats aggregates engine activity for tests, the energy model and the
// evaluation harness.
type Stats struct {
	Rounds       int64 // PRM rounds entered
	SVIs         int64 // scalar-vector instructions generated
	Scalars      int64 // transient scalar copies issued
	Timeouts     int64 // rounds ended by the 256-instruction timeout
	NestedAborts int64 // PRM aborts due to inner-loop detection
	Retargets    int64 // HSLR retargets (independent loops / new phases)
	ChainStarts  int64 // extra chains started inside a round (unrolled)
	MaskedLanes  int64 // lanes masked off by control-flow divergence
	Bans         int64 // times the accuracy monitor disabled SVR
	SkippedLIL   int64 // SVIs suppressed past the last indirect load
	HeadLIL      int64 // rounds that recorded the head itself as LIL
	PredZero     int64 // rounds skipped because the predictor said 0
}

// Add returns the field-wise sum s + o, for aggregating the stats of
// multiple measurement windows.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Rounds:       s.Rounds + o.Rounds,
		SVIs:         s.SVIs + o.SVIs,
		Scalars:      s.Scalars + o.Scalars,
		Timeouts:     s.Timeouts + o.Timeouts,
		NestedAborts: s.NestedAborts + o.NestedAborts,
		Retargets:    s.Retargets + o.Retargets,
		ChainStarts:  s.ChainStarts + o.ChainStarts,
		MaskedLanes:  s.MaskedLanes + o.MaskedLanes,
		Bans:         s.Bans + o.Bans,
		SkippedLIL:   s.SkippedLIL + o.SkippedLIL,
		HeadLIL:      s.HeadLIL + o.HeadLIL,
		PredZero:     s.PredZero + o.PredZero,
	}
}

// Engine is the SVR microarchitecture state. It implements
// inorder.Companion.
type Engine struct {
	Opt Options
	H   *cache.Hierarchy
	// Arch is the architectural state the engine scavenges values from:
	// the live emulator in lockstep cells, or a replay-backed view
	// (stream.ReplaySource, stream.ArchView) in replayed cells. Both
	// expose identical post-retire values, so the engine is agnostic.
	Arch   stream.ArchState
	Tracer trace.Tracer // optional runahead event tracing

	SD *StrideDetector
	RF *RegFile
	LB *LoopBound
	LC LastCompare

	// Piggyback-runahead round state.
	inPRM         bool
	hslrPC        int // persists across rounds; -1 when unset
	mask          []bool
	prmInstr      int
	headStartAddr uint64
	headLP        uint64
	lilOffset     int  // round offset of the last vectorized dependent load
	sawDepLoad    bool // a tainted load occurred this round (even if suppressed)
	stopSVI       bool

	// Speculative flags state for vectorized compares.
	flagsVec   bool
	laneFlags  []int
	laneFValid []bool
	laneFReady []int64

	mon monitor

	scratchA, scratchB []laneOp

	Stats Stats

	fillDist *metrics.Histogram // SVI lane issue-to-fill distance
}

// New builds an engine attached to the given hierarchy and
// architectural-state view (a live emu.CPU, or a replay-backed view).
// Options are normalized (see Options.Normalize).
func New(opt Options, h *cache.Hierarchy, arch stream.ArchState) *Engine {
	opt = opt.Normalize()
	e := &Engine{
		Opt:        opt,
		H:          h,
		Arch:       arch,
		SD:         NewStrideDetector(opt.SDEntries),
		RF:         NewRegFile(opt.SRFRegs, opt.VectorLen, opt.Recycle),
		LB:         NewLoopBound(opt.LBDSize),
		hslrPC:     -1,
		mask:       make([]bool, opt.VectorLen),
		laneFlags:  make([]int, opt.VectorLen),
		laneFValid: make([]bool, opt.VectorLen),
		laneFReady: make([]int64, opt.VectorLen),
		scratchA:   make([]laneOp, opt.VectorLen),
		scratchB:   make([]laneOp, opt.VectorLen),
	}
	e.register(h.Reg)
	return e
}

// register publishes the engine's activity counters and hooks the
// accuracy monitor's re-baseline into the registry reset: at a window
// boundary the monitor must re-read the (just-zeroed) prefetch tracker
// stats, or the first tick of the new window would see a huge negative
// delta. The ban state itself persists across resets, as before.
func (e *Engine) register(r *metrics.Registry) {
	r.Int64("svr.rounds", "PRM rounds entered", &e.Stats.Rounds)
	r.Int64("svr.svis", "scalar-vector instructions generated", &e.Stats.SVIs)
	r.Int64("svr.scalars", "transient scalar copies issued", &e.Stats.Scalars)
	r.Int64("svr.timeouts", "rounds ended by the instruction timeout", &e.Stats.Timeouts)
	r.Int64("svr.nested_aborts", "PRM aborts due to inner-loop detection", &e.Stats.NestedAborts)
	r.Int64("svr.retargets", "HSLR retargets", &e.Stats.Retargets)
	r.Int64("svr.chain_starts", "extra chains started inside a round", &e.Stats.ChainStarts)
	r.Int64("svr.masked_lanes", "lanes masked off by control-flow divergence", &e.Stats.MaskedLanes)
	r.Int64("svr.bans", "times the accuracy monitor disabled SVR", &e.Stats.Bans)
	r.Int64("svr.skipped_lil", "SVIs suppressed past the last indirect load", &e.Stats.SkippedLIL)
	r.Int64("svr.head_lil", "rounds that recorded the head itself as LIL", &e.Stats.HeadLIL)
	r.Int64("svr.pred_zero", "rounds skipped because the predictor said 0", &e.Stats.PredZero)
	r.GaugeFunc("svr.banned", "accuracy-monitor ban state (1 = SVR disabled)", func() int64 {
		if e.mon.banned {
			return 1
		}
		return 0
	})
	e.fillDist = r.NewHistogram("lat.svr.fill", "SVI lane issue-to-fill distance (cycles)")
	r.OnReset(func() {
		st := e.H.Tracker.Stats[cache.OriginSVR]
		e.mon.baseUsed, e.mon.baseEvicted = st.Used, st.EvictedUnused
	})
}

// Banned reports whether the accuracy monitor currently disables SVR.
func (e *Engine) Banned() bool { return e.mon.banned }

// InPRM reports whether a piggyback-runahead round is active (tests).
func (e *Engine) InPRM() bool { return e.inPRM }

// slotsFor converts a number of transient scalars into consumed issue
// slots, honoring the Fig 16 scalars-per-slot knob.
func (e *Engine) slotsFor(scalars int) int64 {
	if scalars == 0 {
		return 0
	}
	sps := e.Opt.ScalarsPerSlot
	if sps < 1 {
		sps = 1
	}
	return int64((scalars + sps - 1) / sps)
}

// laneStart returns the cycle lane k of an SVI can begin, given the SVI
// started issuing at issueAt: lanes stream through the issue stage at
// Width*ScalarsPerSlot per cycle.
func (e *Engine) laneStart(issueAt int64, k int) int64 {
	perCycle := e.Opt.Width * e.Opt.ScalarsPerSlot
	if perCycle < 1 {
		perCycle = 1
	}
	return issueAt + int64(k/perCycle)
}

// OnIssue is the Companion hook: called by the in-order core after every
// issued instruction.
func (e *Engine) OnIssue(rec *emu.DynInstr, issueAt int64, _ cache.Level) int64 {
	if e.Opt.MonitorAccuracy {
		e.mon.tick(rec.Seq, issueAt, e)
	}

	if e.inPRM {
		e.prmInstr++
		if e.prmInstr > e.Opt.PRMTimeout {
			e.Stats.Timeouts++
			e.terminate(issueAt)
		} else if !e.stopSVI {
			// LIL (§IV-A4): past the learned offset of the final
			// dependent load in the chain, stop generating SVIs — the
			// tail of the iteration computes on fetched data and has
			// nothing left to prefetch.
			if sd := e.SD.Lookup(e.hslrPC); sd != nil && sd.LILConf >= 2 &&
				e.prmInstr > int(sd.LIL) {
				e.stopSVI = true
			}
		}
	}

	switch rec.Instr.Kind() {
	case isa.KindLoad:
		return e.onLoad(rec, issueAt)
	case isa.KindStore:
		if e.inPRM {
			return e.genSVI(rec, issueAt)
		}
	case isa.KindCmp:
		e.onCmp(rec, issueAt)
	case isa.KindBranch:
		return e.onBranch(rec, issueAt)
	default:
		if e.inPRM {
			return e.genSVI(rec, issueAt)
		}
		// Outside PRM the taint tracker is clear; nothing to do.
	}
	return 0
}

// onCmp records the LC register and, inside PRM, vectorizes tainted
// compares into per-lane flags.
func (e *Engine) onCmp(rec *emu.DynInstr, issueAt int64) {
	in := rec.Instr
	e.LC = LastCompare{
		Valid: true, PC: rec.PC,
		ValA: rec.SrcA, ValB: rec.SrcB,
		RegA: in.Ra, RegB: in.Rb,
		BImm: in.Op == isa.OpCmpI,
	}
	if !e.inPRM {
		return
	}
	aVec, aOK := e.RF.SourceVector(in.Ra, e.prmInstr)
	var bVec *SRFReg
	bOK := false
	if in.Op == isa.OpCmp {
		bVec, bOK = e.RF.SourceVector(in.Rb, e.prmInstr)
	}
	if !aOK && !bOK {
		// Untainted compare overwrites the speculative flags.
		if e.RF.TaintedUnmapped(in.Ra) || (in.Op == isa.OpCmp && e.RF.TaintedUnmapped(in.Rb)) {
			e.flagsVec = false
			return
		}
		e.flagsVec = false
		return
	}
	if e.stopSVI {
		e.flagsVec = false
		return
	}
	// Vectorize the compare into lane flags.
	e.flagsVec = true
	for i := 0; i < e.Opt.VectorLen; i++ {
		e.laneFValid[i] = false
		if !e.mask[i] {
			continue
		}
		a, aReady, ok := laneOperand(aVec, aOK, rec.SrcA, i)
		if !ok {
			continue
		}
		b := rec.SrcB
		var bReady int64
		if in.Op == isa.OpCmp {
			var okB bool
			b, bReady, okB = laneOperand(bVec, bOK, rec.SrcB, i)
			if !okB {
				continue
			}
		}
		e.laneFlags[i] = emu.CmpSign(a, b)
		e.laneFValid[i] = true
		e.laneFReady[i] = max(aReady, bReady)
	}
	e.Stats.SVIs++
}

// onBranch trains the LBD on backwards conditional-taken branches and
// applies control-flow divergence masking (§IV-B1) for vectorized flags.
func (e *Engine) onBranch(rec *emu.DynInstr, issueAt int64) int64 {
	in := rec.Instr
	// LBD training: a taken branch backwards to (or before) the HSLR
	// load indicates the loop bound compare.
	if rec.Taken && int(in.Imm) <= rec.PC && e.hslrPC >= 0 && int(in.Imm) <= e.hslrPC {
		e.LB.Entry(e.hslrPC).Train(e.LC)
	}
	if !e.inPRM || !e.flagsVec {
		return 0
	}
	// Divergence masking: lanes that would take a different path from
	// the real instruction stream are disabled for the rest of the round.
	scalars := 0
	for i := 0; i < e.Opt.VectorLen; i++ {
		if !e.mask[i] {
			continue
		}
		scalars++
		if !e.laneFValid[i] {
			e.mask[i] = false
			e.Stats.MaskedLanes++
			continue
		}
		if emu.BranchTaken(in.Op, e.laneFlags[i]) != rec.Taken {
			e.mask[i] = false
			e.Stats.MaskedLanes++
		}
	}
	e.Stats.SVIs++
	e.Stats.Scalars += int64(scalars)
	if e.Tracer != nil {
		active := 0
		for _, m := range e.mask {
			if m {
				active++
			}
		}
		e.Tracer.Emit(trace.Event{Kind: trace.KindMask, Seq: rec.Seq, PC: rec.PC,
			Cycle: issueAt,
			Text:  fmt.Sprintf("taken=%v lanes-live=%d", rec.Taken, active), Arg: int64(active)})
	}
	return e.slotsFor(scalars)
}

// onLoad is the core of SVR: stride detection, PRM entry/termination,
// multiple-chain handling and dependent-load vectorization.
func (e *Engine) onLoad(rec *emu.DynInstr, issueAt int64) int64 {
	in := rec.Instr
	sd, outcome := e.SD.Observe(rec.PC, rec.Addr)

	switch outcome {
	case ObserveDiscontinuity:
		if lb := e.LB.Lookup(rec.PC); lb != nil {
			lb.ScoreTournament(sd.Iteration)
		}
		sd.UpdateEWMA()
	case ObserveContinuing:
		if sd.Iteration >= e.Opt.EWMACap {
			sd.UpdateEWMA()
		}
	}

	// Dependent (indirect) load inside a chain takes precedence over
	// stride handling: its base register is tainted.
	if e.inPRM {
		if _, ok := e.RF.SourceVector(in.Ra, e.prmInstr); ok || e.RF.TaintedUnmapped(in.Ra) {
			return e.genSVI(rec, issueAt)
		}
	}

	if !sd.Striding(e.Opt.StrideConfMin) {
		return 0
	}

	if e.inPRM {
		if rec.PC == e.hslrPC {
			// One full iteration of the chain: terminate, wait.
			e.terminate(issueAt)
			e.SD.ClearSeenExcept(rec.PC)
			return 0
		}
		if sd.InWaitRange(rec.Addr) {
			return 0
		}
		if !sd.Seen {
			// Unrolled / sibling chain: vectorize it too.
			sd.Seen = true
			e.Stats.ChainStarts++
			return e.startChain(rec, sd, issueAt)
		}
		// Seen twice without revisiting the HSLR: inner loop. Abort and
		// retarget to the inner striding load.
		e.Stats.NestedAborts++
		if e.Tracer != nil {
			e.Tracer.Emit(trace.Event{Kind: trace.KindRetarget, Seq: rec.Seq, PC: rec.PC,
				Cycle: issueAt,
				Text:  fmt.Sprintf("nested abort: HSLR %d -> %d", e.hslrPC, rec.PC)})
		}
		e.abortRound()
		e.hslrPC = rec.PC
		e.SD.ClearSeenExcept(rec.PC)
		return e.enterPRM(rec, sd, issueAt)
	}

	// Normal or waiting mode.
	if rec.PC == e.hslrPC || e.hslrPC < 0 {
		e.SD.ClearSeenExcept(rec.PC)
		e.hslrPC = rec.PC
		if e.mon.banned || sd.InWaitRange(rec.Addr) {
			return 0
		}
		sd.Waiting = false
		return e.enterPRM(rec, sd, issueAt)
	}
	if sd.InWaitRange(rec.Addr) {
		return 0
	}
	if !sd.Seen {
		sd.Seen = true
		return 0
	}
	// Second sighting without passing the HSLR: retarget (independent
	// loop or new program phase).
	e.Stats.Retargets++
	if e.Tracer != nil {
		e.Tracer.Emit(trace.Event{Kind: trace.KindRetarget, Seq: rec.Seq, PC: rec.PC,
			Cycle: issueAt,
			Text:  fmt.Sprintf("retarget: HSLR %d -> %d", e.hslrPC, rec.PC)})
	}
	e.hslrPC = rec.PC
	e.SD.ClearSeenExcept(rec.PC)
	if e.mon.banned {
		return 0
	}
	sd.Waiting = false
	return e.enterPRM(rec, sd, issueAt)
}

// enterPRM begins a round of piggyback runahead headed by the striding
// load in rec.
func (e *Engine) enterPRM(rec *emu.DynInstr, sd *SDEntry, issueAt int64) int64 {
	lanes := e.predictLanes(sd)
	if lanes <= 0 {
		e.Stats.PredZero++
		return 0
	}
	if lanes > e.Opt.VectorLen {
		lanes = e.Opt.VectorLen
	}
	e.inPRM = true
	e.prmInstr = 0
	e.stopSVI = false
	e.sawDepLoad = false
	e.lilOffset = -1
	e.flagsVec = false
	e.RF.Reset()
	for i := range e.mask {
		e.mask[i] = i < lanes
	}
	e.headStartAddr = rec.Addr
	e.Stats.Rounds++
	if e.Tracer != nil {
		e.Tracer.Emit(trace.Event{Kind: trace.KindPRMEnter, Seq: rec.Seq, PC: rec.PC,
			Cycle: issueAt,
			Text:  fmt.Sprintf("head=%d lanes=%d stride=%d", rec.PC, lanes, sd.Stride),
			Arg:   int64(lanes)})
	}

	slots := e.Opt.RegCopyCycles * int64(e.Opt.Width) // DVR-checkpoint ablation
	slots += e.vectorizeHead(rec, sd, issueAt, true)
	return slots
}

// startChain vectorizes an additional striding load inside an existing
// round (unrolled loops).
func (e *Engine) startChain(rec *emu.DynInstr, sd *SDEntry, issueAt int64) int64 {
	return e.vectorizeHead(rec, sd, issueAt, false)
}

// vectorizeHead issues the SVI for a striding load: lanes i cover the
// next i+1 iterations along the stride.
func (e *Engine) vectorizeHead(rec *emu.DynInstr, sd *SDEntry, issueAt int64, isHSLR bool) int64 {
	in := rec.Instr
	srf, ok := e.RF.MapDest(in.Rd, e.prmInstr)
	if !ok {
		return 0
	}
	scalars := 0
	last := rec.Addr
	for i := 0; i < e.Opt.VectorLen; i++ {
		srf.Lanes[i].Valid = false
		if !e.mask[i] {
			continue
		}
		addr := rec.Addr + uint64((int64(i)+1)*sd.Stride)
		start := e.laneStart(issueAt, scalars)
		res := e.H.Prefetch(addr, start, cache.OriginSVR)
		if e.fillDist != nil {
			e.fillDist.Observe(res.CompleteAt - start)
		}
		srf.Lanes[i] = Lane{
			Val:   loadValue(e, addr, in.Size),
			Ready: res.CompleteAt,
			Valid: true,
		}
		last = addr
		scalars++
	}
	if e.Opt.WaitingMode {
		sd.SetWaitRange(rec.Addr, last)
	}
	if isHSLR {
		e.headLP = last
	}
	e.Stats.SVIs++
	e.Stats.Scalars += int64(scalars)
	e.traceSVI(rec, issueAt, scalars)
	return e.slotsFor(scalars)
}

// genSVI vectorizes a dependent instruction whose inputs are tainted.
// It also maintains taint hygiene for untainted writes.
func (e *Engine) genSVI(rec *emu.DynInstr, issueAt int64) int64 {
	in := rec.Instr
	var srcBuf [2]isa.Reg
	srcs := in.SrcRegs(srcBuf[:0])

	anyTaint, anyUnmapped := false, false
	for _, r := range srcs {
		t := &e.RF.TT[r]
		if t.Tainted {
			anyTaint = true
			if !t.Mapped {
				anyUnmapped = true
			}
		}
	}
	rd, writes := in.WritesReg()

	if !anyTaint {
		// Not part of the chain: an overwrite kills any stale mapping.
		if writes {
			e.RF.Invalidate(rd)
		}
		return 0
	}
	if in.Kind() == isa.KindLoad {
		e.sawDepLoad = true
	}
	if anyUnmapped || e.stopSVI {
		if e.stopSVI && in.Kind() == isa.KindLoad {
			// A tainted load appearing past the recorded last-indirect-
			// load offset: the LIL is unstable (§IV-A4 footnote), e.g.
			// the round spans a variable-length inner loop. Confidence
			// decays until suppression disengages.
			if sd := e.SD.Lookup(e.hslrPC); sd != nil && sd.LILConf > 0 {
				sd.LILConf--
			}
			e.Stats.SkippedLIL++
		}
		// Cannot vectorize: the destination becomes tainted-unmapped so
		// consumers are blocked too.
		if writes {
			e.RF.Invalidate(rd)
			e.RF.TT[rd] = TTEntry{Tainted: true, Mapped: false}
		}
		return 0
	}

	// Snapshot per-lane operands BEFORE securing the destination: the
	// destination often aliases a source (e.g. shl rV, rV, 3), and
	// MapDest may also recycle a source's SRF entry.
	aVec, aOK := e.RF.SourceVector(in.Ra, e.prmInstr)
	var bVec *SRFReg
	bOK := false
	if len(srcs) == 2 {
		bVec, bOK = e.RF.SourceVector(in.Rb, e.prmInstr)
	}
	aOps := e.scratchA[:e.Opt.VectorLen]
	bOps := e.scratchB[:e.Opt.VectorLen]
	for i := 0; i < e.Opt.VectorLen; i++ {
		aOps[i].val, aOps[i].ready, aOps[i].ok = laneOperand(aVec, aOK, rec.SrcA, i)
		if len(srcs) == 2 {
			bOps[i].val, bOps[i].ready, bOps[i].ok = laneOperand(bVec, bOK, rec.SrcB, i)
		} else {
			bOps[i] = laneOp{val: rec.SrcB, ok: true}
		}
	}
	if !e.Opt.PerLaneForwarding {
		// Scoreboard return counter (§IV-A4): a dependent SVI issues
		// only once ALL scalars of its producer completed, so every lane
		// sees the slowest source lane's ready time.
		var allReady int64
		for i := 0; i < e.Opt.VectorLen; i++ {
			if aOps[i].ok && aOps[i].ready > allReady {
				allReady = aOps[i].ready
			}
			if bOps[i].ok && bOps[i].ready > allReady {
				allReady = bOps[i].ready
			}
		}
		for i := 0; i < e.Opt.VectorLen; i++ {
			aOps[i].ready = allReady
			bOps[i].ready = allReady
		}
	}

	switch in.Kind() {
	case isa.KindStore:
		// Transient stores never write memory; prefetch the target line
		// for ownership instead. Base register is Ra.
		scalars := 0
		for i := 0; i < e.Opt.VectorLen; i++ {
			if !e.mask[i] || !aOps[i].ok {
				continue
			}
			addr := uint64(aOps[i].val + in.Imm)
			e.H.Prefetch(addr, max(e.laneStart(issueAt, scalars), aOps[i].ready), cache.OriginSVR)
			scalars++
		}
		e.Stats.SVIs++
		e.Stats.Scalars += int64(scalars)
		e.traceSVI(rec, issueAt, scalars)
		return e.slotsFor(scalars)

	case isa.KindLoad:
		srf, ok := e.RF.MapDest(in.Rd, e.prmInstr)
		if !ok {
			return 0
		}
		e.lilOffset = e.prmInstr
		scalars := 0
		for i := 0; i < e.Opt.VectorLen; i++ {
			srf.Lanes[i].Valid = false
			if !e.mask[i] || !aOps[i].ok {
				continue
			}
			addr := uint64(aOps[i].val + in.Imm)
			start := max(e.laneStart(issueAt, scalars), aOps[i].ready)
			res := e.H.Prefetch(addr, start, cache.OriginSVR)
			if e.fillDist != nil {
				e.fillDist.Observe(res.CompleteAt - start)
			}
			srf.Lanes[i] = Lane{Val: loadValue(e, addr, in.Size), Ready: res.CompleteAt, Valid: true}
			scalars++
		}
		e.Stats.SVIs++
		e.Stats.Scalars += int64(scalars)
		e.traceSVI(rec, issueAt, scalars)
		return e.slotsFor(scalars)

	default:
		// ALU / FP / immediate op with at least one vector input.
		srf, ok := e.RF.MapDest(rd, e.prmInstr)
		if !ok {
			return 0
		}
		scalars := 0
		for i := 0; i < e.Opt.VectorLen; i++ {
			srf.Lanes[i].Valid = false
			if !e.mask[i] || !aOps[i].ok || !bOps[i].ok {
				continue
			}
			v, pure := emu.EvalALU(in.Op, aOps[i].val, bOps[i].val, in.Imm)
			if !pure {
				continue
			}
			start := max(e.laneStart(issueAt, scalars), max(aOps[i].ready, bOps[i].ready))
			srf.Lanes[i] = Lane{Val: v, Ready: start + aluLatency(in.Kind()), Valid: true}
			scalars++
		}
		e.Stats.SVIs++
		e.Stats.Scalars += int64(scalars)
		e.traceSVI(rec, issueAt, scalars)
		return e.slotsFor(scalars)
	}
}

// aluLatency gives the per-lane execute latency of a transient scalar on
// the shared functional units (matches the main pipeline's latencies).
func aluLatency(k isa.Kind) int64 {
	switch k {
	case isa.KindMul:
		return 3
	case isa.KindDiv:
		return 12
	case isa.KindFPU:
		return 4
	default:
		return 1
	}
}

// laneOp is a snapshotted per-lane operand.
type laneOp struct {
	val   int64
	ready int64
	ok    bool
}

// traceSVI emits an SVI-generation event when tracing is enabled.
func (e *Engine) traceSVI(rec *emu.DynInstr, issueAt int64, scalars int) {
	if e.Tracer != nil && scalars > 0 {
		e.Tracer.Emit(trace.Event{Kind: trace.KindSVI, Seq: rec.Seq, PC: rec.PC,
			Cycle: issueAt,
			Text:  fmt.Sprintf("%s x%d", rec.Instr.String(), scalars), Arg: int64(scalars)})
	}
}

// laneOperand resolves one source operand for lane i: either the
// speculative vector lane or the shared main-thread scalar.
func laneOperand(vec *SRFReg, isVec bool, scalar int64, i int) (val, ready int64, ok bool) {
	if !isVec {
		return scalar, 0, true
	}
	l := vec.Lanes[i]
	if !l.Valid {
		return 0, 0, false
	}
	return l.Val, l.Ready, true
}

// loadValue functionally reads the speculative lane value from the
// architectural memory view (the hardware reads the same bytes out of
// the cache).
func loadValue(e *Engine, addr uint64, size uint8) int64 {
	return int64(e.Arch.ReadMem(addr, size))
}

// predictLanes chooses how many scalars to issue this round (§IV-B2).
func (e *Engine) predictLanes(sd *SDEntry) int {
	n := e.Opt.VectorLen
	lb := e.LB.Entry(sd.PC)

	ewmaPred := func() int {
		// min(EWMA - Iteration, N) when positive, else min(EWMA, N).
		rem := sd.EWMA - float64(sd.Iteration)
		if rem <= 0 {
			rem = sd.EWMA
		}
		if sd.EWMA == 0 {
			return n // no history yet: fetch full length
		}
		return clampLanes(rem, n)
	}
	lbdCV := func() (int, bool) {
		rem, ok := lb.PredictCV(e.Arch.Reg)
		if !ok {
			return 0, false
		}
		return clampLanes(rem, n), true
	}

	switch e.Opt.LoopBound {
	case Maxlength:
		return n
	case EWMAOnly:
		return ewmaPred()
	case LBDWait:
		// DVR Discovery-Mode policy: only predict from an LBD trained
		// this loop visit; otherwise do not runahead yet.
		if lb.FreshTrain {
			if rem, ok := lb.PredictStored(); ok {
				return clampLanes(rem, n)
			}
		}
		return 0
	case LBDMaxlength:
		if lb.FreshTrain {
			if rem, ok := lb.PredictStored(); ok {
				return clampLanes(rem, n)
			}
		}
		return n
	case LBDCV:
		if p, ok := lbdCV(); ok {
			return p
		}
		return n
	default: // Tournament
		ep := ewmaPred()
		lp, lok := lbdCV()
		lb.NotePredictions(float64(ep), float64(lp), sd.Iteration, lok)
		if lok && lb.Tournament >= 2 {
			return lp
		}
		return ep
	}
}

func clampLanes(rem float64, n int) int {
	if rem > float64(n) {
		return n
	}
	if rem < 0 {
		return 0
	}
	return int(rem)
}

// terminate ends the current PRM round: record waiting range and LIL,
// clear the taint tracker (§IV-A5).
func (e *Engine) terminate(at int64) {
	if !e.inPRM {
		return
	}
	if e.Tracer != nil {
		e.Tracer.Emit(trace.Event{Kind: trace.KindPRMExit, PC: e.hslrPC, Cycle: at,
			Text: fmt.Sprintf("head=%d instrs=%d", e.hslrPC, e.prmInstr)})
	}
	if sd := e.SD.Lookup(e.hslrPC); sd != nil {
		if e.Opt.WaitingMode {
			sd.SetWaitRange(e.headStartAddr, e.headLP)
		} else {
			sd.Waiting = false
		}
		// Record the round offset of the final dependent load. A round
		// with no dependent load at all records offset 0 (nothing past
		// the head is worth vectorizing — the SPEC case); a round whose
		// chain was merely suppressed must not update, or suppression
		// would confirm itself.
		off := e.lilOffset
		if off < 0 {
			if e.sawDepLoad {
				off = -1
			} else {
				off = 0
				e.Stats.HeadLIL++
			}
		}
		if off < 0 {
			e.abortRound()
			return
		}
		if off > 0xffff {
			off = 0xffff
		}
		lil := uint16(off)
		switch {
		case sd.LIL == lil:
			if sd.LILConf < 3 {
				sd.LILConf++
			}
		case sd.LILConf > 0:
			sd.LILConf--
		default:
			sd.LIL = lil
			sd.LILConf = 1
		}
	}
	e.abortRound()
}

// abortRound drops all transient state without touching waiting/LIL.
func (e *Engine) abortRound() {
	e.inPRM = false
	e.prmInstr = 0
	e.flagsVec = false
	e.stopSVI = false
	e.sawDepLoad = false
	e.RF.Reset()
}

// Package svr implements Scalar Vector Runahead — the paper's
// contribution. The Engine attaches to the in-order core as a Companion:
// on every issued instruction it updates the stride detector, and in
// piggyback runahead mode (PRM) it generates up to N transient scalar
// copies (a scalar-vector instruction, SVI) of each instruction in the
// indirect chain rooted at a striding load. Copies execute against the
// speculative register file (SRF), issue real prefetches into the cache
// hierarchy, and consume real issue slots with main-thread priority.
package svr

// LoopBoundMode selects the loop-bound prediction mechanism (§IV-B2,
// Fig 15).
type LoopBoundMode int

// Loop-bound prediction mechanisms evaluated in Fig 15.
const (
	// Tournament (default): 2-bit chooser between EWMA and LBD+CV.
	Tournament LoopBoundMode = iota
	// Maxlength always issues the full vector length.
	Maxlength
	// EWMAOnly uses the exponentially weighted moving average of
	// observed contiguous iterations.
	EWMAOnly
	// LBDWait uses the loop-bound detector but waits a full iteration
	// after loop entry for it to train (DVR's Discovery-Mode policy).
	LBDWait
	// LBDMaxlength uses the LBD when confident, Maxlength otherwise.
	LBDMaxlength
	// LBDCV uses the LBD with current-value register scavenging.
	LBDCV
)

var lbModeNames = map[LoopBoundMode]string{
	Tournament: "Tournament", Maxlength: "Maxlength", EWMAOnly: "EWMA",
	LBDWait: "LBD+Wait", LBDMaxlength: "LBD+Maxlength", LBDCV: "LBD+CV",
}

// String names the mode as in Fig 15.
func (m LoopBoundMode) String() string { return lbModeNames[m] }

// RecyclePolicy selects how SRF registers are reclaimed (§VI-D,
// "Register Recycling").
type RecyclePolicy int

// SRF recycling policies.
const (
	// RecycleLRU (default, SVR's policy): reclaim the SRF entry of the
	// least-recently-read mapped architectural register.
	RecycleLRU RecyclePolicy = iota
	// RecycleNone (DVR's policy under SVR constraints): never steal a
	// live mapping; vectorization fails when the SRF is exhausted.
	RecycleNone
)

// Options configures the engine. DefaultOptions matches the paper's
// default SVR-16 configuration.
type Options struct {
	VectorLen int // N: scalars per scalar-vector (16 default, 8..128)
	SRFRegs   int // K: speculative vector registers (8 default)
	SDEntries int // stride-detector entries (32)
	LBDSize   int // loop-bound detector entries (8)

	PRMTimeout     int // instructions before PRM force-terminates (256)
	EWMACap        int // iteration count that forces an EWMA update (512)
	StrideConfMin  int // saturating-counter threshold to call a load striding (2)
	LoopBound      LoopBoundMode
	Recycle        RecyclePolicy
	WaitingMode    bool // §IV-A5; disabling is the §VI-D ablation
	ScalarsPerSlot int  // scalars issued per issue slot (Fig 16; 1 default)
	Width          int  // core issue width, for slot math (3)

	// RegCopyCycles models DVR-style full register-file checkpointing on
	// PRM entry (0 for SVR; §VI-D quantifies the cost).
	RegCopyCycles int64

	// PerLaneForwarding lets a dependent SVI lane start as soon as its
	// own source lane is ready. The hardware of §IV-A4 gates dependents
	// on the scoreboard return counter reaching zero — i.e. on ALL N
	// scalars of the producer completing — which is the (default)
	// faithful behaviour.
	PerLaneForwarding bool

	// Accuracy monitor (§IV-A7).
	AccuracyWarmup  int64   // uses+evictions before the monitor may ban (100)
	AccuracyMin     float64 // threshold below which SVR is banned (0.5)
	AccuracyRecheck uint64  // instructions between un-ban retries (1e6)
	MonitorAccuracy bool    // enable the monitor (on by default)
}

// Normalize clamps nonsensical values to safe minimums so a
// partially-filled Options cannot build a broken engine.
func (o Options) Normalize() Options {
	if o.VectorLen < 1 {
		o.VectorLen = 1
	}
	if o.SRFRegs < 1 {
		o.SRFRegs = 1
	}
	if o.SDEntries < 1 {
		o.SDEntries = 1
	}
	if o.LBDSize < 1 {
		o.LBDSize = 1
	}
	if o.PRMTimeout < 1 {
		o.PRMTimeout = 1
	}
	if o.Width < 1 {
		o.Width = 1
	}
	if o.ScalarsPerSlot < 1 {
		o.ScalarsPerSlot = 1
	}
	if o.StrideConfMin < 1 {
		o.StrideConfMin = 1
	}
	return o
}

// DefaultOptions returns the paper's SVR-16 configuration.
func DefaultOptions() Options {
	return Options{
		VectorLen: 16, SRFRegs: 8, SDEntries: 32, LBDSize: 8,
		PRMTimeout: 256, EWMACap: 512, StrideConfMin: 2,
		LoopBound: Tournament, Recycle: RecycleLRU, WaitingMode: true,
		ScalarsPerSlot: 1, Width: 3,
		AccuracyWarmup: 100, AccuracyMin: 0.5, AccuracyRecheck: 1_000_000,
		MonitorAccuracy: true,
	}
}

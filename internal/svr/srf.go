package svr

import "repro/internal/isa"

// TTEntry is one taint-tracker row (Fig 8), kept per architectural
// register.
type TTEntry struct {
	Tainted bool // register holds a value derived from the striding load
	Mapped  bool // register currently owns an SRF entry
	SRF     int  // speculative register id when Mapped
	Offset  int  // round-relative instruction count of the last read (LRU)
}

// Lane is one scalar slot of a speculative vector register.
type Lane struct {
	Val   int64
	Ready int64 // cycle the value is available
	Valid bool  // lane carries a live speculative value
}

// SRFReg is one speculative vector register: N 64-bit lanes.
type SRFReg struct {
	InUse bool
	Owner isa.Reg
	Lanes []Lane
}

// RegFile bundles the taint tracker and speculative register file; the
// two are coupled because the arch-to-SRF mapping lives in the tracker.
type RegFile struct {
	TT  [isa.NumRegs]TTEntry
	SRF []SRFReg

	recycle RecyclePolicy

	// Stats.
	Allocs      int64
	Recycles    int64
	AllocFails  int64
	Invalidated int64
}

// NewRegFile builds a register file with k SRF entries of n lanes each.
func NewRegFile(k, n int, policy RecyclePolicy) *RegFile {
	rf := &RegFile{SRF: make([]SRFReg, k), recycle: policy}
	for i := range rf.SRF {
		rf.SRF[i].Lanes = make([]Lane, n)
	}
	return rf
}

// Reset clears all taint and frees every SRF entry (PRM exit).
func (rf *RegFile) Reset() {
	rf.TT = [isa.NumRegs]TTEntry{}
	for i := range rf.SRF {
		rf.SRF[i].InUse = false
	}
}

// SourceVector returns the SRF register backing arch register r if it is
// tainted and still mapped; reading refreshes LRU state with the current
// round offset.
func (rf *RegFile) SourceVector(r isa.Reg, offset int) (*SRFReg, bool) {
	e := &rf.TT[r]
	if !e.Tainted || !e.Mapped {
		return nil, false
	}
	e.Offset = offset
	return &rf.SRF[e.SRF], true
}

// TaintedUnmapped reports whether r is tainted but has lost its SRF
// mapping (its consumers cannot be vectorized).
func (rf *RegFile) TaintedUnmapped(r isa.Reg) bool {
	e := &rf.TT[r]
	return e.Tainted && !e.Mapped
}

// MapDest secures an SRF entry for destination register rd at the given
// round offset. Per the paper: reuse an existing mapping (only one copy
// of an architectural register is live at once); otherwise allocate a
// free entry; otherwise recycle the least-recently-read mapping (LRU
// policy) or fail (DVR's policy). On failure the destination is marked
// tainted-but-unmapped so downstream consumers are not vectorized.
func (rf *RegFile) MapDest(rd isa.Reg, offset int) (*SRFReg, bool) {
	if rd == isa.R0 {
		return nil, false
	}
	e := &rf.TT[rd]
	if e.Tainted && e.Mapped {
		e.Offset = offset
		return &rf.SRF[e.SRF], true
	}
	// Free entry?
	for i := range rf.SRF {
		if !rf.SRF[i].InUse {
			rf.claim(rd, i, offset)
			rf.Allocs++
			return &rf.SRF[i], true
		}
	}
	if rf.recycle == RecycleNone {
		e.Tainted, e.Mapped = true, false
		rf.AllocFails++
		return nil, false
	}
	// LRU recycle: steal from the mapped arch register with the smallest
	// (stalest) read offset.
	victim := isa.Reg(0)
	found := false
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		t := &rf.TT[r]
		if t.Mapped && (!found || t.Offset < rf.TT[victim].Offset) {
			victim, found = r, true
		}
	}
	if !found {
		e.Tainted, e.Mapped = true, false
		rf.AllocFails++
		return nil, false
	}
	idx := rf.TT[victim].SRF
	rf.TT[victim].Mapped = false // tainted stays set: consumers blocked
	rf.Recycles++
	rf.claim(rd, idx, offset)
	return &rf.SRF[idx], true
}

func (rf *RegFile) claim(rd isa.Reg, idx, offset int) {
	rf.TT[rd] = TTEntry{Tainted: true, Mapped: true, SRF: idx, Offset: offset}
	rf.SRF[idx].InUse = true
	rf.SRF[idx].Owner = rd
}

// Invalidate clears taint on rd because a non-chain instruction overwrote
// it, freeing its SRF entry.
func (rf *RegFile) Invalidate(rd isa.Reg) {
	e := &rf.TT[rd]
	if !e.Tainted {
		return
	}
	if e.Mapped {
		rf.SRF[e.SRF].InUse = false
	}
	*e = TTEntry{}
	rf.Invalidated++
}

// MappedCount returns the number of live arch-to-SRF mappings (tests).
func (rf *RegFile) MappedCount() int {
	n := 0
	for r := range rf.TT {
		if rf.TT[r].Mapped {
			n++
		}
	}
	return n
}

package svr

import "repro/internal/isa"

// LastCompare is the LC register: a snapshot of the most recent compare
// instruction (PC, source operand values and register IDs). Backwards
// conditional-taken branches train the LBD from it.
type LastCompare struct {
	Valid      bool
	PC         int
	ValA, ValB int64
	RegA, RegB isa.Reg
	BImm       bool // compare-immediate: operand B is a constant
}

// LBDEntry is one loop-bound-detector row (Fig 10), keyed by the head
// striding load's PC.
type LBDEntry struct {
	PC    int
	Valid bool

	// Learned compare: which instruction bounds the loop and what its
	// operands looked like last iteration.
	CompPC     int
	ValA, ValB int64
	RegA, RegB isa.Reg
	BImm       bool
	Conf       int // replacement confidence (2-bit)

	// Learned loop structure: the per-iteration increment of the
	// induction operand, and which side is the constant bound.
	Increment int64
	BoundIsA  bool
	Learned   bool

	// FreshTrain marks that the entry was (re)trained since the last
	// loop entry; LBD+Wait refuses to predict without it.
	FreshTrain bool

	// Tournament chooser (2-bit, >= 2 selects the LBD).
	Tournament int

	// Predictions captured at the last PRM entry, for tournament
	// training at the next discontinuity.
	predEWMA, predLBD float64
	iterAtPred        int
	havePreds         bool
}

// LoopBound is the 8-entry loop-bound detector.
type LoopBound struct {
	entries []LBDEntry
}

// NewLoopBound builds a detector with n entries.
func NewLoopBound(n int) *LoopBound {
	return &LoopBound{entries: make([]LBDEntry, n)}
}

// Entry returns the row for head-load pc, allocating (without validating
// structure) if absent.
func (l *LoopBound) Entry(pc int) *LBDEntry {
	e := &l.entries[pc%len(l.entries)]
	if !e.Valid || e.PC != pc {
		*e = LBDEntry{PC: pc, Valid: true, Tournament: 1}
	}
	return e
}

// Lookup returns the row for pc only if already allocated to it.
func (l *LoopBound) Lookup(pc int) *LBDEntry {
	e := &l.entries[pc%len(l.entries)]
	if e.Valid && e.PC == pc {
		return e
	}
	return nil
}

// Train updates the entry from the LC snapshot on a backwards
// conditional-taken branch (§IV-B2). If the recorded compare PC does not
// match, confidence decays and the entry is eventually replaced. On a
// match, if exactly one operand changed since last time, the changing
// side is the induction variable (its delta the loop increment) and the
// constant side the bound.
func (e *LBDEntry) Train(lc LastCompare) {
	if !lc.Valid {
		return
	}
	if e.CompPC != lc.PC {
		if e.Conf > 0 {
			e.Conf--
			return
		}
		// Replace with the new compare.
		e.CompPC = lc.PC
		e.ValA, e.ValB = lc.ValA, lc.ValB
		e.RegA, e.RegB = lc.RegA, lc.RegB
		e.BImm = lc.BImm
		e.Learned = false
		e.FreshTrain = false
		return
	}
	if e.Conf < 3 {
		e.Conf++
	}
	aChanged := lc.ValA != e.ValA
	bChanged := lc.ValB != e.ValB
	if aChanged != bChanged {
		if aChanged {
			e.Increment = lc.ValA - e.ValA
			e.BoundIsA = false
		} else {
			e.Increment = lc.ValB - e.ValB
			e.BoundIsA = true
		}
		e.Learned = e.Increment != 0
		e.FreshTrain = e.Learned
	}
	e.ValA, e.ValB = lc.ValA, lc.ValB
	e.RegA, e.RegB = lc.RegA, lc.RegB
	e.BImm = lc.BImm
}

// PredictStored predicts remaining iterations from the operand values of
// the last observed compare (the LBD+Wait policy: no scavenging).
func (e *LBDEntry) PredictStored() (float64, bool) {
	if !e.Learned {
		return 0, false
	}
	return e.remaining(e.ValA, e.ValB)
}

// PredictCV predicts remaining iterations by scavenging the *current*
// values of the compare's source registers (the LBD+CV policy): the bound
// register was initialized before the loop and is valid immediately,
// before the first compare executes.
func (e *LBDEntry) PredictCV(regRead func(isa.Reg) int64) (float64, bool) {
	if !e.Learned {
		return 0, false
	}
	a := regRead(e.RegA)
	b := e.ValB
	if !e.BImm {
		b = regRead(e.RegB)
	}
	return e.remaining(a, b)
}

func (e *LBDEntry) remaining(a, b int64) (float64, bool) {
	if e.Increment == 0 {
		return 0, false
	}
	var induction, bound int64
	if e.BoundIsA {
		bound, induction = a, b
	} else {
		bound, induction = b, a
	}
	rem := float64(bound-induction) / float64(e.Increment)
	if rem < 0 {
		return 0, false
	}
	return rem, true
}

// NotePredictions records the competing predictions made at PRM entry so
// the tournament can be scored at the next discontinuity.
func (e *LBDEntry) NotePredictions(ewma, lbd float64, iterNow int, lbdOK bool) {
	e.predEWMA, e.predLBD = ewma, lbd
	e.iterAtPred = iterNow
	e.havePreds = lbdOK
}

// ScoreTournament trains the chooser when the loop ends (stride
// discontinuity): whichever predictor was closer to the actually observed
// remaining iterations wins.
func (e *LBDEntry) ScoreTournament(iterAtEnd int) {
	if !e.havePreds {
		return
	}
	observed := float64(iterAtEnd - e.iterAtPred)
	if observed < 0 {
		observed = float64(iterAtEnd)
	}
	errE := abs(e.predEWMA - observed)
	errL := abs(e.predLBD - observed)
	switch {
	case errL < errE:
		if e.Tournament < 3 {
			e.Tournament++
		}
	case errE < errL:
		if e.Tournament > 0 {
			e.Tournament--
		}
	}
	e.havePreds = false
	e.FreshTrain = false // loop ended: next visit must retrain for +Wait
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package svr

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stream"
)

// buildStrideIndirect emits sum += data[idx[i]] over n iterations —
// the canonical SVR target pattern.
func buildStrideIndirect(idx, data mem.Array, n int64) *isa.Program {
	b := isa.NewBuilder("si")
	rIdx, rData, rI, rN := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
	rA, rV, rSum := isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, n)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4) // striding load
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8) // indirect load
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return b.Build()
}

func setupSI() (*mem.Memory, mem.Array, mem.Array) {
	m := mem.New()
	idx := m.NewArray(1<<16, 4)
	data := m.NewArray(1<<20, 8) // 8 MiB
	x := uint64(99)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		idx.Set(i, (x>>16)%data.N)
	}
	return m, idx, data
}

// runWith executes a program on the in-order core, optionally with an SVR
// engine, and returns the core (and engine if requested).
func runWith(t *testing.T, p *isa.Program, m *mem.Memory, opt *Options, maxInstr uint64) (*inorder.Core, *Engine) {
	t.Helper()
	hcfg := cache.DefaultConfig()
	h := cache.NewHierarchy(hcfg)
	core := inorder.New(inorder.DefaultConfig(), h)
	cpu := emu.New(p, m)
	var eng *Engine
	if opt != nil {
		eng = New(*opt, h, cpu)
		core.Companion = eng
	}
	core.Run(stream.NewLive(cpu), maxInstr)
	return core, eng
}

func TestSVRSpeedsUpStrideIndirect(t *testing.T) {
	const iters = 1 << 13
	m1, i1, d1 := setupSI()
	base, _ := runWith(t, buildStrideIndirect(i1, d1, iters), m1, nil, 1<<22)

	m2, i2, d2 := setupSI()
	opt := DefaultOptions()
	fast, eng := runWith(t, buildStrideIndirect(i2, d2, iters), m2, &opt, 1<<22)

	speedup := base.CPI() / fast.CPI()
	if speedup < 2.0 {
		t.Errorf("SVR-16 speedup = %.2fx (base CPI %.2f, SVR CPI %.2f), want > 2x",
			speedup, base.CPI(), fast.CPI())
	}
	if eng.Stats.Rounds == 0 || eng.Stats.Scalars == 0 {
		t.Errorf("engine idle: %+v", eng.Stats)
	}
	if eng.Banned() {
		t.Error("accuracy monitor banned SVR on its ideal workload")
	}
}

func TestSVRAccuracyHighOnRegularLoop(t *testing.T) {
	m, idx, data := setupSI()
	opt := DefaultOptions()
	_, eng := runWith(t, buildStrideIndirect(idx, data, 1<<13), m, &opt, 1<<22)
	st := eng.H.Tracker.Stats[cache.OriginSVR]
	if st.Issued == 0 {
		t.Fatal("no SVR prefetches issued")
	}
	if acc := st.Accuracy(); acc < 0.85 {
		t.Errorf("SVR accuracy = %.2f (used %d, evicted %d), want > 0.85",
			acc, st.Used, st.EvictedUnused)
	}
}

func TestWiderSVRIsFaster(t *testing.T) {
	cpis := map[int]float64{}
	for _, n := range []int{8, 64} {
		m, idx, data := setupSI()
		opt := DefaultOptions()
		opt.VectorLen = n
		core, _ := runWith(t, buildStrideIndirect(idx, data, 1<<13), m, &opt, 1<<22)
		cpis[n] = core.CPI()
	}
	if cpis[64] >= cpis[8] {
		t.Errorf("SVR-64 CPI %.2f not faster than SVR-8 CPI %.2f", cpis[64], cpis[8])
	}
}

func TestWaitingModePreventsRedundantWork(t *testing.T) {
	run := func(waiting bool) Stats {
		m, idx, data := setupSI()
		opt := DefaultOptions()
		opt.WaitingMode = waiting
		_, eng := runWith(t, buildStrideIndirect(idx, data, 1<<12), m, &opt, 1<<21)
		return eng.Stats
	}
	with := run(true)
	without := run(false)
	if without.Scalars < 4*with.Scalars {
		t.Errorf("waiting mode off should explode transient work: with=%d without=%d",
			with.Scalars, without.Scalars)
	}
	if without.Rounds < 4*with.Rounds {
		t.Errorf("waiting mode off should re-enter PRM constantly: with=%d without=%d",
			with.Rounds, without.Rounds)
	}
}

func TestNoStridingNoRounds(t *testing.T) {
	// A pointer chase over a random permutation has no striding loads:
	// SVR must stay idle.
	m := mem.New()
	const n = 1 << 12
	nodes := m.NewArray(n, 8)
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	x := uint64(42)
	for i := n - 1; i > 0; i-- { // Fisher-Yates with an xorshift RNG
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := x % uint64(i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n; i++ {
		nodes.SetI(perm[i], int64(nodes.Addr(perm[(i+1)%n])))
	}
	b := isa.NewBuilder("chase")
	b.LoadImm(1, int64(nodes.Addr(0)))
	b.LoadImm(2, 0)
	b.Label("loop")
	b.Load(1, 1, 0, 8)
	b.AddI(2, 2, 1)
	b.CmpI(2, 2000)
	b.BLT("loop")
	b.Halt()
	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<20)
	if eng.Stats.Rounds != 0 {
		t.Errorf("pointer chase triggered %d PRM rounds", eng.Stats.Rounds)
	}
}

func TestDivergenceMasking(t *testing.T) {
	// data-dependent branch inside the chain: if (idx[i] & 1) sum += ...
	m := mem.New()
	idx := m.NewArray(1<<14, 4)
	data := m.NewArray(1<<18, 8)
	x := uint64(7)
	for i := uint64(0); i < idx.N; i++ {
		x = x*2862933555777941757 + 3037000493
		idx.Set(i, (x>>20)%data.N)
	}
	b := isa.NewBuilder("div")
	rIdx, rData, rI := isa.Reg(1), isa.Reg(2), isa.Reg(3)
	rA, rV, rSum, rBit := isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4) // striding
	b.AndI(rBit, rV, 1)  // tainted
	b.CmpI(rBit, 0)      // tainted compare
	b.BEQ("skip")        // divergent branch
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8) // indirect, only on odd values
	b.Add(rSum, rSum, rV)
	b.Label("skip")
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<13)
	b.BLT("loop")
	b.Halt()

	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<21)
	if eng.Stats.MaskedLanes == 0 {
		t.Error("divergent branch masked no lanes")
	}
	if eng.Stats.Rounds == 0 {
		t.Error("no PRM rounds on divergent kernel")
	}
}

func TestNestedLoopInnerOwnsRunahead(t *testing.T) {
	// for i { A[i]; for j in 0..32 { B[base_i + j]; Ind[B...] } }
	// The paper's HSLR bias must leave the *inner* striding load owning
	// runahead, so the indirect chain keeps getting prefetched.
	m := mem.New()
	outer := m.NewArray(1<<12, 4)
	inner := m.NewArray(1<<17, 4)
	data := m.NewArray(1<<18, 8)
	x := uint64(3)
	for i := uint64(0); i < inner.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		inner.Set(i, (x>>20)%data.N)
	}
	b := isa.NewBuilder("nested")
	rO, rIn, rD := isa.Reg(1), isa.Reg(2), isa.Reg(3)
	rI, rJ, rA, rV, rSum, rJEnd := isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8), isa.Reg(9)
	b.LoadImm(rO, int64(outer.Base))
	b.LoadImm(rIn, int64(inner.Base))
	b.LoadImm(rD, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("outer")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rO)
	b.Load(rV, rA, 0, 4) // outer striding load A
	b.Add(rSum, rSum, rV)
	b.MulI(rJ, rI, 32)
	b.AddI(rJEnd, rJ, 32)
	b.Label("innerL")
	b.ShlI(rA, rJ, 2)
	b.Add(rA, rA, rIn)
	b.Load(rV, rA, 0, 4) // inner striding load B
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rD)
	b.Load(rV, rV, 0, 8) // indirect
	b.Add(rSum, rSum, rV)
	b.AddI(rJ, rJ, 1)
	b.Cmp(rJ, rJEnd)
	b.BLT("innerL")
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<10)
	b.BLT("outer")
	b.Halt()

	opt := DefaultOptions()
	core, eng := runWith(t, b.Build(), m, &opt, 1<<22)
	if eng.Stats.Rounds == 0 {
		t.Fatal("no PRM rounds")
	}
	// Inner-loop ownership shows as roughly one round per vector-length
	// inner iterations — far more rounds than outer iterations alone.
	if eng.Stats.Rounds < 1500 {
		t.Errorf("rounds = %d; inner loop does not own runahead", eng.Stats.Rounds)
	}
	st := eng.H.Tracker.Stats[cache.OriginSVR]
	if st.Issued == 0 || st.Accuracy() < 0.8 {
		t.Errorf("nested prefetching ineffective: %+v", st)
	}
	if core.CPI() > 6 {
		t.Errorf("nested CPI = %.2f; indirect chain not covered", core.CPI())
	}
}

func TestNestedAbortWhenOuterGrabsHSLRFirst(t *testing.T) {
	// Phase 1 trains a plain striding loop so its load owns the HSLR.
	// Phase 2 is a nested loop whose outer load retargets the HSLR, then
	// the inner load is Seen twice within one PRM round -> nested abort.
	m := mem.New()
	warm := m.NewArray(1<<12, 4)
	outer := m.NewArray(1<<12, 4)
	inner := m.NewArray(1<<17, 4)
	data := m.NewArray(1<<18, 8)
	x := uint64(3)
	for i := uint64(0); i < inner.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		inner.Set(i, (x>>20)%data.N)
	}
	_ = warm
	// CSR-like schedule: the first 64 rows are empty, so the outer load
	// runs striding alone and captures the HSLR; once rows grow to 24
	// neighbors, the inner load becomes striding *inside* a PRM round,
	// escapes its chain's waiting range, and is Seen twice -> abort.
	b := isa.NewBuilder("nested2")
	rO, rIn, rD := isa.Reg(2), isa.Reg(3), isa.Reg(10)
	rI, rJ, rA, rV, rSum, rJEnd := isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8), isa.Reg(9)
	b.LoadImm(rO, int64(outer.Base))
	b.LoadImm(rIn, int64(inner.Base))
	b.LoadImm(rD, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("outer")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rO)
	b.Load(rV, rA, 0, 4) // outer striding load
	b.Add(rSum, rSum, rV)
	b.CmpI(rI, 64)
	b.BLT("next") // empty row: skip the inner loop
	b.AddI(rJ, rI, -64)
	b.MulI(rJ, rJ, 24)
	b.AddI(rJEnd, rJ, 24)
	b.Label("innerL")
	b.ShlI(rA, rJ, 2)
	b.Add(rA, rA, rIn)
	b.Load(rV, rA, 0, 4) // inner striding load
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rD)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	b.AddI(rJ, rJ, 1)
	b.Cmp(rJ, rJEnd)
	b.BLT("innerL")
	b.Label("next")
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 512)
	b.BLT("outer")
	b.Halt()

	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<22)
	// Ownership of runahead must transfer to the inner loop one way or
	// the other: a nested abort inside a round, or a Seen-twice retarget
	// outside one (both are §IV-A6 mechanisms).
	if eng.Stats.NestedAborts+eng.Stats.Retargets == 0 {
		t.Errorf("inner loop never took over the HSLR: %+v", eng.Stats)
	}
}

// driveLoad fabricates a dynamic striding-load record at the given PC and
// address and feeds it to the engine, bypassing the pipeline. This lets
// tests walk the §IV-A6 state machine deterministically.
func driveLoad(eng *Engine, seq *uint64, pc int, addr uint64) {
	rec := &emu.DynInstr{
		Seq: *seq, PC: pc,
		Instr: isa.Instr{Op: isa.OpLoad, Rd: 6, Ra: 5, Size: 4},
		Addr:  addr,
	}
	*seq++
	eng.OnIssue(rec, int64(*seq), cache.LevelL1)
}

func TestNestedAbortStateMachine(t *testing.T) {
	// Drive the exact scenario of Fig 9 (nested loops): PRM for outer
	// load A is active, inner load B starts a chain, and a second
	// out-of-range sighting of B aborts A's round and retargets to B.
	m := mem.New()
	m.Alloc(1<<20, 64)
	h := cache.NewHierarchy(cache.DefaultConfig())
	cpu := emu.New(isa.NewBuilder("x").Build(), m)
	opt := DefaultOptions()
	eng := New(opt, h, cpu)

	var seq uint64
	const pcA, pcB = 10, 20
	// Train A until striding and PRM entry (HSLR = A): confidence is
	// reached on the 4th observation, which opens the round.
	for i := uint64(0); i < 4; i++ {
		driveLoad(eng, &seq, pcA, 0x10000+i*4)
	}
	if !eng.InPRM() {
		t.Fatal("PRM(A) not entered")
	}
	if eng.hslrPC != pcA {
		t.Fatalf("HSLR = %d, want %d", eng.hslrPC, pcA)
	}
	// Train B inside the round; on confidence it starts a sibling chain.
	for j := uint64(0); j < 6; j++ {
		driveLoad(eng, &seq, pcB, 0x40000+j*4)
	}
	if eng.Stats.ChainStarts != 1 {
		t.Fatalf("chain starts = %d, want 1", eng.Stats.ChainStarts)
	}
	if !eng.InPRM() || eng.hslrPC != pcA {
		t.Fatal("round should still belong to A")
	}
	// B jumps to a new row (discontinuity resets its confidence), then
	// strides again: once confident and outside its chain's waiting
	// range, the Seen bit is still set -> nested loop detected -> abort
	// A's round, retarget HSLR to B.
	for j := uint64(0); j < 4; j++ {
		driveLoad(eng, &seq, pcB, 0x60000+j*4)
	}
	if eng.Stats.NestedAborts != 1 {
		t.Fatalf("nested aborts = %d, want 1 (%+v)", eng.Stats.NestedAborts, eng.Stats)
	}
	if eng.hslrPC != pcB {
		t.Errorf("HSLR after abort = %d, want %d", eng.hslrPC, pcB)
	}
	// B's EWMA only saw a 2-iteration run before the discontinuity, so
	// the loop-bound predictor throttles the new round to zero lanes —
	// runahead for B waits until its history justifies fetching.
	if eng.InPRM() {
		if eng.Stats.Rounds != 2 {
			t.Errorf("unexpected round accounting: %+v", eng.Stats)
		}
	} else if eng.Stats.PredZero == 0 {
		t.Errorf("PRM(B) skipped but not via loop-bound throttling: %+v", eng.Stats)
	}
}

func TestIndependentLoopRetargetStateMachine(t *testing.T) {
	// Fig 9 independent loops: loop A finishes (waiting), loop B is seen
	// twice -> retarget and runahead for B.
	m := mem.New()
	m.Alloc(1<<20, 64)
	h := cache.NewHierarchy(cache.DefaultConfig())
	cpu := emu.New(isa.NewBuilder("x").Build(), m)
	opt := DefaultOptions()
	eng := New(opt, h, cpu)

	var seq uint64
	const pcA, pcB = 10, 20
	for i := uint64(0); i < 6; i++ {
		driveLoad(eng, &seq, pcA, 0x10000+i*4)
	}
	// Terminate A's round by revisiting A (enters waiting mode).
	driveLoad(eng, &seq, pcA, 0x10000+6*4)
	if eng.InPRM() {
		t.Fatal("round should have terminated on HSLR revisit")
	}
	// Now an independent loop B runs: first confident sighting sets
	// Seen, second retargets.
	for j := uint64(0); j < 5; j++ {
		driveLoad(eng, &seq, pcB, 0x80000+j*4)
	}
	if eng.Stats.Retargets == 0 {
		t.Fatalf("no retarget to the independent loop: %+v", eng.Stats)
	}
	if eng.hslrPC != pcB {
		t.Errorf("HSLR = %d, want %d", eng.hslrPC, pcB)
	}
}

func TestWaitingModeBlocksReentry(t *testing.T) {
	m := mem.New()
	m.Alloc(1<<20, 64)
	h := cache.NewHierarchy(cache.DefaultConfig())
	cpu := emu.New(isa.NewBuilder("x").Build(), m)
	opt := DefaultOptions()
	eng := New(opt, h, cpu)

	var seq uint64
	const pcA = 10
	for i := uint64(0); i < 6; i++ {
		driveLoad(eng, &seq, pcA, 0x10000+i*4)
	}
	driveLoad(eng, &seq, pcA, 0x10000+6*4) // revisit: terminate + wait
	rounds := eng.Stats.Rounds
	// The round opened at i=3 and prefetched 16 elements ahead (through
	// i=19); every address inside that range must be ignored.
	for i := uint64(7); i < 20; i++ {
		driveLoad(eng, &seq, pcA, 0x10000+i*4)
		if eng.Stats.Rounds != rounds {
			t.Fatalf("re-entered PRM inside waiting range at i=%d", i)
		}
	}
	// First address past Last Prefetch restarts runahead.
	driveLoad(eng, &seq, pcA, 0x10000+20*4)
	if eng.Stats.Rounds != rounds+1 {
		t.Errorf("did not restart past the prefetched range: %+v", eng.Stats)
	}
}

func TestUnrolledChainsBothVectorized(t *testing.T) {
	// Two independent stride->indirect chains in one loop body.
	m := mem.New()
	idxA := m.NewArray(1<<14, 4)
	idxB := m.NewArray(1<<14, 4)
	data := m.NewArray(1<<18, 8)
	x := uint64(11)
	for i := uint64(0); i < idxA.N; i++ {
		x = x*6364136223846793005 + 1
		idxA.Set(i, (x>>20)%data.N)
		x = x*6364136223846793005 + 1
		idxB.Set(i, (x>>20)%data.N)
	}
	b := isa.NewBuilder("unrolled")
	rA, rB, rD, rI := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
	rT, rV, rSum := isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b.LoadImm(rA, int64(idxA.Base))
	b.LoadImm(rB, int64(idxB.Base))
	b.LoadImm(rD, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("loop")
	b.ShlI(rT, rI, 2)
	b.Add(rT, rT, rA)
	b.Load(rV, rT, 0, 4) // chain A striding
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rD)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	b.ShlI(rT, rI, 2)
	b.Add(rT, rT, rB)
	b.Load(rV, rT, 0, 4) // chain B striding
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rD)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<13)
	b.BLT("loop")
	b.Halt()

	opt := DefaultOptions()
	core, eng := runWith(t, b.Build(), m, &opt, 1<<22)
	if eng.Stats.ChainStarts == 0 {
		t.Errorf("second chain never vectorized: %+v", eng.Stats)
	}
	// Both chains prefetched: SVR should still deliver a speedup.
	m2 := mem.New()
	_ = m2
	if core.CPI() > 8 {
		t.Errorf("unrolled CPI = %.2f, SVR not covering both chains?", core.CPI())
	}
}

func TestShortInnerLoopsThrottled(t *testing.T) {
	// Inner loops of only 4 iterations: Maxlength overfetches 4x; the
	// tournament predictor should throttle and be more accurate.
	build := func(m *mem.Memory) *isa.Program {
		idx := m.NewArray(1<<16, 4)
		data := m.NewArray(1<<18, 8)
		x := uint64(17)
		for i := uint64(0); i < idx.N; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			idx.Set(i, (x>>20)%data.N)
		}
		b := isa.NewBuilder("short")
		rIdx, rData, rI, rJ, rEnd := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
		rA, rV, rSum := isa.Reg(6), isa.Reg(7), isa.Reg(8)
		b.LoadImm(rIdx, int64(idx.Base))
		b.LoadImm(rData, int64(data.Base))
		b.LoadImm(rI, 0)
		b.Label("outer")
		b.Mov(rJ, rI)
		b.AddI(rEnd, rI, 4)
		b.Label("inner")
		b.ShlI(rA, rJ, 2)
		b.Add(rA, rA, rIdx)
		b.Load(rV, rA, 0, 4)
		b.ShlI(rV, rV, 3)
		b.Add(rV, rV, rData)
		b.Load(rV, rV, 0, 8)
		b.Add(rSum, rSum, rV)
		b.AddI(rJ, rJ, 1)
		b.Cmp(rJ, rEnd)
		b.BLT("inner")
		// Unrelated work between inner loops breaks the stride run.
		for k := 0; k < 6; k++ {
			b.AddI(9, 9, 1)
		}
		b.AddI(rI, rI, 64) // jump far: discontinuity for the stride
		b.CmpI(rI, 1<<15)
		b.BLT("outer")
		b.Halt()
		return b.Build()
	}

	runMode := func(mode LoopBoundMode) (Stats, cache.PFStats) {
		m := mem.New()
		p := build(m)
		opt := DefaultOptions()
		opt.LoopBound = mode
		opt.MonitorAccuracy = false // isolate the predictor effect
		_, eng := runWith(t, p, m, &opt, 1<<21)
		return eng.Stats, eng.H.Tracker.Stats[cache.OriginSVR]
	}

	_, maxPF := runMode(Maxlength)
	_, tourPF := runMode(Tournament)
	if maxPF.Issued == 0 || tourPF.Issued == 0 {
		t.Fatalf("prefetchers idle: max=%+v tour=%+v", maxPF, tourPF)
	}
	if tourPF.Accuracy() <= maxPF.Accuracy() {
		t.Errorf("tournament accuracy %.2f not better than maxlength %.2f on short loops",
			tourPF.Accuracy(), maxPF.Accuracy())
	}
}

func TestAccuracyMonitorBansAndRecovers(t *testing.T) {
	m := mem.New()
	h := cache.NewHierarchy(cache.DefaultConfig())
	cpu := emu.New(isa.NewBuilder("x").Build(), m)
	opt := DefaultOptions()
	opt.AccuracyWarmup = 10
	opt.AccuracyRecheck = 1000
	eng := New(opt, h, cpu)

	// Fake useless prefetches: marked then evicted untouched.
	for i := 0; i < 20; i++ {
		h.Tracker.Mark(uint64(0x1000+i*64), cache.OriginSVR)
		h.Tracker.Evict(uint64(0x1000 + i*64))
	}
	eng.mon.tick(500, 0, eng)
	if !eng.Banned() {
		t.Fatal("monitor did not ban after useless prefetches")
	}
	if eng.Stats.Bans != 1 {
		t.Errorf("bans = %d", eng.Stats.Bans)
	}
	// Recovery at the next recheck boundary.
	eng.mon.tick(999, 0, eng)
	if !eng.Banned() {
		t.Error("unbanned too early")
	}
	eng.mon.tick(1000, 0, eng)
	if eng.Banned() {
		t.Error("ban not lifted at recheck boundary")
	}
}

func TestDVRRecyclingPolicyHurtsWithTinySRF(t *testing.T) {
	// §VI-D: with 2 SRF registers, LRU recycling keeps working while the
	// DVR policy collapses coverage. The deep chain here needs 4 regs.
	build := func(m *mem.Memory) *isa.Program {
		idx := m.NewArray(1<<15, 4)
		mid := m.NewArray(1<<17, 4)
		data := m.NewArray(1<<18, 8)
		x := uint64(23)
		for i := uint64(0); i < idx.N; i++ {
			x = x*6364136223846793005 + 1
			idx.Set(i, (x>>20)%mid.N)
		}
		for i := uint64(0); i < mid.N; i++ {
			x = x*6364136223846793005 + 1
			mid.Set(i, (x>>20)%data.N)
		}
		// Distinct registers at every chain step keep many speculative
		// values live at once, stressing the 2-entry SRF.
		b := isa.NewBuilder("deep")
		rIdx, rMid, rData, rI := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
		rA := isa.Reg(5)
		rV, rX, rY, rZ, rU, rP, rQ, rSum := isa.Reg(6), isa.Reg(7), isa.Reg(8), isa.Reg(9), isa.Reg(10), isa.Reg(11), isa.Reg(12), isa.Reg(13)
		b.LoadImm(rIdx, int64(idx.Base))
		b.LoadImm(rMid, int64(mid.Base))
		b.LoadImm(rData, int64(data.Base))
		b.LoadImm(rI, 0)
		b.Label("loop")
		b.ShlI(rA, rI, 2)
		b.Add(rA, rA, rIdx)
		b.Load(rV, rA, 0, 4) // striding            (vector 1: rV)
		b.ShlI(rX, rV, 2)    //                     (vector 2: rX)
		b.Add(rY, rX, rMid)  //                     (vector 3: rY)
		b.Load(rZ, rY, 0, 4) // indirect level 1    (vector 4: rZ)
		b.ShlI(rU, rZ, 3)    //                     (vector 5: rU)
		b.Add(rP, rU, rData) //                     (vector 6: rP)
		b.Load(rQ, rP, 0, 8) // indirect level 2    (vector 7: rQ)
		b.Add(rSum, rSum, rQ)
		b.AddI(rI, rI, 1)
		b.CmpI(rI, 1<<13)
		b.BLT("loop")
		b.Halt()
		return b.Build()
	}
	runPolicy := func(p RecyclePolicy) (float64, Stats) {
		m := mem.New()
		prog := build(m)
		opt := DefaultOptions()
		opt.SRFRegs = 2
		opt.Recycle = p
		core, eng := runWith(t, prog, m, &opt, 1<<21)
		return core.CPI(), eng.Stats
	}
	lruCPI, _ := runPolicy(RecycleLRU)
	dvrCPI, dvrStats := runPolicy(RecycleNone)
	if dvrStats.Rounds == 0 {
		t.Fatal("DVR-policy run did not enter PRM")
	}
	if lruCPI >= dvrCPI {
		t.Errorf("LRU recycling (CPI %.2f) should beat DVR policy (CPI %.2f) with 2 SRF regs",
			lruCPI, dvrCPI)
	}
}

func TestScalarsPerSlotBarelyMatters(t *testing.T) {
	// Fig 16: SVR is memory-bound during PRM, so wider transient issue
	// hardly changes performance.
	cpis := map[int]float64{}
	for _, sps := range []int{1, 8} {
		m, idx, data := setupSI()
		opt := DefaultOptions()
		opt.ScalarsPerSlot = sps
		core, _ := runWith(t, buildStrideIndirect(idx, data, 1<<13), m, &opt, 1<<22)
		cpis[sps] = core.CPI()
	}
	ratio := cpis[1] / cpis[8]
	if ratio > 1.30 || ratio < 0.90 {
		t.Errorf("scalars-per-slot 1 vs 8 CPI ratio = %.2f, want ~1 (memory bound)", ratio)
	}
}

func TestRegCopyCostSlowsPRMEntry(t *testing.T) {
	run := func(cycles int64) float64 {
		m, idx, data := setupSI()
		opt := DefaultOptions()
		opt.RegCopyCycles = cycles
		core, _ := runWith(t, buildStrideIndirect(idx, data, 1<<13), m, &opt, 1<<22)
		return core.CPI()
	}
	if base, taxed := run(0), run(16); taxed <= base {
		t.Errorf("register-copy tax did not cost cycles: %.3f <= %.3f", taxed, base)
	}
}

func TestLILSuppressesTailSVIs(t *testing.T) {
	// Chain with a long tainted ALU tail after the last indirect load:
	// once LIL confidence builds, the tail must not be vectorized.
	m := mem.New()
	idx := m.NewArray(1<<15, 4)
	data := m.NewArray(1<<18, 8)
	x := uint64(31)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1
		idx.Set(i, (x>>20)%data.N)
	}
	b := isa.NewBuilder("tail")
	rIdx, rData, rI := isa.Reg(1), isa.Reg(2), isa.Reg(3)
	rA, rV, rSum := isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4)
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8) // last indirect load
	// Tainted tail: 6 ALU ops on the loaded value.
	for k := 0; k < 6; k++ {
		b.AddI(rV, rV, 1)
	}
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<13)
	b.BLT("loop")
	b.Halt()

	opt := DefaultOptions()
	_, withLIL := runWith(t, b.Build(), m, &opt, 1<<21)
	// SVIs per round with LIL ~ 4 (addr calc + loads); without ~ 10.
	perRound := float64(withLIL.Stats.SVIs) / float64(withLIL.Stats.Rounds)
	if perRound > 8 {
		t.Errorf("SVIs per round = %.1f; LIL did not suppress the tainted tail", perRound)
	}
}

func TestLILOffsetLearnsAndSuppresses(t *testing.T) {
	// Fixed-shape chain: the offset of the last dependent load is
	// constant, so LIL confidence builds and the tail (6 tainted ALU
	// ops) stops being vectorized; SVIs per round must shrink after the
	// first few rounds.
	m := mem.New()
	idx := m.NewArray(1<<15, 4)
	data := m.NewArray(1<<18, 8)
	x := uint64(31)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1
		idx.Set(i, (x>>20)%data.N)
	}
	b := isa.NewBuilder("tail")
	rIdx, rData, rI := isa.Reg(1), isa.Reg(2), isa.Reg(3)
	rA, rV, rSum := isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4)
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8) // last dependent load: offset 3 in the round
	for k := 0; k < 6; k++ {
		b.AddI(rV, rV, 1) // tainted tail
	}
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.CmpI(rI, 1<<13)
	b.BLT("loop")
	b.Halt()

	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<21)
	sd := eng.SD.Lookup(eng.hslrPC)
	if sd == nil {
		t.Fatal("no stride entry for the HSLR")
	}
	if sd.LILConf < 2 {
		t.Fatalf("LIL confidence = %d, offset never learned", sd.LILConf)
	}
	// The last dependent load sits a few instructions into the round;
	// the learned offset must be small (well before the 6-op tail ends).
	if sd.LIL > 8 {
		t.Errorf("LIL offset = %d, want the dependent-load offset (<= 8)", sd.LIL)
	}
	perRound := float64(eng.Stats.SVIs) / float64(eng.Stats.Rounds)
	if perRound > 8 {
		t.Errorf("SVIs per round = %.1f; tail not suppressed", perRound)
	}
}

func TestLILOffsetDisengagesOnVariableRounds(t *testing.T) {
	// Rounds spanning variable-length inner loops never stabilize the
	// offset: confidence must stay low so no suppression engages and
	// coverage is preserved (the SSSP/hub case).
	m := mem.New()
	idx := m.NewArray(1<<15, 4)
	data := m.NewArray(1<<18, 8)
	lens := m.NewArray(1<<12, 4)
	x := uint64(77)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1
		idx.Set(i, (x>>20)%data.N)
	}
	for i := uint64(0); i < lens.N; i++ {
		x = x*6364136223846793005 + 1
		lens.Set(i, 2+(x>>40)%13) // inner length 2..14
	}
	b := isa.NewBuilder("varlen")
	rIdx, rData, rLen := isa.Reg(1), isa.Reg(2), isa.Reg(3)
	rO, rI, rEnd, rA, rV, rSum, rN := isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8), isa.Reg(9), isa.Reg(10)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rLen, int64(lens.Base))
	b.LoadImm(rO, 0)
	b.LoadImm(rI, 0)
	b.Label("outer")
	b.ShlI(rA, rO, 2)
	b.Add(rA, rA, rLen)
	b.Load(rN, rA, 0, 4) // striding head: inner length (outer owns HSLR)
	b.Add(rEnd, rI, rN)
	b.Cmp(rI, rEnd)
	b.BGE("next")
	b.Label("inner")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4)
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rEnd)
	b.BLT("inner")
	b.Label("next")
	b.AddI(rO, rO, 1)
	b.CmpI(rO, 1<<11)
	b.BLT("outer")
	b.Halt()

	opt := DefaultOptions()
	_, eng := runWith(t, b.Build(), m, &opt, 1<<21)
	if eng.Stats.Rounds == 0 {
		t.Fatal("no rounds")
	}
	// Suppression must not eat a meaningful share of the chain work.
	if eng.Stats.SkippedLIL > eng.Stats.SVIs/4 {
		t.Errorf("variable rounds over-suppressed: skipped=%d svis=%d",
			eng.Stats.SkippedLIL, eng.Stats.SVIs)
	}
}

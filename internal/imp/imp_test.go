package imp

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stream"
)

// buildStrideIndirect emits sum += data[idx[i]] — IMP's ideal pattern.
func buildStrideIndirect(idx, data mem.Array, n int64) *isa.Program {
	b := isa.NewBuilder("si")
	rIdx, rData, rI, rN := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
	rA, rV, rSum := isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, n)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4)
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return b.Build()
}

func setupSI() (*mem.Memory, mem.Array, mem.Array) {
	m := mem.New()
	idx := m.NewArray(1<<16, 4)
	data := m.NewArray(1<<20, 8)
	x := uint64(99)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		idx.Set(i, (x>>16)%data.N)
	}
	return m, idx, data
}

func runIMP(t *testing.T, p *isa.Program, m *mem.Memory, withIMP bool) (*inorder.Core, *Prefetcher) {
	t.Helper()
	h := cache.NewHierarchy(cache.DefaultConfig())
	core := inorder.New(inorder.DefaultConfig(), h)
	cpu := emu.New(p, m)
	var pf *Prefetcher
	if withIMP {
		pf = New(DefaultConfig(), h, m)
		core.Companion = pf
	}
	core.Run(stream.NewLive(cpu), 1<<22)
	return core, pf
}

func TestIMPLearnsStrideIndirect(t *testing.T) {
	m, idx, data := setupSI()
	_, pf := runIMP(t, buildStrideIndirect(idx, data, 1<<12), m, true)
	if pf.Established == 0 {
		t.Fatal("IMP never established the A[B[i]] pattern")
	}
	if pf.Prefetches == 0 {
		t.Fatal("IMP issued no prefetches")
	}
	if pf.H.DRAMLoads[cache.OriginIMP] == 0 {
		t.Error("IMP prefetches never reached DRAM")
	}
}

func TestIMPSpeedsUpStrideIndirect(t *testing.T) {
	m1, i1, d1 := setupSI()
	base, _ := runIMP(t, buildStrideIndirect(i1, d1, 1<<13), m1, false)
	m2, i2, d2 := setupSI()
	fast, _ := runIMP(t, buildStrideIndirect(i2, d2, 1<<13), m2, true)
	if sp := base.CPI() / fast.CPI(); sp < 1.5 {
		t.Errorf("IMP speedup = %.2fx (base %.2f, imp %.2f), want > 1.5x",
			sp, base.CPI(), fast.CPI())
	}
}

func TestIMPFailsOnPointerChase(t *testing.T) {
	// Hash-probe-like pattern: no linear index->address relation.
	m := mem.New()
	const n = 1 << 14
	nodes := m.NewArray(n, 8)
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	x := uint64(17)
	for i := n - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := x % uint64(i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n; i++ {
		nodes.SetI(perm[i], int64(nodes.Addr(perm[(i+1)%n])))
	}
	b := isa.NewBuilder("chase")
	b.LoadImm(1, int64(nodes.Addr(perm[0])))
	b.LoadImm(2, 0)
	b.Label("loop")
	b.Load(1, 1, 0, 8)
	b.AddI(2, 2, 1)
	b.CmpI(2, 4000)
	b.BLT("loop")
	b.Halt()
	_, pf := runIMP(t, b.Build(), m, true)
	if pf.Established != 0 {
		t.Errorf("IMP claimed to learn a pattern on a pointer chase (%d)", pf.Established)
	}
}

func TestIMPOverfetchesShortLoops(t *testing.T) {
	// 4-iteration inner loops with jumps between: IMP still prefetches
	// its full depth (16), so most prefetched lines are never used.
	m := mem.New()
	idx := m.NewArray(1<<17, 4)
	data := m.NewArray(1<<19, 8)
	x := uint64(5)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		idx.Set(i, (x>>20)%data.N)
	}
	b := isa.NewBuilder("short")
	rIdx, rData, rI, rJ, rEnd := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	rA, rV, rSum := isa.Reg(6), isa.Reg(7), isa.Reg(8)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.Label("outer")
	b.Mov(rJ, rI)
	b.AddI(rEnd, rI, 4)
	b.Label("inner")
	b.ShlI(rA, rJ, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4)
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8)
	b.Add(rSum, rSum, rV)
	b.AddI(rJ, rJ, 1)
	b.Cmp(rJ, rEnd)
	b.BLT("inner")
	b.AddI(rI, rI, 64) // jump far away
	b.CmpI(rI, 1<<17)
	b.BLT("outer")
	b.Halt()

	_, pf := runIMP(t, b.Build(), m, true)
	if pf.Prefetches == 0 {
		t.Skip("IMP did not trigger on this pattern")
	}
	st := pf.H.Tracker.Stats[cache.OriginIMP]
	if st.Issued == 0 {
		t.Fatal("no tracked IMP prefetches")
	}
	if acc := st.Accuracy(); acc > 0.6 {
		t.Errorf("IMP accuracy on 4-iteration loops = %.2f, expected poor (<0.6)", acc)
	}
}

func TestIMPConfidenceDecaysOnPatternBreak(t *testing.T) {
	// Establish a pattern, then feed mismatching observations: the
	// candidate entry must decay rather than keep prefetching garbage.
	h := cache.NewHierarchy(cache.DefaultConfig())
	m := mem.New()
	pf := New(DefaultConfig(), h, m)

	// Train the stride table at PC 1 with values v, and miss addresses
	// consistent with base + v*8 at PC 2.
	base := uint64(0x100000)
	mkLoad := func(pc int, addr uint64, val int64, lvl cache.Level) {
		rec := &emu.DynInstr{PC: pc, Addr: addr, LoadVal: val,
			Instr: isa.Instr{Op: isa.OpLoad, Rd: 1, Ra: 2, Size: 4}}
		pf.OnIssue(rec, 0, lvl)
	}
	vals := []int64{100, 37, 911, 4, 555, 62, 703, 128} // random-ish indices
	for i, v := range vals {
		mkLoad(1, 0x2000+uint64(i)*4, v, cache.LevelL1) // index load
		mkLoad(2, base+uint64(v)*8, 0, cache.LevelMem)  // indirect miss
	}
	if pf.Established == 0 {
		t.Fatal("pattern never established")
	}
	// Now break the pattern at a new PC pair: candidate must not
	// establish from inconsistent pairs.
	estBefore := pf.Established
	w := int64(5)
	for i := 0; i < 8; i++ {
		mkLoad(11, 0x9000+uint64(i)*4, w, cache.LevelL1)
		mkLoad(12, uint64(0x500000)+uint64(i*i*977), 0, cache.LevelMem) // no linear relation
		w += 3
	}
	if pf.Established != estBefore {
		t.Errorf("established a pattern from inconsistent pairs")
	}
}

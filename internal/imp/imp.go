// Package imp implements the Indirect Memory Prefetcher of Yu et al.
// (MICRO 2015), the paper's prefetcher baseline. IMP sits at the L1-D
// cache: it finds striding "index" loads with a reference prediction
// table, then correlates their loaded values with subsequent miss
// addresses to solve addr = base + (value << shift). Once a (base, shift)
// pair is confirmed, every new index value triggers prefetches for the
// next Distance indirect targets.
//
// Unlike SVR, IMP observes only L1 traffic: it has no loop-bound
// information, so it always fetches its full prefetch depth past
// inner-loop boundaries (the inaccuracy the paper reports on BFS/UR), and
// it cannot follow chains deeper than one indirection (Kangaroo, hash
// joins), multi-strided bases, or pattern-free accesses (randacc, SSSP).
package imp

import (
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Config sizes the prefetcher.
type Config struct {
	StrideEntries int // index-load RPT entries
	IPTEntries    int // indirect pattern table entries
	Distance      int // indirect prefetch depth (16, as in the paper)
	MaxShift      uint8
	ConfMin       int
}

// DefaultConfig mirrors the paper's IMP setup with prefetch depth 16.
func DefaultConfig() Config {
	return Config{StrideEntries: 64, IPTEntries: 16, Distance: 16, MaxShift: 3, ConfMin: 2}
}

type strideEntry struct {
	pc       int
	valid    bool
	prevAddr uint64
	stride   int64
	conf     int
	lastVal  int64 // most recent loaded value
	hasVal   bool
}

// iptEntry is one indirect-pattern-table row: indirect address =
// base + (indexValue << shift), learned for one index-load PC from pairs
// of (index value, miss address) observations.
type iptEntry struct {
	indexPC int
	valid   bool

	haveFirst bool
	v1        int64  // first observed index value
	addr1     uint64 // miss address observed with v1

	shift       uint8
	base        uint64
	conf        int
	established bool
}

// Prefetcher is the IMP engine. It implements inorder.Companion (it never
// consumes issue slots — it lives in the cache, not the pipeline).
type Prefetcher struct {
	Cfg Config
	H   *cache.Hierarchy
	Mem *mem.Memory

	strides []strideEntry
	ipt     []iptEntry

	// Stats.
	Established int64
	Prefetches  int64
}

// New builds an IMP attached to the hierarchy; mem supplies index-array
// values for ahead-of-stream prefetch computation (the hardware reads the
// same values from prefetched index cache lines).
func New(cfg Config, h *cache.Hierarchy, m *mem.Memory) *Prefetcher {
	p := &Prefetcher{
		Cfg:     cfg,
		H:       h,
		Mem:     m,
		strides: make([]strideEntry, cfg.StrideEntries),
		ipt:     make([]iptEntry, cfg.IPTEntries),
	}
	h.Reg.Int64("imp.established", "indirect patterns confirmed", &p.Established)
	h.Reg.Int64("imp.prefetches", "indirect prefetches issued", &p.Prefetches)
	return p
}

// OnIssue observes every issued instruction (Companion hook).
func (p *Prefetcher) OnIssue(rec *emu.DynInstr, issueAt int64, level cache.Level) int64 {
	if rec.Instr.Kind() != isa.KindLoad {
		return 0
	}
	p.observeLoad(rec, issueAt, level)
	return 0
}

func (p *Prefetcher) observeLoad(rec *emu.DynInstr, issueAt int64, level cache.Level) {
	se := &p.strides[rec.PC%len(p.strides)]
	if !se.valid || se.pc != rec.PC {
		*se = strideEntry{pc: rec.PC, valid: true, prevAddr: rec.Addr, lastVal: rec.LoadVal, hasVal: true}
		return
	}
	stride := int64(rec.Addr) - int64(se.prevAddr)
	if stride == se.stride && stride != 0 {
		if se.conf < 3 {
			se.conf++
		}
	} else {
		se.stride = stride
		se.conf = 0
	}
	se.prevAddr = rec.Addr
	se.lastVal = rec.LoadVal
	se.hasVal = true
	if se.conf >= p.Cfg.ConfMin {
		p.onIndexLoad(se, rec, issueAt)
		return
	}
	// Not a (confident) index load: a miss here may be the indirect
	// target of some index load — try to learn the pattern.
	if level != cache.LevelL1 {
		p.tryPair(rec.PC, rec.Addr)
	}
}

// onIndexLoad fires when a confident striding (index) load executes:
// train candidate patterns and issue indirect prefetches.
func (p *Prefetcher) onIndexLoad(se *strideEntry, rec *emu.DynInstr, issueAt int64) {
	ie := &p.ipt[se.pc%len(p.ipt)]
	if !ie.valid || ie.indexPC != se.pc {
		*ie = iptEntry{indexPC: se.pc, valid: true}
	}

	if !ie.established {
		return
	}

	// Established pattern: prefetch the indirect targets of the next
	// Distance index values, reading them ahead along the stride (the
	// hardware prefetches the index lines and snoops the values).
	size := rec.Instr.Size
	for k := 1; k <= p.Cfg.Distance; k++ {
		idxAddr := rec.Addr + uint64(int64(k)*se.stride)
		v := int64(p.Mem.Read(idxAddr, size))
		target := ie.base + uint64(v)<<ie.shift
		p.H.Prefetch(target, issueAt, cache.OriginIMP)
		p.Prefetches++
	}
}

// tryPair attempts, for each confident striding load, to solve
// addr = base + (v << shift) from two (index value, miss address)
// observations: addr2 - addr1 = (v2 - v1) << shift. Repeated agreement
// with the solved candidate establishes the pattern.
func (p *Prefetcher) tryPair(missPC int, addr uint64) {
	for i := range p.strides {
		se := &p.strides[i]
		if !se.valid || se.conf < p.Cfg.ConfMin || !se.hasVal {
			continue
		}
		ie := &p.ipt[se.pc%len(p.ipt)]
		if !ie.valid || ie.indexPC != se.pc {
			*ie = iptEntry{indexPC: se.pc, valid: true}
		}
		if ie.established {
			continue
		}
		v := se.lastVal
		if !ie.haveFirst {
			ie.haveFirst = true
			ie.v1, ie.addr1 = v, addr
			continue
		}
		// A solved candidate confirms (or decays) on each new pair.
		if ie.conf > 0 {
			if addr == ie.base+uint64(v)<<ie.shift {
				ie.conf++
				if ie.conf >= p.Cfg.ConfMin {
					ie.established = true
					p.Established++
				}
			} else if v != ie.v1 {
				ie.conf--
			}
			ie.v1, ie.addr1 = v, addr
			continue
		}
		// Solve from the stored and the current observation.
		if dv := v - ie.v1; dv != 0 {
			da := int64(addr) - int64(ie.addr1)
			for shift := uint8(0); shift <= p.Cfg.MaxShift; shift++ {
				if dv<<shift == da {
					ie.shift = shift
					ie.base = addr - uint64(v)<<shift
					ie.conf = 1
					break
				}
			}
		}
		ie.v1, ie.addr1 = v, addr
	}
}

package energy

import "testing"

// memBoundActivity models a graph workload window: CPI 10 in-order,
// one DRAM line per ~7 instructions.
func memBoundActivity(core CoreType, cpi float64) Activity {
	const instrs = 1_000_000
	return Activity{
		Core:       core,
		Cycles:     int64(cpi * instrs),
		Instrs:     instrs,
		L1Accesses: instrs / 3,
		L2Accesses: instrs / 6,
		DRAMLines:  instrs / 7,
	}
}

func TestInOrderOperatingPoint(t *testing.T) {
	// Paper: in-order core averages 0.12 W on these workloads.
	r := Estimate(DefaultParams(), memBoundActivity(InOrder, 10))
	if r.CorePowerW < 0.07 || r.CorePowerW > 0.17 {
		t.Errorf("in-order core power = %.3f W, want ~0.12", r.CorePowerW)
	}
	if r.NJPerInstr < 2 || r.NJPerInstr > 12 {
		t.Errorf("in-order energy = %.2f nJ/instr, want 2-12 (Fig 12 range)", r.NJPerInstr)
	}
}

func TestOoOOperatingPoint(t *testing.T) {
	// Paper: OoO core averages 1.01 W; CPI ~4 on the same workloads.
	r := Estimate(DefaultParams(), memBoundActivity(OutOfOrder, 4))
	if r.CorePowerW < 0.8 || r.CorePowerW > 1.3 {
		t.Errorf("OoO core power = %.3f W, want ~1.01", r.CorePowerW)
	}
}

func TestOrderingMatchesPaper(t *testing.T) {
	// Fig 1/12 shapes: SVR (fast in-order + transient scalars) must be
	// the most efficient; OoO usually beats plain in-order system-wide.
	p := DefaultParams()
	ino := Estimate(p, memBoundActivity(InOrder, 10))
	ooo := Estimate(p, memBoundActivity(OutOfOrder, 4))
	svrAct := memBoundActivity(InOrder, 3)
	svrAct.SVRScalars = int64(svrAct.Instrs) // PRM doubles executed ops
	svrAct.L1Accesses *= 2
	svr := Estimate(p, svrAct)

	if !(svr.NJPerInstr < ooo.NJPerInstr && svr.NJPerInstr < ino.NJPerInstr) {
		t.Errorf("SVR %.2f nJ/i must beat OoO %.2f and InO %.2f",
			svr.NJPerInstr, ooo.NJPerInstr, ino.NJPerInstr)
	}
	if ooo.NJPerInstr >= ino.NJPerInstr {
		t.Errorf("OoO %.2f nJ/i should beat slow InO %.2f on memory-bound work",
			ooo.NJPerInstr, ino.NJPerInstr)
	}
	// SVR roughly halves energy versus both (paper: -53%/-49%).
	if ratio := svr.NJPerInstr / ino.NJPerInstr; ratio > 0.75 {
		t.Errorf("SVR/InO energy ratio = %.2f, want well under 0.75", ratio)
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	p := DefaultParams()
	a := memBoundActivity(InOrder, 10)
	b := a
	b.Cycles *= 2
	ra, rb := Estimate(p, a), Estimate(p, b)
	if rb.StaticJ <= ra.StaticJ*1.9 {
		t.Errorf("static energy did not scale with time: %v vs %v", ra.StaticJ, rb.StaticJ)
	}
	if rb.DynamicJ != ra.DynamicJ {
		t.Error("dynamic energy must not depend on time")
	}
}

func TestZeroActivity(t *testing.T) {
	r := Estimate(DefaultParams(), Activity{})
	if r.TotalJ != 0 || r.NJPerInstr != 0 || r.AvgPowerW != 0 {
		t.Errorf("zero activity produced nonzero report: %+v", r)
	}
}

func TestSVRScalarEnergyCharged(t *testing.T) {
	p := DefaultParams()
	a := memBoundActivity(InOrder, 3)
	b := a
	b.SVRScalars = 2_000_000
	if Estimate(p, b).DynamicJ <= Estimate(p, a).DynamicJ {
		t.Error("transient scalars must cost dynamic energy")
	}
}

func TestTransientShareNearPaperClaim(t *testing.T) {
	// Paper §VI-B: transient instructions account for ~22% of core power
	// while SVR runs. Model a runahead-heavy window: SVR roughly doubles
	// the executed operations.
	a := memBoundActivity(InOrder, 3)
	a.SVRScalars = int64(a.Instrs)
	r := Estimate(DefaultParams(), a)
	if share := r.TransientShare(); share < 0.12 || share > 0.32 {
		t.Errorf("transient share = %.2f, want near the paper's ~0.22", share)
	}
	// No scalars, no share.
	if s := Estimate(DefaultParams(), memBoundActivity(InOrder, 3)).TransientShare(); s != 0 {
		t.Errorf("share without scalars = %v", s)
	}
}

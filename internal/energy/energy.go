// Package energy is the McPAT-style whole-system energy model used for
// Fig 1 (right) and Fig 12. Energy = per-event dynamic energies plus
// static power integrated over execution time. The constants are
// calibrated to the paper's reported operating points at 22 nm: the
// in-order core averages 0.12 W and the out-of-order core 1.01 W on the
// memory-bound workload set, and whole-system energy lands in the
// 1–10 nJ/instruction range.
package energy

// CoreType selects the core's energy coefficients.
type CoreType int

// Core types.
const (
	InOrder CoreType = iota
	OutOfOrder
)

// Params holds the model coefficients.
type Params struct {
	// Dynamic energy per event, picojoules.
	InOInstrPJ  float64 // per instruction on the in-order core
	OoOInstrPJ  float64 // per instruction on the OoO core (rename/wakeup/ROB)
	SVRScalarPJ float64 // per transient SVR scalar (no fetch, SRF access)
	L1AccessPJ  float64
	L2AccessPJ  float64
	DRAMLinePJ  float64 // per 64 B line transfer (activation+IO)

	// Static power, watts.
	InOCoreStaticW  float64
	OoOCoreStaticW  float64
	UncoreStaticW   float64 // L2 + NoC + misc SoC
	DRAMBackgroundW float64

	FreqGHz float64
}

// DefaultParams returns the calibrated 22 nm coefficients.
func DefaultParams() Params {
	return Params{
		InOInstrPJ:      12,
		OoOInstrPJ:      85,
		SVRScalarPJ:     35, // execute + SRF + return counter; ~22% of core power in PRM (§VI-B)
		L1AccessPJ:      10,
		L2AccessPJ:      35,
		DRAMLinePJ:      3000,
		InOCoreStaticW:  0.085,
		OoOCoreStaticW:  0.78,
		UncoreStaticW:   0.22,
		DRAMBackgroundW: 0.60,
		FreqGHz:         2.0,
	}
}

// Activity is the event record of one simulation window.
type Activity struct {
	Core       CoreType
	Cycles     int64
	Instrs     uint64
	SVRScalars int64
	L1Accesses int64
	L2Accesses int64
	DRAMLines  int64
}

// Report is the energy breakdown of a window.
type Report struct {
	DynamicJ float64
	StaticJ  float64
	TotalJ   float64

	// Core-only dynamic split: architectural instructions vs the SVR
	// engine's transient scalars (the paper reports the latter at ~22 %
	// of core power during runahead-heavy phases).
	CoreInstrJ float64
	TransientJ float64

	Seconds    float64
	AvgPowerW  float64
	CorePowerW float64 // core-only average power (paper quotes 0.12/1.01 W)
	NJPerInstr float64

	coreStaticJ float64
}

// TransientShare returns the fraction of core energy (dynamic + core
// static) spent executing transient SVR scalars.
func (r Report) TransientShare() float64 {
	den := r.CoreInstrJ + r.TransientJ + r.coreStaticJ
	if den == 0 {
		return 0
	}
	return r.TransientJ / den
}

// Merge combines the reports of two disjoint measurement windows into
// one report covering both: joule fields and durations add, and the
// derived rates are recomputed over the combined window. instrs is the
// combined instruction count (for nJ/instruction).
func Merge(a, b Report, instrs uint64) Report {
	r := Report{
		DynamicJ:    a.DynamicJ + b.DynamicJ,
		StaticJ:     a.StaticJ + b.StaticJ,
		TotalJ:      a.TotalJ + b.TotalJ,
		CoreInstrJ:  a.CoreInstrJ + b.CoreInstrJ,
		TransientJ:  a.TransientJ + b.TransientJ,
		coreStaticJ: a.coreStaticJ + b.coreStaticJ,
		Seconds:     a.Seconds + b.Seconds,
	}
	if r.Seconds > 0 {
		r.AvgPowerW = r.TotalJ / r.Seconds
		r.CorePowerW = (r.coreStaticJ + r.CoreInstrJ + r.TransientJ) / r.Seconds
	}
	if instrs > 0 {
		r.NJPerInstr = r.TotalJ / float64(instrs) * 1e9
	}
	return r
}

// Estimate computes the energy report for an activity window.
func Estimate(p Params, a Activity) Report {
	seconds := float64(a.Cycles) / (p.FreqGHz * 1e9)

	instrPJ := p.InOInstrPJ
	coreStatic := p.InOCoreStaticW
	if a.Core == OutOfOrder {
		instrPJ = p.OoOInstrPJ
		coreStatic = p.OoOCoreStaticW
	}

	instrJ := float64(a.Instrs) * instrPJ * 1e-12
	transientJ := float64(a.SVRScalars) * p.SVRScalarPJ * 1e-12
	coreDynJ := instrJ + transientJ
	memDynJ := (float64(a.L1Accesses)*p.L1AccessPJ +
		float64(a.L2Accesses)*p.L2AccessPJ +
		float64(a.DRAMLines)*p.DRAMLinePJ) * 1e-12
	staticJ := (coreStatic + p.UncoreStaticW + p.DRAMBackgroundW) * seconds

	r := Report{
		DynamicJ:    coreDynJ + memDynJ,
		StaticJ:     staticJ,
		TotalJ:      coreDynJ + memDynJ + staticJ,
		CoreInstrJ:  instrJ,
		TransientJ:  transientJ,
		coreStaticJ: coreStatic * seconds,
		Seconds:     seconds,
	}
	if seconds > 0 {
		r.AvgPowerW = r.TotalJ / seconds
		r.CorePowerW = coreStatic + coreDynJ/seconds
	}
	if a.Instrs > 0 {
		r.NJPerInstr = r.TotalJ / float64(a.Instrs) * 1e9
	}
	return r
}

package ooo

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/trace"
)

func hcfg() cache.Config {
	cfg := cache.DefaultConfig()
	cfg.StrideDegree = 0
	return cfg
}

func runP(t *testing.T, p *isa.Program, m *mem.Memory, core *Core) {
	t.Helper()
	cpu := emu.New(p, m)
	core.Run(stream.NewLive(cpu), 1<<22)
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
}

func TestALUThroughput(t *testing.T) {
	b := isa.NewBuilder("alu")
	for i := 0; i < 3000; i++ {
		b.AddI(isa.Reg(1+i%8), isa.R0, int64(i))
	}
	b.Halt()
	core := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	runP(t, b.Build(), mem.New(), core)
	if ipc := core.IPC(); ipc < 2.2 { // cold I-TLB/I-cache front-end effects included
		t.Errorf("independent ALU IPC = %.2f, want ~3", ipc)
	}
}

// buildStrideIndirect emits the classic A[B[i]] loop over n iterations.
func buildStrideIndirect(idx, data mem.Array, n int64) *isa.Program {
	b := isa.NewBuilder("si")
	rIdx, rData, rI, rN, rA, rV, rSum := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b.LoadImm(rIdx, int64(idx.Base))
	b.LoadImm(rData, int64(data.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, n)
	b.Label("loop")
	b.ShlI(rA, rI, 2)
	b.Add(rA, rA, rIdx)
	b.Load(rV, rA, 0, 4) // striding load B[i]
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rData)
	b.Load(rV, rV, 0, 8) // indirect load A[B[i]]
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()
	return b.Build()
}

func setupStrideIndirect() (*mem.Memory, mem.Array, mem.Array) {
	m := mem.New()
	idx := m.NewArray(1<<16, 4)
	data := m.NewArray(1<<20, 8) // 8 MiB, far beyond L2
	x := uint64(99)
	for i := uint64(0); i < idx.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		idx.Set(i, (x>>16)%data.N)
	}
	return m, idx, data
}

func TestOoOBeatsInOrderOnIndirect(t *testing.T) {
	// The paper's Fig 3: on stride->indirect workloads the OoO core's
	// window overlaps misses that the in-order core serializes (~2.5x).
	m, idx, data := setupStrideIndirect()
	p := buildStrideIndirect(idx, data, 1<<14)

	o := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	runP(t, p, m, o)

	m2, idx2, data2 := setupStrideIndirect()
	_ = idx2
	_ = data2
	i := inorder.New(inorder.DefaultConfig(), cache.NewHierarchy(hcfg()))
	cpu := emu.New(buildStrideIndirect(idx2, data2, 1<<14), m2)
	i.Run(stream.NewLive(cpu), 1<<22)

	ratio := i.CPI() / o.CPI()
	if ratio < 1.5 {
		t.Errorf("OoO speedup over in-order = %.2fx (InO CPI %.2f, OoO CPI %.2f), want > 1.5x",
			ratio, i.CPI(), o.CPI())
	}
}

func TestROBWindowLimitsMLP(t *testing.T) {
	// A tiny ROB should hurt the same indirect workload.
	m, idx, data := setupStrideIndirect()
	small := DefaultConfig()
	small.ROB = 4
	cs := New(small, cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx, data, 1<<13), m, cs)

	m2, idx2, data2 := setupStrideIndirect()
	cb := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx2, data2, 1<<13), m2, cb)

	if float64(cs.Cycles()) < 1.3*float64(cb.Cycles()) {
		t.Errorf("ROB 4 (%d cyc) should be much slower than ROB 32 (%d cyc)",
			cs.Cycles(), cb.Cycles())
	}
}

func TestLSQLimitsMemOverlap(t *testing.T) {
	m, idx, data := setupStrideIndirect()
	small := DefaultConfig()
	small.LSQ = 1
	cs := New(small, cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx, data, 1<<13), m, cs)

	m2, idx2, data2 := setupStrideIndirect()
	cb := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx2, data2, 1<<13), m2, cb)

	if cs.Cycles() <= cb.Cycles() {
		t.Errorf("LSQ 1 (%d cyc) should be slower than LSQ 16 (%d cyc)",
			cs.Cycles(), cb.Cycles())
	}
}

func TestStoreToLoadOrdering(t *testing.T) {
	// A load from the address just stored must not complete before the
	// store. Functional correctness comes from the emulator; here we
	// check the timing model orders them.
	m := mem.New()
	a := m.NewArray(8, 8)
	b := isa.NewBuilder("stl")
	b.LoadImm(1, int64(a.Base))
	b.LoadImm(2, 42)
	b.Store(2, 1, 0, 8)
	b.Load(3, 1, 0, 8)
	b.Halt()
	core := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	cpu := emu.New(b.Build(), m)
	core.Run(stream.NewLive(cpu), 100)
	if cpu.Reg(3) != 42 {
		t.Fatalf("functional: r3 = %d", cpu.Reg(3))
	}
}

func TestMispredictionFlushCost(t *testing.T) {
	m := mem.New()
	a := m.NewArray(1<<14, 8)
	x := uint64(5)
	for i := uint64(0); i < a.N; i++ {
		x = x*2862933555777941757 + 3037000493
		a.Set(i, (x>>40)&1)
	}
	build := func(pred bool) *isa.Program {
		b := isa.NewBuilder("br")
		b.LoadImm(1, int64(a.Base))
		b.LoadImm(2, 0)
		b.Label("loop")
		b.Load(3, 1, 0, 8)
		if pred {
			b.CmpI(3, 99) // never equal: perfectly predictable
		} else {
			b.CmpI(3, 0) // random data: unpredictable
		}
		b.BEQ("skip")
		b.AddI(4, 4, 1)
		b.Label("skip")
		b.AddI(1, 1, 8)
		b.AddI(2, 2, 1)
		b.CmpI(2, 1<<13)
		b.BLT("loop")
		b.Halt()
		return b.Build()
	}
	cPred := New(DefaultConfig(), cache.NewHierarchy(cache.DefaultConfig()))
	runP(t, build(true), m, cPred)
	cRand := New(DefaultConfig(), cache.NewHierarchy(cache.DefaultConfig()))
	runP(t, build(false), m, cRand)
	if cRand.Cycles() <= cPred.Cycles() {
		t.Errorf("unpredictable branches (%d cyc) not slower than predictable (%d cyc)",
			cRand.Cycles(), cPred.Cycles())
	}
}

func TestCPIStackNormalizes(t *testing.T) {
	m, idx, data := setupStrideIndirect()
	core := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx, data, 1<<12), m, core)
	s := core.NormalizedStack()
	if d := s.CPI() - core.CPI(); d > 0.01 || d < -0.01 {
		t.Errorf("stack %.3f vs CPI %.3f", s.CPI(), core.CPI())
	}
}

func TestResetStats(t *testing.T) {
	b := isa.NewBuilder("w")
	for i := 0; i < 100; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	core := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	cpu := emu.New(b.Build(), mem.New())
	core.Run(stream.NewLive(cpu), 50)
	core.H.Reg.Reset()
	if core.Instrs != 0 || core.Cycles() != 0 {
		t.Fatal("stats not cleared")
	}
	core.Run(stream.NewLive(cpu), 20)
	if core.Instrs != 20 || core.Cycles() <= 0 {
		t.Errorf("window: %d instrs, %d cycles", core.Instrs, core.Cycles())
	}
}

func TestOoOTracer(t *testing.T) {
	b := isa.NewBuilder("tr")
	for i := 0; i < 10; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	core := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	ring := trace.NewRing(64)
	core.Tracer = ring
	cpu := emu.New(b.Build(), mem.New())
	core.Run(stream.NewLive(cpu), 100)
	if ring.Total() != 22 { // 11 instrs x (issue + complete)
		t.Errorf("trace events = %d, want 22", ring.Total())
	}
}

func TestRSLimitsInflightIssueWindow(t *testing.T) {
	// A long dependence chain parks instructions in the reservation
	// station; RS=2 must throttle dispatch hard compared to RS=32.
	m, idx, data := setupStrideIndirect()
	small := DefaultConfig()
	small.RS = 2
	cs := New(small, cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx, data, 1<<13), m, cs)

	m2, idx2, data2 := setupStrideIndirect()
	cb := New(DefaultConfig(), cache.NewHierarchy(hcfg()))
	runP(t, buildStrideIndirect(idx2, data2, 1<<13), m2, cb)

	if float64(cs.Cycles()) < 1.1*float64(cb.Cycles()) {
		t.Errorf("RS 2 (%d cyc) should be slower than RS 32 (%d cyc)",
			cs.Cycles(), cb.Cycles())
	}
}

// Package ooo models the out-of-order comparison core of Table III: 3-wide
// dispatch/commit, 32-entry ROB, 32-entry reservation station, 16-entry
// load/store queue, same branch predictor and memory hierarchy as the
// in-order core. The configuration deliberately allows the same number of
// in-flight instructions as the in-order scoreboard (32) for the paper's
// fair comparison.
//
// The model is a trace-driven window: instructions dispatch in order into
// the ROB, issue data-driven when their sources are ready (renaming
// removes false dependences), and commit in order. Memory-level
// parallelism emerges from independent loads overlapping within the ROB
// window, bounded by the LSQ and the L1 MSHRs.
package ooo

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes the core.
type Config struct {
	Width             int
	ROB               int
	RS                int
	LSQ               int
	MemPorts          int
	MispredictPenalty int64

	LatALU, LatMul, LatDiv, LatFPU int64
	BPredTableBits                 uint
}

// DefaultConfig mirrors Table III's out-of-order column.
func DefaultConfig() Config {
	return Config{
		Width: 3, ROB: 32, RS: 32, LSQ: 16, MemPorts: 2, MispredictPenalty: 10,
		LatALU: 1, LatMul: 3, LatDiv: 12, LatFPU: 4,
		BPredTableBits: 12,
	}
}

// codeBase mirrors the in-order core's synthetic code segment address.
const codeBase = 0x4000_0000

// Core is the out-of-order timing model.
type Core struct {
	Cfg    Config
	H      *cache.Hierarchy
	BP     *bpred.Predictor
	Tracer trace.Tracer // optional pipeline event tracing

	dispatchSlot int64        // front-end cursor, slot units
	commitSlot   int64        // in-order commit cursor, slot units
	rob          ring         // FIFO of commit times of in-flight entries
	lsq          ring         // FIFO of commit times of in-flight mem ops
	rs           []int64      // issue times of entries occupying the reservation station
	batchRec     emu.DynInstr // scratch row for RunBatch (keeps the loop allocation-free)
	regReady     [isa.NumRegs]int64
	regReason    [isa.NumRegs]stats.StallReason
	flagsReady   int64
	fetchReady   int64
	memPortFree  []int64
	storeReady   map[uint64]int64 // line addr -> latest prior store completion

	startCycle int64

	// Stats.
	Stack      stats.CPIStack
	Instrs     uint64
	Loads      uint64
	Stores     uint64
	Branches   uint64
	LoadsByLvl [3]uint64
}

// New builds a core over the given memory hierarchy and registers its
// statistics with the hierarchy's metrics registry; non-counter window
// state (CPI stack, window start cycle) re-baselines via an OnReset hook.
func New(cfg Config, h *cache.Hierarchy) *Core {
	c := &Core{
		Cfg:         cfg,
		H:           h,
		BP:          bpred.New(cfg.BPredTableBits),
		rob:         newRing(cfg.ROB),
		lsq:         newRing(cfg.LSQ),
		rs:          make([]int64, 0, cfg.RS),
		memPortFree: make([]int64, cfg.MemPorts),
		storeReady:  make(map[uint64]int64),
	}
	r := h.Reg
	r.Uint64("core.instrs", "instructions committed", &c.Instrs)
	r.Uint64("core.loads", "loads issued", &c.Loads)
	r.Uint64("core.stores", "stores issued", &c.Stores)
	r.Uint64("core.branches", "conditional branches issued", &c.Branches)
	r.Uint64("core.loads.l1", "loads served from L1", &c.LoadsByLvl[cache.LevelL1])
	r.Uint64("core.loads.l2", "loads served from L2", &c.LoadsByLvl[cache.LevelL2])
	r.Uint64("core.loads.mem", "loads served from DRAM", &c.LoadsByLvl[cache.LevelMem])
	r.Int64("bpred.lookups", "branch predictor lookups", &c.BP.Lookups)
	r.Int64("bpred.mispredicts", "branch mispredictions", &c.BP.Mispredict)
	r.OnReset(func() {
		c.Stack = stats.CPIStack{}
		c.startCycle = c.cycleOf(c.commitSlot)
	})
	return c
}

func (c *Core) cycleOf(slot int64) int64 { return slot / int64(c.Cfg.Width) }

func levelReason(l cache.Level) stats.StallReason {
	switch l {
	case cache.LevelMem:
		return stats.StallMemDRAM
	case cache.LevelL2:
		return stats.StallMemL2
	default:
		return stats.StallOther
	}
}

// Issue runs one dynamic instruction through the window model.
func (c *Core) Issue(rec *emu.DynInstr) {
	in := rec.Instr

	// Dispatch: in order, 3/cycle, blocked by fetch bubbles and ROB space.
	dSlot := c.dispatchSlot
	if bubble := c.H.FetchInstr(codeBase+uint64(rec.PC)*4, c.cycleOf(dSlot)); bubble > 0 {
		if fr := c.cycleOf(dSlot) + bubble; fr > c.fetchReady {
			c.fetchReady = fr
		}
	}
	if fr := c.fetchReady * int64(c.Cfg.Width); fr > dSlot {
		dSlot = fr
	}
	if c.rob.len >= c.Cfg.ROB {
		oldest := c.rob.pop()
		if os := oldest * int64(c.Cfg.Width); os > dSlot {
			dSlot = os
		}
	}
	if in.IsMem() && c.lsq.len >= c.Cfg.LSQ {
		oldest := c.lsq.pop()
		if os := oldest * int64(c.Cfg.Width); os > dSlot {
			dSlot = os
		}
	}
	// Reservation station: entries occupy a slot from dispatch until
	// they issue; a full RS stalls dispatch until the earliest issue.
	c.pruneRS(c.cycleOf(dSlot))
	for len(c.rs) >= c.Cfg.RS {
		earliest := c.rs[0]
		for _, t := range c.rs[1:] {
			if t < earliest {
				earliest = t
			}
		}
		if es := earliest * int64(c.Cfg.Width); es > dSlot {
			dSlot = es
		}
		c.pruneRS(earliest)
		if len(c.rs) >= c.Cfg.RS {
			// All remaining entries issue at or after `earliest`; drop
			// the earliest one explicitly to guarantee progress.
			drop := 0
			for i, t := range c.rs {
				if t < c.rs[drop] {
					drop = i
				}
			}
			c.rs[drop] = c.rs[len(c.rs)-1]
			c.rs = c.rs[:len(c.rs)-1]
		}
	}
	dispatch := c.cycleOf(dSlot)
	c.dispatchSlot = dSlot + 1

	// Issue: data-driven.
	ready := dispatch
	reason := stats.StallBase
	var srcBuf [2]isa.Reg
	for _, r := range in.SrcRegs(srcBuf[:0]) {
		if c.regReady[r] > ready {
			ready = c.regReady[r]
			reason = c.regReason[r]
		}
	}
	if (in.IsBranch() || in.Kind() == isa.KindCmp) && c.flagsReady > ready {
		// cmp/branch pairs serialize on flags like real condition codes.
		if in.IsBranch() {
			ready = c.flagsReady
			reason = stats.StallOther
		}
	}

	lineAddr := rec.Addr &^ (cache.LineSize - 1)
	if in.Kind() == isa.KindLoad {
		if sr, ok := c.storeReady[lineAddr]; ok && sr > ready {
			// Store-to-load: the load cannot bypass the producer store.
			ready = sr
			reason = stats.StallOther
		}
	}

	// Memory port.
	if in.IsMem() {
		best := 0
		for i := range c.memPortFree {
			if c.memPortFree[i] < c.memPortFree[best] {
				best = i
			}
		}
		if c.memPortFree[best] > ready {
			ready = c.memPortFree[best]
			reason = stats.StallOther
		}
		c.memPortFree[best] = ready + 1
	}

	// Execute.
	complete := ready + c.Cfg.LatALU
	switch in.Kind() {
	case isa.KindLoad:
		res := c.H.Access(rec.PC, rec.Addr, false, ready)
		complete = res.CompleteAt
		reason = levelReason(res.Level)
		c.setReg(in.Rd, complete, reason)
		c.Loads++
		c.LoadsByLvl[res.Level]++
	case isa.KindStore:
		c.H.Access(rec.PC, rec.Addr, true, ready)
		complete = ready + 1
		c.storeReady[lineAddr] = complete
		c.Stores++
	case isa.KindCmp:
		complete = ready + c.Cfg.LatALU
		c.flagsReady = complete
	case isa.KindBranch:
		c.Branches++
		complete = ready + 1
		if c.BP.Predict(rec.PC, rec.Taken) {
			// The flush is felt when the branch resolves at execute.
			if fr := complete + c.Cfg.MispredictPenalty; fr > c.fetchReady {
				c.fetchReady = fr
			}
		}
	case isa.KindJump, isa.KindHalt, isa.KindNop:
		complete = ready + 1
	case isa.KindMul:
		complete = ready + c.Cfg.LatMul
		c.setReg(in.Rd, complete, stats.StallOther)
	case isa.KindDiv:
		complete = ready + c.Cfg.LatDiv
		c.setReg(in.Rd, complete, stats.StallOther)
	case isa.KindFPU:
		complete = ready + c.Cfg.LatFPU
		c.setReg(in.Rd, complete, stats.StallOther)
	default:
		complete = ready + c.Cfg.LatALU
		c.setReg(in.Rd, complete, stats.StallOther)
	}

	// Commit: in order, Width per cycle, after completion.
	cSlot := c.commitSlot + 1
	if cs := (complete + 1) * int64(c.Cfg.Width); cs > cSlot {
		// The commit gap is attributed to whatever this instruction
		// waited on (its completion dominates the commit stream).
		c.Stack.Add(reason, float64(cs-cSlot)/float64(c.Cfg.Width))
		cSlot = cs
	}
	c.Stack.Add(stats.StallBase, 1/float64(c.Cfg.Width))
	c.commitSlot = cSlot
	commitTime := c.cycleOf(cSlot)

	c.rob.push(commitTime)
	if in.IsMem() {
		c.lsq.push(commitTime)
	}
	c.rs = append(c.rs, ready)
	c.Instrs++
	c.Stack.Instrs++

	if c.Tracer != nil {
		c.Tracer.Emit(trace.Event{Kind: trace.KindIssue, Seq: rec.Seq, PC: rec.PC,
			Cycle: ready, Text: in.String(), Arg: dSlot % int64(c.Cfg.Width)})
		c.Tracer.Emit(trace.Event{Kind: trace.KindComplete, Seq: rec.Seq, PC: rec.PC,
			Cycle: complete, Text: "commit"})
	}
}

// ring is a fixed-capacity int64 FIFO: the ROB and LSQ occupancy FIFOs
// are bounded by their configured sizes, so a ring keeps the dispatch
// path allocation-free (append+reslice-front churns the backing array
// with a fresh allocation every capacity-filling wraparound).
type ring struct {
	buf  []int64
	head int
	len  int
}

func newRing(capacity int) ring {
	if capacity < 1 {
		capacity = 1
	}
	return ring{buf: make([]int64, capacity)}
}

func (r *ring) push(v int64) {
	if r.len == len(r.buf) {
		panic("ooo: ring overflow")
	}
	r.buf[(r.head+r.len)%len(r.buf)] = v
	r.len++
}

func (r *ring) pop() int64 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.len--
	return v
}

// pruneRS drops reservation-station entries that issued at or before at.
func (c *Core) pruneRS(at int64) {
	keep := c.rs[:0]
	for _, t := range c.rs {
		if t > at {
			keep = append(keep, t)
		}
	}
	c.rs = keep
}

func (c *Core) setReg(r isa.Reg, ready int64, reason stats.StallReason) {
	if r == isa.R0 {
		return
	}
	c.regReady[r] = ready
	c.regReason[r] = reason
}

// Now returns the core's current commit-cursor cycle; co-simulation
// drivers use it to keep cores loosely synchronized in simulated time.
func (c *Core) Now() int64 { return c.cycleOf(c.commitSlot) }

// Cycles returns cycles elapsed in the measurement window.
func (c *Core) Cycles() int64 { return c.cycleOf(c.commitSlot) - c.startCycle }

// CPI returns cycles per committed instruction.
func (c *Core) CPI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.Cycles()) / float64(c.Instrs)
}

// IPC returns instructions per cycle.
func (c *Core) IPC() float64 {
	if cy := c.Cycles(); cy > 0 {
		return float64(c.Instrs) / float64(cy)
	}
	return 0
}

// NormalizedStack rescales the CPI stack to sum to the measured CPI.
func (c *Core) NormalizedStack() stats.CPIStack {
	s := c.Stack
	sum := 0.0
	for _, v := range s.Cycles {
		sum += v
	}
	if sum > 0 {
		scale := float64(c.Cycles()) / sum
		for i := range s.Cycles {
			s.Cycles[i] *= scale
		}
	}
	return s
}

// Run pulls up to maxInstr instructions from the source (live emulator
// or recorded-stream replay) through the core.
func (c *Core) Run(src stream.InstrSource, maxInstr uint64) uint64 {
	var rec emu.DynInstr
	var n uint64
	for n < maxInstr && src.Next(&rec) {
		c.Issue(&rec)
		n++
	}
	return n
}

// RunBatch issues rows [lo, hi) of a shared decoded batch through the
// core — bit-identical to Run over a source yielding the same records
// (each row is copied into the one DynInstr Issue consumes), minus the
// per-instruction decode and interface dispatch.
func (c *Core) RunBatch(b *stream.DecodedBatch, lo, hi int) {
	// The scratch record lives on the core, not the stack: Issue's
	// receiver-escape would otherwise heap-allocate it every call.
	rec := &c.batchRec
	for i := lo; i < hi; i++ {
		b.Row(i, rec)
		c.Issue(rec)
	}
}

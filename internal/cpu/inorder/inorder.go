// Package inorder models the 3-wide stall-on-use in-order core of
// Table III (configured after the Arm Cortex-A510): in-order issue limited
// by a 32-entry scoreboard, register ready-times for stall-on-use
// semantics, two memory ports, a tournament branch predictor with a
// 10-cycle misprediction penalty, and CPI-stack attribution.
//
// A Companion (the SVR engine, or the IMP prefetcher adapter) can observe
// every issued instruction and consume issue slots of its own — this is
// how piggyback runahead shares the real pipeline.
package inorder

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes the core.
type Config struct {
	Width             int   // issue width (3)
	Scoreboard        int   // in-flight instruction limit (32)
	MemPorts          int   // load/store issue ports per cycle (2)
	StoreBuffer       int   // store-buffer entries draining to L1 (8)
	MispredictPenalty int64 // cycles (10)

	LatALU, LatMul, LatDiv, LatFPU int64
	BPredTableBits                 uint
}

// DefaultConfig mirrors Table III's in-order column.
func DefaultConfig() Config {
	return Config{
		Width: 3, Scoreboard: 32, MemPorts: 2, StoreBuffer: 8, MispredictPenalty: 10,
		LatALU: 1, LatMul: 3, LatDiv: 12, LatFPU: 4,
		BPredTableBits: 12,
	}
}

// Companion observes issued instructions (SVR engine / IMP adapter).
type Companion interface {
	// OnIssue is called after rec issues at cycle issueAt with the given
	// data-service level (loads only; LevelL1 otherwise). It returns the
	// number of extra issue slots the companion consumed.
	OnIssue(rec *emu.DynInstr, issueAt int64, level cache.Level) (extraSlots int64)
}

type sbEntry struct {
	completeAt int64
	reason     stats.StallReason
}

// Core is the in-order timing model.
type Core struct {
	Cfg       Config
	H         *cache.Hierarchy
	BP        *bpred.Predictor
	Companion Companion
	Tracer    trace.Tracer // optional pipeline event tracing

	slot        int64 // issue-slot cursor (cycle*Width + slot index)
	width       int64 // Cfg.Width, hoisted for the per-issue conversions
	fWidth      float64
	invWidth    float64      // 1/Width, the per-slot CPI-stack increment
	batchRec    emu.DynInstr // scratch row for RunBatch (keeps the loop allocation-free)
	regReady    [isa.NumRegs]int64
	regReason   [isa.NumRegs]stats.StallReason
	flagsReady  int64
	fetchReady  int64 // cycle fetch resumes after a misprediction
	memPortFree []int64
	storeBuf    []int64 // drain-complete time per store-buffer entry
	sb          []sbEntry
	// sbMin is a conservative lower bound on the scoreboard's earliest
	// completion (stale-low is fine): pruning is a guaranteed no-op while
	// sbMin exceeds the prune horizon, which keeps the per-issue
	// compaction scan off the hot path.
	sbMin int64

	startCycle  int64
	maxComplete int64

	// Stats (since last ResetStats).
	Stack      stats.CPIStack
	Instrs     uint64
	Loads      uint64
	Stores     uint64
	Branches   uint64
	LoadsByLvl [3]uint64
	ExtraSlots int64 // slots consumed by the companion
}

// New builds a core over the given memory hierarchy and registers its
// statistics with the hierarchy's metrics registry: the counters reset
// with everything else at the warmup boundary, and the non-counter window
// state (CPI stack, window start cycle) re-baselines via an OnReset hook.
func New(cfg Config, h *cache.Hierarchy) *Core {
	sbuf := cfg.StoreBuffer
	if sbuf <= 0 {
		sbuf = 1
	}
	c := &Core{
		Cfg:         cfg,
		H:           h,
		BP:          bpred.New(cfg.BPredTableBits),
		memPortFree: make([]int64, cfg.MemPorts),
		storeBuf:    make([]int64, sbuf),
		width:       int64(cfg.Width),
		fWidth:      float64(cfg.Width),
		invWidth:    1 / float64(cfg.Width),
		sbMin:       int64(1) << 62,
	}
	r := h.Reg
	r.Uint64("core.instrs", "instructions committed", &c.Instrs)
	r.Uint64("core.loads", "loads issued", &c.Loads)
	r.Uint64("core.stores", "stores issued", &c.Stores)
	r.Uint64("core.branches", "conditional branches issued", &c.Branches)
	r.Uint64("core.loads.l1", "loads served from L1", &c.LoadsByLvl[cache.LevelL1])
	r.Uint64("core.loads.l2", "loads served from L2", &c.LoadsByLvl[cache.LevelL2])
	r.Uint64("core.loads.mem", "loads served from DRAM", &c.LoadsByLvl[cache.LevelMem])
	r.Int64("core.extra_slots", "issue slots consumed by the companion", &c.ExtraSlots)
	r.Int64("bpred.lookups", "branch predictor lookups", &c.BP.Lookups)
	r.Int64("bpred.mispredicts", "branch mispredictions", &c.BP.Mispredict)
	r.OnReset(func() {
		c.Stack = stats.CPIStack{}
		c.startCycle = c.cycleOf(c.slot)
		c.maxComplete = c.startCycle
	})
	return c
}

// cycleOf converts an issue-slot index to a cycle. The default width is
// special-cased so the hot per-issue conversions compile to a
// constant-divisor multiply instead of a hardware divide.
func (c *Core) cycleOf(slot int64) int64 {
	if c.width == 3 {
		return slot / 3
	}
	return slot / int64(c.Cfg.Width)
}

func levelReason(l cache.Level) stats.StallReason {
	switch l {
	case cache.LevelMem:
		return stats.StallMemDRAM
	case cache.LevelL2:
		return stats.StallMemL2
	default:
		return stats.StallOther
	}
}

// CodeBase is the synthetic address of instruction index 0; instruction
// fetch addresses are CodeBase + 4*pc (fixed 4-byte encoding).
const CodeBase = 0x4000_0000

// Issue runs one dynamic instruction through the pipeline model.
func (c *Core) Issue(rec *emu.DynInstr) {
	in := rec.Instr
	kind := in.Kind() // IsMem/IsBranch below are derived from Kind
	cursor := c.slot
	earliest := c.cycleOf(cursor)
	cause := stats.StallBase

	// Front-end: instruction fetch (free on the L1-I hits that dominate
	// loop execution) and misprediction bubbles.
	if bubble := c.H.FetchInstr(CodeBase+uint64(rec.PC)*4, earliest); bubble > 0 {
		if fr := earliest + bubble; fr > c.fetchReady {
			c.fetchReady = fr
		}
	}
	if c.fetchReady > earliest {
		earliest = c.fetchReady
		cause = stats.StallBranch
	}

	// Stall-on-use: wait for source registers.
	var srcBuf [2]isa.Reg
	for _, r := range in.SrcRegs(srcBuf[:0]) {
		if c.regReady[r] > earliest {
			earliest = c.regReady[r]
			cause = c.regReason[r]
		}
	}
	// Branches read the flags.
	if kind == isa.KindBranch && c.flagsReady > earliest {
		earliest = c.flagsReady
		cause = stats.StallOther
	}

	// Scoreboard: wait for space.
	for len(c.sb) >= c.Cfg.Scoreboard {
		bi := 0
		for i := range c.sb {
			if c.sb[i].completeAt < c.sb[bi].completeAt {
				bi = i
			}
		}
		if e := c.sb[bi]; e.completeAt > earliest {
			earliest = e.completeAt
			cause = e.reason
		}
		c.sb[bi] = c.sb[len(c.sb)-1]
		c.sb = c.sb[:len(c.sb)-1]
	}
	c.pruneScoreboard(earliest)

	// Memory port for loads and stores.
	memPort := -1
	if kind == isa.KindLoad || kind == isa.KindStore {
		for i := range c.memPortFree {
			if memPort < 0 || c.memPortFree[i] < c.memPortFree[memPort] {
				memPort = i
			}
		}
		if c.memPortFree[memPort] > earliest {
			earliest = c.memPortFree[memPort]
			cause = stats.StallOther
		}
	}

	// Claim the issue slot.
	slot := cursor
	if es := earliest * c.width; es > slot {
		// Stalled: attribute the whole gap to the binding constraint.
		// (Division, not multiply-by-reciprocal: the quotient must round
		// identically to the original expression.)
		c.Stack.Add(cause, float64(es-slot)/c.fWidth)
		slot = es
	}
	issueAt := c.cycleOf(slot)
	c.slot = slot + 1
	if memPort >= 0 {
		c.memPortFree[memPort] = issueAt + 1
	}
	c.Stack.Add(stats.StallBase, c.invWidth)

	// Execute.
	complete := issueAt + 1
	reason := stats.StallOther
	level := cache.LevelL1
	switch kind {
	case isa.KindLoad:
		res := c.H.Access(rec.PC, rec.Addr, false, issueAt)
		complete = res.CompleteAt
		level = res.Level
		reason = levelReason(res.Level)
		c.setReg(in.Rd, complete, reason)
		c.Loads++
		c.LoadsByLvl[res.Level]++
	case isa.KindStore:
		// Stores retire into the store buffer and drain to L1 in the
		// background; the core stalls only when the buffer is full.
		slot := 0
		for i := range c.storeBuf {
			if c.storeBuf[i] < c.storeBuf[slot] {
				slot = i
			}
		}
		drainStart := issueAt
		if c.storeBuf[slot] > drainStart {
			// Buffer full: the store (and the in-order stream behind
			// it) waits for the oldest drain.
			c.Stack.Add(stats.StallOther, float64(c.storeBuf[slot]-drainStart))
			drainStart = c.storeBuf[slot]
			c.slot = drainStart * int64(c.Cfg.Width)
			issueAt = drainStart
		}
		res := c.H.Access(rec.PC, rec.Addr, true, drainStart)
		c.storeBuf[slot] = res.CompleteAt
		complete = issueAt + 1
		c.Stores++
	case isa.KindCmp:
		complete = issueAt + c.Cfg.LatALU
		c.flagsReady = complete
	case isa.KindBranch:
		c.Branches++
		if c.BP.Predict(rec.PC, rec.Taken) {
			c.fetchReady = issueAt + 1 + c.Cfg.MispredictPenalty
		}
	case isa.KindJump, isa.KindHalt, isa.KindNop:
		// Single-slot, no destination.
	case isa.KindMul:
		complete = issueAt + c.Cfg.LatMul
		c.setReg(in.Rd, complete, stats.StallOther)
	case isa.KindDiv:
		complete = issueAt + c.Cfg.LatDiv
		c.setReg(in.Rd, complete, stats.StallOther)
	case isa.KindFPU:
		complete = issueAt + c.Cfg.LatFPU
		c.setReg(in.Rd, complete, stats.StallOther)
	default: // ALU
		complete = issueAt + c.Cfg.LatALU
		c.setReg(in.Rd, complete, stats.StallOther)
	}

	c.sb = append(c.sb, sbEntry{completeAt: complete, reason: reason})
	if complete < c.sbMin {
		c.sbMin = complete
	}
	if complete > c.maxComplete {
		c.maxComplete = complete
	}
	c.Instrs++
	c.Stack.Instrs++

	if c.Tracer != nil {
		c.Tracer.Emit(trace.Event{Kind: trace.KindIssue, Seq: rec.Seq, PC: rec.PC,
			Cycle: issueAt, Text: in.String(), Arg: slot % c.width})
		if in.Kind() == isa.KindLoad {
			c.Tracer.Emit(trace.Event{Kind: trace.KindComplete, Seq: rec.Seq, PC: rec.PC,
				Cycle: complete, Text: level.String(), Arg: int64(rec.Addr)})
		}
	}

	if c.Companion != nil {
		if extra := c.Companion.OnIssue(rec, issueAt, level); extra > 0 {
			c.slot += extra
			c.ExtraSlots += extra
		}
	}
}

func (c *Core) setReg(r isa.Reg, ready int64, reason stats.StallReason) {
	if r == isa.R0 {
		return
	}
	c.regReady[r] = ready
	c.regReason[r] = reason
}

func (c *Core) pruneScoreboard(at int64) {
	if c.sbMin > at {
		return // nothing to drop; compaction would be a no-op
	}
	keep := c.sb[:0]
	newMin := int64(1) << 62
	for _, e := range c.sb {
		if e.completeAt > at {
			keep = append(keep, e)
			if e.completeAt < newMin {
				newMin = e.completeAt
			}
		}
	}
	c.sb = keep
	c.sbMin = newMin
}

// Now returns the core's current issue-cursor cycle; the multi-core
// driver uses it to keep cores loosely synchronized in simulated time.
func (c *Core) Now() int64 { return c.cycleOf(c.slot) }

// Cycles returns the cycles elapsed since the last ResetStats, including
// the drain of the last in-flight instructions.
func (c *Core) Cycles() int64 {
	end := c.cycleOf(c.slot)
	if c.maxComplete > end {
		end = c.maxComplete
	}
	return end - c.startCycle
}

// CPI returns cycles per committed instruction.
func (c *Core) CPI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.Cycles()) / float64(c.Instrs)
}

// IPC returns instructions per cycle.
func (c *Core) IPC() float64 {
	if cy := c.Cycles(); cy > 0 {
		return float64(c.Instrs) / float64(cy)
	}
	return 0
}

// NormalizedStack returns the CPI stack rescaled so its components sum to
// the measured CPI (the per-constraint attribution is approximate).
func (c *Core) NormalizedStack() stats.CPIStack {
	s := c.Stack
	sum := 0.0
	for _, v := range s.Cycles {
		sum += v
	}
	if sum > 0 {
		scale := float64(c.Cycles()) / sum
		for i := range s.Cycles {
			s.Cycles[i] *= scale
		}
	}
	return s
}

// Run pulls up to maxInstr instructions from the source through the
// core, returning the number executed. The source is either a live
// emulator (stream.LiveSource) or a pre-recorded stream replay
// (stream.ReplaySource); the core is agnostic — it consumes DynInstr
// records either way.
func (c *Core) Run(src stream.InstrSource, maxInstr uint64) uint64 {
	var rec emu.DynInstr
	var n uint64
	for n < maxInstr && src.Next(&rec) {
		c.Issue(&rec)
		n++
	}
	return n
}

// RunBatch issues rows [lo, hi) of a shared decoded batch through the
// core: the cohort driver's lockstep entry point. Each row is copied
// into the same DynInstr record Issue consumes from Run, so the timing
// walk is bit-identical to replaying the rows through an InstrSource —
// the batch only removes the per-instruction decode and the interface
// dispatch.
func (c *Core) RunBatch(b *stream.DecodedBatch, lo, hi int) {
	// The scratch record lives on the core, not the stack: Issue's
	// receiver-escape would otherwise heap-allocate it every call.
	rec := &c.batchRec
	for i := lo; i < hi; i++ {
		b.Row(i, rec)
		c.Issue(rec)
	}
}

// RunBatchView is RunBatch for cohort members whose companion reads
// architectural state (the SVR engine, the IMP prefetcher): the
// member's private view advances past each row before the row issues,
// so the companion observes post-retire values exactly as it would
// behind a live emulator or a solo ReplaySource.
func (c *Core) RunBatchView(b *stream.DecodedBatch, lo, hi int, v *stream.ArchView) {
	rec := &c.batchRec
	for i := lo; i < hi; i++ {
		b.Row(i, rec)
		v.Advance(rec)
		c.Issue(rec)
	}
}

package inorder

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/stream"
)

func newCore() *Core {
	cfg := cache.DefaultConfig()
	cfg.StrideDegree = 0
	return New(DefaultConfig(), cache.NewHierarchy(cfg))
}

func run(t *testing.T, p *isa.Program, m *mem.Memory, core *Core) *emu.CPU {
	t.Helper()
	cpu := emu.New(p, m)
	core.Run(stream.NewLive(cpu), 1<<22)
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	return cpu
}

func TestALUThroughput(t *testing.T) {
	b := isa.NewBuilder("alu")
	// 3000 independent single-cycle ALU ops should issue 3 per cycle.
	for i := 0; i < 3000; i++ {
		b.AddI(isa.Reg(1+i%8), isa.R0, int64(i))
	}
	b.Halt()
	core := newCore()
	run(t, b.Build(), mem.New(), core)
	if ipc := core.IPC(); ipc < 2.2 { // cold I-TLB/I-cache front-end effects included
		t.Errorf("independent ALU IPC = %.2f, want ~3", ipc)
	}
}

func TestDependentALUSerializes(t *testing.T) {
	b := isa.NewBuilder("dep")
	for i := 0; i < 3000; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	core := newCore()
	run(t, b.Build(), mem.New(), core)
	if ipc := core.IPC(); ipc > 1.1 {
		t.Errorf("dependent-chain IPC = %.2f, want ~1", ipc)
	}
}

func TestStallOnUseNotOnMiss(t *testing.T) {
	// A missing load followed by many independent ALU ops: the ALU work
	// should proceed; a dependent use at the end pays the miss.
	m := mem.New()
	a := m.NewArray(64, 8)

	build := func(useEarly bool) *isa.Program {
		b := isa.NewBuilder("sou")
		b.LoadImm(1, int64(a.Base))
		b.Load(2, 1, 0, 8) // cold miss
		if useEarly {
			b.Add(3, 2, 2) // immediate use: stalls
		}
		for i := 0; i < 200; i++ {
			b.AddI(4, isa.R0, int64(i)) // independent work
		}
		b.Add(3, 2, 2) // eventual use
		b.Halt()
		return b.Build()
	}

	early := newCore()
	run(t, build(true), m, early)
	late := newCore()
	run(t, build(false), mem.New(), late) // fresh memory: still cold miss

	if late.Cycles() >= early.Cycles() {
		t.Errorf("hiding the miss under independent work didn't help: late=%d early=%d",
			late.Cycles(), early.Cycles())
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Two independent cold-missing loads vs two dependent (chained)
	// loads: the independent pair should be much faster.
	m := mem.New()
	a := m.NewArray(1<<16, 8)
	// a[0] holds the address of a far element for the chase.
	far := a.Addr(1 << 12)
	a.SetI(0, int64(far))

	indep := isa.NewBuilder("indep")
	indep.LoadImm(1, int64(a.Addr(0)))
	indep.LoadImm(2, int64(a.Addr(1<<10)))
	indep.Load(3, 1, 0, 8)
	indep.Load(4, 2, 0, 8)
	indep.Add(5, 3, 4)
	indep.Halt()

	chain := isa.NewBuilder("chain")
	chain.LoadImm(1, int64(a.Addr(0)))
	chain.Load(2, 1, 0, 8) // loads &a[4096]
	chain.Load(3, 2, 0, 8) // dependent chase
	chain.Add(5, 3, 3)
	chain.Halt()

	ci := newCore()
	run(t, indep.Build(), m, ci)
	cc := newCore()
	run(t, chain.Build(), m, cc)

	// Both runs pay the same constant cold front-end cost (~140 cycles
	// of I-TLB walk + first I-line fill), which compresses the ratio of
	// these tiny programs below the ideal 2x.
	if float64(cc.Cycles()) < 1.3*float64(ci.Cycles()) {
		t.Errorf("chained loads (%d cyc) should be well above independent (%d cyc)",
			cc.Cycles(), ci.Cycles())
	}
}

func TestPointerChaseCPIHigh(t *testing.T) {
	// A pointer chase over a ring far larger than L2 should approach
	// DRAM latency per load -> CPI in the tens.
	m := mem.New()
	const n = 1 << 17 // 128K nodes * 64B stride = 8 MiB footprint
	nodes := m.NewArray(n*8, 8)
	step := uint64(8) // 64-byte spacing in elements
	for i := uint64(0); i < n; i++ {
		cur := (i * step * 2459) % (n * 8) // scatter
		next := ((i + 1) * step * 2459) % (n * 8)
		nodes.SetI(cur, int64(nodes.Addr(next)))
	}
	b := isa.NewBuilder("chase")
	b.LoadImm(1, int64(nodes.Addr(0)))
	b.Label("loop")
	b.Load(1, 1, 0, 8)
	b.CmpI(1, 0)
	b.BNE("loop")
	b.Halt()

	core := newCore()
	cpu := emu.New(b.Build(), m)
	core.Run(stream.NewLive(cpu), 60000)
	if cpi := core.CPI(); cpi < 20 {
		t.Errorf("pointer-chase CPI = %.1f, want > 20 (DRAM-bound)", cpi)
	}
	stack := core.NormalizedStack()
	if frac := stack.Component(stats.StallMemDRAM) / stack.CPI(); frac < 0.7 {
		t.Errorf("DRAM share of CPI = %.2f, want > 0.7", frac)
	}
}

func TestBranchMispredictBubbles(t *testing.T) {
	// A data-dependent unpredictable branch pattern vs an always-taken
	// loop: the unpredictable one should be slower per instruction.
	m := mem.New()
	a := m.NewArray(1<<14, 8)
	x := uint64(12345)
	for i := uint64(0); i < a.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		a.Set(i, (x>>33)&1)
	}
	b := isa.NewBuilder("br")
	rB, rI, rN, rA, rV := isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	b.LoadImm(rB, int64(a.Base))
	b.LoadImm(rI, 0)
	b.LoadImm(rN, int64(a.N))
	b.Label("loop")
	b.ShlI(rA, rI, 3)
	b.Add(rA, rA, rB)
	b.Load(rV, rA, 0, 8)
	b.CmpI(rV, 0)
	b.BEQ("skip")
	b.AddI(6, 6, 1)
	b.Label("skip")
	b.AddI(rI, rI, 1)
	b.Cmp(rI, rN)
	b.BLT("loop")
	b.Halt()

	core := New(DefaultConfig(), cache.NewHierarchy(cache.DefaultConfig()))
	run(t, b.Build(), m, core)
	if rate := core.BP.MispredictRate(); rate < 0.1 {
		t.Errorf("random branch mispredict rate = %.2f, want substantial", rate)
	}
	if core.Branches == 0 {
		t.Fatal("no branches counted")
	}
	if frac := core.NormalizedStack().Component(stats.StallBranch); frac <= 0 {
		t.Error("no branch-stall cycles attributed")
	}
}

func TestScoreboardLimitsInflight(t *testing.T) {
	// Independent missing loads beyond the scoreboard depth cannot all
	// overlap: with scoreboard 4 vs 32 the same workload takes longer.
	build := func() (*isa.Program, *mem.Memory) {
		m := mem.New()
		a := m.NewArray(1<<16, 8)
		b := isa.NewBuilder("sb")
		b.LoadImm(1, int64(a.Base))
		for i := 0; i < 64; i++ {
			b.Load(isa.Reg(2+i%16), 1, int64(i)*4096, 8)
		}
		b.Halt()
		return b.Build(), m
	}

	small := DefaultConfig()
	small.Scoreboard = 4
	hcfg := cache.DefaultConfig()
	hcfg.StrideDegree = 0

	p1, m1 := build()
	c1 := New(small, cache.NewHierarchy(hcfg))
	run(t, p1, m1, c1)

	p2, m2 := build()
	c2 := New(DefaultConfig(), cache.NewHierarchy(hcfg))
	run(t, p2, m2, c2)

	if float64(c1.Cycles()) < 1.5*float64(c2.Cycles()) {
		t.Errorf("scoreboard 4 (%d cyc) should be much slower than 32 (%d cyc)",
			c1.Cycles(), c2.Cycles())
	}
}

func TestCPIStackSumsToCPI(t *testing.T) {
	m := mem.New()
	a := m.NewArray(1<<12, 8)
	b := isa.NewBuilder("mix")
	b.LoadImm(1, int64(a.Base))
	b.LoadImm(2, 0)
	b.Label("loop")
	b.Load(3, 1, 0, 8)
	b.Add(4, 3, 2)
	b.AddI(1, 1, 64)
	b.AddI(2, 2, 1)
	b.CmpI(2, 1000)
	b.BLT("loop")
	b.Halt()
	core := newCore()
	run(t, b.Build(), m, core)
	s := core.NormalizedStack()
	if diff := s.CPI() - core.CPI(); diff > 0.01 || diff < -0.01 {
		t.Errorf("normalized stack CPI %.3f != measured %.3f", s.CPI(), core.CPI())
	}
}

func TestResetStatsWindows(t *testing.T) {
	b := isa.NewBuilder("w")
	for i := 0; i < 100; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	core := newCore()
	cpu := emu.New(b.Build(), mem.New())
	core.Run(stream.NewLive(cpu), 50)
	core.H.Reg.Reset()
	if core.Instrs != 0 || core.Cycles() != 0 {
		t.Fatalf("stats not reset: %d instrs %d cycles", core.Instrs, core.Cycles())
	}
	core.Run(stream.NewLive(cpu), 20)
	if core.Instrs != 20 {
		t.Errorf("windowed instrs = %d", core.Instrs)
	}
	if core.Cycles() <= 0 {
		t.Error("no cycles measured in window")
	}
}

// companionCounter counts OnIssue callbacks and consumes one slot each.
type companionCounter struct{ calls int }

func (c *companionCounter) OnIssue(rec *emu.DynInstr, issueAt int64, level cache.Level) int64 {
	c.calls++
	return 1
}

func TestCompanionHook(t *testing.T) {
	b := isa.NewBuilder("comp")
	for i := 0; i < 30; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	core := newCore()
	comp := &companionCounter{}
	core.Companion = comp
	run(t, b.Build(), mem.New(), core)
	if comp.calls != 31 {
		t.Errorf("companion saw %d issues, want 31", comp.calls)
	}
	if core.ExtraSlots != 31 {
		t.Errorf("extra slots = %d", core.ExtraSlots)
	}
	// Consuming one slot per instruction at width 3 roughly halves IPC
	// of a dependent chain... it must at least slow the core down.
	plain := newCore()
	b2 := isa.NewBuilder("plain")
	for i := 0; i < 30; i++ {
		b2.AddI(1, 1, 1)
	}
	b2.Halt()
	run(t, b2.Build(), mem.New(), plain)
	if core.Cycles() < plain.Cycles() {
		t.Errorf("companion slots did not cost cycles: %d < %d", core.Cycles(), plain.Cycles())
	}
}

func TestStoreBufferLimitsStoreBursts(t *testing.T) {
	// A burst of stores to distinct missing lines: a 1-entry store
	// buffer serializes the drains, a deep one absorbs them.
	build := func() (*isa.Program, *mem.Memory) {
		m := mem.New()
		a := m.NewArray(1<<16, 8)
		b := isa.NewBuilder("stb")
		b.LoadImm(1, int64(a.Base))
		b.LoadImm(2, 7)
		for i := 0; i < 64; i++ {
			b.Store(2, 1, int64(i)*4096, 8)
		}
		b.Halt()
		return b.Build(), m
	}
	hcfg := cache.DefaultConfig()
	hcfg.StrideDegree = 0

	tiny := DefaultConfig()
	tiny.StoreBuffer = 1
	p1, m1 := build()
	c1 := New(tiny, cache.NewHierarchy(hcfg))
	run(t, p1, m1, c1)

	p2, m2 := build()
	c2 := New(DefaultConfig(), cache.NewHierarchy(hcfg))
	run(t, p2, m2, c2)

	if float64(c1.Cycles()) < 1.5*float64(c2.Cycles()) {
		t.Errorf("1-entry store buffer (%d cyc) should be much slower than 8-entry (%d cyc)",
			c1.Cycles(), c2.Cycles())
	}
}

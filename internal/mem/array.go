package mem

// Array is a typed view over a region of the memory image. Workload
// builders use it to lay out CSR graphs, hash tables and matrices, and
// tests use it to check results the kernels computed.
type Array struct {
	m    *Memory
	Base uint64
	Elem uint8 // element size in bytes
	N    uint64
}

// NewArray allocates an array of n elements of elem bytes each, aligned to
// a cache line (64 bytes) so element 0 starts a line.
func (m *Memory) NewArray(n uint64, elem uint8) Array {
	base := m.Alloc(n*uint64(elem), 64)
	return Array{m: m, Base: base, Elem: elem, N: n}
}

// Addr returns the address of element i.
func (a Array) Addr(i uint64) uint64 { return a.Base + i*uint64(a.Elem) }

// Get reads element i zero-extended.
func (a Array) Get(i uint64) uint64 { return a.m.Read(a.Addr(i), a.Elem) }

// Set writes element i.
func (a Array) Set(i uint64, v uint64) { a.m.Write(a.Addr(i), v, a.Elem) }

// GetI reads element i as a signed value (only meaningful for Elem==8).
func (a Array) GetI(i uint64) int64 { return int64(a.Get(i)) }

// SetI writes a signed value to element i.
func (a Array) SetI(i uint64, v int64) { a.Set(i, uint64(v)) }

// GetF reads element i as a float64 (Elem must be 8).
func (a Array) GetF(i uint64) float64 { return a.m.ReadF64(a.Addr(i)) }

// SetF writes a float64 to element i (Elem must be 8).
func (a Array) SetF(i uint64, v float64) { a.m.WriteF64(a.Addr(i), v) }

// Bytes returns the total footprint of the array in bytes.
func (a Array) Bytes() uint64 { return a.N * uint64(a.Elem) }

// Fill sets every element to v.
func (a Array) Fill(v uint64) {
	for i := uint64(0); i < a.N; i++ {
		a.Set(i, v)
	}
}

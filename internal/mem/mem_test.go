package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteSizes(t *testing.T) {
	m := New()
	for _, size := range []uint8{1, 2, 4, 8} {
		addr := m.Alloc(16, 8)
		want := uint64(0x1122334455667788)
		m.Write(addr, want, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * uint(size))) - 1
		}
		if got := m.Read(addr, size); got != want&mask {
			t.Errorf("size %d: got %#x, want %#x", size, got, want&mask)
		}
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New()
	if got := m.Read(0x123456, 8); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // 8-byte access crosses the page boundary
	want := uint64(0xdeadbeefcafef00d)
	m.Write(addr, want, 8)
	if got := m.Read(addr, 8); got != want {
		t.Errorf("straddling read = %#x, want %#x", got, want)
	}
	// Verify byte placement across the boundary.
	if got := m.Read(PageSize-3, 1); got != 0x0d {
		t.Errorf("first byte = %#x, want 0x0d", got)
	}
	if got := m.Read(PageSize+4, 1); got != 0xde {
		t.Errorf("last byte = %#x, want 0xde", got)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	m := New()
	a := m.Alloc(100, 64)
	b := m.Alloc(100, 64)
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not 64-aligned: %#x %#x", a, b)
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%#x..%#x b=%#x", a, a+100, b)
	}
	if a == 0 {
		t.Error("allocation at address 0")
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two alignment should panic")
		}
	}()
	New().Alloc(8, 3)
}

func TestFloatReadWrite(t *testing.T) {
	m := New()
	addr := m.Alloc(8, 8)
	m.WriteF64(addr, 3.14159)
	if got := m.ReadF64(addr); got != 3.14159 {
		t.Errorf("float round trip = %v", got)
	}
}

func TestSignedReadWrite(t *testing.T) {
	m := New()
	addr := m.Alloc(8, 8)
	m.WriteI64(addr, -42)
	if got := m.ReadI64(addr); got != -42 {
		t.Errorf("signed round trip = %d", got)
	}
}

func TestReadWriteBytesRoundTrip(t *testing.T) {
	if err := quick.Check(func(data []byte, offset uint16) bool {
		m := New()
		addr := uint64(offset) + PageSize - 8 // often straddles
		m.WriteBytes(addr, data)
		got := make([]byte, len(data))
		m.ReadBytes(addr, got)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArray(t *testing.T) {
	m := New()
	a := m.NewArray(100, 4)
	for i := uint64(0); i < a.N; i++ {
		a.Set(i, uint64(i*3))
	}
	for i := uint64(0); i < a.N; i++ {
		if a.Get(i) != i*3 {
			t.Fatalf("a[%d] = %d, want %d", i, a.Get(i), i*3)
		}
	}
	if a.Addr(1)-a.Addr(0) != 4 {
		t.Error("element stride wrong")
	}
	if a.Base%64 != 0 {
		t.Error("array not line-aligned")
	}
	if a.Bytes() != 400 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
}

func TestArrayFloatAndSigned(t *testing.T) {
	m := New()
	a := m.NewArray(4, 8)
	a.SetF(0, 2.5)
	a.SetI(1, -9)
	if a.GetF(0) != 2.5 || a.GetI(1) != -9 {
		t.Errorf("typed access: %v %v", a.GetF(0), a.GetI(1))
	}
}

func TestArrayFill(t *testing.T) {
	m := New()
	a := m.NewArray(10, 8)
	a.Fill(7)
	for i := uint64(0); i < 10; i++ {
		if a.Get(i) != 7 {
			t.Fatalf("a[%d]=%d after Fill(7)", i, a.Get(i))
		}
	}
}

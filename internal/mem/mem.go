// Package mem provides the sparse byte-addressable memory image shared by
// the functional emulator and the timing models. The SVR engine also reads
// it directly to obtain speculative lane values during piggyback runahead
// (the hardware equivalent reads the same values out of the cache).
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// PageBits is the log2 of the backing-page size (not the architectural
// page size; that lives in the TLB model).
const PageBits = 16

// PageSize is the backing-page size in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// The page directory is a two-level radix tree over page numbers: the
// root indexes bits [leafBits, leafBits+rootBits) of the page number and
// each leaf holds 1<<leafBits page pointers. Together with the 16 page
// bits it maps the low 1 TiB of the address space with two dependent
// loads; the rare addresses above that (wild speculative pointers) fall
// back to a map.
const (
	leafBits  = 12
	rootBits  = 12
	leafSize  = 1 << leafBits
	rootSize  = 1 << rootBits
	radixPN   = 1 << (leafBits + rootBits) // first page number outside the radix
	leafShift = leafBits
	leafMask  = leafSize - 1
)

// page is one backing page. Pages are shared between a Memory and its
// clones: owner identifies the Memory allowed to write the data in place,
// and nil marks a page frozen by Clone — any writer must copy it first
// (copy-on-write). The data array is embedded so a page costs one
// allocation and one pointer chase.
type page struct {
	data  [PageSize]byte
	owner *Memory
}

type leaf [leafSize]*page

// pcacheSize is the number of direct-mapped page-cache entries; 16 covers
// the handful of simultaneous array streams a kernel walks without
// measurable lookup cost.
const pcacheSize = 16

type pcacheEntry struct {
	pn   uint64 // page number + 1; 0 = empty
	page *page
}

// Memory is a sparse, paged memory image. The zero value is not usable;
// call New.
type Memory struct {
	root     []*leaf          // two-level radix directory for pn < radixPN
	overflow map[uint64]*page // pages above the radix span, lazily allocated
	brk      uint64           // allocation cursor for Alloc

	// Direct-mapped page cache over the radix directory, indexed by the
	// low page-number bits. Each entry stores the page number plus one
	// (zero means invalid), so the hot compare needs no separate valid
	// bit. Multiple entries keep concurrently-walked streams (a kernel
	// reading one array while writing another) from thrashing a single
	// slot; writability is NOT cached — writePage rechecks ownership on
	// every hit, so Clone can freeze pages without invalidating entries.
	pcache [pcacheSize]pcacheEntry

	// mu serializes Clone against concurrent Clones of the same image
	// (the experiment scheduler clones one master per cell from many
	// goroutines). It is not taken on the access paths: a Memory may be
	// read and written by only one goroutine at a time.
	mu sync.Mutex
}

// New returns an empty memory image. Allocation starts at a non-zero base
// so that address 0 is never handed out (nil-pointer-like bugs in kernels
// then fault loudly in tests rather than aliasing array 0).
func New() *Memory {
	return &Memory{root: make([]*leaf, rootSize), brk: 0x10000}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// base address. Memory is zero-initialized on first touch.
func (m *Memory) Alloc(n uint64, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + n
	return base
}

// Brk returns the current allocation cursor (total footprint high-water mark).
func (m *Memory) Brk() uint64 { return m.brk }

// find returns the page for pn, or nil if never touched.
func (m *Memory) find(pn uint64) *page {
	if pn < radixPN {
		l := m.root[pn>>leafShift]
		if l == nil {
			return nil
		}
		return l[pn&leafMask]
	}
	return m.overflow[pn]
}

// install points the directory entry for pn at p.
func (m *Memory) install(pn uint64, p *page) {
	if pn < radixPN {
		li := pn >> leafShift
		l := m.root[li]
		if l == nil {
			l = new(leaf)
			m.root[li] = l
		}
		l[pn&leafMask] = p
	} else {
		if m.overflow == nil {
			m.overflow = make(map[uint64]*page)
		}
		m.overflow[pn] = p
	}
}

// readPage returns the page containing addr for reading, allocating a
// zero page on first touch.
func (m *Memory) readPage(addr uint64) *page {
	pn := addr >> PageBits
	e := &m.pcache[pn&(pcacheSize-1)]
	if e.pn == pn+1 {
		return e.page
	}
	p := m.find(pn)
	if p == nil {
		p = &page{owner: m}
		m.install(pn, p)
	}
	e.pn, e.page = pn+1, p
	return p
}

// writePage returns the page containing addr for writing: it allocates on
// first touch and copies a page shared with a clone (or a parent) before
// handing it out, so writes never reach a page another Memory can see.
func (m *Memory) writePage(addr uint64) *page {
	pn := addr >> PageBits
	e := &m.pcache[pn&(pcacheSize-1)]
	var p *page
	if e.pn == pn+1 {
		p = e.page
	} else {
		p = m.find(pn)
	}
	if p == nil {
		p = &page{owner: m}
		m.install(pn, p)
	} else if p.owner != m {
		np := &page{data: p.data, owner: m}
		m.install(pn, np)
		p = np
	}
	e.pn, e.page = pn+1, p
	return p
}

// Clone returns a copy-on-write clone of the memory image. The directory
// is copied (O(pages touched), not O(image bytes)) and every page becomes
// shared: the first write to a shared page — through the clone or the
// parent — copies just that page. The simulation harness builds each
// workload once and clones the image per machine configuration, since
// timing runs mutate memory through stores.
//
// Clone may be called for the same parent from several goroutines at
// once (the cell-parallel scheduler does); the pages it freezes are
// published to the clones under the parent's lock. The clone itself, like
// any Memory, must only be used by one goroutine at a time.
func (m *Memory) Clone() *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &Memory{root: make([]*leaf, rootSize), brk: m.brk}
	for li, l := range m.root {
		if l == nil {
			continue
		}
		nl := new(leaf)
		for i, p := range l {
			if p == nil {
				continue
			}
			if p.owner != nil {
				p.owner = nil // freeze: both sides now copy on write
			}
			nl[i] = p
		}
		c.root[li] = nl
	}
	if m.overflow != nil {
		c.overflow = make(map[uint64]*page, len(m.overflow))
		for pn, p := range m.overflow {
			if p.owner != nil {
				p.owner = nil
			}
			c.overflow[pn] = p
		}
	}
	// The parent's cached pages may now be frozen; the page cache carries
	// no writability claim (writePage rechecks owner), so it stays valid.
	return c
}

// Pages returns the number of distinct backing pages touched so far.
func (m *Memory) Pages() int {
	n := len(m.overflow)
	for _, l := range m.root {
		if l == nil {
			continue
		}
		for _, p := range l {
			if p != nil {
				n++
			}
		}
	}
	return n
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p := m.readPage(addr)
		off := addr & pageMask
		n := copy(dst, p.data[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		p := m.writePage(addr)
		off := addr & pageMask
		n := copy(p.data[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// Read returns size bytes at addr zero-extended into a uint64.
// size must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	if off := addr & pageMask; off+uint64(size) <= PageSize {
		p := m.readPage(addr)
		switch size {
		case 1:
			return uint64(p.data[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p.data[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p.data[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p.data[off:])
		}
	}
	// Page-straddling access: slow path.
	var buf [8]byte
	m.ReadBytes(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:])
	}
	panic(fmt.Sprintf("mem: bad read size %d", size))
}

// Write stores the low size bytes of val at addr.
func (m *Memory) Write(addr uint64, val uint64, size uint8) {
	if off := addr & pageMask; off+uint64(size) <= PageSize {
		p := m.writePage(addr)
		switch size {
		case 1:
			p.data[off] = byte(val)
			return
		case 2:
			binary.LittleEndian.PutUint16(p.data[off:], uint16(val))
			return
		case 4:
			binary.LittleEndian.PutUint32(p.data[off:], uint32(val))
			return
		case 8:
			binary.LittleEndian.PutUint64(p.data[off:], val)
			return
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	switch size {
	case 1, 2, 4, 8:
		m.WriteBytes(addr, buf[:size])
		return
	}
	panic(fmt.Sprintf("mem: bad write size %d", size))
}

// ReadI64 reads a signed 64-bit value.
func (m *Memory) ReadI64(addr uint64) int64 { return int64(m.Read(addr, 8)) }

// WriteI64 stores a signed 64-bit value.
func (m *Memory) WriteI64(addr uint64, v int64) { m.Write(addr, uint64(v), 8) }

// ReadU32 reads an unsigned 32-bit value.
func (m *Memory) ReadU32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// WriteU32 stores an unsigned 32-bit value.
func (m *Memory) WriteU32(addr uint64, v uint32) { m.Write(addr, uint64(v), 4) }

// ReadF64 reads a float64.
func (m *Memory) ReadF64(addr uint64) float64 {
	return math.Float64frombits(m.Read(addr, 8))
}

// WriteF64 stores a float64.
func (m *Memory) WriteF64(addr uint64, v float64) {
	m.Write(addr, math.Float64bits(v), 8)
}

// Package mem provides the sparse byte-addressable memory image shared by
// the functional emulator and the timing models. The SVR engine also reads
// it directly to obtain speculative lane values during piggyback runahead
// (the hardware equivalent reads the same values out of the cache).
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageBits is the log2 of the backing-page size (not the architectural
// page size; that lives in the TLB model).
const PageBits = 16

// PageSize is the backing-page size in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// Memory is a sparse, paged memory image. The zero value is not usable;
// call New.
type Memory struct {
	pages map[uint64][]byte
	brk   uint64 // allocation cursor for Alloc
}

// New returns an empty memory image. Allocation starts at a non-zero base
// so that address 0 is never handed out (nil-pointer-like bugs in kernels
// then fault loudly in tests rather than aliasing array 0).
func New() *Memory {
	return &Memory{pages: make(map[uint64][]byte), brk: 0x10000}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns the
// base address. Memory is zero-initialized on first touch.
func (m *Memory) Alloc(n uint64, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + n
	return base
}

// Brk returns the current allocation cursor (total footprint high-water mark).
func (m *Memory) Brk() uint64 { return m.brk }

func (m *Memory) page(addr uint64) []byte {
	pn := addr >> PageBits
	p := m.pages[pn]
	if p == nil {
		p = make([]byte, PageSize)
		m.pages[pn] = p
	}
	return p
}

// Clone returns a deep copy of the memory image. The simulation harness
// builds each workload once and clones the image per machine
// configuration, since timing runs mutate memory through stores.
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64][]byte, len(m.pages)), brk: m.brk}
	for pn, p := range m.pages {
		np := make([]byte, PageSize)
		copy(np, p)
		c.pages[pn] = np
	}
	return c
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p := m.page(addr)
		off := addr & pageMask
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		p := m.page(addr)
		off := addr & pageMask
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// Read returns size bytes at addr zero-extended into a uint64.
// size must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	if off := addr & pageMask; off+uint64(size) <= PageSize {
		p := m.page(addr)
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	// Page-straddling access: slow path.
	var buf [8]byte
	m.ReadBytes(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:])
	}
	panic(fmt.Sprintf("mem: bad read size %d", size))
}

// Write stores the low size bytes of val at addr.
func (m *Memory) Write(addr uint64, val uint64, size uint8) {
	if off := addr & pageMask; off+uint64(size) <= PageSize {
		p := m.page(addr)
		switch size {
		case 1:
			p[off] = byte(val)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
			return
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	switch size {
	case 1, 2, 4, 8:
		m.WriteBytes(addr, buf[:size])
		return
	}
	panic(fmt.Sprintf("mem: bad write size %d", size))
}

// ReadI64 reads a signed 64-bit value.
func (m *Memory) ReadI64(addr uint64) int64 { return int64(m.Read(addr, 8)) }

// WriteI64 stores a signed 64-bit value.
func (m *Memory) WriteI64(addr uint64, v int64) { m.Write(addr, uint64(v), 8) }

// ReadU32 reads an unsigned 32-bit value.
func (m *Memory) ReadU32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// WriteU32 stores an unsigned 32-bit value.
func (m *Memory) WriteU32(addr uint64, v uint32) { m.Write(addr, uint64(v), 4) }

// ReadF64 reads a float64.
func (m *Memory) ReadF64(addr uint64) float64 {
	return math.Float64frombits(m.Read(addr, 8))
}

// WriteF64 stores a float64.
func (m *Memory) WriteF64(addr uint64, v float64) {
	m.Write(addr, math.Float64bits(v), 8)
}

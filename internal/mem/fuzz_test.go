package mem

import "testing"

// FuzzReadWrite: arbitrary addresses and sizes must round trip and never
// panic, including page-straddling accesses.
func FuzzReadWrite(f *testing.F) {
	f.Add(uint64(0), uint64(0x1122334455667788), uint8(8))
	f.Add(uint64(PageSize-3), uint64(0xdeadbeef), uint8(4))
	f.Fuzz(func(t *testing.T, addr, val uint64, rawSize uint8) {
		sizes := []uint8{1, 2, 4, 8}
		size := sizes[rawSize%4]
		addr &= 1<<40 - 1 // bound the page map
		m := New()
		m.Write(addr, val, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*uint(size)) - 1
		}
		if got := m.Read(addr, size); got != val&mask {
			t.Fatalf("round trip: wrote %#x size %d at %#x, read %#x", val, size, addr, got)
		}
		// Neighbors stay untouched.
		if got := m.Read(addr+uint64(size), 1); got != 0 {
			t.Fatalf("write leaked past its extent: %#x", got)
		}
	})
}

// FuzzCOWAliasing: a clone must observe the parent's data, and writes on
// either side of the clone boundary must stay invisible to the other —
// including page-straddling writes, which touch two COW pages at once.
func FuzzCOWAliasing(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(2))
	f.Add(uint64(PageSize-4), uint64(0x1111111111111111), uint64(0x2222222222222222))
	f.Add(uint64(3*PageSize-1), uint64(0xa5a5a5a5a5a5a5a5), uint64(0x5a5a5a5a5a5a5a5a))
	f.Fuzz(func(t *testing.T, addr, parentVal, childVal uint64) {
		addr &= 1<<40 - 1 // bound the page directory

		parent := New()
		parent.Write(addr, parentVal, 8)
		child := parent.Clone()

		// The clone sees the parent's image.
		if got := child.Read(addr, 8); got != parentVal {
			t.Fatalf("clone does not alias parent: want %#x, got %#x", parentVal, got)
		}

		// Child writes (same spot and one page up, both possibly
		// page-straddling) stay invisible to the parent.
		child.Write(addr, childVal, 8)
		child.Write(addr+PageSize, childVal, 8)
		if got := parent.Read(addr, 8); got != parentVal {
			t.Fatalf("child write leaked into parent: want %#x, got %#x", parentVal, got)
		}
		if got := parent.Read(addr+PageSize, 8); got != 0 {
			t.Fatalf("child write leaked into parent's second page: got %#x", got)
		}
		if got := child.Read(addr, 8); got != childVal {
			t.Fatalf("child lost its own write: want %#x, got %#x", childVal, got)
		}

		// Parent writes after the clone stay invisible to the child.
		parent.Write(addr, parentVal^0xffff, 8)
		if got := child.Read(addr, 8); got != childVal {
			t.Fatalf("parent write leaked into child: want %#x, got %#x", childVal, got)
		}

		// A second clone taken now must see the parent's current image,
		// not the first child's.
		sibling := parent.Clone()
		if got := sibling.Read(addr, 8); got != parentVal^0xffff {
			t.Fatalf("sibling sees stale data: want %#x, got %#x", parentVal^0xffff, got)
		}
		if got := sibling.Read(addr+PageSize, 8); got != 0 {
			t.Fatalf("sibling sees child data: got %#x", got)
		}
	})
}

package mem

import "testing"

// FuzzReadWrite: arbitrary addresses and sizes must round trip and never
// panic, including page-straddling accesses.
func FuzzReadWrite(f *testing.F) {
	f.Add(uint64(0), uint64(0x1122334455667788), uint8(8))
	f.Add(uint64(PageSize-3), uint64(0xdeadbeef), uint8(4))
	f.Fuzz(func(t *testing.T, addr, val uint64, rawSize uint8) {
		sizes := []uint8{1, 2, 4, 8}
		size := sizes[rawSize%4]
		addr &= 1<<40 - 1 // bound the page map
		m := New()
		m.Write(addr, val, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*uint(size)) - 1
		}
		if got := m.Read(addr, size); got != val&mask {
			t.Fatalf("round trip: wrote %#x size %d at %#x, read %#x", val, size, addr, got)
		}
		// Neighbors stay untouched.
		if got := m.Read(addr+uint64(size), 1); got != 0 {
			t.Fatalf("write leaked past its extent: %#x", got)
		}
	})
}

package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(12)
	for i := 0; i < 1000; i++ {
		p.Predict(100, true)
	}
	p.ResetStats()
	for i := 0; i < 1000; i++ {
		p.Predict(100, true)
	}
	if p.Mispredict != 0 {
		t.Errorf("always-taken branch mispredicted %d times after training", p.Mispredict)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// Taken 7 times, not-taken once, repeatedly: local history should
	// catch the exit.
	p := New(12)
	run := func() int64 {
		p.ResetStats()
		for rep := 0; rep < 400; rep++ {
			for i := 0; i < 7; i++ {
				p.Predict(200, true)
			}
			p.Predict(200, false)
		}
		return p.Mispredict
	}
	run() // warmup
	miss := run()
	// 3200 branches; a learned 7T/1N pattern should miss well under 10%.
	if miss > 320 {
		t.Errorf("loop pattern mispredicts = %d / 3200", miss)
	}
}

func TestAlternatingPattern(t *testing.T) {
	p := New(12)
	for i := 0; i < 2000; i++ {
		p.Predict(300, i%2 == 0)
	}
	p.ResetStats()
	for i := 0; i < 2000; i++ {
		p.Predict(300, i%2 == 0)
	}
	if rate := p.MispredictRate(); rate > 0.05 {
		t.Errorf("alternating pattern rate = %v", rate)
	}
}

func TestRandomIsHard(t *testing.T) {
	p := New(12)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		p.Predict(400, rng.Intn(2) == 0)
	}
	if rate := p.MispredictRate(); rate < 0.35 {
		t.Errorf("random branches predicted too well: %v", rate)
	}
}

func TestCorrelatedBranches(t *testing.T) {
	// Branch B always equals branch A's last outcome: global history
	// should learn it.
	p := New(12)
	rng := rand.New(rand.NewSource(7))
	var missB int64
	for phase := 0; phase < 2; phase++ {
		missB = 0
		for i := 0; i < 5000; i++ {
			a := rng.Intn(2) == 0
			p.Predict(500, a)
			if p.Predict(501, a) {
				missB++
			}
		}
	}
	if missB > 1000 {
		t.Errorf("correlated branch missed %d / 5000", missB)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(10)
	for i := 0; i < 10; i++ {
		p.Predict(1, true)
	}
	if p.Lookups != 10 {
		t.Errorf("lookups = %d", p.Lookups)
	}
	p.ResetStats()
	if p.Lookups != 0 || p.Mispredict != 0 {
		t.Error("ResetStats did not clear")
	}
	if p.MispredictRate() != 0 {
		t.Error("rate on zero lookups should be 0")
	}
}

// Package bpred implements the hybrid local/global branch predictor of
// Table III (10-cycle misprediction penalty). It is a classic tournament:
// a gshare global component, a two-level local component, and a chooser of
// 2-bit counters trained toward whichever component was right.
package bpred

// Predictor is a tournament branch predictor. The zero value is not
// usable; call New.
type Predictor struct {
	globalHist uint64
	gshare     []uint8 // 2-bit saturating counters
	localHist  []uint16
	local      []uint8 // 2-bit counters indexed by local history
	chooser    []uint8 // 2-bit: >=2 selects global

	histBits  uint
	localBits uint

	Lookups    int64
	Mispredict int64
}

// New builds a predictor with 2^tableBits-entry tables. tableBits 12 gives
// a realistic small-core predictor (4 K entries per component).
func New(tableBits uint) *Predictor {
	n := 1 << tableBits
	p := &Predictor{
		gshare:    make([]uint8, n),
		localHist: make([]uint16, n),
		local:     make([]uint8, n),
		chooser:   make([]uint8, n),
		histBits:  tableBits,
		localBits: 10,
	}
	for i := range p.gshare {
		p.gshare[i] = 1 // weakly not-taken
		p.local[i] = 1
		p.chooser[i] = 2 // weakly global
	}
	return p
}

func (p *Predictor) gIndex(pc int) int {
	return (pc ^ int(p.globalHist)) & (len(p.gshare) - 1)
}

func (p *Predictor) lIndex(pc int) int {
	h := p.localHist[pc&(len(p.localHist)-1)]
	return (pc ^ int(h)<<2) & (len(p.local) - 1)
}

// Predict returns the predicted direction for the branch at pc, then
// trains all components with the actual outcome and reports whether the
// prediction was wrong.
func (p *Predictor) Predict(pc int, taken bool) (mispredicted bool) {
	p.Lookups++
	gi, li := p.gIndex(pc), p.lIndex(pc)
	ci := pc & (len(p.chooser) - 1)

	gPred := p.gshare[gi] >= 2
	lPred := p.local[li] >= 2
	pred := lPred
	if p.chooser[ci] >= 2 {
		pred = gPred
	}

	// Train chooser toward the component that was correct.
	if gPred != lPred {
		if gPred == taken {
			if p.chooser[ci] < 3 {
				p.chooser[ci]++
			}
		} else if p.chooser[ci] > 0 {
			p.chooser[ci]--
		}
	}
	train(&p.gshare[gi], taken)
	train(&p.local[li], taken)

	// Update histories.
	p.globalHist = (p.globalHist<<1 | b2u(taken)) & ((1 << p.histBits) - 1)
	lh := &p.localHist[pc&(len(p.localHist)-1)]
	*lh = (*lh<<1 | uint16(b2u(taken))) & ((1 << p.localBits) - 1)

	if pred != taken {
		p.Mispredict++
		return true
	}
	return false
}

// MispredictRate returns mispredictions per lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}

// ResetStats clears counters but keeps learned state (for warmup).
func (p *Predictor) ResetStats() { p.Lookups, p.Mispredict = 0, 0 }

// Clone deep-copies the predictor's learned state (tables and
// histories) with zeroed counters, for checkpoint snapshots.
func (p *Predictor) Clone() *Predictor {
	q := *p
	q.gshare = append([]uint8(nil), p.gshare...)
	q.localHist = append([]uint16(nil), p.localHist...)
	q.local = append([]uint8(nil), p.local...)
	q.chooser = append([]uint8(nil), p.chooser...)
	q.Lookups, q.Mispredict = 0, 0
	return &q
}

// CopyFrom overwrites p's learned state with src's, in place — p's
// counter fields stay registered wherever they are — leaving counters
// untouched. Table geometries must match.
func (p *Predictor) CopyFrom(src *Predictor) {
	if len(p.gshare) != len(src.gshare) || p.localBits != src.localBits {
		panic("bpred: table geometry mismatch")
	}
	copy(p.gshare, src.gshare)
	copy(p.localHist, src.localHist)
	copy(p.local, src.local)
	copy(p.chooser, src.chooser)
	p.globalHist = src.globalHist
}

// StateEqual reports whether two predictors hold identical learned
// state (tables and histories; counters excluded) — for
// warming-fidelity tests.
func (p *Predictor) StateEqual(o *Predictor) bool {
	if p.globalHist != o.globalHist || len(p.gshare) != len(o.gshare) {
		return false
	}
	for i := range p.gshare {
		if p.gshare[i] != o.gshare[i] || p.localHist[i] != o.localHist[i] ||
			p.local[i] != o.local[i] || p.chooser[i] != o.chooser[i] {
			return false
		}
	}
	return true
}

func train(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

package dram

import "testing"

func TestIdleLatency(t *testing.T) {
	c := New(DefaultConfig())
	// 45 ns at 2 GHz = 90 cycles.
	if got := c.Access(1000) - 1000; got != 90 {
		t.Errorf("idle latency = %d cycles, want 90", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	c := New(DefaultConfig())
	// Issue many requests at the same instant; they serialize on the
	// channel at ~64B / 50GiB/s ≈ 2.38 cycles apiece.
	first := c.Access(0)
	var last int64
	const n = 100
	for i := 1; i < n; i++ {
		last = c.Access(0)
	}
	spread := last - first
	// Expected spread ≈ (n-1) * 2.38 ≈ 236 cycles.
	if spread < 180 || spread > 280 {
		t.Errorf("100-request spread = %d cycles, want ~236", spread)
	}
	if c.Lines != n {
		t.Errorf("lines = %d", c.Lines)
	}
	if c.QueuedCycles() == 0 {
		t.Error("no queueing recorded under burst")
	}
}

func TestHalfBandwidthDoublesSpread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BandwidthGBps = 25
	c := New(cfg)
	first := c.Access(0)
	var last int64
	for i := 1; i < 100; i++ {
		last = c.Access(0)
	}
	if spread := last - first; spread < 420 || spread > 530 {
		t.Errorf("25GiB/s spread = %d cycles, want ~471", spread)
	}
}

func TestNoQueueingWhenSpaced(t *testing.T) {
	c := New(DefaultConfig())
	for i := int64(0); i < 50; i++ {
		c.Access(i * 100)
	}
	if c.QueuedCycles() != 0 {
		t.Errorf("spaced accesses queued %d cycles", c.QueuedCycles())
	}
}

func TestBytesTransferred(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(0)
	c.Access(0)
	if c.BytesTransferred() != 128 {
		t.Errorf("bytes = %d", c.BytesTransferred())
	}
}

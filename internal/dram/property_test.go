package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAccessNeverBeforeArrival: completion is always at least
// latency after the (possibly out-of-order) arrival time.
func TestAccessNeverBeforeArrival(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(DefaultConfig())
		for i := 0; i < 500; i++ {
			at := int64(rng.Intn(100000))
			if done := c.Access(at); done < at+c.LatencyCycles {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBandwidthCapHolds: within any burst issued at one instant, the
// ledger never books more than the channel's cycle budget per window —
// so k lines issued together span at least k*transfer cycles.
func TestBandwidthCapHolds(t *testing.T) {
	if err := quick.Check(func(rawK uint8) bool {
		k := int(rawK%200) + 50
		c := New(DefaultConfig())
		first := c.Access(0)
		last := first
		for i := 1; i < k; i++ {
			last = c.Access(0)
		}
		// 64B/50GiB/s @2GHz = ~2.38 cycles/line; allow one window slack.
		minSpread := int64(float64(k-1)*2.3) - 64
		return last-first >= minSpread
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOutOfOrderArrivalsDoNotBlockEarlierTraffic: a far-future request
// must not delay a present-time request (the bug class the ledger fixes).
func TestOutOfOrderArrivalsDoNotBlockEarlierTraffic(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(100000) // writeback booked far in the future
	done := c.Access(10)
	if done != 10+c.LatencyCycles {
		t.Errorf("present-time access delayed to %d by future booking", done)
	}
}

// TestLedgerSlidesForward: bookings far beyond the ring still succeed and
// never travel back in time.
func TestLedgerSlidesForward(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		at := int64(i) * 3_000_000
		if done := c.Access(at); done < at {
			t.Fatalf("completion %d before arrival %d", done, at)
		}
	}
	// After sliding, old-time requests clamp to the ledger base rather
	// than panicking or going negative.
	if done := c.Access(5); done < 0 {
		t.Fatalf("clamped access went negative: %d", done)
	}
}

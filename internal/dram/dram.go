// Package dram models the off-chip memory channel as a
// latency + bandwidth-occupancy resource (Table III: 45 ns latency,
// 50 GiB/s bandwidth at 2 GHz), which is the level of detail the paper's
// bandwidth-sensitivity study (Fig 18) exercises.
//
// Requests arrive with out-of-order timestamps (runahead prefetches and
// writebacks carry future completion times), so occupancy is tracked as a
// windowed bandwidth ledger rather than a single next-free cursor: each
// 64-cycle window holds up to its full cycle budget of line transfers,
// and a request books the first window at or after its arrival time with
// spare capacity. Saturation shows up as requests spilling into later
// windows — queueing delay — while light traffic passes at idle latency
// regardless of the order the simulator discovers it in.
package dram

import "repro/internal/metrics"

// winBits is log2 of the ledger window size in cycles.
const winBits = 6

// fixShift scales fractional cycles into fixed-point units.
const fixShift = 8

// ringWindows is the span of bookable future windows (2^14 * 64 cycles ≈
// 1 M cycles); requests beyond it are clamped.
const ringWindows = 1 << 14

// Channel is a single memory channel. Time is in core cycles.
type Channel struct {
	// LatencyCycles is the idle-channel access latency.
	LatencyCycles int64

	transferFixed int64 // occupancy of one line transfer, fixed-point cycles

	baseWin int64   // window index of ring[0]
	ring    []int32 // used fixed-point cycles per window

	// Stats.
	Lines      int64 // total line transfers
	BusyCycles int64 // cumulative channel-busy time (cycles, rounded)
	queued     int64 // cumulative queueing delay in cycles

	queueLat *metrics.Histogram // per-request queueing delay, if registered
}

// Register publishes the channel's counters and queueing-delay histogram.
// A shared channel (multi-core) may be registered into several per-core
// registries; counters then reset with every core's window (as before),
// while the histogram feeds the most recently registered core.
func (c *Channel) Register(r *metrics.Registry) {
	r.Int64("dram.lines", "DRAM line transfers", &c.Lines)
	r.Int64("dram.busy_cycles", "cumulative channel-busy cycles", &c.BusyCycles)
	r.Int64("dram.queued_cycles", "cumulative bandwidth queueing delay (cycles)", &c.queued)
	c.queueLat = r.NewHistogram("lat.dram.queue", "per-request DRAM bandwidth queueing delay (cycles)")
}

// Config describes a channel.
type Config struct {
	FreqGHz       float64 // core frequency, cycles per ns
	LatencyNS     float64 // idle access latency
	BandwidthGBps float64 // sustained bandwidth in GiB/s
	LineBytes     int
}

// DefaultConfig mirrors Table III at a 2 GHz core: 45 ns, 50 GiB/s, 64 B lines.
func DefaultConfig() Config {
	return Config{FreqGHz: 2.0, LatencyNS: 45, BandwidthGBps: 50, LineBytes: 64}
}

// New creates a channel from a configuration.
func New(cfg Config) *Channel {
	latency := int64(cfg.LatencyNS*cfg.FreqGHz + 0.5)
	cyclesPerLine := float64(cfg.LineBytes) / (cfg.BandwidthGBps * (1 << 30)) * cfg.FreqGHz * 1e9
	return &Channel{
		LatencyCycles: latency,
		transferFixed: int64(cyclesPerLine*(1<<fixShift) + 0.5),
		ring:          make([]int32, ringWindows),
	}
}

// winCapacity is the fixed-point cycle budget of one window.
const winCapacity = int32(1) << (winBits + fixShift)

// book reserves transfer occupancy in the first window at or after cycle
// at with spare capacity, returning the transfer start cycle.
func (c *Channel) book(at int64) int64 {
	if at < 0 {
		at = 0
	}
	w := at >> winBits
	if w < c.baseWin {
		// Arrived logically before the ledger's horizon: the past
		// windows are already accounted; treat as arriving at the base.
		w = c.baseWin
	}
	if w >= c.baseWin+ringWindows {
		// Far-future request: slide the ledger forward.
		c.slideTo(w - ringWindows/2)
	}
	for {
		if w >= c.baseWin+ringWindows {
			c.slideTo(w - ringWindows/2)
		}
		idx := w - c.baseWin
		if c.ring[idx] < winCapacity {
			c.ring[idx] += int32(c.transferFixed)
			start := w << winBits
			if start < at {
				start = at
			}
			return start
		}
		w++
	}
}

// slideTo advances the ledger base, discarding fully past windows.
func (c *Channel) slideTo(newBase int64) {
	if newBase <= c.baseWin {
		return
	}
	shift := newBase - c.baseWin
	if shift >= ringWindows {
		for i := range c.ring {
			c.ring[i] = 0
		}
	} else {
		copy(c.ring, c.ring[shift:])
		for i := ringWindows - int(shift); i < ringWindows; i++ {
			c.ring[i] = 0
		}
	}
	c.baseWin = newBase
}

// Access requests one line transfer starting no earlier than cycle at,
// and returns the cycle the line is available at the cache controller.
func (c *Channel) Access(at int64) int64 {
	start := c.book(at)
	if start > at {
		c.queued += start - at
		if c.queueLat != nil {
			c.queueLat.Observe(start - at)
		}
	}
	c.Lines++
	c.BusyCycles += c.transferFixed >> fixShift
	return start + c.LatencyCycles
}

// QueuedCycles returns the cumulative queueing delay experienced by all
// requests, a congestion indicator used in tests.
func (c *Channel) QueuedCycles() int64 { return c.queued }

// BytesTransferred returns total traffic assuming 64-byte lines.
func (c *Channel) BytesTransferred() int64 { return c.Lines * 64 }

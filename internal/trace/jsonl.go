package trace

import (
	"bufio"
	"io"
	"strconv"
)

// JSONL streams events to a writer as one JSON object per line — the
// append-only sink for runs too long to hold in memory. Rendering is
// hand-rolled (no encoding/json) so a line costs one buffer append per
// field; the bufio layer batches the underlying writes.
type JSONL struct {
	bw  *bufio.Writer
	buf []byte
	err error // first write error, reported by Close
}

// NewJSONL builds a streaming JSONL sink over w. Close flushes it.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Emit renders one event as a JSON line.
func (j *JSONL) Emit(ev Event) {
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"kind":`...)
	b = strconv.AppendQuote(b, ev.Kind.String())
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"pc":`...)
	b = strconv.AppendInt(b, int64(ev.PC), 10)
	b = append(b, `,"cycle":`...)
	b = strconv.AppendInt(b, ev.Cycle, 10)
	if ev.Text != "" {
		b = append(b, `,"text":`...)
		b = strconv.AppendQuote(b, ev.Text)
	}
	if ev.Arg != 0 {
		b = append(b, `,"arg":`...)
		b = strconv.AppendInt(b, ev.Arg, 10)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
	}
}

// EmitRaw writes one pre-rendered JSON line (the trailing newline is
// added here), sharing the sink's buffering and first-error latching.
// The grid lifecycle journal renders its own records and streams them
// through this path.
func (j *JSONL) EmitRaw(line []byte) {
	if j.err != nil {
		return
	}
	if _, err := j.bw.Write(line); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Close flushes buffered lines and reports the first error encountered.
func (j *JSONL) Close() error {
	if j.err != nil {
		return j.err
	}
	return j.bw.Flush()
}

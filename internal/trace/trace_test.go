package trace

import (
	"strings"
	"testing"
)

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindIssue, Seq: uint64(i), Cycle: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total = %d", r.Total())
	}
	if r.Len() != 4 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("events = %+v", evs)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: KindIssue})
	r.Emit(Event{Kind: KindSVI})
	r.Emit(Event{Kind: KindIssue})
	if got := r.Filter(KindSVI); len(got) != 1 || got[0].Kind != KindSVI {
		t.Errorf("filter = %+v", got)
	}
	if got := r.Filter(); len(got) != 3 {
		t.Errorf("unfiltered = %d", len(got))
	}
}

func TestDumpAndSummary(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: KindPRMEnter, PC: 7, Cycle: 100, Text: "head=7 lanes=16"})
	r.Emit(Event{Kind: KindSVI, PC: 9, Cycle: 101, Text: "ld64 r6, [r5+0] x16"})
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "prm+") || !strings.Contains(out, "lanes=16") {
		t.Errorf("dump:\n%s", out)
	}
	if s := r.Summary(); !strings.Contains(s, "prm+=1") || !strings.Contains(s, "svi=1") {
		t.Errorf("summary: %s", s)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k <= KindRetarget; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

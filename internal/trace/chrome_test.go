package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeTestEvents is a small synthetic window: two lanes, one L1-hit
// load, one DRAM miss, a PRM round, and an SVI annotation.
func chromeTestEvents() []Event {
	return []Event{
		{Kind: KindIssue, Seq: 1, PC: 4, Cycle: 10, Text: "add r1, r1, r2", Arg: 0},
		{Kind: KindIssue, Seq: 2, PC: 5, Cycle: 10, Text: "ld64 r2, [r1+0]", Arg: 1},
		{Kind: KindComplete, Seq: 2, PC: 5, Cycle: 12, Text: "L1", Arg: 0x100},
		{Kind: KindIssue, Seq: 3, PC: 6, Cycle: 11, Text: "ld64 r3, [r2+0]", Arg: 0},
		{Kind: KindComplete, Seq: 3, PC: 6, Cycle: 160, Text: "mem", Arg: 0x2000},
		{Kind: KindPRMEnter, Seq: 3, PC: 6, Cycle: 12, Text: "head=6 lanes=16", Arg: 16},
		{Kind: KindSVI, Seq: 3, PC: 7, Cycle: 20, Text: "ld64 x16"},
		{Kind: KindPRMExit, Seq: 3, PC: 6, Cycle: 150, Text: "fills=16"},
		{Kind: KindIssue, Seq: 4, PC: 7, Cycle: 160, Text: "add r4, r3, r1", Arg: 1},
	}
}

// decodeChrome parses exporter output back into the envelope form.
func decodeChrome(t *testing.T, blob []byte) []chromeEvent {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	return tr.TraceEvents
}

// TestChromeTraceRoundTrip is the exporter's structural check: the JSON
// parses, every expected phase appears, the miss gets a memory-track
// slice with a flow pair, and per-thread slice timestamps are monotonic.
func TestChromeTraceRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, chromeTestEvents(), 2); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, b.Bytes())

	phases := map[string]int{}
	laneSlices := 0
	var memSlice, flowS, flowF *chromeEvent
	lastTs := map[int]int64{}
	for i := range evs {
		ev := &evs[i]
		phases[ev.Ph]++
		if ev.Ph == "X" {
			// Slice begins must be monotonic within a thread track —
			// Perfetto rejects out-of-order begins.
			if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
				t.Errorf("tid %d: slice ts %d after %d (non-monotonic)", ev.Tid, ev.Ts, prev)
			}
			lastTs[ev.Tid] = ev.Ts
			switch ev.Cat {
			case chromeCatCore:
				laneSlices++
				if ev.Tid < 0 || ev.Tid >= 2 {
					t.Errorf("lane slice on tid %d, want 0..1", ev.Tid)
				}
			case chromeCatMem:
				memSlice = ev
			}
		}
		if ev.Ph == "s" {
			flowS = ev
		}
		if ev.Ph == "f" {
			flowF = ev
		}
	}
	if laneSlices != 4 {
		t.Errorf("lane slices = %d, want 4 (one per issue)", laneSlices)
	}
	for _, ph := range []string{"M", "X", "b", "e", "i", "s", "f"} {
		if phases[ph] == 0 {
			t.Errorf("no %q-phase events in output (phases: %v)", ph, phases)
		}
	}
	if memSlice == nil {
		t.Fatal("DRAM miss produced no memory-track slice")
	}
	if memSlice.Name != "miss mem" || memSlice.Dur != 149 {
		t.Errorf("memory slice = %q dur %d, want \"miss mem\" dur 149", memSlice.Name, memSlice.Dur)
	}
	if flowS == nil || flowF == nil {
		t.Fatal("miss produced no flow pair")
	}
	if flowS.ID != flowF.ID {
		t.Errorf("flow ids differ: s=%d f=%d", flowS.ID, flowF.ID)
	}
	if flowF.BP != "e" {
		t.Errorf("flow finish bp = %q, want \"e\" (bind to slice end)", flowF.BP)
	}
	if flowS.Tid != 0 || flowF.Tid != memSlice.Tid {
		t.Errorf("flow endpoints: s on tid %d (want lane 0), f on tid %d (want mem tid %d)",
			flowS.Tid, flowF.Tid, memSlice.Tid)
	}
}

// TestChromeTracePRMPairing checks async begin/end spans share an id and
// that an exit without a captured enter is dropped, not emitted orphaned.
func TestChromeTracePRMPairing(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, chromeTestEvents(), 2); err != nil {
		t.Fatal(err)
	}
	var begin, end *chromeEvent
	evs := decodeChrome(t, b.Bytes())
	for i := range evs {
		switch evs[i].Ph {
		case "b":
			begin = &evs[i]
		case "e":
			end = &evs[i]
		}
	}
	if begin == nil || end == nil {
		t.Fatal("PRM round did not become a b/e span pair")
	}
	if begin.ID != end.ID {
		t.Errorf("span ids differ: b=%d e=%d", begin.ID, end.ID)
	}
	if begin.Ts != 12 || end.Ts != 150 {
		t.Errorf("span = [%d, %d], want [12, 150]", begin.Ts, end.Ts)
	}

	// A window that opens mid-round sees the exit first; it must vanish.
	b.Reset()
	if err := WriteChromeTrace(&b, []Event{{Kind: KindPRMExit, Cycle: 5}}, 1); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeChrome(t, b.Bytes()) {
		if ev.Ph == "e" {
			t.Errorf("orphaned PRM exit emitted: %+v", ev)
		}
	}
}

// TestChromeTraceLaneClamp: an out-of-range lane argument lands on lane 0
// rather than inventing a thread.
func TestChromeTraceLaneClamp(t *testing.T) {
	var b bytes.Buffer
	events := []Event{{Kind: KindIssue, Seq: 1, Cycle: 1, Text: "x", Arg: 99}}
	if err := WriteChromeTrace(&b, events, 2); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeChrome(t, b.Bytes()) {
		if ev.Ph == "X" && ev.Tid != 0 {
			t.Errorf("out-of-range lane mapped to tid %d, want 0", ev.Tid)
		}
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome Trace Event Format rendering: the captured event stream becomes
// a timeline loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Layout:
//
//   - one thread ("lane k") per issue slot of the core, carrying an "X"
//     duration slice per instruction (issue → result);
//   - a small pool of "memory" threads carrying one slice per demand
//     miss (issue → fill), round-robined so overlapping misses don't
//     collide on a track, with "s"/"f" flow arrows tying each miss back
//     to the issuing lane slice;
//   - an "svr" thread with async "b"/"e" spans for PRM rounds
//     (enter → exit) and instants for SVIs, masks, bans, and retargets.
//
// Timestamps are cycles (the format nominally wants microseconds; a
// 1 cycle = 1 µs reading keeps durations exact and Perfetto indifferent).

// chromeEvent is one record of the Trace Event Format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`  // instant scope
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope form of the format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

const (
	chromePid     = 1
	memTracks     = 4 // concurrent demand misses rarely exceed the MSHR-ish handful
	chromeCatCore = "core"
	chromeCatMem  = "mem"
	chromeCatSVR  = "svr"
)

// WriteChromeTrace renders events (oldest first, as captured) as a Chrome
// Trace Event Format JSON object. width is the core's issue width — it
// fixes the number of lane threads; pass 1 if unknown.
func WriteChromeTrace(w io.Writer, events []Event, width int) error {
	if width < 1 {
		width = 1
	}
	memBase := width            // lane tids are 0..width-1
	svrTid := width + memTracks // after the memory track pool

	out := make([]chromeEvent, 0, len(events)+width+memTracks+2)
	out = append(out, metaEvent("process_name", 0, map[string]any{"name": "svrsim"}))
	for l := 0; l < width; l++ {
		out = append(out, metaEvent("thread_name", l, map[string]any{"name": fmt.Sprintf("lane %d", l)}))
	}
	for m := 0; m < memTracks; m++ {
		out = append(out, metaEvent("thread_name", memBase+m, map[string]any{"name": fmt.Sprintf("memory %d", m)}))
	}
	out = append(out, metaEvent("thread_name", svrTid, map[string]any{"name": "svr engine"}))

	// A load's fill time arrives as a separate KindComplete record with
	// the same Seq; index them so issue slices get true durations.
	fills := make(map[uint64]Event, len(events)/4)
	for _, ev := range events {
		if ev.Kind == KindComplete {
			fills[ev.Seq] = ev
		}
	}

	var prmRound uint64
	var memCursor int
	for _, ev := range events {
		switch ev.Kind {
		case KindIssue:
			lane := int(ev.Arg)
			if lane < 0 || lane >= width {
				lane = 0
			}
			dur := int64(1)
			fill, haveFill := fills[ev.Seq]
			if haveFill && fill.Cycle > ev.Cycle {
				dur = fill.Cycle - ev.Cycle
			}
			out = append(out, chromeEvent{Name: ev.Text, Cat: chromeCatCore, Ph: "X",
				Ts: ev.Cycle, Dur: dur, Pid: chromePid, Tid: lane,
				Args: map[string]any{"pc": ev.PC, "seq": ev.Seq}})
			// A fill from beyond L1 gets a memory-track slice plus a flow
			// arrow from the issuing lane to the fill.
			if haveFill && fill.Text != "L1" && fill.Text != "commit" && fill.Cycle > ev.Cycle {
				mt := memBase + memCursor%memTracks
				memCursor++
				out = append(out,
					chromeEvent{Name: "miss " + fill.Text, Cat: chromeCatMem, Ph: "X",
						Ts: ev.Cycle, Dur: fill.Cycle - ev.Cycle, Pid: chromePid, Tid: mt,
						Args: map[string]any{"pc": ev.PC, "seq": ev.Seq, "addr": fill.Arg}},
					chromeEvent{Name: "fill", Cat: chromeCatMem, Ph: "s",
						Ts: ev.Cycle, Pid: chromePid, Tid: lane, ID: ev.Seq},
					chromeEvent{Name: "fill", Cat: chromeCatMem, Ph: "f", BP: "e",
						Ts: fill.Cycle, Pid: chromePid, Tid: mt, ID: ev.Seq})
			}
		case KindComplete:
			// Folded into the issue slice above.
		case KindPRMEnter:
			prmRound++
			out = append(out, chromeEvent{Name: "PRM round", Cat: chromeCatSVR, Ph: "b",
				Ts: ev.Cycle, Pid: chromePid, Tid: svrTid, ID: prmRound,
				Args: map[string]any{"detail": ev.Text, "lanes": ev.Arg}})
		case KindPRMExit:
			if prmRound == 0 {
				continue // exit with no captured enter (window truncation)
			}
			out = append(out, chromeEvent{Name: "PRM round", Cat: chromeCatSVR, Ph: "e",
				Ts: ev.Cycle, Pid: chromePid, Tid: svrTid, ID: prmRound,
				Args: map[string]any{"detail": ev.Text}})
		default: // SVI, mask, ban, retarget: point-in-time annotations
			out = append(out, chromeEvent{Name: ev.Kind.String(), Cat: chromeCatSVR, Ph: "i",
				Ts: ev.Cycle, Pid: chromePid, Tid: svrTid, S: "t",
				Args: map[string]any{"detail": ev.Text, "pc": ev.PC, "seq": ev.Seq}})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out})
}

// metaEvent builds an "M" metadata record naming a process or thread.
func metaEvent(name string, tid int, args map[string]any) chromeEvent {
	return chromeEvent{Name: name, Ph: "M", Pid: chromePid, Tid: tid, Args: args}
}

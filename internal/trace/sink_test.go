package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRingDropped(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Seq: uint64(i)})
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("dropped = %d before wrap, want 0", d)
	}
	for i := 3; i < 10; i++ {
		r.Emit(Event{Seq: uint64(i)})
	}
	if d := r.Dropped(); d != 6 {
		t.Fatalf("dropped = %d after 10 emits into 4 slots, want 6", d)
	}
}

func TestDumpAnnouncesDropped(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindIssue, Seq: uint64(i), Text: "add"})
	}
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "(+3 older events dropped)\n") {
		t.Errorf("dump does not announce truncation:\n%s", b.String())
	}

	// No header when nothing was overwritten.
	r2 := NewRing(8)
	r2.Emit(Event{Kind: KindIssue})
	b.Reset()
	if err := r2.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "dropped") {
		t.Errorf("dump claims drops on a non-full ring:\n%s", b.String())
	}
}

func TestCaptureRetainsEverything(t *testing.T) {
	var c Capture
	for i := 0; i < 1000; i++ {
		c.Emit(Event{Seq: uint64(i)})
	}
	if len(c.Events) != 1000 {
		t.Fatalf("captured %d events, want 1000", len(c.Events))
	}
	if c.Events[999].Seq != 999 {
		t.Errorf("events out of order: last seq = %d", c.Events[999].Seq)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestJSONLRoundTrip checks the hand-rolled JSONL rendering against
// encoding/json: every line must parse, and the parsed fields must match
// the emitted event — including text that needs escaping.
func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindIssue, Seq: 1, PC: 7, Cycle: 100, Text: `ld64 r2, [r1+0]`, Arg: 3},
		{Kind: KindComplete, Seq: 1, PC: 7, Cycle: 140, Text: "mem", Arg: 0x1000},
		{Kind: KindPRMEnter, Seq: 2, PC: 9, Cycle: 141, Text: `head="quoted" lanes=16`},
		{Kind: KindSVI, Seq: 3, PC: 11, Cycle: 150},         // no text, no arg
		{Kind: KindMask, Seq: 4, PC: 0, Cycle: -1, Arg: -5}, // negative values
	}
	var b strings.Builder
	j := NewJSONL(&b)
	for _, ev := range events {
		j.Emit(ev)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		var got struct {
			Kind  string
			Seq   uint64
			PC    int
			Cycle int64
			Text  string
			Arg   int64
		}
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		want := events[i]
		if got.Kind != want.Kind.String() || got.Seq != want.Seq || got.PC != want.PC ||
			got.Cycle != want.Cycle || got.Text != want.Text || got.Arg != want.Arg {
			t.Errorf("line %d round-trips to %+v, want %+v", i, got, want)
		}
	}
}

func TestSinkInterfaces(t *testing.T) {
	// Every sink in the package must satisfy Sink; a compile-time check
	// plus a runtime reminder if one is removed from this list.
	for _, s := range []Sink{&Capture{}, NewRing(4), NewJSONL(&strings.Builder{})} {
		if s == nil {
			t.Fatal("nil sink")
		}
	}
}

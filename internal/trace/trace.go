// Package trace provides structured event tracing for the timing models:
// per-instruction issue/complete records from the cores and
// runahead-engine events (round entry, SVI generation, masking,
// termination). A Ring tracer keeps the most recent events for
// interactive inspection (svrsim trace); the package costs nothing when
// no tracer is attached.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindIssue    Kind = iota // instruction issued
	KindComplete             // instruction result ready (loads)
	KindPRMEnter             // SVR round began
	KindPRMExit              // SVR round ended
	KindSVI                  // scalar-vector instruction generated
	KindMask                 // lanes masked by divergence
	KindBan                  // accuracy monitor ban
	KindRetarget             // HSLR retarget / nested abort
)

var kindNames = []string{"issue", "complete", "prm+", "prm-", "svi", "mask", "ban", "retarget"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Event is one trace record.
type Event struct {
	Kind  Kind
	Seq   uint64 // dynamic instruction number
	PC    int
	Cycle int64
	Text  string // pre-rendered detail (instruction disasm, SVI info)
	Arg   int64  // kind-specific: lanes, addresses, etc.
}

// String renders one event as a trace line.
func (e Event) String() string {
	return fmt.Sprintf("%10d  %-8s pc=%-5d seq=%-8d %s",
		e.Cycle, e.Kind, e.PC, e.Seq, e.Text)
}

// Tracer receives events. Implementations must be cheap; hot paths call
// Emit once per instruction. Emitters nil-check their Tracer field, so a
// machine with no tracer attached pays a single predictable branch.
type Tracer interface {
	Emit(ev Event)
}

// Sink is a Tracer with a lifecycle: streaming sinks (JSONL) buffer and
// must be Closed to flush; in-memory sinks (Ring, Capture) close as a
// no-op. Everything that consumes a whole run's events should accept a
// Sink so the CLI can swap renderings without touching the emitters.
type Sink interface {
	Tracer
	Close() error
}

// Capture retains every emitted event, unbounded — the collection sink
// behind exporters that need the whole run (Chrome trace timelines).
type Capture struct {
	Events []Event
}

// Emit appends the event.
func (c *Capture) Emit(ev Event) { c.Events = append(c.Events, ev) }

// Close is a no-op; Capture holds everything in memory.
func (c *Capture) Close() error { return nil }

// Ring keeps the last N events.
type Ring struct {
	buf  []Event
	next int
	full bool
	n    int64
}

// NewRing builds a ring tracer holding n events.
func NewRing(n int) *Ring { return &Ring{buf: make([]Event, n)} }

// Emit stores the event, overwriting the oldest.
func (r *Ring) Emit(ev Event) {
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.n++
}

// Len reports the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total reports how many events were emitted overall.
func (r *Ring) Total() int64 { return r.n }

// Dropped reports how many emitted events the ring has overwritten —
// the truncation a dump silently hides without it.
func (r *Ring) Dropped() int64 { return r.n - int64(r.Len()) }

// Close is a no-op; Ring holds its window in memory.
func (r *Ring) Close() error { return nil }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events to w, oldest first. Overwritten events
// are announced rather than silently missing.
func (r *Ring) Dump(w io.Writer) error {
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(+%d older events dropped)\n", d); err != nil {
			return err
		}
	}
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns retained events of the given kinds (empty = all).
func (r *Ring) Filter(kinds ...Kind) []Event {
	if len(kinds) == 0 {
		return r.Events()
	}
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, ev := range r.Events() {
		if want[ev.Kind] {
			out = append(out, ev)
		}
	}
	return out
}

// Summary renders per-kind counts of the retained window.
func (r *Ring) Summary() string {
	counts := map[Kind]int{}
	for _, ev := range r.Events() {
		counts[ev.Kind]++
	}
	var b strings.Builder
	for k := Kind(0); int(k) < len(kindNames); k++ {
		if counts[k] > 0 {
			fmt.Fprintf(&b, "%s=%d ", k, counts[k])
		}
	}
	return strings.TrimSpace(b.String())
}

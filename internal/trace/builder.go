package trace

import (
	"encoding/json"
	"io"
)

// ChromeBuilder assembles a Chrome Trace Event Format timeline from
// arbitrary track/slice primitives — the reusable core of the exporter
// behind WriteChromeTrace, generalized so other layers (the grid
// scheduler's lifecycle journal) can render their own timelines without
// re-deriving the format. Timestamps and durations are microseconds, as
// the format nominally wants; callers pick their own mapping (the core
// timeline reads 1 cycle = 1 µs, the grid trace converts wall-clock ns).
type ChromeBuilder struct {
	events []chromeEvent
}

// NewChromeBuilder starts a timeline whose single process is named
// process.
func NewChromeBuilder(process string) *ChromeBuilder {
	b := &ChromeBuilder{events: make([]chromeEvent, 0, 64)}
	b.events = append(b.events, metaEvent("process_name", 0, map[string]any{"name": process}))
	return b
}

// Thread names a track. Declare tracks before (or after) their events;
// the format does not care, but declaring them keeps display order
// deterministic.
func (b *ChromeBuilder) Thread(tid int, name string) {
	b.events = append(b.events, metaEvent("thread_name", tid, map[string]any{"name": name}))
}

// Slice adds a complete ("X") duration slice. Zero and negative
// durations clamp to 1 µs so the slice stays visible.
func (b *ChromeBuilder) Slice(tid int, name, cat string, ts, dur int64, args map[string]any) {
	if dur < 1 {
		dur = 1
	}
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "X",
		Ts: ts, Dur: dur, Pid: chromePid, Tid: tid, Args: args})
}

// Instant adds a thread-scoped instant ("i") marker.
func (b *ChromeBuilder) Instant(tid int, name, cat string, ts int64, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "i",
		Ts: ts, Pid: chromePid, Tid: tid, S: "t", Args: args})
}

// FlowStart opens a flow arrow ("s") with the given id at (tid, ts).
func (b *ChromeBuilder) FlowStart(tid int, name, cat string, ts int64, id uint64) {
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "s",
		Ts: ts, Pid: chromePid, Tid: tid, ID: id})
}

// FlowEnd terminates a flow arrow ("f", bound to the enclosing slice) at
// (tid, ts). One flow id may terminate several times: a producer fans
// out to every consumer.
func (b *ChromeBuilder) FlowEnd(tid int, name, cat string, ts int64, id uint64) {
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "f", BP: "e",
		Ts: ts, Pid: chromePid, Tid: tid, ID: id})
}

// AsyncBegin opens an async span ("b") with the given id.
func (b *ChromeBuilder) AsyncBegin(tid int, name, cat string, ts int64, id uint64, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "b",
		Ts: ts, Pid: chromePid, Tid: tid, ID: id, Args: args})
}

// AsyncEnd closes an async span ("e"). Name, cat and id must match the
// AsyncBegin.
func (b *ChromeBuilder) AsyncEnd(tid int, name, cat string, ts int64, id uint64, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "e",
		Ts: ts, Pid: chromePid, Tid: tid, ID: id, Args: args})
}

// Len reports the number of events added so far (metadata included).
func (b *ChromeBuilder) Len() int { return len(b.events) }

// Write renders the timeline as the JSON-object envelope form.
func (b *ChromeBuilder) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: b.events})
}

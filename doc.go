// Package repro is a from-scratch Go reproduction of "Scalar Vector
// Runahead" (Roelandts et al., MICRO 2024): a cycle-level simulation of an
// in-order core extended with piggyback runahead, its out-of-order and
// IMP-prefetcher baselines, the paper's workload suite, and a benchmark
// harness that regenerates every table and figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record.
package repro

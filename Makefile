# Convenience targets for the SVR reproduction.

GO ?= go

.PHONY: all test race bench evaluate fuzz vet fmt cover

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at full scale into results_full.txt.
evaluate:
	$(GO) run ./cmd/svrsim all | tee results_full.txt

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/isa/
	$(GO) test -fuzz FuzzInstrString -fuzztime 15s ./internal/isa/
	$(GO) test -fuzz FuzzReadWrite -fuzztime 15s ./internal/mem/

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
	test -z "$$(gofmt -l .)"

cover:
	$(GO) test -cover ./internal/...

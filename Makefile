# Convenience targets for the SVR reproduction.

GO ?= go

.PHONY: all test race bench evaluate metrics fuzz vet fmt cover

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at full scale into results_full.txt,
# and the same cells machine-readably (per-cell registry snapshots) into
# results_metrics.json.
evaluate:
	$(GO) run ./cmd/svrsim all | tee results_full.txt
	$(GO) run ./cmd/svrsim all -metrics > results_metrics.json

# Quick-scale headline figure with the full per-cell metric snapshots
# (counters + latency histograms) as JSON on stdout.
metrics:
	$(GO) run ./cmd/svrsim run fig1 -quick -metrics

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/isa/
	$(GO) test -fuzz FuzzInstrString -fuzztime 15s ./internal/isa/
	$(GO) test -fuzz FuzzReadWrite -fuzztime 15s ./internal/mem/

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
	test -z "$$(gofmt -l .)"

cover:
	$(GO) test -cover ./internal/...

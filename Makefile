# Convenience targets for the SVR reproduction.

GO ?= go

.PHONY: all test race bench results evaluate metrics fuzz vet fmt cover

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at full scale into results_full.txt,
# and the same cells machine-readably (per-cell registry snapshots) into
# results_metrics.json. These outputs are derived artifacts — they are
# gitignored, not committed; this target is how you (re)produce them.
results:
	$(GO) run ./cmd/svrsim all | tee results_full.txt
	$(GO) run ./cmd/svrsim all -metrics > results_metrics.json

# Back-compat alias for the pre-rename target name.
evaluate: results

# Quick-scale headline figure with the full per-cell metric snapshots
# (counters + latency histograms) as JSON on stdout.
metrics:
	$(GO) run ./cmd/svrsim run fig1 -quick -metrics

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/isa/
	$(GO) test -fuzz FuzzInstrString -fuzztime 15s ./internal/isa/
	$(GO) test -fuzz FuzzReadWrite -fuzztime 15s ./internal/mem/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/stream/

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
	test -z "$$(gofmt -l .)"

cover:
	$(GO) test -cover ./internal/...

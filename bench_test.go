package repro

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates its experiment on a representative workload subset at quick
// scale and reports the headline numbers as custom metrics, so
// `go test -bench=. -benchmem` reprints the whole evaluation. Run the
// full-size versions with `go run ./cmd/svrsim run <id>`.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/cpu/ooo"
	"repro/internal/emu"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchSet covers every behaviour class at tractable cost.
var benchSet = []string{"PR_KR", "BFS_UR", "SSSP_TW", "CC_LJN", "BC_ORK",
	"HJ2", "HJ8", "NAS-IS", "NAS-CG", "Randacc", "Kangr", "Camel", "G500"}

// smallSet keeps the heavyweight sweeps affordable.
var smallSet = []string{"PR_KR", "NAS-IS", "Randacc", "SSSP_TW"}

func expParams(wls []string) sim.ExpParams {
	return sim.ExpParams{Params: sim.QuickParams(), Workloads: wls}
}

func runExperiment(b *testing.B, id string, wls []string, metrics []string) {
	b.Helper()
	// The memoized run cache would turn every iteration after the first
	// into a lookup; benchmarks measure real simulation work, so run cold.
	prev := sim.SetRunCacheEnabled(false)
	defer sim.SetRunCacheEnabled(prev)
	e, err := sim.GetExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep := e.Run(expParams(wls))
		if i == b.N-1 {
			for _, m := range metrics {
				if v, ok := rep.Values[m]; ok {
					b.ReportMetric(v, m)
				}
			}
		}
	}
}

// BenchmarkFig1 regenerates the headline speedup/energy figure.
func BenchmarkFig1(b *testing.B) {
	runExperiment(b, "fig1", benchSet, []string{
		"speedup.SVR16", "speedup.SVR64", "speedup.out-of-order", "speedup.IMP",
		"energy.SVR16", "energy.out-of-order"})
}

// BenchmarkFig3 regenerates the in-order vs OoO CPI stacks.
func BenchmarkFig3(b *testing.B) {
	runExperiment(b, "fig3", benchSet, []string{
		"dram.in-order", "dram.out-of-order", "total.in-order", "total.out-of-order"})
}

// BenchmarkFig11 regenerates the per-workload CPI table.
func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", benchSet, []string{
		"cpi.in-order.avg", "cpi.IMP.avg", "cpi.out-of-order.avg",
		"cpi.SVR16.avg", "cpi.SVR128.avg"})
}

// BenchmarkFig12 regenerates the per-workload energy table.
func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", benchSet, []string{
		"energy.in-order.avg", "energy.out-of-order.avg", "energy.SVR16.avg"})
}

// BenchmarkFig13a regenerates the prefetch-accuracy comparison.
func BenchmarkFig13a(b *testing.B) {
	runExperiment(b, "fig13a", benchSet, []string{
		"accuracy.IMP", "accuracy.SVR16", "accuracy.SVR16-Maxlength",
		"accuracy.SVR64", "accuracy.SVR64-Maxlength"})
}

// BenchmarkFig13b regenerates the coverage breakdown.
func BenchmarkFig13b(b *testing.B) {
	runExperiment(b, "fig13b", benchSet, []string{
		"coverage.SVR16.demand", "coverage.SVR16.technique", "coverage.SVR16.total",
		"coverage.IMP.total"})
}

// BenchmarkFig14 regenerates the SPEC-overhead study on a proxy subset.
func BenchmarkFig14(b *testing.B) {
	runExperiment(b, "fig14",
		[]string{"bwaves", "mcf", "deepsjeng", "lbm", "xz", "omnetpp", "leela", "wrf"},
		[]string{"hmean"})
}

// BenchmarkFig15 regenerates the loop-bound mechanism comparison.
func BenchmarkFig15(b *testing.B) {
	runExperiment(b, "fig15", nil, []string{
		"svr16.Tournament", "svr16.LBD+Wait", "svr16.Maxlength",
		"svr64.Tournament", "svr64.LBD+Wait", "svr64.Maxlength"})
}

// BenchmarkFig16 regenerates the scalars-per-vector-unit study.
func BenchmarkFig16(b *testing.B) {
	runExperiment(b, "fig16", smallSet, []string{
		"svr16.x1", "svr16.x8", "svr64.x1", "svr64.x8"})
}

// BenchmarkFig17 regenerates the MSHR/PTW sensitivity sweep.
func BenchmarkFig17(b *testing.B) {
	runExperiment(b, "fig17", smallSet, []string{
		"svr16.mshr1.ptw4", "svr16.mshr8.ptw4", "svr16.mshr32.ptw4",
		"svr64.mshr8.ptw4", "svr64.mshr16.ptw4", "svr64.mshr32.ptw4"})
}

// BenchmarkFig18 regenerates the bandwidth sensitivity sweep.
func BenchmarkFig18(b *testing.B) {
	runExperiment(b, "fig18", smallSet, []string{
		"svr16.bw12.5", "svr16.bw50", "svr16.bw100",
		"svr64.bw12.5", "svr64.bw50", "svr64.bw100"})
}

// BenchmarkTable2 regenerates the hardware-overhead budget.
func BenchmarkTable2(b *testing.B) {
	runExperiment(b, "table2", nil, []string{"kib.8", "kib.16", "kib.64", "kib.128"})
}

// BenchmarkAblations regenerates the §VI-D design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablations", smallSet, []string{
		"svr16", "svr16.regcopy", "svr16.srf2.lru", "svr16.srf2.dvr",
		"svr16.nowait", "svr64.nowait"})
}

// --- substrate micro-benchmarks --------------------------------------

// BenchmarkEmulator measures raw functional-emulation throughput
// (instructions per op).
func BenchmarkEmulator(b *testing.B) {
	spec, err := workloads.Get("NAS-IS")
	if err != nil {
		b.Fatal(err)
	}
	inst := spec.Build(workloads.BenchScale())
	cpu := emu.New(inst.Prog, inst.Mem)
	b.ResetTimer()
	var rec emu.DynInstr
	for i := 0; i < b.N; i++ {
		if !cpu.Step(&rec) {
			b.Fatal("program ended during benchmark")
		}
	}
}

// BenchmarkInOrderTiming measures the in-order core model's throughput.
func BenchmarkInOrderTiming(b *testing.B) {
	spec, _ := workloads.Get("PR_KR")
	inst := spec.Build(workloads.BenchScale())
	h := cache.NewHierarchy(cache.DefaultConfig())
	core := inorder.New(inorder.DefaultConfig(), h)
	cpu := emu.New(inst.Prog, inst.Mem)
	b.ResetTimer()
	var rec emu.DynInstr
	for i := 0; i < b.N; i++ {
		if !cpu.Step(&rec) {
			b.Fatal("program ended")
		}
		core.Issue(&rec)
	}
}

// BenchmarkOoOTiming measures the out-of-order core model's throughput.
func BenchmarkOoOTiming(b *testing.B) {
	spec, _ := workloads.Get("PR_KR")
	inst := spec.Build(workloads.BenchScale())
	h := cache.NewHierarchy(cache.DefaultConfig())
	core := ooo.New(ooo.DefaultConfig(), h)
	cpu := emu.New(inst.Prog, inst.Mem)
	b.ResetTimer()
	var rec emu.DynInstr
	for i := 0; i < b.N; i++ {
		if !cpu.Step(&rec) {
			b.Fatal("program ended")
		}
		core.Issue(&rec)
	}
}

// BenchmarkSVRTiming measures the full SVR machine's simulation
// throughput (emulation + in-order timing + runahead engine).
func BenchmarkSVRTiming(b *testing.B) {
	res, err := sim.RunByName("NAS-IS", sim.SVRConfig(16),
		sim.Params{Scale: workloads.BenchScale(), Warmup: 0, Measure: uint64(b.N)})
	if err != nil {
		b.Fatal(err)
	}
	if res.Instrs == 0 {
		b.Fatal("no instructions simulated")
	}
}

package main

import (
	"flag"
	"fmt"
	"strings"
	"sync"

	"repro/internal/grid"
	"repro/internal/sim"
)

// The process-wide grid scheduler. Every subcommand that executes a
// (config × workload) matrix — run, all, bench, compare, serve — is a
// thin client of this one scheduler core: scheduler() installs it as the
// sim matrix runner, so experiment grids, ad-hoc comparisons and served
// jobs share the same queue, worker pool and artifact store.
var (
	schedOnce sync.Once
	schedOpts grid.Options
	sched     *grid.Scheduler
)

// scheduler returns the shared scheduler, creating it on first use.
// serve sets schedOpts (workers, queue bound) before this first call.
func scheduler() *grid.Scheduler {
	schedOnce.Do(func() {
		sched = grid.New(schedOpts)
		sim.SetMatrixRunner(sched.RunMatrix)
	})
	return sched
}

// gridFlags is the window/grid flag block shared by run, all and bench:
// one definition of -quick/-scale/-measure/-warmup/-ff/-regions/-ckpt/
// -replay/-workloads instead of a per-subcommand copy.
type gridFlags struct {
	quick   *bool
	scale   *string
	measure *uint64
	warmup  *uint64
	ff      *uint64
	regions *int
	ckpt    *bool
	replay  *string
	cohort  *string
	wls     *string
}

// addGridFlags registers the shared grid flags on fs. replayDefault is
// the subcommand's -replay default ("auto" for run/all, "off" for bench
// so its numbers stay comparable to pre-replay baselines).
func addGridFlags(fs *flag.FlagSet, replayDefault string) *gridFlags {
	return &gridFlags{
		quick:   fs.Bool("quick", false, "small inputs, short windows"),
		scale:   fs.String("scale", "", "window preset: quick, default, or paper (multi-region sampled)"),
		measure: fs.Uint64("measure", 0, "measured instructions"),
		warmup:  fs.Uint64("warmup", 0, "warmup instructions"),
		ff:      fs.Uint64("ff", 0, "functionally fast-forward (with warming) this many instructions before each region"),
		regions: fs.Int("regions", 0, "detailed regions per cell, stitched by fast-forward"),
		ckpt:    fs.Bool("ckpt", false, "replace detailed warmup with a shared functionally-warmed fast-forward checkpoint"),
		replay:  fs.String("replay", replayDefault, "instruction-stream replay: on, off, or auto (replay when eligible)"),
		cohort:  fs.String("cohort", "auto", "timing cohorts: on, off, or auto (lockstep-step eligible sibling cells over shared decoded batches)"),
		wls:     fs.String("workloads", "", "comma-separated workload filter"),
	}
}

// params folds the parsed flags into simulation parameters, the workload
// filter, and the replay + cohort modes. def is the subcommand's base
// window when no scale flag is given (DefaultParams for run/all,
// QuickParams for bench).
func (g *gridFlags) params(def sim.Params) (sim.Params, []string, sim.ReplayMode, sim.CohortMode, error) {
	p := def
	switch *g.scale {
	case "":
		if *g.quick {
			p = sim.QuickParams()
		}
	case "quick":
		p = sim.QuickParams()
	case "default":
		p = sim.DefaultParams()
	case "paper":
		p = sim.PaperParams()
	default:
		return sim.Params{}, nil, 0, 0, fmt.Errorf("unknown -scale %q (want quick, default, or paper)", *g.scale)
	}
	if *g.measure > 0 {
		p.Measure = *g.measure
	}
	if *g.warmup > 0 {
		p.Warmup = *g.warmup
	}
	if *g.ff > 0 {
		p.FastForward = *g.ff
		p.Warm = true
	}
	if *g.regions > 0 {
		p.Regions = *g.regions
	}
	if *g.ckpt {
		foldCheckpoint(&p)
	}
	var wls []string
	if *g.wls != "" {
		wls = strings.Split(*g.wls, ",")
	}
	mode, err := sim.ParseReplayMode(*g.replay)
	if err != nil {
		return sim.Params{}, nil, 0, 0, err
	}
	cohort, err := sim.ParseCohortMode(*g.cohort)
	if err != nil {
		return sim.Params{}, nil, 0, 0, err
	}
	return p, wls, mode, cohort, nil
}

// foldCheckpoint trades the detailed warmup for a (shared, checkpointed)
// functionally-warmed fast-forward of the same length.
func foldCheckpoint(p *sim.Params) {
	p.FastForward += p.Warmup
	p.Warm = true
	p.Warmup = 0
}

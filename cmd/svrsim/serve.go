package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// defaultStateFile is where the queue state is persisted on a graceful
// shutdown (serve's -state flag overrides it).
const defaultStateFile = "svrsim-state.json"

// handleDrainSignals installs a SIGINT/SIGTERM handler implementing the
// graceful-shutdown contract shared by `svrsim serve` and the -status
// server: drain running cells, persist the queue state, run pre (extra
// teardown, may be nil), exit 0. The returned stop function uninstalls
// the handler.
func handleDrainSignals(statePath string, pre func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "\nsvrsim: %s: draining running cells...\n", sig)
		scheduler().Shutdown()
		if statePath != "" {
			if err := scheduler().SaveState(statePath); err != nil {
				fmt.Fprintf(os.Stderr, "svrsim: persisting queue state: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "svrsim: queue state saved to %s\n", statePath)
			}
		}
		if pre != nil {
			pre()
		}
		os.Exit(0)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// cmdServe runs the multi-tenant grid service: the shared scheduler
// core behind an HTTP/JSON API (submit grids, stream per-cell results,
// poll/cancel/resume jobs), plus the /status, /metrics and /debug
// observability surfaces. SIGINT/SIGTERM shuts down gracefully: running
// cells drain, the queue state is persisted, and the process exits 0.
func cmdServe(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "cell worker pool size (default GOMAXPROCS)")
	queueCap := fs.Int("queue", 0, "max queued cells across all jobs (default 4096)")
	stateF := fs.String("state", defaultStateFile, "queue-state file: restored on start, persisted on shutdown (empty disables)")
	journalF := fs.String("journal", "", "stream the scheduler lifecycle journal (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	schedOpts.Workers = *workers
	schedOpts.QueueCap = *queueCap
	s := scheduler()

	// The server always captures the journal in memory (a bounded ring)
	// so GET /api/jobs/{id}/trace can render any recent job; -journal
	// additionally streams the full event stream to disk.
	jcfg := grid.JournalConfig{Capture: serveJournalRing}
	var jf *os.File
	if *journalF != "" {
		f, err := os.Create(*journalF)
		if err != nil {
			return err
		}
		jf = f
		jcfg.Writer = f
	}
	jn := grid.NewJournal(jcfg)
	grid.SetJournal(jn)
	defer func() {
		grid.SetJournal(nil)
		if err := jn.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "svrsim: journal: %v\n", err)
		}
		if jf != nil {
			jf.Close()
		}
	}()

	if *stateF != "" {
		n, err := s.LoadState(*stateF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svrsim: restoring queue state: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(w, "svrsim: restored %d unfinished job(s) from %s\n", n, *stateF)
		}
	}

	mux := newServeMux(s)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Request contexts derive from serveCtx: canceling it unblocks every
	// streaming client during shutdown.
	serveCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	srv := &http.Server{
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return serveCtx },
	}
	fmt.Fprintf(w, "svrsim: serving on http://%s (POST /api/jobs, /api/status, /status, /metrics)\n",
		ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(w, "svrsim: %s: draining running cells...\n", sig)
	}
	s.Shutdown()
	if *stateF != "" {
		if err := s.SaveState(*stateF); err != nil {
			fmt.Fprintf(os.Stderr, "svrsim: persisting queue state: %v\n", err)
		} else {
			fmt.Fprintf(w, "svrsim: queue state saved to %s\n", *stateF)
		}
	}
	cancelRequests()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(w, "svrsim: shutdown complete")
	return nil
}

// serveJournalRing bounds the in-memory journal capture backing the
// GET /api/jobs/{id}/trace endpoint: enough for the recent jobs' full
// event streams without growing with server uptime.
const serveJournalRing = 1 << 16

// newServeMux assembles `svrsim serve`'s routes on a private ServeMux —
// never the process-global http.DefaultServeMux — so a serve mux and a
// -status mux (startStatusServer) can coexist in one process without
// double-registering each other's patterns. The debug surfaces are
// per-mux too, via addDebugRoutes.
func newServeMux(s *grid.Scheduler) *http.ServeMux {
	// The artifact store's hit/miss/evict counters live in a metrics
	// registry, served in Prometheus text format on /metrics alongside
	// the scheduler's queue-wait and per-phase latency histograms.
	reg := metrics.New()
	sim.Artifacts().Register(reg, "artifact")

	mux := http.NewServeMux()
	mux.Handle("/api/", s.Handler())
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		writeStatusJSON(w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.Snapshot().WritePrometheus(w)
		s.MetricsSnapshot().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	addDebugRoutes(mux)
	return mux
}

// cmdVersion prints the module version and build metadata.
func cmdVersion(w io.Writer) error {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return fmt.Errorf("version: build info unavailable")
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	fmt.Fprintf(w, "svrsim %s (%s, %s)\n", ver, bi.Main.Path, bi.GoVersion)
	var rev, modified, when string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			when = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		dirty := ""
		if modified == "true" {
			dirty = " (modified)"
		}
		fmt.Fprintf(w, "  commit %s%s %s\n", rev, dirty, when)
	}
	return nil
}

package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeAndStatusMuxesCoexist: `svrsim serve` and the run-mode
// -status server build private ServeMuxes, so both can live in one
// process — registering the debug surfaces twice on the global
// http.DefaultServeMux would panic with a duplicate-pattern error.
func TestServeAndStatusMuxesCoexist(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("building both muxes panicked: %v", r)
		}
	}()

	serveSrv := httptest.NewServer(newServeMux(scheduler()))
	defer serveSrv.Close()

	statusAddr, stopStatus, err := startStatusServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopStatus()

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Both servers answer their shared observability routes.
	for _, base := range []string{serveSrv.URL, "http://" + statusAddr} {
		if code, body := get(base + "/status"); code != http.StatusOK ||
			!strings.Contains(body, "Scheduler") {
			t.Errorf("GET %s/status = %d\n%s", base, code, body)
		}
		if code, body := get(base + "/debug/vars"); code != http.StatusOK ||
			!strings.Contains(body, "scheduler") {
			t.Errorf("GET %s/debug/vars = %d", base, code)
		}
	}

	// The serve-only routes stay off the -status server.
	if code, body := get(serveSrv.URL + "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "svrsim_grid_queue_wait_us") {
		t.Errorf("GET serve /metrics = %d\n%s", code, body)
	}
	if code, _ := get(serveSrv.URL + "/healthz"); code != http.StatusOK {
		t.Errorf("GET serve /healthz = %d", code)
	}
	if code, _ := get("http://" + statusAddr + "/healthz"); code == http.StatusOK {
		t.Error("-status server serves /healthz; serve-only routes leaked onto it")
	}
}

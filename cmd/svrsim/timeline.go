package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/svr"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// lookupWorkload resolves a workload name, listing every valid name in
// the error so a typo is answerable without a second command.
func lookupWorkload(name string) (workloads.Spec, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return workloads.Spec{}, fmt.Errorf("unknown workload %q; valid workloads: %s",
			name, strings.Join(workloads.Names(), " "))
	}
	return spec, nil
}

// cmdTimeline runs a traced window of one workload on the SVR machine and
// exports it as a timeline: Chrome Trace Event JSON for Perfetto
// (per-lane pipeline slices, PRM rounds as async spans, miss→fill flow
// arrows) or raw JSONL for custom tooling.
func cmdTimeline(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("timeline: missing workload name")
	}
	name := args[0]
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	out := fs.String("o", "trace.json", "output path (- for stdout)")
	format := fs.String("format", "chrome", "output format: chrome (Perfetto-loadable), jsonl")
	skip := fs.Uint64("skip", 20_000, "instructions to run before tracing")
	window := fs.Uint64("window", 2_000, "instructions to trace")
	n := fs.Int("n", 16, "SVR vector length")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	spec, err := lookupWorkload(name)
	if err != nil {
		return err
	}
	if *format != "chrome" && *format != "jsonl" {
		return fmt.Errorf("unknown format %q (want chrome, jsonl)", *format)
	}

	dst := w
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	inst := spec.Build(workloads.BenchScale())
	cfg := sim.SVRConfig(*n)
	h := cache.NewHierarchy(cfg.Hier)
	core := inorder.New(cfg.InO, h)
	cpu := emu.New(inst.Prog, inst.Mem)
	eng := svr.New(cfg.SVR, h, cpu)
	core.Companion = eng
	core.Run(stream.NewLive(cpu), *skip)

	var sink trace.Sink
	switch *format {
	case "chrome":
		sink = &trace.Capture{}
	case "jsonl":
		sink = trace.NewJSONL(dst)
	}
	core.Tracer = sink
	eng.Tracer = sink
	core.Run(stream.NewLive(cpu), *window)

	if cap, ok := sink.(*trace.Capture); ok {
		if err := trace.WriteChromeTrace(dst, cap.Events, cfg.InO.Width); err != nil {
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(w, "timeline of %s (SVR-%d): %d instructions after skipping %d -> %s (%s)\n",
			name, *n, *window, *skip, *out, *format)
	}
	return nil
}

// Command svrsim runs the Scalar Vector Runahead evaluation: any table or
// figure of the paper, a full sweep, or a single workload on a single
// machine with detailed statistics.
//
// Usage:
//
//	svrsim list                      # experiments and workloads
//	svrsim run <experiment> [flags]  # regenerate one table/figure
//	svrsim all [flags]               # regenerate everything
//	svrsim workload <name> [flags]   # one workload, one machine, details
//	svrsim disasm <workload>         # kernel disassembly
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/svr"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	err := dispatch(os.Stdout, os.Args[1], os.Args[2:])
	if err == errUnknownCommand {
		fmt.Fprintf(os.Stderr, "svrsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "svrsim:", err)
		os.Exit(1)
	}
}

// errUnknownCommand signals main to print usage and exit 2.
var errUnknownCommand = fmt.Errorf("unknown command")

// dispatch routes a subcommand; all output goes to w (tests inject a
// buffer).
func dispatch(w io.Writer, cmd string, args []string) error {
	switch cmd {
	case "list":
		return cmdList(w)
	case "run":
		return cmdRun(w, args)
	case "all":
		return cmdAll(w, args)
	case "workload":
		return cmdWorkload(w, args)
	case "metrics":
		return cmdMetrics(w, args)
	case "disasm":
		return cmdDisasm(w, args)
	case "trace":
		return cmdTrace(w, args)
	case "timeline":
		return cmdTimeline(w, args)
	case "compare":
		return cmdCompare(w, args)
	case "bench":
		return cmdBench(w, args)
	case "journal":
		return cmdJournal(w, args)
	case "serve":
		return cmdServe(w, args)
	case "version", "-v", "--version":
		return cmdVersion(w)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	return errUnknownCommand
}

func usage() {
	fmt.Fprint(os.Stderr, `svrsim — Scalar Vector Runahead (MICRO 2024) reproduction

  svrsim list                      experiments and workloads
  svrsim run <experiment> [flags]  regenerate one table/figure
  svrsim all [flags]               regenerate every experiment
  svrsim workload <name> [flags]   simulate one workload in detail
  svrsim metrics <name> [flags]    full metric registry of one run
  svrsim disasm <workload>         print a kernel's assembly
  svrsim trace <workload> [flags]  dump pipeline + runahead events
  svrsim timeline <workload> [fl.] export a traced window as a Perfetto timeline
  svrsim compare <workload>        one workload on every machine, side by side
  svrsim bench [flags]             time the simulator itself on the cold grid
  svrsim journal <file> [flags]    validate a lifecycle journal, render its grid trace
  svrsim serve [flags]             multi-tenant grid service over HTTP/JSON
  svrsim version                   module version and build metadata
  svrsim help                      this text

run/all flags:
  -quick             small inputs and short windows
  -scale S           window preset: quick, default, or paper (multi-region sampled)
  -csv               emit tables as CSV for plotting
  -json              emit reports as JSON (values, tables, scheduler counters)
  -metrics           emit reports as JSON with every cell's metric snapshot
  -cold              disable the memoized run cache (re-simulate every cell)
  -workloads a,b,c   restrict to named workloads
  -measure N         measured instructions per run
  -warmup N          warmup instructions per run
  -ff N              warmed functional fast-forward before each region
  -regions N         detailed regions per cell, stitched by fast-forward
  -ckpt              swap detailed warmup for a shared fast-forward checkpoint
  -replay M          instruction-stream replay: on, off, or auto (default auto:
                     record each window once, replay into every eligible cell)
  -cohort M          timing cohorts: on, off, or auto (default auto: decode each
                     recording once and lockstep-step eligible sibling cells
                     over the shared batches; results are bit-identical)
  -timeseries F      sample every cell's counters into a per-interval CSV at F
  -sample N          sampling interval in instructions (default 100000)
  -status ADDR       serve live scheduler status on ADDR (/status, expvar, pprof)
  -journal F         stream the scheduler lifecycle journal (JSONL) to F
  -gridtrace F       export the whole run as a Chrome/Perfetto trace of the
                     scheduler itself (workers, cells, phases, artifact flows)

timeline flags:
  -o F               output path, - for stdout (default trace.json)
  -format F          chrome (Perfetto-loadable JSON) or jsonl
  -skip / -window    position the traced window; -n sets SVR vector length

journal flags:
  -trace F           also render the journal as a Chrome/Perfetto grid trace at F

bench flags:
  -phases            report per-phase wall-time attribution (where grid time goes)
  -out F             bench report JSON path (default BENCH_BASELINE.json)
  -baseline F        diff against a previous bench JSON (default BENCH_BASELINE.json,
                     falling back to the legacy BENCH_PR3.json; informational)
  -ckpt              run the grid with shared fast-forward checkpoints
  -replay M          stream policy: off (default, comparable to old baselines)
                     or on (record-once/replay-many composed with -ckpt)
  -cpuprofile F      write a CPU profile
  -memprofile F      write an allocation profile
  -full              paper-scale inputs instead of quick scale

metrics flags:
  -core K            machine: inorder, imp, ooo, svr (default svr)
  -n N               SVR vector length (default 16)
  -format F          output: table, prom (Prometheus text), json
  -quick / -warmup / -measure as above

serve flags:
  -addr A            listen address (default :8080)
  -workers N         cell worker pool size (default GOMAXPROCS)
  -queue N           max queued cells across all jobs (default 4096)
  -state F           queue-state file restored on start, persisted on
                     SIGINT/SIGTERM shutdown (default svrsim-state.json)
  -journal F         stream the scheduler lifecycle journal (JSONL) to F
serve endpoints:
  POST /api/jobs               submit a grid ({"Configs":["svr16",...],
                               "Workloads":[...], "Preset":"quick", "Priority":N})
  GET  /api/jobs[/{id}]        list jobs / poll one job
  GET  /api/jobs/{id}/results  stream per-cell results (NDJSON; ?format=sse for SSE)
  GET  /api/jobs/{id}/trace    Chrome/Perfetto trace of the job's scheduling
  POST /api/jobs/{id}/cancel   drop queued cells (running cells finish)
  POST /api/jobs/{id}/resume   re-enqueue a canceled job's remainder
  GET  /api/status             scheduler + queue + jobs + artifact store JSON
  GET  /status, /metrics       aggregate snapshot; Prometheus text format
`)
}

func expFlags(args []string) (sim.ExpParams, []string, error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	csvF := fs.Bool("csv", false, "emit tables as CSV")
	jsonF := fs.Bool("json", false, "emit reports as JSON")
	metricsF := fs.Bool("metrics", false, "emit reports as JSON with per-cell metric snapshots")
	coldF := fs.Bool("cold", false, "disable the memoized run cache")
	g := addGridFlags(fs, "auto")
	tsF := fs.String("timeseries", "", "write per-interval counter samples of every cell to this CSV")
	sampleF := fs.Uint64("sample", 100_000, "sampling interval in instructions (with -timeseries)")
	statusF := fs.String("status", "", "serve live scheduler status on this address (e.g. :6060)")
	journalF := fs.String("journal", "", "stream the scheduler lifecycle journal (JSONL) to this file")
	gridtraceF := fs.String("gridtrace", "", "write a Chrome/Perfetto trace of the scheduler run to this file")
	if err := fs.Parse(args); err != nil {
		return sim.ExpParams{}, nil, err
	}
	pp, wls, mode, cohort, err := g.params(sim.DefaultParams())
	if err != nil {
		return sim.ExpParams{}, nil, err
	}
	p := sim.ExpParams{Params: pp, Workloads: wls}
	replayMode = mode
	cohortMode = cohort
	csvMode = *csvF
	jsonMode = *jsonF || *metricsF // -metrics is JSON output with snapshots
	metricsMode = *metricsF
	coldMode = *coldF
	timeseriesPath = *tsF
	statusAddr = *statusF
	journalPath = *journalF
	gridtracePath = *gridtraceF
	if timeseriesPath != "" {
		p.SampleEvery = *sampleF
	}
	return p, fs.Args(), nil
}

// csvMode / jsonMode switch run/all output format; metricsMode adds
// per-cell metric snapshots to the JSON; coldMode disables the run cache;
// timeseriesPath collects per-cell interval samples into a CSV;
// statusAddr serves the live scheduler status; replayMode selects the
// instruction-stream policy (all set by expFlags).
var csvMode, jsonMode, metricsMode, coldMode bool
var timeseriesPath, statusAddr, journalPath, gridtracePath string
var replayMode sim.ReplayMode
var cohortMode sim.CohortMode

func printReport(w io.Writer, r *sim.Report) error {
	if jsonMode {
		blob, err := r.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", blob)
		return nil
	}
	if csvMode {
		fmt.Fprint(w, r.CSV())
		return nil
	}
	fmt.Fprint(w, r)
	return nil
}

// progressMu serializes the \r-overwritten stderr progress line between
// the per-cell hook and the periodic ticker.
var progressMu sync.Mutex

// statusSuffix renders the live scheduler rate/ETA tail of the progress
// line, empty until the scheduler has something to project from.
func statusSuffix() string {
	st := sim.CurrentStatus()
	if !st.Active || st.Rate <= 0 {
		return ""
	}
	s := fmt.Sprintf(", %.1fM instr/s", st.Rate/1e6)
	if st.ETA > 0 {
		s += fmt.Sprintf(", ETA %s", st.ETA.Round(time.Second))
	}
	return s
}

// progressPrinter reports scheduler progress on stderr as experiments
// run: cells completed, served from cache, remaining, and the live
// instruction rate / ETA. curExp names the experiment whose matrix is in
// flight.
func progressPrinter(curExp *string) func(sim.CellEvent) {
	cached := 0
	return func(ev sim.CellEvent) {
		if ev.Done == 1 {
			cached = 0
		}
		if ev.Cached {
			cached++
		}
		progressMu.Lock()
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells (%d cached, %d remaining%s)",
			*curExp, ev.Done, ev.Cells, cached, ev.Cells-ev.Done, statusSuffix())
		if ev.Done == ev.Cells {
			fmt.Fprintln(os.Stderr)
		}
		progressMu.Unlock()
	}
}

// startProgressTicker redraws a scheduler-state line every couple of
// seconds so long cells still show liveness (the per-cell hook only fires
// on completion). The returned stop function ends the goroutine.
func startProgressTicker(curExp *string) func() {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st := sim.CurrentStatus()
				if !st.Active {
					continue
				}
				ckpt := ""
				if st.Checkpointing > 0 {
					ckpt = fmt.Sprintf(", %d checkpointing", st.Checkpointing)
				}
				if st.Recording > 0 {
					ckpt += fmt.Sprintf(", %d recording", st.Recording)
				}
				if st.Cohorts > 0 {
					ckpt += fmt.Sprintf(", %d cohorts (%.1f cells/cohort)",
						st.Cohorts, float64(st.CohortCells)/float64(st.Cohorts))
				}
				progressMu.Lock()
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d done (%d queued, %d building%s, %d running%s)",
					*curExp, st.Done, st.Cells, st.Queued, st.Building, ckpt, st.Running, statusSuffix())
				progressMu.Unlock()
			}
		}
	}()
	return func() { close(stop) }
}

// applyRunFlags activates -cold, -timeseries, -status and progress
// reporting for run/all, and routes the matrices through the shared
// scheduler core; the returned cleanup restores the process-wide state.
func applyRunFlags(curExp *string) func() {
	scheduler()
	prevCache := true
	if coldMode {
		prevCache = sim.SetRunCacheEnabled(false)
	}
	prevReplay := sim.SetReplayMode(replayMode)
	prevCohort := sim.SetCohortMode(cohortMode)
	prevMetrics := sim.SetCellMetrics(metricsMode)
	prevSeries := sim.SetCellSeries(timeseriesPath != "")
	sim.SetProgressHook(progressPrinter(curExp))
	stopTicker := startProgressTicker(curExp)
	stopJournal := startRunJournal()
	stopStatus := func() {}
	if statusAddr != "" {
		bound, shutdown, err := startStatusServer(statusAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svrsim: status server: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "svrsim: status on http://%s/status (also /debug/vars, /debug/pprof)\n",
				bound)
			stopStatus = shutdown
			// A sweep long enough to watch is long enough to interrupt:
			// SIGINT/SIGTERM drains running cells, persists the queue
			// state, and exits 0 (same contract as `svrsim serve`).
			stopSignals := handleDrainSignals(defaultStateFile, stopStatus)
			prevStop := stopStatus
			stopStatus = func() { stopSignals(); prevStop() }
		}
	}
	return func() {
		stopStatus()
		stopJournal()
		stopTicker()
		sim.SetProgressHook(nil)
		sim.SetCellSeries(prevSeries)
		sim.SetCellMetrics(prevMetrics)
		sim.SetCohortMode(prevCohort)
		sim.SetReplayMode(prevReplay)
		if coldMode {
			sim.SetRunCacheEnabled(prevCache)
		}
	}
}

// startRunJournal installs the scheduler lifecycle journal for -journal
// and -gridtrace: streaming JSONL to the journal file, capturing events
// in memory when a trace will be rendered. The returned stop uninstalls
// the journal, writes the trace, and flushes everything. With neither
// flag set it installs nothing — the observability-off default, whose
// stdout is byte-identical to a run without these flags.
func startRunJournal() func() {
	if journalPath == "" && gridtracePath == "" {
		return func() {}
	}
	cfg := grid.JournalConfig{}
	if gridtracePath != "" {
		cfg.Capture = -1 // the trace needs the whole stream
	}
	var jf *os.File
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svrsim: journal: %v\n", err)
		} else {
			jf = f
			cfg.Writer = f
		}
	}
	if cfg.Writer == nil && cfg.Capture == 0 {
		return func() {} // journal file failed and no trace wanted
	}
	jn := grid.NewJournal(cfg)
	grid.SetJournal(jn)
	return func() {
		grid.SetJournal(nil)
		if gridtracePath != "" {
			if f, err := os.Create(gridtracePath); err != nil {
				fmt.Fprintf(os.Stderr, "svrsim: gridtrace: %v\n", err)
			} else {
				if err := grid.WriteTrace(f, jn.Events()); err != nil {
					fmt.Fprintf(os.Stderr, "svrsim: gridtrace: %v\n", err)
				}
				f.Close()
			}
		}
		if err := jn.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "svrsim: journal: %v\n", err)
		}
		if jf != nil {
			jf.Close()
		}
	}
}

// writeSeriesCSV renders collected per-cell time series as one CSV with
// label/workload prefix columns, for -timeseries.
func writeSeriesCSV(path string, cells []sim.CellSeries) error {
	if len(cells) == 0 {
		return fmt.Errorf("timeseries: no cells produced a series (did every cell come from the cache?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := cells[0].Series.WriteCSVHeader(f, "label", "workload"); err != nil {
		return err
	}
	for _, c := range cells {
		if err := c.Series.WriteCSVRows(f, c.Label, c.Workload); err != nil {
			return err
		}
	}
	return nil
}

func cmdList(w io.Writer) error {
	fmt.Fprintln(w, "experiments:")
	for _, e := range sim.Experiments() {
		fmt.Fprintf(w, "  %-10s %s\n", e.ID, e.Title)
	}
	fmt.Fprintln(w, "\nworkloads (evaluation set):")
	for _, s := range workloads.Evaluation() {
		fmt.Fprintf(w, "  %-10s %-6s %s\n", s.Name, s.Group, s.Desc)
	}
	fmt.Fprintln(w, "\nworkloads (SPEC proxies, fig14):")
	fmt.Fprintln(w, "  "+strings.Join(workloads.SPECNames(), " "))
	return nil
}

func cmdRun(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run: missing experiment id")
	}
	id := args[0]
	p, _, err := expFlags(args[1:])
	if err != nil {
		return err
	}
	e, err := sim.GetExperiment(id)
	if err != nil {
		return err
	}
	cleanup := applyRunFlags(&id)
	defer cleanup()
	r := e.Run(p)
	if err := printReport(w, r); err != nil {
		return err
	}
	if timeseriesPath != "" {
		return writeSeriesCSV(timeseriesPath, r.CellSeries)
	}
	return nil
}

func cmdAll(w io.Writer, args []string) error {
	p, _, err := expFlags(args)
	if err != nil {
		return err
	}
	var curExp string
	cleanup := applyRunFlags(&curExp)
	defer cleanup()
	var seriesCells []sim.CellSeries
	if jsonMode {
		var blobs []json.RawMessage
		for _, e := range sim.Experiments() {
			curExp = e.ID
			r := e.Run(p)
			blob, err := r.JSON()
			if err != nil {
				return err
			}
			blobs = append(blobs, blob)
			seriesCells = append(seriesCells, r.CellSeries...)
		}
		out, err := json.MarshalIndent(blobs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", out)
	} else {
		for _, e := range sim.Experiments() {
			curExp = e.ID
			r := e.Run(p)
			if err := printReport(w, r); err != nil {
				return err
			}
			fmt.Fprintln(w)
			seriesCells = append(seriesCells, r.CellSeries...)
		}
	}
	if timeseriesPath != "" {
		if err := writeSeriesCSV(timeseriesPath, seriesCells); err != nil {
			return err
		}
	}
	hits, misses := sim.RunCacheStats()
	if total := hits + misses; total > 0 {
		fmt.Fprintf(os.Stderr, "run cache: %d of %d cells served from cache (%.0f%%)\n",
			hits, total, 100*float64(hits)/float64(total))
	}
	return nil
}

func cmdWorkload(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("workload: missing workload name")
	}
	name := args[0]
	fs := flag.NewFlagSet("workload", flag.ContinueOnError)
	coreF := fs.String("core", "svr", "core: inorder, imp, ooo, svr")
	n := fs.Int("n", 16, "SVR vector length")
	quickF := fs.Bool("quick", false, "small inputs")
	jsonF := fs.Bool("json", false, "emit the full result record as JSON")
	measure := fs.Uint64("measure", 0, "measured instructions")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	p := sim.DefaultParams()
	if *quickF {
		p = sim.QuickParams()
	}
	if *measure > 0 {
		p.Measure = *measure
	}

	cfg, err := coreConfig(*coreF, *n)
	if err != nil {
		return err
	}

	res, err := sim.RunByName(name, cfg, p)
	if err != nil {
		return err
	}
	if *jsonF {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(w, "workload   %s on %s\n", res.Workload, res.Label)
	fmt.Fprintf(w, "instrs     %d\n", res.Instrs)
	fmt.Fprintf(w, "cycles     %d\n", res.Cycles)
	fmt.Fprintf(w, "IPC        %.3f   CPI %.3f\n", res.IPC, res.CPI)
	fmt.Fprintf(w, "CPI stack  %s\n", res.Stack.String())
	fmt.Fprintf(w, "energy     %.2f nJ/instr, core power %.3f W\n",
		res.Energy.NJPerInstr, res.Energy.CorePowerW)
	fmt.Fprintf(w, "DRAM loads demand=%d stride=%d imp=%d svr=%d (writebacks %d)\n",
		res.DRAMLoads[cache.OriginDemand], res.DRAMLoads[cache.OriginStride],
		res.DRAMLoads[cache.OriginIMP], res.DRAMLoads[cache.OriginSVR], res.Writebacks)
	if cfg.Core == sim.SVR {
		s := res.SVRStats
		fmt.Fprintf(w, "SVR        rounds=%d svis=%d scalars=%d timeouts=%d nested=%d retargets=%d chains=%d masked=%d bans=%d\n",
			s.Rounds, s.SVIs, s.Scalars, s.Timeouts, s.NestedAborts, s.Retargets, s.ChainStarts, s.MaskedLanes, s.Bans)
		pf := res.PFStats[cache.OriginSVR]
		fmt.Fprintf(w, "prefetch   issued=%d used=%d evicted-unused=%d accuracy=%.1f%%\n",
			pf.Issued, pf.Used, pf.EvictedUnused, pf.Accuracy()*100)
	}
	if cfg.Core == sim.IMP {
		pf := res.PFStats[cache.OriginIMP]
		fmt.Fprintf(w, "prefetch   issued=%d used=%d evicted-unused=%d accuracy=%.1f%%\n",
			pf.Issued, pf.Used, pf.EvictedUnused, pf.Accuracy()*100)
	}
	return nil
}

// coreConfig resolves the -core/-n flag pair shared by the workload and
// metrics subcommands.
func coreConfig(core string, n int) (sim.Config, error) {
	switch core {
	case "inorder":
		return sim.MachineConfig(sim.InO), nil
	case "imp":
		return sim.MachineConfig(sim.IMP), nil
	case "ooo":
		return sim.MachineConfig(sim.OoO), nil
	case "svr":
		return sim.SVRConfig(n), nil
	}
	return sim.Config{}, fmt.Errorf("unknown core %q", core)
}

// cmdMetrics runs one workload on one machine and dumps the machine's
// full metric registry — every counter and latency histogram — in the
// requested format.
func cmdMetrics(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("metrics: missing workload name")
	}
	name := args[0]
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	coreF := fs.String("core", "svr", "core: inorder, imp, ooo, svr")
	n := fs.Int("n", 16, "SVR vector length")
	quickF := fs.Bool("quick", false, "small inputs")
	formatF := fs.String("format", "table", "output format: table, prom, json")
	measure := fs.Uint64("measure", 0, "measured instructions")
	warmup := fs.Uint64("warmup", 0, "warmup instructions")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	p := sim.DefaultParams()
	if *quickF {
		p = sim.QuickParams()
	}
	if *measure > 0 {
		p.Measure = *measure
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	cfg, err := coreConfig(*coreF, *n)
	if err != nil {
		return err
	}
	res, err := sim.RunByName(name, cfg, p)
	if err != nil {
		return err
	}
	switch *formatF {
	case "table":
		fmt.Fprintf(w, "metrics for %s on %s (%d instrs, %d cycles)\n",
			res.Workload, res.Label, res.Instrs, res.Cycles)
		if lat, ok := res.Metrics.Histograms["lat.demand.mem"]; ok && lat.Count > 0 {
			fmt.Fprintf(w, "demand-load latency (DRAM-served): p50~%.0f p99~%.0f cycles over %d loads\n",
				lat.QuantileEst(0.50), lat.QuantileEst(0.99), lat.Count)
		}
		res.Metrics.WriteTable(w)
	case "prom":
		res.Metrics.WritePrometheus(w)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Workload string
			Label    string
			Metrics  metrics.Snapshot
		}{res.Workload, res.Label, res.Metrics})
	default:
		return fmt.Errorf("unknown format %q (want table, prom, json)", *formatF)
	}
	return nil
}

func cmdCompare(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("compare: missing workload name")
	}
	name := args[0]
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	quickF := fs.Bool("quick", false, "small inputs")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	p := sim.DefaultParams()
	if *quickF {
		p = sim.QuickParams()
	}
	spec, err := workloads.Get(name)
	if err != nil {
		return err
	}
	cfgs := []sim.Config{
		sim.MachineConfig(sim.InO), sim.MachineConfig(sim.IMP),
		sim.MachineConfig(sim.OoO), sim.SVRConfig(16), sim.SVRConfig(64),
	}
	// One grid job on the shared scheduler core: the five machines run
	// in parallel and memoize into the artifact store like any other
	// tenant's cells.
	rs := scheduler().RunMatrix(cfgs, []workloads.Spec{spec}, p)
	t := stats.NewTable("machine", "CPI", "speedup", "nJ/instr", "core W", "DRAM loads")
	chart := stats.NewBarChart("speedup over in-order", "x")
	var base sim.Result
	for i, cfg := range cfgs {
		res, ok := rs.Get(cfg.Label, name)
		if !ok {
			return fmt.Errorf("compare: missing cell %s/%s", cfg.Label, name)
		}
		if i == 0 {
			base = res
		}
		var dram int64
		for _, v := range res.DRAMLoads {
			dram += v
		}
		sp := base.CPI / res.CPI
		t.AddRow(cfg.Label,
			fmt.Sprintf("%.2f", res.CPI),
			fmt.Sprintf("%.2fx", sp),
			fmt.Sprintf("%.2f", res.Energy.NJPerInstr),
			fmt.Sprintf("%.3f", res.Energy.CorePowerW),
			fmt.Sprintf("%d", dram))
		chart.Add(cfg.Label, sp)
	}
	fmt.Fprintf(w, "%s on every machine:\n%s\n%s", name, t, chart)
	return nil
}

func cmdTrace(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace: missing workload name")
	}
	name := args[0]
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	events := fs.Int("events", 120, "events to retain")
	skip := fs.Uint64("skip", 20_000, "instructions to run before tracing")
	window := fs.Uint64("window", 2_000, "instructions to trace")
	n := fs.Int("n", 16, "SVR vector length")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	spec, err := lookupWorkload(name)
	if err != nil {
		return err
	}
	inst := spec.Build(workloads.BenchScale())
	cfg := sim.SVRConfig(*n)
	h := cache.NewHierarchy(cfg.Hier)
	core := inorder.New(cfg.InO, h)
	cpu := emu.New(inst.Prog, inst.Mem)
	eng := svr.New(cfg.SVR, h, cpu)
	core.Companion = eng
	core.Run(stream.NewLive(cpu), *skip)

	ring := trace.NewRing(*events)
	core.Tracer = ring
	eng.Tracer = ring
	core.Run(stream.NewLive(cpu), *window)

	fmt.Fprintf(w, "trace of %s (SVR-%d), %d instructions after skipping %d:\n\n",
		name, *n, *window, *skip)
	if err := ring.Dump(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwindow summary: %s (%d events total)\n", ring.Summary(), ring.Total())
	return nil
}

func cmdDisasm(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("disasm: missing workload name")
	}
	spec, err := workloads.Get(args[0])
	if err != nil {
		return err
	}
	inst := spec.Build(workloads.TinyScale())
	fmt.Fprint(w, inst.Prog.Disasm())
	return nil
}

package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/grid"
)

// cmdJournal validates a lifecycle journal (JSONL, as written by
// `svrsim all -journal F` or `svrsim serve -journal F`) against the
// event schema and summarizes it; -trace additionally renders the
// journal as a Chrome/Perfetto timeline of the scheduler run. CI runs
// the validation over the serve-smoke journal so the documented schema
// stays honest.
func cmdJournal(w io.Writer, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("journal: missing journal file")
	}
	path := args[0]
	fs := flag.NewFlagSet("journal", flag.ContinueOnError)
	traceF := fs.String("trace", "", "render the journal as a Chrome/Perfetto grid trace at this path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := grid.ValidateJournal(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "journal: %d events, schema OK\n", sum.Lines)
	names := make([]string, 0, len(sum.Events))
	for n := range sum.Events {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-18s %d\n", n, sum.Events[n])
	}

	if *traceF == "" {
		return nil
	}
	events, err := readJournal(f)
	if err != nil {
		return err
	}
	out, err := os.Create(*traceF)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := grid.WriteTrace(out, events); err != nil {
		return err
	}
	fmt.Fprintf(w, "grid trace written to %s (open at ui.perfetto.dev)\n", *traceF)
	return nil
}

// readJournal re-reads a validated journal file into events.
func readJournal(f *os.File) ([]grid.JournalEvent, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var events []grid.JournalEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev grid.JournalEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, sc.Err()
}

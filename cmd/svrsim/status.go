package main

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/sim"
)

// The -status flag exposes a live view of a long sweep: the scheduler's
// cell states and instruction rate as JSON, plus the stdlib expvar and
// pprof surfaces for deeper digging, all on a loopback-bindable listener
// that shuts down gracefully with the run.

// statusVars publishes the scheduler snapshot under expvar's "scheduler"
// key. Guarded by a Once: expvar.Publish panics on duplicate names, and
// tests may start several servers in one process.
var statusVars sync.Once

// statusSnapshot is the /status payload: the (aggregate, multi-job)
// scheduler state, the run-cache counters, and the unified artifact
// store's per-class accounting.
type statusSnapshot struct {
	Scheduler sim.GridStatus
	RunCache  struct{ Hits, Misses int64 }
	Artifacts artifact.Stats
}

func currentSnapshot() statusSnapshot {
	var s statusSnapshot
	s.Scheduler = sim.CurrentStatus()
	s.RunCache.Hits, s.RunCache.Misses = sim.RunCacheStats()
	s.Artifacts = sim.Artifacts().Stats()
	return s
}

// writeStatusJSON renders the /status payload (shared by the -status
// server and `svrsim serve`).
func writeStatusJSON(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(currentSnapshot())
}

// addDebugRoutes registers the expvar and pprof surfaces on mux. Both
// the -status server and `svrsim serve` call this on their own private
// muxes: the stdlib's expvar/pprof init() registrations target only
// http.DefaultServeMux, so per-mux registration here is what lets both
// servers run in one process without pattern collisions (the expvar
// "scheduler" var itself is process-global and Once-guarded).
func addDebugRoutes(mux *http.ServeMux) {
	statusVars.Do(func() {
		expvar.Publish("scheduler", expvar.Func(func() any { return currentSnapshot() }))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// startStatusServer serves /status (JSON scheduler snapshot),
// /debug/vars (expvar) and /debug/pprof on addr. It returns the bound
// address (resolving a ":0" port) and a shutdown that gracefully drains
// in-flight requests.
func startStatusServer(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		writeStatusJSON(w)
	})
	addDebugRoutes(mux)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}, nil
}

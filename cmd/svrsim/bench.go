package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchBaselineFile is the committed bench baseline; benchBaselineLegacy
// is its pre-rename path, still read as a fallback so older checkouts
// and scripts keep working.
const (
	benchBaselineFile   = "BENCH_BASELINE.json"
	benchBaselineLegacy = "BENCH_PR3.json"
)

// BenchReport is the machine-readable output of `svrsim bench`: the
// throughput of the simulator itself on the experiment grid, used by CI as
// a perf-regression reference (BENCH_BASELINE.json at the repo root is the
// committed baseline).
type BenchReport struct {
	Generated      string  `json:"generated"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Scale          string  `json:"scale"`
	CkptShared     bool    `json:"ckpt_shared,omitempty"`
	Replay         string  `json:"replay,omitempty"`
	Experiments    int     `json:"experiments"`
	Cells          int     `json:"cells"`
	Instrs         uint64  `json:"instructions"`
	WallSeconds    float64 `json:"wall_seconds"`
	CellsPerSec    float64 `json:"cells_per_sec"`
	NSPerInstr     float64 `json:"ns_per_simulated_instr"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	MSPerCell      float64 `json:"wall_ms_per_cell"`

	// Single-cell reference rates, measured apart from the grid so
	// parallelism and build time don't blur them: detailed simulation vs
	// the functional fast-forward loop on the same workload.
	DetNSPerInstr float64 `json:"detailed_ns_per_instr_single_cell"`
	FFNSPerInstr  float64 `json:"ff_ns_per_instr"`
	FFSpeedup     float64 `json:"ff_speedup_vs_detailed"`

	// Execute-once, time-many accounting (populated when -replay=on):
	// how many cells consumed a recorded stream vs. ran live, and how
	// compact the recordings were.
	ReplayCells         int     `json:"replay_cells,omitempty"`
	LiveCells           int     `json:"live_cells,omitempty"`
	StreamRecordings    int     `json:"stream_recordings,omitempty"`
	StreamBytes         int64   `json:"stream_bytes,omitempty"`
	StreamBytesPerInstr float64 `json:"stream_bytes_per_instr,omitempty"`

	// Decode-once cohort accounting: the cohort policy of the run, how
	// many lockstep cohorts executed, the cells they covered, their
	// mean width (cells stepped per shared decoded batch), and the full
	// width histogram (width → cohorts run at that width), since the
	// mean hides bimodal mixes.
	Cohort       string         `json:"cohort,omitempty"`
	Cohorts      int            `json:"cohorts,omitempty"`
	CohortCells  int            `json:"cohort_cells,omitempty"`
	CohortWidth  float64        `json:"cohort_width,omitempty"`
	CohortWidths map[string]int `json:"cohort_widths,omitempty"`

	// Phase attribution (populated by -phases): the grid's summed
	// per-cell wall time decomposed by execution phase, and how much of
	// the measured cell wall the attribution covers (should be ~1.0; the
	// remainder is hook/bookkeeping time no phase claimed).
	PhaseSeconds    map[string]float64 `json:"phase_seconds,omitempty"`
	CellWallSeconds float64            `json:"cell_wall_seconds,omitempty"`
	PhaseCoverage   float64            `json:"phase_coverage,omitempty"`
}

// cmdBench runs every experiment cold (run cache disabled, so each cell
// simulates) and reports simulator throughput. Reports go to out as JSON;
// a human summary and the optional baseline diff go to w. The experiment
// reports themselves are discarded — correctness of their content is the
// test suite's job, this command only times them.
func cmdBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outF := fs.String("out", benchBaselineFile, "write the bench report JSON to this file")
	baseF := fs.String("baseline", benchBaselineFile, "prior bench JSON to diff against (informational)")
	cpuF := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memF := fs.String("memprofile", "", "write an allocation profile to this file")
	fullF := fs.Bool("full", false, "paper-scale inputs instead of quick scale")
	phasesF := fs.Bool("phases", false, "report per-phase wall-time attribution of the grid")
	g := addGridFlags(fs, "off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	def := sim.QuickParams()
	scale := "quick"
	if *fullF {
		def = sim.DefaultParams()
		scale = "full"
	}
	pp, wls, mode, cohort, err := g.params(def)
	if err != nil {
		return err
	}
	p := sim.ExpParams{Params: pp, Workloads: wls}
	if mode == sim.ReplayOn && !*g.ckpt {
		// -replay=on implies the shared-checkpoint composition: the
		// recording pass starts from the post-fast-forward point, so the
		// detailed warmup is folded into the (shared, functionally-warmed)
		// fast-forward exactly as -ckpt does (g.params already folded it
		// when -ckpt was given explicitly).
		foldCheckpoint(&p.Params)
	}

	scheduler() // route the grid through the shared scheduler core
	prevCache := sim.SetRunCacheEnabled(false)
	defer sim.SetRunCacheEnabled(prevCache)
	prevReplay := sim.SetReplayMode(mode)
	defer sim.SetReplayMode(prevReplay)
	prevCohort := sim.SetCohortMode(cohort)
	defer sim.SetCohortMode(prevCohort)

	var cells, replayCells int
	var instrs uint64
	var phaseWall sim.PhaseTimes
	var cellWall time.Duration
	sim.SetProgressHook(func(ev sim.CellEvent) {
		cells++
		instrs += ev.Instrs
		if ev.Replayed {
			replayCells++
		}
		phaseWall.AddAll(ev.Phases)
		cellWall += ev.Wall
	})
	defer sim.SetProgressHook(nil)
	rec0 := sim.RecordingStats()
	coh0runs, coh0cells := sim.CohortStats()
	hist0 := sim.CohortWidthHist()

	// Reference rates first, single-threaded and outside the profiled
	// grid window.
	detNS, ffNS, err := measureRates(p.Params)
	if err != nil {
		return err
	}

	if *cpuF != "" {
		f, err := os.Create(*cpuF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	exps := sim.Experiments()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, e := range exps {
		e.Run(p)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	if *memF != "" {
		f, err := os.Create(*memF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}

	rep := BenchReport{
		Generated:     start.UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         scale,
		CkptShared:    *g.ckpt || mode == sim.ReplayOn,
		Experiments:   len(exps),
		Cells:         cells,
		Instrs:        instrs,
		WallSeconds:   wall.Seconds(),
		DetNSPerInstr: detNS,
		FFNSPerInstr:  ffNS,
	}
	if mode != sim.ReplayOff {
		rec := sim.RecordingStats()
		rep.Replay = mode.String()
		rep.ReplayCells = replayCells
		rep.LiveCells = cells - replayCells
		rep.StreamRecordings = rec.Recordings - rec0.Recordings
		rep.StreamBytes = rec.Bytes - rec0.Bytes
		if di := rec.Instrs - rec0.Instrs; di > 0 {
			rep.StreamBytesPerInstr = float64(rep.StreamBytes) / float64(di)
		}
		rep.Cohort = cohort.String()
		runs, ccells := sim.CohortStats()
		rep.Cohorts = runs - coh0runs
		rep.CohortCells = ccells - coh0cells
		if rep.Cohorts > 0 {
			rep.CohortWidth = float64(rep.CohortCells) / float64(rep.Cohorts)
			rep.CohortWidths = make(map[string]int)
			for wdt, n := range sim.CohortWidthHist() {
				if d := n - hist0[wdt]; d > 0 {
					rep.CohortWidths[fmt.Sprintf("%d", wdt)] = d
				}
			}
		}
	}
	if ffNS > 0 {
		rep.FFSpeedup = detNS / ffNS
	}
	if s := wall.Seconds(); s > 0 {
		rep.CellsPerSec = float64(cells) / s
	}
	if instrs > 0 {
		rep.NSPerInstr = float64(wall.Nanoseconds()) / float64(instrs)
		rep.AllocsPerInstr = float64(m1.Mallocs-m0.Mallocs) / float64(instrs)
	}
	if cells > 0 {
		rep.MSPerCell = wall.Seconds() * 1e3 / float64(cells)
	}
	if *phasesF {
		rep.PhaseSeconds = phaseWall.Seconds()
		rep.CellWallSeconds = cellWall.Seconds()
		if cellWall > 0 {
			rep.PhaseCoverage = phaseWall.Total().Seconds() / cellWall.Seconds()
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outF, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "bench: %d cells, %d Minstr in %.1fs — %.2f cells/s, %.0f ns/instr, %.3f allocs/instr\n",
		cells, instrs/1e6, wall.Seconds(), rep.CellsPerSec, rep.NSPerInstr, rep.AllocsPerInstr)
	fmt.Fprintf(w, "fast-forward: %.1f ns/instr vs %.0f ns/instr detailed SVR16 single-cell (%.0fx)\n",
		ffNS, detNS, rep.FFSpeedup)
	if mode != sim.ReplayOff {
		fmt.Fprintf(w, "replay: %d cells replayed, %d live — %d recordings, %.1f MiB (%.2f B/instr)\n",
			rep.ReplayCells, rep.LiveCells, rep.StreamRecordings,
			float64(rep.StreamBytes)/(1<<20), rep.StreamBytesPerInstr)
		if rep.Cohorts > 0 {
			fmt.Fprintf(w, "cohorts: %d lockstep cohorts covered %d cells (mean width %.1f)\n",
				rep.Cohorts, rep.CohortCells, rep.CohortWidth)
		}
	}

	if *phasesF {
		printPhaseTable(w, phaseWall, cellWall)
	}

	if *baseF != "" {
		basePath := resolveBaseline(*baseF)
		if err := printBenchDelta(w, basePath, rep); err != nil {
			// The diff is informational; a missing or stale baseline must
			// not fail the bench (CI treats this step as non-blocking).
			fmt.Fprintf(w, "bench: baseline diff skipped: %v\n", err)
		}
	}
	return nil
}

// printPhaseTable renders the automated "where grid time goes" breakdown:
// each phase's share of the grid's summed per-cell wall time, plus the
// attribution coverage (how much of the measured wall any phase claimed).
func printPhaseTable(w io.Writer, phases sim.PhaseTimes, cellWall time.Duration) {
	fmt.Fprintf(w, "phase attribution (%.1fs cell wall across the grid):\n", cellWall.Seconds())
	for _, p := range sim.AllPhases() {
		d := phases[p]
		pct := 0.0
		if cellWall > 0 {
			pct = 100 * d.Seconds() / cellWall.Seconds()
		}
		fmt.Fprintf(w, "  %-13s %8.2fs  %5.1f%%\n", p, d.Seconds(), pct)
	}
	if cellWall > 0 {
		fmt.Fprintf(w, "  %-13s %8.2fs  %5.1f%% of wall attributed\n",
			"total", phases.Total().Seconds(), 100*phases.Total().Seconds()/cellWall.Seconds())
	}
}

// resolveBaseline falls back to the legacy baseline name when the caller
// left the default and only the pre-rename file exists.
func resolveBaseline(path string) string {
	if path != benchBaselineFile {
		return path
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if _, err := os.Stat(benchBaselineLegacy); err == nil {
			return benchBaselineLegacy
		}
	}
	return path
}

// measureRates times one BFS_KR cell the way a paper-scale region run
// uses it, on one thread: the functional fast-forward skips ahead, then
// a detailed window runs on the paper's subject machine (SVR16, the
// modal grid configuration) from where the skip landed. Grid-level
// ns/instr conflates build time and parallelism; this is the
// apples-to-apples rate pair behind ff_speedup_vs_detailed.
func measureRates(p sim.Params) (detNS, ffNS float64, err error) {
	spec, err := workloads.Get("BFS_KR")
	if err != nil {
		return 0, 0, err
	}
	inst := spec.Build(p.Scale)
	m, err := sim.NewMachine(sim.SVRConfig(16), inst)
	if err != nil {
		return 0, 0, err
	}

	const skip = 2_000_000
	t0 := time.Now()
	if !m.FastForward(skip, false) {
		return 0, 0, fmt.Errorf("bench: BFS_KR ended inside the %d-instruction fast-forward", skip)
	}
	ffNS = float64(time.Since(t0).Nanoseconds()) / float64(skip)

	dp := sim.Params{Scale: p.Scale, Warmup: 60_000, Measure: 200_000}
	t1 := time.Now()
	sim.SimulateFrom(m, dp)
	detNS = float64(time.Since(t1).Nanoseconds()) / float64(dp.Warmup+dp.Measure)
	return detNS, ffNS, nil
}

// printBenchDelta prints the relative change against a previous report.
func printBenchDelta(w io.Writer, path string, cur BenchReport) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base BenchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return err
	}
	if base.Scale != cur.Scale {
		return fmt.Errorf("baseline scale %q != current %q", base.Scale, cur.Scale)
	}
	pct := func(now, was float64) string {
		if was == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
	}
	fmt.Fprintf(w, "vs %s:\n", path)
	if base.CkptShared != cur.CkptShared {
		fmt.Fprintf(w, "  (warmup modes differ: baseline ckpt_shared=%v, current ckpt_shared=%v)\n",
			base.CkptShared, cur.CkptShared)
	}
	if base.Replay != cur.Replay {
		fmt.Fprintf(w, "  (stream modes differ: baseline replay=%q, current replay=%q)\n",
			base.Replay, cur.Replay)
	}
	if base.Cohort != cur.Cohort {
		fmt.Fprintf(w, "  (cohort modes differ: baseline cohort=%q, current cohort=%q)\n",
			base.Cohort, cur.Cohort)
	}
	fmt.Fprintf(w, "  wall        %8.1fs -> %8.1fs  (%s)\n", base.WallSeconds, cur.WallSeconds, pct(cur.WallSeconds, base.WallSeconds))
	fmt.Fprintf(w, "  cells/s     %8.2f -> %8.2f  (%s)\n", base.CellsPerSec, cur.CellsPerSec, pct(cur.CellsPerSec, base.CellsPerSec))
	fmt.Fprintf(w, "  ns/instr    %8.0f -> %8.0f  (%s)\n", base.NSPerInstr, cur.NSPerInstr, pct(cur.NSPerInstr, base.NSPerInstr))
	fmt.Fprintf(w, "  allocs/instr%8.3f -> %8.3f  (%s)\n", base.AllocsPerInstr, cur.AllocsPerInstr, pct(cur.AllocsPerInstr, base.AllocsPerInstr))
	// Throughput deltas are meaningless if the two runs didn't serve the
	// same cell population the same way, so the replay/cohort shape is
	// part of the diff: a wall-time "win" that coincides with fewer
	// replay-served cells (or thinner cohorts) is an eligibility shift,
	// not a speedup.
	if base.Replay != "" || cur.Replay != "" {
		fmt.Fprintf(w, "  replay cells%8d -> %8d  (live %d -> %d)\n",
			base.ReplayCells, cur.ReplayCells, base.LiveCells, cur.LiveCells)
		fmt.Fprintf(w, "  cohort width%8.1f -> %8.1f  (cohort cells %d -> %d)\n",
			base.CohortWidth, cur.CohortWidth, base.CohortCells, cur.CohortCells)
		share := func(r BenchReport) float64 {
			if r.Cells == 0 {
				return 0
			}
			return float64(r.ReplayCells) / float64(r.Cells)
		}
		if bs, cs := share(base), share(cur); bs-cs > 0.10 || cs-bs > 0.10 {
			fmt.Fprintf(w, "  WARNING: replay eligibility shifted %.0f%% -> %.0f%% of cells — "+
				"throughput deltas above compare different execution paths\n", 100*bs, 100*cs)
		}
	}
	return nil
}

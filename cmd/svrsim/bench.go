package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/sim"
)

// BenchReport is the machine-readable output of `svrsim bench`: the
// throughput of the simulator itself on the experiment grid, used by CI as
// a perf-regression reference (BENCH_PR3.json at the repo root is the
// committed baseline).
type BenchReport struct {
	Generated      string  `json:"generated"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Scale          string  `json:"scale"`
	Experiments    int     `json:"experiments"`
	Cells          int     `json:"cells"`
	Instrs         uint64  `json:"instructions"`
	WallSeconds    float64 `json:"wall_seconds"`
	CellsPerSec    float64 `json:"cells_per_sec"`
	NSPerInstr     float64 `json:"ns_per_simulated_instr"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	MSPerCell      float64 `json:"wall_ms_per_cell"`
}

// cmdBench runs every experiment cold (run cache disabled, so each cell
// simulates) and reports simulator throughput. Reports go to out as JSON;
// a human summary and the optional baseline diff go to w. The experiment
// reports themselves are discarded — correctness of their content is the
// test suite's job, this command only times them.
func cmdBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outF := fs.String("out", "BENCH_PR3.json", "write the bench report JSON to this file")
	baseF := fs.String("baseline", "", "prior bench JSON to diff against (informational)")
	cpuF := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memF := fs.String("memprofile", "", "write an allocation profile to this file")
	fullF := fs.Bool("full", false, "paper-scale inputs instead of quick scale")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := sim.ExpParams{Params: sim.QuickParams()}
	scale := "quick"
	if *fullF {
		p.Params = sim.DefaultParams()
		scale = "full"
	}

	prevCache := sim.SetRunCacheEnabled(false)
	defer sim.SetRunCacheEnabled(prevCache)

	var cells int
	var instrs uint64
	sim.SetProgressHook(func(ev sim.CellEvent) {
		cells++
		instrs += ev.Instrs
	})
	defer sim.SetProgressHook(nil)

	if *cpuF != "" {
		f, err := os.Create(*cpuF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	exps := sim.Experiments()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, e := range exps {
		e.Run(p)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	if *memF != "" {
		f, err := os.Create(*memF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}

	rep := BenchReport{
		Generated:   start.UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       scale,
		Experiments: len(exps),
		Cells:       cells,
		Instrs:      instrs,
		WallSeconds: wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		rep.CellsPerSec = float64(cells) / s
	}
	if instrs > 0 {
		rep.NSPerInstr = float64(wall.Nanoseconds()) / float64(instrs)
		rep.AllocsPerInstr = float64(m1.Mallocs-m0.Mallocs) / float64(instrs)
	}
	if cells > 0 {
		rep.MSPerCell = wall.Seconds() * 1e3 / float64(cells)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outF, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "bench: %d cells, %d Minstr in %.1fs — %.2f cells/s, %.0f ns/instr, %.3f allocs/instr\n",
		cells, instrs/1e6, wall.Seconds(), rep.CellsPerSec, rep.NSPerInstr, rep.AllocsPerInstr)

	if *baseF != "" {
		if err := printBenchDelta(w, *baseF, rep); err != nil {
			// The diff is informational; a missing or stale baseline must
			// not fail the bench (CI treats this step as non-blocking).
			fmt.Fprintf(w, "bench: baseline diff skipped: %v\n", err)
		}
	}
	return nil
}

// printBenchDelta prints the relative change against a previous report.
func printBenchDelta(w io.Writer, path string, cur BenchReport) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base BenchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return err
	}
	if base.Scale != cur.Scale {
		return fmt.Errorf("baseline scale %q != current %q", base.Scale, cur.Scale)
	}
	pct := func(now, was float64) string {
		if was == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
	}
	fmt.Fprintf(w, "vs %s:\n", path)
	fmt.Fprintf(w, "  wall        %8.1fs -> %8.1fs  (%s)\n", base.WallSeconds, cur.WallSeconds, pct(cur.WallSeconds, base.WallSeconds))
	fmt.Fprintf(w, "  cells/s     %8.2f -> %8.2f  (%s)\n", base.CellsPerSec, cur.CellsPerSec, pct(cur.CellsPerSec, base.CellsPerSec))
	fmt.Fprintf(w, "  ns/instr    %8.0f -> %8.0f  (%s)\n", base.NSPerInstr, cur.NSPerInstr, pct(cur.NSPerInstr, base.NSPerInstr))
	fmt.Fprintf(w, "  allocs/instr%8.3f -> %8.3f  (%s)\n", base.AllocsPerInstr, cur.AllocsPerInstr, pct(cur.AllocsPerInstr, base.AllocsPerInstr))
	return nil
}

package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(t *testing.T, cmd string, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := dispatch(&b, cmd, args); err != nil {
		t.Fatalf("%s %v: %v", cmd, args, err)
	}
	return b.String()
}

func TestList(t *testing.T) {
	out := runCmd(t, "list")
	for _, want := range []string{"fig1", "fig17", "ablations", "multicore",
		"PR_KR", "Randacc", "bwaves"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := runCmd(t, "run", "table2")
	if !strings.Contains(out, "2.17") || !strings.Contains(out, "SVR-128") {
		t.Errorf("table2 output:\n%s", out)
	}
}

func TestRunTable1(t *testing.T) {
	out := runCmd(t, "run", "table1")
	if !strings.Contains(out, "Stalls the main thread") {
		t.Errorf("table1 output:\n%s", out)
	}
}

func TestRunCSVMode(t *testing.T) {
	out := runCmd(t, "run", "table2", "-csv")
	csvMode = false // reset the global for other tests
	if !strings.Contains(out, "config,bits,KiB") {
		t.Errorf("csv output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "run", []string{"nope"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunMissingArg(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "run", nil); err == nil {
		t.Fatal("expected error for missing experiment id")
	}
}

func TestDisasm(t *testing.T) {
	out := runCmd(t, "disasm", "NAS-IS")
	if !strings.Contains(out, "ld32") || !strings.Contains(out, "loop:") {
		t.Errorf("disasm output:\n%s", out)
	}
}

func TestWorkloadCommand(t *testing.T) {
	out := runCmd(t, "workload", "NAS-IS", "-core", "svr", "-quick", "-measure", "50000")
	for _, want := range []string{"CPI", "SVR", "prefetch", "rounds="} {
		if !strings.Contains(out, want) {
			t.Errorf("workload output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadBadCore(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "workload", []string{"NAS-IS", "-core", "zzz"}); err == nil {
		t.Fatal("expected error for unknown core")
	}
}

func TestTraceCommand(t *testing.T) {
	out := runCmd(t, "trace", "NAS-IS", "-events", "16", "-skip", "20000", "-window", "200")
	if !strings.Contains(out, "window summary") || !strings.Contains(out, "issue") {
		t.Errorf("trace output:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "frobnicate", nil); err != errUnknownCommand {
		t.Fatalf("err = %v, want errUnknownCommand", err)
	}
}

func TestRunExperimentQuickSubset(t *testing.T) {
	out := runCmd(t, "run", "fig3", "-quick", "-workloads", "NAS-IS,PR_KR")
	if !strings.Contains(out, "mem-dram CPI") {
		t.Errorf("fig3 output:\n%s", out)
	}
}

func TestRunJSONMode(t *testing.T) {
	out := runCmd(t, "run", "table2", "-json")
	jsonMode = false // reset the global for other tests
	var rep struct {
		ID     string
		Values map[string]float64
		Sched  struct{ Cells, Cached int }
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.ID != "table2" || rep.Values["kib.16"] == 0 {
		t.Errorf("report JSON fields missing:\n%s", out)
	}
}

func TestRunColdMode(t *testing.T) {
	out := runCmd(t, "run", "fig3", "-quick", "-cold", "-workloads", "NAS-IS")
	coldMode = false // reset the global for other tests
	if !strings.Contains(out, "mem-dram CPI") {
		t.Errorf("fig3 -cold output:\n%s", out)
	}
}

func TestWorkloadJSON(t *testing.T) {
	out := runCmd(t, "workload", "NAS-IS", "-quick", "-json", "-measure", "50000")
	var res map[string]any
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if res["Workload"] != "NAS-IS" || res["CPI"] == nil {
		t.Errorf("JSON fields missing: %v", res)
	}
}

package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func runCmd(t *testing.T, cmd string, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := dispatch(&b, cmd, args); err != nil {
		t.Fatalf("%s %v: %v", cmd, args, err)
	}
	return b.String()
}

func TestList(t *testing.T) {
	out := runCmd(t, "list")
	for _, want := range []string{"fig1", "fig17", "ablations", "multicore",
		"PR_KR", "Randacc", "bwaves"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := runCmd(t, "run", "table2")
	if !strings.Contains(out, "2.17") || !strings.Contains(out, "SVR-128") {
		t.Errorf("table2 output:\n%s", out)
	}
}

func TestRunTable1(t *testing.T) {
	out := runCmd(t, "run", "table1")
	if !strings.Contains(out, "Stalls the main thread") {
		t.Errorf("table1 output:\n%s", out)
	}
}

func TestRunCSVMode(t *testing.T) {
	out := runCmd(t, "run", "table2", "-csv")
	csvMode = false // reset the global for other tests
	if !strings.Contains(out, "config,bits,KiB") {
		t.Errorf("csv output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "run", []string{"nope"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunMissingArg(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "run", nil); err == nil {
		t.Fatal("expected error for missing experiment id")
	}
}

func TestDisasm(t *testing.T) {
	out := runCmd(t, "disasm", "NAS-IS")
	if !strings.Contains(out, "ld32") || !strings.Contains(out, "loop:") {
		t.Errorf("disasm output:\n%s", out)
	}
}

func TestWorkloadCommand(t *testing.T) {
	out := runCmd(t, "workload", "NAS-IS", "-core", "svr", "-quick", "-measure", "50000")
	for _, want := range []string{"CPI", "SVR", "prefetch", "rounds="} {
		if !strings.Contains(out, want) {
			t.Errorf("workload output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadBadCore(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "workload", []string{"NAS-IS", "-core", "zzz"}); err == nil {
		t.Fatal("expected error for unknown core")
	}
}

func TestTraceCommand(t *testing.T) {
	out := runCmd(t, "trace", "NAS-IS", "-events", "16", "-skip", "20000", "-window", "200")
	if !strings.Contains(out, "window summary") || !strings.Contains(out, "issue") {
		t.Errorf("trace output:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "frobnicate", nil); err != errUnknownCommand {
		t.Fatalf("err = %v, want errUnknownCommand", err)
	}
}

func TestRunExperimentQuickSubset(t *testing.T) {
	out := runCmd(t, "run", "fig3", "-quick", "-workloads", "NAS-IS,PR_KR")
	if !strings.Contains(out, "mem-dram CPI") {
		t.Errorf("fig3 output:\n%s", out)
	}
}

func TestRunJSONMode(t *testing.T) {
	out := runCmd(t, "run", "table2", "-json")
	jsonMode = false // reset the global for other tests
	var rep struct {
		ID     string
		Values map[string]float64
		Sched  struct{ Cells, Cached int }
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.ID != "table2" || rep.Values["kib.16"] == 0 {
		t.Errorf("report JSON fields missing:\n%s", out)
	}
}

func TestRunColdMode(t *testing.T) {
	out := runCmd(t, "run", "fig3", "-quick", "-cold", "-workloads", "NAS-IS")
	coldMode = false // reset the global for other tests
	if !strings.Contains(out, "mem-dram CPI") {
		t.Errorf("fig3 -cold output:\n%s", out)
	}
}

func TestWorkloadJSON(t *testing.T) {
	out := runCmd(t, "workload", "NAS-IS", "-quick", "-json", "-measure", "50000")
	var res map[string]any
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if res["Workload"] != "NAS-IS" || res["CPI"] == nil {
		t.Errorf("JSON fields missing: %v", res)
	}
}

// TestMetricsCommandJSONRoundTrip is the acceptance check for the
// machine-readable export path: `svrsim metrics -format json` must
// round-trip the cache miss counters, the per-origin DRAM load counters,
// and the demand-load latency histogram exactly as an in-process run
// reports them — for one GAP and one HPC-DB workload.
func TestMetricsCommandJSONRoundTrip(t *testing.T) {
	for _, wl := range []string{"BFS_KR", "NAS-IS"} {
		out := runCmd(t, "metrics", wl, "-quick", "-measure", "100000", "-format", "json")
		var got struct {
			Workload string
			Label    string
			Metrics  metrics.Snapshot
		}
		if err := json.Unmarshal([]byte(out), &got); err != nil {
			t.Fatalf("%s: invalid JSON: %v\n%s", wl, err, out)
		}
		if got.Workload != wl {
			t.Fatalf("workload = %q, want %q", got.Workload, wl)
		}
		// Same machine, same window, run in-process: deterministic timing
		// means every counter must match bit-for-bit.
		p := sim.QuickParams()
		p.Measure = 100_000
		res, err := sim.RunByName(wl, sim.SVRConfig(16), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"l1d.accesses", "l1d.misses", "l2.accesses", "l2.misses"} {
			if got.Metrics.Counters[name] == 0 {
				t.Errorf("%s: counter %s = 0", wl, name)
			}
			if g, w := got.Metrics.Counters[name], res.Metrics.Counters[name]; g != w {
				t.Errorf("%s: %s = %d over JSON, %d in-process", wl, name, g, w)
			}
		}
		for o := cache.Origin(0); o < cache.NumOrigins; o++ {
			name := "dram.loads." + o.String()
			if g, w := got.Metrics.Counters[name], res.DRAMLoads[o]; g != w {
				t.Errorf("%s: %s = %d over JSON, Result.DRAMLoads = %d", wl, name, g, w)
			}
		}
		hist, ok := got.Metrics.Histograms["lat.demand.mem"]
		if !ok || hist.Count == 0 {
			t.Fatalf("%s: lat.demand.mem histogram missing or empty", wl)
		}
		want := res.Metrics.Histograms["lat.demand.mem"]
		if hist.Count != want.Count || hist.Sum != want.Sum ||
			!reflect.DeepEqual(hist.Buckets, want.Buckets) {
			t.Errorf("%s: lat.demand.mem mismatch: JSON {n=%d sum=%d}, in-process {n=%d sum=%d}",
				wl, hist.Count, hist.Sum, want.Count, want.Sum)
		}
		if hist.Mean() < 50 {
			t.Errorf("%s: mean DRAM-serviced demand latency = %.1f, want DRAM-class", wl, hist.Mean())
		}
	}
}

// TestRunMetricsFlag checks the experiment path: `run -metrics` emits the
// report as JSON with one registry snapshot per scheduler cell.
func TestRunMetricsFlag(t *testing.T) {
	out := runCmd(t, "run", "fig3", "-quick", "-metrics", "-workloads", "NAS-IS")
	jsonMode, metricsMode = false, false // reset globals for other tests
	var rep struct {
		ID          string
		CellMetrics []struct {
			Label    string
			Workload string
			Metrics  metrics.Snapshot
		}
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.ID != "fig3" || len(rep.CellMetrics) == 0 {
		t.Fatalf("report has no cell metrics:\n%.400s", out)
	}
	for _, c := range rep.CellMetrics {
		if c.Metrics.Counters["l1d.misses"] == 0 {
			t.Errorf("cell %s/%s: l1d.misses = 0", c.Label, c.Workload)
		}
		if c.Metrics.Histograms["lat.demand.mem"].Count == 0 {
			t.Errorf("cell %s/%s: empty lat.demand.mem histogram", c.Label, c.Workload)
		}
	}
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// timelineArgs is the tiny traced window every timeline test uses.
var timelineArgs = []string{"NAS-IS", "-o", "-", "-skip", "20000", "-window", "500"}

// chromeOut is the decoded shape of the exporter's JSON we assert on.
type chromeOut struct {
	TraceEvents []struct {
		Name string
		Ph   string
		Ts   int64
		Tid  int
		Cat  string
	} `json:"traceEvents"`
}

// TestTimelineGoldenOutput is the golden-output check for the timeline
// command: the simulator is deterministic, so two identical invocations
// must produce byte-identical Chrome-trace JSON, and that JSON must carry
// the expected track structure.
func TestTimelineGoldenOutput(t *testing.T) {
	first := runCmd(t, "timeline", timelineArgs...)
	second := runCmd(t, "timeline", timelineArgs...)
	if first != second {
		t.Fatal("timeline output is not deterministic across identical runs")
	}
	var tr chromeOut
	if err := json.Unmarshal([]byte(first), &tr); err != nil {
		t.Fatalf("timeline output is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) < 500 {
		t.Fatalf("only %d trace events for a 500-instruction window", len(tr.TraceEvents))
	}
	var names []string
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			if n, ok := metaName(first, ev.Tid); ok {
				names = append(names, n)
			}
		}
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"lane 0", "lane 1", "memory 0", "svr engine"} {
		if !strings.Contains(joined, want) {
			t.Errorf("track %q missing (tracks: %s)", want, joined)
		}
	}
}

// metaName digs the name arg out of a metadata event for the given tid.
func metaName(blob string, tid int) (string, bool) {
	var tr struct {
		TraceEvents []struct {
			Ph   string
			Tid  int
			Name string
			Args map[string]any
		} `json:"traceEvents"`
	}
	if json.Unmarshal([]byte(blob), &tr) != nil {
		return "", false
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Tid == tid && ev.Name == "thread_name" {
			s, ok := ev.Args["name"].(string)
			return s, ok
		}
	}
	return "", false
}

// TestTimelineMonotonicLanes: per-lane slice begins must be
// non-decreasing or Perfetto rejects the track.
func TestTimelineMonotonicLanes(t *testing.T) {
	out := runCmd(t, "timeline", timelineArgs...)
	var tr chromeOut
	if err := json.Unmarshal([]byte(out), &tr); err != nil {
		t.Fatal(err)
	}
	last := map[int]int64{}
	slices := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		slices++
		if prev, ok := last[ev.Tid]; ok && ev.Ts < prev {
			t.Fatalf("tid %d: slice at ts %d after ts %d", ev.Tid, ev.Ts, prev)
		}
		last[ev.Tid] = ev.Ts
	}
	if slices < 500 {
		t.Errorf("only %d slices for a 500-instruction window", slices)
	}
}

func TestTimelineJSONLFormat(t *testing.T) {
	out := runCmd(t, "timeline", "NAS-IS", "-o", "-", "-format", "jsonl",
		"-skip", "20000", "-window", "200")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 200 {
		t.Fatalf("only %d JSONL lines for a 200-instruction window", len(lines))
	}
	kinds := map[string]int{}
	for i, line := range lines {
		var ev struct {
			Kind  string
			Cycle int64
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		kinds[ev.Kind]++
	}
	if kinds["issue"] < 200 {
		t.Errorf("kinds = %v, want >=200 issue events", kinds)
	}
}

func TestTimelineWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	out := runCmd(t, "timeline", "NAS-IS", "-o", path, "-skip", "20000", "-window", "200")
	if !strings.Contains(out, "timeline of NAS-IS") || !strings.Contains(out, path) {
		t.Errorf("summary line missing:\n%s", out)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeOut
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
}

func TestTimelineUnknownWorkload(t *testing.T) {
	var b strings.Builder
	err := dispatch(&b, "timeline", []string{"nosuchwl"})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "valid workloads:") ||
		!strings.Contains(err.Error(), "NAS-IS") {
		t.Errorf("error does not list valid workloads: %v", err)
	}
}

func TestTraceUnknownWorkload(t *testing.T) {
	var b strings.Builder
	err := dispatch(&b, "trace", []string{"nosuchwl"})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "valid workloads:") {
		t.Errorf("error does not list valid workloads: %v", err)
	}
}

// TestRunTimeseriesFlag drives `run -timeseries` end to end: the sweep
// must leave a CSV with label/workload prefix columns and one row per
// sampling interval per cell.
func TestRunTimeseriesFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ts.csv")
	runCmd(t, "run", "fig3", "-quick", "-workloads", "NAS-IS",
		"-timeseries", path, "-sample", "50000")
	timeseriesPath = "" // reset the global for other tests
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv has %d lines, want header plus several rows:\n%s", len(lines), blob)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "label" || header[1] != "workload" {
		t.Fatalf("header = %v", header)
	}
	want := map[string]bool{"ipc": false, "l1d_mpki": false, "dram_busy": false,
		"svr_coverage": false, "demand_p99": false}
	for _, h := range header {
		if _, ok := want[h]; ok {
			want[h] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("column %q missing from header %v", name, header)
		}
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			t.Fatalf("row %d has %d fields for %d columns: %s", i, len(fields), len(header), line)
		}
		if fields[1] != "NAS-IS" {
			t.Errorf("row %d workload = %q", i, fields[1])
		}
	}
}

// TestStatusServer exercises the -status surface directly: /status must
// serve the scheduler snapshot as JSON and /debug/vars must stay valid
// expvar output.
func TestStatusServer(t *testing.T) {
	addr, shutdown, err := startStatusServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Scheduler sim.GridStatus
		RunCache  struct{ Hits, Misses int64 }
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if snap.Scheduler.Active {
		t.Error("scheduler reported active with no sweep running")
	}

	vresp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	blob, err := io.ReadAll(vresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(blob, &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["scheduler"]; !ok {
		t.Error("expvar output has no scheduler key")
	}
}

// Quickstart: simulate PageRank on a Kronecker graph on all four machines
// of the paper — the in-order baseline, the same core with the IMP
// prefetcher, the out-of-order core, and the in-order core with Scalar
// Vector Runahead — and print the headline comparison.
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	p := sim.QuickParams() // small inputs; use sim.DefaultParams() for the full setup
	configs := []sim.Config{
		sim.MachineConfig(sim.InO),
		sim.MachineConfig(sim.IMP),
		sim.MachineConfig(sim.OoO),
		sim.SVRConfig(16),
		sim.SVRConfig(64),
	}

	fmt.Println("PageRank on a Kronecker graph (PR_KR):")
	var base sim.Result
	t := stats.NewTable("machine", "CPI", "speedup", "nJ/instr", "core W")
	for i, cfg := range configs {
		res, err := sim.RunByName("PR_KR", cfg, p)
		if err != nil {
			panic(err)
		}
		if i == 0 {
			base = res
		}
		t.AddRow(cfg.Label,
			fmt.Sprintf("%.2f", res.CPI),
			fmt.Sprintf("%.2fx", base.CPI/res.CPI),
			fmt.Sprintf("%.2f", res.Energy.NJPerInstr),
			fmt.Sprintf("%.3f", res.Energy.CorePowerW))
	}
	fmt.Print(t)
	fmt.Println("\nSVR rides the in-order pipeline: same core as the baseline, plus ~2 KiB of")
	fmt.Println("state (run `svrsim run table2` for the bit-level budget).")
}

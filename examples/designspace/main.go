// Designspace: an architect's walk over the SVR design space. Sweeps the
// scalar-vector length against the speculative-register-file size and the
// memory bandwidth on a mixed workload, printing hmean speedups and the
// hardware cost of each point — the performance/area trade-off of
// Table II and §VI-E condensed into one grid.
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/svr"
	"repro/internal/workloads"
)

var mix = []string{"PR_KR", "SSSP_TW", "NAS-IS", "Randacc", "Kangr"}

func hmeanSpeedup(p sim.Params, base map[string]sim.Result, cfg sim.Config) float64 {
	var ratios []float64
	for _, wl := range mix {
		spec, err := workloads.Get(wl)
		if err != nil {
			panic(err)
		}
		res := sim.Run(spec, cfg, p)
		if b := base[wl]; b.IPC > 0 {
			ratios = append(ratios, res.IPC/b.IPC)
		}
	}
	return stats.HarmonicMean(ratios)
}

func main() {
	p := sim.QuickParams()

	base := map[string]sim.Result{}
	for _, wl := range mix {
		res, err := sim.RunByName(wl, sim.MachineConfig(sim.InO), p)
		if err != nil {
			panic(err)
		}
		base[wl] = res
	}

	fmt.Println("Vector length x SRF size (hmean speedup over in-order; KiB of state):")
	t := stats.NewTable("N \\ K", "K=2", "K=4", "K=8", "state @K=8")
	for _, n := range []int{8, 16, 32, 64} {
		row := []string{fmt.Sprintf("N=%d", n)}
		for _, k := range []int{2, 4, 8} {
			cfg := sim.SVRConfig(n)
			cfg.SVR.SRFRegs = k
			cfg.Label = fmt.Sprintf("SVR%d-k%d", n, k)
			row = append(row, fmt.Sprintf("%.2fx", hmeanSpeedup(p, base, cfg)))
		}
		opt := svr.DefaultOptions()
		opt.VectorLen = n
		row = append(row, fmt.Sprintf("%.2f KiB", svr.OverheadKiB(opt)))
		t.AddRow(row...)
	}
	fmt.Print(t)

	fmt.Println("\nBandwidth sensitivity (SVR16, same-bandwidth in-order baseline):")
	bw := stats.NewTable("GiB/s", "speedup")
	for _, gbps := range []float64{12.5, 25, 50, 100} {
		baseCfg := sim.MachineConfig(sim.InO)
		baseCfg.Hier.DRAM.BandwidthGBps = gbps
		bwBase := map[string]sim.Result{}
		for _, wl := range mix {
			res, err := sim.RunByName(wl, baseCfg, p)
			if err != nil {
				panic(err)
			}
			bwBase[wl] = res
		}
		cfg := sim.SVRConfig(16)
		cfg.Hier.DRAM.BandwidthGBps = gbps
		cfg.Label = fmt.Sprintf("SVR16-bw%g", gbps)
		bw.AddRow(fmt.Sprintf("%.1f", gbps), fmt.Sprintf("%.2fx", hmeanSpeedup(p, bwBase, cfg)))
	}
	fmt.Print(bw)
	fmt.Println("\nThe knee sits near N=16..32 with K=2..4 — a few KiB of state buys most")
	fmt.Println("of the speedup, which is the paper's core area-efficiency claim.")
}

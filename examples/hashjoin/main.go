// Hashjoin: the database case study. Probes a no-partitioning hash join
// with bucket sizes 2 and 8 on every machine, reproducing two findings of
// the paper: IMP cannot learn hashed (non-linear) access patterns at all,
// and SVR's masking-only control flow handles the branchless 2-slot probe
// but loses lanes to divergence on the early-exiting 8-slot scan (§VI-D).
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	p := sim.QuickParams()
	configs := []sim.Config{
		sim.MachineConfig(sim.InO),
		sim.MachineConfig(sim.IMP),
		sim.MachineConfig(sim.OoO),
		sim.SVRConfig(16),
	}

	for _, wl := range []string{"HJ2", "HJ8"} {
		fmt.Printf("== %s (hash-join probe) ==\n", wl)
		t := stats.NewTable("machine", "CPI", "speedup", "masked lanes", "PRM rounds")
		var base sim.Result
		for i, cfg := range configs {
			res, err := sim.RunByName(wl, cfg, p)
			if err != nil {
				panic(err)
			}
			if i == 0 {
				base = res
			}
			t.AddRow(cfg.Label,
				fmt.Sprintf("%.2f", res.CPI),
				fmt.Sprintf("%.2fx", base.CPI/res.CPI),
				fmt.Sprintf("%d", res.SVRStats.MaskedLanes),
				fmt.Sprintf("%d", res.SVRStats.Rounds))
		}
		fmt.Print(t)
		fmt.Println()
	}
	fmt.Println("IMP stays at the baseline on both: addr = table + hash(key) is not")
	fmt.Println("linear in the loaded key, so its base+shift solver never converges.")
}

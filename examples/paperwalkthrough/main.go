// Paperwalkthrough reproduces the paper's expository material directly:
// the 5-vertex CSR sample graph of Fig 2, the PageRank hot loop of
// Listing 1 written in the mini ISA, and a live trace of SVR's piggyback
// runahead mode over it (Fig 4's timeline) — then scales the same loop up
// to show the machinery paying off.
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu/inorder"
	"repro/internal/emu"
	"repro/internal/graphs"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/svr"
	"repro/internal/trace"
)

// fig2Graph is the sample graph of Fig 2: offsets [0 2 4 7 9 12],
// neighbors [1 2 0 3 0 1 3 0 2 0 2 3].
func fig2Graph() *graphs.CSR {
	return &graphs.CSR{
		Name:      "fig2",
		NumNodes:  5,
		Offsets:   []uint32{0, 2, 4, 7, 9, 12},
		Neighbors: []uint32{1, 2, 0, 3, 0, 1, 3, 0, 2, 0, 2, 3},
	}
}

// buildListing1 lays the graph out in memory and emits the PageRank hot
// loop of Listing 1: for u { for v in in_neigh(u) { total += contrib[v] } }.
func buildListing1(g *graphs.CSR, contribVals []float64) (*isa.Program, *mem.Memory, mem.Array) {
	m := mem.New()
	off := m.NewArray(uint64(g.NumNodes+1), 4)
	neigh := m.NewArray(uint64(len(g.Neighbors)), 4)
	contrib := m.NewArray(uint64(g.NumNodes), 8)
	out := m.NewArray(uint64(g.NumNodes), 8)
	for i, o := range g.Offsets {
		off.Set(uint64(i), uint64(o))
	}
	for i, v := range g.Neighbors {
		neigh.Set(uint64(i), uint64(v))
	}
	for i, c := range contribVals {
		contrib.SetF(uint64(i), c)
	}

	b := isa.NewBuilder("listing1")
	rOff, rNeigh, rContrib, rOut := b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg()
	rU, rN, rK, rEnd, rV, rC, rSum, rA := b.AllocReg(), b.AllocReg(), b.AllocReg(),
		b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg(), b.AllocReg()
	b.LoadImm(rOff, int64(off.Base))
	b.LoadImm(rNeigh, int64(neigh.Base))
	b.LoadImm(rContrib, int64(contrib.Base))
	b.LoadImm(rOut, int64(out.Base))
	b.LoadImm(rU, 0)
	b.LoadImm(rN, int64(g.NumNodes))
	b.Label("vertex")
	b.LoadImm(rSum, isa.F2B(0))
	b.ShlI(rA, rU, 2)
	b.Add(rA, rA, rOff)
	b.Load(rK, rA, 0, 4)
	b.Load(rEnd, rA, 4, 4)
	b.Cmp(rK, rEnd)
	b.BGE("vdone")
	b.Label("edge")
	b.ShlI(rA, rK, 2)
	b.Add(rA, rA, rNeigh)
	b.Load(rV, rA, 0, 4) // striding neighbor load (SVR's trigger)
	b.ShlI(rA, rV, 3)
	b.Add(rA, rA, rContrib)
	b.Load(rC, rA, 0, 8) // indirect contrib[v] (the miss chain)
	b.FAdd(rSum, rSum, rC)
	b.AddI(rK, rK, 1)
	b.Cmp(rK, rEnd)
	b.BLT("edge")
	b.Label("vdone")
	b.ShlI(rA, rU, 3)
	b.Add(rA, rA, rOut)
	b.Store(rSum, rA, 0, 8)
	b.AddI(rU, rU, 1)
	b.Cmp(rU, rN)
	b.BLT("vertex")
	b.Halt()
	return b.Build(), m, out
}

func main() {
	g := fig2Graph()
	contrib := []float64{2.939, 36.2, 801.0, 9.136, 12.25} // Fig 2's vertex data
	prog, m, out := buildListing1(g, contrib)

	fmt.Println("Listing 1 (PageRank hot loop) in the mini ISA:")
	fmt.Println(prog.Disasm())

	cpu := emu.New(prog, m)
	cpu.Run(1 << 16)
	fmt.Println("incoming totals over Fig 2's graph:")
	for u := 0; u < g.NumNodes; u++ {
		fmt.Printf("  vertex %d: %8.3f\n", u, out.GetF(uint64(u)))
	}

	// Fig 4's timeline: run the same loop at evaluation scale with SVR
	// attached and dump the engine's first few runahead events.
	fmt.Println("\nSVR over the same loop at evaluation scale (PR_KR):")
	res, err := sim.RunByName("PR_KR", sim.SVRConfig(16), sim.QuickParams())
	if err != nil {
		panic(err)
	}
	base, err := sim.RunByName("PR_KR", sim.MachineConfig(sim.InO), sim.QuickParams())
	if err != nil {
		panic(err)
	}
	fmt.Printf("  in-order CPI %.2f -> SVR16 CPI %.2f (%.2fx), %d PRM rounds, accuracy %.0f%%\n",
		base.CPI, res.CPI, base.CPI/res.CPI, res.SVRStats.Rounds,
		res.PFStats[cache.OriginSVR].Accuracy()*100)

	fmt.Println("\npiggyback-runahead timeline (Fig 4), one round:")
	traceOneRound()
}

// traceOneRound drives PR on a small Kronecker graph and prints the
// events of a single PRM round: head-load entry, the SVI copies of each
// chain instruction, and termination at the next head instance.
func traceOneRound() {
	g := graphs.Build(graphs.KR, 1<<12, 1)
	contrib := make([]float64, g.NumNodes)
	for i := range contrib {
		contrib[i] = float64(i) * 0.5
	}
	prog, m, _ := buildListing1(g, contrib)

	cfg := sim.SVRConfig(16)
	h := cache.NewHierarchy(cfg.Hier)
	core := inorder.New(cfg.InO, h)
	cpu := emu.New(prog, m)
	eng := svr.New(cfg.SVR, h, cpu)
	core.Companion = eng
	core.Run(stream.NewLive(cpu), 3000) // warm the stride detector

	ring := trace.NewRing(64)
	eng.Tracer = ring
	for ring.Total() < 12 {
		if core.Run(stream.NewLive(cpu), 100) == 0 {
			break
		}
	}
	for i, ev := range ring.Events() {
		if i >= 10 {
			break
		}
		fmt.Printf("  %s\n", ev)
	}
}

// Graphalytics: the paper's motivating scenario — graph analytics on an
// energy-efficient edge core. Runs PageRank and BFS across all five graph
// inputs (Kronecker, LiveJournal-like, Orkut-like, Twitter-like, uniform
// random) and reports how SVR changes the per-input picture: CPI, energy,
// prefetch accuracy and where the DRAM traffic comes from.
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	p := sim.QuickParams()
	inputs := []string{"KR", "LJN", "ORK", "TW", "UR"}

	for _, kernel := range []string{"PR", "BFS"} {
		fmt.Printf("== %s across graph inputs ==\n", kernel)
		t := stats.NewTable("input", "in-order CPI", "SVR16 CPI", "speedup",
			"SVR nJ/i vs base", "SVR accuracy", "demand misses left")
		for _, in := range inputs {
			name := kernel + "_" + in
			base, err := sim.RunByName(name, sim.MachineConfig(sim.InO), p)
			if err != nil {
				panic(err)
			}
			svr, err := sim.RunByName(name, sim.SVRConfig(16), p)
			if err != nil {
				panic(err)
			}
			pf := svr.PFStats[cache.OriginSVR]
			baseMisses := base.DRAMLoads[cache.OriginDemand]
			left := "n/a"
			if baseMisses > 0 {
				left = fmt.Sprintf("%.0f%%",
					100*float64(svr.DRAMLoads[cache.OriginDemand])/float64(baseMisses))
			}
			t.AddRow(in,
				fmt.Sprintf("%.2f", base.CPI),
				fmt.Sprintf("%.2f", svr.CPI),
				fmt.Sprintf("%.2fx", base.CPI/svr.CPI),
				fmt.Sprintf("%.2f", svr.Energy.NJPerInstr/base.Energy.NJPerInstr),
				fmt.Sprintf("%.0f%%", pf.Accuracy()*100),
				left)
		}
		fmt.Print(t)
		fmt.Println()
	}
	fmt.Println("The skewed inputs (KR, TW) have short, irregular inner loops; the")
	fmt.Println("loop-bound tournament keeps SVR accurate there, while the uniform input")
	fmt.Println("(UR) stresses timeliness instead. See `svrsim run fig13a`.")
}
